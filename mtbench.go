// Package mtbench is a benchmark and framework for research on
// multi-threaded testing tools — a Go implementation of the system
// proposed by Havelund, Stoller and Ur, "Benchmark and Framework for
// Encouraging Research on Multi-Threaded Testing Tools" (PADTAD/IPDPS
// 2003).
//
// The package re-exports the framework's stable API; implementations
// live under internal/. The moving parts:
//
//   - Programs are written against the T interface (mutexes, rwmutexes,
//     condition variables, shared variables, fork/join, virtual sleep)
//     and run under two interchangeable runtimes: RunControlled, a
//     deterministic scheduler where a pluggable Strategy decides every
//     interleaving (replay and systematic exploration live here), and
//     RunNative, real goroutines under the live Go scheduler
//     (ConTest-style noise injection lives here).
//
//   - Every dynamic tool — noise makers, race detectors, deadlock
//     analysis, replay recording, coverage, tracing, temporal-logic
//     monitoring — is a Listener over one event stream, online or
//     offline (replayed from a recorded trace).
//
//   - The Repository* functions expose the collection of documented
//     buggy programs; Experiment* functions run the prepared
//     evaluation scripts and return report tables.
//
// See README.md for a tour and DESIGN.md for the paper-to-module map.
package mtbench

import (
	"io"

	"mtbench/internal/campaign"
	"mtbench/internal/campsvc"
	"mtbench/internal/cloning"
	"mtbench/internal/core"
	"mtbench/internal/coverage"
	"mtbench/internal/deadlock"
	"mtbench/internal/experiment"
	"mtbench/internal/explore"
	"mtbench/internal/fuzz"
	"mtbench/internal/instrument"
	"mtbench/internal/ltl"
	"mtbench/internal/multiout"
	"mtbench/internal/native"
	"mtbench/internal/noise"
	"mtbench/internal/pct"
	"mtbench/internal/race"
	"mtbench/internal/replay"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
	"mtbench/internal/staticinfo"
	"mtbench/internal/trace"
)

// Core vocabulary.
type (
	// T is the thread context benchmark programs are written against.
	T = core.T
	// Handle joins a spawned thread.
	Handle = core.Handle
	// Mutex, RWMutex, Cond, IntVar and RefVar are the instrumented
	// synchronization objects.
	Mutex   = core.Mutex
	RWMutex = core.RWMutex
	Cond    = core.Cond
	IntVar  = core.IntVar
	RefVar  = core.RefVar
	// Event is the single interchange record every tool consumes.
	Event = core.Event
	// Listener observes the event stream; all tools implement it.
	Listener = core.Listener
	// ListenerFunc adapts a function to Listener.
	ListenerFunc = core.ListenerFunc
	// Result is a run's outcome.
	Result = core.Result
	// Verdict classifies how a run ended.
	Verdict = core.Verdict
	// ThreadID and ObjectID identify threads and objects within a run.
	ThreadID = core.ThreadID
	ObjectID = core.ObjectID
	// Op is the operation kind of an event.
	Op = core.Op
)

// Verdicts.
const (
	VerdictPass      = core.VerdictPass
	VerdictFail      = core.VerdictFail
	VerdictDeadlock  = core.VerdictDeadlock
	VerdictStepLimit = core.VerdictStepLimit
	VerdictTimeout   = core.VerdictTimeout
	VerdictDiverged  = core.VerdictDiverged
)

// Controlled runtime.
type (
	// ControlledConfig configures a deterministic controlled run.
	ControlledConfig = sched.Config
	// Strategy decides which thread runs at each scheduling point.
	Strategy = sched.Strategy
	// Choice is one scheduling decision offered to a Strategy.
	Choice = sched.Choice
	// FixedSchedule replays an explicit decision sequence.
	FixedSchedule = sched.FixedSchedule
	// ControlledRunner executes controlled runs back to back, reusing
	// goroutines and buffers between them — the hot-path form of
	// RunControlled for search loops (see sched.Runner for the
	// Result.Schedule ownership caveat).
	ControlledRunner = sched.Runner
)

// RunControlled executes body under the deterministic scheduler.
func RunControlled(cfg ControlledConfig, body func(T)) *Result { return sched.Run(cfg, body) }

// NewControlledRunner returns a pooled runner for back-to-back
// controlled runs; call Close when done with it.
func NewControlledRunner() *ControlledRunner { return sched.NewRunner() }

// Stock strategies.
var (
	// Nonpreemptive is the deterministic run-to-block scheduler (the
	// "unit test" baseline the paper blames for hiding bugs).
	Nonpreemptive = sched.Nonpreemptive
	// RoundRobin switches threads at every scheduling point.
	RoundRobin = sched.RoundRobin
	// Random picks uniformly among runnable threads (seeded).
	Random = sched.Random
	// RandomWhenBlocked runs to block with random dispatch (the live
	// OS-scheduler model noise runs over).
	RandomWhenBlocked = sched.RandomWhenBlocked
	// PriorityRandom is a PCT-style priority scheduler.
	PriorityRandom = sched.PriorityRandom
)

// Native runtime.
type (
	// NativeConfig configures a real-goroutine run.
	NativeConfig = native.Config
)

// RunNative executes body on real goroutines with instrumentation.
func RunNative(cfg NativeConfig, body func(T)) *Result { return native.Run(cfg, body) }

// Noise makers.
type (
	// NoiseHeuristic decides where and how to perturb the schedule.
	NoiseHeuristic = noise.Heuristic
	// NoiseDecision is one heuristic verdict.
	NoiseDecision = noise.Decision
	// NoiseStrategy wraps a base strategy with a heuristic for
	// controlled runs.
	NoiseStrategy = noise.Strategy
)

// Noise kinds and constructors.
const (
	NoiseYield = noise.KindYield
	NoiseSleep = noise.KindSleep
	NoiseMixed = noise.KindMixed
)

var (
	// NoNoise never perturbs.
	NoNoise = noise.None
	// Bernoulli perturbs with fixed probability.
	Bernoulli = noise.NewBernoulli
	// SharedVarNoise perturbs only at shared-variable accesses.
	SharedVarNoise = noise.SharedVarNoise
	// SyncNoise perturbs only at synchronization operations.
	SyncNoise = noise.SyncNoise
	// StatisticalNoise adapts per program location.
	StatisticalNoise = noise.NewStatistical
	// CoverageDirectedNoise targets rarely exercised coverage tasks.
	CoverageDirectedNoise = noise.NewCoverageDirected
	// WithNoise wraps a base strategy (nil = random dispatch) with a
	// heuristic for the controlled runtime.
	WithNoise = noise.NewStrategy
)

// Race detection.
type (
	// RaceDetector is a pluggable online/offline race detector.
	RaceDetector = race.Detector
	// RaceWarning is one reported potential race.
	RaceWarning = race.Warning
)

var (
	// NewLockset is the Eraser lockset detector.
	NewLockset = race.NewLockset
	// NewHB is the vector-clock happens-before detector;
	// respectAtomics selects whether atomic variables synchronize.
	NewHB = race.NewHB
	// NewHybrid reports only HB races whose lockset also ran empty.
	NewHybrid = race.NewHybrid
)

// Deadlock analysis.
type (
	// LockGraphAnalyzer finds deadlock potentials (GoodLock).
	LockGraphAnalyzer = deadlock.Analyzer
	// DeadlockPotential is one reported lock cycle.
	DeadlockPotential = deadlock.Potential
)

// NewLockGraph returns a fresh GoodLock analyzer.
var NewLockGraph = deadlock.NewAnalyzer

// Replay.
type (
	// Schedule is a saved, replayable scenario.
	Schedule = replay.Schedule
	// ReplayRecorder records native event order.
	ReplayRecorder = replay.Recorder
	// ReplayEnforcer gates a native run along a recorded order.
	ReplayEnforcer = replay.Enforcer
)

var (
	// RecordControlled runs and records a controlled schedule.
	RecordControlled = replay.RecordControlled
	// ReplayControlled re-runs a recorded controlled schedule exactly.
	ReplayControlled = replay.ReplayControlled
	// NewReplayRecorder records a native run's event order.
	NewReplayRecorder = replay.NewRecorder
	// NewReplayEnforcer enforces a recorded native order (best
	// effort; divergence is detected, not hidden).
	NewReplayEnforcer = replay.NewEnforcer
	// LoadSchedule reads a schedule saved with Schedule.Save.
	LoadSchedule = replay.Load
)

// Coverage.
type (
	// CoverageTracker accumulates concurrency coverage across runs.
	CoverageTracker = coverage.Tracker
	// CoverageUniverse bounds feasible tasks (from static analysis).
	CoverageUniverse = coverage.Universe
)

var (
	// NewCoverage returns an empty tracker.
	NewCoverage = coverage.NewTracker
	// AllocateBudget distributes a run budget by marginal coverage.
	AllocateBudget = coverage.Allocate
)

// Systematic exploration.
type (
	// ExploreOptions configures the stateless DFS search. Workers
	// shards the decision tree across a pool of search goroutines
	// (0 = one per core; 1 = the deterministic serial engine);
	// MaxSchedules and StopAtFirstBug are global budgets across the
	// pool.
	ExploreOptions = explore.Options
	// ExploreResult summarizes a search.
	ExploreResult = explore.Result
	// ExploreBug is one erroneous schedule found during exploration,
	// replayable through FixedSchedule or the replay package.
	ExploreBug = explore.Bug
	// ExploreStats counts what the reduction layer pruned (sleep sets,
	// DPOR backtrack sets, canonical-state cache) during a search.
	ExploreStats = explore.Stats
	// Footprint is the reduction layer's (operation, interned object)
	// view of a pending operation; Footprint.Commutes is the
	// independence relation DPOR, sleep sets and the fuzzer's
	// commutation canonicalizer share.
	Footprint = core.Footprint
)

var (
	// Explore runs systematic state-space exploration, sharded over
	// ExploreOptions.Workers parallel workers.
	Explore = explore.Explore
	// PreemptionBound builds the Options.PreemptionBound value.
	PreemptionBound = explore.Bound
	// ExploreBound builds any of the Options bound values
	// (PreemptionBound, VariableBound, ThreadBound).
	ExploreBound = explore.Bound
)

// Probabilistic concurrency testing.
type (
	// PCTOptions configures a PCT campaign: random thread priorities
	// plus Depth−1 random priority-change points per run, with a
	// documented per-run lower bound on the probability of finding any
	// bug of depth Depth. A fixed Seed reproduces a campaign exactly.
	PCTOptions = pct.Options
	// PCTResult summarizes a campaign (runs, dedup'd bugs, and the
	// adaptive step/thread estimates that instantiate the guarantee).
	PCTResult = pct.Result
	// PCTBug is one erroneous schedule found by PCT, replayable through
	// FixedSchedule or the replay package.
	PCTBug = pct.Bug
)

// RunPCT runs a probabilistic-concurrency-testing campaign — the
// randomized member of the bounding portfolio, between blind noise and
// systematic search.
var RunPCT = pct.Run

// Coverage-guided schedule fuzzing.
type (
	// FuzzOptions configures a greybox fuzzing campaign over schedules:
	// MaxRuns and StopAtFirstBug are global budgets across
	// FuzzOptions.Workers parallel workers; a fixed Seed with Workers: 1
	// reproduces a campaign exactly.
	FuzzOptions = fuzz.Options
	// FuzzResult summarizes a campaign (runs, dedup'd bugs, corpus and
	// coverage growth, runs per mutation operator).
	FuzzResult = fuzz.Result
	// FuzzBug is one erroneous schedule found while fuzzing, replayable
	// through FixedSchedule or the replay package.
	FuzzBug = fuzz.Bug
)

var (
	// Fuzz runs coverage-guided schedule fuzzing: a corpus of
	// coverage-interesting decision logs, thread-aware mutators, and
	// concurrency-coverage feedback — the search regime between noise
	// and exhaustive exploration.
	Fuzz = fuzz.Fuzz
	// FuzzPreemptionBound builds the FuzzOptions.PreemptionBound value
	// for the bounding mutator.
	FuzzPreemptionBound = fuzz.Bound
)

// Cloning.
type (
	// CloneTest is a cloneable test for load testing.
	CloneTest = cloning.Test
)

var (
	// CloneControlled runs n clones under the controlled scheduler.
	CloneControlled = cloning.Controlled
	// CloneNative runs n clones on real goroutines.
	CloneNative = cloning.Native
	// ReserveTest is the canonical oversell load test.
	ReserveTest = cloning.Reserve
)

// Instrumentation plans.
type (
	// Plan selects which probes fire (the instrumentor interface).
	Plan = instrument.Plan
)

// NewPlan returns a plan instrumenting everything; chain DisableOps /
// DisableObjects / OnlyObjects to restrict it.
var NewPlan = instrument.All

// Traces.
type (
	// TraceHeader, TraceRecord, TraceWriter and TraceReader form the
	// benchmark's standard trace format.
	TraceHeader = trace.Header
	TraceRecord = trace.Record
	TraceWriter = trace.Writer
	TraceReader = trace.Reader
	// TraceCollector is the listener that writes annotated traces.
	TraceCollector = trace.Collector
)

var (
	// NewJSONLTraceWriter / NewBinaryTraceWriter create writers for
	// the two codecs; the matching readers parse them.
	NewJSONLTraceWriter  = trace.NewJSONLWriter
	NewBinaryTraceWriter = trace.NewBinaryWriter
	NewJSONLTraceReader  = trace.NewJSONLReader
	NewBinaryTraceReader = trace.NewBinaryReader
	// NewTraceCollector writes each event through a writer.
	NewTraceCollector = trace.NewCollector
	// ReplayTrace feeds a recorded trace to listeners (offline mode).
	ReplayTrace = trace.Replay
)

// Temporal-logic monitoring.
type (
	// LTLFormula is a past-time LTL property.
	LTLFormula = ltl.Formula
	// LTLMonitor checks a property over an event stream.
	LTLMonitor = ltl.Monitor
)

var (
	// ParseLTL parses the compact property syntax.
	ParseLTL = ltl.Parse
	// NewLTLMonitor compiles a formula into a listener.
	NewLTLMonitor = ltl.NewMonitor
)

// Repository.
type (
	// Program is one documented benchmark program.
	Program = repository.Program
	// ProgramParams overrides a program's default parameters.
	ProgramParams = repository.Params
)

var (
	// Programs returns every repository program.
	Programs = repository.All
	// BuggyPrograms returns the programs with documented defects.
	BuggyPrograms = repository.Buggy
	// CorrectPrograms returns the defect-free control programs.
	CorrectPrograms = repository.Correct
	// GetProgram looks a program up by name.
	GetProgram = repository.Get
)

// Static analysis.
type (
	// StaticInfo is the analysis result for one program.
	StaticInfo = staticinfo.Info
)

// AnalyzeProgram runs the source-level static analysis for a
// repository program (requires a source checkout).
var AnalyzeProgram = staticinfo.ForProgram

// Multi-outcome benchmark (component 4).
type (
	// OutcomeDistribution histograms canonical outcomes.
	OutcomeDistribution = multiout.Distribution
)

var (
	// MultioutBody returns the no-input many-outcomes program.
	MultioutBody = multiout.Body
	// CanonicalOutcome builds the comparable outcome string.
	CanonicalOutcome = multiout.Canonical
)

// Campaigns: the persistent, resumable, diffable benchmark matrix.
type (
	// CampaignConfig declares a finder×program×seed×budget matrix.
	CampaignConfig = campaign.Config
	// CampaignRecord is one completed, stored matrix cell.
	CampaignRecord = campaign.Record
	// CampaignStore is the persistent JSONL result store (resumable:
	// re-running skips completed cells; compacted stores of the same
	// fixed-seed config are byte-identical).
	CampaignStore = campaign.Store
	// CampaignSummary is one Run invocation's outcome.
	CampaignSummary = campaign.Summary
	// CampaignDiff classifies per-cell deltas between two stores; its
	// Gate method is the CI regression check.
	CampaignDiff = campaign.Diff
	// CampaignDelta is one classified difference.
	CampaignDelta = campaign.Delta
)

var (
	// RunCampaign executes (or resumes) a campaign matrix into a store.
	RunCampaign = campaign.Run
	// DefaultCampaign is the standard fixed-seed gate matrix.
	DefaultCampaign = campaign.Default
	// CampaignFinders lists the registered finder names.
	CampaignFinders = campaign.Finders
	// CreateCampaignStore / OpenCampaignStore / LoadCampaignStore
	// manage persistent stores (create fresh, open for resumption,
	// read-only load).
	CreateCampaignStore = campaign.Create
	OpenCampaignStore   = campaign.Open
	LoadCampaignStore   = campaign.Load
	// CompareCampaigns classifies per-cell deltas between two record
	// sets (bug lost / gained, budget regressions, missing cells).
	CompareCampaigns = campaign.Compare
	// CampaignTables renders a stored campaign as report tables.
	CampaignTables = campaign.SummaryTables
	// ExecCampaignCell runs one cell under the shared sandbox (panic ->
	// record, CellTimeout -> record, parent cancellation -> kill).
	ExecCampaignCell = campaign.ExecCell
	// RegisterCampaignFinder adds a finder to the campaign registry.
	RegisterCampaignFinder = campaign.RegisterFinder
)

// The distributed campaign service: a lease-granting coordinator and
// a fault-tolerant worker fleet that produce — for clean fixed-seed
// campaigns — a store byte-identical to an in-process RunCampaign.
type (
	// CampaignCoordinator owns a campaign store and grants cell leases.
	CampaignCoordinator = campsvc.Coordinator
	// CampaignCoordinatorOptions tune leases, retries and quarantine.
	CampaignCoordinatorOptions = campsvc.CoordinatorOptions
	// CampaignWorkerOptions configure one fleet worker.
	CampaignWorkerOptions = campsvc.WorkerOptions
	// CampaignWorkerStats summarizes one worker's run.
	CampaignWorkerStats = campsvc.WorkerStats
	// CampaignServiceStatus is a point-in-time fleet snapshot.
	CampaignServiceStatus = campsvc.Status
	// CampaignTransport is how a worker reaches a coordinator (HTTP
	// Client, or Local for in-process fleets).
	CampaignTransport = campsvc.Transport
	// CampaignClient is the HTTP transport to a remote coordinator.
	CampaignClient = campsvc.Client
)

var (
	// NewCampaignCoordinator starts coordinating a campaign store.
	NewCampaignCoordinator = campsvc.NewCoordinator
	// CampaignWork runs one worker's lease-execute-report loop until
	// the campaign completes.
	CampaignWork = campsvc.Work
	// CampaignHandler serves a coordinator's HTTP API.
	CampaignHandler = campsvc.Handler
)

// Prepared experiments.
type (
	// ExperimentTable is one evaluation report table.
	ExperimentTable = experiment.Table
	// ExperimentRunner is a named prepared experiment.
	ExperimentRunner = experiment.Runner
)

var (
	// Experiments lists the prepared experiments (F1, E1..E13).
	Experiments = experiment.Runners
	// GetExperiment looks an experiment up by id.
	GetExperiment = experiment.Get
)

// RenderTables writes report tables as aligned text.
func RenderTables(w io.Writer, tables []*ExperimentTable) error {
	return experiment.RenderAll(w, tables)
}
