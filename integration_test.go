package mtbench_test

// Integration tests: cross-package flows exercised through the public
// facade, the way a downstream user of the library would.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mtbench"
)

// TestPublicAPIQuickstart is the README quickstart as a test: baseline
// misses, noise finds, replay reproduces.
func TestPublicAPIQuickstart(t *testing.T) {
	body := func(ct mtbench.T) {
		x := ct.NewInt("x", 0)
		h1 := ct.Go("a", func(wt mtbench.T) {
			v := x.Load(wt)
			x.Store(wt, v+1)
		})
		h2 := ct.Go("b", func(wt mtbench.T) {
			v := x.Load(wt)
			x.Store(wt, v+1)
		})
		h1.Join(ct)
		h2.Join(ct)
		ct.Assert(x.Load(ct) == 2, "lost update")
	}

	if res := mtbench.RunControlled(mtbench.ControlledConfig{Strategy: mtbench.Nonpreemptive()}, body); res.Verdict != mtbench.VerdictPass {
		t.Fatalf("baseline: %v", res)
	}

	var schedule *mtbench.Schedule
	for seed := int64(0); seed < 200; seed++ {
		st := mtbench.WithNoise(nil, mtbench.Bernoulli(0.4, mtbench.NoiseYield), seed)
		res, s := mtbench.RecordControlled(mtbench.ControlledConfig{Strategy: st, Seed: seed}, body)
		if res.Verdict == mtbench.VerdictFail {
			schedule = s
			break
		}
	}
	if schedule == nil {
		t.Fatal("noise never found the bug")
	}
	for i := 0; i < 3; i++ {
		rep := mtbench.ReplayControlled(schedule, mtbench.ControlledConfig{}, body)
		if rep.Verdict != mtbench.VerdictFail || rep.Diverged {
			t.Fatalf("replay %d: %v", i, rep)
		}
	}
}

// TestFullToolStackOneRun attaches every online tool to a single run
// and checks each produced its artifact — the mix-and-match promise.
func TestFullToolStackOneRun(t *testing.T) {
	prog, err := mtbench.GetProgram("account")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	w := mtbench.NewBinaryTraceWriter(&buf)
	if err := w.WriteHeader(mtbench.TraceHeader{Program: "account", Mode: "controlled"}); err != nil {
		t.Fatal(err)
	}
	col := mtbench.NewTraceCollector(w, prog.Annotator())
	lockset := mtbench.NewLockset()
	hb := mtbench.NewHB(true)
	lockGraph := mtbench.NewLockGraph()
	cov := mtbench.NewCoverage()
	formula, err := mtbench.ParseLTL("H(write(balance) -> O lock(*))")
	if err != nil {
		t.Fatal(err)
	}
	mon := mtbench.NewLTLMonitor(formula)

	res := mtbench.RunControlled(mtbench.ControlledConfig{
		Strategy:  mtbench.RoundRobin(),
		Listeners: []mtbench.Listener{col, lockset, hb, lockGraph, cov, mon},
	}, prog.BodyWith(nil))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	if res.Events == 0 {
		t.Fatal("no events")
	}
	if len(lockset.WarnedVars()) == 0 || len(hb.WarnedVars()) == 0 {
		t.Fatalf("detectors silent: lockset=%v hb=%v", lockset.WarnedVars(), hb.WarnedVars())
	}
	if cov.CoveredCount() == 0 {
		t.Fatal("coverage empty")
	}
	if mon.Ok() {
		t.Fatal("lock-discipline property not violated")
	}
	if buf.Len() == 0 {
		t.Fatal("trace empty")
	}

	// And the trace replays offline into a fresh detector with the
	// same verdict.
	r, err := mtbench.NewBinaryTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	offline := mtbench.NewLockset()
	if err := mtbench.ReplayTrace(r, offline); err != nil {
		t.Fatal(err)
	}
	if strings.Join(offline.WarnedVars(), ",") != strings.Join(lockset.WarnedVars(), ",") {
		t.Fatalf("offline %v != online %v", offline.WarnedVars(), lockset.WarnedVars())
	}
}

// TestNativeMirrorsControlled runs the same program on both runtimes
// through the facade.
func TestNativeMirrorsControlled(t *testing.T) {
	prog, err := mtbench.GetProgram("boundedbuffer")
	if err != nil {
		t.Fatal(err)
	}
	if res := mtbench.RunControlled(mtbench.ControlledConfig{Strategy: mtbench.Random(1)}, prog.BodyWith(nil)); res.Verdict != mtbench.VerdictPass {
		t.Fatalf("controlled: %v", res)
	}
	if res := mtbench.RunNative(mtbench.NativeConfig{Timeout: 10 * time.Second}, prog.BodyWith(nil)); res.Verdict != mtbench.VerdictPass {
		t.Fatalf("native: %v", res)
	}
}

// TestRepositoryMetadataThroughFacade spot-checks repository access.
func TestRepositoryMetadataThroughFacade(t *testing.T) {
	if len(mtbench.Programs()) < 20 {
		t.Fatalf("programs = %d", len(mtbench.Programs()))
	}
	if len(mtbench.BuggyPrograms())+len(mtbench.CorrectPrograms()) != len(mtbench.Programs()) {
		t.Fatal("buggy + correct != all")
	}
	prog, err := mtbench.GetProgram("account")
	if err != nil {
		t.Fatal(err)
	}
	info, err := mtbench.AnalyzeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.SharedVars) == 0 {
		t.Fatal("static analysis empty")
	}
}

// TestExperimentRegistryThroughFacade runs the fastest experiment end
// to end via the facade.
func TestExperimentRegistryThroughFacade(t *testing.T) {
	if len(mtbench.Experiments()) != 14 {
		t.Fatalf("experiments = %d, want 14", len(mtbench.Experiments()))
	}
	r, err := mtbench.GetExperiment("E9")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mtbench.RenderTables(&buf, tables); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E9") {
		t.Fatalf("render:\n%s", buf.String())
	}
}

// TestExplorationThroughFacade: the facade exposes exploration with
// bounds.
func TestExplorationThroughFacade(t *testing.T) {
	prog, err := mtbench.GetProgram("statmax")
	if err != nil {
		t.Fatal(err)
	}
	res := mtbench.Explore(mtbench.ExploreOptions{
		MaxSchedules:    20000,
		PreemptionBound: mtbench.PreemptionBound(1),
		StopAtFirstBug:  true,
	}, prog.BodyWith(mtbench.ProgramParams{"reporters": 2}))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Bugs) == 0 {
		t.Fatal("exploration missed the statmax bug")
	}
}

// TestCloningThroughFacade: the reserve test detects with enough
// clones.
func TestCloningThroughFacade(t *testing.T) {
	test := mtbench.ReserveTest(3)
	found := false
	for seed := int64(0); seed < 50 && !found; seed++ {
		st := mtbench.WithNoise(nil, mtbench.Bernoulli(0.3, mtbench.NoiseYield), seed)
		res := mtbench.CloneControlled(mtbench.ControlledConfig{Strategy: st}, test, 8)
		found = res.Verdict != mtbench.VerdictPass
	}
	if !found {
		t.Fatal("cloning never detected the oversell")
	}
}

// TestMultioutThroughFacade: outcome distribution via the facade.
func TestMultioutThroughFacade(t *testing.T) {
	dist := mtbench.OutcomeDistribution{}
	for seed := int64(0); seed < 30; seed++ {
		dist.Add(mtbench.RunControlled(mtbench.ControlledConfig{Strategy: mtbench.Random(seed)}, mtbench.MultioutBody()))
	}
	if dist.Distinct() < 2 {
		t.Fatalf("distinct = %d", dist.Distinct())
	}
}

// TestCampaignThroughFacade runs a small persistent campaign end to
// end the way a downstream user would: create a store, run the
// matrix, reload it from disk, and gate the reload against the live
// records (which must match exactly).
func TestCampaignThroughFacade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	cfg := mtbench.CampaignConfig{
		Programs: []string{"account"},
		Finders:  []string{"fuzz", "noise"},
		Budget:   60,
		Workers:  2,
	}
	store, err := mtbench.CreateCampaignStore(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	sum, err := mtbench.RunCampaign(context.Background(), cfg, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Executed != 2 {
		t.Fatalf("executed = %d, want 2 cells", sum.Executed)
	}

	_, recs, err := mtbench.LoadCampaignStore(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := mtbench.CompareCampaigns(recs, sum.Records, 1.0)
	if err := diff.Gate(); err != nil {
		t.Fatalf("reloaded store differs from live records: %v", err)
	}

	var buf bytes.Buffer
	if err := mtbench.RenderTables(&buf, mtbench.CampaignTables(cfg, recs)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CAM") {
		t.Fatalf("campaign tables render:\n%s", buf.String())
	}
}

// TestDistributedCampaignThroughFacade runs the same matrix twice —
// once through the campaign service over real HTTP, once in-process —
// and requires byte-identical stores: distribution changes who
// executes a cell, never what it produces.
func TestDistributedCampaignThroughFacade(t *testing.T) {
	cfg := mtbench.CampaignConfig{
		Programs: []string{"account"},
		Finders:  []string{"fuzz", "noise"},
		Budget:   60,
	}
	dir := t.TempDir()

	distPath := filepath.Join(dir, "dist.jsonl")
	distStore, err := mtbench.CreateCampaignStore(distPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer distStore.Close()
	coord, err := mtbench.NewCampaignCoordinator(cfg, distStore, mtbench.CampaignCoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mtbench.CampaignHandler(coord))
	defer srv.Close()
	stats, err := mtbench.CampaignWork(context.Background(), mtbench.CampaignWorkerOptions{
		Name:      "facade-worker",
		Transport: &mtbench.CampaignClient{Base: srv.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 2 {
		t.Fatalf("worker completed %d cells, want 2 (stats %+v)", stats.Completed, stats)
	}

	localPath := filepath.Join(dir, "local.jsonl")
	localStore, err := mtbench.CreateCampaignStore(localPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mtbench.RunCampaign(context.Background(), cfg, localStore, nil); err != nil {
		t.Fatal(err)
	}
	localStore.Close()

	dist, err := os.ReadFile(distPath)
	if err != nil {
		t.Fatal(err)
	}
	local, err := os.ReadFile(localPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dist, local) {
		t.Fatalf("distributed store differs from in-process run:\n--- distributed ---\n%s--- local ---\n%s", dist, local)
	}
}
