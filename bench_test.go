package mtbench_test

// The benchmark harness: one testing.B benchmark per experiment in
// DESIGN.md's index (F1, E1..E13), each invoking the prepared
// experiment with a bench-sized configuration, plus microbenchmarks
// for the substrate costs the paper's overhead comparisons rest on
// (scheduling points, native probes, detector events, trace codecs).
//
// Regenerate all results with:
//
//	go test -bench=. -benchmem ./...

import (
	"bytes"
	"io"
	"testing"

	"mtbench"
	"mtbench/internal/campaign"
	"mtbench/internal/core"
	"mtbench/internal/experiment"
	"mtbench/internal/ltl"
	"mtbench/internal/race"
	"mtbench/internal/trace"
	"mtbench/internal/vclock"
)

// runExperiment executes a prepared experiment b.N times and renders
// the final result to the benchmark log once.
func runExperiment(b *testing.B, run func() ([]*experiment.Table, error)) {
	b.Helper()
	var tables []*experiment.Table
	var err error
	for i := 0; i < b.N; i++ {
		tables, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := experiment.RenderAll(&buf, tables); err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + buf.String())
}

func BenchmarkF1Pipeline(b *testing.B) {
	runExperiment(b, func() ([]*experiment.Table, error) {
		return experiment.Pipeline(experiment.PipelineConfig{Program: "account", Seeds: 200})
	})
}

func BenchmarkE1Noise(b *testing.B) {
	runExperiment(b, func() ([]*experiment.Table, error) {
		return experiment.Noise(experiment.NoiseConfig{Runs: 40})
	})
}

func BenchmarkE2Race(b *testing.B) {
	runExperiment(b, func() ([]*experiment.Table, error) {
		return experiment.Race(experiment.RaceConfig{Runs: 8})
	})
}

func BenchmarkE3Replay(b *testing.B) {
	runExperiment(b, func() ([]*experiment.Table, error) {
		return experiment.Replay(experiment.ReplayConfig{ControlledTrials: 20, NativeRecords: 2, NativeReplays: 2})
	})
}

func BenchmarkE4Coverage(b *testing.B) {
	runExperiment(b, func() ([]*experiment.Table, error) {
		return experiment.Coverage(experiment.CoverageConfig{Runs: 10, Budget: 30})
	})
}

func BenchmarkE5Explore(b *testing.B) {
	runExperiment(b, func() ([]*experiment.Table, error) {
		return experiment.Explore(experiment.ExploreConfig{MaxSchedules: 20000, RandomSeeds: 20000})
	})
}

func BenchmarkE6Cloning(b *testing.B) {
	runExperiment(b, func() ([]*experiment.Table, error) {
		return experiment.Cloning(experiment.CloningConfig{Runs: 30})
	})
}

func BenchmarkE7Multiout(b *testing.B) {
	runExperiment(b, func() ([]*experiment.Table, error) {
		return experiment.Multiout(experiment.MultioutConfig{Runs: 80})
	})
}

func BenchmarkE8Static(b *testing.B) {
	runExperiment(b, func() ([]*experiment.Table, error) {
		return experiment.Static(experiment.StaticConfig{})
	})
}

func BenchmarkE9Trace(b *testing.B) {
	runExperiment(b, func() ([]*experiment.Table, error) {
		return experiment.Trace(experiment.TraceConfig{Seeds: 3})
	})
}

func BenchmarkE10TraceEval(b *testing.B) {
	runExperiment(b, func() ([]*experiment.Table, error) {
		return experiment.TraceEval(experiment.TraceEvalConfig{Seeds: 4})
	})
}

func BenchmarkE11Fuzz(b *testing.B) {
	runExperiment(b, func() ([]*experiment.Table, error) {
		return experiment.Fuzz(experiment.FuzzConfig{Budget: 800})
	})
}

func BenchmarkE12Campaign(b *testing.B) {
	runExperiment(b, func() ([]*experiment.Table, error) {
		return experiment.Campaign(experiment.CampaignConfig{
			Campaign: campaign.Config{Budget: 200, Workers: 4},
		})
	})
}

func BenchmarkE13Bounding(b *testing.B) {
	runExperiment(b, func() ([]*experiment.Table, error) {
		return experiment.Bounding(experiment.BoundingConfig{
			Programs: []string{"account", "philosophers"},
			Budget:   500,
		})
	})
}

// --- substrate microbenchmarks ---

// BenchmarkControlledStep measures the cost of one scheduling point in
// the controlled runtime (two channel handoffs plus strategy call).
func BenchmarkControlledStep(b *testing.B) {
	iters := b.N
	b.ResetTimer()
	res := mtbench.RunControlled(mtbench.ControlledConfig{MaxSteps: int64(iters) + 1000}, func(t mtbench.T) {
		x := t.NewInt("x", 0)
		for i := 0; i < iters; i++ {
			x.Add(t, 1)
		}
	})
	if res.Verdict != mtbench.VerdictPass {
		b.Fatal(res)
	}
}

// BenchmarkNativeProbe measures one instrumented operation on the
// native runtime (atomic op + serialized emission).
func BenchmarkNativeProbe(b *testing.B) {
	iters := b.N
	b.ResetTimer()
	res := mtbench.RunNative(mtbench.NativeConfig{}, func(t mtbench.T) {
		x := t.NewInt("x", 0)
		for i := 0; i < iters; i++ {
			x.Add(t, 1)
		}
	})
	if res.Verdict != mtbench.VerdictPass {
		b.Fatal(res)
	}
}

// detectorBench feeds a synthetic contended event stream to a
// detector.
func detectorBench(b *testing.B, d race.Detector) {
	evs := make([]core.Event, 8)
	for i := range evs {
		op := core.OpRead
		if i%3 == 0 {
			op = core.OpWrite
		}
		evs[i] = core.Event{
			Seq: int64(i), Thread: core.ThreadID(i % 4), Op: op,
			Obj: core.ObjectID(i%2 + 1), Name: "v",
			Loc: core.Location{File: "f.go", Line: i},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := evs[i%len(evs)]
		ev.Seq = int64(i)
		d.OnEvent(&ev)
	}
}

func BenchmarkLocksetEvent(b *testing.B) { detectorBench(b, race.NewLockset()) }
func BenchmarkHBEvent(b *testing.B)      { detectorBench(b, race.NewHB(true)) }
func BenchmarkHybridEvent(b *testing.B)  { detectorBench(b, race.NewHybrid(true)) }

// traceBench measures per-record encoding cost of a codec.
func traceBench(b *testing.B, mk func(io.Writer) trace.Writer) {
	w := mk(io.Discard)
	if err := w.WriteHeader(trace.Header{Program: "bench"}); err != nil {
		b.Fatal(err)
	}
	rec := trace.Record{
		Seq: 1, Thread: 2, Op: "write", Obj: 3, Name: "balance", Value: 42,
		File: "repository/prog_races.go", Line: 21, Fn: "repository.accountBody",
		Why: "shared-access", Bug: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Seq = int64(i + 1)
		if err := w.WriteRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTraceJSONLWrite(b *testing.B)  { traceBench(b, trace.NewJSONLWriter) }
func BenchmarkTraceBinaryWrite(b *testing.B) { traceBench(b, trace.NewBinaryWriter) }

// BenchmarkVectorClockJoin measures the HB merge primitive.
func BenchmarkVectorClockJoin(b *testing.B) {
	a := vclock.New(8)
	c := vclock.New(8)
	for i := core.ThreadID(0); i < 8; i++ {
		a.Set(i, int64(i*7))
		c.Set(i, int64(i*3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Join(c)
		a.Tick(3)
	}
}

// BenchmarkLTLStep measures one monitored event for a realistic
// property.
func BenchmarkLTLStep(b *testing.B) {
	f, err := ltl.Parse("H(write(balance) -> O lock(mu))")
	if err != nil {
		b.Fatal(err)
	}
	m := ltl.NewMonitor(f)
	ev := core.Event{Op: core.OpLock, Name: "mu", Value: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Seq = int64(i)
		m.OnEvent(&ev)
	}
}
