// Quickstart: write a tiny concurrent program against the mtbench API,
// watch the deterministic unit-test scheduler miss its bug, and watch
// a noise maker find it — the paper's core story in thirty lines.
package main

import (
	"fmt"

	"mtbench"
)

// body is the canonical lost update: two unsynchronized increments.
func body(t mtbench.T) {
	counter := t.NewInt("counter", 0)
	h1 := t.Go("alice", func(wt mtbench.T) {
		v := counter.Load(wt)
		counter.Store(wt, v+1)
	})
	h2 := t.Go("bob", func(wt mtbench.T) {
		v := counter.Load(wt)
		counter.Store(wt, v+1)
	})
	h1.Join(t)
	h2.Join(t)
	t.Assert(counter.Load(t) == 2, "lost update: counter=%d", counter.Load(t))
}

func main() {
	// 1. The deterministic scheduler: the test "passes" forever.
	pass := 0
	for i := 0; i < 100; i++ {
		if mtbench.RunControlled(mtbench.ControlledConfig{Strategy: mtbench.Nonpreemptive()}, body).Verdict == mtbench.VerdictPass {
			pass++
		}
	}
	fmt.Printf("deterministic scheduler: %d/100 runs passed (bug invisible)\n", pass)

	// 2. A noise maker: forced context switches at instrumentation
	//    points expose the interleaving the bug needs.
	found := 0
	var firstSeed int64 = -1
	for seed := int64(0); seed < 100; seed++ {
		st := mtbench.WithNoise(nil, mtbench.Bernoulli(0.4, mtbench.NoiseYield), seed)
		res := mtbench.RunControlled(mtbench.ControlledConfig{Strategy: st, Seed: seed}, body)
		if res.Verdict == mtbench.VerdictFail {
			found++
			if firstSeed < 0 {
				firstSeed = seed
			}
		}
	}
	fmt.Printf("noise maker:             %d/100 runs failed (first at seed %d)\n", found, firstSeed)

	// 3. Reproduce it deterministically: record the failing schedule
	//    and replay it.
	res, schedule := mtbench.RecordControlled(mtbench.ControlledConfig{
		Strategy: mtbench.WithNoise(nil, mtbench.Bernoulli(0.4, mtbench.NoiseYield), firstSeed),
		Seed:     firstSeed,
	}, body)
	replayed := mtbench.ReplayControlled(schedule, mtbench.ControlledConfig{}, body)
	fmt.Printf("recorded verdict=%v, replayed verdict=%v (diverged=%v)\n",
		res.Verdict, replayed.Verdict, replayed.Diverged)
}
