// Exploredp: systematically explore the dining philosophers and prove
// the deadlock — then prove the resource-ordering fix deadlock-free by
// exhausting its (bounded) schedule space. Random testing can only
// ever say "not found"; exploration draws the distinction.
//
// The search runs sharded across all cores (ExploreOptions.Workers).
// No schedule is ever executed twice; with sleep sets enabled (as
// here) the shard boundaries prune a little less than serial order,
// so the exhaustion proof may cost some extra schedules — but never
// soundness.
package main

import (
	"fmt"

	"mtbench"
)

func explore(progName string) {
	prog, err := mtbench.GetProgram(progName)
	if err != nil {
		panic(err)
	}
	body := prog.BodyWith(mtbench.ProgramParams{"philosophers": 2, "rounds": 1})

	res := mtbench.Explore(mtbench.ExploreOptions{
		MaxSchedules:   200000,
		StopAtFirstBug: true,
		SleepSets:      true,
		Workers:        0, // 0 = one search worker per core
		Name:           progName,
	}, body)
	if res.Err != nil {
		panic(res.Err)
	}

	fmt.Printf("%s: %d schedules", progName, res.Schedules)
	switch {
	case len(res.Bugs) > 0:
		bug := res.Bugs[0]
		fmt.Printf(" -> %s found at schedule #%d\n", bug.Result.Verdict, bug.Index)
		fmt.Printf("  %s\n", bug.Result.DeadlockInfo)
		// The scenario is replayable: same schedule, same deadlock.
		rep := mtbench.RunControlled(mtbench.ControlledConfig{
			Strategy: &mtbench.FixedSchedule{Decisions: bug.Schedule},
		}, body)
		fmt.Printf("  replayed: %v\n", rep.Verdict)
	case res.Exhausted:
		fmt.Printf(" -> schedule space exhausted, no bug exists at this size\n")
	default:
		fmt.Printf(" -> budget exhausted, nothing found\n")
	}
}

func main() {
	explore("philosophers")      // all left-handed: deadlock exists
	explore("philosophersfixed") // ordered forks: provably clean
}
