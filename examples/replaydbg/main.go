// Replaydbg: the debugging story of §2.2 — hunt a heisenbug with
// noise, save the failing schedule to disk as a scenario file, reload
// it, and replay the failure at will (here: ten times in a row),
// including with extra instrumentation attached that would normally
// perturb the timing away ("the observer effect" defeated).
package main

import (
	"bytes"
	"fmt"

	"mtbench"
)

func main() {
	prog, err := mtbench.GetProgram("workqueue")
	if err != nil {
		panic(err)
	}
	body := prog.BodyWith(nil)

	// Phase 1: hunt. Noise until the shutdown deadlock shows up.
	var schedule *mtbench.Schedule
	var verdict mtbench.Verdict
	for seed := int64(0); seed < 2000; seed++ {
		st := mtbench.WithNoise(nil, mtbench.Bernoulli(0.5, mtbench.NoiseYield), seed)
		res, s := mtbench.RecordControlled(mtbench.ControlledConfig{
			Strategy: st, Seed: seed, Name: prog.Name, MaxSteps: 500_000,
		}, body)
		if res.Verdict != mtbench.VerdictPass {
			fmt.Printf("found %v at seed %d after %d schedules\n", res.Verdict, seed, seed+1)
			fmt.Printf("  %s\n", res.DeadlockInfo)
			schedule, verdict = s, res.Verdict
			break
		}
	}
	if schedule == nil {
		fmt.Println("no failure found in the seed budget")
		return
	}

	// Phase 2: persist the scenario (here: a buffer; a file in real
	// use) and reload it.
	var file bytes.Buffer
	if err := schedule.Save(&file); err != nil {
		panic(err)
	}
	loaded, err := mtbench.LoadSchedule(&file)
	if err != nil {
		panic(err)
	}
	fmt.Printf("scenario saved and reloaded: %d scheduling decisions\n", len(loaded.Decisions))

	// Phase 3: replay deterministically — with a debugging listener
	// attached, which would normally chase the bug away.
	reproduced := 0
	for i := 0; i < 10; i++ {
		events := 0
		res := mtbench.ReplayControlled(loaded, mtbench.ControlledConfig{
			Listeners: []mtbench.Listener{mtbench.ListenerFunc(func(*mtbench.Event) { events++ })},
		}, body)
		if res.Verdict == verdict && !res.Diverged {
			reproduced++
		}
	}
	fmt.Printf("replayed 10 times with instrumentation attached: %d/10 reproduced the %v\n",
		reproduced, verdict)
}
