// Noisehunt: compare noise heuristics across the benchmark's program
// repository — a small version of prepared experiment E1, built from
// the public API so researchers can drop in their own heuristic and
// compare it against the stock ones (the paper's "mix-and-match"
// goal).
package main

import (
	"fmt"

	"mtbench"
)

const runs = 60

func detectionRate(prog *mtbench.Program, mk func(seed int64) mtbench.Strategy) float64 {
	body := prog.BodyWith(nil)
	found := 0
	for seed := int64(0); seed < runs; seed++ {
		res := mtbench.RunControlled(mtbench.ControlledConfig{
			Strategy: mk(seed),
			Seed:     seed,
			MaxSteps: 500_000,
		}, body)
		if res.Verdict != mtbench.VerdictPass {
			found++
		}
	}
	return 100 * float64(found) / runs
}

func main() {
	// A custom heuristic, ten lines: perturb only lock acquisitions.
	// Swap in your own here and see the whole comparison update.
	custom := mtbench.SyncNoise(0.6)

	heuristics := []struct {
		name string
		mk   func(seed int64) mtbench.Strategy
	}{
		{"baseline", func(seed int64) mtbench.Strategy { return mtbench.Nonpreemptive() }},
		{"yield-0.4", func(seed int64) mtbench.Strategy {
			return mtbench.WithNoise(nil, mtbench.Bernoulli(0.4, mtbench.NoiseYield), seed)
		}},
		{"sleep-0.4", func(seed int64) mtbench.Strategy {
			return mtbench.WithNoise(nil, mtbench.Bernoulli(0.4, mtbench.NoiseSleep), seed)
		}},
		{"custom-sync", func(seed int64) mtbench.Strategy {
			return mtbench.WithNoise(nil, custom, seed)
		}},
	}

	programs := []string{"account", "checkthenact", "philosophers", "sleepsync", "lockedcounter"}

	fmt.Printf("%-14s", "program")
	for _, h := range heuristics {
		fmt.Printf("  %12s", h.name)
	}
	fmt.Println()
	for _, name := range programs {
		prog, err := mtbench.GetProgram(name)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-14s", name)
		for _, h := range heuristics {
			fmt.Printf("  %11.1f%%", detectionRate(prog, h.mk))
		}
		fmt.Println()
	}
	fmt.Println("\n(rows are bug-detection rates over", runs, "seeded runs; lockedcounter is correct — any nonzero value there is a harness bug)")
}
