// Fuzzhunt: hunt a bug with coverage-guided schedule fuzzing and
// replay the catch — the E11 story told through the public API.
//
// The target is "abastack", the lock-free stack whose ABA window needs
// a precisely placed preemption: blind random scheduling needs on the
// order of a thousand attempts to land it, while the fuzzer's corpus
// and thread-aware mutators get there in a fraction of the budget.
// The found schedule is then replayed deterministically — the paper's
// save-a-scenario discipline — and the campaign is compared against
// the same budget spent on fresh random runs.
package main

import (
	"fmt"

	"mtbench"
)

const budget = 3000

func main() {
	prog, err := mtbench.GetProgram("abastack")
	if err != nil {
		panic(err)
	}
	body := prog.BodyWith(nil)
	fmt.Printf("target: %s — %s\n\n", prog.Name, prog.Synopsis)

	// 1. The fuzzing campaign: corpus + mutators + coverage feedback.
	res := mtbench.Fuzz(mtbench.FuzzOptions{
		MaxRuns:        budget,
		Seed:           0,
		StopAtFirstBug: true,
		Name:           prog.Name,
	}, body)
	fmt.Printf("fuzz: %d runs, %d coverage tasks, corpus %d, %d coverage-adding runs\n",
		res.Runs, res.Coverage, res.CorpusSize, res.CoverageRuns)
	if len(res.Bugs) == 0 {
		fmt.Println("fuzz: no bug found — raise the budget")
		return
	}
	bug := res.Bugs[0]
	fmt.Printf("fuzz: bug at run #%d: %v\n\n", bug.Index, bug.Result)

	// 2. Replay the catch: the schedule is the complete scenario.
	rep := mtbench.RunControlled(mtbench.ControlledConfig{
		Strategy: &mtbench.FixedSchedule{Decisions: bug.Schedule},
	}, body)
	fmt.Printf("replay: %v\n", rep)
	if rep.Verdict != bug.Result.Verdict {
		panic("replay did not reproduce the bug")
	}

	// 3. The blind baseline: the same budget on fresh random schedules.
	randomFirst := -1
	for seed := int64(0); seed < budget; seed++ {
		r := mtbench.RunControlled(mtbench.ControlledConfig{
			Strategy: mtbench.Random(seed),
			Seed:     seed,
			MaxSteps: 200_000,
		}, body)
		if r.Verdict != mtbench.VerdictPass {
			randomFirst = int(seed) + 1
			break
		}
	}
	if randomFirst < 0 {
		fmt.Printf("random: nothing in %d runs — fuzzing needed %d\n", budget, bug.Index)
	} else {
		fmt.Printf("random: first bug at run #%d — fuzzing needed %d\n", randomFirst, bug.Index)
	}
}
