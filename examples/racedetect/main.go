// Racedetect: record an annotated trace of a buggy program, then
// analyze it offline with three race detectors and a temporal-logic
// property — the benchmark's "evaluate detectors from traces without
// touching the programs" workflow (§4), plus the user-synchronization
// false-alarm story of §2.2.
package main

import (
	"bytes"
	"fmt"

	"mtbench"
)

func analyze(progName string) error {
	prog, err := mtbench.GetProgram(progName)
	if err != nil {
		return err
	}

	// Record one contended execution into an in-memory JSONL trace,
	// annotated with the program's documented bug variables.
	var buf bytes.Buffer
	w := mtbench.NewJSONLTraceWriter(&buf)
	if err := w.WriteHeader(mtbench.TraceHeader{Program: progName, Mode: "controlled"}); err != nil {
		return err
	}
	col := mtbench.NewTraceCollector(w, prog.Annotator())
	mtbench.RunControlled(mtbench.ControlledConfig{
		Strategy:  mtbench.RoundRobin(),
		Listeners: []mtbench.Listener{col},
	}, prog.BodyWith(nil))
	if err := w.Flush(); err != nil {
		return err
	}

	// Offline: three detectors consume the same trace.
	lockset := mtbench.NewLockset()
	hb := mtbench.NewHB(true) // understands atomic-variable sync
	hybrid := mtbench.NewHybrid(true)
	r, err := mtbench.NewJSONLTraceReader(&buf)
	if err != nil {
		return err
	}
	if err := mtbench.ReplayTrace(r, mtbench.ListenerFunc(func(ev *mtbench.Event) {
		lockset.OnEvent(ev)
		hb.OnEvent(ev)
		hybrid.OnEvent(ev)
	})); err != nil {
		return err
	}

	fmt.Printf("%-12s documented bug vars: %v\n", progName, prog.BugVars)
	fmt.Printf("  lockset: %v\n", lockset.WarnedVars())
	fmt.Printf("  hb:      %v\n", hb.WarnedVars())
	fmt.Printf("  hybrid:  %v\n", hybrid.WarnedVars())
	return nil
}

func main() {
	// account: a real race — every detector should name "balance".
	if err := analyze("account"); err != nil {
		panic(err)
	}
	fmt.Println()
	// adhocsync: correct user-implemented synchronization — lockset
	// false-alarms on "payload", the atomics-aware detectors stay
	// quiet. This is §2.2's point about detecting user sync.
	if err := analyze("adhocsync"); err != nil {
		panic(err)
	}
}
