package mtbench_test

// Reproducibility lint: every noise maker, random strategy and native
// runtime must draw randomness from a per-run rand.New(rand.NewSource
// (seed)) — never from math/rand's process-global source — so that a
// (program, seed) pair always reproduces the same schedule (the
// property TestStrategyDeterministicPerSeed pins for one strategy;
// this test pins the whole module). A call to the global source would
// make runs depend on whatever else drew from it first.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// globalRandFuncs are the package-level math/rand functions that read
// the shared global source (or reseed it under callers' feet).
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

func TestNoGlobalRandSource(t *testing.T) {
	fset := token.NewFileSet()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		// Names under which this file imports math/rand (usually
		// "rand", but aliases count too).
		randNames := map[string]bool{}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != "math/rand" && p != "math/rand/v2" {
				continue
			}
			name := "rand"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			randNames[name] = true
		}
		if len(randNames) == 0 {
			return nil
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || !randNames[pkg.Name] || pkg.Obj != nil {
				return true
			}
			if globalRandFuncs[sel.Sel.Name] {
				t.Errorf("%s: %s.%s uses math/rand's global source; route through a per-run rand.New(rand.NewSource(seed))",
					fset.Position(call.Pos()), pkg.Name, sel.Sel.Name)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
