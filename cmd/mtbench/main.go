// Command mtbench is the benchmark's push-button entry point: list the
// program repository, run a single program under a chosen tool, or run
// the prepared experiments (F1, E1..E13) and print their evaluation
// report.
//
// Usage:
//
//	mtbench list
//	mtbench show -prog account
//	mtbench run -prog account -strategy noise -p 0.4 -runs 50
//	mtbench experiments             # run everything (slow)
//	mtbench experiment -id E1       # one experiment
//	mtbench experiment -id E2 -csv  # machine-readable output (CSV)
//	mtbench experiment -id E11 -json # machine-readable output (JSON)
package main

import (
	"flag"
	"fmt"
	"os"

	"mtbench/internal/experiment"
	"mtbench/internal/noise"
	"mtbench/internal/report"
	"mtbench/internal/repository"
	"mtbench/internal/sched"

	// Generated instrumented packages register themselves on import.
	_ "mtbench/internal/genprog"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list", "-list":
		err = list()
	case "show":
		err = show(os.Args[2:])
	case "run":
		err = run(os.Args[2:])
	case "experiment":
		err = runExperiment(os.Args[2:])
	case "experiments":
		err = runAll(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mtbench: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `mtbench — benchmark and framework for multi-threaded testing tools

commands:
  list                            list the program repository
  show -prog NAME                 print a program's bug documentation
  run  -prog NAME [flags]         run a program repeatedly under a tool
  experiment -id ID [-csv|-json]  run one prepared experiment (F1, E1..E13)
  experiments [-csv|-json]        run every prepared experiment
`)
}

func list() error {
	fmt.Printf("%-18s %-20s %-8s %s\n", "NAME", "KIND", "THREADS", "SYNOPSIS")
	for _, p := range repository.All() {
		fmt.Printf("%-18s %-20s %-8d %s\n", p.Name, p.Kind, p.Threads, p.Synopsis)
	}
	return nil
}

func show(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	name := fs.String("prog", "", "program name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := repository.Get(*name)
	if err != nil {
		return err
	}
	fmt.Printf("%s — %s\nkind: %s\nthreads: %d\ndefaults: %v\nbug vars: %v\n\n%s\n",
		p.Name, p.Synopsis, p.Kind, p.Threads, p.Defaults, p.BugVars, p.Doc)
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	name := fs.String("prog", "account", "program name")
	strategy := fs.String("strategy", "noise", "baseline | roundrobin | random | noise | pct")
	p := fs.Float64("p", 0.4, "noise probability (strategy=noise)")
	kind := fs.String("kind", "yield", "noise kind: yield | sleep | mixed")
	runs := fs.Int("runs", 50, "number of seeded runs")
	verbose := fs.Bool("v", false, "print each run's result")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, err := repository.Get(*name)
	if err != nil {
		return err
	}
	body := prog.BodyWith(nil)

	mk := func(seed int64) (sched.Strategy, error) {
		switch *strategy {
		case "baseline":
			return sched.Nonpreemptive(), nil
		case "roundrobin":
			return sched.RoundRobin(), nil
		case "random":
			return sched.Random(seed), nil
		case "pct":
			return sched.PriorityRandom(seed, 3, 10000), nil
		case "noise":
			var k noise.Kind
			switch *kind {
			case "yield":
				k = noise.KindYield
			case "sleep":
				k = noise.KindSleep
			case "mixed":
				k = noise.KindMixed
			default:
				return nil, fmt.Errorf("unknown noise kind %q", *kind)
			}
			return noise.NewStrategy(nil, noise.NewBernoulli(*p, k), seed), nil
		default:
			return nil, fmt.Errorf("unknown strategy %q", *strategy)
		}
	}

	found := 0
	verdicts := map[string]int{}
	for seed := int64(0); seed < int64(*runs); seed++ {
		st, err := mk(seed)
		if err != nil {
			return err
		}
		res := sched.Run(sched.Config{Strategy: st, Seed: seed, Name: prog.Name, MaxSteps: 1_000_000, Plan: prog.Plan}, body)
		verdicts[res.Verdict.String()]++
		if res.Verdict.Bug() {
			found++
			if *verbose {
				fmt.Printf("seed %d: %v\n", seed, res)
			}
		}
	}
	fmt.Printf("program %s under %s: %d/%d runs exposed the bug (%.1f%%)\n",
		prog.Name, *strategy, found, *runs, 100*float64(found)/float64(*runs))
	fmt.Printf("verdicts: %v\n", verdicts)
	return nil
}

func renderTables(tables []*experiment.Table, csv, json bool) error {
	// JSON is one array per invocation, so collectors parse a single
	// document even when an experiment returns several tables.
	return report.WriteTables(os.Stdout, tables, csv, json)
}

func runExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	id := fs.String("id", "", "experiment id (F1, E1..E13)")
	csv := fs.Bool("csv", false, "CSV output")
	json := fs.Bool("json", false, "JSON output (one array of tables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, err := experiment.Get(*id)
	if err != nil {
		return err
	}
	tables, err := r.Run()
	if err != nil {
		return err
	}
	return renderTables(tables, *csv, *json)
}

func runAll(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	csv := fs.Bool("csv", false, "CSV output")
	json := fs.Bool("json", false, "JSON output (one array with every experiment's tables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// JSON aggregates across experiments so stdout stays one parseable
	// document; text and CSV stream per experiment as before.
	var all []*experiment.Table
	for _, r := range experiment.Runners() {
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", r.ID, r.Title)
		tables, err := r.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		if *json {
			all = append(all, tables...)
			continue
		}
		if err := renderTables(tables, *csv, false); err != nil {
			return err
		}
	}
	if *json {
		return experiment.JSONAll(os.Stdout, all)
	}
	return nil
}
