// Command pct runs probabilistic concurrency testing over a repository
// program: random thread priorities, d−1 random priority-change points
// per run, and a per-run lower bound on the probability of hitting any
// bug of depth d (see internal/pct). Failing schedules are saved as
// replayable scenario files, the same record-everything discipline as
// cmd/explore and cmd/fuzz.
//
// Usage:
//
//	pct -prog account -runs 500 -seed 1
//	pct -prog account -runs 200 -seed 1 -json      # machine-readable (CI smoke)
//	pct -prog philosophers -depth 2 -first=false
//	pct -prog philosophers -save scenario.json
//	pct -prog philosophers -replay scenario.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mtbench/internal/core"
	"mtbench/internal/pct"
	"mtbench/internal/profiling"
	"mtbench/internal/replay"
	"mtbench/internal/repository"
	"mtbench/internal/sched"

	// Generated instrumented packages register themselves on import.
	_ "mtbench/internal/genprog"
)

func main() {
	prog := flag.String("prog", "account", "program to test")
	params := flag.String("params", "", "program parameter overrides, k=v comma-separated (e.g. depositors=2,deposits=1)")
	runs := flag.Int("runs", 500, "run budget")
	seed := flag.Int64("seed", 0, "master seed (a fixed seed reproduces the campaign)")
	depth := flag.Int("depth", 0, "targeted bug depth d: d-1 priority-change points per run (0 = default)")
	stopFirst := flag.Bool("first", true, "stop at first bug")
	jsonOut := flag.Bool("json", false, "emit one JSON object instead of text (first_bug is null when no bug was found)")
	save := flag.String("save", "", "save the first failing scenario to this file")
	replayPath := flag.String("replay", "", "replay a saved scenario instead of testing")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	list := flag.Bool("list", false, "list the registered programs and exit")
	flag.Parse()

	if *list {
		for _, p := range repository.All() {
			fmt.Printf("%-18s %-20s %s\n", p.Name, p.Kind, p.Synopsis)
		}
		return
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pct:", err)
		os.Exit(1)
	}
	err = run(*prog, *params, *runs, *depth, *seed, *stopFirst, *jsonOut, *save, *replayPath)
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pct:", err)
		os.Exit(1)
	}
}

// jsonReport fixes the machine-readable serialization CI's
// bounded-smoke step asserts on; field names are pinned independently
// of the pct package's Go structs.
type jsonReport struct {
	Program        string    `json:"program"`
	Seed           int64     `json:"seed"`
	Depth          int       `json:"depth"`
	Runs           int       `json:"runs"`
	FirstBug       *int      `json:"first_bug"` // null = no bug found
	Bugs           []jsonBug `json:"bugs"`
	EstimatedSteps int64     `json:"estimated_steps"`
	MaxThreads     int       `json:"max_threads"`
}

type jsonBug struct {
	Index     int    `json:"index"`
	Signature string `json:"signature"`
	Verdict   string `json:"verdict"`
	Decisions int    `json:"decisions"`
}

// parseParams parses "k=v,k=v" overrides (same syntax as cmd/explore).
func parseParams(s string) (repository.Params, error) {
	if s == "" {
		return nil, nil
	}
	out := repository.Params{}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad -params entry %q (want k=v)", kv)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad -params value %q: %v", kv, err)
		}
		out[k] = n
	}
	return out, nil
}

func run(progName, params string, runs, depth int, seed int64, stopFirst, jsonOut bool, save, replayPath string) error {
	prog, err := repository.Get(progName)
	if err != nil {
		return err
	}
	over, err := parseParams(params)
	if err != nil {
		return err
	}
	body := prog.BodyWith(over)

	if replayPath != "" {
		s, err := replay.LoadFile(replayPath)
		if err != nil {
			return err
		}
		res := replay.ReplayControlled(s, sched.Config{Name: progName}, body)
		if jsonOut {
			return json.NewEncoder(os.Stdout).Encode(map[string]any{
				"program":   progName,
				"decisions": len(s.Decisions),
				"verdict":   res.Verdict.String(),
				"diverged":  res.Diverged,
			})
		}
		fmt.Printf("replayed scenario (%d decisions): %v\n", len(s.Decisions), res)
		return nil
	}

	res := pct.Run(pct.Options{
		MaxRuns:        runs,
		Seed:           seed,
		Depth:          depth,
		StopAtFirstBug: stopFirst,
		Name:           progName,
		Plan:           prog.Plan,
	}, body)

	if jsonOut {
		rep := jsonReport{
			Program:        progName,
			Seed:           seed,
			Depth:          depth,
			Runs:           res.Runs,
			Bugs:           []jsonBug{},
			EstimatedSteps: res.EstimatedSteps,
			MaxThreads:     res.MaxThreads,
		}
		if first := res.FirstBugIndex(); first >= 1 {
			rep.FirstBug = &first
		}
		for _, b := range res.Bugs {
			rep.Bugs = append(rep.Bugs, jsonBug{
				Index:     b.Index,
				Signature: core.BugSignature(b.Result),
				Verdict:   b.Result.Verdict.String(),
				Decisions: len(b.Schedule),
			})
		}
		if err := json.NewEncoder(os.Stdout).Encode(rep); err != nil {
			return err
		}
		if stopFirst && len(res.Bugs) == 0 {
			return fmt.Errorf("no bug found within %d runs", res.Runs)
		}
		return saveScenario(save, progName, seed, res)
	}

	fmt.Printf("runs executed: %d (estimated steps k=%d, max threads n=%d)\n",
		res.Runs, res.EstimatedSteps, res.MaxThreads)
	fmt.Printf("bugs found: %d\n", len(res.Bugs))
	for _, b := range res.Bugs {
		fmt.Printf("  run #%d: %v\n", b.Index, b.Result)
	}
	// A first-bug hunt that found nothing exits non-zero, so campaign
	// scripts (and CI's bounded smoke) detect a dead search, not just a
	// crashed one.
	if stopFirst && len(res.Bugs) == 0 {
		return fmt.Errorf("no bug found within %d runs", res.Runs)
	}
	return saveScenario(save, progName, seed, res)
}

// saveScenario writes the first failing schedule as a replayable
// scenario file when asked and a bug exists.
func saveScenario(save, progName string, seed int64, res *pct.Result) error {
	if save == "" || len(res.Bugs) == 0 {
		return nil
	}
	s := &replay.Schedule{
		Program:   progName,
		Mode:      "controlled",
		Seed:      seed,
		Strategy:  "pct",
		Decisions: append([]core.ThreadID(nil), res.Bugs[0].Schedule...),
	}
	if err := s.SaveFile(save); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "saved failing scenario to %s (%d decisions)\n", save, len(s.Decisions))
	return nil
}
