// Command tracegen is the benchmark's trace-production script (§4:
// "a script for producing any number of desirable traces in the above
// format", with inputs deciding the format and the instrumented
// points). It runs repository programs under seeded schedules and
// writes annotated traces.
//
// Usage:
//
//	tracegen -prog account -seeds 10 -format binary -out traces/
//	tracegen -prog philosophers -strategy random -format jsonl -out -   # stdout, one seed
//	tracegen -prog account -only-sync -out traces/                      # restrict instrumented points
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mtbench/internal/core"
	"mtbench/internal/instrument"
	"mtbench/internal/noise"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
	"mtbench/internal/trace"
)

func main() {
	prog := flag.String("prog", "account", "program to trace")
	seeds := flag.Int("seeds", 1, "number of traces (one per seed)")
	strategy := flag.String("strategy", "noise", "baseline | random | noise")
	p := flag.Float64("p", 0.4, "noise probability")
	format := flag.String("format", "jsonl", "jsonl | binary")
	out := flag.String("out", "-", "output directory, or - for stdout (single seed)")
	onlySync := flag.Bool("only-sync", false, "record only synchronization and lifecycle events")
	flag.Parse()

	if err := run(*prog, *seeds, *strategy, *p, *format, *out, *onlySync); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(progName string, seeds int, strategy string, p float64, format, out string, onlySync bool) error {
	prog, err := repository.Get(progName)
	if err != nil {
		return err
	}
	if out == "-" && seeds != 1 {
		return fmt.Errorf("stdout output supports exactly one seed")
	}

	var plan *instrument.Plan
	if onlySync {
		plan = instrument.All().DisableOps(core.OpYield, core.OpSleep)
	}

	for seed := int64(0); seed < int64(seeds); seed++ {
		var w io.Writer
		var closeFn func() error
		if out == "-" {
			w = os.Stdout
			closeFn = func() error { return nil }
		} else {
			if err := os.MkdirAll(out, 0o755); err != nil {
				return err
			}
			ext := "jsonl"
			if format == "binary" {
				ext = "mtbt"
			}
			path := filepath.Join(out, fmt.Sprintf("%s-%d.%s", progName, seed, ext))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			w = f
			closeFn = f.Close
			fmt.Fprintf(os.Stderr, "writing %s\n", path)
		}

		var tw trace.Writer
		switch format {
		case "jsonl":
			tw = trace.NewJSONLWriter(w)
		case "binary":
			tw = trace.NewBinaryWriter(w)
		default:
			return fmt.Errorf("unknown format %q", format)
		}

		var st sched.Strategy
		switch strategy {
		case "baseline":
			st = sched.Nonpreemptive()
		case "random":
			st = sched.Random(seed)
		case "noise":
			st = noise.NewStrategy(nil, noise.NewBernoulli(p, noise.KindYield), seed)
		default:
			return fmt.Errorf("unknown strategy %q", strategy)
		}

		if err := tw.WriteHeader(trace.Header{
			Program:  progName,
			Mode:     "controlled",
			Seed:     seed,
			Strategy: strategy,
			Bug:      prog.Synopsis,
		}); err != nil {
			return err
		}
		col := trace.NewCollector(tw, prog.Annotator())
		res := sched.Run(sched.Config{
			Strategy:  st,
			Seed:      seed,
			Plan:      plan,
			MaxSteps:  1_000_000,
			Listeners: []core.Listener{col},
			Name:      progName,
		}, prog.BodyWith(nil))
		if err := col.Err(); err != nil {
			return err
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		if err := closeFn(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "seed %d: %s (%d events)\n", seed, res.Verdict, res.Events)
	}
	return nil
}
