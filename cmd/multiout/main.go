// Command multiout runs the benchmark's no-input, many-outcomes
// program (§4, component 4) repeatedly under a chosen scheduling tool
// and prints the outcome distribution — the measure on which "tools
// such as noise makers can be compared".
//
// Usage:
//
//	multiout -runs 200 -tool noise -p 0.4
//	multiout -runs 1 -tool baseline -v     # one run, print the raw outcome
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mtbench/internal/multiout"
	"mtbench/internal/noise"
	"mtbench/internal/sched"
)

func main() {
	runs := flag.Int("runs", 100, "number of runs")
	tool := flag.String("tool", "noise", "baseline | dispatch | noise | random | pct")
	p := flag.Float64("p", 0.4, "noise probability")
	verbose := flag.Bool("v", false, "print every run's canonical outcome")
	flag.Parse()

	body := multiout.Body()
	dist := multiout.Distribution{}
	for seed := int64(0); seed < int64(*runs); seed++ {
		var st sched.Strategy
		switch *tool {
		case "baseline":
			st = sched.Nonpreemptive()
		case "dispatch":
			st = sched.RandomWhenBlocked(seed)
		case "noise":
			st = noise.NewStrategy(nil, noise.NewBernoulli(*p, noise.KindYield), seed)
		case "random":
			st = sched.Random(seed)
		case "pct":
			st = sched.PriorityRandom(seed, 3, 5000)
		default:
			fmt.Fprintf(os.Stderr, "multiout: unknown tool %q\n", *tool)
			os.Exit(2)
		}
		res := sched.Run(sched.Config{Strategy: st, Seed: seed}, body)
		dist.Add(res)
		if *verbose {
			fmt.Println(multiout.Canonical(res))
		}
	}

	fmt.Printf("tool=%s runs=%d distinct=%d entropy=%.2f bits\n",
		*tool, dist.Runs(), dist.Distinct(), dist.Entropy())

	type kv struct {
		outcome string
		count   int
	}
	var sorted []kv
	for o, c := range dist {
		sorted = append(sorted, kv{o, c})
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].count != sorted[j].count {
			return sorted[i].count > sorted[j].count
		}
		return sorted[i].outcome < sorted[j].outcome
	})
	for i, e := range sorted {
		if i >= 15 {
			fmt.Printf("... and %d more outcomes\n", len(sorted)-15)
			break
		}
		fmt.Printf("%6.1f%%  %s\n", 100*float64(e.count)/float64(dist.Runs()), e.outcome)
	}
}
