// Command racecheck analyzes recorded traces offline: Eraser lockset,
// happens-before, GoodLock deadlock potentials, and optional temporal
// properties — the JPaX pipeline of §3 run "with the push of a
// button" against the benchmark's trace artifacts.
//
// Usage:
//
//	racecheck trace.jsonl
//	racecheck -detectors lockset,hb trace.mtbt
//	racecheck -prop 'H(write(balance) -> O lock(*))' trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mtbench/internal/core"
	"mtbench/internal/deadlock"
	"mtbench/internal/ltl"
	"mtbench/internal/race"
	"mtbench/internal/trace"
)

func main() {
	detectors := flag.String("detectors", "lockset,hb,hybrid", "comma-separated: lockset, hb, hb-noatomics, hybrid")
	props := multiFlag{}
	flag.Var(&props, "prop", "past-time LTL property (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: racecheck [flags] trace-file")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), strings.Split(*detectors, ","), props); err != nil {
		fmt.Fprintln(os.Stderr, "racecheck:", err)
		os.Exit(1)
	}
}

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ";") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func openTrace(path string) (trace.Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	// Sniff the codec by the magic bytes.
	head := make([]byte, 4)
	n, _ := f.ReadAt(head, 0)
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	if n == 4 && string(head) == "MTBT" {
		return trace.NewBinaryReader(f)
	}
	return trace.NewJSONLReader(f)
}

func run(path string, detNames []string, props []string) error {
	r, err := openTrace(path)
	if err != nil {
		return err
	}
	h := r.Header()
	fmt.Printf("trace: program=%s mode=%s seed=%d strategy=%s\n", h.Program, h.Mode, h.Seed, h.Strategy)
	if h.Bug != "" {
		fmt.Printf("documented bug: %s\n", h.Bug)
	}

	var listeners core.MultiListener
	var rds []race.Detector
	for _, name := range detNames {
		var d race.Detector
		switch strings.TrimSpace(name) {
		case "":
			continue
		case "lockset":
			d = race.NewLockset()
		case "hb":
			d = race.NewHB(true)
		case "hb-noatomics":
			d = race.NewHB(false)
		case "hybrid":
			d = race.NewHybrid(true)
		default:
			return fmt.Errorf("unknown detector %q", name)
		}
		rds = append(rds, d)
		listeners = append(listeners, d)
	}
	gl := deadlock.NewAnalyzer()
	listeners = append(listeners, gl)

	var monitors []*ltl.Monitor
	for _, src := range props {
		f, err := ltl.Parse(src)
		if err != nil {
			return err
		}
		m := ltl.NewMonitor(f)
		monitors = append(monitors, m)
		listeners = append(listeners, m)
	}

	records := 0
	listeners = append(listeners, core.ListenerFunc(func(*core.Event) { records++ }))
	if err := trace.Replay(r, listeners); err != nil {
		return err
	}
	fmt.Printf("records: %d\n\n", records)

	for _, d := range rds {
		ws := d.Warnings()
		fmt.Printf("%s: %d warnings on %v\n", d.Name(), len(ws), d.WarnedVars())
		for _, w := range ws {
			fmt.Printf("  %s\n", w)
		}
	}
	pots := gl.Potentials()
	fmt.Printf("lock-graph: %d deadlock potentials\n", len(pots))
	for _, p := range pots {
		fmt.Printf("  %s\n", p)
	}
	for _, m := range monitors {
		fmt.Printf("property %s: %d violations\n", m.Property, len(m.Violations()))
		for i, v := range m.Violations() {
			if i >= 5 {
				fmt.Printf("  ... and %d more\n", len(m.Violations())-5)
				break
			}
			fmt.Printf("  at record %d: %s\n", v.Seq, v.Event.String())
		}
	}
	return nil
}
