package main

import (
	"runtime"
	"testing"
	"time"
)

// measure runs one workload. Full mode goes through testing.Benchmark
// (auto-scaled iteration counts, the same machinery as `go test
// -bench`); quick mode times a single iteration by hand, which is what
// the CI smoke job runs — every metric present, minimal wall clock.
func measure(w workload, quick bool) (Entry, error) {
	if quick {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := w.run(0); err != nil {
			return Entry{}, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		e := Entry{
			Name:        w.name,
			Iterations:  1,
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: int64(after.Mallocs - before.Mallocs),
		}
		if elapsed > 0 {
			e.SchedulesPerSec = float64(w.schedulesPerOp) / elapsed.Seconds()
		}
		return e, nil
	}

	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := w.run(i); err != nil {
				runErr = err
				b.FailNow()
			}
		}
	})
	if runErr != nil {
		return Entry{}, runErr
	}
	e := Entry{
		Name:        w.name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if r.T > 0 {
		e.SchedulesPerSec = float64(r.N*w.schedulesPerOp) / r.T.Seconds()
	}
	return e, nil
}
