// Command bench runs the framework's schedules-per-second benchmarks
// outside `go test` and emits a machine-readable JSON file — the perf
// trajectory artifact each performance PR checks in (BENCH_<n>.json)
// or uploads from CI, so throughput changes are visible run over run
// instead of living in PR descriptions.
//
// The workloads mirror BenchmarkExploreWorkers and BenchmarkFuzz (same
// programs, same shrunken parameters, same budgets), plus a raw
// pooled-runner microbenchmark of the controlled runtime itself. Each
// entry reports ns/op, schedules/sec and allocs/op as measured by
// testing.Benchmark.
//
// Usage:
//
//	bench -out auto                  # next BENCH_<n>.json after the highest checked in
//	bench -quick -out bench.json     # one iteration per workload (CI smoke)
//	bench -list                      # print workload names
//	bench -compare OLD.json NEW.json # regression table; exit 1 beyond -threshold
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"mtbench/internal/core"
	"mtbench/internal/explore"
	"mtbench/internal/fuzz"
	"mtbench/internal/profiling"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

// smallParams shrinks the larger repository programs exactly as the
// package benchmarks do, so numbers are comparable with `go test
// -bench` output.
var smallParams = map[string]repository.Params{
	"account":      {"depositors": 2, "deposits": 1},
	"statmax":      {"reporters": 2},
	"philosophers": {"philosophers": 2, "rounds": 1},
}

// budget is the per-op schedule budget shared by the search workloads.
const budget = 2000

// Entry is one benchmark result. Field names are pinned: CI tooling
// and trend scripts parse them.
type Entry struct {
	Name            string  `json:"name"`
	Iterations      int     `json:"iterations"`
	NsPerOp         int64   `json:"ns_per_op"`
	SchedulesPerSec float64 `json:"schedules_per_sec"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
}

// Report is the top-level JSON document. GoMaxProcs records the
// parallelism actually available to the run (CI boxes routinely pin
// containers to one core while NumCPU reports the host), so worker-
// scaling trajectories across BENCH files are interpretable.
type Report struct {
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Benchmarks []Entry `json:"benchmarks"`
}

// workload is one named benchmark body (run executes iteration i);
// schedulesPerOp converts ns/op into schedules/sec.
type workload struct {
	name           string
	schedulesPerOp int
	run            func(i int) error
}

func body(name string) (func(core.T), error) {
	prog, err := repository.Get(name)
	if err != nil {
		return nil, err
	}
	return prog.BodyWith(smallParams[name]), nil
}

// workloads builds the benchmark list; profiled turns on the driver's
// pprof phase labels (see DESIGN.md) in the exploration workloads so a
// -cpuprofile run attributes samples per phase.
func workloads(profiled bool) ([]workload, error) {
	var out []workload

	// Raw controlled-runtime throughput: one pooled runner executing
	// the nonpreemptive baseline schedule back to back. This is the
	// floor every search tool builds on.
	accountBody, err := body("account")
	if err != nil {
		return nil, err
	}
	runner := sched.NewRunner()             // lives for the process; pooling is the point
	runner.Run(sched.Config{}, accountBody) // warm the pool outside the timer
	out = append(out, workload{
		name:           "sched/pooled-run/account",
		schedulesPerOp: 1,
		run: func(int) error {
			runner.Run(sched.Config{}, accountBody)
			return nil
		},
	})

	// On a box with one schedulable core (GOMAXPROCS=1) multi-worker
	// runs measure the same serial execution with extra coordination
	// noise — the flat "scaling" BENCH_4.json recorded on the 1-CPU CI
	// runner. Skip the redundant counts there; the header's gomaxprocs
	// says why the matrix is smaller.
	workerCounts := []int{1, 2, 4, runtime.NumCPU()}
	if runtime.GOMAXPROCS(0) == 1 {
		workerCounts = []int{1}
	}
	seen := map[int]bool{}
	var workers []int
	for _, w := range workerCounts {
		if !seen[w] {
			seen[w] = true
			workers = append(workers, w)
		}
	}

	for _, prog := range []string{"philosophers", "account"} {
		pb, err := body(prog)
		if err != nil {
			return nil, err
		}
		for _, w := range workers {
			w := w
			out = append(out, workload{
				name:           fmt.Sprintf("explore/%s/workers=%d", prog, w),
				schedulesPerOp: budget,
				run: func(int) error {
					res := explore.Explore(explore.Options{MaxSchedules: budget, Workers: w, ProfileLabels: profiled}, pb)
					return res.Err
				},
			})
		}
	}

	// Reduced exploration: DPOR + state cache exhaust the whole tree
	// in a fraction of the schedules, so the op is "explore the full
	// reduced tree" and schedules/sec reflects the reduced count
	// (learned by a warm-up exhaustion outside the timer).
	for _, prog := range []string{"philosophers", "account"} {
		pb, err := body(prog)
		if err != nil {
			return nil, err
		}
		porOpts := explore.Options{MaxSchedules: 200000, Workers: 1, DPOR: true, StateCache: true, ProfileLabels: profiled}
		warm := explore.Explore(porOpts, pb)
		if warm.Err != nil {
			return nil, warm.Err
		}
		out = append(out, workload{
			name:           fmt.Sprintf("explore-por/%s/workers=1", prog),
			schedulesPerOp: warm.Schedules,
			run: func(int) error {
				res := explore.Explore(porOpts, pb)
				return res.Err
			},
		})
	}

	// Checkpointed exploration: the same exhaustive searches with a
	// parked-runner budget (explore.Options.Checkpoints), which trades
	// prefix replay for suspended runners. Checkpointing requires the
	// state cache (parks happen at cache cuts), so the explore/* variant
	// here is cache-only reduction and the explore-por/* variant is the
	// full reduced stack. The coast-mode entries above keep their pinned
	// names and configs so trajectories stay comparable across BENCH
	// files.
	for _, prog := range []string{"philosophers", "account"} {
		pb, err := body(prog)
		if err != nil {
			return nil, err
		}
		for _, mode := range []struct {
			family string
			dpor   bool
		}{
			{"explore", false},
			{"explore-por", true},
		} {
			opts := explore.Options{
				MaxSchedules: 200000, Workers: 1,
				DPOR: mode.dpor, StateCache: true, Checkpoints: 4,
				ProfileLabels: profiled,
			}
			warm := explore.Explore(opts, pb)
			if warm.Err != nil {
				return nil, warm.Err
			}
			out = append(out, workload{
				name:           fmt.Sprintf("%s/%s/workers=1/checkpoints=4", mode.family, prog),
				schedulesPerOp: warm.Schedules,
				run: func(int) error {
					res := explore.Explore(opts, pb)
					return res.Err
				},
			})
		}
	}

	for _, prog := range []string{"account", "abastack"} {
		pb, err := body(prog)
		if err != nil {
			return nil, err
		}
		for _, w := range workers {
			w := w
			out = append(out, workload{
				name:           fmt.Sprintf("fuzz/%s/workers=%d", prog, w),
				schedulesPerOp: budget,
				run: func(i int) error {
					fuzz.Fuzz(fuzz.Options{MaxRuns: budget, Seed: int64(i), Workers: w}, pb)
					return nil
				},
			})
		}
	}
	return out, nil
}

func main() {
	out := flag.String("out", "auto", "output JSON path (- for stdout, auto = next BENCH_<n>.json)")
	quick := flag.Bool("quick", false, "single iteration per workload (CI smoke)")
	list := flag.Bool("list", false, "list workload names and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	compare := flag.String("compare", "", "compare this old report against the NEW.json positional argument instead of benchmarking")
	threshold := flag.Float64("threshold", 1.5, "ns/op regression ratio that fails -compare (1.5 = 50% slower)")
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "bench: -compare takes exactly one positional argument (usage: bench -compare OLD.json NEW.json)")
			os.Exit(2)
		}
		regressed, err := runCompare(*compare, flag.Arg(0), *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	err = run(*out, *quick, *list, *cpuProfile != "")
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// resolveOut expands "auto" to the BENCH_<n>.json following the
// highest-numbered one already present (BENCH_1.json when none exist),
// so a perf PR never clobbers the checked-in trajectory it extends.
func resolveOut(out string) (string, error) {
	if out != "auto" {
		return out, nil
	}
	names, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", err
	}
	max := 0
	for _, name := range names {
		var n int
		if _, err := fmt.Sscanf(name, "BENCH_%d.json", &n); err == nil && n > max {
			max = n
		}
	}
	return fmt.Sprintf("BENCH_%d.json", max+1), nil
}

func run(out string, quick, list, profiled bool) error {
	out, err := resolveOut(out)
	if err != nil {
		return err
	}
	ws, err := workloads(profiled)
	if err != nil {
		return err
	}
	if list {
		for _, w := range ws {
			fmt.Println(w.name)
		}
		return nil
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Benchmarks: make([]Entry, 0, len(ws)),
	}
	for _, w := range ws {
		e, err := measure(w, quick)
		if err != nil {
			return fmt.Errorf("%s: %w", w.name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
		fmt.Fprintf(os.Stderr, "%-34s %12d ns/op %12.0f schedules/sec %8d allocs/op\n",
			e.Name, e.NsPerOp, e.SchedulesPerSec, e.AllocsPerOp)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool { return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name })

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", out, len(rep.Benchmarks))
	return nil
}
