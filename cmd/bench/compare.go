// Benchmark regression comparison: `bench -compare OLD.json NEW.json`
// diffs two reports written by this command and emits a
// machine-readable table of per-workload deltas. CI runs it between
// the newest checked-in BENCH_<n>.json and the smoke run's fresh
// report, failing the build when any shared workload slowed down
// beyond the -threshold ratio.
//
// The verdict is keyed on ns/op only: schedules/sec is derived from
// it, and allocs/op is reported for diagnosis but does not gate (an
// alloc count change shows up as a deliberate diff in the checked-in
// trajectory, not a flaky timing signal). Workloads present on only
// one side are listed as missing/added and never gate either — worker
// matrices legitimately differ across machines (see workloads).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// compareRow is one shared workload's delta. Field names are pinned:
// CI tooling parses them.
type compareRow struct {
	Name string `json:"name"`

	OldNsPerOp int64   `json:"old_ns_per_op"`
	NewNsPerOp int64   `json:"new_ns_per_op"`
	NsDeltaPct float64 `json:"ns_delta_pct"`

	OldSchedulesPerSec float64 `json:"old_schedules_per_sec"`
	NewSchedulesPerSec float64 `json:"new_schedules_per_sec"`
	SchedulesDeltaPct  float64 `json:"schedules_delta_pct"`

	OldAllocsPerOp int64   `json:"old_allocs_per_op"`
	NewAllocsPerOp int64   `json:"new_allocs_per_op"`
	AllocsDeltaPct float64 `json:"allocs_delta_pct"`

	// Regressed is true when new ns/op exceeds old ns/op by more than
	// the threshold ratio.
	Regressed bool `json:"regressed"`
}

// compareReport is the top-level -compare JSON document, written to
// stdout (the human-readable table goes to stderr).
type compareReport struct {
	Old       string       `json:"old"`
	New       string       `json:"new"`
	Threshold float64      `json:"threshold"`
	Rows      []compareRow `json:"rows"`
	// Missing lists workloads in the old report only; Added lists
	// workloads in the new report only. Neither gates.
	Missing []string `json:"missing,omitempty"`
	Added   []string `json:"added,omitempty"`
	// Regressions counts rows with Regressed set; the process exits
	// non-zero when it is positive.
	Regressions int `json:"regressions"`
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func deltaPct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// runCompare diffs oldPath against newPath and reports whether any
// shared workload regressed beyond threshold (a ratio: 1.5 fails a
// workload that got more than 50% slower).
func runCompare(oldPath, newPath string, threshold float64) (regressed bool, err error) {
	if threshold <= 0 {
		return false, fmt.Errorf("-threshold must be positive, got %v", threshold)
	}
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return false, err
	}

	oldBy := make(map[string]Entry, len(oldRep.Benchmarks))
	for _, e := range oldRep.Benchmarks {
		oldBy[e.Name] = e
	}
	newBy := make(map[string]Entry, len(newRep.Benchmarks))
	for _, e := range newRep.Benchmarks {
		newBy[e.Name] = e
	}

	out := compareReport{Old: oldPath, New: newPath, Threshold: threshold}
	for _, o := range oldRep.Benchmarks {
		n, ok := newBy[o.Name]
		if !ok {
			out.Missing = append(out.Missing, o.Name)
			continue
		}
		row := compareRow{
			Name:               o.Name,
			OldNsPerOp:         o.NsPerOp,
			NewNsPerOp:         n.NsPerOp,
			NsDeltaPct:         deltaPct(float64(o.NsPerOp), float64(n.NsPerOp)),
			OldSchedulesPerSec: o.SchedulesPerSec,
			NewSchedulesPerSec: n.SchedulesPerSec,
			SchedulesDeltaPct:  deltaPct(o.SchedulesPerSec, n.SchedulesPerSec),
			OldAllocsPerOp:     o.AllocsPerOp,
			NewAllocsPerOp:     n.AllocsPerOp,
			AllocsDeltaPct:     deltaPct(float64(o.AllocsPerOp), float64(n.AllocsPerOp)),
			Regressed:          float64(n.NsPerOp) > float64(o.NsPerOp)*threshold,
		}
		if row.Regressed {
			out.Regressions++
		}
		out.Rows = append(out.Rows, row)
	}
	for _, n := range newRep.Benchmarks {
		if _, ok := oldBy[n.Name]; !ok {
			out.Added = append(out.Added, n.Name)
		}
	}
	sort.Slice(out.Rows, func(i, j int) bool { return out.Rows[i].Name < out.Rows[j].Name })
	sort.Strings(out.Missing)
	sort.Strings(out.Added)

	for _, r := range out.Rows {
		mark := " "
		if r.Regressed {
			mark = "!"
		}
		fmt.Fprintf(os.Stderr, "%s %-40s %12d -> %12d ns/op %+7.1f%%  %10.0f -> %10.0f sched/s  %6d -> %6d allocs %+7.1f%%\n",
			mark, r.Name, r.OldNsPerOp, r.NewNsPerOp, r.NsDeltaPct,
			r.OldSchedulesPerSec, r.NewSchedulesPerSec,
			r.OldAllocsPerOp, r.NewAllocsPerOp, r.AllocsDeltaPct)
	}
	for _, name := range out.Missing {
		fmt.Fprintf(os.Stderr, "- %-40s only in %s\n", name, oldPath)
	}
	for _, name := range out.Added {
		fmt.Fprintf(os.Stderr, "+ %-40s only in %s\n", name, newPath)
	}
	fmt.Fprintf(os.Stderr, "%d workloads compared, %d regressed (threshold %.2fx)\n",
		len(out.Rows), out.Regressions, threshold)

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return false, err
	}
	data = append(data, '\n')
	if _, err := os.Stdout.Write(data); err != nil {
		return false, err
	}
	return out.Regressions > 0, nil
}
