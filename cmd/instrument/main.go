// Command instrument drives the source-to-source rewrite pipeline: it
// turns the ordinary Go packages under -src into instrumented packages
// under -out that run on the controlled scheduler and register
// themselves with the program repository.
//
// Usage:
//
//	instrument                 # regenerate internal/genprog from the examples
//	instrument -verify         # fail if the checked-in output drifted
//	instrument -build          # regenerate, then go build the output
//	instrument -run -json      # run the finder suite over each program
//	instrument -list           # list registered programs (generated included)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"

	"mtbench/internal/core"
	"mtbench/internal/explore"
	"mtbench/internal/fuzz"
	"mtbench/internal/noise"
	"mtbench/internal/repository"
	"mtbench/internal/rewrite"
	"mtbench/internal/sched"

	_ "mtbench/internal/genprog"
)

func main() {
	src := flag.String("src", "internal/rewrite/testdata/src", "root directory of example input packages")
	out := flag.String("out", "internal/genprog", "output directory for instrumented packages")
	verify := flag.Bool("verify", false, "regenerate and fail if the checked-in output differs")
	build := flag.Bool("build", false, "go build the generated packages after rewriting")
	run := flag.Bool("run", false, "run the finder suite over every generated program")
	jsonOut := flag.Bool("json", false, "with -run: emit machine-readable JSON")
	noiseRuns := flag.Int("noise-runs", 500, "with -run: noise runs per program")
	exploreMax := flag.Int("explore-max", 2000, "with -run: explore-por schedule budget per program")
	fuzzRuns := flag.Int("fuzz-runs", 2000, "with -run: fuzz run budget per program")
	list := flag.Bool("list", false, "list the registered programs and exit")
	flag.Parse()

	if *list {
		for _, p := range repository.All() {
			fmt.Printf("%-18s %-20s %s\n", p.Name, p.Kind, p.Synopsis)
		}
		return
	}

	tree, results, err := rewrite.GenerateTree(*src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "instrument:", err)
		os.Exit(1)
	}

	if *verify {
		drift := rewrite.DiffTree(tree, *out)
		if len(drift) > 0 {
			fmt.Fprintf(os.Stderr, "instrument: %d generated file(s) drifted from %s:\n", len(drift), *src)
			for _, p := range drift {
				fmt.Fprintf(os.Stderr, "  %s\n", p)
			}
			fmt.Fprintln(os.Stderr, "run cmd/instrument to regenerate")
			os.Exit(1)
		}
		fmt.Printf("verified: %d generated files match %s\n", len(tree), *src)
	} else if !*run {
		paths, err := rewrite.WriteTree(tree, *out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "instrument:", err)
			os.Exit(1)
		}
		for _, p := range paths {
			fmt.Println(p)
		}
	}

	if *build {
		cmd := exec.Command("go", "build", "./"+*out+"/...")
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "instrument: build failed:", err)
			os.Exit(1)
		}
		fmt.Println("build ok")
	}

	if *run {
		ok := runSuite(results, suiteBudgets{noise: *noiseRuns, explore: *exploreMax, fuzz: *fuzzRuns}, *jsonOut)
		if !ok {
			os.Exit(1)
		}
	}
}

type suiteBudgets struct{ noise, explore, fuzz int }

// finderReport is one finder's outcome over one program. Field names
// are pinned: the CI instrument-smoke job parses them with jq.
type finderReport struct {
	Finder   string   `json:"finder"`
	Runs     int      `json:"runs"`
	Bugs     []string `json:"bugs"`
	FirstBug int      `json:"first_bug"`
}

// programReport is the per-program suite outcome.
type programReport struct {
	Program string         `json:"program"`
	Kind    string         `json:"kind"`
	Found   bool           `json:"found"`
	Finders []finderReport `json:"finders"`
}

// runSuite runs the planted-bug gauntlet: every generated program must
// fail under at least one finder within the fixed budgets.
func runSuite(results []*rewrite.Result, budgets suiteBudgets, jsonOut bool) bool {
	var reports []programReport
	allFound := true
	for _, res := range results {
		prog, err := repository.Get(res.Name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "instrument:", err)
			return false
		}
		body := prog.BodyWith(nil)
		rep := programReport{Program: prog.Name, Kind: string(prog.Kind)}
		rep.Finders = append(rep.Finders,
			runNoise(prog, body, budgets.noise),
			runExplorePOR(prog, body, budgets.explore),
			runFuzz(prog, body, budgets.fuzz),
		)
		for _, f := range rep.Finders {
			if len(f.Bugs) > 0 {
				rep.Found = true
			}
		}
		if prog.HasBug() && !rep.Found {
			allFound = false
		}
		reports = append(reports, rep)
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, rep := range reports {
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintln(os.Stderr, "instrument:", err)
				return false
			}
		}
	} else {
		for _, rep := range reports {
			status := "FOUND"
			if !rep.Found {
				status = "MISSED"
			}
			fmt.Printf("%-14s %-20s %s\n", rep.Program, rep.Kind, status)
			for _, f := range rep.Finders {
				fmt.Printf("  %-12s runs=%-6d first_bug=%-5d bugs=%v\n", f.Finder, f.Runs, f.FirstBug, f.Bugs)
			}
		}
	}
	if !allFound {
		fmt.Fprintln(os.Stderr, "instrument: planted bug(s) not found within budget")
	}
	return allFound
}

func runNoise(prog *repository.Program, body func(core.T), budget int) finderReport {
	runner := sched.NewRunner()
	defer runner.Close()
	rep := finderReport{Finder: "noise", Runs: budget, FirstBug: -1}
	seen := map[string]bool{}
	for i := 0; i < budget; i++ {
		seed := core.MixSeed(1, int64(i))
		st := noise.NewStrategy(nil, noise.NewBernoulli(0.4, noise.KindYield), seed)
		res := runner.Run(sched.Config{
			Strategy: st,
			Seed:     seed,
			Name:     prog.Name,
			Plan:     prog.Plan,
		}, body)
		if res.Verdict.Bug() {
			sig := core.BugSignature(res)
			if !seen[sig] {
				seen[sig] = true
				rep.Bugs = append(rep.Bugs, sig)
			}
			if rep.FirstBug < 0 {
				rep.FirstBug = i + 1
			}
		}
	}
	sort.Strings(rep.Bugs)
	return rep
}

func runExplorePOR(prog *repository.Program, body func(core.T), budget int) finderReport {
	er := explore.Explore(explore.Options{
		MaxSchedules:   budget,
		Workers:        1,
		DPOR:           true,
		StateCache:     true,
		StopAtFirstBug: false,
		Name:           prog.Name,
		Plan:           prog.Plan,
	}, body)
	rep := finderReport{Finder: "explore-por", Runs: er.Schedules, FirstBug: er.FirstBugIndex()}
	seen := map[string]bool{}
	for _, b := range er.Bugs {
		sig := core.BugSignature(b.Result)
		if !seen[sig] {
			seen[sig] = true
			rep.Bugs = append(rep.Bugs, sig)
		}
	}
	sort.Strings(rep.Bugs)
	return rep
}

func runFuzz(prog *repository.Program, body func(core.T), budget int) finderReport {
	fr := fuzz.Fuzz(fuzz.Options{
		MaxRuns: budget,
		Seed:    1,
		Workers: 1,
		Name:    prog.Name,
		Plan:    prog.Plan,
	}, body)
	rep := finderReport{Finder: "fuzz", Runs: fr.Runs, FirstBug: fr.FirstBugIndex()}
	seen := map[string]bool{}
	for _, b := range fr.Bugs {
		sig := core.BugSignature(b.Result)
		if !seen[sig] {
			seen[sig] = true
			rep.Bugs = append(rep.Bugs, sig)
		}
	}
	sort.Strings(rep.Bugs)
	return rep
}
