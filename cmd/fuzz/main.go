// Command fuzz runs coverage-guided schedule fuzzing over a repository
// program: mutate interesting decision logs, execute them under the
// controlled scheduler, keep what covers new concurrency tasks, and
// save failing schedules as replayable scenario files — the same
// record-everything discipline as cmd/explore, with a greybox search
// in place of the exhaustive one.
//
// Usage:
//
//	fuzz -prog account -runs 2000 -seed 1
//	fuzz -prog abastack -runs 5000 -workers 4 -first=false
//	fuzz -prog philosophers -pbound 2 -save scenario.json
//	fuzz -prog philosophers -replay scenario.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mtbench/internal/core"
	"mtbench/internal/fuzz"
	"mtbench/internal/replay"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

func main() {
	prog := flag.String("prog", "account", "program to fuzz")
	runs := flag.Int("runs", 2000, "run budget")
	workers := flag.Int("workers", 1, "parallel fuzz workers (1 = deterministic)")
	seed := flag.Int64("seed", 0, "master seed (fixed seed + 1 worker reproduces the campaign)")
	pbound := flag.Int("pbound", -1, "preemption bound for the bounding mutator (-1 = draw 0..2 per mutation)")
	stopFirst := flag.Bool("first", true, "stop at first bug")
	save := flag.String("save", "", "save the first failing scenario to this file")
	replayPath := flag.String("replay", "", "replay a saved scenario instead of fuzzing")
	flag.Parse()

	if err := run(*prog, *runs, *workers, *pbound, *seed, *stopFirst, *save, *replayPath); err != nil {
		fmt.Fprintln(os.Stderr, "fuzz:", err)
		os.Exit(1)
	}
}

func run(progName string, runs, workers, pbound int, seed int64, stopFirst bool, save, replayPath string) error {
	prog, err := repository.Get(progName)
	if err != nil {
		return err
	}
	body := prog.BodyWith(nil)

	if replayPath != "" {
		s, err := replay.LoadFile(replayPath)
		if err != nil {
			return err
		}
		res := replay.ReplayControlled(s, sched.Config{Name: progName}, body)
		fmt.Printf("replayed scenario (%d decisions): %v\n", len(s.Decisions), res)
		return nil
	}

	opts := fuzz.Options{
		MaxRuns:        runs,
		Seed:           seed,
		Workers:        workers,
		StopAtFirstBug: stopFirst,
		Name:           progName,
	}
	if pbound >= 0 {
		opts.PreemptionBound = fuzz.Bound(pbound)
	}
	res := fuzz.Fuzz(opts, body)

	fmt.Printf("runs executed: %d (corpus=%d, coverage tasks=%d, coverage-adding runs=%d, repaired decisions=%d)\n",
		res.Runs, res.CorpusSize, res.Coverage, res.CoverageRuns, res.Repairs)
	ops := make([]string, 0, len(res.Ops))
	for op := range res.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	fmt.Print("runs by operator:")
	for _, op := range ops {
		fmt.Printf(" %s=%d", op, res.Ops[op])
	}
	fmt.Println()
	fmt.Printf("bugs found: %d\n", len(res.Bugs))
	for _, b := range res.Bugs {
		fmt.Printf("  run #%d: %v\n", b.Index, b.Result)
	}
	// A first-bug hunt that found nothing exits non-zero, so campaign
	// scripts (and CI's fuzz smoke) detect a dead search, not just a
	// crashed one.
	if stopFirst && len(res.Bugs) == 0 {
		return fmt.Errorf("no bug found within %d runs", res.Runs)
	}
	if save != "" && len(res.Bugs) > 0 {
		s := &replay.Schedule{
			Program:   progName,
			Mode:      "controlled",
			Seed:      seed,
			Strategy:  "fuzz-guided",
			Decisions: append([]core.ThreadID(nil), res.Bugs[0].Schedule...),
		}
		if err := s.SaveFile(save); err != nil {
			return err
		}
		fmt.Printf("saved failing scenario to %s (%d decisions)\n", save, len(s.Decisions))
	}
	return nil
}
