// Command fuzz runs coverage-guided schedule fuzzing over a repository
// program: mutate interesting decision logs, execute them under the
// controlled scheduler, keep what covers new concurrency tasks, and
// save failing schedules as replayable scenario files — the same
// record-everything discipline as cmd/explore, with a greybox search
// in place of the exhaustive one.
//
// Usage:
//
//	fuzz -prog account -runs 2000 -seed 1
//	fuzz -prog account -runs 200 -seed 1 -json   # machine-readable (CI smoke)
//	fuzz -prog abastack -runs 5000 -workers 4 -first=false
//	fuzz -prog philosophers -pbound 2 -save scenario.json
//	fuzz -prog philosophers -replay scenario.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"mtbench/internal/core"
	"mtbench/internal/fuzz"
	"mtbench/internal/profiling"
	"mtbench/internal/replay"
	"mtbench/internal/repository"
	"mtbench/internal/sched"

	// Generated instrumented packages register themselves on import.
	_ "mtbench/internal/genprog"
)

func main() {
	prog := flag.String("prog", "account", "program to fuzz")
	runs := flag.Int("runs", 2000, "run budget")
	workers := flag.Int("workers", 1, "parallel fuzz workers (1 = deterministic)")
	seed := flag.Int64("seed", 0, "master seed (fixed seed + 1 worker reproduces the campaign)")
	pbound := flag.Int("pbound", -1, "preemption bound for the bounding mutator (-1 = draw 0..2 per mutation)")
	stopFirst := flag.Bool("first", true, "stop at first bug")
	jsonOut := flag.Bool("json", false, "emit one JSON object instead of text (first_bug is null when no bug was found)")
	save := flag.String("save", "", "save the first failing scenario to this file")
	replayPath := flag.String("replay", "", "replay a saved scenario instead of fuzzing")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	list := flag.Bool("list", false, "list the registered programs and exit")
	flag.Parse()

	if *list {
		for _, p := range repository.All() {
			fmt.Printf("%-18s %-20s %s\n", p.Name, p.Kind, p.Synopsis)
		}
		return
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuzz:", err)
		os.Exit(1)
	}
	err = run(*prog, *runs, *workers, *pbound, *seed, *stopFirst, *jsonOut, *save, *replayPath)
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuzz:", err)
		os.Exit(1)
	}
}

// jsonReport fixes the machine-readable serialization CI's fuzz-smoke
// step asserts on; field names are pinned independently of the fuzz
// package's Go structs.
type jsonReport struct {
	Program      string         `json:"program"`
	Seed         int64          `json:"seed"`
	Runs         int            `json:"runs"`
	FirstBug     *int           `json:"first_bug"` // null = no bug found
	Bugs         []jsonBug      `json:"bugs"`
	CorpusSize   int            `json:"corpus"`
	Coverage     int            `json:"coverage"`
	CoverageRuns int            `json:"coverage_runs"`
	Repairs      int64          `json:"repairs"`
	Ops          map[string]int `json:"ops"`
}

type jsonBug struct {
	Index     int    `json:"index"`
	Signature string `json:"signature"`
	Verdict   string `json:"verdict"`
	Decisions int    `json:"decisions"`
}

func run(progName string, runs, workers, pbound int, seed int64, stopFirst, jsonOut bool, save, replayPath string) error {
	prog, err := repository.Get(progName)
	if err != nil {
		return err
	}
	body := prog.BodyWith(nil)

	if replayPath != "" {
		s, err := replay.LoadFile(replayPath)
		if err != nil {
			return err
		}
		res := replay.ReplayControlled(s, sched.Config{Name: progName}, body)
		if jsonOut {
			return json.NewEncoder(os.Stdout).Encode(map[string]any{
				"program":   progName,
				"decisions": len(s.Decisions),
				"verdict":   res.Verdict.String(),
				"diverged":  res.Diverged,
			})
		}
		fmt.Printf("replayed scenario (%d decisions): %v\n", len(s.Decisions), res)
		return nil
	}

	opts := fuzz.Options{
		MaxRuns:        runs,
		Seed:           seed,
		Workers:        workers,
		StopAtFirstBug: stopFirst,
		Name:           progName,
		Plan:           prog.Plan,
	}
	if pbound >= 0 {
		opts.PreemptionBound = fuzz.Bound(pbound)
	}
	res := fuzz.Fuzz(opts, body)

	if jsonOut {
		rep := jsonReport{
			Program:      progName,
			Seed:         seed,
			Runs:         res.Runs,
			Bugs:         []jsonBug{},
			CorpusSize:   res.CorpusSize,
			Coverage:     res.Coverage,
			CoverageRuns: res.CoverageRuns,
			Repairs:      res.Repairs,
			Ops:          res.Ops,
		}
		if first := res.FirstBugIndex(); first >= 1 {
			rep.FirstBug = &first
		}
		for _, b := range res.Bugs {
			rep.Bugs = append(rep.Bugs, jsonBug{
				Index:     b.Index,
				Signature: core.BugSignature(b.Result),
				Verdict:   b.Result.Verdict.String(),
				Decisions: len(b.Schedule),
			})
		}
		if err := json.NewEncoder(os.Stdout).Encode(rep); err != nil {
			return err
		}
		if stopFirst && len(res.Bugs) == 0 {
			return fmt.Errorf("no bug found within %d runs", res.Runs)
		}
		return saveScenario(save, progName, seed, res)
	}

	fmt.Printf("runs executed: %d (corpus=%d, coverage tasks=%d, coverage-adding runs=%d, repaired decisions=%d)\n",
		res.Runs, res.CorpusSize, res.Coverage, res.CoverageRuns, res.Repairs)
	ops := make([]string, 0, len(res.Ops))
	for op := range res.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	fmt.Print("runs by operator:")
	for _, op := range ops {
		fmt.Printf(" %s=%d", op, res.Ops[op])
	}
	fmt.Println()
	fmt.Printf("bugs found: %d\n", len(res.Bugs))
	for _, b := range res.Bugs {
		fmt.Printf("  run #%d: %v\n", b.Index, b.Result)
	}
	// A first-bug hunt that found nothing exits non-zero, so campaign
	// scripts (and CI's fuzz smoke) detect a dead search, not just a
	// crashed one.
	if stopFirst && len(res.Bugs) == 0 {
		return fmt.Errorf("no bug found within %d runs", res.Runs)
	}
	return saveScenario(save, progName, seed, res)
}

// saveScenario writes the first failing schedule as a replayable
// scenario file when asked and a bug exists.
func saveScenario(save, progName string, seed int64, res *fuzz.Result) error {
	if save == "" || len(res.Bugs) == 0 {
		return nil
	}
	s := &replay.Schedule{
		Program:   progName,
		Mode:      "controlled",
		Seed:      seed,
		Strategy:  "fuzz-guided",
		Decisions: append([]core.ThreadID(nil), res.Bugs[0].Schedule...),
	}
	if err := s.SaveFile(save); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "saved failing scenario to %s (%d decisions)\n", save, len(s.Decisions))
	return nil
}
