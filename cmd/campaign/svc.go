// The distributed subcommands: `serve` runs the fault-tolerant
// coordinator (internal/campsvc) over a campaign store, `work` joins
// its worker fleet from any machine that can reach it, and `status`
// renders a running campaign's lease/worker state. Together they are
// the multi-machine form of `campaign run` — same cells, same
// finders, and (for clean fixed-seed campaigns) a byte-identical
// store.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"mtbench/internal/campaign"
	"mtbench/internal/campsvc"
)

// stderrLogf is the non-quiet service log sink.
func stderrLogf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// loadConfigFrom copies the campaign identity from another store's
// meta line onto cfg, keeping cfg's execution details (Workers,
// Timing). This is how a distributed campaign is pinned to exactly
// the matrix of an existing baseline: identical fingerprints,
// comparable (and byte-comparable) stores.
func loadConfigFrom(path string, cfg campaign.Config) (campaign.Config, error) {
	loaded, _, err := campaign.Load(path)
	if err != nil {
		return cfg, err
	}
	loaded.Workers = cfg.Workers
	loaded.Timing = cfg.Timing
	return loaded, nil
}

// warnTorn surfaces a recovered torn journal tail.
func warnTorn(store *campaign.Store) {
	if n := store.TornBytes(); n > 0 {
		fmt.Fprintf(os.Stderr, "warning: discarded %d bytes of torn journal tail (a crashed append); the interrupted cell re-runs\n", n)
	}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	storePath := fs.String("store", "", "store file (JSONL); an existing store is resumed under its pinned config")
	listen := fs.String("listen", "127.0.0.1:8347", "listen address")
	configFrom := fs.String("config-from", "", "copy the campaign config from another store's meta line (matrix flags are ignored)")
	leaseTTL := fs.Duration("lease-ttl", campsvc.DefaultLeaseTTL, "how long a lease lives without a heartbeat")
	maxAttempts := fs.Int("max-attempts", campsvc.DefaultMaxAttempts, "lease attempts before a poison cell is quarantined")
	exitWhenDone := fs.Bool("exit-when-done", false, "exit once every cell is settled (default: keep serving status until interrupted)")
	linger := fs.Duration("linger", 3*time.Second, "with -exit-when-done, keep serving this long after completion so polling workers see done")
	quiet := fs.Bool("q", false, "suppress per-transition logs")
	buildCfg := configFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" {
		return fmt.Errorf("serve: -store is required")
	}

	var store *campaign.Store
	var cfg campaign.Config
	if _, err := os.Stat(*storePath); err == nil {
		store, err = campaign.Open(*storePath)
		if err != nil {
			return err
		}
		warnTorn(store)
		cfg = store.Config()
	} else {
		cfg, err = buildCfg()
		if err != nil {
			return err
		}
		if *configFrom != "" {
			if cfg, err = loadConfigFrom(*configFrom, cfg); err != nil {
				return err
			}
		}
		store, err = campaign.Create(*storePath, cfg)
		if err != nil {
			return err
		}
	}
	defer store.Close()

	opts := campsvc.CoordinatorOptions{LeaseTTL: *leaseTTL, MaxAttempts: *maxAttempts}
	if !*quiet {
		opts.Logf = stderrLogf
	}
	coord, err := campsvc.NewCoordinator(cfg, store, opts)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	srv := &http.Server{Handler: campsvc.Handler(coord)}
	go srv.Serve(ln)
	st := coord.Status()
	fmt.Fprintf(os.Stderr, "campaign service: %d cells (%d already done) on http://%s -> %s\n",
		st.Cells, st.Done, ln.Addr(), *storePath)

	ctx, cancel := interruptible()
	defer cancel()
	select {
	case <-ctx.Done():
		// Interrupted: leases die with the process but the journal is
		// durable — re-serving the same store resumes the campaign.
		srv.Close()
		fmt.Fprintf(os.Stderr, "interrupted; `campaign serve -store %s` resumes\n", *storePath)
		return nil
	case <-coord.Done():
		final := coord.Status()
		fmt.Fprintf(os.Stderr, "campaign complete: %d cells (%d quarantined) -> %s\n",
			final.Cells, final.Quarantined, *storePath)
		if *exitWhenDone {
			time.Sleep(*linger)
		} else {
			fmt.Fprintln(os.Stderr, "serving status until interrupted (-exit-when-done exits instead)")
			<-ctx.Done()
		}
		srv.Close()
		return coord.Wait(context.Background()) // surfaces a failed final compaction
	}
}

func cmdWork(args []string) error {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	coordinator := fs.String("coordinator", "http://127.0.0.1:8347", "coordinator base URL")
	name := fs.String("name", "", "worker name (default host-pid)")
	backoff := fs.Duration("backoff", 500*time.Millisecond, "base retry backoff against an unreachable coordinator")
	giveUp := fs.Duration("give-up-after", 0, "give up when the coordinator stays unreachable this long (0 = never)")
	throttle := fs.Duration("throttle", 0, "pause between leases (pacing on shared machines; 0 = none)")
	quiet := fs.Bool("q", false, "suppress per-lease logs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	opts := campsvc.WorkerOptions{
		Name:        *name,
		Transport:   &campsvc.Client{Base: *coordinator},
		Backoff:     *backoff,
		GiveUpAfter: *giveUp,
		Throttle:    *throttle,
	}
	if !*quiet {
		opts.Logf = stderrLogf
	}
	ctx, cancel := interruptible()
	defer cancel()
	stats, err := campsvc.Work(ctx, opts)
	fmt.Fprintf(os.Stderr, "worker %s: %d completed, %d duplicate, %d failed, %d abandoned\n",
		*name, stats.Completed, stats.Duplicates, stats.Failures, stats.Abandoned)
	return err
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	coordinator := fs.String("coordinator", "http://127.0.0.1:8347", "coordinator base URL")
	csv := fs.Bool("csv", false, "CSV output")
	jsonOut := fs.Bool("json", false, "JSON output (one array of tables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &campsvc.Client{Base: *coordinator, HTTP: &http.Client{Timeout: 10 * time.Second}}
	st, err := client.Status(context.Background())
	if err != nil {
		return err
	}
	return renderTables(st.Tables(), *csv, *jsonOut)
}
