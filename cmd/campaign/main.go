// Command campaign runs, resumes, inspects and gates persistent
// tool×program benchmark campaigns (internal/campaign): the layer that
// turns the repository's experiments into a benchmark others can run,
// extend and regress against.
//
// Usage:
//
//	campaign run -store out.jsonl                      # default fixed-seed matrix
//	campaign run -store out.jsonl -programs account,semleak -finders fuzz,noise \
//	             -seeds 0,1 -budget 1000 -workers 4 -timing
//	campaign resume -store out.jsonl                   # finish an interrupted campaign
//	campaign show -store out.jsonl [-csv|-json]        # render the stored matrix
//	campaign compare -baseline a.jsonl -current b.jsonl [-slack 1.5] [-gate]
//	campaign gate -baseline campaign/baseline.jsonl -store current.jsonl
//
// `run` starts fresh (truncating the store); `resume` continues an
// existing store under its pinned config, skipping completed cells.
// `gate` re-runs the baseline's own config into -store and exits
// non-zero when any finder lost a bug, exceeded its budget envelope,
// or a baseline cell is missing — the CI regression gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"mtbench/internal/campaign"
	"mtbench/internal/profiling"
	"mtbench/internal/report"
	"mtbench/internal/repository"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Profiling spans whichever subcommand executes, so heavy campaigns
	// can feed future perf work: campaign run ... -cpuprofile cpu.out.
	// The flags are stripped before subcommand flag parsing.
	args, cpuProfile, memProfile := extractProfileFlags(os.Args[2:])
	stopProf, perr := profiling.Start(cpuProfile, memProfile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "campaign:", perr)
		os.Exit(1)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(args, false)
	case "resume":
		err = cmdRun(args, true)
	case "show":
		err = cmdShow(args)
	case "compare":
		err = cmdCompare(args)
	case "gate":
		err = cmdGate(args)
	case "serve":
		err = cmdServe(args)
	case "work":
		err = cmdWork(args)
	case "status":
		err = cmdStatus(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

// extractProfileFlags strips -cpuprofile/-memprofile (with = or
// space-separated values) from args so subcommand flag sets need not
// know about them.
func extractProfileFlags(args []string) (rest []string, cpu, mem string) {
	for i := 0; i < len(args); i++ {
		a := args[i]
		name, val, eq := a, "", false
		if j := strings.IndexByte(a, '='); j >= 0 {
			name, val, eq = a[:j], a[j+1:], true
		}
		switch name {
		case "-cpuprofile", "--cpuprofile", "-memprofile", "--memprofile":
			if !eq && i+1 < len(args) {
				i++
				val = args[i]
			}
			if strings.Contains(name, "cpu") {
				cpu = val
			} else {
				mem = val
			}
		default:
			rest = append(rest, a)
		}
	}
	return rest, cpu, mem
}

func usage() {
	fmt.Fprint(os.Stderr, `campaign — persistent, resumable tool×program benchmark matrix

commands:
  run     -store FILE [flags]     execute a campaign into a fresh store
  resume  -store FILE [-workers N] [-timing]
                                  finish an interrupted campaign (skips completed
                                  cells; re-pass -timing if the run used it)
  show    -store FILE [-csv|-json]  render a stored campaign as report tables
  compare -baseline A -current B [-slack F] [-gate] [-csv|-json]
                                  classify per-cell deltas between two stores
  gate    -baseline FILE [-store FILE] [-slack F]
                                  re-run the baseline's config and exit non-zero
                                  on any effectiveness regression (CI gate)
  serve   -store FILE [-listen ADDR] [flags | -config-from FILE]
                                  run the fault-tolerant campaign coordinator:
                                  cells are leased to workers, expired leases
                                  re-queue, poison cells quarantine
  work    -coordinator URL [-name NAME]
                                  join a coordinator's worker fleet
  status  -coordinator URL [-csv|-json]
                                  render a running campaign's service status

registered finders:
`)
	for _, name := range campaign.Finders() {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", name, campaign.FinderDoc(name))
	}
}

// configFlags binds the campaign matrix flags onto fs and returns a
// builder for the resulting config.
func configFlags(fs *flag.FlagSet) func() (campaign.Config, error) {
	finders := fs.String("finders", "", "comma-separated finders (empty = all registered)")
	programs := fs.String("programs", "", `comma-separated programs, or "all" for the whole repository (empty = default gate set)`)
	seeds := fs.String("seeds", "", "comma-separated master seeds (empty = 0)")
	budget := fs.Int("budget", 0, "per-cell run/schedule budget (0 = default)")
	maxSteps := fs.Int64("maxsteps", 0, "per-run step bound (0 = default)")
	checkpoints := fs.Int("checkpoints", 0, "parked-runner checkpoint budget for the explore-por finder (0 = off; results are identical either way)")
	vbound := fs.Int("vbound", 0, "variable bound for the explore-vb finder (0 = finder default)")
	tbound := fs.Int("tbound", 0, "thread bound for the explore-tb finder (0 = finder default)")
	pctDepth := fs.Int("pctdepth", 0, "targeted bug depth d for the pct finder (0 = finder default)")
	cellTimeout := fs.Duration("celltimeout", 0, "per-cell wall-clock bound; a cell exceeding it records a timeout outcome (0 = none)")
	workers := fs.Int("workers", 1, "parallel cell workers (cells are independent; parallelism never changes results)")
	timing := fs.Bool("timing", false, "record real wall_ms per cell (breaks byte-identical stores)")
	return func() (campaign.Config, error) {
		cfg := campaign.Config{
			Budget:        *budget,
			MaxSteps:      *maxSteps,
			Checkpoints:   *checkpoints,
			VariableBound: *vbound,
			ThreadBound:   *tbound,
			PCTDepth:      *pctDepth,
			CellTimeout:   *cellTimeout,
			Workers:       *workers,
			Timing:        *timing,
		}
		if *finders != "" {
			cfg.Finders = splitList(*finders)
		}
		switch {
		case *programs == "all":
			for _, p := range repository.All() {
				cfg.Programs = append(cfg.Programs, p.Name)
			}
		case *programs != "":
			cfg.Programs = splitList(*programs)
		}
		if *seeds != "" {
			for _, s := range splitList(*seeds) {
				v, err := strconv.ParseInt(s, 10, 64)
				if err != nil {
					return cfg, fmt.Errorf("bad seed %q: %w", s, err)
				}
				cfg.Seeds = append(cfg.Seeds, v)
			}
		}
		return cfg, nil
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// interruptible returns a context canceled by Ctrl-C, so an
// interrupted campaign leaves a valid journal to resume from.
func interruptible() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

func cmdRun(args []string, resume bool) error {
	name := "run"
	if resume {
		name = "resume"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	storePath := fs.String("store", "", "store file (JSONL)")
	quiet := fs.Bool("q", false, "suppress per-cell progress")
	var buildCfg func() (campaign.Config, error)
	var workers *int
	var timing *bool
	var force *bool
	var configFrom *string
	if resume {
		// Execution details are not pinned in the store's meta line, so
		// re-pass them on resume (notably -timing when the original run
		// recorded wall_ms, or resumed cells would record 0).
		workers = fs.Int("workers", 1, "parallel cell workers")
		timing = fs.Bool("timing", false, "record real wall_ms per cell (re-pass if the original run used -timing)")
	} else {
		buildCfg = configFlags(fs)
		force = fs.Bool("force", false, "overwrite an existing store (run refuses otherwise; use resume to continue one)")
		configFrom = fs.String("config-from", "", "copy the campaign config from another store's meta line (matrix flags are ignored)")
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" {
		return fmt.Errorf("%s: -store is required", name)
	}
	if !resume && !*force {
		if _, err := os.Stat(*storePath); err == nil {
			return fmt.Errorf("run: %s already exists; `campaign resume -store %s` continues it, -force overwrites it",
				*storePath, *storePath)
		}
	}

	var store *campaign.Store
	var cfg campaign.Config
	if resume {
		var err error
		store, err = campaign.Open(*storePath)
		if err != nil {
			return err
		}
		warnTorn(store)
		cfg = store.Config()
		cfg.Workers = *workers
		cfg.Timing = *timing
	} else {
		var err error
		cfg, err = buildCfg()
		if err != nil {
			return err
		}
		if *configFrom != "" {
			if cfg, err = loadConfigFrom(*configFrom, cfg); err != nil {
				return err
			}
		}
		store, err = campaign.Create(*storePath, cfg)
		if err != nil {
			return err
		}
	}
	defer store.Close()

	ctx, cancel := interruptible()
	defer cancel()
	sum, err := campaign.Run(ctx, cfg, store, func(done, total int, rec campaign.Record) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, rec)
		}
	})
	if err != nil {
		if ctx.Err() != nil && sum != nil {
			fmt.Fprintf(os.Stderr, "interrupted after %d cells; `campaign resume -store %s` continues\n",
				sum.Executed+sum.Skipped, *storePath)
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign complete: %d cells (%d executed, %d resumed) -> %s\n",
		sum.Cells, sum.Executed, sum.Skipped, *storePath)
	return nil
}

func renderTables(tables []*report.Table, csv, json bool) error {
	return report.WriteTables(os.Stdout, tables, csv, json)
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	storePath := fs.String("store", "", "store file (JSONL)")
	csv := fs.Bool("csv", false, "CSV output")
	jsonOut := fs.Bool("json", false, "JSON output (one array of tables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storePath == "" {
		return fmt.Errorf("show: -store is required")
	}
	cfg, recs, err := campaign.Load(*storePath)
	if err != nil {
		return err
	}
	return renderTables(campaign.SummaryTables(cfg, recs), *csv, *jsonOut)
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "", "baseline store (JSONL)")
	curPath := fs.String("current", "", "current store (JSONL)")
	slack := fs.Float64("slack", 1.0, "budget envelope multiplier over baseline first_bug")
	gate := fs.Bool("gate", false, "exit non-zero when the diff contains regressions")
	csv := fs.Bool("csv", false, "CSV output")
	jsonOut := fs.Bool("json", false, "JSON output (one array of tables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *curPath == "" {
		return fmt.Errorf("compare: -baseline and -current are required")
	}
	_, base, err := campaign.Load(*basePath)
	if err != nil {
		return err
	}
	_, cur, err := campaign.Load(*curPath)
	if err != nil {
		return err
	}
	diff := campaign.Compare(base, cur, *slack)
	if err := renderTables(diff.Tables(), *csv, *jsonOut); err != nil {
		return err
	}
	if *gate {
		return diff.Gate()
	}
	return nil
}

func cmdGate(args []string) error {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	basePath := fs.String("baseline", "campaign/baseline.jsonl", "baseline store (JSONL)")
	storePath := fs.String("store", "", "where to write the current run (empty = temp file)")
	slack := fs.Float64("slack", 1.0, "budget envelope multiplier over baseline first_bug")
	workers := fs.Int("workers", 1, "parallel cell workers")
	force := fs.Bool("force", false, "overwrite an existing -store file (gate refuses otherwise)")
	quiet := fs.Bool("q", false, "suppress per-cell progress")
	if err := fs.Parse(args); err != nil {
		return err
	}

	baseCfg, base, err := campaign.Load(*basePath)
	if err != nil {
		return err
	}
	path := *storePath
	if path == "" {
		path = filepath.Join(os.TempDir(), fmt.Sprintf("campaign-gate-%d.jsonl", os.Getpid()))
		defer os.Remove(path)
	} else if !*force {
		if _, err := os.Stat(path); err == nil {
			return fmt.Errorf("gate: %s already exists; -force overwrites it", path)
		}
	}
	cfg := baseCfg
	cfg.Workers = *workers
	store, err := campaign.Create(path, cfg)
	if err != nil {
		return err
	}
	defer store.Close()

	ctx, cancel := interruptible()
	defer cancel()
	sum, err := campaign.Run(ctx, cfg, store, func(done, total int, rec campaign.Record) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s\n", done, total, rec)
		}
	})
	if err != nil {
		return err
	}

	diff := campaign.Compare(base, sum.Records, *slack)
	if err := renderTables(diff.Tables(), false, false); err != nil {
		return err
	}
	if err := diff.Gate(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gate passed: %d cells match %s (slack %.2f)\n", diff.Compared, *basePath, *slack)
	return nil
}
