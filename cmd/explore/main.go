// Command explore runs systematic state-space exploration over a
// repository program, saves failing schedules as replayable scenario
// files, and replays saved scenarios (§2.2: "whenever an error is
// detected during state-space exploration, a scenario leading to the
// error state is saved. Scenarios can be executed and replayed").
//
// Usage:
//
//	explore -prog statmax -max 50000
//	explore -prog philosophers -workers 8 -first=false
//	explore -prog philosophers -por -statecache -stats -first=false
//	explore -prog account -params depositors=2,deposits=1 -json
//	explore -prog inversion -bound 2 -save scenario.json
//	explore -prog account -tbound 2 -vbound 2 -first=false
//	explore -prog inversion -replay scenario.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"mtbench/internal/core"
	"mtbench/internal/explore"
	"mtbench/internal/profiling"
	"mtbench/internal/replay"
	"mtbench/internal/repository"
	"mtbench/internal/sched"

	// Generated instrumented packages register themselves on import.
	_ "mtbench/internal/genprog"
)

func main() {
	prog := flag.String("prog", "statmax", "program to explore")
	params := flag.String("params", "", "program parameter overrides, k=v comma-separated (e.g. depositors=2,deposits=1)")
	max := flag.Int("max", 50000, "maximum schedules")
	bound := flag.Int("bound", -1, "preemption bound (-1 = unbounded)")
	vbound := flag.Int("vbound", -1, "variable bound: distinct objects involved in context switches (-1 = unbounded)")
	tbound := flag.Int("tbound", -1, "thread bound: distinct threads eligible for preemption (-1 = unbounded)")
	sleepSets := flag.Bool("sleepsets", false, "enable sleep-set pruning")
	por := flag.Bool("por", false, "enable dynamic partial-order reduction (implies -sleepsets)")
	stateCache := flag.Bool("statecache", false, "enable canonical-state caching")
	cacheSize := flag.Int("statecachesize", 0, "state-cache entries per worker (0 = default)")
	checkpoints := flag.Int("checkpoints", 0, "parked-runner checkpoint budget per worker (0 = off; needs -statecache)")
	timeouts := flag.Bool("timeouts", false, "explore timer expirations too")
	stopFirst := flag.Bool("first", true, "stop at first bug")
	workers := flag.Int("workers", 0, "parallel search workers (0 = all cores, 1 = deterministic serial)")
	stats := flag.Bool("stats", false, "print reduction statistics (pruned options, backtracks, cache hits)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON result on stdout")
	save := flag.String("save", "", "save the first failing scenario to this file")
	replayPath := flag.String("replay", "", "replay a saved scenario instead of exploring")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	list := flag.Bool("list", false, "list the registered programs and exit")
	flag.Parse()

	if *list {
		listPrograms()
		return
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
	err = run(cliConfig{
		prog: *prog, params: *params, max: *max, bound: *bound, vbound: *vbound, tbound: *tbound, workers: *workers,
		sleepSets: *sleepSets, por: *por, stateCache: *stateCache, cacheSize: *cacheSize,
		checkpoints: *checkpoints,
		timeouts:    *timeouts, stopFirst: *stopFirst, stats: *stats, jsonOut: *jsonOut,
		save: *save, replayPath: *replayPath,
		profiled: *cpuProfile != "",
	})
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

// listPrograms prints every registered program — including ones the
// rewrite pipeline registered through repository.Register — one per
// line, so scripts can discover instrumented packages by name.
func listPrograms() {
	for _, p := range repository.All() {
		fmt.Printf("%-18s %-20s %s\n", p.Name, p.Kind, p.Synopsis)
	}
}

type cliConfig struct {
	prog, params        string
	max, bound, workers int
	vbound, tbound      int
	sleepSets, por      bool
	stateCache          bool
	cacheSize           int
	checkpoints         int
	timeouts, stopFirst bool
	stats, jsonOut      bool
	save, replayPath    string
	// profiled turns on pprof phase labels: when a CPU profile is being
	// collected the driver tags its samples with the phase vocabulary
	// documented in DESIGN.md (position/drive/park/abandon/record).
	profiled bool
}

// jsonResult is the machine-readable output of -json. Field names are
// pinned: the CI reduction gate parses them with jq.
type jsonResult struct {
	Program   string        `json:"program"`
	Schedules int           `json:"schedules"`
	Exhausted bool          `json:"exhausted"`
	Bugs      []string      `json:"bugs"`
	FirstBug  int           `json:"first_bug"`
	Stats     explore.Stats `json:"stats"`
}

// parseParams parses "k=v,k=v" overrides.
func parseParams(s string) (repository.Params, error) {
	if s == "" {
		return nil, nil
	}
	out := repository.Params{}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad -params entry %q (want k=v)", kv)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad -params value %q: %v", kv, err)
		}
		out[k] = n
	}
	return out, nil
}

func run(cfg cliConfig) error {
	prog, err := repository.Get(cfg.prog)
	if err != nil {
		return err
	}
	over, err := parseParams(cfg.params)
	if err != nil {
		return err
	}
	body := prog.BodyWith(over)

	if cfg.replayPath != "" {
		s, err := replay.LoadFile(cfg.replayPath)
		if err != nil {
			return err
		}
		res := replay.ReplayControlled(s, sched.Config{Name: cfg.prog}, body)
		if cfg.jsonOut {
			out := struct {
				Program   string `json:"program"`
				Decisions int    `json:"decisions"`
				Verdict   string `json:"verdict"`
				Bug       string `json:"bug,omitempty"`
			}{Program: cfg.prog, Decisions: len(s.Decisions), Verdict: res.Verdict.String()}
			if res.Verdict.Bug() {
				out.Bug = core.BugSignature(res)
			}
			return json.NewEncoder(os.Stdout).Encode(out)
		}
		fmt.Printf("replayed scenario (%d decisions): %v\n", len(s.Decisions), res)
		return nil
	}

	opts := explore.Options{
		MaxSchedules:    cfg.max,
		SleepSets:       cfg.sleepSets,
		DPOR:            cfg.por,
		StateCache:      cfg.stateCache,
		StateCacheSize:  cfg.cacheSize,
		Checkpoints:     cfg.checkpoints,
		ExploreTimeouts: cfg.timeouts,
		StopAtFirstBug:  cfg.stopFirst,
		Workers:         cfg.workers,
		ProfileLabels:   cfg.profiled,
		Name:            cfg.prog,
		Plan:            prog.Plan,
	}
	if cfg.bound >= 0 {
		opts.PreemptionBound = explore.Bound(cfg.bound)
	}
	if cfg.vbound >= 0 {
		opts.VariableBound = explore.Bound(cfg.vbound)
	}
	if cfg.tbound >= 0 {
		opts.ThreadBound = explore.Bound(cfg.tbound)
	}
	res := explore.Explore(opts, body)
	if res.Err != nil {
		return res.Err
	}

	if cfg.jsonOut {
		sigs := make([]string, 0, len(res.Bugs))
		for _, b := range res.Bugs {
			sigs = append(sigs, core.BugSignature(b.Result))
		}
		sort.Strings(sigs)
		out := jsonResult{
			Program:   cfg.prog,
			Schedules: res.Schedules,
			Exhausted: res.Exhausted,
			Bugs:      sigs,
			FirstBug:  res.FirstBugIndex(),
			Stats:     res.Stats,
		}
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		fmt.Printf("schedules executed: %d (exhausted=%v)\n", res.Schedules, res.Exhausted)
		fmt.Printf("distinct outcomes: %d\n", len(res.Outcomes))
		fmt.Printf("bugs found: %d\n", len(res.Bugs))
		for _, b := range res.Bugs {
			fmt.Printf("  schedule #%d: %v\n", b.Index, b.Result)
		}
	}
	if cfg.stats && !cfg.jsonOut {
		fmt.Printf("reduction: sleep-pruned=%d por-pruned=%d backtracks=%d cache-hits=%d\n",
			res.Stats.SleepPruned, res.Stats.PORPruned, res.Stats.Backtracks, res.Stats.StateHits)
		fmt.Printf("bounding: vb-pruned=%d tb-pruned=%d\n",
			res.Stats.VBPruned, res.Stats.TBPruned)
		fmt.Printf("replay tax: replayed-steps=%d novel-steps=%d\n",
			res.Stats.ReplayedSteps, res.Stats.NovelSteps)
		fmt.Printf("checkpoints: hits=%d misses=%d snapshot-restores=%d restored-steps=%d total-steps=%d\n",
			res.Stats.CheckpointHits, res.Stats.CheckpointMisses,
			res.Stats.SnapshotRestores, res.Stats.RestoredSteps, res.Stats.TotalSteps)
	}
	if cfg.save != "" && len(res.Bugs) > 0 {
		s := &replay.Schedule{
			Program:   cfg.prog,
			Mode:      "controlled",
			Strategy:  "explore-dfs",
			Decisions: append([]core.ThreadID(nil), res.Bugs[0].Schedule...),
		}
		if err := s.SaveFile(cfg.save); err != nil {
			return err
		}
		// In -json mode stdout carries exactly one machine-readable
		// document; human chatter goes to stderr.
		dst := os.Stdout
		if cfg.jsonOut {
			dst = os.Stderr
		}
		fmt.Fprintf(dst, "saved failing scenario to %s (%d decisions)\n", cfg.save, len(s.Decisions))
	}
	return nil
}
