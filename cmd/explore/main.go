// Command explore runs systematic state-space exploration over a
// repository program, saves failing schedules as replayable scenario
// files, and replays saved scenarios (§2.2: "whenever an error is
// detected during state-space exploration, a scenario leading to the
// error state is saved. Scenarios can be executed and replayed").
//
// Usage:
//
//	explore -prog statmax -max 50000
//	explore -prog philosophers -workers 8 -first=false
//	explore -prog inversion -bound 2 -save scenario.json
//	explore -prog inversion -replay scenario.json
package main

import (
	"flag"
	"fmt"
	"os"

	"mtbench/internal/core"
	"mtbench/internal/explore"
	"mtbench/internal/profiling"
	"mtbench/internal/replay"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

func main() {
	prog := flag.String("prog", "statmax", "program to explore")
	max := flag.Int("max", 50000, "maximum schedules")
	bound := flag.Int("bound", -1, "preemption bound (-1 = unbounded)")
	sleepSets := flag.Bool("sleepsets", false, "enable sleep-set pruning")
	timeouts := flag.Bool("timeouts", false, "explore timer expirations too")
	stopFirst := flag.Bool("first", true, "stop at first bug")
	workers := flag.Int("workers", 0, "parallel search workers (0 = all cores, 1 = deterministic serial)")
	save := flag.String("save", "", "save the first failing scenario to this file")
	replayPath := flag.String("replay", "", "replay a saved scenario instead of exploring")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
	err = run(*prog, *max, *bound, *workers, *sleepSets, *timeouts, *stopFirst, *save, *replayPath)
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

func run(progName string, max, bound, workers int, sleepSets, timeouts, stopFirst bool, save, replayPath string) error {
	prog, err := repository.Get(progName)
	if err != nil {
		return err
	}
	body := prog.BodyWith(nil)

	if replayPath != "" {
		s, err := replay.LoadFile(replayPath)
		if err != nil {
			return err
		}
		res := replay.ReplayControlled(s, sched.Config{Name: progName}, body)
		fmt.Printf("replayed scenario (%d decisions): %v\n", len(s.Decisions), res)
		return nil
	}

	opts := explore.Options{
		MaxSchedules:    max,
		SleepSets:       sleepSets,
		ExploreTimeouts: timeouts,
		StopAtFirstBug:  stopFirst,
		Workers:         workers,
		Name:            progName,
	}
	if bound >= 0 {
		opts.PreemptionBound = explore.Bound(bound)
	}
	res := explore.Explore(opts, body)
	if res.Err != nil {
		return res.Err
	}
	fmt.Printf("schedules executed: %d (exhausted=%v)\n", res.Schedules, res.Exhausted)
	fmt.Printf("distinct outcomes: %d\n", len(res.Outcomes))
	fmt.Printf("bugs found: %d\n", len(res.Bugs))
	for _, b := range res.Bugs {
		fmt.Printf("  schedule #%d: %v\n", b.Index, b.Result)
	}
	if save != "" && len(res.Bugs) > 0 {
		s := &replay.Schedule{
			Program:   progName,
			Mode:      "controlled",
			Strategy:  "explore-dfs",
			Decisions: append([]core.ThreadID(nil), res.Bugs[0].Schedule...),
		}
		if err := s.SaveFile(save); err != nil {
			return err
		}
		fmt.Printf("saved failing scenario to %s (%d decisions)\n", save, len(s.Decisions))
	}
	return nil
}
