module mtbench

go 1.22
