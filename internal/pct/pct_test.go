package pct

import (
	"reflect"
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/repository"
)

// smallParams shrinks the larger repository programs the same way the
// exploration and fuzz tests do, so campaigns stay fast.
var smallParams = map[string]repository.Params{
	"account":      {"depositors": 2, "deposits": 1},
	"statmax":      {"reporters": 2},
	"philosophers": {"philosophers": 2, "rounds": 1},
}

func bodyOf(t testing.TB, name string) func(core.T) {
	t.Helper()
	prog, err := repository.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return prog.BodyWith(smallParams[name])
}

// lostUpdate is the canonical 1-preemption bug (mirrors the explore
// and fuzz tests), free of repository coupling.
func lostUpdate(ct core.T) {
	x := ct.NewInt("x", 0)
	h1 := ct.Go("a", func(wt core.T) {
		v := x.Load(wt)
		x.Store(wt, v+1)
	})
	h2 := ct.Go("b", func(wt core.T) {
		v := x.Load(wt)
		x.Store(wt, v+1)
	})
	h1.Join(ct)
	h2.Join(ct)
	ct.Assert(x.Load(ct) == 2, "lost update")
}

func TestPCTFindsLostUpdate(t *testing.T) {
	res := Run(Options{MaxRuns: 500, Seed: 1, StopAtFirstBug: true}, lostUpdate)
	if len(res.Bugs) == 0 {
		t.Fatalf("pct missed the lost update in %d runs", res.Runs)
	}
	if res.FirstBugIndex() < 1 {
		t.Fatalf("first bug index = %d, want >= 1", res.FirstBugIndex())
	}
	if res.Runs > 500 {
		t.Fatalf("budget overrun: %d runs", res.Runs)
	}
}

// pctGolden pins the fixed-seed campaign exactly, the same convention
// TestFuzzGolden pins for fuzzing: every value below is a pure
// function of (program, Seed: 1, Depth: DefaultDepth, MaxRuns: 1000),
// so any drift here is a change to the priority scheduler or the
// change-point sampling and must be deliberate.
var pctGolden = []struct {
	program    string
	firstBug   int
	bugs       int
	estSteps   int64
	maxThreads int
}{
	{"account", 2, 1, 16, 3},
	{"statmax", 5, 1, 14, 3},
	{"semleak", 11, 1, 22, 2},
	{"philosophers", 6, 1, 23, 3},
	{"abastack", 58, 1, 41, 3},
}

func TestPCTGolden(t *testing.T) {
	for _, g := range pctGolden {
		res := Run(Options{MaxRuns: 1000, Seed: 1}, bodyOf(t, g.program))
		if res.Runs != 1000 {
			t.Errorf("%s: runs = %d, want 1000", g.program, res.Runs)
		}
		if got := res.FirstBugIndex(); got != g.firstBug {
			t.Errorf("%s: first bug at %d, golden %d", g.program, got, g.firstBug)
		}
		if len(res.Bugs) != g.bugs {
			t.Errorf("%s: %d distinct bugs, golden %d", g.program, len(res.Bugs), g.bugs)
		}
		if res.EstimatedSteps != g.estSteps {
			t.Errorf("%s: estimated steps = %d, golden %d", g.program, res.EstimatedSteps, g.estSteps)
		}
		if res.MaxThreads != g.maxThreads {
			t.Errorf("%s: max threads = %d, golden %d", g.program, res.MaxThreads, g.maxThreads)
		}
	}
}

// TestPCTDeterministic: a fixed seed is byte-identical campaign over
// campaign — run counts, bug indices, signatures and the recorded
// bug schedules (which is what makes saved pct scenarios replayable).
func TestPCTDeterministic(t *testing.T) {
	for _, name := range []string{"account", "philosophers", "abastack"} {
		body := bodyOf(t, name)
		a := Run(Options{MaxRuns: 600, Seed: 7}, body)
		b := Run(Options{MaxRuns: 600, Seed: 7}, body)
		if a.Runs != b.Runs || a.EstimatedSteps != b.EstimatedSteps || a.MaxThreads != b.MaxThreads {
			t.Errorf("%s: campaigns differ: %+v vs %+v", name, a, b)
		}
		if len(a.Bugs) != len(b.Bugs) {
			t.Fatalf("%s: bug counts differ: %d vs %d", name, len(a.Bugs), len(b.Bugs))
		}
		for i := range a.Bugs {
			if a.Bugs[i].Index != b.Bugs[i].Index {
				t.Errorf("%s: bug %d index %d vs %d", name, i, a.Bugs[i].Index, b.Bugs[i].Index)
			}
			if core.BugSignature(a.Bugs[i].Result) != core.BugSignature(b.Bugs[i].Result) {
				t.Errorf("%s: bug %d signatures differ", name, i)
			}
			if !reflect.DeepEqual(a.Bugs[i].Schedule, b.Bugs[i].Schedule) {
				t.Errorf("%s: bug %d schedules differ", name, i)
			}
		}
	}
}

// TestPCTGuarantee checks the depth-d probabilistic guarantee
// empirically: a single depth-2 PCT run exposes the account lost
// update (a bug of preemption depth 1, i.e. PCT depth 2) with
// probability at least 1/(n*k) for n threads and k steps (Burckhardt
// et al.). With n=3 and k<=16 the bound is ~1/48 ≈ 2.1%; the measured
// per-run hit rate sits around 8%, so 300 independent seeds falling
// below the bound would be an astronomically unlikely regression.
//
// Each seed spends MaxRuns: 2 because run 1 is the no-change-point
// probe that estimates the horizon; run 2 is the first real depth-2
// run, and only a hit on that run counts.
func TestPCTGuarantee(t *testing.T) {
	if testing.Short() {
		t.Skip("empirical guarantee sweep in -short mode")
	}
	body := bodyOf(t, "account")
	const seeds = 300
	hits := 0
	var n int
	var k int64
	for s := int64(0); s < seeds; s++ {
		res := Run(Options{MaxRuns: 2, Seed: s, Depth: 2}, body)
		if res.FirstBugIndex() == 2 {
			hits++
		}
		if res.MaxThreads > n {
			n = res.MaxThreads
		}
		if res.EstimatedSteps > k {
			k = res.EstimatedSteps
		}
	}
	bound := 1 / (float64(n) * float64(k))
	rate := float64(hits) / seeds
	t.Logf("depth-2 hit rate %.3f (%d/%d), guarantee lower bound 1/(n*k) = 1/(%d*%d) = %.4f",
		rate, hits, seeds, n, k, bound)
	if rate < bound {
		t.Errorf("empirical hit rate %.4f below the depth-2 guarantee %.4f", rate, bound)
	}
}
