// Package pct implements probabilistic concurrency testing (PCT,
// after Burckhardt, Kothari, Musuvathi and Nagarakatte's "A Randomized
// Scheduler with Probabilistic Guarantees of Finding Bugs"): a
// randomized priority scheduler with a mathematical lower bound on its
// per-run bug-finding probability, the portfolio's counterpoint to
// both blind noise and systematic search.
//
// Each run assigns every thread a random high priority on first
// appearance and always runs the highest-priority runnable thread —
// by itself that is one random serialization. The power comes from
// d−1 priority-change points sampled uniformly over the run's steps:
// at each, the thread about to run is demoted below every other
// priority, forcing exactly one adversarial switch. A bug of depth d
// (one needing d−1 such forced switches at the right steps plus the
// right thread ordering) is then hit by a single run with probability
// at least
//
//	P ≥ 1/(n · k^(d−1))
//
// for a program with at most n threads and k scheduling steps. The
// benchmark programs have tiny n and k, so even modest run budgets
// push the portfolio's miss probability toward zero; the bound is
// empirically sanity-checked by TestGuaranteeEmpirical.
//
// The step count k is not known a priori, so the finder estimates it
// adaptively: run 1 takes no change points (a pure priority
// serialization, which also measures the program), and every later
// run samples its change points over the longest run observed so far.
// All randomness derives from Options.Seed via core.MixSeed per run
// (never the global math/rand source), so a fixed seed reproduces the
// campaign byte for byte — pinned by TestPCTGolden.
package pct

import (
	"math/rand"
	"slices"

	"mtbench/internal/core"
	"mtbench/internal/instrument"
	"mtbench/internal/sched"
)

// DefaultMaxRuns is the run budget when Options.MaxRuns is zero.
const DefaultMaxRuns = 2000

// DefaultDepth is the targeted bug depth when Options.Depth is zero:
// d = 3 means two priority-change points per run, enough for the
// ordering-plus-two-switches bugs the repository programs plant.
const DefaultDepth = 3

// Options configures a PCT campaign.
type Options struct {
	// MaxRuns bounds how many runs are executed (0 = 2000).
	MaxRuns int
	// MaxSteps bounds each run (0 = sched default).
	MaxSteps int64
	// Seed is the master seed; every run's priorities and change
	// points derive from it via core.MixSeed, so a fixed seed
	// reproduces the campaign exactly.
	Seed int64
	// Depth is the targeted bug depth d (0 = 3): each run after the
	// first takes d−1 priority-change points.
	Depth int
	// StopAtFirstBug ends the campaign at the first non-pass verdict.
	StopAtFirstBug bool
	// Listeners are attached to every run.
	Listeners []core.Listener
	// Name labels runs for RunObserver listeners.
	Name string
	// Plan filters which probes fire in every run (nil = instrument
	// everything).
	Plan *instrument.Plan
}

// Bug is one erroneous schedule found by PCT.
type Bug struct {
	// Schedule is the executed decision log that exposed the bug; it
	// replays through sched.FixedSchedule or the replay package.
	Schedule []core.ThreadID
	Result   *core.Result
	// Index is the 1-based number of the run that exposed it.
	Index int
}

// Result summarizes a PCT campaign.
type Result struct {
	// Runs is the number of executions performed.
	Runs int
	// Bugs are the distinct failures found, deduplicated by
	// core.BugSignature and ordered by Index.
	Bugs []Bug
	// EstimatedSteps is the adaptive step-count estimate k the last
	// run sampled its change points over (the longest observed run).
	EstimatedSteps int64
	// MaxThreads is the largest per-run thread count n observed.
	// Together with EstimatedSteps it instantiates the guarantee:
	// each depth-d run hits a depth-d bug with probability at least
	// 1/(MaxThreads · EstimatedSteps^(d−1)).
	MaxThreads int
}

// FirstBugIndex returns the run number of the first bug, or -1 when no
// bug was found (run numbers are 1-based, so -1 is unambiguous — the
// same convention as explore.Result and fuzz.Result).
func (r *Result) FirstBugIndex() int {
	if len(r.Bugs) == 0 {
		return -1
	}
	return r.Bugs[0].Index
}

// priorityBase is the band fresh-thread priorities are drawn from.
// Demotions use negative values, so any demoted thread ranks below
// every undemoted one, and later demotions rank below earlier ones
// (the classic PCT priority layout).
const (
	priorityBase  = int64(1) << 32
	priorityRange = int64(1) << 32
)

// strategy drives one PCT run. It must be rebuilt per run: priorities
// and change points are per-run randomness.
type strategy struct {
	rng     *rand.Rand
	prio    map[core.ThreadID]int64
	changes map[int64]bool
	// demotions counts change points taken, giving later demotions
	// strictly lower (more negative) priorities.
	demotions int64
}

// newStrategy samples changePoints distinct steps over horizon and
// returns the run's scheduler.
func newStrategy(rng *rand.Rand, changePoints int, horizon int64) *strategy {
	if horizon < 1 {
		horizon = 1
	}
	changes := make(map[int64]bool, changePoints)
	for int64(len(changes)) < int64(changePoints) && int64(len(changes)) < horizon {
		changes[rng.Int63n(horizon)] = true
	}
	return &strategy{rng: rng, prio: map[core.ThreadID]int64{}, changes: changes}
}

// Name implements sched.Strategy.
func (*strategy) Name() string { return "pct" }

// Pick implements sched.Strategy: run the highest-priority runnable
// thread, demoting the would-run thread first when this step is a
// change point.
func (s *strategy) Pick(c *sched.Choice) core.ThreadID {
	for _, id := range c.Runnable {
		if _, ok := s.prio[id]; !ok {
			s.prio[id] = priorityBase + s.rng.Int63n(priorityRange)
		}
	}
	best := s.highest(c.Runnable)
	if s.changes[c.Step] {
		s.demotions++
		s.prio[best] = -s.demotions
		best = s.highest(c.Runnable)
	}
	return best
}

// highest returns the highest-priority thread among runnable; ties
// (vanishingly rare) break to the lower id because Runnable is sorted.
func (s *strategy) highest(runnable []core.ThreadID) core.ThreadID {
	best := runnable[0]
	for _, id := range runnable[1:] {
		if s.prio[id] > s.prio[best] {
			best = id
		}
	}
	return best
}

// Run executes a PCT campaign over body and returns its summary. The
// loop is serial on one pooled runner: campaign determinism rests on
// finders being serially deterministic, and each run's randomness is
// an independent core.MixSeed stream.
func Run(opts Options, body func(core.T)) *Result {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = DefaultMaxRuns
	}
	if opts.Depth <= 0 {
		opts.Depth = DefaultDepth
	}
	runner := sched.NewRunner()
	defer runner.Close()

	cfg := sched.Config{
		Listeners:      opts.Listeners,
		MaxSteps:       opts.MaxSteps,
		Name:           opts.Name,
		Plan:           opts.Plan,
		RecordSchedule: true,
	}
	res := &Result{}
	seen := map[string]bool{}
	var horizon int64
	for i := 0; i < opts.MaxRuns; i++ {
		rng := rand.New(rand.NewSource(core.MixSeed(opts.Seed, int64(i))))
		changePoints := 0
		if i > 0 {
			// Run 1 is the pure priority serialization that seeds the
			// adaptive step estimate.
			changePoints = opts.Depth - 1
		}
		st := newStrategy(rng, changePoints, horizon)
		cfg.Strategy = st
		runRes := runner.Run(cfg, body)
		res.Runs++
		if runRes.Steps > horizon {
			horizon = runRes.Steps
		}
		if n := len(st.prio); n > res.MaxThreads {
			res.MaxThreads = n
		}
		if runRes.Verdict.Bug() {
			sig := core.BugSignature(runRes)
			if !seen[sig] {
				seen[sig] = true
				// The result and its slices live in the pooled runner
				// and are overwritten by the next run; deep-clone what
				// the bug retains.
				keep := new(core.Result)
				*keep = *runRes
				keep.Schedule = slices.Clone(runRes.Schedule)
				keep.FinishOrder = slices.Clone(runRes.FinishOrder)
				if runRes.Failure != nil {
					f := *runRes.Failure
					keep.Failure = &f
				}
				res.Bugs = append(res.Bugs, Bug{Schedule: keep.Schedule, Result: keep, Index: i + 1})
			}
			if opts.StopAtFirstBug {
				break
			}
		}
	}
	res.EstimatedSteps = horizon
	return res
}
