// Package race implements the data-race detection technologies of
// §2.2: the Eraser lockset algorithm, a DJIT+-style vector-clock
// happens-before detector, and a hybrid of the two. Every detector is a
// core.Listener, so the same implementation runs online (attached to a
// run) and offline (fed a recorded trace via trace.Replay) — the
// on-line/off-line duality the paper describes, with the trade-off
// moved to where it belongs: overhead during the run versus trace
// storage.
//
// The detectors differ exactly along the axis §2.2 highlights: "the
// ability to detect user implemented synchronization is different".
// The happens-before detector can be told to respect atomic
// (Java-volatile-style) variables as synchronization; the lockset
// detector cannot, and reports the corresponding false alarms.
package race

import (
	"fmt"
	"sort"

	"mtbench/internal/core"
)

// Warning is one reported (potential) race.
type Warning struct {
	Detector string
	Var      string
	Obj      core.ObjectID
	// Kind is "write-write" or "read-write" for happens-before
	// detectors, "lockset-empty" for Eraser.
	Kind string
	// Prior and Access are the two conflicting program points (Prior
	// may be zero when the earlier site is unknown).
	Prior  core.Location
	Access core.Location
	// Threads are the two threads involved (second is the accessor).
	Threads [2]core.ThreadID
}

// String renders the warning one-line.
func (w Warning) String() string {
	return fmt.Sprintf("[%s] %s race on %q: t%d@%s vs t%d@%s",
		w.Detector, w.Kind, w.Var, w.Threads[0], w.Prior.Key(), w.Threads[1], w.Access.Key())
}

// Detector is a race detector usable online and offline.
type Detector interface {
	core.Listener
	Name() string
	// Warnings returns the deduplicated warnings so far.
	Warnings() []Warning
	// WarnedVars returns the sorted set of variable names warned about
	// (the unit the benchmark's false-alarm accounting uses).
	WarnedVars() []string
	// Reset clears all state for a fresh run.
	Reset()
}

// warnStore deduplicates warnings by (variable, access location).
type warnStore struct {
	warnings []Warning
	seen     map[string]bool
}

func (s *warnStore) add(w Warning) {
	key := w.Var + "|" + w.Access.Key() + "|" + w.Kind
	if s.seen == nil {
		s.seen = make(map[string]bool)
	}
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	s.warnings = append(s.warnings, w)
}

func (s *warnStore) list() []Warning { return s.warnings }

func (s *warnStore) vars() []string {
	set := map[string]bool{}
	for _, w := range s.warnings {
		set[w.Var] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (s *warnStore) reset() {
	s.warnings = nil
	s.seen = nil
}

// lockState derives each thread's held-lock sets from the sync event
// stream; both detectors consume it. Reader/writer locks contribute to
// held (protecting reads) and, when write-held, to heldWrite
// (protecting writes) — Eraser's rwlock refinement.
type lockState struct {
	held      map[core.ThreadID]map[core.ObjectID]bool
	heldWrite map[core.ThreadID]map[core.ObjectID]bool
}

func newLockState() *lockState {
	return &lockState{
		held:      map[core.ThreadID]map[core.ObjectID]bool{},
		heldWrite: map[core.ThreadID]map[core.ObjectID]bool{},
	}
}

func (ls *lockState) set(m map[core.ThreadID]map[core.ObjectID]bool, t core.ThreadID) map[core.ObjectID]bool {
	s := m[t]
	if s == nil {
		s = map[core.ObjectID]bool{}
		m[t] = s
	}
	return s
}

// apply updates the held sets from a sync event.
func (ls *lockState) apply(ev *core.Event) {
	switch ev.Op {
	case core.OpLock:
		if ev.Value == 1 { // acquired (0 = failed TryLock)
			ls.set(ls.held, ev.Thread)[ev.Obj] = true
			ls.set(ls.heldWrite, ev.Thread)[ev.Obj] = true
		}
	case core.OpUnlock:
		delete(ls.set(ls.held, ev.Thread), ev.Obj)
		delete(ls.set(ls.heldWrite, ev.Thread), ev.Obj)
	case core.OpRLock:
		ls.set(ls.held, ev.Thread)[ev.Obj] = true
	case core.OpRUnlock:
		delete(ls.set(ls.held, ev.Thread), ev.Obj)
	}
}

// locksOf returns the set protecting an access: all held locks for a
// read, write-held locks for a write.
func (ls *lockState) locksOf(t core.ThreadID, write bool) map[core.ObjectID]bool {
	if write {
		return ls.set(ls.heldWrite, t)
	}
	return ls.set(ls.held, t)
}

func intersect(dst map[core.ObjectID]bool, other map[core.ObjectID]bool) {
	for l := range dst {
		if !other[l] {
			delete(dst, l)
		}
	}
}

func copySet(s map[core.ObjectID]bool) map[core.ObjectID]bool {
	out := make(map[core.ObjectID]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}
