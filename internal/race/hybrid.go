package race

import (
	"sort"

	"mtbench/internal/core"
)

// Hybrid combines the two detectors in the O'Callahan/Choi spirit: a
// warning is reported only when the happens-before detector finds the
// access unordered and the Eraser candidate lockset is empty. It
// trades a little recall for the lowest false-alarm rate of the three
// — the benchmark's E2 experiment quantifies exactly that trade.
type Hybrid struct {
	hb *HB
	ls *Lockset
}

// NewHybrid returns a hybrid detector. respectAtomics is passed to the
// happens-before half.
func NewHybrid(respectAtomics bool) *Hybrid {
	return &Hybrid{hb: NewHB(respectAtomics), ls: NewLockset()}
}

// Name implements Detector.
func (d *Hybrid) Name() string { return "hybrid" }

// Reset implements Detector.
func (d *Hybrid) Reset() {
	d.hb.Reset()
	d.ls.Reset()
}

// RunStart implements core.RunObserver.
func (d *Hybrid) RunStart(info core.RunInfo) {
	d.hb.RunStart(info)
	d.ls.RunStart(info)
}

// RunEnd implements core.RunObserver.
func (d *Hybrid) RunEnd(*core.Result) {}

// OnEvent implements core.Listener by feeding both halves.
func (d *Hybrid) OnEvent(ev *core.Event) {
	d.hb.OnEvent(ev)
	d.ls.OnEvent(ev)
}

// Warnings implements Detector: the HB warnings on variables whose
// lockset also ran empty.
func (d *Hybrid) Warnings() []Warning {
	lsVars := map[string]bool{}
	for _, v := range d.ls.WarnedVars() {
		lsVars[v] = true
	}
	var out []Warning
	for _, w := range d.hb.Warnings() {
		if lsVars[w.Var] {
			w.Detector = d.Name()
			out = append(out, w)
		}
	}
	return out
}

// WarnedVars implements Detector.
func (d *Hybrid) WarnedVars() []string {
	set := map[string]bool{}
	for _, w := range d.Warnings() {
		set[w.Var] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Events returns the number of events processed (each event is
// processed by both halves; the count reports one pass).
func (d *Hybrid) Events() int64 { return d.hb.Events() }
