package race

import "mtbench/internal/core"

// Eraser state machine states (Savage et al., TOCS 1997).
type lsState uint8

const (
	lsVirgin lsState = iota
	lsExclusive
	lsShared
	lsSharedModified
)

// lsShadow is the per-variable shadow word.
type lsShadow struct {
	state     lsState
	owner     core.ThreadID          // Exclusive owner
	candidate map[core.ObjectID]bool // C(v)
	lastLoc   core.Location          // most recent access site
	lastTid   core.ThreadID
	reported  bool
}

// Lockset is the Eraser detector: it warns when a variable reaches the
// shared-modified state with an empty candidate lockset. It has the
// classic strengths (no dependence on the observed interleaving) and
// the classic weakness the paper calls out: it cannot see
// happens-before edges from user-implemented synchronization, so
// atomics-based protocols produce false alarms.
type Lockset struct {
	ls     *lockState
	vars   map[core.ObjectID]*lsShadow
	warns  warnStore
	events int64
}

// NewLockset returns a fresh Eraser detector.
func NewLockset() *Lockset {
	return &Lockset{ls: newLockState(), vars: map[core.ObjectID]*lsShadow{}}
}

// Name implements Detector.
func (d *Lockset) Name() string { return "lockset" }

// Reset implements Detector.
func (d *Lockset) Reset() {
	d.RunStart(core.RunInfo{})
	d.warns.reset()
	d.events = 0
}

// RunStart implements core.RunObserver: shadow state is per execution
// (object ids restart every run), warnings accumulate across the
// campaign.
func (d *Lockset) RunStart(core.RunInfo) {
	d.ls = newLockState()
	d.vars = map[core.ObjectID]*lsShadow{}
}

// RunEnd implements core.RunObserver.
func (d *Lockset) RunEnd(*core.Result) {}

// Warnings implements Detector.
func (d *Lockset) Warnings() []Warning { return d.warns.list() }

// WarnedVars implements Detector.
func (d *Lockset) WarnedVars() []string { return d.warns.vars() }

// Events returns how many events the detector processed (overhead
// accounting).
func (d *Lockset) Events() int64 { return d.events }

// OnEvent implements core.Listener.
func (d *Lockset) OnEvent(ev *core.Event) {
	d.events++
	if ev.Op.IsSync() {
		d.ls.apply(ev)
		return
	}
	if !ev.Op.IsAccess() {
		return
	}
	write := ev.Op == core.OpWrite
	sh := d.vars[ev.Obj]
	if sh == nil {
		sh = &lsShadow{state: lsVirgin}
		d.vars[ev.Obj] = sh
	}
	d.access(sh, ev, write)
	sh.lastLoc = ev.Loc
	sh.lastTid = ev.Thread
}

// access runs one step of the Eraser state machine.
func (d *Lockset) access(sh *lsShadow, ev *core.Event, write bool) {
	t := ev.Thread
	switch sh.state {
	case lsVirgin:
		sh.state = lsExclusive
		sh.owner = t
	case lsExclusive:
		if t == sh.owner {
			return
		}
		// Second thread: initialize C(v) with the current locks and
		// move to shared or shared-modified.
		sh.candidate = copySet(d.ls.locksOf(t, write))
		if write {
			sh.state = lsSharedModified
		} else {
			sh.state = lsShared
		}
		d.check(sh, ev)
	case lsShared:
		intersect(sh.candidate, d.ls.locksOf(t, write))
		if write {
			sh.state = lsSharedModified
		}
		d.check(sh, ev)
	case lsSharedModified:
		intersect(sh.candidate, d.ls.locksOf(t, write))
		d.check(sh, ev)
	}
}

// check reports a warning when the variable is shared-modified with an
// empty candidate set.
func (d *Lockset) check(sh *lsShadow, ev *core.Event) {
	if sh.state != lsSharedModified || len(sh.candidate) > 0 || sh.reported {
		return
	}
	sh.reported = true
	d.warns.add(Warning{
		Detector: d.Name(),
		Var:      ev.Name,
		Obj:      ev.Obj,
		Kind:     "lockset-empty",
		Prior:    sh.lastLoc,
		Access:   ev.Loc,
		Threads:  [2]core.ThreadID{sh.lastTid, ev.Thread},
	})
}
