package race

import (
	"mtbench/internal/core"
	"mtbench/internal/vclock"
)

// hbShadow is the per-variable happens-before shadow state: the last
// write/read clocks per thread plus the access sites needed for
// two-sided warnings.
type hbShadow struct {
	writes   vclock.VC // writes[u] = clock of u's last write
	reads    vclock.VC // reads[u]  = clock of u's last read
	writeLoc map[core.ThreadID]core.Location
	readLoc  map[core.ThreadID]core.Location
}

// HB is the vector-clock happens-before detector in the DJIT+ family:
// it reports an access that is concurrent (unordered by the
// happens-before relation induced by locks, fork/join and —
// optionally — atomic variables) with a previous conflicting access.
//
// Unlike the lockset detector it only reports races the observed
// execution actually exhibits, so it has no false positives with
// respect to that execution; the price is sensitivity to the observed
// interleaving.
type HB struct {
	// RespectAtomics makes atomic-variable accesses induce
	// happens-before edges (release on write, acquire on read). With it
	// off, the detector treats user-implemented synchronization as
	// ordinary data — the configuration axis §2.2 discusses.
	RespectAtomics bool

	threads map[core.ThreadID]*vclock.VC
	locks   map[core.ObjectID]*vclock.VC
	atomics map[core.ObjectID]*vclock.VC
	vars    map[core.ObjectID]*hbShadow
	warns   warnStore
	events  int64
}

// NewHB returns a happens-before detector; respectAtomics selects
// whether atomic variables count as synchronization.
func NewHB(respectAtomics bool) *HB {
	d := &HB{RespectAtomics: respectAtomics}
	d.Reset()
	return d
}

// Name implements Detector.
func (d *HB) Name() string {
	if d.RespectAtomics {
		return "hb"
	}
	return "hb-noatomics"
}

// Reset implements Detector.
func (d *HB) Reset() {
	d.RunStart(core.RunInfo{})
	d.warns.reset()
	d.events = 0
}

// RunStart implements core.RunObserver: clocks and shadow state are
// per execution (thread and object ids restart every run), warnings
// accumulate across the campaign.
func (d *HB) RunStart(core.RunInfo) {
	d.threads = map[core.ThreadID]*vclock.VC{}
	d.locks = map[core.ObjectID]*vclock.VC{}
	d.atomics = map[core.ObjectID]*vclock.VC{}
	d.vars = map[core.ObjectID]*hbShadow{}
}

// RunEnd implements core.RunObserver.
func (d *HB) RunEnd(*core.Result) {}

// Warnings implements Detector.
func (d *HB) Warnings() []Warning { return d.warns.list() }

// WarnedVars implements Detector.
func (d *HB) WarnedVars() []string { return d.warns.vars() }

// Events returns the number of events processed.
func (d *HB) Events() int64 { return d.events }

// clock returns thread t's vector clock, initializing it to tick 1 of
// its own component.
func (d *HB) clock(t core.ThreadID) *vclock.VC {
	c := d.threads[t]
	if c == nil {
		vc := vclock.New(int(t) + 1)
		vc.Set(t, 1)
		c = &vc
		d.threads[t] = c
	}
	return c
}

func (d *HB) objClock(m map[core.ObjectID]*vclock.VC, o core.ObjectID) *vclock.VC {
	c := m[o]
	if c == nil {
		vc := vclock.New(0)
		c = &vc
		m[o] = c
	}
	return c
}

// OnEvent implements core.Listener.
func (d *HB) OnEvent(ev *core.Event) {
	d.events++
	t := ev.Thread
	switch ev.Op {
	case core.OpFork:
		// Child inherits the parent's knowledge; parent ticks so
		// subsequent parent work is concurrent with the child.
		parent := d.clock(t)
		child := d.clock(core.ThreadID(ev.Value))
		child.Join(*parent)
		parent.Tick(t)
	case core.OpJoin:
		// Joiner inherits the joined thread's final clock.
		d.clock(t).Join(*d.clock(core.ThreadID(ev.Value)))
	case core.OpLock, core.OpRLock:
		if ev.Value == 1 || ev.Op == core.OpRLock {
			d.clock(t).Join(*d.objClock(d.locks, ev.Obj)) // acquire
		}
	case core.OpUnlock, core.OpRUnlock:
		// Release: publish the thread's clock into the lock, then tick.
		ct := d.clock(t)
		lc := d.objClock(d.locks, ev.Obj)
		lc.Join(*ct)
		ct.Tick(t)
	case core.OpChanSend, core.OpChanClose:
		// A send (or close) releases the sender's knowledge into the
		// channel: everything before it happens-before the matching
		// receive.
		ct := d.clock(t)
		cc := d.objClock(d.locks, ev.Obj)
		cc.Join(*ct)
		ct.Tick(t)
	case core.OpChanRecv:
		// A receive acquires the channel's accumulated clock.
		d.clock(t).Join(*d.objClock(d.locks, ev.Obj))
	case core.OpWGAdd:
		// Add/Done release: the work preceding a Done happens-before
		// the Wait that observes the zero counter.
		ct := d.clock(t)
		wc := d.objClock(d.locks, ev.Obj)
		wc.Join(*ct)
		ct.Tick(t)
	case core.OpWGWait:
		// Wait acquires every contributor's published clock.
		d.clock(t).Join(*d.objClock(d.locks, ev.Obj))
	case core.OpRead, core.OpWrite:
		if d.RespectAtomics && ev.Flags.Atomic() {
			d.atomicAccess(ev)
			return
		}
		d.dataAccess(ev)
	}
}

// atomicAccess gives a volatile-style variable release/acquire
// semantics: writes publish, reads acquire.
func (d *HB) atomicAccess(ev *core.Event) {
	ct := d.clock(ev.Thread)
	ac := d.objClock(d.atomics, ev.Obj)
	if ev.Op == core.OpWrite {
		ac.Join(*ct)
		ct.Tick(ev.Thread)
	} else {
		ct.Join(*ac)
	}
}

// dataAccess checks the access against the variable's shadow clocks and
// records it.
func (d *HB) dataAccess(ev *core.Event) {
	t := ev.Thread
	ct := d.clock(t)
	sh := d.vars[ev.Obj]
	if sh == nil {
		sh = &hbShadow{
			writeLoc: map[core.ThreadID]core.Location{},
			readLoc:  map[core.ThreadID]core.Location{},
		}
		d.vars[ev.Obj] = sh
	}

	if ev.Op == core.OpWrite {
		// A write must be ordered after every prior read and write.
		if u, ok := d.findConcurrent(sh.writes, ct, t); ok {
			d.warn(ev, "write-write", u, sh.writeLoc[u])
		} else if u, ok := d.findConcurrent(sh.reads, ct, t); ok {
			d.warn(ev, "read-write", u, sh.readLoc[u])
		}
		sh.writes.Set(t, ct.Get(t))
		sh.writeLoc[t] = ev.Loc
		return
	}

	// A read must be ordered after every prior write.
	if u, ok := d.findConcurrent(sh.writes, ct, t); ok {
		d.warn(ev, "read-write", u, sh.writeLoc[u])
	}
	sh.reads.Set(t, ct.Get(t))
	sh.readLoc[t] = ev.Loc
}

// findConcurrent returns a thread u != t whose recorded access clock is
// not happens-before ct.
func (d *HB) findConcurrent(accesses vclock.VC, ct *vclock.VC, t core.ThreadID) (core.ThreadID, bool) {
	for u := 0; u < accesses.Len(); u++ {
		uid := core.ThreadID(u)
		if uid == t {
			continue
		}
		if c := accesses.Get(uid); c > 0 && c > ct.Get(uid) {
			return uid, true
		}
	}
	return core.NoThread, false
}

func (d *HB) warn(ev *core.Event, kind string, prior core.ThreadID, priorLoc core.Location) {
	d.warns.add(Warning{
		Detector: d.Name(),
		Var:      ev.Name,
		Obj:      ev.Obj,
		Kind:     kind,
		Prior:    priorLoc,
		Access:   ev.Loc,
		Threads:  [2]core.ThreadID{prior, ev.Thread},
	})
}
