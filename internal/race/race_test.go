package race

import (
	"bytes"
	"reflect"
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/sched"
	"mtbench/internal/trace"
)

// runWith executes body under an interleaving-heavy controlled schedule
// with the given detectors attached.
func runWith(t *testing.T, body func(core.T), ds ...Detector) {
	t.Helper()
	ls := make([]core.Listener, len(ds))
	for i, d := range ds {
		ls[i] = d
	}
	res := sched.Run(sched.Config{Strategy: sched.RoundRobin(), Listeners: ls}, body)
	if res.Verdict == core.VerdictDeadlock {
		t.Fatalf("unexpected deadlock: %v", res)
	}
}

// racyBody has an unsynchronized write-write conflict on "data".
func racyBody(ct core.T) {
	data := ct.NewInt("data", 0)
	h := ct.Go("w", func(wt core.T) {
		data.Store(wt, 1)
	})
	data.Store(ct, 2)
	h.Join(ct)
}

// lockedBody is the same conflict correctly protected by a mutex.
func lockedBody(ct core.T) {
	data := ct.NewInt("data", 0)
	mu := ct.NewMutex("mu")
	h := ct.Go("w", func(wt core.T) {
		mu.Lock(wt)
		data.Store(wt, 1)
		mu.Unlock(wt)
	})
	mu.Lock(ct)
	data.Store(ct, 2)
	mu.Unlock(ct)
	h.Join(ct)
}

// adhocBody synchronizes hand-over via an atomic flag: t0 writes data,
// then publishes flag=1; the reader spins on the flag before reading
// data. Correct under release/acquire, invisible to lockset.
func adhocBody(ct core.T) {
	data := ct.NewInt("data", 0)
	flag := ct.NewAtomicInt("flag", 0)
	h := ct.Go("reader", func(wt core.T) {
		for flag.Load(wt) == 0 {
			wt.Yield()
		}
		_ = data.Load(wt)
	})
	data.Store(ct, 42)
	flag.Store(ct, 1)
	h.Join(ct)
}

func TestAllDetectorsFlagRace(t *testing.T) {
	for _, mk := range []func() Detector{
		func() Detector { return NewLockset() },
		func() Detector { return NewHB(true) },
		func() Detector { return NewHybrid(true) },
	} {
		d := mk()
		runWith(t, racyBody, d)
		if got := d.WarnedVars(); !reflect.DeepEqual(got, []string{"data"}) {
			t.Errorf("%s warned %v, want [data]", d.Name(), got)
		}
	}
}

func TestNoDetectorFlagsLockedAccess(t *testing.T) {
	for _, mk := range []func() Detector{
		func() Detector { return NewLockset() },
		func() Detector { return NewHB(true) },
		func() Detector { return NewHybrid(true) },
	} {
		d := mk()
		runWith(t, lockedBody, d)
		if got := d.WarnedVars(); len(got) != 0 {
			t.Errorf("%s warned %v on a correctly locked program", d.Name(), got)
		}
	}
}

// TestUserSyncSeparatesDetectors is the paper's §2.2 point in
// miniature: lockset false-alarms on atomic-flag synchronization, the
// atomics-aware happens-before detector does not, and the naive HB
// variant behaves like lockset.
func TestUserSyncSeparatesDetectors(t *testing.T) {
	ls, hbAware, hbNaive, hy := NewLockset(), NewHB(true), NewHB(false), NewHybrid(true)
	runWith(t, adhocBody, ls, hbAware, hbNaive, hy)

	if got := ls.WarnedVars(); len(got) == 0 {
		t.Error("lockset should false-alarm on ad-hoc sync (it cannot see it)")
	}
	if got := hbAware.WarnedVars(); len(got) != 0 {
		t.Errorf("atomics-aware HB warned %v on correct ad-hoc sync", got)
	}
	if got := hbNaive.WarnedVars(); len(got) == 0 {
		t.Error("atomics-blind HB should warn on ad-hoc sync")
	}
	if got := hy.WarnedVars(); len(got) != 0 {
		t.Errorf("hybrid warned %v on correct ad-hoc sync", got)
	}
}

func TestForkJoinOrdering(t *testing.T) {
	body := func(ct core.T) {
		data := ct.NewInt("data", 0)
		data.Store(ct, 1) // before fork: ordered
		h := ct.Go("w", func(wt core.T) {
			data.Store(wt, 2)
		})
		h.Join(ct)
		data.Store(ct, 3) // after join: ordered
	}
	hb := NewHB(true)
	runWith(t, body, hb)
	if got := hb.WarnedVars(); len(got) != 0 {
		t.Fatalf("HB warned %v on fork/join-ordered accesses", got)
	}
}

func TestReadSharedNoWarning(t *testing.T) {
	body := func(ct core.T) {
		data := ct.NewInt("data", 7)
		var hs []core.Handle
		for i := 0; i < 3; i++ {
			hs = append(hs, ct.Go("r", func(wt core.T) {
				_ = data.Load(wt)
			}))
		}
		for _, h := range hs {
			h.Join(ct)
		}
	}
	for _, d := range []Detector{NewLockset(), NewHB(true), NewHybrid(true)} {
		d.Reset()
		runWith(t, body, d)
		if got := d.WarnedVars(); len(got) != 0 {
			t.Errorf("%s warned %v on read-only sharing", d.Name(), got)
		}
	}
}

// TestEraserInitPattern checks the init-then-share refinement: writes
// by the creating thread before any sharing do not poison the lockset.
func TestEraserInitPattern(t *testing.T) {
	body := func(ct core.T) {
		data := ct.NewInt("data", 0)
		mu := ct.NewMutex("mu")
		data.Store(ct, 1) // unlocked initialization, pre-sharing
		data.Store(ct, 2)
		h := ct.Go("w", func(wt core.T) {
			mu.Lock(wt)
			data.Store(wt, 3)
			mu.Unlock(wt)
		})
		h.Join(ct)
		mu.Lock(ct)
		data.Store(ct, 4)
		mu.Unlock(ct)
	}
	d := NewLockset()
	runWith(t, body, d)
	if got := d.WarnedVars(); len(got) != 0 {
		t.Fatalf("lockset warned %v despite init-then-lock discipline", got)
	}
}

// TestOfflineEqualsOnline runs the detectors online and offline over
// the same execution and requires identical warnings — the property
// that makes the benchmark's shipped traces usable for detector
// research without rerunning programs.
func TestOfflineEqualsOnline(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewJSONLWriter(&buf)
	if err := w.WriteHeader(trace.Header{Program: "racy"}); err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector(w, nil)
	online := NewLockset()
	onlineHB := NewHB(true)
	runWith(t, racyBody, Detector(online), Detector(onlineHB))
	// Re-run with the collector to produce the trace of an identical
	// schedule (RoundRobin is deterministic).
	sched.Run(sched.Config{Strategy: sched.RoundRobin(), Listeners: []core.Listener{col}}, racyBody)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := trace.NewJSONLReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	offline := NewLockset()
	offlineHB := NewHB(true)
	if err := trace.Replay(r, core.MultiListener{offline, offlineHB}); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(online.WarnedVars(), offline.WarnedVars()) {
		t.Fatalf("lockset online %v != offline %v", online.WarnedVars(), offline.WarnedVars())
	}
	if !reflect.DeepEqual(onlineHB.WarnedVars(), offlineHB.WarnedVars()) {
		t.Fatalf("hb online %v != offline %v", onlineHB.WarnedVars(), offlineHB.WarnedVars())
	}
}

// TestWarningDedup checks one warning per (var, site, kind) however
// often the race replays.
func TestWarningDedup(t *testing.T) {
	body := func(ct core.T) {
		data := ct.NewInt("data", 0)
		h := ct.Go("w", func(wt core.T) {
			for i := 0; i < 10; i++ {
				data.Store(wt, int64(i))
			}
		})
		for i := 0; i < 10; i++ {
			data.Store(ct, int64(i))
		}
		h.Join(ct)
	}
	d := NewHB(true)
	runWith(t, body, d)
	ws := d.Warnings()
	if len(ws) == 0 {
		t.Fatal("no warnings")
	}
	seen := map[string]bool{}
	for _, w := range ws {
		key := w.Var + w.Access.Key() + w.Kind
		if seen[key] {
			t.Fatalf("duplicate warning %v", w)
		}
		seen[key] = true
	}
}

// TestRWLockSemantics checks that write access under only a read lock
// is flagged by Eraser's rwlock refinement, while reads under RLock are
// fine.
func TestRWLockSemantics(t *testing.T) {
	body := func(ct core.T) {
		data := ct.NewInt("data", 0)
		rw := ct.NewRWMutex("rw")
		h := ct.Go("bad-writer", func(wt core.T) {
			rw.RLock(wt) // read lock, then writes anyway: bug pattern
			data.Store(wt, 1)
			rw.RUnlock(wt)
		})
		rw.RLock(ct)
		data.Store(ct, 2)
		rw.RUnlock(ct)
		h.Join(ct)
	}
	d := NewLockset()
	runWith(t, body, d)
	if got := d.WarnedVars(); len(got) == 0 {
		t.Fatal("lockset missed write under read-lock")
	}
}

// chanHandoffBody transfers ownership of "data" through a channel:
// the producer writes, sends; the consumer receives, then reads. The
// send/recv pair is a release/acquire edge, so the HB detector must
// stay silent.
func chanHandoffBody(ct core.T) {
	data := ct.NewInt("data", 0)
	ch := ct.NewChan("ch", 0)
	h := ct.Go("consumer", func(wt core.T) {
		ch.Recv(wt)
		_ = data.Load(wt)
	})
	data.Store(ct, 42)
	ch.Send(ct, nil)
	h.Join(ct)
}

// wgHandoffBody publishes workers' writes through WaitGroup.Done /
// Wait: each worker writes its own slot of shared state, the waiter
// reads after Wait. Done→Wait is a release/acquire edge.
func wgHandoffBody(ct core.T) {
	data := ct.NewInt("data", 0)
	wg := ct.NewWaitGroup("wg")
	wg.Add(ct, 1)
	ct.Go("worker", func(wt core.T) {
		data.Store(wt, 7)
		wg.Done(wt)
	})
	wg.Wait(ct)
	_ = data.Load(ct)
}

// TestChanWGHappensBefore pins the new release/acquire edges: channel
// and waitgroup handoffs order the conflicting accesses, so the HB
// detector reports nothing, while removing the synchronization (the
// racy baseline) still warns.
func TestChanWGHappensBefore(t *testing.T) {
	for _, tc := range []struct {
		name string
		body func(core.T)
	}{
		{"chan-handoff", chanHandoffBody},
		{"wg-handoff", wgHandoffBody},
	} {
		d := NewHB(true)
		runWith(t, tc.body, d)
		if got := d.WarnedVars(); len(got) != 0 {
			t.Errorf("%s: hb warned %v on a correctly synchronized handoff", tc.name, got)
		}
	}
	// Sanity: the detector still fires without the handoff edges.
	d := NewHB(true)
	runWith(t, racyBody, d)
	if got := d.WarnedVars(); !reflect.DeepEqual(got, []string{"data"}) {
		t.Errorf("baseline warned %v, want [data]", got)
	}
}
