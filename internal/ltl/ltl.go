// Package ltl is the trace-evaluation component modeled on Java
// PathExplorer (§3 of the paper): it monitors event traces against
// user-provided properties stated in past-time linear temporal logic.
// A Monitor is a core.Listener, so properties run online against a
// live execution or offline against a recorded trace via trace.Replay
// — the same duality as the race and deadlock analyzers.
//
// Semantics are standard reflexive past-time LTL, evaluated
// incrementally with O(|formula|) state per event:
//
//	P φ   — φ held at the previous event (false at the first)
//	O φ   — φ held at some event so far (including this one)
//	H φ   — φ held at every event so far (including this one)
//	φ S ψ — ψ held at some past event and φ has held since then
//
// A property is violated at every event where it evaluates false; the
// monitor records violations and keeps going (a trace can violate a
// property many times).
package ltl

import (
	"fmt"

	"mtbench/internal/core"
)

// Formula is a past-time LTL formula. Build formulas with the
// combinators in this package or parse them from the compact syntax
// with Parse.
type Formula struct {
	kind nodeKind
	a, b *Formula
	name string
	pred func(*core.Event) bool
}

type nodeKind uint8

const (
	kTrue nodeKind = iota
	kAtom
	kNot
	kAnd
	kOr
	kImplies
	kPrev
	kOnce
	kHist
	kSince
)

// True is the formula that always holds.
func True() *Formula { return &Formula{kind: kTrue} }

// Atom holds at events satisfying pred; name is used for display.
func Atom(name string, pred func(*core.Event) bool) *Formula {
	return &Formula{kind: kAtom, name: name, pred: pred}
}

// On holds at events with the given op acting on the named object;
// name "*" matches any object.
func On(op core.Op, name string) *Formula {
	label := fmt.Sprintf("%s(%s)", op, name)
	return Atom(label, func(ev *core.Event) bool {
		return ev.Op == op && (name == "*" || ev.Name == name)
	})
}

// Not negates a formula.
func Not(f *Formula) *Formula { return &Formula{kind: kNot, a: f} }

// And conjoins two formulas.
func And(a, b *Formula) *Formula { return &Formula{kind: kAnd, a: a, b: b} }

// Or disjoins two formulas.
func Or(a, b *Formula) *Formula { return &Formula{kind: kOr, a: a, b: b} }

// Implies is material implication.
func Implies(a, b *Formula) *Formula { return &Formula{kind: kImplies, a: a, b: b} }

// Prev is the previous-event operator P.
func Prev(f *Formula) *Formula { return &Formula{kind: kPrev, a: f} }

// Once is the sometime-in-the-past operator O (reflexive).
func Once(f *Formula) *Formula { return &Formula{kind: kOnce, a: f} }

// Historically is the always-in-the-past operator H (reflexive).
func Historically(f *Formula) *Formula { return &Formula{kind: kHist, a: f} }

// Since is the binary since operator: a S b.
func Since(a, b *Formula) *Formula { return &Formula{kind: kSince, a: a, b: b} }

// String renders the formula in the Parse syntax.
func (f *Formula) String() string {
	switch f.kind {
	case kTrue:
		return "true"
	case kAtom:
		return f.name
	case kNot:
		return "!" + f.a.String()
	case kAnd:
		return "(" + f.a.String() + " & " + f.b.String() + ")"
	case kOr:
		return "(" + f.a.String() + " | " + f.b.String() + ")"
	case kImplies:
		return "(" + f.a.String() + " -> " + f.b.String() + ")"
	case kPrev:
		return "P " + f.a.String()
	case kOnce:
		return "O " + f.a.String()
	case kHist:
		return "H " + f.a.String()
	case kSince:
		return "(" + f.a.String() + " S " + f.b.String() + ")"
	}
	return "?"
}

// Violation records a property failure at one event.
type Violation struct {
	Seq    int64
	Event  core.Event
	Reason string
}

// Monitor evaluates one formula incrementally. It implements
// core.Listener.
type Monitor struct {
	Property string

	nodes []*Formula // post-order: children before parents
	index map[*Formula]int
	prev  []bool
	cur   []bool
	first bool

	events     int64
	violations []Violation
}

// NewMonitor compiles a formula into an incremental monitor.
func NewMonitor(f *Formula) *Monitor {
	m := &Monitor{Property: f.String(), index: map[*Formula]int{}, first: true}
	m.flatten(f)
	n := len(m.nodes)
	m.prev = make([]bool, n)
	m.cur = make([]bool, n)
	// Initial "previous" values: H starts true (vacuous), the rest
	// false; the first-event flag handles P/O/H/S initial semantics.
	for i, node := range m.nodes {
		if node.kind == kHist {
			m.prev[i] = true
		}
	}
	return m
}

func (m *Monitor) flatten(f *Formula) int {
	if i, ok := m.index[f]; ok {
		return i
	}
	if f.a != nil {
		m.flatten(f.a)
	}
	if f.b != nil {
		m.flatten(f.b)
	}
	i := len(m.nodes)
	m.nodes = append(m.nodes, f)
	m.index[f] = i
	return i
}

// OnEvent implements core.Listener: evaluate all subformulas at this
// event and record a violation if the root is false.
func (m *Monitor) OnEvent(ev *core.Event) {
	m.events++
	for i, f := range m.nodes {
		switch f.kind {
		case kTrue:
			m.cur[i] = true
		case kAtom:
			m.cur[i] = f.pred(ev)
		case kNot:
			m.cur[i] = !m.cur[m.index[f.a]]
		case kAnd:
			m.cur[i] = m.cur[m.index[f.a]] && m.cur[m.index[f.b]]
		case kOr:
			m.cur[i] = m.cur[m.index[f.a]] || m.cur[m.index[f.b]]
		case kImplies:
			m.cur[i] = !m.cur[m.index[f.a]] || m.cur[m.index[f.b]]
		case kPrev:
			if m.first {
				m.cur[i] = false
			} else {
				m.cur[i] = m.prev[m.index[f.a]]
			}
		case kOnce:
			m.cur[i] = m.cur[m.index[f.a]] || (!m.first && m.prev[i])
		case kHist:
			m.cur[i] = m.cur[m.index[f.a]] && (m.first || m.prev[i])
		case kSince:
			m.cur[i] = m.cur[m.index[f.b]] ||
				(!m.first && m.cur[m.index[f.a]] && m.prev[i])
		}
	}
	root := len(m.nodes) - 1
	if !m.cur[root] {
		m.violations = append(m.violations, Violation{
			Seq:    ev.Seq,
			Event:  *ev,
			Reason: m.Property,
		})
	}
	m.prev, m.cur = m.cur, m.prev
	m.first = false
}

// Ok reports whether the property held at every event so far.
func (m *Monitor) Ok() bool { return len(m.violations) == 0 }

// Violations returns the recorded failures.
func (m *Monitor) Violations() []Violation { return m.violations }

// Events returns how many events were monitored.
func (m *Monitor) Events() int64 { return m.events }

// Reset clears monitor state for a fresh trace.
func (m *Monitor) Reset() {
	for i := range m.prev {
		m.prev[i] = m.nodes[i].kind == kHist
		m.cur[i] = false
	}
	m.first = true
	m.events = 0
	m.violations = nil
}
