package ltl

import (
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

// ev builds a minimal event for direct monitor feeding.
func ev(seq int64, op core.Op, name string) *core.Event {
	return &core.Event{Seq: seq, Op: op, Name: name}
}

func feed(m *Monitor, evs ...*core.Event) {
	for _, e := range evs {
		m.OnEvent(e)
	}
}

func TestOnceOperator(t *testing.T) {
	// H(unlock(mu) -> O lock(mu)): unlock must be preceded by a lock.
	f := Historically(Implies(On(core.OpUnlock, "mu"), Once(On(core.OpLock, "mu"))))
	m := NewMonitor(f)
	feed(m, ev(1, core.OpLock, "mu"), ev(2, core.OpUnlock, "mu"))
	if !m.Ok() {
		t.Fatalf("lock-then-unlock violated: %v", m.Violations())
	}

	m.Reset()
	feed(m, ev(1, core.OpUnlock, "mu"))
	if m.Ok() {
		t.Fatal("unlock without lock not caught")
	}
}

func TestHistoricallyLatches(t *testing.T) {
	// Once violated, H stays false for the rest of the trace.
	f := Historically(Not(On(core.OpFail, "*")))
	m := NewMonitor(f)
	feed(m, ev(1, core.OpRead, "x"), ev(2, core.OpFail, "boom"), ev(3, core.OpRead, "x"))
	if got := len(m.Violations()); got != 2 {
		t.Fatalf("violations = %d, want 2 (latched)", got)
	}
}

func TestPrevOperator(t *testing.T) {
	// H(awake(cv) -> P wait(cv)) — artificial: awake directly after wait.
	f := Historically(Implies(On(core.OpAwake, "cv"), Prev(On(core.OpWait, "cv"))))
	m := NewMonitor(f)
	feed(m, ev(1, core.OpWait, "cv"), ev(2, core.OpAwake, "cv"))
	if !m.Ok() {
		t.Fatalf("wait-then-awake violated: %v", m.Violations())
	}
	m.Reset()
	feed(m, ev(1, core.OpAwake, "cv"))
	if m.Ok() {
		t.Fatal("awake at first event not caught by P")
	}
}

func TestSinceOperator(t *testing.T) {
	// !unlock(mu) S lock(mu): "mu currently held" — true between lock
	// and unlock, false after the unlock event.
	f := Since(Not(On(core.OpUnlock, "mu")), On(core.OpLock, "mu"))
	m := NewMonitor(f)
	m.OnEvent(ev(1, core.OpLock, "mu"))
	if !m.Ok() {
		t.Fatal("since false at lock")
	}
	m.OnEvent(ev(2, core.OpRead, "x"))
	if len(m.Violations()) != 0 {
		t.Fatal("since false while held")
	}
	m.OnEvent(ev(3, core.OpUnlock, "mu"))
	if len(m.Violations()) != 1 {
		t.Fatalf("since should be false at the unlock: %v", m.Violations())
	}
}

func TestParserRoundtrip(t *testing.T) {
	cases := []string{
		"H(unlock(mu) -> O lock(mu))",
		"H(write(balance) -> O lock(mu))",
		"H(awake(cv) -> O (signal(cv) | broadcast(cv)))",
		"!fail(*) S lock(a)",
		"true -> !false",
		"H !fail",
	}
	for _, src := range cases {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		// The rendered form must parse back to something equivalent
		// (pin: it parses).
		if _, err := Parse(f.String()); err != nil {
			t.Fatalf("reparse %q: %v", f.String(), err)
		}
	}
}

func TestParserErrors(t *testing.T) {
	for _, src := range []string{"", "H(", "frobnicate(x)", "lock(mu))", "H lock(mu) extra"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q parsed without error", src)
		}
	}
}

// TestAccountLockDiscipline runs the paper's scenario end to end: the
// user states "balance is only written under mu" in LTL, and the
// monitor flags the account program's unlocked writes — a race check
// expressed as a temporal property, JPaX-style.
func TestAccountLockDiscipline(t *testing.T) {
	prog, err := repository.Get("account")
	if err != nil {
		t.Fatal(err)
	}
	// The account program has no mutex at all, so "writes only under
	// some lock" reduces to "no write before a lock event ever".
	f, err := Parse("H(write(balance) -> O lock(*))")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(f)
	sched.Run(sched.Config{Listeners: []core.Listener{m}}, prog.BodyWith(nil))
	if m.Ok() {
		t.Fatal("unlocked balance writes not flagged")
	}

	// The locked counter satisfies the same discipline.
	locked, err := repository.Get("lockedcounter")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Parse("H(write(count) -> O lock(mu))")
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMonitor(f2)
	sched.Run(sched.Config{Listeners: []core.Listener{m2}}, locked.BodyWith(nil))
	if !m2.Ok() {
		t.Fatalf("locked counter flagged: %v", m2.Violations()[0])
	}
}

// TestWaitWakeupProperty: every awake must have a signal or broadcast
// in its past — holds on the correct bounded buffer.
func TestWaitWakeupProperty(t *testing.T) {
	prog, err := repository.Get("boundedbuffer")
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse("H(awake(notempty) -> O (signal(notempty) | broadcast(notempty)))")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(f)
	res := sched.Run(sched.Config{Strategy: sched.Random(3), Listeners: []core.Listener{m}}, prog.BodyWith(nil))
	if res.Verdict != core.VerdictPass {
		t.Fatalf("buffer run: %v", res)
	}
	if !m.Ok() {
		t.Fatalf("wakeup property violated: %v", m.Violations()[0])
	}
}
