package ltl

import (
	"fmt"
	"strings"
	"unicode"

	"mtbench/internal/core"
)

// Parse builds a formula from the compact property syntax used by the
// racecheck CLI:
//
//	expr    := impl ( 'S' impl )*            (left associative)
//	impl    := or ( '->' impl )?             (right associative)
//	or      := and ( '|' and )*
//	and     := unary ( '&' unary )*
//	unary   := ('!' | 'P' | 'O' | 'H') unary | primary
//	primary := '(' expr ')' | 'true' | 'false' | atom
//	atom    := op '(' object ')' | op
//
// where op is an event mnemonic (lock, unlock, read, write, wait,
// signal, broadcast, fork, join, fail, ...) and object is an object
// name or '*'. Examples:
//
//	H(unlock(mu) -> O lock(mu))
//	H(write(balance) -> O lock(mu))
//	H(awake(cv) -> O (signal(cv) | broadcast(cv)))
func Parse(src string) (*Formula, error) {
	p := &parser{toks: lex(src)}
	f, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("ltl: %w", err)
	}
	if !p.eof() {
		return nil, fmt.Errorf("ltl: trailing input at %q", p.peek())
	}
	return f, nil
}

type parser struct {
	toks []string
	pos  int
}

func lex(src string) []string {
	var toks []string
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(' || c == ')' || c == '!' || c == '&' || c == '|':
			toks = append(toks, string(c))
			i++
		case c == '-':
			if i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, "->")
				i += 2
			} else {
				toks = append(toks, "-")
				i++
			}
		default:
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) ||
				src[j] == '*' || src[j] == '_' || src[j] == '.') {
				j++
			}
			if j == i {
				toks = append(toks, string(c))
				i++
			} else {
				toks = append(toks, src[i:j])
				i = j
			}
		}
	}
	return toks
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(tok string) error {
	if p.peek() != tok {
		return fmt.Errorf("expected %q, got %q", tok, p.peek())
	}
	p.pos++
	return nil
}

func (p *parser) parseExpr() (*Formula, error) {
	f, err := p.parseImpl()
	if err != nil {
		return nil, err
	}
	for p.peek() == "S" {
		p.next()
		rhs, err := p.parseImpl()
		if err != nil {
			return nil, err
		}
		f = Since(f, rhs)
	}
	return f, nil
}

func (p *parser) parseImpl() (*Formula, error) {
	f, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek() == "->" {
		p.next()
		rhs, err := p.parseImpl()
		if err != nil {
			return nil, err
		}
		return Implies(f, rhs), nil
	}
	return f, nil
}

func (p *parser) parseOr() (*Formula, error) {
	f, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "|" {
		p.next()
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		f = Or(f, rhs)
	}
	return f, nil
}

func (p *parser) parseAnd() (*Formula, error) {
	f, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek() == "&" {
		p.next()
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		f = And(f, rhs)
	}
	return f, nil
}

func (p *parser) parseUnary() (*Formula, error) {
	switch p.peek() {
	case "!":
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	case "P", "O", "H":
		op := p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		switch op {
		case "P":
			return Prev(f), nil
		case "O":
			return Once(f), nil
		default:
			return Historically(f), nil
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*Formula, error) {
	switch tok := p.peek(); {
	case tok == "(":
		p.next()
		f, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	case tok == "true":
		p.next()
		return True(), nil
	case tok == "false":
		p.next()
		return Not(True()), nil
	case tok == "":
		return nil, fmt.Errorf("unexpected end of property")
	default:
		return p.parseAtom()
	}
}

func (p *parser) parseAtom() (*Formula, error) {
	name := p.next()
	op, err := core.ParseOp(strings.ToLower(name))
	if err != nil {
		return nil, fmt.Errorf("unknown event %q", name)
	}
	obj := "*"
	if p.peek() == "(" {
		p.next()
		obj = p.next()
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	return On(op, obj), nil
}
