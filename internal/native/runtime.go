// Package native is the second runtime behind core.T: benchmark
// programs run on real goroutines under the live Go scheduler, with
// every operation instrumented exactly like the controlled runtime.
// This is the mode the paper's noise makers were built for — delays
// injected at instrumentation points perturb a genuinely preemptive
// scheduler — and the mode whose replay can only be partial (§2.2),
// which experiment E3 quantifies.
//
// Design notes:
//
//   - All blocking primitives are channel-based so a run can be torn
//     down: when the watchdog fires or an oracle fails, the abort
//     channel is closed and every blocked thread unwinds. Deadlocked
//     runs therefore report VerdictTimeout without leaking goroutines.
//   - Event emission is serialized under one mutex, giving offline
//     tools the total order the trace format requires. The cost is
//     measured, not hidden: it is part of the instrumentation overhead
//     experiments E1/E8 report.
//   - Thread ids are assigned in spawn order. Programs that spawn only
//     from already-running threads may see different ids across runs;
//     that is real nondeterminism, and it is one of the reasons native
//     replay is probabilistic.
package native

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mtbench/internal/core"
	"mtbench/internal/instrument"
	"mtbench/internal/noise"
)

// DefaultTimeout is the watchdog budget when Config.Timeout is zero.
const DefaultTimeout = 5 * time.Second

// GatePoint identifies an operation to a replay gate.
type GatePoint struct {
	Thread core.ThreadID
	Op     core.Op
	Name   string
}

// Gate serializes operations for partial replay: Before blocks until
// the recorded schedule says it is this operation's turn (returning an
// error to flag divergence instead of blocking forever), and After
// advances the schedule. The replay package implements it.
type Gate interface {
	Before(p GatePoint) error
	After(p GatePoint)
}

// Config configures a native run.
type Config struct {
	Listeners []core.Listener
	// Plan gates probes exactly as in the controlled runtime; a
	// suppressed probe skips noise injection and gating too, which is
	// how static pruning reduces noise-maker overhead (E8).
	Plan *instrument.Plan
	// Noise is invoked before every enabled operation (nil = no noise).
	Noise noise.Heuristic
	// Seed seeds the per-thread noise rngs.
	Seed int64
	// Timeout is the deadlock watchdog (0 = DefaultTimeout).
	Timeout time.Duration
	// TimeScale multiplies program Sleep durations (0 = 1.0).
	// Experiments shrink it to run sleep-heavy programs quickly.
	TimeScale float64
	// Gate, when set, brackets every enabled operation for replay.
	Gate Gate
	// Name labels the run for RunObserver listeners.
	Name string
}

type rt struct {
	cfg       Config
	listeners core.MultiListener
	plan      *instrument.Plan
	gate      Gate

	mu      sync.Mutex // serializes emission, registry, outcome, failure
	seq     int64
	objSeq  core.ObjectID
	threads []*ntc
	mutexes []*nmutex

	nextTID atomic.Int32
	live    atomic.Int32
	allDone chan struct{}

	abortOnce sync.Once
	aborted   atomic.Bool
	abortCh   chan struct{}

	failure     *core.Failure
	outcome     []string
	finishOrder []string
	timeScale   float64
}

// Run executes body as thread 0 on real goroutines and returns the
// result. Deadlocks surface as VerdictTimeout after cfg.Timeout.
func Run(cfg Config, body func(t core.T)) *core.Result {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1.0
	}
	r := &rt{
		cfg:       cfg,
		listeners: core.MultiListener(cfg.Listeners),
		plan:      cfg.Plan,
		gate:      cfg.Gate,
		allDone:   make(chan struct{}),
		abortCh:   make(chan struct{}),
		timeScale: cfg.TimeScale,
	}
	r.listeners.StartRun(core.RunInfo{Program: cfg.Name, Mode: "native", Seed: cfg.Seed})
	start := time.Now()

	t0 := r.newThread("main")
	r.live.Add(1)
	go r.runThread(t0, body)

	timedOut := false
	timer := time.NewTimer(cfg.Timeout)
	defer timer.Stop()
	select {
	case <-r.allDone:
	case <-timer.C:
		timedOut = true
		r.teardown()
		// Grace period for blocked threads to unwind through abortCh.
		grace := time.NewTimer(500 * time.Millisecond)
		select {
		case <-r.allDone:
		case <-grace.C:
		}
		grace.Stop()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	res := &core.Result{
		Verdict:     core.VerdictPass,
		Failure:     r.failure,
		Outcome:     strings.Join(r.outcome, ";"),
		FinishOrder: r.finishOrder,
		Events:      r.seq,
		Threads:     int(r.nextTID.Load()),
		Elapsed:     time.Since(start),
	}
	switch {
	case r.failure != nil:
		res.Verdict = core.VerdictFail
	case timedOut:
		res.Verdict = core.VerdictTimeout
		res.DeadlockInfo = r.describeStuckLocked()
	}
	r.listeners.EndRun(res)
	return res
}

// newThread allocates and registers a thread context.
func (r *rt) newThread(name string) *ntc {
	id := core.ThreadID(r.nextTID.Add(1) - 1)
	t := &ntc{
		id:   id,
		name: name,
		r:    r,
		rng:  rand.New(rand.NewSource(r.cfg.Seed + int64(id)*1_000_003)),
		done: make(chan struct{}),
	}
	r.mu.Lock()
	r.threads = append(r.threads, t)
	r.mu.Unlock()
	return t
}

// runThread is the goroutine wrapper for a thread body.
func (r *rt) runThread(t *ntc, body func(core.T)) {
	defer func() {
		fail, aborted := core.RecoverThread(recover(), t.id)
		if fail != nil {
			r.recordFailure(fail)
		}
		if fail == nil && !aborted {
			r.mu.Lock()
			r.finishOrder = append(r.finishOrder, t.name)
			r.mu.Unlock()
			r.emit(t, core.OpEnd, core.NoObject, "", 0, 0, core.Location{})
		}
		close(t.done)
		if r.live.Add(-1) == 0 {
			close(r.allDone)
		}
	}()
	body(t)
}

// recordFailure stores the first failure and tears the run down.
func (r *rt) recordFailure(f *core.Failure) {
	r.mu.Lock()
	if r.failure == nil {
		r.failure = f
	}
	r.mu.Unlock()
	r.teardown()
}

// teardown closes the abort channel, unwinding every blocked or
// still-running thread at its next probe or blocking point.
func (r *rt) teardown() {
	r.abortOnce.Do(func() {
		r.aborted.Store(true)
		close(r.abortCh)
	})
}

// checkAbort unwinds the calling thread if the run is being torn down.
func (r *rt) checkAbort() {
	if r.aborted.Load() {
		core.AbortNow()
	}
}

// emit delivers an event under the emission lock (total order).
func (r *rt) emit(t *ntc, op core.Op, obj core.ObjectID, name string, value int64, flags core.Flags, loc core.Location) {
	if !r.plan.Enabled(op, name) {
		return
	}
	r.mu.Lock()
	r.seq++
	ev := core.Event{
		Seq:    r.seq,
		Thread: t.id,
		Op:     op,
		Obj:    obj,
		Name:   name,
		Value:  value,
		Flags:  flags,
		Loc:    loc,
	}
	r.listeners.OnEvent(&ev)
	r.mu.Unlock()
}

// newObjID allocates an object id.
func (r *rt) newObjID() core.ObjectID {
	r.mu.Lock()
	r.objSeq++
	id := r.objSeq
	r.mu.Unlock()
	return id
}

// describeStuckLocked summarizes blocked threads and held locks for
// VerdictTimeout results. Caller holds r.mu.
func (r *rt) describeStuckLocked() string {
	var parts []string
	for _, t := range r.threads {
		select {
		case <-t.done:
			continue
		default:
		}
		if b := t.blockedOn.Load(); b != nil {
			parts = append(parts, fmt.Sprintf("t%d(%s) blocked on %s", t.id, t.name, *b))
		} else {
			parts = append(parts, fmt.Sprintf("t%d(%s) running or preempted", t.id, t.name))
		}
	}
	for _, m := range r.mutexes {
		if h := m.holder.Load(); h >= 0 {
			parts = append(parts, fmt.Sprintf("mutex %q held by t%d", m.name, h))
		}
	}
	if len(parts) == 0 {
		return "timeout with no blocked threads recorded"
	}
	return strings.Join(parts, "; ")
}
