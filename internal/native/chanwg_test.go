package native

import (
	"strings"
	"testing"
	"time"

	"mtbench/internal/core"
)

func TestNativeWaitGroup(t *testing.T) {
	res := Run(Config{Timeout: 5 * time.Second}, func(ct core.T) {
		wg := ct.NewWaitGroup("wg")
		sum := ct.NewInt("sum", 0)
		wg.Add(ct, 4)
		for i := 0; i < 4; i++ {
			ct.Go("w", func(wt core.T) {
				sum.Add(wt, 1)
				wg.Done(wt)
			})
		}
		wg.Wait(ct)
		ct.Assert(sum.Load(ct) == 4, "sum = %d", sum.Load(ct))
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
}

func TestNativeWaitGroupNegative(t *testing.T) {
	res := Run(Config{Timeout: 2 * time.Second}, func(ct core.T) {
		wg := ct.NewWaitGroup("wg")
		wg.Done(ct)
	})
	if res.Verdict != core.VerdictFail || !strings.Contains(res.Failure.Msg, "negative counter") {
		t.Fatalf("res = %v", res)
	}
}

func TestNativeChanRoundTrip(t *testing.T) {
	res := Run(Config{Timeout: 5 * time.Second}, func(ct core.T) {
		ch := ct.NewChan("ch", 0)
		done := ct.NewChan("done", 1)
		ct.Go("producer", func(wt core.T) {
			for i := 0; i < 10; i++ {
				ch.Send(wt, i)
			}
			ch.Close(wt)
		})
		ct.Go("consumer", func(wt core.T) {
			sum := 0
			for {
				v, ok := ch.Recv(wt)
				if !ok {
					break
				}
				sum += v.(int)
			}
			done.Send(wt, sum)
		})
		v, _ := done.Recv(ct)
		ct.Assert(v.(int) == 45, "sum = %v", v)
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
}

// TestNativeChanMisuse: send on closed and double close surface as
// failing oracles through the foreign-panic recovery.
func TestNativeChanMisuse(t *testing.T) {
	res := Run(Config{Timeout: 2 * time.Second}, func(ct core.T) {
		ch := ct.NewChan("ch", 1)
		ch.Close(ct)
		ch.Send(ct, 1)
	})
	if res.Verdict != core.VerdictFail {
		t.Fatalf("send on closed: %v", res)
	}

	res = Run(Config{Timeout: 2 * time.Second}, func(ct core.T) {
		ch := ct.NewChan("ch", 1)
		ch.Close(ct)
		ch.Close(ct)
	})
	if res.Verdict != core.VerdictFail {
		t.Fatalf("double close: %v", res)
	}
}

func TestNativeSelect(t *testing.T) {
	res := Run(Config{Timeout: 5 * time.Second}, func(ct core.T) {
		work := ct.NewChan("work", 0)
		quit := ct.NewChan("quit", 0)
		got := ct.NewInt("got", 0)
		h := ct.Go("consumer", func(wt core.T) {
			for {
				i, v, _ := wt.Select([]core.SelectCase{{Ch: work}, {Ch: quit}})
				if i == 1 {
					return
				}
				got.Add(wt, v.(int64))
			}
		})
		work.Send(ct, int64(5))
		work.Send(ct, int64(7))
		quit.Send(ct, nil)
		h.Join(ct)
		ct.Assert(got.Load(ct) == 12, "got = %d", got.Load(ct))
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
}
