package native

import (
	"sync"
	"sync/atomic"

	"mtbench/internal/core"
)

// nmutex is the native mutex: a 1-slot channel semaphore, so blocked
// acquirers can also unwind on teardown.
type nmutex struct {
	id     core.ObjectID
	name   string
	r      *rt
	ch     chan struct{} // full = locked
	holder atomic.Int32  // -1 when free (informational)
}

func (m *nmutex) OID() core.ObjectID { return m.id }

func (m *nmutex) Lock(t core.T) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpLock, m.name, loc)
	select {
	case m.ch <- struct{}{}:
	default:
		// Contended path: record the block, then wait abortably.
		if en {
			nt.r.emit(nt, core.OpBlock, m.id, m.name, 0, 0, loc)
		}
		clear := nt.blockPoint("mutex " + m.name)
		select {
		case m.ch <- struct{}{}:
			clear()
		case <-nt.r.abortCh:
			clear()
			core.AbortNow()
		}
	}
	m.holder.Store(int32(nt.id))
	nt.after(en, core.OpLock, m.id, m.name, 1, 0, loc)
}

func (m *nmutex) TryLock(t core.T) bool {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpLock, m.name, loc)
	select {
	case m.ch <- struct{}{}:
		m.holder.Store(int32(nt.id))
		nt.after(en, core.OpLock, m.id, m.name, 1, 0, loc)
		return true
	default:
		nt.after(en, core.OpLock, m.id, m.name, 0, 0, loc)
		return false
	}
}

func (m *nmutex) Unlock(t core.T) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpUnlock, m.name, loc)
	if m.holder.Load() != int32(nt.id) {
		nt.failAt(loc, "unlock of mutex %s not held by caller", m.name)
	}
	m.holder.Store(-1)
	select {
	case <-m.ch:
	default:
		nt.failAt(loc, "unlock of unlocked mutex %s", m.name)
	}
	nt.after(en, core.OpUnlock, m.id, m.name, 0, 0, loc)
}

// unlockBare releases without probes (Cond.Wait's internal release;
// events are emitted by the caller).
func (m *nmutex) unlockBare() {
	m.holder.Store(-1)
	<-m.ch
}

// lockBare acquires abortably without probes.
func (m *nmutex) lockBare(nt *ntc) {
	clear := nt.blockPoint("mutex " + m.name)
	select {
	case m.ch <- struct{}{}:
		clear()
	case <-nt.r.abortCh:
		clear()
		core.AbortNow()
	}
	m.holder.Store(int32(nt.id))
}

// ncond is the native condition variable with Java monitor semantics,
// built on per-waiter channels so waits are abortable and signals with
// no waiter are lost.
type ncond struct {
	id   core.ObjectID
	name string
	r    *rt
	mu   *nmutex

	wmu     sync.Mutex
	waiters []chan struct{}
}

func (c *ncond) OID() core.ObjectID { return c.id }

func (c *ncond) checkHeld(nt *ntc, op string, loc core.Location) {
	if c.mu.holder.Load() != int32(nt.id) {
		nt.failAt(loc, "%s on cond %s without holding mutex %s", op, c.name, c.mu.name)
	}
}

func (c *ncond) Wait(t core.T) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpWait, c.name, loc)
	c.checkHeld(nt, "wait", loc)
	if en {
		nt.r.emit(nt, core.OpWait, c.id, c.name, 0, 0, loc)
		if nt.r.gate != nil {
			// Advance the gate before blocking: the signaler's own gated
			// operations must be able to proceed while we wait.
			nt.r.gate.After(GatePoint{Thread: nt.id, Op: core.OpWait, Name: c.name})
		}
	}
	ch := make(chan struct{})
	c.wmu.Lock()
	c.waiters = append(c.waiters, ch)
	c.wmu.Unlock()
	c.mu.unlockBare()
	nt.r.emit(nt, core.OpUnlock, c.mu.id, c.mu.name, 0, 0, loc)

	clear := nt.blockPoint("cond " + c.name)
	select {
	case <-ch:
		clear()
	case <-nt.r.abortCh:
		clear()
		core.AbortNow()
	}
	if en {
		nt.r.emit(nt, core.OpAwake, c.id, c.name, 0, 0, loc)
	}
	c.mu.lockBare(nt)
	nt.r.emit(nt, core.OpLock, c.mu.id, c.mu.name, 1, 0, loc)
}

func (c *ncond) Signal(t core.T) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpSignal, c.name, loc)
	c.checkHeld(nt, "signal", loc)
	c.wmu.Lock()
	n := len(c.waiters)
	if n > 0 {
		ch := c.waiters[0]
		c.waiters = c.waiters[1:]
		close(ch)
	}
	c.wmu.Unlock()
	nt.after(en, core.OpSignal, c.id, c.name, int64(n), 0, loc)
}

func (c *ncond) Broadcast(t core.T) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpBroadcast, c.name, loc)
	c.checkHeld(nt, "broadcast", loc)
	c.wmu.Lock()
	n := len(c.waiters)
	for _, ch := range c.waiters {
		close(ch)
	}
	c.waiters = nil
	c.wmu.Unlock()
	nt.after(en, core.OpBroadcast, c.id, c.name, int64(n), 0, loc)
}

// nrwmutex is the native reader/writer lock: internal state under a
// short-held mutex, waiters parked on personal channels (abortable),
// with writer preference.
type nrwmutex struct {
	id   core.ObjectID
	name string
	r    *rt

	m       sync.Mutex
	readers int
	writing bool
	writerQ []chan struct{}
	readerQ []chan struct{}
}

func (w *nrwmutex) OID() core.ObjectID { return w.id }

func (w *nrwmutex) Lock(t core.T) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpLock, w.name, loc)
	w.m.Lock()
	if !w.writing && w.readers == 0 {
		w.writing = true
		w.m.Unlock()
	} else {
		ch := make(chan struct{})
		w.writerQ = append(w.writerQ, ch)
		w.m.Unlock()
		if en {
			nt.r.emit(nt, core.OpBlock, w.id, w.name, 0, 0, loc)
		}
		clear := nt.blockPoint("rwmutex " + w.name)
		select {
		case <-ch: // writing already granted by releaser
			clear()
		case <-nt.r.abortCh:
			clear()
			core.AbortNow()
		}
	}
	nt.after(en, core.OpLock, w.id, w.name, 1, 0, loc)
}

func (w *nrwmutex) Unlock(t core.T) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpUnlock, w.name, loc)
	w.m.Lock()
	if !w.writing {
		w.m.Unlock()
		nt.failAt(loc, "unlock of rwmutex %s not write-held", w.name)
	}
	w.writing = false
	w.release()
	w.m.Unlock()
	nt.after(en, core.OpUnlock, w.id, w.name, 0, 0, loc)
}

func (w *nrwmutex) RLock(t core.T) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpRLock, w.name, loc)
	w.m.Lock()
	if !w.writing && len(w.writerQ) == 0 {
		w.readers++
		w.m.Unlock()
	} else {
		ch := make(chan struct{})
		w.readerQ = append(w.readerQ, ch)
		w.m.Unlock()
		if en {
			nt.r.emit(nt, core.OpBlock, w.id, w.name, 0, 0, loc)
		}
		clear := nt.blockPoint("rwmutex " + w.name)
		select {
		case <-ch: // readers already incremented by releaser
			clear()
		case <-nt.r.abortCh:
			clear()
			core.AbortNow()
		}
	}
	nt.after(en, core.OpRLock, w.id, w.name, 1, 0, loc)
}

func (w *nrwmutex) RUnlock(t core.T) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpRUnlock, w.name, loc)
	w.m.Lock()
	if w.readers == 0 {
		w.m.Unlock()
		nt.failAt(loc, "runlock of rwmutex %s with no readers", w.name)
	}
	w.readers--
	if w.readers == 0 {
		w.release()
	}
	w.m.Unlock()
	nt.after(en, core.OpRUnlock, w.id, w.name, 0, 0, loc)
}

// release grants the lock to waiters (writer-preferring). Caller holds
// w.m and has already cleared its own hold.
func (w *nrwmutex) release() {
	if w.writing || w.readers > 0 {
		return
	}
	if len(w.writerQ) > 0 {
		ch := w.writerQ[0]
		w.writerQ = w.writerQ[1:]
		w.writing = true
		close(ch)
		return
	}
	for _, ch := range w.readerQ {
		w.readers++
		close(ch)
	}
	w.readerQ = nil
}

// nintvar is the native shared integer: individual accesses are atomic
// (JVM-style), sequences are not.
type nintvar struct {
	id     core.ObjectID
	name   string
	r      *rt
	val    atomic.Int64
	atomic bool
}

func (v *nintvar) OID() core.ObjectID { return v.id }
func (v *nintvar) IsAtomic() bool     { return v.atomic }

func (v *nintvar) flags() core.Flags {
	if v.atomic {
		return core.FlagAtomic
	}
	return 0
}

func (v *nintvar) Load(t core.T) int64 {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpRead, v.name, loc)
	val := v.val.Load()
	nt.after(en, core.OpRead, v.id, v.name, val, v.flags(), loc)
	return val
}

func (v *nintvar) Store(t core.T, val int64) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpWrite, v.name, loc)
	v.val.Store(val)
	nt.after(en, core.OpWrite, v.id, v.name, val, v.flags(), loc)
}

func (v *nintvar) Add(t core.T, delta int64) int64 {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpWrite, v.name, loc)
	val := v.val.Add(delta)
	nt.after(en, core.OpWrite, v.id, v.name, val, v.flags(), loc)
	return val
}

func (v *nintvar) CompareAndSwap(t core.T, old, new int64) bool {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpWrite, v.name, loc)
	ok := v.val.CompareAndSwap(old, new)
	if ok {
		nt.after(en, core.OpWrite, v.id, v.name, new, v.flags(), loc)
	} else {
		nt.after(en, core.OpRead, v.id, v.name, v.val.Load(), v.flags(), loc)
	}
	return ok
}

// nwaitgroup is the native sync.WaitGroup equivalent, built on a
// replaceable done channel (instead of sync.WaitGroup itself) so Wait
// is abortable on teardown.
type nwaitgroup struct {
	id    core.ObjectID
	name  string
	r     *rt
	mu    sync.Mutex
	count int
	done  chan struct{} // closed while count == 0
}

func (w *nwaitgroup) OID() core.ObjectID { return w.id }

func (w *nwaitgroup) Add(t core.T, delta int) { w.add(t, delta) }
func (w *nwaitgroup) Done(t core.T)           { w.add(t, -1) }

func (w *nwaitgroup) add(t core.T, delta int) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpWGAdd, w.name, loc)
	w.mu.Lock()
	was := w.count
	w.count += delta
	count := w.count
	if count < 0 {
		w.mu.Unlock()
		nt.failAt(loc, "negative counter on waitgroup %s", w.name)
	}
	if was == 0 && count > 0 {
		w.done = make(chan struct{})
	}
	if was > 0 && count == 0 {
		close(w.done)
	}
	w.mu.Unlock()
	nt.after(en, core.OpWGAdd, w.id, w.name, int64(count), 0, loc)
}

func (w *nwaitgroup) Wait(t core.T) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpWGWait, w.name, loc)
	w.mu.Lock()
	done := w.done
	blocked := w.count > 0
	w.mu.Unlock()
	if blocked {
		if en {
			nt.r.emit(nt, core.OpBlock, w.id, w.name, 0, 0, loc)
		}
		clear := nt.blockPoint("waitgroup " + w.name)
		select {
		case <-done:
			clear()
		case <-nt.r.abortCh:
			clear()
			core.AbortNow()
		}
	}
	nt.after(en, core.OpWGWait, w.id, w.name, 0, 0, loc)
}

// nchan is the native channel: a real Go channel of any, so send on
// closed and double close surface as the runtime's own panics (which
// the thread recovery converts into failing oracles) and blocked
// operations stay abortable through the select on abortCh.
type nchan struct {
	id   core.ObjectID
	name string
	r    *rt
	capn int
	ch   chan any
}

func (c *nchan) OID() core.ObjectID { return c.id }
func (c *nchan) Cap() int           { return c.capn }

func (c *nchan) Send(t core.T, v any) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpChanSend, c.name, loc)
	select {
	case c.ch <- v:
	default:
		if en {
			nt.r.emit(nt, core.OpBlock, c.id, c.name, 0, 0, loc)
		}
		clear := nt.blockPoint("chan-send " + c.name)
		select {
		case c.ch <- v:
			clear()
		case <-nt.r.abortCh:
			clear()
			core.AbortNow()
		}
	}
	nt.after(en, core.OpChanSend, c.id, c.name, int64(len(c.ch)), 0, loc)
}

func (c *nchan) Recv(t core.T) (any, bool) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpChanRecv, c.name, loc)
	var v any
	var ok bool
	select {
	case v, ok = <-c.ch:
	default:
		if en {
			nt.r.emit(nt, core.OpBlock, c.id, c.name, 0, 0, loc)
		}
		clear := nt.blockPoint("chan-recv " + c.name)
		select {
		case v, ok = <-c.ch:
			clear()
		case <-nt.r.abortCh:
			clear()
			core.AbortNow()
		}
	}
	val := int64(0)
	if ok {
		val = 1
	} else {
		v = nil
	}
	nt.after(en, core.OpChanRecv, c.id, c.name, val, 0, loc)
	return v, ok
}

func (c *nchan) Close(t core.T) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpChanClose, c.name, loc)
	close(c.ch) // double close: the runtime panic becomes a failing oracle
	nt.after(en, core.OpChanClose, c.id, c.name, int64(len(c.ch)), 0, loc)
}

// nrefvar is the native shared reference cell.
type nrefvar struct {
	id   core.ObjectID
	name string
	r    *rt
	mu   sync.Mutex
	val  any
}

func (v *nrefvar) OID() core.ObjectID { return v.id }

func (v *nrefvar) Load(t core.T) any {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpRead, v.name, loc)
	v.mu.Lock()
	val := v.val
	v.mu.Unlock()
	nt.after(en, core.OpRead, v.id, v.name, 0, 0, loc)
	return val
}

func (v *nrefvar) Store(t core.T, val any) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpWrite, v.name, loc)
	v.mu.Lock()
	v.val = val
	v.mu.Unlock()
	nt.after(en, core.OpWrite, v.id, v.name, 0, 0, loc)
}
