package native

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"time"

	"mtbench/internal/core"
	"mtbench/internal/noise"
)

// ntc is the native runtime's implementation of core.T: one per
// goroutine-backed thread.
type ntc struct {
	id   core.ThreadID
	name string
	r    *rt
	rng  *rand.Rand
	done chan struct{}
	// blockedOn names what the thread is currently blocked on, for the
	// watchdog's deadlock report.
	blockedOn atomic.Pointer[string]
}

var _ core.T = (*ntc)(nil)

func (t *ntc) ID() core.ThreadID { return t.id }
func (t *ntc) Name() string      { return t.name }

// progLoc resolves the benchmark program's call site (program -> ntc
// method -> here).
func progLoc() core.Location { return core.CallerLocation(2) }

// before runs the pre-operation half of a probe: abort check, noise
// injection, replay gating. It reports whether the probe is enabled so
// the post-operation half can skip emission symmetrically.
func (t *ntc) before(op core.Op, name string, loc core.Location) bool {
	t.r.checkAbort()
	if !t.r.plan.Enabled(op, name) {
		return false
	}
	if h := t.r.cfg.Noise; h != nil {
		p := noise.Point{Thread: t.id, Op: op, Name: name, Loc: loc}
		t.applyNoise(h.Decide(&p, t.rng))
	}
	if t.r.gate != nil {
		// A diverged gate stops enforcing; the run continues free-form
		// and the replay layer reports the divergence.
		_ = t.r.gate.Before(GatePoint{Thread: t.id, Op: op, Name: name})
	}
	return true
}

// after runs the post-operation half: emission and gate advancement.
func (t *ntc) after(enabled bool, op core.Op, obj core.ObjectID, name string, value int64, flags core.Flags, loc core.Location) {
	if !enabled {
		return
	}
	t.r.emit(t, op, obj, name, value, flags, loc)
	if t.r.gate != nil {
		t.r.gate.After(GatePoint{Thread: t.id, Op: op, Name: name})
	}
}

// applyNoise executes a noise decision with real delays.
func (t *ntc) applyNoise(d noise.Decision) {
	switch {
	case d.Sleep > 0:
		time.Sleep(d.Sleep)
	case d.Yield:
		runtime.Gosched()
	case d.Spin > 0:
		for i := 0; i < d.Spin; i++ {
			runtime.Gosched() // cheap scheduling pressure
		}
	case d.Switch:
		runtime.Gosched()
	}
}

// blockPoint publishes what the thread is about to block on and returns
// a func that clears it.
func (t *ntc) blockPoint(what string) func() {
	t.blockedOn.Store(&what)
	return func() { t.blockedOn.Store(nil) }
}

func (t *ntc) Go(name string, fn func(t core.T)) core.Handle {
	loc := progLoc()
	en := t.before(core.OpFork, name, loc)
	child := t.r.newThread(name)
	t.r.live.Add(1)
	t.after(en, core.OpFork, core.NoObject, name, int64(child.id), 0, loc)
	go t.r.runThread(child, fn)
	return &nhandle{child: child}
}

func (t *ntc) Yield() {
	loc := progLoc()
	en := t.before(core.OpYield, "", loc)
	runtime.Gosched()
	t.after(en, core.OpYield, core.NoObject, "", 0, 0, loc)
}

func (t *ntc) Sleep(d time.Duration) {
	loc := progLoc()
	en := t.before(core.OpSleep, "", loc)
	t.after(en, core.OpSleep, core.NoObject, "", int64(d), 0, loc)
	if d <= 0 {
		runtime.Gosched()
		return
	}
	scaled := time.Duration(float64(d) * t.r.timeScale)
	if scaled <= 0 {
		scaled = time.Nanosecond
	}
	clear := t.blockPoint("sleep")
	defer clear()
	timer := time.NewTimer(scaled)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-t.r.abortCh:
		core.AbortNow()
	}
}

func (t *ntc) Assert(cond bool, format string, args ...any) {
	if cond {
		return
	}
	t.failAt(core.CallerLocation(1), format, args...)
}

func (t *ntc) Failf(format string, args ...any) {
	t.failAt(core.CallerLocation(1), format, args...)
}

func (t *ntc) failAt(loc core.Location, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	t.r.emit(t, core.OpFail, core.NoObject, msg, 0, 0, loc)
	core.FailNow(core.Failure{Msg: msg, Thread: t.id, Loc: loc})
}

func (t *ntc) Outcome(format string, args ...any) {
	loc := progLoc()
	frag := fmt.Sprintf(format, args...)
	t.r.mu.Lock()
	t.r.outcome = append(t.r.outcome, frag)
	t.r.mu.Unlock()
	t.r.emit(t, core.OpOutcome, core.NoObject, frag, 0, 0, loc)
}

func (t *ntc) NewMutex(name string) core.Mutex {
	m := &nmutex{id: t.r.newObjID(), name: name, r: t.r, ch: make(chan struct{}, 1)}
	m.holder.Store(-1)
	t.r.mu.Lock()
	t.r.mutexes = append(t.r.mutexes, m)
	t.r.mu.Unlock()
	return m
}

func (t *ntc) NewRWMutex(name string) core.RWMutex {
	return &nrwmutex{id: t.r.newObjID(), name: name, r: t.r}
}

func (t *ntc) NewCond(name string, mu core.Mutex) core.Cond {
	m, ok := mu.(*nmutex)
	if !ok {
		panic("native: NewCond requires a mutex created by this runtime")
	}
	return &ncond{id: t.r.newObjID(), name: name, r: t.r, mu: m}
}

func (t *ntc) NewInt(name string, init int64) core.IntVar {
	v := &nintvar{id: t.r.newObjID(), name: name, r: t.r}
	v.val.Store(init)
	return v
}

func (t *ntc) NewAtomicInt(name string, init int64) core.IntVar {
	v := &nintvar{id: t.r.newObjID(), name: name, r: t.r, atomic: true}
	v.val.Store(init)
	return v
}

func (t *ntc) NewRef(name string) core.RefVar {
	return &nrefvar{id: t.r.newObjID(), name: name, r: t.r}
}

func (t *ntc) NewWaitGroup(name string) core.WaitGroup {
	w := &nwaitgroup{id: t.r.newObjID(), name: name, r: t.r, done: make(chan struct{})}
	close(w.done) // counter starts at zero: Wait must not block
	return w
}

func (t *ntc) NewChan(name string, capn int) core.Chan {
	return &nchan{id: t.r.newObjID(), name: name, r: t.r, capn: capn, ch: make(chan any, capn)}
}

// Select maps core.SelectCase arms onto a reflect.Select over the
// underlying Go channels, plus the runtime's abort channel so blocked
// selects unwind on teardown. The live Go scheduler breaks ties, so —
// unlike the controlled runtime — the choice is nondeterministic.
func (t *ntc) Select(cases []core.SelectCase) (int, any, bool) {
	loc := progLoc()
	if len(cases) == 0 {
		t.failAt(loc, "select with no cases")
	}
	name := ""
	scs := make([]reflect.SelectCase, 0, len(cases)+1)
	for _, c := range cases {
		ch, ok := c.Ch.(*nchan)
		if !ok {
			panic("native: Select case channel from a different runtime")
		}
		if name == "" {
			name = ch.name
		}
		sc := reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(ch.ch)}
		if c.Send {
			sc.Dir = reflect.SelectSend
			val := c.Val
			sc.Send = reflect.ValueOf(&val).Elem()
		}
		scs = append(scs, sc)
	}
	abortIdx := len(scs)
	scs = append(scs, reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(t.r.abortCh)})
	en := t.before(core.OpSelect, name, loc)
	clear := t.blockPoint("select " + name)
	i, v, ok := reflect.Select(scs)
	clear()
	if i == abortIdx {
		core.AbortNow()
	}
	ch := cases[i].Ch.(*nchan)
	if cases[i].Send {
		t.after(en, core.OpChanSend, ch.id, ch.name, int64(len(ch.ch)), 0, loc)
		return i, nil, true
	}
	val := int64(0)
	var rv any
	if ok {
		val = 1
		rv = v.Interface()
	}
	t.after(en, core.OpChanRecv, ch.id, ch.name, val, 0, loc)
	return i, rv, ok
}

// nhandle implements core.Handle for native threads.
type nhandle struct {
	child *ntc
}

func (h *nhandle) TID() core.ThreadID { return h.child.id }

func (h *nhandle) Join(t core.T) {
	nt := t.(*ntc)
	loc := progLoc()
	en := nt.before(core.OpJoin, h.child.name, loc)
	clear := nt.blockPoint("join " + h.child.name)
	select {
	case <-h.child.done:
	case <-nt.r.abortCh:
		clear()
		core.AbortNow()
	}
	clear()
	nt.after(en, core.OpJoin, core.NoObject, h.child.name, int64(h.child.id), 0, loc)
}
