package native

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mtbench/internal/core"
	"mtbench/internal/instrument"
	"mtbench/internal/noise"
)

func TestSequentialBody(t *testing.T) {
	res := Run(Config{Timeout: 2 * time.Second}, func(ct core.T) {
		v := ct.NewInt("x", 1)
		v.Store(ct, 41)
		ct.Assert(v.Add(ct, 1) == 42, "bad value")
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
}

func TestForkJoinParallel(t *testing.T) {
	res := Run(Config{Timeout: 5 * time.Second}, func(ct core.T) {
		sum := ct.NewInt("sum", 0)
		var hs []core.Handle
		for i := 0; i < 8; i++ {
			hs = append(hs, ct.Go("w", func(wt core.T) {
				sum.Add(wt, 1)
			}))
		}
		for _, h := range hs {
			h.Join(ct)
		}
		ct.Assert(sum.Load(ct) == 8, "sum = %d", sum.Load(ct))
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
	if res.Threads != 9 {
		t.Fatalf("threads = %d, want 9", res.Threads)
	}
}

func TestMutexExclusion(t *testing.T) {
	res := Run(Config{Timeout: 5 * time.Second, Noise: noise.NewBernoulli(0.2, noise.KindYield)}, func(ct core.T) {
		mu := ct.NewMutex("mu")
		inCS := ct.NewInt("inCS", 0)
		var hs []core.Handle
		for i := 0; i < 4; i++ {
			hs = append(hs, ct.Go("w", func(wt core.T) {
				for j := 0; j < 50; j++ {
					mu.Lock(wt)
					n := inCS.Add(wt, 1)
					wt.Assert(n == 1, "mutual exclusion violated")
					inCS.Add(wt, -1)
					mu.Unlock(wt)
				}
			}))
		}
		for _, h := range hs {
			h.Join(ct)
		}
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
}

func TestAssertFailureTearsDown(t *testing.T) {
	start := time.Now()
	res := Run(Config{Timeout: 10 * time.Second}, func(ct core.T) {
		// A worker that would run forever without teardown.
		ct.Go("spinner", func(wt core.T) {
			x := wt.NewInt("x", 0)
			for {
				x.Add(wt, 1)
			}
		})
		ct.Sleep(10 * time.Millisecond)
		ct.Failf("oracle failed")
	})
	if res.Verdict != core.VerdictFail {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("teardown did not stop the spinner promptly")
	}
}

func TestDeadlockTimesOut(t *testing.T) {
	res := Run(Config{Timeout: 300 * time.Millisecond}, func(ct core.T) {
		a := ct.NewMutex("A")
		b := ct.NewMutex("B")
		h1 := ct.Go("ab", func(wt core.T) {
			a.Lock(wt)
			wt.Sleep(50 * time.Millisecond)
			b.Lock(wt)
			b.Unlock(wt)
			a.Unlock(wt)
		})
		h2 := ct.Go("ba", func(wt core.T) {
			b.Lock(wt)
			wt.Sleep(50 * time.Millisecond)
			a.Lock(wt)
			a.Unlock(wt)
			b.Unlock(wt)
		})
		h1.Join(ct)
		h2.Join(ct)
	})
	if res.Verdict != core.VerdictTimeout {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
	if res.DeadlockInfo == "" {
		t.Fatal("timeout without deadlock info")
	}
}

func TestCondSignalSemantics(t *testing.T) {
	res := Run(Config{Timeout: 5 * time.Second}, func(ct core.T) {
		mu := ct.NewMutex("mu")
		cv := ct.NewCond("cv", mu)
		ready := ct.NewInt("ready", 0)
		h := ct.Go("waiter", func(wt core.T) {
			mu.Lock(wt)
			for ready.Load(wt) == 0 {
				cv.Wait(wt)
			}
			mu.Unlock(wt)
		})
		ct.Sleep(20 * time.Millisecond)
		mu.Lock(ct)
		ready.Store(ct, 1)
		cv.Signal(ct)
		mu.Unlock(ct)
		h.Join(ct)
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
}

func TestLostSignalTimesOut(t *testing.T) {
	res := Run(Config{Timeout: 300 * time.Millisecond}, func(ct core.T) {
		mu := ct.NewMutex("mu")
		cv := ct.NewCond("cv", mu)
		// Signal before anyone waits: lost.
		mu.Lock(ct)
		cv.Signal(ct)
		mu.Unlock(ct)
		h := ct.Go("waiter", func(wt core.T) {
			mu.Lock(wt)
			cv.Wait(wt)
			mu.Unlock(wt)
		})
		h.Join(ct)
	})
	if res.Verdict != core.VerdictTimeout {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
}

func TestRWMutexWriterPreference(t *testing.T) {
	res := Run(Config{Timeout: 5 * time.Second}, func(ct core.T) {
		rw := ct.NewRWMutex("rw")
		val := ct.NewInt("val", 0)
		var hs []core.Handle
		for i := 0; i < 3; i++ {
			hs = append(hs, ct.Go("r", func(wt core.T) {
				for j := 0; j < 20; j++ {
					rw.RLock(wt)
					_ = val.Load(wt)
					rw.RUnlock(wt)
				}
			}))
		}
		hs = append(hs, ct.Go("w", func(wt core.T) {
			for j := 0; j < 10; j++ {
				rw.Lock(wt)
				val.Add(wt, 1)
				rw.Unlock(wt)
			}
		}))
		for _, h := range hs {
			h.Join(ct)
		}
		ct.Assert(val.Load(ct) == 10, "val = %d", val.Load(ct))
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
}

// TestEventsTotalOrder checks that sequence numbers observed by a
// listener are strictly increasing — the property offline tools need.
func TestEventsTotalOrder(t *testing.T) {
	var last atomic.Int64
	var violations atomic.Int64
	res := Run(Config{
		Timeout: 5 * time.Second,
		Listeners: []core.Listener{core.ListenerFunc(func(ev *core.Event) {
			if prev := last.Swap(ev.Seq); ev.Seq != prev+1 {
				violations.Add(1)
			}
		})},
	}, func(ct core.T) {
		x := ct.NewInt("x", 0)
		var hs []core.Handle
		for i := 0; i < 4; i++ {
			hs = append(hs, ct.Go("w", func(wt core.T) {
				for j := 0; j < 25; j++ {
					x.Add(wt, 1)
				}
			}))
		}
		for _, h := range hs {
			h.Join(ct)
		}
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if violations.Load() != 0 {
		t.Fatalf("%d sequence violations", violations.Load())
	}
}

// TestNativeLostUpdateWithNoise demonstrates the paper's core claim in
// native mode: noise injection raises the probability of exposing the
// load-store race under the real scheduler.
func TestNativeLostUpdateWithNoise(t *testing.T) {
	body := func(ct core.T) {
		x := ct.NewInt("x", 0)
		h1 := ct.Go("a", func(wt core.T) {
			v := x.Load(wt)
			x.Store(wt, v+1)
		})
		h2 := ct.Go("b", func(wt core.T) {
			v := x.Load(wt)
			x.Store(wt, v+1)
		})
		h1.Join(ct)
		h2.Join(ct)
		ct.Assert(x.Load(ct) == 2, "lost update")
	}
	found := 0
	for seed := int64(0); seed < 40; seed++ {
		res := Run(Config{
			Timeout: 5 * time.Second,
			Seed:    seed,
			Noise:   noise.NewBernoulli(0.8, noise.KindSleep),
		}, body)
		if res.Verdict == core.VerdictFail {
			found++
		}
	}
	if found == 0 {
		t.Fatal("noise never exposed the lost update in native mode")
	}
}

func TestTimeScale(t *testing.T) {
	start := time.Now()
	res := Run(Config{Timeout: 5 * time.Second, TimeScale: 0.01}, func(ct core.T) {
		ct.Sleep(2 * time.Second) // scaled to 20ms
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if time.Since(start) > time.Second {
		t.Fatal("TimeScale not applied")
	}
}

func TestOutcomeAccumulates(t *testing.T) {
	res := Run(Config{Timeout: 2 * time.Second}, func(ct core.T) {
		ct.Outcome("a=%d", 1)
		ct.Outcome("b=%d", 2)
	})
	if res.Outcome != "a=1;b=2" {
		t.Fatalf("outcome = %q", res.Outcome)
	}
}

// TestNativePlanPruning checks instrumentation plans gate native
// probes: pruned variables emit no events while semantics hold.
func TestNativePlanPruning(t *testing.T) {
	plan := instrument.All().OnlyObjects("shared")
	var names []string
	var mu sync.Mutex
	res := Run(Config{
		Timeout: 5 * time.Second,
		Plan:    plan,
		Listeners: []core.Listener{core.ListenerFunc(func(ev *core.Event) {
			if ev.Op.IsAccess() {
				mu.Lock()
				names = append(names, ev.Name)
				mu.Unlock()
			}
		})},
	}, func(ct core.T) {
		sh := ct.NewInt("shared", 0)
		lo := ct.NewInt("local", 0)
		h := ct.Go("w", func(wt core.T) {
			sh.Add(wt, 1)
		})
		lo.Add(ct, 1)
		h.Join(ct)
		ct.Assert(sh.Load(ct) == 1 && lo.Load(ct) == 1, "values wrong")
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("run: %v", res)
	}
	for _, n := range names {
		if n != "shared" {
			t.Fatalf("pruned variable %q emitted an event", n)
		}
	}
	if plan.Skipped() == 0 {
		t.Fatal("no probes skipped")
	}
}

// TestNativeFinishOrder checks completion order capture.
func TestNativeFinishOrder(t *testing.T) {
	res := Run(Config{Timeout: 5 * time.Second}, func(ct core.T) {
		slow := ct.Go("slow", func(wt core.T) { wt.Sleep(50 * time.Millisecond) })
		fast := ct.Go("fast", func(wt core.T) {})
		fast.Join(ct)
		slow.Join(ct)
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("run: %v", res)
	}
	if len(res.FinishOrder) != 3 {
		t.Fatalf("finish order = %v", res.FinishOrder)
	}
	if res.FinishOrder[0] != "fast" {
		t.Fatalf("fast did not finish first: %v", res.FinishOrder)
	}
}
