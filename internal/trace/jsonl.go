package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"mtbench/internal/core"
)

// Writer serializes a trace. Both codecs implement it.
type Writer interface {
	WriteHeader(h Header) error
	WriteRecord(r Record) error
	// Flush completes the trace; the writer is unusable afterwards.
	Flush() error
}

// Reader deserializes a trace.
type Reader interface {
	Header() Header
	// Next returns the next record, or io.EOF at the end.
	Next() (Record, error)
}

// jsonlWriter writes the line-oriented JSON codec: one JSON object per
// line, header first.
type jsonlWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLWriter returns a Writer emitting the JSONL codec to w.
func NewJSONLWriter(w io.Writer) Writer {
	bw := bufio.NewWriter(w)
	return &jsonlWriter{bw: bw, enc: json.NewEncoder(bw)}
}

func (w *jsonlWriter) WriteHeader(h Header) error {
	if w.err != nil {
		return w.err
	}
	h.Version = FormatVersion
	w.err = w.enc.Encode(h)
	return w.err
}

func (w *jsonlWriter) WriteRecord(r Record) error {
	if w.err != nil {
		return w.err
	}
	w.err = w.enc.Encode(r)
	return w.err
}

func (w *jsonlWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// jsonlReader reads the JSONL codec.
type jsonlReader struct {
	sc     *bufio.Scanner
	header Header
}

// NewJSONLReader returns a Reader over the JSONL codec; it consumes the
// header eagerly.
func NewJSONLReader(r io.Reader) (Reader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty trace")
	}
	var h Header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	if h.Version != FormatVersion {
		return nil, fmt.Errorf("trace: version %d, want %d", h.Version, FormatVersion)
	}
	return &jsonlReader{sc: sc, header: h}, nil
}

func (r *jsonlReader) Header() Header { return r.header }

func (r *jsonlReader) Next() (Record, error) {
	if !r.sc.Scan() {
		if err := r.sc.Err(); err != nil {
			return Record{}, err
		}
		return Record{}, io.EOF
	}
	var rec Record
	if err := json.Unmarshal(r.sc.Bytes(), &rec); err != nil {
		return Record{}, fmt.Errorf("trace: bad record: %w", err)
	}
	return rec, nil
}

// Collector is a core.Listener that annotates and writes every event to
// a trace writer. It is the bridge between the instrumentation layer
// and the trace artifacts the benchmark ships.
type Collector struct {
	W        Writer
	Annotate Annotator // nil = DefaultWhy, no bug marks
	err      error
}

// NewCollector returns a listener that writes each event through w,
// annotated by ann (which may be nil).
func NewCollector(w Writer, ann Annotator) *Collector {
	return &Collector{W: w, Annotate: ann}
}

// OnEvent implements core.Listener.
func (c *Collector) OnEvent(ev *core.Event) {
	if c.err != nil {
		return
	}
	rec := FromEvent(ev)
	if c.Annotate != nil {
		rec.Why, rec.Bug = c.Annotate(ev)
	}
	if rec.Why == "" {
		rec.Why = DefaultWhy(ev)
	}
	c.err = c.W.WriteRecord(rec)
}

// Err returns the first write error, if any.
func (c *Collector) Err() error { return c.err }

// ReadAll drains a reader into a slice (convenience for tests and small
// traces; offline tools stream instead).
func ReadAll(r Reader) ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

// Replay feeds every record of a trace, as reconstructed events, to the
// listener — this is how offline tools reuse online detectors. Run
// boundaries matter: per-run listener state (detector shadow memory)
// is reset through the RunStart notification, exactly as in a live
// run.
func Replay(r Reader, l core.Listener) error {
	h := r.Header()
	info := core.RunInfo{Program: h.Program, Mode: h.Mode, Seed: h.Seed}
	switch x := l.(type) {
	case core.MultiListener:
		x.StartRun(info)
	case core.RunObserver:
		x.RunStart(info)
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		ev, err := rec.Event()
		if err != nil {
			return err
		}
		l.OnEvent(&ev)
	}
}
