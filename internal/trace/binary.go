package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// The binary codec addresses §2.2's off-line storage problem: "huge
// traces are produced, and techniques compete in reducing and
// compressing the information needed". It varint-encodes fields,
// delta-encodes sequence numbers, and interns strings (names, files,
// functions, annotations) so repeated program points cost a couple of
// bytes each.
//
// Layout:
//
//	magic "MTBT", version byte
//	uvarint header length, header JSON
//	records until EOF, each:
//	  uvarint seq delta   (from previous record's seq)
//	  uvarint thread
//	  byte    op
//	  byte    flag bits (1 = atomic, 2 = bug-involved)
//	  uvarint obj
//	  varint  value (zigzag)
//	  string  name
//	  string  file
//	  uvarint line
//	  string  fn
//	  string  why
//
// where string is: uvarint 0 = empty; 1 = literal (uvarint length +
// bytes, appended to the intern table); k>=2 = intern table entry k-2.

var binaryMagic = [4]byte{'M', 'T', 'B', 'T'}

type binWriter struct {
	bw      *bufio.Writer
	scratch []byte
	strs    map[string]uint64
	prevSeq int64
	err     error
}

// NewBinaryWriter returns a Writer emitting the binary codec to w.
func NewBinaryWriter(w io.Writer) Writer {
	return &binWriter{bw: bufio.NewWriter(w), strs: make(map[string]uint64)}
}

func (w *binWriter) WriteHeader(h Header) error {
	if w.err != nil {
		return w.err
	}
	h.Version = FormatVersion
	blob, err := json.Marshal(h)
	if err != nil {
		w.err = err
		return err
	}
	if _, err := w.bw.Write(binaryMagic[:]); err != nil {
		w.err = err
		return err
	}
	if err := w.bw.WriteByte(FormatVersion); err != nil {
		w.err = err
		return err
	}
	w.scratch = binary.AppendUvarint(w.scratch[:0], uint64(len(blob)))
	w.scratch = append(w.scratch, blob...)
	_, w.err = w.bw.Write(w.scratch)
	return w.err
}

func (w *binWriter) str(buf []byte, s string) []byte {
	if s == "" {
		return binary.AppendUvarint(buf, 0)
	}
	if id, ok := w.strs[s]; ok {
		return binary.AppendUvarint(buf, id+2)
	}
	w.strs[s] = uint64(len(w.strs))
	buf = binary.AppendUvarint(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func (w *binWriter) WriteRecord(r Record) error {
	if w.err != nil {
		return w.err
	}
	op, err := parseOpByte(r.Op)
	if err != nil {
		w.err = err
		return err
	}
	var flags byte
	if r.Atomic {
		flags |= 1
	}
	if r.Bug {
		flags |= 2
	}
	b := w.scratch[:0]
	b = binary.AppendUvarint(b, uint64(r.Seq-w.prevSeq))
	w.prevSeq = r.Seq
	b = binary.AppendUvarint(b, uint64(r.Thread))
	b = append(b, op, flags)
	b = binary.AppendUvarint(b, uint64(r.Obj))
	b = binary.AppendVarint(b, r.Value)
	b = w.str(b, r.Name)
	b = w.str(b, r.File)
	b = binary.AppendUvarint(b, uint64(r.Line))
	b = w.str(b, r.Fn)
	b = w.str(b, r.Why)
	w.scratch = b
	_, w.err = w.bw.Write(b)
	return w.err
}

func (w *binWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

type binReader struct {
	br      *bufio.Reader
	header  Header
	strs    []string
	prevSeq int64
}

// NewBinaryReader returns a Reader over the binary codec; it consumes
// the header eagerly.
func NewBinaryReader(r io.Reader) (Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: bad magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: not a binary trace (magic %q)", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != FormatVersion {
		return nil, fmt.Errorf("trace: version %d, want %d", ver, FormatVersion)
	}
	hlen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	blob := make([]byte, hlen)
	if _, err := io.ReadFull(br, blob); err != nil {
		return nil, err
	}
	var h Header
	if err := json.Unmarshal(blob, &h); err != nil {
		return nil, fmt.Errorf("trace: bad header: %w", err)
	}
	return &binReader{br: br, header: h}, nil
}

func (r *binReader) Header() Header { return r.header }

func (r *binReader) rstr() (string, error) {
	tag, err := binary.ReadUvarint(r.br)
	if err != nil {
		return "", err
	}
	switch tag {
	case 0:
		return "", nil
	case 1:
		n, err := binary.ReadUvarint(r.br)
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("trace: string of %d bytes", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return "", err
		}
		s := string(buf)
		r.strs = append(r.strs, s)
		return s, nil
	default:
		idx := tag - 2
		if idx >= uint64(len(r.strs)) {
			return "", fmt.Errorf("trace: intern index %d out of range", idx)
		}
		return r.strs[idx], nil
	}
}

func (r *binReader) Next() (Record, error) {
	delta, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	var rec Record
	r.prevSeq += int64(delta)
	rec.Seq = r.prevSeq
	tid, err := binary.ReadUvarint(r.br)
	if err != nil {
		return rec, corrupt(err)
	}
	rec.Thread = int32(tid)
	op, err := r.br.ReadByte()
	if err != nil {
		return rec, corrupt(err)
	}
	rec.Op, err = opByteName(op)
	if err != nil {
		return rec, err
	}
	flags, err := r.br.ReadByte()
	if err != nil {
		return rec, corrupt(err)
	}
	rec.Atomic = flags&1 != 0
	rec.Bug = flags&2 != 0
	obj, err := binary.ReadUvarint(r.br)
	if err != nil {
		return rec, corrupt(err)
	}
	rec.Obj = int64(obj)
	if rec.Value, err = binary.ReadVarint(r.br); err != nil {
		return rec, corrupt(err)
	}
	if rec.Name, err = r.rstr(); err != nil {
		return rec, corrupt(err)
	}
	if rec.File, err = r.rstr(); err != nil {
		return rec, corrupt(err)
	}
	line, err := binary.ReadUvarint(r.br)
	if err != nil {
		return rec, corrupt(err)
	}
	rec.Line = int(line)
	if rec.Fn, err = r.rstr(); err != nil {
		return rec, corrupt(err)
	}
	if rec.Why, err = r.rstr(); err != nil {
		return rec, corrupt(err)
	}
	return rec, nil
}

// corrupt upgrades a mid-record EOF to an explicit corruption error so
// truncated traces are distinguishable from complete ones.
func corrupt(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
