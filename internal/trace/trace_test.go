package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mtbench/internal/core"
	"mtbench/internal/sched"
)

func sampleRecords() []Record {
	return []Record{
		{Seq: 1, Thread: 0, Op: "fork", Name: "w", Value: 1, Why: "lifecycle"},
		{Seq: 2, Thread: 1, Op: "lock", Obj: 3, Name: "mu", Value: 1, File: "repo/x.go", Line: 10, Fn: "x.body", Why: "sync"},
		{Seq: 3, Thread: 1, Op: "read", Obj: 4, Name: "bal", Value: -7, Atomic: true, File: "repo/x.go", Line: 11, Fn: "x.body", Why: "shared-access", Bug: true},
		{Seq: 4, Thread: 1, Op: "unlock", Obj: 3, Name: "mu", File: "repo/x.go", Line: 12, Fn: "x.body", Why: "sync"},
		{Seq: 9, Thread: 0, Op: "end", Why: "lifecycle"},
	}
}

func roundtrip(t *testing.T, mk func(w io.Writer) Writer, rd func(r io.Reader) (Reader, error)) {
	t.Helper()
	var buf bytes.Buffer
	w := mk(&buf)
	h := Header{Program: "p", Mode: "controlled", Seed: 42, Strategy: "random", Bug: "race on bal"}
	if err := w.WriteHeader(h); err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := rd(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gh := r.Header()
	if gh.Program != "p" || gh.Seed != 42 || gh.Bug != "race on bal" {
		t.Fatalf("header = %+v", gh)
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestJSONLRoundtrip(t *testing.T)  { roundtrip(t, NewJSONLWriter, NewJSONLReader) }
func TestBinaryRoundtrip(t *testing.T) { roundtrip(t, NewBinaryWriter, NewBinaryReader) }

// TestBinarySmallerThanJSONL pins the E9 expectation: interning plus
// varints must beat JSON text on a realistic trace.
func TestBinarySmallerThanJSONL(t *testing.T) {
	var jb, bb bytes.Buffer
	jw, bw := NewJSONLWriter(&jb), NewBinaryWriter(&bb)
	for _, w := range []Writer{jw, bw} {
		if err := w.WriteHeader(Header{Program: "p"}); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		rec := Record{
			Seq:    int64(i + 1),
			Thread: int32(rng.Intn(4)),
			Op:     []string{"read", "write", "lock", "unlock"}[rng.Intn(4)],
			Obj:    int64(rng.Intn(8)),
			Name:   []string{"bal", "mu", "count"}[rng.Intn(3)],
			Value:  rng.Int63n(100),
			File:   "repository/prog_account.go",
			Line:   20 + rng.Intn(30),
			Fn:     "repository.accountBody",
			Why:    "shared-access",
		}
		if err := jw.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
		if err := bw.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if bb.Len()*3 > jb.Len() {
		t.Fatalf("binary %d bytes not <1/3 of jsonl %d bytes", bb.Len(), jb.Len())
	}
}

// TestRecordEventRoundtrip property-tests Record<->Event conversion
// over randomized records.
func TestRecordEventRoundtrip(t *testing.T) {
	ops := []core.Op{core.OpFork, core.OpJoin, core.OpEnd, core.OpRead, core.OpWrite,
		core.OpLock, core.OpUnlock, core.OpBlock, core.OpRLock, core.OpRUnlock,
		core.OpWait, core.OpAwake, core.OpSignal, core.OpBroadcast, core.OpYield,
		core.OpSleep, core.OpOutcome, core.OpFail}
	f := func(seq int64, tid uint8, opIdx uint8, obj int64, name string, val int64, atomic bool, line uint16) bool {
		ev := core.Event{
			Seq:    seq,
			Thread: core.ThreadID(tid),
			Op:     ops[int(opIdx)%len(ops)],
			Obj:    core.ObjectID(obj),
			Name:   name,
			Value:  val,
			Loc:    core.Location{File: "f.go", Line: int(line), Fn: "fn"},
		}
		if atomic {
			ev.Flags |= core.FlagAtomic
		}
		rec := FromEvent(&ev)
		back, err := rec.Event()
		return err == nil && back == ev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryStringInterningProperty round-trips random record batches
// through the binary codec to exercise the intern table.
func TestBinaryStringInterningProperty(t *testing.T) {
	f := func(names []string, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		w := NewBinaryWriter(&buf)
		if err := w.WriteHeader(Header{Program: "q"}); err != nil {
			return false
		}
		var want []Record
		seq := int64(0)
		for i := 0; i < 50; i++ {
			var name string
			if len(names) > 0 {
				name = names[rng.Intn(len(names))]
			}
			seq += int64(rng.Intn(5) + 1)
			rec := Record{Seq: seq, Thread: int32(rng.Intn(3)), Op: "write", Name: name, Value: rng.Int63() - (1 << 62)}
			want = append(want, rec)
			if err := w.WriteRecord(rec); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewBinaryReader(&buf)
		if err != nil {
			return false
		}
		got, err := ReadAll(r)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTruncatedBinaryTrace checks that mid-record truncation surfaces
// as ErrUnexpectedEOF, not a silent short read.
func TestTruncatedBinaryTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.WriteHeader(Header{Program: "p"}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(Record{Seq: 1, Op: "lock", Name: "some-lock-name"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewBinaryReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
}

// TestCollectorEndToEnd runs a controlled program with a trace
// collector attached and replays the trace into a counting listener,
// checking the offline stream equals the online one.
func TestCollectorEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	if err := w.WriteHeader(Header{Program: "demo", Mode: "controlled"}); err != nil {
		t.Fatal(err)
	}
	col := NewCollector(w, func(ev *core.Event) (string, bool) {
		return DefaultWhy(ev), ev.Name == "x"
	})
	var online int
	res := sched.Run(sched.Config{
		Listeners: []core.Listener{col, core.ListenerFunc(func(*core.Event) { online++ })},
	}, func(ct core.T) {
		x := ct.NewInt("x", 0)
		h := ct.Go("w", func(wt core.T) { x.Add(wt, 1) })
		h.Join(ct)
		ct.Assert(x.Load(ct) == 1, "x=%d", x.Load(ct))
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("run: %v", res)
	}
	if err := col.Err(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewJSONLReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var offline, bugMarked int
	recs, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		offline++
		if rec.Bug {
			bugMarked++
		}
		if rec.Why == "" {
			t.Fatalf("record %d missing why annotation", rec.Seq)
		}
	}
	if offline != online {
		t.Fatalf("offline %d records, online %d events", offline, online)
	}
	if bugMarked == 0 {
		t.Fatal("no bug-involved records marked")
	}
}
