// Package trace implements the benchmark's standard trace format
// (component 1 of §4): every record carries "information about the
// location in the program from which it was called, what was
// instrumented, which variable was touched, thread name, if it is a
// read or write, and if this location is involved in a bug", plus the
// "why it was recorded" annotation §2.2 asks for.
//
// Two codecs share the record model: a line-oriented JSON form (easy to
// inspect and postprocess) and a compact binary form with string
// interning (for the "huge traces" problem §2.2 attributes to off-line
// race detection). Offline tools read either and reconstruct the event
// stream.
package trace

import (
	"fmt"

	"mtbench/internal/core"
)

// FormatVersion identifies the trace record layout. Readers reject
// traces from other versions.
const FormatVersion = 1

// Header opens every trace and identifies its origin.
type Header struct {
	Version  int    `json:"version"`
	Program  string `json:"program"`
	Mode     string `json:"mode"` // "controlled" or "native"
	Seed     int64  `json:"seed"`
	Strategy string `json:"strategy,omitempty"`
	Noise    string `json:"noise,omitempty"`
	// Bug documents the program's known defect so trace consumers can
	// compute real-bug/false-alarm ratios without the program sources.
	Bug string `json:"bug,omitempty"`
}

// Record is one trace line. It is a flattened core.Event plus the
// paper-mandated annotations.
type Record struct {
	Seq    int64  `json:"seq"`
	Thread int32  `json:"t"`
	Op     string `json:"op"`
	Obj    int64  `json:"obj,omitempty"`
	Name   string `json:"name,omitempty"`
	Value  int64  `json:"val,omitempty"`
	Atomic bool   `json:"atomic,omitempty"`
	File   string `json:"file,omitempty"`
	Line   int    `json:"line,omitempty"`
	Fn     string `json:"fn,omitempty"`

	// Why records the reason the instrumentor kept this record
	// ("shared-access", "sync", "lifecycle", "sched", "oracle").
	Why string `json:"why,omitempty"`
	// Bug marks records involved in the program's documented bug.
	Bug bool `json:"bug,omitempty"`
}

// FromEvent flattens ev into a record (without annotations).
func FromEvent(ev *core.Event) Record {
	return Record{
		Seq:    ev.Seq,
		Thread: int32(ev.Thread),
		Op:     ev.Op.String(),
		Obj:    int64(ev.Obj),
		Name:   ev.Name,
		Value:  ev.Value,
		Atomic: ev.Flags.Atomic(),
		File:   ev.Loc.File,
		Line:   ev.Loc.Line,
		Fn:     ev.Loc.Fn,
	}
}

// Event reconstructs the core event a record was flattened from, so
// offline tools reuse the online listener implementations unchanged.
func (r *Record) Event() (core.Event, error) {
	op, err := core.ParseOp(r.Op)
	if err != nil {
		return core.Event{}, fmt.Errorf("trace: record %d: %w", r.Seq, err)
	}
	var flags core.Flags
	if r.Atomic {
		flags |= core.FlagAtomic
	}
	return core.Event{
		Seq:    r.Seq,
		Thread: core.ThreadID(r.Thread),
		Op:     op,
		Obj:    core.ObjectID(r.Obj),
		Name:   r.Name,
		Value:  r.Value,
		Flags:  flags,
		Loc:    core.Location{File: r.File, Line: r.Line, Fn: r.Fn},
	}, nil
}

// Annotator decides the Why/Bug annotations for an event. The
// repository builds annotators from each program's documented bug
// metadata.
type Annotator func(ev *core.Event) (why string, bug bool)

// DefaultWhy classifies an event for the Why annotation when no
// program-specific reason applies.
func DefaultWhy(ev *core.Event) string {
	switch {
	case ev.Op.IsAccess():
		return "shared-access"
	case ev.Op.IsSync():
		return "sync"
	case ev.Op == core.OpFork || ev.Op == core.OpJoin || ev.Op == core.OpEnd:
		return "lifecycle"
	case ev.Op == core.OpFail:
		return "oracle"
	default:
		return "sched"
	}
}
