package trace

import (
	"fmt"

	"mtbench/internal/core"
)

// parseOpByte converts the mnemonic to the wire byte (the core.Op
// value, which the Op documentation freezes for this purpose).
func parseOpByte(name string) (byte, error) {
	op, err := core.ParseOp(name)
	if err != nil {
		return 0, err
	}
	return byte(op), nil
}

// opByteName converts the wire byte back to the mnemonic.
func opByteName(b byte) (string, error) {
	if b == 0 || int(b) >= core.NumOps {
		return "", fmt.Errorf("trace: bad op byte %d", b)
	}
	return core.Op(b).String(), nil
}
