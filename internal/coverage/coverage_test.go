package coverage

import (
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/sched"
)

func find(reports []ModelReport, model string) ModelReport {
	for _, r := range reports {
		if r.Model == model {
			return r
		}
	}
	return ModelReport{}
}

// TestVarContentionModel checks the paper's example model directly:
// a variable touched by two threads is covered; one touched by a
// single thread is not.
func TestVarContentionModel(t *testing.T) {
	tr := NewTracker()
	sched.Run(sched.Config{Listeners: []core.Listener{tr}}, func(ct core.T) {
		shared := ct.NewInt("shared", 0)
		local := ct.NewInt("local", 0)
		local.Add(ct, 1)
		h := ct.Go("w", func(wt core.T) { shared.Add(wt, 1) })
		h.Join(ct)
		shared.Add(ct, 1)
	})
	vars := tr.ContendedVars()
	if len(vars) != 1 || vars[0] != "shared" {
		t.Fatalf("contended vars = %v, want [shared]", vars)
	}
}

// TestSyncContentionNeedsBlocking checks that merely using a lock does
// not cover it; an acquisition must actually block.
func TestSyncContentionNeedsBlocking(t *testing.T) {
	tr := NewTracker()
	// Uncontended: single thread locks and unlocks.
	sched.Run(sched.Config{Listeners: []core.Listener{tr}}, func(ct core.T) {
		mu := ct.NewMutex("mu")
		mu.Lock(ct)
		mu.Unlock(ct)
	})
	if r := find(tr.Report(nil), ModelSyncBlocked); r.Covered != 0 || r.Total != 1 {
		t.Fatalf("uncontended lock: covered=%d total=%d, want 0/1", r.Covered, r.Total)
	}

	// Contended: RoundRobin interleaves two threads through the lock.
	sched.Run(sched.Config{Strategy: sched.RoundRobin(), Listeners: []core.Listener{tr}}, func(ct core.T) {
		mu := ct.NewMutex("mu")
		h := ct.Go("w", func(wt core.T) {
			for i := 0; i < 5; i++ {
				mu.Lock(wt)
				wt.Yield()
				mu.Unlock(wt)
			}
		})
		for i := 0; i < 5; i++ {
			mu.Lock(ct)
			ct.Yield()
			mu.Unlock(ct)
		}
		h.Join(ct)
	})
	if r := find(tr.Report(nil), ModelSyncBlocked); r.Covered != 1 {
		t.Fatalf("contended lock not covered: %+v", r)
	}
}

// TestAccessPairNeedsThreadSwitch checks access pairs only count
// across threads.
func TestAccessPairNeedsThreadSwitch(t *testing.T) {
	tr := NewTracker()
	sched.Run(sched.Config{Listeners: []core.Listener{tr}}, func(ct core.T) {
		x := ct.NewInt("x", 0)
		x.Add(ct, 1)
		x.Add(ct, 1) // same thread: no pair
	})
	if r := find(tr.Report(nil), ModelAccessPair); r.Covered != 0 {
		t.Fatalf("same-thread pair counted: %+v", r)
	}
	sched.Run(sched.Config{Strategy: sched.RoundRobin(), Listeners: []core.Listener{tr}}, func(ct core.T) {
		x := ct.NewInt("x", 0)
		h := ct.Go("w", func(wt core.T) { x.Add(wt, 1) })
		x.Add(ct, 1)
		h.Join(ct)
	})
	if r := find(tr.Report(nil), ModelAccessPair); r.Covered == 0 {
		t.Fatal("cross-thread pair not counted")
	}
}

// TestUniverseFeasibility checks the static-analysis bound: coverage
// percent is computed against feasible tasks only.
func TestUniverseFeasibility(t *testing.T) {
	tr := NewTracker()
	sched.Run(sched.Config{Strategy: sched.RoundRobin(), Listeners: []core.Listener{tr}}, func(ct core.T) {
		a := ct.NewInt("a", 0)
		b := ct.NewInt("b", 0) // shared per static analysis, never contended here
		_ = b
		h := ct.Go("w", func(wt core.T) { a.Add(wt, 1) })
		a.Add(ct, 1)
		h.Join(ct)
	})
	u := &Universe{SharedVars: []string{"a", "b"}, Locks: nil}
	r := find(tr.Report(u), ModelVarContention)
	if r.Total != 2 || r.Covered != 1 {
		t.Fatalf("universe report = %+v, want 1/2", r)
	}
	if r.Percent != 50 {
		t.Fatalf("percent = %v, want 50", r.Percent)
	}
}

// TestCumulativeGrowth checks coverage accumulates across runs and the
// scalar growth counter is monotone.
func TestCumulativeGrowth(t *testing.T) {
	tr := NewTracker()
	prev := 0
	for seed := int64(0); seed < 10; seed++ {
		sched.Run(sched.Config{Strategy: sched.Random(seed), Listeners: []core.Listener{tr}}, func(ct core.T) {
			x := ct.NewInt("x", 0)
			y := ct.NewInt("y", 0)
			h := ct.Go("w", func(wt core.T) {
				x.Add(wt, 1)
				y.Add(wt, 1)
			})
			x.Add(ct, 1)
			y.Add(ct, 1)
			h.Join(ct)
		})
		cur := tr.CoveredCount()
		if cur < prev {
			t.Fatalf("coverage regressed: %d -> %d", prev, cur)
		}
		prev = cur
	}
	if prev == 0 {
		t.Fatal("no coverage accumulated")
	}
}

// TestAllocateBudget checks the allocator's three properties: never-run
// tests get tried, growing tests get more than saturated ones, and the
// full budget is spent.
func TestAllocateBudget(t *testing.T) {
	histories := map[string]History{
		"growing":   {2, 6, 10, 14}, // +4 per run
		"saturated": {9, 10, 10, 10},
		"fresh":     {},
	}
	alloc := Allocate(histories, 20)
	total := 0
	for _, n := range alloc {
		total += n
	}
	if total != 20 {
		t.Fatalf("allocated %d runs, want 20", total)
	}
	if alloc["fresh"] == 0 {
		t.Fatal("never-run test got no budget")
	}
	if alloc["growing"] <= alloc["saturated"] {
		t.Fatalf("growing (%d) should outrank saturated (%d)", alloc["growing"], alloc["saturated"])
	}
}

// TestAllocateDeterministic pins determinism (ties by name).
func TestAllocateDeterministic(t *testing.T) {
	h := map[string]History{"a": {1, 2}, "b": {1, 2}, "c": {1, 2}}
	x := Allocate(h, 7)
	y := Allocate(h, 7)
	for k := range h {
		if x[k] != y[k] {
			t.Fatalf("allocation differs for %s: %d vs %d", k, x[k], y[k])
		}
	}
}

// TestShardsMergeAtRead pins the sharded-consumer contract: events
// delivered to per-worker shards are invisible to each other on the
// hot path but merge exactly at read time — including a variable that
// is contended only ACROSS shards (one thread per shard), which must
// still count as contended, and pairs/locks unioning.
func TestShardsMergeAtRead(t *testing.T) {
	tr := NewTracker()
	a, b := tr.NewShard(), tr.NewShard()

	ev := func(sh *Shard, thread core.ThreadID, op core.Op, name string, val int64) {
		sh.OnEvent(&core.Event{Thread: thread, Op: op, Name: name, Value: val,
			Loc: core.Location{File: "f.go", Line: int(thread) + 1}})
	}
	// "x" is touched by thread 0 only in shard a and thread 1 only in
	// shard b: neither shard alone sees contention.
	ev(a, 0, core.OpWrite, "x", 1)
	ev(b, 1, core.OpWrite, "x", 2)
	// Lock coverage: seen in a, blocked in b.
	ev(a, 0, core.OpLock, "m", 1)
	ev(b, 1, core.OpBlock, "m", 0)

	vars := tr.ContendedVars()
	if len(vars) != 1 || vars[0] != "x" {
		t.Fatalf("cross-shard contention lost: contended vars = %v, want [x]", vars)
	}
	if got := find(tr.Report(nil), ModelSyncBlocked); got.Covered != 1 || got.Total != 1 {
		t.Fatalf("sync contention = %d/%d, want 1/1", got.Covered, got.Total)
	}
	// Same-thread accesses in both shards must NOT merge to contended.
	ev(a, 2, core.OpWrite, "y", 1)
	ev(b, 2, core.OpWrite, "y", 2)
	if vars := tr.ContendedVars(); len(vars) != 1 {
		t.Fatalf("same-thread shard observations merged to contended: %v", vars)
	}
	// Reset clears shards too.
	tr.Reset()
	if n := tr.CoveredCount(); n != 0 {
		t.Fatalf("covered after Reset = %d, want 0", n)
	}
}

// TestMergeEqualsSharedTracker pins the batch pattern the fuzzer uses:
// per-run trackers merged into a cumulative one must agree with one
// tracker that saw every run directly — on contention, lock and
// within-run pair coverage (cross-run pair chains are per-domain by
// documented design, so the runs below touch disjoint pair sets).
func TestMergeEqualsSharedTracker(t *testing.T) {
	shared := NewTracker()
	merged := NewTracker()
	body := func(ct core.T) {
		x := ct.NewInt("mx", 0)
		h := ct.Go("w", func(wt core.T) { x.Add(wt, 1) })
		h.Join(ct)
		x.Add(ct, 1)
	}
	for seed := int64(0); seed < 3; seed++ {
		perRun := NewTracker()
		sched.Run(sched.Config{Strategy: sched.Random(seed),
			Listeners: []core.Listener{shared, perRun}}, body)
		merged.Merge(perRun)
	}
	if s, m := shared.Tasks(), merged.Tasks(); len(m) == 0 || len(s) < len(m) {
		t.Fatalf("merged tasks %v inconsistent with shared %v", m, s)
	}
	if s, m := shared.ContendedVars(), merged.ContendedVars(); len(s) != len(m) {
		t.Fatalf("merged contended vars %v != shared %v", m, s)
	}
}
