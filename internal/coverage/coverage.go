// Package coverage implements the concurrency coverage models of §2.2.
// Statement coverage "is of very little utility in the multi-threading
// domain"; the equivalent processes the paper proposes — and this
// package measures — are contention-oriented:
//
//   - location coverage: which instrumented points executed at all
//     (the sequential baseline, kept for comparison);
//   - variable-contention coverage: "for all variables, a variable is
//     covered if it has been touched by two threads" (the paper's own
//     example model);
//   - synchronization-contention coverage: a lock is covered when some
//     acquisition actually blocked (ConTest's synchronization
//     coverage);
//   - access-pair coverage: consecutive accesses to one variable by
//     two different threads, keyed by the two program points (a
//     du-path-style interleaving model after Yang/Pollock).
//
// The paper notes every concurrency model suffers infeasible tasks and
// prescribes static analysis to bound the universe; Universe carries
// that bound (internal/staticinfo produces it), and reports show both
// raw and feasibility-adjusted numbers.
package coverage

import (
	"fmt"
	"sort"
	"sync"

	"mtbench/internal/core"
)

// Model names used in reports.
const (
	ModelLocation      = "location"
	ModelVarContention = "var-contention"
	ModelSyncBlocked   = "sync-contention"
	ModelAccessPair    = "access-pair"
)

// Universe bounds the feasible task set per model, typically from
// static analysis: only variables that can be shared can ever be
// contended.
type Universe struct {
	// SharedVars are variables static analysis says more than one
	// thread can touch (the feasible var-contention tasks).
	SharedVars []string
	// Locks are the lock objects that exist (feasible sync-contention
	// tasks).
	Locks []string
}

// Tracker accumulates coverage across any number of runs: attach it as
// a listener to every run of a test campaign and read reports between
// runs. It is safe for concurrent use.
type Tracker struct {
	mu sync.Mutex

	locSeen   map[string]int64
	varAccess map[string]map[core.ThreadID]bool
	varHit    map[string]bool // contended (>=2 threads)
	lockSeen  map[string]bool
	lockHit   map[string]bool // blocked acquisition observed
	pairSeen  map[string]bool
	last      map[string]lastAccess // var -> previous access
}

type lastAccess struct {
	thread core.ThreadID
	locKey string
}

// NewTracker returns an empty coverage tracker.
func NewTracker() *Tracker {
	t := &Tracker{}
	t.Reset()
	return t
}

// Reset clears all accumulated coverage.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.locSeen = map[string]int64{}
	t.varAccess = map[string]map[core.ThreadID]bool{}
	t.varHit = map[string]bool{}
	t.lockSeen = map[string]bool{}
	t.lockHit = map[string]bool{}
	t.pairSeen = map[string]bool{}
	t.last = map[string]lastAccess{}
}

// OnEvent implements core.Listener.
func (t *Tracker) OnEvent(ev *core.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()

	if ev.Loc.File != "" {
		t.locSeen[ev.Loc.Key()]++
	}

	switch {
	case ev.Op.IsAccess():
		threads := t.varAccess[ev.Name]
		if threads == nil {
			threads = map[core.ThreadID]bool{}
			t.varAccess[ev.Name] = threads
		}
		threads[ev.Thread] = true
		if len(threads) >= 2 {
			t.varHit[ev.Name] = true
		}
		if prev, ok := t.last[ev.Name]; ok && prev.thread != ev.Thread {
			key := ev.Name + "|" + prev.locKey + "->" + ev.Loc.Key()
			t.pairSeen[key] = true
		}
		t.last[ev.Name] = lastAccess{thread: ev.Thread, locKey: ev.Loc.Key()}

	case ev.Op == core.OpLock && ev.Value == 1, ev.Op == core.OpRLock:
		t.lockSeen[ev.Name] = true
	case ev.Op == core.OpBlock:
		t.lockSeen[ev.Name] = true
		t.lockHit[ev.Name] = true
	}
}

// ModelReport is the coverage of one model, optionally bounded by a
// universe.
type ModelReport struct {
	Model   string
	Covered int
	// Total is the task universe: feasible tasks when a Universe was
	// supplied, otherwise the tasks discovered dynamically.
	Total   int
	Percent float64
}

func report(model string, covered, total int) ModelReport {
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(covered) / float64(total)
	}
	return ModelReport{Model: model, Covered: covered, Total: total, Percent: pct}
}

// Report summarizes all models. A nil universe reports against the
// dynamically discovered task sets.
func (t *Tracker) Report(u *Universe) []ModelReport {
	t.mu.Lock()
	defer t.mu.Unlock()

	var out []ModelReport
	out = append(out, report(ModelLocation, len(t.locSeen), len(t.locSeen)))

	if u != nil {
		covered := 0
		for _, v := range u.SharedVars {
			if t.varHit[v] {
				covered++
			}
		}
		out = append(out, report(ModelVarContention, covered, len(u.SharedVars)))
	} else {
		out = append(out, report(ModelVarContention, len(t.varHit), len(t.varAccess)))
	}

	if u != nil {
		covered := 0
		for _, l := range u.Locks {
			if t.lockHit[l] {
				covered++
			}
		}
		out = append(out, report(ModelSyncBlocked, covered, len(u.Locks)))
	} else {
		out = append(out, report(ModelSyncBlocked, len(t.lockHit), len(t.lockSeen)))
	}

	out = append(out, report(ModelAccessPair, len(t.pairSeen), len(t.pairSeen)))
	return out
}

// CoveredCount returns the total covered tasks over the contention
// models (the scalar used for growth curves; location coverage is
// excluded because it saturates immediately).
func (t *Tracker) CoveredCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.varHit) + len(t.lockHit) + len(t.pairSeen)
}

// Tasks returns the covered contention-model tasks as stable,
// model-prefixed keys ("var:", "lock:", "pair:"), sorted. This is the
// coverage signature consumers compare across runs — the schedule
// fuzzer keys its corpus on the new tasks a candidate contributes.
// Location coverage is excluded for the same reason CoveredCount
// excludes it: it saturates on the first run.
func (t *Tracker) Tasks() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.varHit)+len(t.lockHit)+len(t.pairSeen))
	for v := range t.varHit {
		out = append(out, "var:"+v)
	}
	for l := range t.lockHit {
		out = append(out, "lock:"+l)
	}
	for p := range t.pairSeen {
		out = append(out, "pair:"+p)
	}
	sort.Strings(out)
	return out
}

// ContendedVars returns the sorted variable-contention tasks covered so
// far.
func (t *Tracker) ContendedVars() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.varHit))
	for v := range t.varHit {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// String renders the (universe-less) report compactly.
func (t *Tracker) String() string {
	var s string
	for i, r := range t.Report(nil) {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d/%d", r.Model, r.Covered, r.Total)
	}
	return s
}
