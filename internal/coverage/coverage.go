// Package coverage implements the concurrency coverage models of §2.2.
// Statement coverage "is of very little utility in the multi-threading
// domain"; the equivalent processes the paper proposes — and this
// package measures — are contention-oriented:
//
//   - location coverage: which instrumented points executed at all
//     (the sequential baseline, kept for comparison);
//   - variable-contention coverage: "for all variables, a variable is
//     covered if it has been touched by two threads" (the paper's own
//     example model);
//   - synchronization-contention coverage: a lock is covered when some
//     acquisition actually blocked (ConTest's synchronization
//     coverage);
//   - access-pair coverage: consecutive accesses to one variable by
//     two different threads, keyed by the two program points (a
//     du-path-style interleaving model after Yang/Pollock).
//
// The paper notes every concurrency model suffers infeasible tasks and
// prescribes static analysis to bound the universe; Universe carries
// that bound (internal/staticinfo produces it), and reports show both
// raw and feasibility-adjusted numbers.
//
// The tracker sits on the hottest listener path in the framework (the
// schedule fuzzer attaches two of them to every run), so its per-event
// work is integer-keyed: variables and locks are tracked by interned
// name handles (core.InternName), program points by interned location
// handles, and an access pair is a packed uint64 of its two location
// handles — the fmt.Sprintf string keys of the original implementation
// resolve back to strings only at report time. For parallel consumers,
// NewShard gives each worker a privately-locked shard merged at read
// time, so the tracker's mutex leaves the per-event path entirely.
package coverage

import (
	"fmt"
	"sort"
	"sync"

	"mtbench/internal/core"
)

// Model names used in reports.
const (
	ModelLocation      = "location"
	ModelVarContention = "var-contention"
	ModelSyncBlocked   = "sync-contention"
	ModelAccessPair    = "access-pair"
)

// Universe bounds the feasible task set per model, typically from
// static analysis: only variables that can be shared can ever be
// contended.
type Universe struct {
	// SharedVars are variables static analysis says more than one
	// thread can touch (the feasible var-contention tasks).
	SharedVars []string
	// Locks are the lock objects that exist (feasible sync-contention
	// tasks).
	Locks []string
}

// varState is everything the contention models track per variable:
// first-toucher/contended for var-contention, and the previous access
// (thread + program point) for access-pair chaining.
type varState struct {
	seen       bool
	multi      bool // touched by >= 2 distinct threads
	hasLast    bool
	first      core.ThreadID
	lastThread core.ThreadID
	lastLoc    uint32
}

// pairKey identifies an access-pair task: the variable plus the two
// program points packed into one integer.
type pairKey struct {
	name uint32
	locs uint64 // prev location handle <<32 | current location handle
}

// lock coverage bits.
const (
	lockSeen uint8 = 1 << iota
	lockHit
)

// trackerData is one accumulation domain (the tracker's own, or one
// shard's).
type trackerData struct {
	locSeen  map[uint32]int64
	vars     map[uint32]varState
	lockBits map[uint32]uint8
	pairs    map[pairKey]struct{}
}

func newTrackerData() trackerData {
	return trackerData{
		locSeen:  map[uint32]int64{},
		vars:     map[uint32]varState{},
		lockBits: map[uint32]uint8{},
		pairs:    map[pairKey]struct{}{},
	}
}

// clear empties the maps in place, keeping their buckets — a reused
// per-run tracker reaches a steady state where Reset allocates
// nothing.
func (d *trackerData) clear() {
	clear(d.locSeen)
	clear(d.vars)
	clear(d.lockBits)
	clear(d.pairs)
}

// update folds one event into d.
func (d *trackerData) update(ev *core.Event) {
	locID := ev.LocID
	if locID == 0 && ev.Loc.File != "" {
		locID = core.InternLocKey(ev.Loc.File, ev.Loc.Line)
	}
	if locID != 0 {
		d.locSeen[locID]++
	}

	switch {
	case ev.Op.IsAccess():
		nameID := ev.NameID
		if nameID == 0 {
			nameID = core.InternName(ev.Name)
		}
		vs := d.vars[nameID]
		if !vs.seen {
			vs.seen = true
			vs.first = ev.Thread
		} else if !vs.multi && ev.Thread != vs.first {
			vs.multi = true
		}
		if vs.hasLast && vs.lastThread != ev.Thread {
			d.pairs[pairKey{name: nameID, locs: uint64(vs.lastLoc)<<32 | uint64(locID)}] = struct{}{}
		}
		vs.hasLast = true
		vs.lastThread = ev.Thread
		vs.lastLoc = locID
		d.vars[nameID] = vs

	case ev.Op == core.OpLock && ev.Value == 1, ev.Op == core.OpRLock,
		ev.Op == core.OpChanSend, ev.Op == core.OpChanRecv, ev.Op == core.OpChanClose,
		ev.Op == core.OpWGAdd, ev.Op == core.OpWGWait:
		// Channel and waitgroup traffic counts as synchronization-object
		// coverage exactly like lock acquisitions; contention (the
		// blocked flavor) arrives through the same OpBlock the runtimes
		// emit before parking on any of them.
		nameID := ev.NameID
		if nameID == 0 {
			nameID = core.InternName(ev.Name)
		}
		d.lockBits[nameID] |= lockSeen
	case ev.Op == core.OpBlock:
		nameID := ev.NameID
		if nameID == 0 {
			nameID = core.InternName(ev.Name)
		}
		d.lockBits[nameID] |= lockSeen | lockHit
	}
}

// mergeInto folds d's accumulated coverage into dst (without the
// access-pair chaining state, which stays stream-local).
func (d *trackerData) mergeInto(dst *trackerData) {
	for loc, n := range d.locSeen {
		dst.locSeen[loc] += n
	}
	for name, vs := range d.vars {
		m := dst.vars[name]
		switch {
		case !m.seen:
			m.seen = true
			m.first = vs.first
			m.multi = vs.multi
		case vs.multi || vs.first != m.first:
			m.multi = true
		}
		dst.vars[name] = m
	}
	for name, bits := range d.lockBits {
		dst.lockBits[name] |= bits
	}
	for pk := range d.pairs {
		dst.pairs[pk] = struct{}{}
	}
}

// Tracker accumulates coverage across any number of runs: attach it as
// a listener to every run of a test campaign and read reports between
// runs. It is safe for concurrent use; heavily parallel consumers
// should give each worker its own NewShard listener instead of sharing
// the tracker itself, which keeps the tracker's mutex off the
// per-event path.
type Tracker struct {
	mu     sync.Mutex
	d      trackerData
	shards []*Shard
	// agg is the reusable merge target for reads on a sharded tracker
	// (guarded by mu, cleared per read).
	agg trackerData
}

// Shard is a privately-locked accumulation domain feeding one Tracker;
// see Tracker.NewShard.
type Shard struct {
	mu sync.Mutex
	d  trackerData
}

// NewTracker returns an empty coverage tracker.
func NewTracker() *Tracker {
	return &Tracker{d: newTrackerData()}
}

// Reset clears all accumulated coverage, shards included. The maps are
// emptied in place, so a tracker reused run over run stops allocating
// once its maps reach steady-state size.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.d.clear()
	for _, sh := range t.shards {
		sh.mu.Lock()
		sh.d.clear()
		sh.mu.Unlock()
	}
}

// OnEvent implements core.Listener.
func (t *Tracker) OnEvent(ev *core.Event) {
	t.mu.Lock()
	t.d.update(ev)
	t.mu.Unlock()
}

// NewShard returns a listener accumulating into a private domain of
// this tracker. Events delivered to the shard contend only on the
// shard's own (uncontended, per-worker) lock; every read API merges
// the shards in. Access-pair chaining is per shard — each worker's
// event stream is a separate chain, which is exactly right when each
// worker observes its own runs.
func (t *Tracker) NewShard() *Shard {
	sh := &Shard{d: newTrackerData()}
	t.mu.Lock()
	t.shards = append(t.shards, sh)
	t.mu.Unlock()
	return sh
}

// OnEvent implements core.Listener.
func (sh *Shard) OnEvent(ev *core.Event) {
	sh.mu.Lock()
	sh.d.update(ev)
	sh.mu.Unlock()
}

// Merge folds src's accumulated coverage into t. It is the batch
// alternative to sharing one tracker (or shard) across runs: a worker
// measures each run into a private tracker and merges it in once per
// run, so the cumulative tracker's mutex is taken per run instead of
// per event. Contention merging is exact — a variable touched by one
// thread in one merged tracker and a different thread in another
// counts as contended, just as if one tracker had seen both accesses.
// Access-pair chains are not stitched across the merge boundary.
func (t *Tracker) Merge(src *Tracker) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if src == t {
		return
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	d := &src.d
	if len(src.shards) > 0 {
		d = srcMerged(src)
	}
	d.mergeInto(&t.d)
}

// srcMerged is merged() for a tracker whose mutex the caller already
// holds (split out so Merge can reuse it).
func srcMerged(t *Tracker) *trackerData {
	if t.agg.vars == nil {
		t.agg = newTrackerData()
	}
	t.agg.clear()
	t.d.mergeInto(&t.agg)
	for _, sh := range t.shards {
		sh.mu.Lock()
		sh.d.mergeInto(&t.agg)
		sh.mu.Unlock()
	}
	return &t.agg
}

// merged returns the read view: t's own domain when it has no shards,
// otherwise a fresh merge of the domain and every shard. The caller
// must hold t.mu.
func (t *Tracker) merged() *trackerData {
	if len(t.shards) == 0 {
		return &t.d
	}
	return srcMerged(t)
}

// ModelReport is the coverage of one model, optionally bounded by a
// universe.
type ModelReport struct {
	Model   string
	Covered int
	// Total is the task universe: feasible tasks when a Universe was
	// supplied, otherwise the tasks discovered dynamically.
	Total   int
	Percent float64
}

func report(model string, covered, total int) ModelReport {
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(covered) / float64(total)
	}
	return ModelReport{Model: model, Covered: covered, Total: total, Percent: pct}
}

func (d *trackerData) varsHit() int {
	n := 0
	for _, vs := range d.vars {
		if vs.multi {
			n++
		}
	}
	return n
}

func (d *trackerData) locksHit() int {
	n := 0
	for _, bits := range d.lockBits {
		if bits&lockHit != 0 {
			n++
		}
	}
	return n
}

// varHitByName reports whether the named variable is contended, by
// interner lookup (a never-interned name was never touched).
func (d *trackerData) varHitByName(name string) bool {
	id, ok := core.LookupName(name)
	if !ok {
		return false
	}
	return d.vars[id].multi
}

func (d *trackerData) lockHitByName(name string) bool {
	id, ok := core.LookupName(name)
	if !ok {
		return false
	}
	return d.lockBits[id]&lockHit != 0
}

// Report summarizes all models. A nil universe reports against the
// dynamically discovered task sets.
func (t *Tracker) Report(u *Universe) []ModelReport {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.merged()

	var out []ModelReport
	out = append(out, report(ModelLocation, len(d.locSeen), len(d.locSeen)))

	if u != nil {
		covered := 0
		for _, v := range u.SharedVars {
			if d.varHitByName(v) {
				covered++
			}
		}
		out = append(out, report(ModelVarContention, covered, len(u.SharedVars)))
	} else {
		out = append(out, report(ModelVarContention, d.varsHit(), len(d.vars)))
	}

	if u != nil {
		covered := 0
		for _, l := range u.Locks {
			if d.lockHitByName(l) {
				covered++
			}
		}
		out = append(out, report(ModelSyncBlocked, covered, len(u.Locks)))
	} else {
		lseen := 0
		for _, bits := range d.lockBits {
			if bits&lockSeen != 0 {
				lseen++
			}
		}
		out = append(out, report(ModelSyncBlocked, d.locksHit(), lseen))
	}

	out = append(out, report(ModelAccessPair, len(d.pairs), len(d.pairs)))
	return out
}

// CoveredCount returns the total covered tasks over the contention
// models (the scalar used for growth curves; location coverage is
// excluded because it saturates immediately).
func (t *Tracker) CoveredCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.merged()
	return d.varsHit() + d.locksHit() + len(d.pairs)
}

// TaskKind distinguishes TaskKey task classes.
type TaskKind uint8

// Task classes, in the order Tasks sorts their string forms.
const (
	TaskLock TaskKind = iota
	TaskPair
	TaskVar
)

// TaskKey is the integer identity of one covered contention task: the
// allocation-free counterpart of the strings Tasks returns. Keys are
// stable across runs, workers and trackers (they are built from the
// global interner), so consumers can use them directly as set and map
// keys; resolve to the human-readable form with String when reporting.
type TaskKey struct {
	Kind TaskKind
	Name uint32 // interned variable/lock name
	Pair uint64 // packed location pair (TaskPair only)
}

// String renders the task in the exact form Tracker.Tasks uses
// ("var:x", "lock:m", "pair:x|f.go:1->f.go:2").
func (k TaskKey) String() string {
	switch k.Kind {
	case TaskVar:
		return "var:" + core.InternedName(k.Name)
	case TaskLock:
		return "lock:" + core.InternedName(k.Name)
	default:
		return "pair:" + core.InternedName(k.Name) + "|" +
			core.InternedLocKey(uint32(k.Pair>>32)) + "->" + core.InternedLocKey(uint32(k.Pair))
	}
}

// AppendTaskKeys appends the covered contention-model tasks to dst (in
// unspecified order) and returns it. This is the hot-path form of
// Tasks: the schedule fuzzer calls it per run, and it allocates
// nothing beyond dst growth.
func (t *Tracker) AppendTaskKeys(dst []TaskKey) []TaskKey {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.merged()
	for name, vs := range d.vars {
		if vs.multi {
			dst = append(dst, TaskKey{Kind: TaskVar, Name: name})
		}
	}
	for name, bits := range d.lockBits {
		if bits&lockHit != 0 {
			dst = append(dst, TaskKey{Kind: TaskLock, Name: name})
		}
	}
	for pk := range d.pairs {
		dst = append(dst, TaskKey{Kind: TaskPair, Name: pk.name, Pair: pk.locs})
	}
	return dst
}

// Tasks returns the covered contention-model tasks as stable,
// model-prefixed keys ("var:", "lock:", "pair:"), sorted. This is the
// coverage signature consumers compare across runs. Location coverage
// is excluded for the same reason CoveredCount excludes it: it
// saturates on the first run.
func (t *Tracker) Tasks() []string {
	keys := t.AppendTaskKeys(nil)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k.String())
	}
	sort.Strings(out)
	return out
}

// AppendContendedVarIDs appends the interned name handles of the
// contended variables to dst (in unspecified order) and returns it:
// the hot-path form of ContendedVars for consumers that refresh a set
// every run.
func (t *Tracker) AppendContendedVarIDs(dst []uint32) []uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.merged()
	for name, vs := range d.vars {
		if vs.multi {
			dst = append(dst, name)
		}
	}
	return dst
}

// ContendedVars returns the sorted variable-contention tasks covered so
// far.
func (t *Tracker) ContendedVars() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.merged()
	out := make([]string, 0, len(d.vars))
	for name, vs := range d.vars {
		if vs.multi {
			out = append(out, core.InternedName(name))
		}
	}
	sort.Strings(out)
	return out
}

// String renders the (universe-less) report compactly.
func (t *Tracker) String() string {
	var s string
	for i, r := range t.Report(nil) {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d/%d", r.Model, r.Covered, r.Total)
	}
	return s
}
