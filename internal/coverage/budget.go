package coverage

import "sort"

// This file answers §2.2's "new and interesting research question": use
// coverage "to decide, given limited resources, how many times each
// test should be executed". Concurrency tests must run repeatedly
// because one passing run proves little; the allocator spends a run
// budget where coverage is still growing.

// History is the cumulative covered-task count of one test after each
// of its runs so far (monotonically non-decreasing).
type History []int

// marginal estimates the coverage gain of the next run from the tail
// of the history: the average of the last window deltas. Tests with no
// history are maximally promising (optimism under uncertainty).
func (h History) marginal() float64 {
	if len(h) == 0 {
		return 1e9 // never run: must try at least once
	}
	if len(h) == 1 {
		return float64(h[0]) + 1 // one data point: assume similar gain
	}
	const window = 3
	start := len(h) - window
	if start < 1 {
		start = 1
	}
	sum := 0.0
	n := 0
	for i := start; i < len(h); i++ {
		sum += float64(h[i] - h[i-1])
		n++
	}
	return sum / float64(n)
}

// Allocate distributes budget runs across tests proportionally to
// their estimated marginal coverage gain, greedily with decay: each
// simulated allocation halves the test's expected gain, modeling
// saturation. Ties break by name so the allocation is deterministic.
func Allocate(histories map[string]History, budget int) map[string]int {
	names := make([]string, 0, len(histories))
	for n := range histories {
		names = append(names, n)
	}
	sort.Strings(names)

	const freshSentinel = 1e8
	gains := make(map[string]float64, len(names))
	prior := 1.0 // post-first-run estimate for never-run tests
	for _, n := range names {
		g := histories[n].marginal()
		// Saturated tests keep a small residual gain so a large budget
		// still spreads across everything instead of piling onto the
		// alphabetically first saturated test.
		if g < 0.01 {
			g = 0.01
		}
		gains[n] = g
		if g < freshSentinel && g > prior {
			prior = g
		}
	}

	out := make(map[string]int, len(names))
	for i := 0; i < budget; i++ {
		best := ""
		for _, n := range names {
			if best == "" || gains[n] > gains[best] {
				best = n
			}
		}
		if best == "" {
			break
		}
		out[best]++
		if gains[best] >= freshSentinel {
			// First run of a never-run test done; fall back to the
			// best known marginal as its optimistic prior.
			gains[best] = prior
			continue
		}
		// Saturation: expected gain halves per allocated run, with a
		// small floor so a large budget still spreads to everything.
		gains[best] = gains[best]/2 + 0.001
	}
	return out
}
