// Package report holds the evaluation-report table: the one rendering
// vocabulary every layer that produces comparisons — prepared
// experiments (internal/experiment) and persistent campaigns
// (internal/campaign) — shares. A Table renders as aligned text for
// humans, CSV for spreadsheets, and JSON (with pinned field names) for
// machine collectors; the three serializations are the "prepared
// evaluation report, which is easy to understand" of §4.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is one evaluation report table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; the cell count must match the columns.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: table %s row has %d cells, want %d", t.ID, len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (quoted minimally).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = esc(c)
	}
	b.WriteString(strings.Join(cells, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			cells[i] = esc(c)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// JSON writes the table as a single JSON object ({id, title, columns,
// rows, notes}) — the machine-readable serialization external campaign
// tooling collects instead of parsing rendered text.
func (t *Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.jsonForm())
}

// JSONAll writes several tables as one JSON array.
func JSONAll(w io.Writer, tables []*Table) error {
	forms := make([]tableJSON, len(tables))
	for i, t := range tables {
		forms[i] = t.jsonForm()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(forms)
}

// tableJSON fixes the serialized field names independently of the Go
// struct, so renaming fields cannot silently break collectors.
type tableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

func (t *Table) jsonForm() tableJSON {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	return tableJSON{ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: rows, Notes: t.Notes}
}

// ParseJSON reads one table previously written with JSON — the other
// half of the round trip campaign tooling relies on when it collects
// reports from workflow artifacts.
func ParseJSON(r io.Reader) (*Table, error) {
	var form tableJSON
	if err := json.NewDecoder(r).Decode(&form); err != nil {
		return nil, err
	}
	return form.table(), nil
}

// ParseJSONAll reads a table array previously written with JSONAll.
func ParseJSONAll(r io.Reader) ([]*Table, error) {
	var forms []tableJSON
	if err := json.NewDecoder(r).Decode(&forms); err != nil {
		return nil, err
	}
	out := make([]*Table, len(forms))
	for i, f := range forms {
		out[i] = f.table()
	}
	return out, nil
}

func (f tableJSON) table() *Table {
	return &Table{ID: f.ID, Title: f.Title, Columns: f.Columns, Rows: f.Rows, Notes: f.Notes}
}

// RenderAll renders several tables as text.
func RenderAll(w io.Writer, tables []*Table) error {
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteTables renders tables in the CLI output convention shared by
// cmd/mtbench and cmd/campaign: JSON as one array, CSV with a
// "# ID: title" comment header and a blank line per table, aligned
// text otherwise. JSON wins when both flags are set.
func WriteTables(w io.Writer, tables []*Table, csv, json bool) error {
	if json {
		return JSONAll(w, tables)
	}
	for _, t := range tables {
		if csv {
			if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
				return err
			}
			if err := t.CSV(w); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		} else if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}
