// Package vclock implements vector clocks over dense thread ids. They
// are the happens-before machinery used by the DJIT+-style race
// detector and by offline trace analysis.
package vclock

import (
	"fmt"
	"strings"

	"mtbench/internal/core"
)

// VC is a vector clock: VC[t] is the number of "ticks" of thread t that
// happen-before the point the clock describes. The zero value is a
// usable empty clock (all components zero).
type VC struct {
	c []int64
}

// New returns an empty clock with capacity for n threads.
func New(n int) VC {
	return VC{c: make([]int64, n)}
}

// Get returns component t (zero if the clock has never seen t).
func (v VC) Get(t core.ThreadID) int64 {
	if int(t) < 0 || int(t) >= len(v.c) {
		return 0
	}
	return v.c[t]
}

// grow ensures the clock has a component for thread t.
func (v *VC) grow(t core.ThreadID) {
	if int(t) < len(v.c) {
		return
	}
	nc := make([]int64, int(t)+1)
	copy(nc, v.c)
	v.c = nc
}

// Set assigns component t.
func (v *VC) Set(t core.ThreadID, val int64) {
	v.grow(t)
	v.c[t] = val
}

// Tick increments component t and returns the new value.
func (v *VC) Tick(t core.ThreadID) int64 {
	v.grow(t)
	v.c[t]++
	return v.c[t]
}

// Join sets v to the componentwise maximum of v and o (the
// happens-before merge performed at acquire/join edges).
func (v *VC) Join(o VC) {
	if len(o.c) > len(v.c) {
		v.grow(core.ThreadID(len(o.c) - 1))
	}
	for i, ov := range o.c {
		if ov > v.c[i] {
			v.c[i] = ov
		}
	}
}

// Copy returns an independent copy of v.
func (v VC) Copy() VC {
	nc := make([]int64, len(v.c))
	copy(nc, v.c)
	return VC{c: nc}
}

// LEQ reports whether v happens-before-or-equals o, i.e. every
// component of v is <= the corresponding component of o.
func (v VC) LEQ(o VC) bool {
	for i, vv := range v.c {
		if vv == 0 {
			continue
		}
		var ov int64
		if i < len(o.c) {
			ov = o.c[i]
		}
		if vv > ov {
			return false
		}
	}
	return true
}

// Concurrent reports whether neither clock happens-before the other.
func (v VC) Concurrent(o VC) bool {
	return !v.LEQ(o) && !o.LEQ(v)
}

// Len returns the number of components tracked.
func (v VC) Len() int { return len(v.c) }

// String renders the clock as "<c0,c1,...>".
func (v VC) String() string {
	parts := make([]string, len(v.c))
	for i, c := range v.c {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return "<" + strings.Join(parts, ",") + ">"
}

// Epoch is a scalar (thread, clock) pair: the lightweight
// FastTrack-style representation for the common case of a variable's
// accesses being totally ordered.
type Epoch struct {
	T core.ThreadID
	C int64
}

// Zero reports whether the epoch is unset.
func (e Epoch) Zero() bool { return e.C == 0 }

// HB reports whether the epoch happens-before the clock o.
func (e Epoch) HB(o VC) bool { return e.C <= o.Get(e.T) }

// String renders the epoch as "c@t".
func (e Epoch) String() string { return fmt.Sprintf("%d@t%d", e.C, e.T) }
