package vclock

import (
	"testing"
	"testing/quick"

	"mtbench/internal/core"
)

func fromSlice(vals []int64) VC {
	v := New(len(vals))
	for i, x := range vals {
		if x < 0 {
			x = -x
		}
		v.Set(core.ThreadID(i), x%1000)
	}
	return v
}

func TestBasics(t *testing.T) {
	var v VC
	if v.Get(3) != 0 {
		t.Fatal("zero clock has nonzero component")
	}
	if v.Tick(2) != 1 || v.Get(2) != 1 {
		t.Fatal("tick")
	}
	v.Set(5, 9)
	if v.Get(5) != 9 || v.Len() != 6 {
		t.Fatalf("set/grow: %v", v)
	}
	if v.String() != "<0,0,1,0,0,9>" {
		t.Fatalf("string = %s", v.String())
	}
}

func TestLEQAndConcurrent(t *testing.T) {
	a := fromSlice([]int64{1, 2})
	b := fromSlice([]int64{1, 3})
	if !a.LEQ(b) || b.LEQ(a) {
		t.Fatal("leq ordering")
	}
	c := fromSlice([]int64{2, 1})
	if !a.Concurrent(c) || !c.Concurrent(a) {
		t.Fatal("concurrency not symmetric")
	}
	if a.Concurrent(a.Copy()) {
		t.Fatal("clock concurrent with itself")
	}
}

// Property: Join is the least upper bound — both operands are LEQ the
// join, and joining is idempotent and commutative.
func TestJoinIsLUB(t *testing.T) {
	f := func(xs, ys []int64) bool {
		a, b := fromSlice(xs), fromSlice(ys)
		j := a.Copy()
		j.Join(b)
		if !a.LEQ(j) || !b.LEQ(j) {
			return false
		}
		// commutative
		j2 := b.Copy()
		j2.Join(a)
		if !j.LEQ(j2) || !j2.LEQ(j) {
			return false
		}
		// idempotent
		j3 := j.Copy()
		j3.Join(j)
		return j.LEQ(j3) && j3.LEQ(j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: LEQ is a partial order (reflexive, antisymmetric up to
// equality, transitive).
func TestLEQPartialOrder(t *testing.T) {
	f := func(xs, ys, zs []int64) bool {
		a, b, c := fromSlice(xs), fromSlice(ys), fromSlice(zs)
		if !a.LEQ(a) {
			return false
		}
		if a.LEQ(b) && b.LEQ(c) && !a.LEQ(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Tick strictly increases the clock in exactly one
// component.
func TestTickMonotone(t *testing.T) {
	f := func(xs []int64, tid uint8) bool {
		a := fromSlice(xs)
		before := a.Copy()
		id := core.ThreadID(tid % 16)
		a.Tick(id)
		if !before.LEQ(a) || a.LEQ(before) {
			return false
		}
		return a.Get(id) == before.Get(id)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCopyIsIndependent(t *testing.T) {
	a := fromSlice([]int64{1, 2, 3})
	b := a.Copy()
	b.Tick(0)
	if a.Get(0) != 1 {
		t.Fatal("copy aliases original")
	}
}

func TestEpoch(t *testing.T) {
	var e Epoch
	if !e.Zero() {
		t.Fatal("zero epoch not zero")
	}
	e = Epoch{T: 2, C: 5}
	v := fromSlice([]int64{0, 0, 5})
	if !e.HB(v) {
		t.Fatal("epoch should be HB clock with equal component")
	}
	v.Set(2, 4)
	if e.HB(v) {
		t.Fatal("epoch ahead of clock reported HB")
	}
	if e.String() != "5@t2" {
		t.Fatalf("epoch string = %s", e.String())
	}
}
