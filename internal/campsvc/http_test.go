// End-to-end over real HTTP: a coordinator behind httptest, a small
// worker fleet driving real finders, and the tentpole guarantee —
// the distributed store, compacted, is byte-identical to an
// in-process campaign.Run of the same fixed-seed config.
package campsvc_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mtbench/internal/campaign"
	"mtbench/internal/campsvc"
)

// fleetConfig is a small real-finder matrix: 2 finders × 2 programs.
func fleetConfig() campaign.Config {
	return campaign.Config{
		Finders:  []string{"fuzz", "noise"},
		Programs: []string{"lockedcounter", "semleak"},
		Seeds:    []int64{0},
		Budget:   40,
	}
}

// runFleet serves cfg over HTTP into storePath and drives n workers
// to completion. Returns the coordinator for post-hoc assertions.
func runFleet(t *testing.T, cfg campaign.Config, storePath string, n int) *campsvc.Coordinator {
	t.Helper()
	store, err := campaign.Create(storePath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	c, err := campsvc.NewCoordinator(cfg, store, campsvc.CoordinatorOptions{
		LeaseTTL: 5 * time.Second,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(campsvc.Handler(c))
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	stats := make([]campsvc.WorkerStats, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats[i], errs[i] = campsvc.Work(ctx, campsvc.WorkerOptions{
				Name:      string(rune('a' + i)),
				Transport: &campsvc.Client{Base: srv.URL},
				Backoff:   20 * time.Millisecond,
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("coordinator Wait: %v", err)
	}
	var completed int
	for _, s := range stats {
		completed += s.Completed
	}
	if completed != len(campaign.Cells(cfg)) {
		t.Fatalf("fleet completed %d cells, want %d (stats %+v)", completed, len(campaign.Cells(cfg)), stats)
	}
	return c
}

func TestHTTPFleetMatchesInProcessRun(t *testing.T) {
	cfg := fleetConfig()
	dir := t.TempDir()
	distPath := filepath.Join(dir, "dist.jsonl")
	localPath := filepath.Join(dir, "local.jsonl")

	runFleet(t, cfg, distPath, 2)

	localStore, err := campaign.Create(localPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(context.Background(), cfg, localStore, nil); err != nil {
		t.Fatal(err)
	}
	localStore.Close()

	dist, err := os.ReadFile(distPath)
	if err != nil {
		t.Fatal(err)
	}
	local, err := os.ReadFile(localPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dist, local) {
		t.Fatalf("distributed store differs from in-process run:\n--- distributed ---\n%s--- local ---\n%s", dist, local)
	}
}

func TestHTTPStatusAndConfigEndpoints(t *testing.T) {
	cfg := fleetConfig()
	store := campaign.NewMemStore(cfg)
	c, err := campsvc.NewCoordinator(cfg, store, campsvc.CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(campsvc.Handler(c))
	defer srv.Close()
	client := &campsvc.Client{Base: srv.URL}

	got, err := client.Config(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != c.Config().Fingerprint() {
		t.Fatalf("config over HTTP lost its fingerprint:\n%s\n%s", got.Fingerprint(), c.Config().Fingerprint())
	}

	st, err := client.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != len(campaign.Cells(cfg)) || st.Pending != st.Cells {
		t.Fatalf("status over HTTP = %+v", st)
	}

	// Protocol rejections surface as permanent errors, not retries.
	_, err = client.Lease(context.Background(), campsvc.LeaseRequest{})
	if err == nil || !campsvc.IsPermanent(err) {
		t.Fatalf("nameless lease over HTTP = %v, want a permanent error", err)
	}
}
