// Coordinator state-machine tests under a fake clock: every recovery
// path — expiry, backoff, eviction, quarantine, duplicate ingestion,
// resumption — as a deterministic advance-and-assert sequence. No
// sleeps, no races: time only moves when the test says so.
package campsvc_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"mtbench/internal/campaign"
	"mtbench/internal/campsvc"
)

// clock is the injectable test clock.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1_000_000, 0)} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// svcConfig is a small 4-cell matrix (2 programs × 1 finder × 2
// seeds). Explicit finders: campsvc tests must never depend on "all
// registered", the chaos suite registers extra ones.
func svcConfig() campaign.Config {
	return campaign.Config{
		Finders:  []string{"noise"},
		Programs: []string{"lockedcounter", "semleak"},
		Seeds:    []int64{0, 1},
		Budget:   10,
	}
}

// testOpts pins deterministic coordinator options on the fake clock.
func testOpts(ck *clock) campsvc.CoordinatorOptions {
	return campsvc.CoordinatorOptions{
		LeaseTTL:    30 * time.Second,
		MaxAttempts: 3,
		RetryBase:   time.Second,
		RetryMax:    8 * time.Second,
		Now:         ck.Now,
	}
}

// recFor fabricates a completion record for a cell (coordinator tests
// exercise bookkeeping, not finders).
func recFor(cell campaign.Cell) campaign.Record {
	return campaign.Record{Program: cell.Program, Finder: cell.Finder,
		Seed: cell.Seed, Budget: cell.Budget, Runs: 1, Bugs: []string{}, FirstBug: -1}
}

func mustLease(t *testing.T, c *campsvc.Coordinator, worker string) campsvc.Lease {
	t.Helper()
	resp, err := c.Lease(campsvc.LeaseRequest{Worker: worker})
	if err != nil {
		t.Fatalf("Lease(%s): %v", worker, err)
	}
	if resp.Lease == nil {
		t.Fatalf("Lease(%s): no grant (done=%v retry=%dms)", worker, resp.Done, resp.RetryMS)
	}
	return *resp.Lease
}

func TestLeaseLifecycle(t *testing.T) {
	ck := newClock()
	c, err := campsvc.NewCoordinator(svcConfig(), nil, testOpts(ck))
	if err != nil {
		t.Fatal(err)
	}

	cells := campaign.Cells(svcConfig())
	for i := range cells {
		l := mustLease(t, c, "w1")
		if l.Cell != cells[i] {
			t.Fatalf("grant %d = %v, want canonical order %v", i, l.Cell, cells[i])
		}
		if l.Attempt != 1 {
			t.Fatalf("fresh cell granted with attempt %d", l.Attempt)
		}
		resp, err := c.Complete(campsvc.CompleteRequest{Worker: "w1", LeaseID: l.ID, Record: recFor(l.Cell)})
		if err != nil {
			t.Fatalf("Complete: %v", err)
		}
		if resp.Duplicate {
			t.Fatalf("first completion of %s marked duplicate", l.Cell.Key())
		}
	}

	resp, err := c.Lease(campsvc.LeaseRequest{Worker: "w1"})
	if err != nil || !resp.Done {
		t.Fatalf("post-completion lease = %+v, %v; want done", resp, err)
	}
	if err := c.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	st := c.Status()
	if st.Done != 4 || !st.Finished || st.Pending+st.Leased+st.Quarantined != 0 {
		t.Fatalf("final status %+v", st)
	}
}

func TestCompleteIsIdempotent(t *testing.T) {
	ck := newClock()
	c, err := campsvc.NewCoordinator(svcConfig(), nil, testOpts(ck))
	if err != nil {
		t.Fatal(err)
	}
	l := mustLease(t, c, "w1")
	if _, err := c.Complete(campsvc.CompleteRequest{Worker: "w1", LeaseID: l.ID, Record: recFor(l.Cell)}); err != nil {
		t.Fatal(err)
	}
	// The retried upload and the other-worker race both land here.
	resp, err := c.Complete(campsvc.CompleteRequest{Worker: "w2", LeaseID: "stale", Record: recFor(l.Cell)})
	if err != nil {
		t.Fatalf("duplicate completion errored: %v", err)
	}
	if !resp.Duplicate {
		t.Fatal("second completion not marked duplicate")
	}

	if _, err := c.Complete(campsvc.CompleteRequest{Worker: "w1", LeaseID: l.ID,
		Record: campaign.Record{Program: "nosuch", Finder: "noise", Seed: 0, Budget: 10}}); err == nil {
		t.Fatal("completion for a cell outside the matrix accepted")
	}
}

func TestLeaseExpiryRequeuesWithBackoff(t *testing.T) {
	ck := newClock()
	c, err := campsvc.NewCoordinator(svcConfig(), nil, testOpts(ck))
	if err != nil {
		t.Fatal(err)
	}
	l := mustLease(t, c, "w1")

	// While the lease lives, the cell is not re-grantable — but the
	// remaining three cells are.
	for i := 0; i < 3; i++ {
		l2 := mustLease(t, c, "w2")
		if l2.Cell == l.Cell {
			t.Fatal("leased cell granted twice")
		}
	}
	resp, err := c.Lease(campsvc.LeaseRequest{Worker: "w2"})
	if err != nil || resp.Lease != nil || resp.Done {
		t.Fatalf("all-leased matrix still granted: %+v, %v", resp, err)
	}
	if resp.RetryMS <= 0 {
		t.Fatalf("empty grant without retry hint: %+v", resp)
	}

	// Expire w1's lease: its cell fails attempt 1 and re-enters the
	// queue behind the backoff gate (≤ RetryBase), then re-grants as
	// attempt 2.
	ck.Advance(31 * time.Second)
	resp, err = c.Lease(campsvc.LeaseRequest{Worker: "w2"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Lease == nil {
		// Still inside the backoff window; step past it.
		ck.Advance(time.Second)
		resp, err = c.Lease(campsvc.LeaseRequest{Worker: "w2"})
		if err != nil || resp.Lease == nil {
			t.Fatalf("expired cell never re-granted: %+v, %v", resp, err)
		}
	}
	if resp.Lease.Cell != l.Cell {
		t.Fatalf("re-grant = %v, want the expired cell %v", resp.Lease.Cell, l.Cell)
	}
	if resp.Lease.Attempt != 2 {
		t.Fatalf("re-granted expired cell at attempt %d, want 2", resp.Lease.Attempt)
	}

	// The original worker's completion still wins if it arrives first:
	// ingestion is keyed by cell, not lease.
	cr, err := c.Complete(campsvc.CompleteRequest{Worker: "w1", LeaseID: l.ID, Record: recFor(l.Cell)})
	if err != nil || cr.Duplicate {
		t.Fatalf("late completion after expiry rejected: %+v, %v", cr, err)
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	ck := newClock()
	c, err := campsvc.NewCoordinator(svcConfig(), nil, testOpts(ck))
	if err != nil {
		t.Fatal(err)
	}
	l := mustLease(t, c, "w1")

	// Beat every 20s: each extends the 30s TTL, so the lease survives
	// well past its original deadline.
	for i := 0; i < 5; i++ {
		ck.Advance(20 * time.Second)
		hb, err := c.Heartbeat(campsvc.HeartbeatRequest{Worker: "w1", LeaseID: l.ID})
		if err != nil {
			t.Fatal(err)
		}
		if hb.Lost {
			t.Fatalf("heartbeat %d lost a live lease", i)
		}
	}

	// Wrong worker cannot extend someone else's lease.
	hb, _ := c.Heartbeat(campsvc.HeartbeatRequest{Worker: "thief", LeaseID: l.ID})
	if !hb.Lost {
		t.Fatal("foreign heartbeat accepted")
	}

	// Stop beating: the lease expires and the next beat reports Lost.
	ck.Advance(31 * time.Second)
	hb, err = c.Heartbeat(campsvc.HeartbeatRequest{Worker: "w1", LeaseID: l.ID})
	if err != nil {
		t.Fatal(err)
	}
	if !hb.Lost {
		t.Fatal("heartbeat on an expired lease not reported lost")
	}
}

func TestPoisonCellQuarantine(t *testing.T) {
	ck := newClock()
	opts := testOpts(ck)
	opts.MaxAttempts = 2
	c, err := campsvc.NewCoordinator(svcConfig(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}

	l := mustLease(t, c, "w1")
	fr, err := c.Fail(campsvc.FailRequest{Worker: "w1", LeaseID: l.ID, Reason: "panic: boom"})
	if err != nil || fr.Quarantined {
		t.Fatalf("first failure quarantined early: %+v, %v", fr, err)
	}

	ck.Advance(2 * time.Second) // clear the backoff gate
	l2 := mustLease(t, c, "w2")
	if l2.Cell != l.Cell || l2.Attempt != 2 {
		t.Fatalf("re-grant = %+v, want the failed cell at attempt 2", l2)
	}
	fr, err = c.Fail(campsvc.FailRequest{Worker: "w2", LeaseID: l2.ID, Reason: "panic: boom"})
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Quarantined {
		t.Fatal("cell not quarantined at MaxAttempts")
	}

	st := c.Status()
	if st.Quarantined != 1 {
		t.Fatalf("status %+v, want 1 quarantined", st)
	}
	// The quarantine record is settled: late completions are duplicates.
	cr, err := c.Complete(campsvc.CompleteRequest{Worker: "w1", LeaseID: l.ID, Record: recFor(l.Cell)})
	if err != nil || !cr.Duplicate {
		t.Fatalf("completion of a quarantined cell = %+v, %v; want duplicate", cr, err)
	}
}

func TestQuarantineRecordInStore(t *testing.T) {
	ck := newClock()
	opts := testOpts(ck)
	opts.MaxAttempts = 1 // first failure quarantines
	store := campaign.NewMemStore(svcConfig())
	c, err := campsvc.NewCoordinator(svcConfig(), store, opts)
	if err != nil {
		t.Fatal(err)
	}
	l := mustLease(t, c, "w1")
	if _, err := c.Fail(campsvc.FailRequest{Worker: "w1", LeaseID: l.ID, Reason: "panic: boom\nstack..."}); err != nil {
		t.Fatal(err)
	}
	recs := store.Records()
	if len(recs) != 1 {
		t.Fatalf("store has %d records, want the quarantine record", len(recs))
	}
	q := recs[0]
	if !strings.HasPrefix(q.Outcome, "quarantined: ") || !q.Failed() {
		t.Fatalf("outcome = %q, want quarantined classification", q.Outcome)
	}
	if strings.Contains(q.Outcome, "stack...") {
		t.Fatalf("quarantine outcome swallowed a whole stack: %q", q.Outcome)
	}
	if q.Runs != 0 || q.FirstBug != -1 || len(q.Bugs) != 0 {
		t.Fatalf("quarantine record carries results: %+v", q)
	}
}

// Lease expiry counts as a failed attempt too: a cell that keeps
// crashing its workers (who never get to report) still quarantines.
func TestExpiryCountsTowardQuarantine(t *testing.T) {
	ck := newClock()
	opts := testOpts(ck)
	opts.MaxAttempts = 2
	c, err := campsvc.NewCoordinator(svcConfig(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	first := mustLease(t, c, "w1")
	ck.Advance(31 * time.Second) // w1 "crashed": lease expires
	c.Status()                   // reaping is lazy: notice the expiry now...
	ck.Advance(2 * time.Second)  // ...so this clears the backoff gate
	second := mustLease(t, c, "w2")
	if second.Cell != first.Cell || second.Attempt != 2 {
		t.Fatalf("re-grant = %+v, want expired cell at attempt 2", second)
	}
	ck.Advance(31 * time.Second) // w2 "crashed" too
	st := c.Status()
	if st.Quarantined != 1 {
		t.Fatalf("status %+v, want the double-expired cell quarantined", st)
	}
}

func TestWorkerEviction(t *testing.T) {
	ck := newClock()
	opts := testOpts(ck)
	opts.LeaseTTL = 30 * time.Second
	opts.EvictAfter = 45 * time.Second
	c, err := campsvc.NewCoordinator(svcConfig(), nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	l := mustLease(t, c, "quiet")
	// Keep the lease alive by heartbeating... then go fully silent.
	ck.Advance(20 * time.Second)
	if hb, _ := c.Heartbeat(campsvc.HeartbeatRequest{Worker: "quiet", LeaseID: l.ID}); hb.Lost {
		t.Fatal("live lease lost")
	}
	// 46s of silence: past EvictAfter but the lease deadline (extended
	// to +30s) would still have 4s left — eviction expires it early.
	ck.Advance(46 * time.Second)
	st := c.Status()
	var quiet *campsvc.WorkerStatus
	for i := range st.Workers {
		if st.Workers[i].Name == "quiet" {
			quiet = &st.Workers[i]
		}
	}
	if quiet == nil || !quiet.Evicted {
		t.Fatalf("silent worker not evicted: %+v", st.Workers)
	}
	if quiet.Leases != 0 {
		t.Fatalf("evicted worker still holds %d leases", quiet.Leases)
	}
	if st.Leased != 0 {
		t.Fatalf("status %+v, want the evicted worker's cell back in the queue", st)
	}
	_ = l
}

func TestResumeFromExistingStore(t *testing.T) {
	ck := newClock()
	cfg := svcConfig()
	store := campaign.NewMemStore(cfg)
	cells := campaign.Cells(cfg)
	// Pre-complete half the matrix, as if a previous coordinator run
	// was interrupted.
	store.Append(recFor(cells[0]))
	store.Append(recFor(cells[1]))

	c, err := campsvc.NewCoordinator(cfg, store, testOpts(ck))
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Done != 2 || st.Pending != 2 {
		t.Fatalf("resumed status %+v, want 2 done / 2 pending", st)
	}
	for i := 0; i < 2; i++ {
		l := mustLease(t, c, "w1")
		if l.Cell == cells[0] || l.Cell == cells[1] {
			t.Fatalf("completed cell re-granted: %v", l.Cell)
		}
		if _, err := c.Complete(campsvc.CompleteRequest{Worker: "w1", LeaseID: l.ID, Record: recFor(l.Cell)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestCoordinatorDoneImmediately(t *testing.T) {
	ck := newClock()
	cfg := svcConfig()
	store := campaign.NewMemStore(cfg)
	for _, cell := range campaign.Cells(cfg) {
		store.Append(recFor(cell))
	}
	c, err := campsvc.NewCoordinator(cfg, store, testOpts(ck))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Lease(campsvc.LeaseRequest{Worker: "w1"})
	if err != nil || !resp.Done {
		t.Fatalf("lease on a complete campaign = %+v, %v; want done", resp, err)
	}
	if err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorRejectsMismatchedStore(t *testing.T) {
	other := svcConfig()
	other.Budget = 999
	store := campaign.NewMemStore(other)
	if _, err := campsvc.NewCoordinator(svcConfig(), store, testOpts(newClock())); err == nil {
		t.Fatal("coordinator accepted a store pinned to a different config")
	}
}

func TestStatusTables(t *testing.T) {
	ck := newClock()
	c, err := campsvc.NewCoordinator(svcConfig(), nil, testOpts(ck))
	if err != nil {
		t.Fatal(err)
	}
	mustLease(t, c, "w1")
	tables := c.Status().Tables()
	if len(tables) != 2 || tables[0].ID != "SVC" || tables[1].ID != "SVCW" {
		t.Fatalf("status tables = %v", tables)
	}
	if len(tables[1].Rows) != 1 {
		t.Fatalf("worker roster rows = %v", tables[1].Rows)
	}
}
