// Package campsvc is the distributed campaign service: a long-running
// coordinator that shards a campaign.Config's cell matrix across a
// fleet of workers, built so the benchmark survives its own
// infrastructure. The design center is fault tolerance, in the spirit
// the source paper demands of the tools it benchmarks — a testing
// framework that loses results to a crashed worker is itself a buggy
// concurrent system:
//
//   - Work moves under leases: a worker is granted one cell with a
//     deadline, extends it by heartbeating, and a lease that expires
//     (worker crashed, hung, or partitioned) silently re-enters the
//     queue for another worker. Nothing is lost, at worst re-run.
//   - Result ingestion is idempotent, keyed by cell identity: the
//     first completion settles a cell, later arrivals (a worker that
//     lost its lease but finished anyway, a retried upload) are
//     acknowledged as duplicates and dropped. Finders are
//     deterministic, so duplicate records are identical — dropping
//     them is free — and the merged store, after compaction, is
//     byte-identical to a single-process campaign.Run of the same
//     config.
//   - Failures back off exponentially with jitter, and a poison cell
//     — one that keeps killing workers — is quarantined after
//     MaxAttempts failed leases as a "quarantined:" record instead of
//     wedging the fleet forever.
//
// The package splits along the obvious seam: Coordinator owns all
// campaign state behind one mutex (time enters only through its
// injectable clock, so every recovery path is unit-testable with a
// fake clock), Work drives a worker's lease-execute-report loop
// through the panic-sandboxed, deadline-bounded campaign.ExecCell,
// and the Transport interface carries the protocol between them —
// in-process for tests (Local), JSON-over-HTTP for real fleets
// (Handler / Client), and wrapped in fault injectors for the chaos
// suite.
package campsvc

import (
	"time"

	"mtbench/internal/campaign"
)

// LeaseRequest asks the coordinator for one cell of work.
type LeaseRequest struct {
	// Worker is the requesting worker's self-chosen name; it keys the
	// coordinator's liveness bookkeeping, not authorization.
	Worker string `json:"worker"`
}

// Lease is a granted cell: the worker owns it until Deadline and
// extends its ownership by heartbeating every HeartbeatMS.
type Lease struct {
	ID       string        `json:"id"`
	Cell     campaign.Cell `json:"cell"`
	Deadline time.Time     `json:"deadline"`
	// HeartbeatMS is how often the coordinator wants heartbeats —
	// comfortably inside the lease TTL, so one dropped beat is
	// survivable.
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// ConfigFingerprint pins the campaign config the cell must run
	// under; a worker holding a different config re-fetches before
	// executing (a coordinator restarted with a new campaign).
	ConfigFingerprint string `json:"config_fingerprint"`
	// Attempt counts grants of this cell, this one included — 1 on
	// first grant, rising as leases expire or workers report failure.
	Attempt int `json:"attempt"`
}

// LeaseResponse answers a lease request: exactly one of Done, Lease,
// or a retry hint.
type LeaseResponse struct {
	// Done: every cell is settled, the worker can exit.
	Done bool `json:"done"`
	// Lease is the granted cell, nil when none is available.
	Lease *Lease `json:"lease,omitempty"`
	// RetryMS hints when to ask again after an empty grant (cells all
	// leased out or backing off).
	RetryMS int64 `json:"retry_ms,omitempty"`
}

// HeartbeatRequest extends a lease.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	// Deadline is the extended lease deadline.
	Deadline time.Time `json:"deadline"`
	// Lost: the lease no longer exists (expired and re-queued, or the
	// cell settled from elsewhere). The worker must abandon the cell —
	// its eventual result would be a duplicate at best.
	Lost bool `json:"lost"`
}

// CompleteRequest reports a finished cell.
type CompleteRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
	// Record is the cell's result from campaign.ExecCell.
	Record campaign.Record `json:"record"`
}

// CompleteResponse acknowledges a completion.
type CompleteResponse struct {
	// Duplicate: the cell was already settled, the record was dropped.
	// Not an error — idempotent ingestion is what makes worker-side
	// retries safe.
	Duplicate bool `json:"duplicate"`
}

// FailRequest reports that a cell could not be executed (in practice:
// the finder panicked — crashes and hangs never get to report, the
// lease expiry speaks for them).
type FailRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
	Reason  string `json:"reason"`
}

// FailResponse acknowledges a failure report.
type FailResponse struct {
	// Quarantined: this failure was the cell's last allowed attempt;
	// the coordinator settled it as a "quarantined:" record.
	Quarantined bool `json:"quarantined"`
}
