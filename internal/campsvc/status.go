// Campaign-service observability: a Status snapshot and its rendering
// through the shared report tables (SVC / SVCW), so `campaign status`
// reads like every other report in the benchmark.
package campsvc

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"mtbench/internal/report"
)

// Status is a point-in-time snapshot of a coordinator.
type Status struct {
	// Cells is the matrix size; the phase counts partition it.
	Cells       int `json:"cells"`
	Done        int `json:"done"`
	Pending     int `json:"pending"`
	Leased      int `json:"leased"`
	Quarantined int `json:"quarantined"`
	// Finished: every cell settled, store compacted.
	Finished bool `json:"finished"`
	// Workers is the fleet roster, sorted by name.
	Workers []WorkerStatus `json:"workers"`
}

// WorkerStatus is the coordinator's view of one worker.
type WorkerStatus struct {
	Name string `json:"name"`
	// IdleMS is how long since the worker was last heard from.
	IdleMS    int64 `json:"idle_ms"`
	Leases    int   `json:"leases"`
	Completed int   `json:"completed"`
	Failed    int   `json:"failed"`
	Evicted   bool  `json:"evicted"`
}

// Status snapshots the coordinator (reaping expired state first, so
// the snapshot reflects the current time, not the last API call).
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.reapLocked(now)

	s := Status{Cells: len(c.order), Finished: c.open == 0}
	for _, key := range c.order {
		switch c.cells[key].phase {
		case cellPending:
			s.Pending++
		case cellLeased:
			s.Leased++
		case cellDone:
			s.Done++
		case cellQuarantined:
			s.Quarantined++
		}
	}
	held := map[string]int{}
	for _, l := range c.leases {
		held[l.worker]++
	}
	for _, w := range c.workers {
		s.Workers = append(s.Workers, WorkerStatus{
			Name:      w.name,
			IdleMS:    now.Sub(w.lastSeen).Milliseconds(),
			Leases:    held[w.name],
			Completed: w.completed,
			Failed:    w.failed,
			Evicted:   w.evicted,
		})
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Name < s.Workers[j].Name })
	return s
}

// Tables renders the status as report tables: SVC, the cell-phase
// summary, and SVCW, the worker roster.
func (s Status) Tables() []*report.Table {
	summary := &report.Table{
		ID:      "SVC",
		Title:   "campaign service status",
		Columns: []string{"cells", "done", "pending", "leased", "quarantined", "finished"},
	}
	summary.AddRow(strconv.Itoa(s.Cells), strconv.Itoa(s.Done), strconv.Itoa(s.Pending),
		strconv.Itoa(s.Leased), strconv.Itoa(s.Quarantined), fmt.Sprintf("%v", s.Finished))

	workers := &report.Table{
		ID:      "SVCW",
		Title:   "campaign service workers",
		Columns: []string{"worker", "idle", "leases", "completed", "failed", "evicted"},
	}
	for _, w := range s.Workers {
		workers.AddRow(w.Name, (time.Duration(w.IdleMS) * time.Millisecond).String(),
			strconv.Itoa(w.Leases), strconv.Itoa(w.Completed), strconv.Itoa(w.Failed),
			fmt.Sprintf("%v", w.Evicted))
	}
	if len(s.Workers) == 0 {
		workers.Note("no workers have connected yet")
	}
	return []*report.Table{summary, workers}
}
