// The chaos suite: the campaign service under induced failure —
// workers killed mid-cell, a transport that drops and delays
// requests and responses, leases expiring under live workers, and a
// poison cell that panics every worker that touches it. The
// invariants under all of it: no cell is lost (the coordinator
// finishes), no duplicate records land in the store, and whenever no
// cell was quarantined, the compacted store is byte-identical to an
// in-process campaign.Run of the same fixed-seed config.
package campsvc_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mtbench/internal/campaign"
	"mtbench/internal/campsvc"
)

func init() {
	// chaos-slow: a deterministic finder slow enough to be killed or
	// expired mid-cell, honouring ctx like a well-behaved finder.
	err := campaign.RegisterFinder("chaos-slow", "test: slow deterministic finder",
		func(ctx context.Context, in campaign.CellInput) (campaign.CellResult, error) {
			for i := 0; i < 20; i++ {
				select {
				case <-ctx.Done():
					return campaign.CellResult{}, ctx.Err()
				case <-time.After(10 * time.Millisecond):
				}
			}
			return campaign.CellResult{Runs: in.Budget, Bugs: []string{"fail:chaos"}, FirstBug: 1}, nil
		})
	if err != nil {
		panic(err)
	}
	// chaos-panic: the poison pill — kills every worker that runs it.
	err = campaign.RegisterFinder("chaos-panic", "test: always panics",
		func(ctx context.Context, in campaign.CellInput) (campaign.CellResult, error) {
			panic("chaos: poison cell")
		})
	if err != nil {
		panic(err)
	}
}

// chaosOpts is the fast-recovery tuning the chaos tests run under:
// short leases, quick retries, and enough attempts that induced
// failures never quarantine a healthy cell.
func chaosOpts() campsvc.CoordinatorOptions {
	return campsvc.CoordinatorOptions{
		LeaseTTL:    500 * time.Millisecond,
		MaxAttempts: 50,
		RetryBase:   20 * time.Millisecond,
		RetryMax:    100 * time.Millisecond,
	}
}

// localParity runs an in-process campaign.Run of cfg into a file and
// returns its bytes — the ground truth distributed stores must match.
func localParity(t *testing.T, cfg campaign.Config) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "local.jsonl")
	store, err := campaign.Create(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Run(context.Background(), cfg, store, nil); err != nil {
		t.Fatal(err)
	}
	store.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// assertStoreParity compares a finished distributed store file
// byte-for-byte against the in-process ground truth, which also
// proves no duplicate or lost records (any would change the bytes).
func assertStoreParity(t *testing.T, cfg campaign.Config, distPath string) {
	t.Helper()
	dist, err := os.ReadFile(distPath)
	if err != nil {
		t.Fatal(err)
	}
	if local := localParity(t, cfg); !bytes.Equal(dist, local) {
		t.Fatalf("distributed store diverged from in-process run:\n--- distributed ---\n%s--- local ---\n%s", dist, local)
	}
}

// flakyTransport injects deterministic faults: every dropNth call is
// lost before reaching the coordinator, every eatNth call reaches it
// but loses the response, and every delayNth call is delayed. Workers
// must retry through all of it without double-settling any cell.
type flakyTransport struct {
	inner campsvc.Transport
	mu    sync.Mutex
	n     int

	dropNth, eatNth, delayNth int
}

var errInjected = errors.New("chaos: injected transport fault")

// fault decides this call's fate: 0 = clean, 1 = drop request,
// 2 = eat response, 3 = delay.
func (f *flakyTransport) fault() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.n++
	switch {
	case f.dropNth > 0 && f.n%f.dropNth == 0:
		return 1
	case f.eatNth > 0 && f.n%f.eatNth == 0:
		return 2
	case f.delayNth > 0 && f.n%f.delayNth == 0:
		return 3
	}
	return 0
}

func chaosCall[Req, Resp any](f *flakyTransport, req Req, call func(Req) (Resp, error)) (Resp, error) {
	var zero Resp
	switch f.fault() {
	case 1:
		return zero, fmt.Errorf("request lost: %w", errInjected)
	case 2:
		call(req) // the coordinator processed it; the worker never hears
		return zero, fmt.Errorf("response lost: %w", errInjected)
	case 3:
		time.Sleep(5 * time.Millisecond)
	}
	return call(req)
}

func (f *flakyTransport) Lease(ctx context.Context, req campsvc.LeaseRequest) (campsvc.LeaseResponse, error) {
	return chaosCall(f, req, func(r campsvc.LeaseRequest) (campsvc.LeaseResponse, error) {
		return f.inner.Lease(ctx, r)
	})
}

func (f *flakyTransport) Heartbeat(ctx context.Context, req campsvc.HeartbeatRequest) (campsvc.HeartbeatResponse, error) {
	return chaosCall(f, req, func(r campsvc.HeartbeatRequest) (campsvc.HeartbeatResponse, error) {
		return f.inner.Heartbeat(ctx, r)
	})
}

func (f *flakyTransport) Complete(ctx context.Context, req campsvc.CompleteRequest) (campsvc.CompleteResponse, error) {
	return chaosCall(f, req, func(r campsvc.CompleteRequest) (campsvc.CompleteResponse, error) {
		return f.inner.Complete(ctx, r)
	})
}

func (f *flakyTransport) Fail(ctx context.Context, req campsvc.FailRequest) (campsvc.FailResponse, error) {
	return chaosCall(f, req, func(r campsvc.FailRequest) (campsvc.FailResponse, error) {
		return f.inner.Fail(ctx, r)
	})
}

func (f *flakyTransport) Config(ctx context.Context) (campaign.Config, error) {
	return chaosCall(f, struct{}{}, func(struct{}) (campaign.Config, error) {
		return f.inner.Config(ctx)
	})
}

func (f *flakyTransport) Status(ctx context.Context) (campsvc.Status, error) {
	return f.inner.Status(ctx)
}

func TestChaosFlakyTransport(t *testing.T) {
	cfg := fleetConfig()
	distPath := filepath.Join(t.TempDir(), "dist.jsonl")
	store, err := campaign.Create(distPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c, err := campsvc.NewCoordinator(cfg, store, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	var statsMu sync.Mutex
	total := campsvc.WorkerStats{}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := campsvc.Work(ctx, campsvc.WorkerOptions{
				Name:      fmt.Sprintf("flaky-%d", i),
				Transport: &flakyTransport{inner: campsvc.Local{C: c}, dropNth: 5, eatNth: 7, delayNth: 3},
				Backoff:   10 * time.Millisecond,
			})
			errs[i] = err
			statsMu.Lock()
			total.Completed += st.Completed
			total.Duplicates += st.Duplicates
			total.Abandoned += st.Abandoned
			statsMu.Unlock()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d died under transport chaos: %v", i, err)
		}
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("coordinator Wait: %v", err)
	}
	// Every cell settled exactly once; eaten Complete responses and
	// expiry races surface as duplicates, never as extra records.
	if got := total.Completed + total.Duplicates; got < len(campaign.Cells(cfg)) {
		t.Fatalf("fleet acknowledged %d completions for %d cells (stats %+v)", got, len(campaign.Cells(cfg)), total)
	}
	assertStoreParity(t, cfg, distPath)
}

// signalTransport closes leased once the first lease lands — the
// chaos tests' hook for "the worker is now mid-cell, kill it".
type signalTransport struct {
	campsvc.Transport
	once   sync.Once
	leased chan struct{}
}

func (s *signalTransport) Lease(ctx context.Context, req campsvc.LeaseRequest) (campsvc.LeaseResponse, error) {
	resp, err := s.Transport.Lease(ctx, req)
	if err == nil && resp.Lease != nil {
		s.once.Do(func() { close(s.leased) })
	}
	return resp, err
}

func TestChaosWorkerKilledMidCell(t *testing.T) {
	cfg := campaign.Config{
		Finders:  []string{"chaos-slow", "noise"},
		Programs: []string{"lockedcounter", "semleak"},
		Seeds:    []int64{0},
		Budget:   20,
	}
	distPath := filepath.Join(t.TempDir(), "dist.jsonl")
	store, err := campaign.Create(distPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c, err := campsvc.NewCoordinator(cfg, store, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Victim: gets the first (slow) cell, dies mid-execution. SIGKILL
	// is modeled as context cancellation — no goodbye to the
	// coordinator, the lease just stops being heartbeated.
	victimCtx, kill := context.WithCancel(context.Background())
	defer kill()
	sig := &signalTransport{Transport: campsvc.Local{C: c}, leased: make(chan struct{})}
	victimDone := make(chan error, 1)
	go func() {
		_, err := campsvc.Work(victimCtx, campsvc.WorkerOptions{
			Name: "victim", Transport: sig, Backoff: 10 * time.Millisecond,
		})
		victimDone <- err
	}()
	select {
	case <-sig.leased:
	case <-time.After(10 * time.Second):
		t.Fatal("victim never got a lease")
	}
	time.Sleep(30 * time.Millisecond) // well inside the 200ms slow cell
	kill()
	if err := <-victimDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("killed victim returned %v, want context.Canceled", err)
	}

	// Survivor: picks up the victim's expired lease and finishes the
	// campaign alone.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	stats, err := campsvc.Work(ctx, campsvc.WorkerOptions{
		Name: "survivor", Transport: campsvc.Local{C: c}, Backoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("coordinator Wait: %v", err)
	}
	if stats.Completed == 0 {
		t.Fatalf("survivor completed nothing: %+v", stats)
	}
	// Zero lost cells, zero duplicates, and — since nothing was
	// quarantined — exact parity with the single-process run.
	if st := c.Status(); st.Quarantined != 0 || st.Done != len(campaign.Cells(cfg)) {
		t.Fatalf("final status %+v", st)
	}
	assertStoreParity(t, cfg, distPath)
}

func TestChaosPoisonCellQuarantine(t *testing.T) {
	cfg := campaign.Config{
		Finders:  []string{"chaos-panic", "noise"},
		Programs: []string{"lockedcounter"},
		Seeds:    []int64{0},
		Budget:   20,
	}
	opts := chaosOpts()
	opts.MaxAttempts = 3
	store := campaign.NewMemStore(cfg)
	c, err := campsvc.NewCoordinator(cfg, store, opts)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	var statsMu sync.Mutex
	failures := 0
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := campsvc.Work(ctx, campsvc.WorkerOptions{
				Name:      fmt.Sprintf("w%d", i),
				Transport: campsvc.Local{C: c},
				Backoff:   10 * time.Millisecond,
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			statsMu.Lock()
			failures += st.Failures
			statsMu.Unlock()
		}()
	}
	wg.Wait()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("coordinator Wait: %v", err)
	}
	if failures != opts.MaxAttempts {
		t.Fatalf("fleet reported %d failures, want exactly MaxAttempts=%d", failures, opts.MaxAttempts)
	}

	var quarantined, normal int
	for _, rec := range store.Records() {
		switch {
		case strings.HasPrefix(rec.Outcome, "quarantined: "):
			quarantined++
			if rec.Finder != "chaos-panic" {
				t.Errorf("wrong cell quarantined: %+v", rec)
			}
			if !strings.Contains(rec.Outcome, "panic") {
				t.Errorf("quarantine outcome lost the cause: %q", rec.Outcome)
			}
		case rec.Failed():
			t.Errorf("unexpected abnormal record: %+v", rec)
		default:
			normal++
		}
	}
	if quarantined != 1 || normal != 1 {
		t.Fatalf("got %d quarantined / %d normal records, want 1 / 1", quarantined, normal)
	}

	// The poison cell shows up as a gate-failing cell-failed delta
	// against a clean baseline — CI sees quarantine, not silence.
	baseline := []campaign.Record{
		{Program: "lockedcounter", Finder: "chaos-panic", Seed: 0, Budget: 20, Runs: 20, Bugs: []string{}, FirstBug: -1},
		store.Records()[1],
	}
	diff := campaign.Compare(baseline, store.Records(), 1.0)
	if err := diff.Gate(); err == nil {
		t.Fatal("gate passed a store with a quarantined cell")
	}
}

func TestChaosLeaseExpiryUnderLiveWorker(t *testing.T) {
	// A worker whose heartbeats all vanish keeps executing; its lease
	// expires and the cell re-runs elsewhere. Idempotent ingestion
	// means one of the two finishers wins and the other's record is
	// dropped — the store stays exact.
	cfg := campaign.Config{
		Finders:  []string{"chaos-slow"},
		Programs: []string{"lockedcounter"},
		Seeds:    []int64{0},
		Budget:   20,
	}
	opts := chaosOpts()
	opts.LeaseTTL = 120 * time.Millisecond // expires mid-slow-cell
	distPath := filepath.Join(t.TempDir(), "dist.jsonl")
	store, err := campaign.Create(distPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c, err := campsvc.NewCoordinator(cfg, store, opts)
	if err != nil {
		t.Fatal(err)
	}

	// deaf: heartbeats never arrive (dropNth=1 would drop everything;
	// drop only heartbeats via a dedicated wrapper).
	deaf := &deafTransport{inner: campsvc.Local{C: c}}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	var st1, st2 campsvc.WorkerStats
	var err1, err2 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		st1, err1 = campsvc.Work(ctx, campsvc.WorkerOptions{
			Name: "deaf", Transport: deaf, Backoff: 10 * time.Millisecond,
		})
	}()
	go func() {
		defer wg.Done()
		st2, err2 = campsvc.Work(ctx, campsvc.WorkerOptions{
			Name: "healthy", Transport: campsvc.Local{C: c}, Backoff: 10 * time.Millisecond,
		})
	}()
	wg.Wait()
	if err1 != nil || err2 != nil {
		t.Fatalf("workers: %v / %v", err1, err2)
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("coordinator Wait: %v", err)
	}
	// Exactly one record for the one cell, whoever won; the loser saw
	// a duplicate ack (or abandoned after a Lost heartbeat... which
	// deaf never hears, so deaf always finishes and reports).
	if got := st1.Completed + st1.Duplicates + st2.Completed + st2.Duplicates; got < 1 {
		t.Fatalf("no completion acks at all: %+v / %+v", st1, st2)
	}
	assertStoreParity(t, cfg, distPath)
}

// deafTransport delivers everything except heartbeats.
type deafTransport struct {
	inner campsvc.Transport
}

func (d *deafTransport) Lease(ctx context.Context, req campsvc.LeaseRequest) (campsvc.LeaseResponse, error) {
	return d.inner.Lease(ctx, req)
}

func (d *deafTransport) Heartbeat(ctx context.Context, req campsvc.HeartbeatRequest) (campsvc.HeartbeatResponse, error) {
	return campsvc.HeartbeatResponse{}, errInjected
}

func (d *deafTransport) Complete(ctx context.Context, req campsvc.CompleteRequest) (campsvc.CompleteResponse, error) {
	return d.inner.Complete(ctx, req)
}

func (d *deafTransport) Fail(ctx context.Context, req campsvc.FailRequest) (campsvc.FailResponse, error) {
	return d.inner.Fail(ctx, req)
}

func (d *deafTransport) Config(ctx context.Context) (campaign.Config, error) {
	return d.inner.Config(ctx)
}

func (d *deafTransport) Status(ctx context.Context) (campsvc.Status, error) {
	return d.inner.Status(ctx)
}
