// The worker: a lease-execute-report loop over campaign.ExecCell.
// Its fault posture is the mirror image of the coordinator's — it
// assumes the coordinator can vanish at any moment (backoff and
// retry, resume the lease loop when the coordinator returns) and that
// its own lease can be taken away mid-cell (the heartbeat goroutine
// cancels the cell's context with errLeaseLost, the cell is abandoned
// without a report — the coordinator has already re-queued it).
package campsvc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"mtbench/internal/campaign"
)

// errLeaseLost cancels a cell whose lease the coordinator no longer
// honours — distinguishable (via context.Cause) from the worker
// itself being shut down.
var errLeaseLost = errors.New("campsvc: lease lost")

// WorkerOptions configure one worker.
type WorkerOptions struct {
	// Name identifies the worker to the coordinator. Required.
	Name string
	// Transport reaches the coordinator. Required.
	Transport Transport
	// Backoff and BackoffMax bound the retry backoff against an
	// unreachable coordinator (0 = 500ms / 15s).
	Backoff    time.Duration
	BackoffMax time.Duration
	// GiveUpAfter bounds how long the worker tolerates a continuously
	// unreachable coordinator before giving up with an error (0 =
	// forever — the production posture: the worker outlives
	// coordinator restarts).
	GiveUpAfter time.Duration
	// Throttle, when positive, pauses this long between leases — a
	// pacing valve for workers sharing a machine with latency-sensitive
	// work (and for tests that need a campaign to stay interruptible).
	Throttle time.Duration
	// Logf, when set, receives one line per lease-level event.
	Logf func(format string, args ...any)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Backoff <= 0 {
		o.Backoff = 500 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 15 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// WorkerStats summarizes one Work invocation.
type WorkerStats struct {
	// Completed counts cells this worker settled; Duplicates counts
	// completions the coordinator had already received from elsewhere
	// (a benign race after a lease expiry).
	Completed  int
	Duplicates int
	// Failures counts Fail reports (panicking finders); Abandoned
	// counts cells dropped mid-run because the lease was lost.
	Failures  int
	Abandoned int
}

// Work runs the worker loop until the campaign completes (nil error),
// ctx is cancelled, the coordinator rejects the worker permanently,
// or — with GiveUpAfter set — the coordinator stays unreachable too
// long.
func Work(ctx context.Context, opts WorkerOptions) (WorkerStats, error) {
	opts = opts.withDefaults()
	var stats WorkerStats
	if opts.Name == "" {
		return stats, fmt.Errorf("campsvc: worker needs a name")
	}
	if opts.Transport == nil {
		return stats, fmt.Errorf("campsvc: worker needs a transport")
	}
	w := &worker{opts: opts, stats: &stats}

	cfg, err := w.fetchConfig(ctx)
	if err != nil {
		return stats, err
	}
	w.cfg = cfg
	w.fingerprint = cfg.Fingerprint()

	for {
		resp, err := call(ctx, w, "lease", func() (LeaseResponse, error) {
			return opts.Transport.Lease(ctx, LeaseRequest{Worker: opts.Name})
		})
		if err != nil {
			return stats, err
		}
		switch {
		case resp.Done:
			opts.Logf("campsvc: worker %s: campaign done (%d completed, %d dup, %d failed, %d abandoned)",
				opts.Name, stats.Completed, stats.Duplicates, stats.Failures, stats.Abandoned)
			return stats, nil
		case resp.Lease == nil:
			retry := time.Duration(resp.RetryMS) * time.Millisecond
			if retry <= 0 {
				retry = opts.Backoff
			}
			if err := sleepCtx(ctx, retry); err != nil {
				return stats, err
			}
		default:
			if err := w.runLease(ctx, *resp.Lease); err != nil {
				return stats, err
			}
			if opts.Throttle > 0 {
				if err := sleepCtx(ctx, opts.Throttle); err != nil {
					return stats, err
				}
			}
		}
	}
}

// worker is Work's loop state.
type worker struct {
	opts        WorkerOptions
	cfg         campaign.Config
	fingerprint string
	stats       *WorkerStats
}

// fetchConfig pulls the campaign config, retrying through outages.
func (w *worker) fetchConfig(ctx context.Context) (campaign.Config, error) {
	return call(ctx, w, "config", func() (campaign.Config, error) {
		return w.opts.Transport.Config(ctx)
	})
}

// runLease executes one granted cell under a heartbeat, then reports.
func (w *worker) runLease(ctx context.Context, l Lease) error {
	// A coordinator serving a different campaign than the one we
	// fetched (restarted with a new config) invalidates our copy.
	if l.ConfigFingerprint != "" && l.ConfigFingerprint != w.fingerprint {
		w.opts.Logf("campsvc: worker %s: config changed, re-fetching", w.opts.Name)
		cfg, err := w.fetchConfig(ctx)
		if err != nil {
			return err
		}
		w.cfg = cfg
		w.fingerprint = cfg.Fingerprint()
	}

	cellCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	hbDone := make(chan struct{})
	go w.heartbeat(cellCtx, cancel, l, hbDone)

	rec, execErr := campaign.ExecCell(cellCtx, w.cfg, l.Cell)
	cancel(nil)
	<-hbDone

	if execErr != nil {
		if errors.Is(execErr, errLeaseLost) {
			// The coordinator moved on; our partial work is void.
			w.stats.Abandoned++
			w.opts.Logf("campsvc: worker %s: lease %s lost mid-cell, abandoning %s",
				w.opts.Name, l.ID, l.Cell.Key())
			return nil
		}
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		// An unrunnable cell (e.g. a program this worker's binary does
		// not register): report and move on, the coordinator decides
		// between retry and quarantine.
		return w.reportFail(ctx, l, execErr.Error())
	}
	if strings.HasPrefix(rec.Outcome, "panic: ") {
		// A panicking finder is worth retrying elsewhere before it
		// becomes a record: the coordinator's attempt counter turns a
		// deterministic panic into quarantine after MaxAttempts.
		return w.reportFail(ctx, l, rec.Outcome)
	}

	resp, err := call(ctx, w, "complete", func() (CompleteResponse, error) {
		return w.opts.Transport.Complete(ctx, CompleteRequest{
			Worker: w.opts.Name, LeaseID: l.ID, Record: rec,
		})
	})
	if err != nil {
		return err
	}
	if resp.Duplicate {
		w.stats.Duplicates++
	} else {
		w.stats.Completed++
	}
	return nil
}

// heartbeat extends the lease until the cell context ends, cancelling
// the cell if the coordinator reports the lease lost.
func (w *worker) heartbeat(ctx context.Context, cancel context.CancelCauseFunc, l Lease, done chan<- struct{}) {
	defer close(done)
	every := time.Duration(l.HeartbeatMS) * time.Millisecond
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			hb, err := w.opts.Transport.Heartbeat(ctx, HeartbeatRequest{Worker: w.opts.Name, LeaseID: l.ID})
			if err != nil {
				// An unreachable coordinator is NOT a lost lease: keep
				// executing and keep beating. If the outage outlives
				// the lease TTL the coordinator will tell us Lost on
				// reconnect (or our completion lands as the winner
				// anyway — ingestion is idempotent).
				continue
			}
			if hb.Lost {
				cancel(errLeaseLost)
				return
			}
		}
	}
}

// reportFail sends a Fail report, retrying through outages.
func (w *worker) reportFail(ctx context.Context, l Lease, reason string) error {
	w.stats.Failures++
	_, err := call(ctx, w, "fail", func() (FailResponse, error) {
		return w.opts.Transport.Fail(ctx, FailRequest{
			Worker: w.opts.Name, LeaseID: l.ID, Reason: reason,
		})
	})
	return err
}

// call runs one transport call with exponential backoff across
// retryable failures (a free function because Go methods cannot be
// generic). Permanent (protocol) errors and context ends surface
// immediately; with GiveUpAfter set, so does an outage that outlives
// it.
func call[T any](ctx context.Context, w *worker, what string, fn func() (T, error)) (T, error) {
	var zero T
	backoff := w.opts.Backoff
	var outage time.Duration
	for {
		v, err := fn()
		if err == nil {
			return v, nil
		}
		if ctx.Err() != nil {
			return zero, context.Cause(ctx)
		}
		if IsPermanent(err) {
			return zero, fmt.Errorf("campsvc: worker %s: %s rejected: %w", w.opts.Name, what, err)
		}
		if w.opts.GiveUpAfter > 0 && outage >= w.opts.GiveUpAfter {
			return zero, fmt.Errorf("campsvc: worker %s: coordinator unreachable for %s: %w", w.opts.Name, outage, err)
		}
		w.opts.Logf("campsvc: worker %s: %s failed (%v), retrying in %s", w.opts.Name, what, err, backoff)
		if err := sleepCtx(ctx, backoff); err != nil {
			return zero, err
		}
		outage += backoff
		backoff *= 2
		if backoff > w.opts.BackoffMax {
			backoff = w.opts.BackoffMax
		}
	}
}

// sleepCtx sleeps or returns early with the context's cause.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-t.C:
		return nil
	}
}
