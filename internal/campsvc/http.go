// The wire layer: the coordinator as a JSON-over-HTTP service and the
// matching Transport client. The protocol is deliberately boring —
// five POST endpoints and two GETs, request and response structs
// straight from campsvc.go — because every interesting property
// (leases, idempotence, quarantine) lives in the coordinator's state
// machine, not in the wire format. Client maps HTTP 4xx to
// PermanentError so workers distinguish "the coordinator said no"
// from "the coordinator is unreachable".
package campsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"mtbench/internal/campaign"
)

// Handler serves the coordinator protocol over HTTP.
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, c.Lease)
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, c.Heartbeat)
	})
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, c.Complete)
	})
	mux.HandleFunc("POST /v1/fail", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, c.Fail)
	})
	mux.HandleFunc("GET /v1/config", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Config())
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	return mux
}

// handleJSON decodes the request body, applies fn, and encodes the
// response. Coordinator errors are protocol rejections → 400.
func handleJSON[Req, Resp any](w http.ResponseWriter, r *http.Request, fn func(Req) (Resp, error)) {
	var req Req
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "decode request: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := fn(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Client is the HTTP Transport: a worker's view of a remote
// coordinator.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://host:8347".
	Base string
	// HTTP is the underlying client (nil = a client with a 30s
	// timeout; per-call deadlines must exist or a hung coordinator
	// wedges the worker's retry loop).
	HTTP *http.Client
}

var _ Transport = (*Client)(nil)

func (c *Client) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	return post[LeaseResponse](ctx, c, "/v1/lease", req)
}

func (c *Client) Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	return post[HeartbeatResponse](ctx, c, "/v1/heartbeat", req)
}

func (c *Client) Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error) {
	return post[CompleteResponse](ctx, c, "/v1/complete", req)
}

func (c *Client) Fail(ctx context.Context, req FailRequest) (FailResponse, error) {
	return post[FailResponse](ctx, c, "/v1/fail", req)
}

func (c *Client) Config(ctx context.Context) (campaign.Config, error) {
	return get[campaign.Config](ctx, c, "/v1/config")
}

func (c *Client) Status(ctx context.Context) (Status, error) {
	return get[Status](ctx, c, "/v1/status")
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func post[Resp any](ctx context.Context, c *Client, path string, req any) (Resp, error) {
	var zero Resp
	body, err := json.Marshal(req)
	if err != nil {
		return zero, fmt.Errorf("campsvc: encode %s request: %w", path, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(c.Base, "/")+path, bytes.NewReader(body))
	if err != nil {
		return zero, fmt.Errorf("campsvc: build %s request: %w", path, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	return do[Resp](c, hreq, path)
}

func get[Resp any](ctx context.Context, c *Client, path string) (Resp, error) {
	var zero Resp
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(c.Base, "/")+path, nil)
	if err != nil {
		return zero, fmt.Errorf("campsvc: build %s request: %w", path, err)
	}
	return do[Resp](c, hreq, path)
}

func do[Resp any](c *Client, hreq *http.Request, path string) (Resp, error) {
	var zero Resp
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return zero, fmt.Errorf("campsvc: %s: %w", path, err)
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hresp.Body, 4<<20))
	if err != nil {
		return zero, fmt.Errorf("campsvc: read %s response: %w", path, err)
	}
	if hresp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(body))
		if hresp.StatusCode >= 400 && hresp.StatusCode < 500 {
			return zero, &PermanentError{Status: hresp.StatusCode, Msg: msg}
		}
		return zero, fmt.Errorf("campsvc: %s: status %d: %s", path, hresp.StatusCode, msg)
	}
	if err := json.Unmarshal(body, &zero); err != nil {
		return zero, fmt.Errorf("campsvc: decode %s response: %w", path, err)
	}
	return zero, nil
}
