// The protocol seam: workers speak to the coordinator only through
// Transport, so the same worker loop runs in-process (Local, the unit
// and chaos tests), over HTTP (Client, real fleets), or under fault
// injection (the chaos suite wraps a Transport to drop and delay).
package campsvc

import (
	"context"
	"errors"
	"fmt"

	"mtbench/internal/campaign"
)

// Transport carries the worker-coordinator protocol.
type Transport interface {
	Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error)
	Heartbeat(ctx context.Context, req HeartbeatRequest) (HeartbeatResponse, error)
	Complete(ctx context.Context, req CompleteRequest) (CompleteResponse, error)
	Fail(ctx context.Context, req FailRequest) (FailResponse, error)
	Config(ctx context.Context) (campaign.Config, error)
	Status(ctx context.Context) (Status, error)
}

// Local is the in-process Transport: direct coordinator calls, no
// serialization. The form tests and single-machine fleets use.
type Local struct {
	C *Coordinator
}

var _ Transport = Local{}

func (l Local) Lease(_ context.Context, req LeaseRequest) (LeaseResponse, error) {
	return l.C.Lease(req)
}

func (l Local) Heartbeat(_ context.Context, req HeartbeatRequest) (HeartbeatResponse, error) {
	return l.C.Heartbeat(req)
}

func (l Local) Complete(_ context.Context, req CompleteRequest) (CompleteResponse, error) {
	return l.C.Complete(req)
}

func (l Local) Fail(_ context.Context, req FailRequest) (FailResponse, error) {
	return l.C.Fail(req)
}

func (l Local) Config(context.Context) (campaign.Config, error) {
	return l.C.Config(), nil
}

func (l Local) Status(context.Context) (Status, error) {
	return l.C.Status(), nil
}

// PermanentError is a transport error retrying cannot fix — a
// protocol-level rejection (HTTP 4xx), not an outage. Workers give up
// on these immediately instead of backing off forever against a
// coordinator that keeps saying no.
type PermanentError struct {
	Status int
	Msg    string
}

func (e *PermanentError) Error() string {
	return fmt.Sprintf("campsvc: permanent transport error (status %d): %s", e.Status, e.Msg)
}

// IsPermanent reports whether err is a PermanentError.
func IsPermanent(err error) bool {
	var pe *PermanentError
	return errors.As(err, &pe)
}
