// The coordinator: all campaign state behind one mutex. Leases,
// attempts, backoff and quarantine are plain data transitions driven
// by an injectable clock — no background goroutines, no timers.
// Expiry is enforced lazily: every API call first reaps whatever the
// current time has invalidated, which makes each recovery path a
// deterministic unit test (advance the fake clock, call the API,
// assert the transition) instead of a sleep-and-hope race.
package campsvc

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mtbench/internal/campaign"
)

// Coordinator defaults.
const (
	DefaultLeaseTTL    = 30 * time.Second
	DefaultMaxAttempts = 3
	DefaultRetryBase   = time.Second
	DefaultRetryMax    = time.Minute
)

// CoordinatorOptions tune the coordinator's fault model.
type CoordinatorOptions struct {
	// LeaseTTL is how long a granted lease lives without a heartbeat
	// (0 = DefaultLeaseTTL). Heartbeats are requested every TTL/3.
	LeaseTTL time.Duration
	// EvictAfter is how long a worker may be silent before it is
	// marked evicted and its leases are expired immediately instead of
	// waiting out their deadlines (0 = 2×LeaseTTL).
	EvictAfter time.Duration
	// MaxAttempts is how many lease grants a cell gets before it is
	// quarantined as poison (0 = DefaultMaxAttempts).
	MaxAttempts int
	// RetryBase and RetryMax bound the exponential backoff a failed
	// cell waits before re-entering the queue (0 = defaults). The
	// actual delay is jittered into [d/2, d].
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed seeds the backoff jitter (jitter never affects results,
	// only scheduling, so any seed keeps stores byte-identical).
	Seed int64
	// Now is the clock (nil = time.Now). Tests inject a fake.
	Now func() time.Time
	// Logf, when set, receives one line per state transition.
	Logf func(format string, args ...any)
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = DefaultLeaseTTL
	}
	if o.EvictAfter <= 0 {
		o.EvictAfter = 2 * o.LeaseTTL
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.RetryBase <= 0 {
		o.RetryBase = DefaultRetryBase
	}
	if o.RetryMax <= 0 {
		o.RetryMax = DefaultRetryMax
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// cellPhase is a cell's lifecycle state.
type cellPhase int

const (
	cellPending     cellPhase = iota // waiting for a lease grant
	cellLeased                       // owned by a live lease
	cellDone                         // settled with a real record
	cellQuarantined                  // settled as poison
)

// cellEntry is one matrix cell's coordinator-side state.
type cellEntry struct {
	cell        campaign.Cell
	phase       cellPhase
	attempts    int       // lease grants so far
	notBefore   time.Time // backoff gate for the next grant
	lease       *lease    // non-nil iff phase == cellLeased
	lastFailure string
}

// lease is one live grant.
type lease struct {
	id       string
	key      string // cell key
	worker   string
	deadline time.Time
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	name      string
	lastSeen  time.Time
	completed int
	failed    int
	evicted   bool
}

// Coordinator shards one campaign across a worker fleet. All methods
// are safe for concurrent use; construction pins the campaign config
// and pre-settles cells the store already holds, so serving an
// existing store resumes the campaign exactly like campaign.Run does.
type Coordinator struct {
	mu      sync.Mutex
	cfg     campaign.Config
	store   *campaign.Store
	opts    CoordinatorOptions
	cells   map[string]*cellEntry
	order   []string // canonical cell-key order, the grant scan order
	leases  map[string]*lease
	workers map[string]*workerState
	rng     *rand.Rand
	leaseN  int
	open    int // cells not yet settled
	done    chan struct{}
	doneErr error
}

// NewCoordinator builds a coordinator for cfg over store. A nil store
// gets an in-memory one; an existing store must pin the same config
// fingerprint (exactly campaign.Run's resumption contract), and its
// completed cells are pre-settled. The store is switched to
// fsync-on-append: the coordinator's copy is the only copy of the
// fleet's work.
func NewCoordinator(cfg campaign.Config, store *campaign.Store, opts CoordinatorOptions) (*Coordinator, error) {
	if store == nil {
		store = campaign.NewMemStore(cfg)
	}
	if got, want := store.Config().Fingerprint(), cfg.Fingerprint(); got != want {
		return nil, fmt.Errorf("campsvc: store config mismatch: store pins %s, coordinator asked for %s", got, want)
	}
	cfg = store.Config() // the normalized form
	store.SetSync(true)
	opts = opts.withDefaults()

	c := &Coordinator{
		cfg:     cfg,
		store:   store,
		opts:    opts,
		cells:   map[string]*cellEntry{},
		leases:  map[string]*lease{},
		workers: map[string]*workerState{},
		rng:     rand.New(rand.NewSource(opts.Seed)),
		done:    make(chan struct{}),
	}
	for _, cell := range campaign.Cells(cfg) {
		key := cell.Key()
		e := &cellEntry{cell: cell, phase: cellPending}
		if store.Has(key) {
			e.phase = cellDone
		} else {
			c.open++
		}
		c.cells[key] = e
		c.order = append(c.order, key)
	}
	if c.open == 0 {
		c.finishLocked()
	}
	return c, nil
}

// Config returns the campaign config the coordinator serves.
func (c *Coordinator) Config() campaign.Config { return c.cfg }

// Done is closed once every cell is settled and the store compacted.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Wait blocks until the campaign completes or ctx is cancelled, then
// returns the completion error (a failed final compaction).
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.doneErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Lease grants the requesting worker the first grantable cell in
// canonical order, or reports done / retry-later.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	if req.Worker == "" {
		return LeaseResponse{}, fmt.Errorf("campsvc: lease request without worker name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.touchLocked(req.Worker, now)
	c.reapLocked(now)

	if c.open == 0 {
		return LeaseResponse{Done: true}, nil
	}

	// Scan in canonical order so the fleet drains the matrix in the
	// same order campaign.Run would; track the nearest backoff gate
	// for the retry hint.
	var nextGate time.Time
	for _, key := range c.order {
		e := c.cells[key]
		if e.phase != cellPending {
			continue
		}
		if e.notBefore.After(now) {
			if nextGate.IsZero() || e.notBefore.Before(nextGate) {
				nextGate = e.notBefore
			}
			continue
		}
		c.leaseN++
		l := &lease{
			id:       fmt.Sprintf("L%06d", c.leaseN),
			key:      key,
			worker:   req.Worker,
			deadline: now.Add(c.opts.LeaseTTL),
		}
		e.phase = cellLeased
		e.attempts++
		e.lease = l
		c.leases[l.id] = l
		c.opts.Logf("campsvc: lease %s: cell %s -> worker %s (attempt %d/%d)",
			l.id, key, req.Worker, e.attempts, c.opts.MaxAttempts)
		return LeaseResponse{Lease: &Lease{
			ID:                l.id,
			Cell:              e.cell,
			Deadline:          l.deadline,
			HeartbeatMS:       (c.opts.LeaseTTL / 3).Milliseconds(),
			ConfigFingerprint: c.cfg.Fingerprint(),
			Attempt:           e.attempts,
		}}, nil
	}

	// Nothing grantable right now: all remaining cells are leased out
	// or backing off. Hint a retry at the nearest gate (or a heartbeat
	// interval when only leased cells remain).
	retry := c.opts.LeaseTTL / 3
	if !nextGate.IsZero() {
		if until := nextGate.Sub(now); until < retry {
			retry = until
		}
	}
	if retry < 10*time.Millisecond {
		retry = 10 * time.Millisecond
	}
	return LeaseResponse{RetryMS: retry.Milliseconds()}, nil
}

// Heartbeat extends the lease deadline, or reports the lease lost.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.touchLocked(req.Worker, now)
	c.reapLocked(now)

	l, ok := c.leases[req.LeaseID]
	if !ok || l.worker != req.Worker {
		return HeartbeatResponse{Lost: true}, nil
	}
	l.deadline = now.Add(c.opts.LeaseTTL)
	return HeartbeatResponse{Deadline: l.deadline}, nil
}

// Complete ingests a finished cell's record. Ingestion is idempotent
// by cell key: the first completion settles the cell (even if the
// reporting worker's lease already expired — the result is just as
// valid), later completions are acknowledged as duplicates and
// dropped. Finders are deterministic, so a dropped duplicate is
// byte-identical to the record already stored.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.touchLocked(req.Worker, now)
	c.reapLocked(now)

	key := req.Record.Key()
	e, ok := c.cells[key]
	if !ok {
		return CompleteResponse{}, fmt.Errorf("campsvc: completion for unknown cell %s", key)
	}
	if e.phase == cellDone || e.phase == cellQuarantined {
		return CompleteResponse{Duplicate: true}, nil
	}
	c.dropLeaseLocked(e)
	if w := c.workers[req.Worker]; w != nil {
		w.completed++
	}
	if err := c.settleLocked(e, req.Record, cellDone); err != nil {
		return CompleteResponse{}, err
	}
	c.opts.Logf("campsvc: cell %s completed by worker %s (%d open)", key, req.Worker, c.open)
	return CompleteResponse{}, nil
}

// Fail reports an executable-but-failing cell (a panicking finder).
// The failure consumes the cell's current attempt: the cell backs off
// and re-queues, or — at MaxAttempts — is quarantined.
func (c *Coordinator) Fail(req FailRequest) (FailResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.touchLocked(req.Worker, now)
	c.reapLocked(now)

	l, ok := c.leases[req.LeaseID]
	if !ok || l.worker != req.Worker {
		// Stale report: the lease already expired and its failure was
		// already accounted. Nothing to do.
		return FailResponse{}, nil
	}
	e := c.cells[l.key]
	c.dropLeaseLocked(e)
	if w := c.workers[req.Worker]; w != nil {
		w.failed++
	}
	if err := c.failLocked(e, now, fmt.Sprintf("worker %s: %s", req.Worker, firstLine(req.Reason))); err != nil {
		return FailResponse{}, err
	}
	return FailResponse{Quarantined: e.phase == cellQuarantined}, nil
}

// touchLocked records worker liveness.
func (c *Coordinator) touchLocked(name string, now time.Time) {
	if name == "" {
		return
	}
	w := c.workers[name]
	if w == nil {
		w = &workerState{name: name}
		c.workers[name] = w
	}
	w.lastSeen = now
	w.evicted = false
}

// reapLocked enforces time: expired leases fail their cell's attempt
// and silent workers are evicted (which expires their leases early —
// a worker that stopped heartbeating everything is gone, not slow).
func (c *Coordinator) reapLocked(now time.Time) {
	for name, w := range c.workers {
		if !w.evicted && now.Sub(w.lastSeen) >= c.opts.EvictAfter {
			w.evicted = true
			c.opts.Logf("campsvc: evicting worker %s (silent for %s)", name, now.Sub(w.lastSeen))
			for _, l := range c.leases {
				if l.worker == name {
					l.deadline = now // expire below
				}
			}
		}
	}
	for id, l := range c.leases {
		if l.deadline.After(now) {
			continue
		}
		e := c.cells[l.key]
		delete(c.leases, id)
		e.lease = nil
		// settleLocked errors (a failing store write) surface on the
		// next Complete/Fail; expiry itself has no caller to fail.
		_ = c.failLocked(e, now, fmt.Sprintf("lease %s expired on worker %s", id, l.worker))
	}
}

// failLocked accounts one failed attempt: backoff-and-requeue, or
// quarantine at the attempt limit.
func (c *Coordinator) failLocked(e *cellEntry, now time.Time, reason string) error {
	e.lastFailure = reason
	if e.attempts >= c.opts.MaxAttempts {
		rec := campaign.Record{
			Program:  e.cell.Program,
			Finder:   e.cell.Finder,
			Seed:     e.cell.Seed,
			Budget:   e.cell.Budget,
			Bugs:     []string{},
			FirstBug: -1,
			Outcome:  fmt.Sprintf("quarantined: %d failed attempts; last: %s", e.attempts, reason),
		}
		c.opts.Logf("campsvc: quarantining poison cell %s: %s", e.cell.Key(), reason)
		return c.settleLocked(e, rec, cellQuarantined)
	}
	d := c.backoffLocked(e.attempts)
	e.phase = cellPending
	e.notBefore = now.Add(d)
	c.opts.Logf("campsvc: cell %s failed attempt %d/%d (%s), retrying in %s",
		e.cell.Key(), e.attempts, c.opts.MaxAttempts, reason, d)
	return nil
}

// backoffLocked is exponential in the attempt count, capped, and
// jittered into [d/2, d] so a fleet's retries do not synchronize.
func (c *Coordinator) backoffLocked(attempts int) time.Duration {
	d := c.opts.RetryBase
	for i := 1; i < attempts && d < c.opts.RetryMax; i++ {
		d *= 2
	}
	if d > c.opts.RetryMax {
		d = c.opts.RetryMax
	}
	half := d / 2
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}

// dropLeaseLocked detaches a cell's live lease, if any.
func (c *Coordinator) dropLeaseLocked(e *cellEntry) {
	if e.lease != nil {
		delete(c.leases, e.lease.id)
		e.lease = nil
	}
}

// settleLocked finalizes a cell: the record is appended (fsynced) and
// the campaign finishes when the last open cell settles.
func (c *Coordinator) settleLocked(e *cellEntry, rec campaign.Record, phase cellPhase) error {
	if err := c.store.Append(rec); err != nil {
		return err
	}
	e.phase = phase
	c.open--
	if c.open == 0 {
		c.finishLocked()
	}
	return nil
}

// finishLocked compacts the store to its canonical (byte-comparable)
// form and releases waiters.
func (c *Coordinator) finishLocked() {
	c.doneErr = c.store.Compact()
	close(c.done)
	c.opts.Logf("campsvc: campaign complete (%d cells)", len(c.order))
}

// firstLine truncates a failure reason (panic reasons carry whole
// stacks) to something a record or log line can hold.
func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
		if i > 200 {
			return s[:i] + "..."
		}
	}
	return s
}
