// Package instrument is the framework's instrumentor interface. In the
// paper the instrumentor rewrites bytecode and exposes "a standard
// interface that lets the user tell it what type of instructions to
// instrument, which variables, and where"; here the probes are built
// into the runtime API and a Plan plays that role: it decides, per
// operation kind and per object, whether a probe fires (i.e. whether a
// scheduling point is taken and an event emitted).
//
// Plans are how static-analysis results flow into the dynamic tools
// (Figure 1 of the paper): internal/staticinfo produces a Plan that
// skips probes on thread-local variables, cutting event volume and
// noise-injection overhead without changing program semantics.
package instrument

import (
	"sort"
	"sync/atomic"

	"mtbench/internal/core"
)

// Plan selects which probes fire. The zero value (and a nil *Plan)
// instruments everything. Plans are immutable after configuration and
// safe for concurrent use by the native runtime.
type Plan struct {
	disabledOps  [core.NumOps]bool
	disabledObjs map[string]bool
	onlyObjs     map[string]bool // nil means "all objects"

	skipped atomic.Int64 // probes suppressed (for E8 reporting)
}

// All returns a plan that instruments every probe.
func All() *Plan { return &Plan{} }

// DisableOps suppresses probes for the given operation kinds and
// returns the plan for chaining.
func (p *Plan) DisableOps(ops ...core.Op) *Plan {
	for _, o := range ops {
		if int(o) < core.NumOps {
			p.disabledOps[o] = true
		}
	}
	return p
}

// DisableObjects suppresses probes on the named objects.
func (p *Plan) DisableObjects(names ...string) *Plan {
	if p.disabledObjs == nil {
		p.disabledObjs = make(map[string]bool, len(names))
	}
	for _, n := range names {
		p.disabledObjs[n] = true
	}
	return p
}

// OnlyObjects restricts variable-access probes to the named objects;
// probes on other objects are suppressed. Non-access probes (locks,
// thread lifecycle, ...) are unaffected, since downstream tools need
// them to interpret the access stream.
func (p *Plan) OnlyObjects(names ...string) *Plan {
	if p.onlyObjs == nil {
		p.onlyObjs = make(map[string]bool, len(names))
	}
	for _, n := range names {
		p.onlyObjs[n] = true
	}
	return p
}

// Enabled reports whether the probe for op on the named object fires.
// A nil plan enables everything.
func (p *Plan) Enabled(op core.Op, name string) bool {
	if p == nil {
		return true
	}
	if int(op) < core.NumOps && p.disabledOps[op] {
		p.skipped.Add(1)
		return false
	}
	if name != "" {
		if p.disabledObjs != nil && p.disabledObjs[name] {
			p.skipped.Add(1)
			return false
		}
		if p.onlyObjs != nil && op.IsAccess() && !p.onlyObjs[name] {
			p.skipped.Add(1)
			return false
		}
	}
	return true
}

// Skipped returns the number of probes this plan has suppressed so far.
func (p *Plan) Skipped() int64 {
	if p == nil {
		return 0
	}
	return p.skipped.Load()
}

// ResetCounters clears the suppression counter (between experiment
// phases).
func (p *Plan) ResetCounters() {
	if p != nil {
		p.skipped.Store(0)
	}
}

// DisabledObjects returns the sorted list of objects the plan
// suppresses, for reports.
func (p *Plan) DisabledObjects() []string {
	if p == nil || p.disabledObjs == nil {
		return nil
	}
	out := make([]string, 0, len(p.disabledObjs))
	for n := range p.disabledObjs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
