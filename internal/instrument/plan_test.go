package instrument

import (
	"testing"

	"mtbench/internal/core"
)

func TestNilPlanEnablesEverything(t *testing.T) {
	var p *Plan
	if !p.Enabled(core.OpRead, "x") || !p.Enabled(core.OpLock, "mu") {
		t.Fatal("nil plan suppressed a probe")
	}
	if p.Skipped() != 0 {
		t.Fatal("nil plan counted skips")
	}
}

func TestDisableOps(t *testing.T) {
	p := All().DisableOps(core.OpYield, core.OpSleep)
	if p.Enabled(core.OpYield, "") || p.Enabled(core.OpSleep, "") {
		t.Fatal("disabled op enabled")
	}
	if !p.Enabled(core.OpRead, "x") {
		t.Fatal("unrelated op disabled")
	}
	if p.Skipped() != 2 {
		t.Fatalf("skipped = %d, want 2", p.Skipped())
	}
}

func TestDisableObjects(t *testing.T) {
	p := All().DisableObjects("noisy", "local")
	if p.Enabled(core.OpRead, "noisy") || p.Enabled(core.OpWrite, "local") {
		t.Fatal("disabled object enabled")
	}
	if !p.Enabled(core.OpRead, "other") {
		t.Fatal("other object disabled")
	}
	got := p.DisabledObjects()
	if len(got) != 2 || got[0] != "local" || got[1] != "noisy" {
		t.Fatalf("disabled objects = %v", got)
	}
}

// TestOnlyObjectsRestrictsAccessesOnly pins the pruning semantics:
// OnlyObjects filters variable accesses but leaves sync and lifecycle
// probes alone (downstream tools need lock events to interpret the
// access stream).
func TestOnlyObjectsRestrictsAccessesOnly(t *testing.T) {
	p := All().OnlyObjects("shared")
	if !p.Enabled(core.OpRead, "shared") || !p.Enabled(core.OpWrite, "shared") {
		t.Fatal("listed object suppressed")
	}
	if p.Enabled(core.OpRead, "local") {
		t.Fatal("unlisted access enabled")
	}
	if !p.Enabled(core.OpLock, "mu") || !p.Enabled(core.OpUnlock, "mu") {
		t.Fatal("sync probe suppressed by OnlyObjects")
	}
	if !p.Enabled(core.OpFork, "w") {
		t.Fatal("lifecycle probe suppressed by OnlyObjects")
	}
}

func TestResetCounters(t *testing.T) {
	p := All().DisableObjects("x")
	p.Enabled(core.OpRead, "x")
	if p.Skipped() != 1 {
		t.Fatalf("skipped = %d", p.Skipped())
	}
	p.ResetCounters()
	if p.Skipped() != 0 {
		t.Fatal("reset did not clear")
	}
}
