package core

import (
	"fmt"
	"strings"
	"time"
)

// Verdict classifies how a run ended.
type Verdict uint8

// Run verdicts.
const (
	VerdictPass      Verdict = iota // body completed, no oracle failed
	VerdictFail                     // an Assert/Failf oracle failed
	VerdictDeadlock                 // all live threads blocked on each other
	VerdictStepLimit                // the step budget was exhausted (livelock suspect)
	VerdictTimeout                  // native watchdog expired (deadlock suspect)
	VerdictDiverged                 // replay could not follow the recorded schedule
)

var verdictNames = [...]string{"pass", "fail", "deadlock", "steplimit", "timeout", "diverged"}

// String returns the verdict mnemonic.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// Bug reports whether the verdict counts as a detected bug
// manifestation (anything but a clean pass; a step-limit hit counts
// because the benchmark's livelock programs manifest that way).
func (v Verdict) Bug() bool { return v != VerdictPass }

// Failure describes a failed oracle.
type Failure struct {
	Msg    string
	Thread ThreadID
	Loc    Location
}

// Result is the outcome of one execution of a benchmark program under
// either runtime.
type Result struct {
	Verdict Verdict
	Failure *Failure // non-nil iff Verdict == VerdictFail

	// DeadlockInfo describes the blocked threads and the wait-for
	// cycle when Verdict is VerdictDeadlock or VerdictTimeout.
	DeadlockInfo string

	// Outcome is the concatenation of the fragments the program
	// reported via T.Outcome, in emission order.
	Outcome string

	// FinishOrder lists thread names in completion order (threads that
	// failed or were aborted are absent). The multi-outcome benchmark
	// program compares tools on this order, per §4 of the paper.
	FinishOrder []string

	Steps   int64         // scheduling decisions taken (controlled mode)
	Events  int64         // events emitted
	Threads int           // threads created (including main)
	Elapsed time.Duration // wall-clock duration of the run

	// Schedule is the recorded sequence of scheduling decisions
	// (controlled mode only) for replay; nil in native mode.
	Schedule []ThreadID

	// Diverged is set by the replay strategy when the recorded
	// schedule could not be followed.
	Diverged bool
}

// String summarizes the result in one line.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s steps=%d events=%d threads=%d", r.Verdict, r.Steps, r.Events, r.Threads)
	if r.Failure != nil {
		fmt.Fprintf(&b, " failure=%q@%s", r.Failure.Msg, r.Failure.Loc.Key())
	}
	if r.DeadlockInfo != "" {
		fmt.Fprintf(&b, " deadlock=%q", r.DeadlockInfo)
	}
	if r.Outcome != "" {
		fmt.Fprintf(&b, " outcome=%q", r.Outcome)
	}
	return b.String()
}

// BugSignature is the canonical deduplication key for a buggy result:
// failures key on their message and program location, deadlocks on the
// canonical wait-for description, and anything else on the verdict
// alone. Exploration and fuzzing both deduplicate their bug sets with
// it, so "the same bug found twice" counts once everywhere.
func BugSignature(r *Result) string {
	switch {
	case r.Failure != nil:
		return "fail:" + r.Failure.Msg + "@" + r.Failure.Loc.Key()
	case r.Verdict == VerdictDeadlock:
		return "deadlock:" + r.DeadlockInfo
	default:
		return r.Verdict.String()
	}
}

// failPanic is the panic payload used by both runtimes to unwind a
// thread whose oracle failed.
type failPanic struct{ f Failure }

// abortPanic is the panic payload used to unwind threads when a run is
// torn down (after a failure, deadlock, or step-limit hit).
type abortPanic struct{}

// FailNow panics with a failure payload; runtimes recover it in their
// thread wrappers. It is exported for use by the runtime packages only.
func FailNow(f Failure) {
	panic(failPanic{f})
}

// AbortNow panics with the abort payload; runtimes recover it in their
// thread wrappers. It is exported for use by the runtime packages only.
func AbortNow() {
	panic(abortPanic{})
}

// RecoverThread classifies a recovered panic value from a thread
// wrapper: it returns the failure (if the thread failed an oracle),
// aborted=true (if the run was torn down), or re-panics for foreign
// panics after wrapping them in a Failure so harness bugs and program
// panics (nil derefs etc.) still count as failed runs.
func RecoverThread(rec any, tid ThreadID) (fail *Failure, aborted bool) {
	switch p := rec.(type) {
	case nil:
		return nil, false
	case failPanic:
		return &p.f, false
	case abortPanic:
		return nil, true
	default:
		return &Failure{
			Msg:    fmt.Sprintf("panic: %v", p),
			Thread: tid,
		}, false
	}
}
