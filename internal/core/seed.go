package core

// MixSeed derives a stream seed from a master seed and a stream index
// (splitmix64 finalizer), so workers, phases and per-run strategies
// get decorrelated but reproducible rngs. The fuzzer and the campaign
// finders share this one derivation: fixed-seed reproducibility across
// tools rests on them never diverging.
func MixSeed(seed, stream int64) int64 {
	z := uint64(seed) + uint64(stream)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
