package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
)

// ThreadID identifies a virtual thread within a single run. Thread 0 is
// always the main thread (the program body); children are numbered in
// spawn order, which both runtimes keep deterministic.
type ThreadID int32

// NoThread is the ThreadID used when no thread applies.
const NoThread ThreadID = -1

// ObjectID identifies a synchronization object or shared variable
// within a single run. IDs are assigned in creation order, so they are
// stable across replays of the same program.
type ObjectID int64

// NoObject is the ObjectID used for events that concern no object
// (yield, sleep, fork, join, end).
const NoObject ObjectID = 0

// Location is a source position of an instrumented operation: the
// program point the paper requires every trace record to carry.
type Location struct {
	File string
	Line int
	Fn   string
}

// String formats the location as "file:line (fn)". The zero Location
// formats as "?".
func (l Location) String() string {
	if l.File == "" {
		return "?"
	}
	if l.Fn == "" {
		return fmt.Sprintf("%s:%d", l.File, l.Line)
	}
	return fmt.Sprintf("%s:%d (%s)", l.File, l.Line, l.Fn)
}

// Key returns a compact "file:line" form used as a map key by coverage
// models and noise statistics.
func (l Location) Key() string {
	return fmt.Sprintf("%s:%d", l.File, l.Line)
}

// Event is one instrumented operation. It is the single interchange
// format of the framework: runtimes produce events, every tool consumes
// them, and the trace package serializes them. The fields correspond to
// the record contents the paper prescribes: "the location in the
// program from which it was called, what was instrumented, which
// variable was touched, thread name, if it is a read or write".
type Event struct {
	Seq    int64    // global sequence number within the run (total order)
	Thread ThreadID // acting thread
	Op     Op       // operation kind
	Obj    ObjectID // object acted on (NoObject if none)
	Name   string   // symbolic object name, or message for OpFail/OpOutcome
	Value  int64    // value read/written, child/join target, sleep ns
	Flags  Flags    // modifiers (e.g. atomic access)
	Loc    Location // program point of the operation

	// NameID and LocID are the interned handles for Name and Loc.Key()
	// (see intern.go): hot-path consumers key their maps on them
	// instead of hashing strings. 0 means "not interned" — producers
	// are not required to fill them (the native runtime does not), and
	// consumers that need a handle intern on demand. They are runtime
	// acceleration only and are never serialized.
	NameID uint32
	LocID  uint32
}

// Flags carries event modifiers.
type Flags uint8

// Event flag bits.
const (
	// FlagAtomic marks a variable access with release/acquire ordering
	// (a Java-volatile-style variable). Happens-before race detectors
	// treat such accesses as synchronization; lockset detectors that
	// ignore the flag produce the false alarms discussed in §2.2 of the
	// paper.
	FlagAtomic Flags = 1 << iota
)

// Atomic reports whether FlagAtomic is set.
func (f Flags) Atomic() bool { return f&FlagAtomic != 0 }

// String renders the event in the one-line form used by logs and the
// textual trace dump.
func (e *Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d t%d %s", e.Seq, e.Thread, e.Op)
	if e.Name != "" {
		fmt.Fprintf(&b, " %s", e.Name)
	}
	switch e.Op {
	case OpRead, OpWrite, OpFork, OpJoin, OpSleep:
		fmt.Fprintf(&b, " val=%d", e.Value)
	}
	if e.Loc.File != "" {
		fmt.Fprintf(&b, " @ %s", e.Loc.Key())
	}
	return b.String()
}

// locCache caches PC-to-(Location, handle) resolution; probes resolve
// their call site on every event and resolution via
// runtime.CallersFrames is comparatively expensive.
var locCache sync.Map // uintptr -> cachedLoc

type cachedLoc struct {
	loc Location
	id  uint32
}

// CallerLocation resolves the source location skip+1 frames above the
// caller. Runtimes use it at probe sites; the skip count hops over the
// runtime's own wrapper frames so the reported location is inside the
// benchmark program.
func CallerLocation(skip int) Location {
	loc, _ := CallerLocationID(skip + 1)
	return loc
}

// CallerLocationID is CallerLocation plus the interned program-point
// handle (InternLocKey of the location), resolved through the same
// per-PC cache so the steady-state cost is one stack hop and one map
// load.
func CallerLocationID(skip int) (Location, uint32) {
	var pcs [1]uintptr
	if runtime.Callers(skip+2, pcs[:]) == 0 {
		return Location{}, 0
	}
	pc := pcs[0]
	if c, ok := locCache.Load(pc); ok {
		cl := c.(cachedLoc)
		return cl.loc, cl.id
	}
	frames := runtime.CallersFrames(pcs[:])
	fr, _ := frames.Next()
	loc := Location{File: trimPath(fr.File), Line: fr.Line, Fn: trimFn(fr.Function)}
	cl := cachedLoc{loc: loc, id: InternLocKey(loc.File, loc.Line)}
	locCache.Store(pc, cl)
	return cl.loc, cl.id
}

// trimPath shortens an absolute file path to its last two path
// elements, which keeps traces portable across checkouts.
func trimPath(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i < 0 {
		return p
	}
	j := strings.LastIndexByte(p[:i], '/')
	if j < 0 {
		return p
	}
	return p[j+1:]
}

// trimFn strips the package path prefix from a fully qualified function
// name, keeping "pkg.Func".
func trimFn(fn string) string {
	if i := strings.LastIndexByte(fn, '/'); i >= 0 {
		fn = fn[i+1:]
	}
	return fn
}
