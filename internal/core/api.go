package core

import "time"

// T is the thread context handed to every benchmark-program thread. All
// concurrency operations take the calling thread's T explicitly (there
// is no goroutine-local storage in Go), which also makes every
// instrumented operation syntactically visible — the property the
// paper's source-level instrumentor relies on.
//
// Both runtimes implement T: internal/sched gives a deterministic,
// controlled scheduler (for replay and systematic exploration), and
// internal/native runs on real goroutines (for ConTest-style noise
// making against the live Go scheduler).
type T interface {
	// ID returns the virtual thread id (0 for the program body).
	ID() ThreadID
	// Name returns the thread's symbolic name.
	Name() string

	// Go spawns a new virtual thread running fn and returns a handle
	// that can be joined. Spawn order determines thread ids.
	Go(name string, fn func(t T)) Handle

	// Yield is a pure scheduling point: it gives the scheduler (or the
	// noise maker) an opportunity to switch threads.
	Yield()
	// Sleep suspends the thread for d. The controlled runtime uses
	// virtual time, so sleeps are deterministic and free; the native
	// runtime really sleeps.
	Sleep(d time.Duration)

	// Assert records a failing oracle when cond is false and aborts the
	// run. Benchmark programs use Assert as their bug oracle.
	Assert(cond bool, format string, args ...any)
	// Failf unconditionally records a failing oracle and aborts the run.
	Failf(format string, args ...any)
	// Outcome appends a fragment to the run's outcome string. The
	// multi-outcome benchmark program compares tools on the
	// distribution of these strings.
	Outcome(format string, args ...any)

	// NewMutex creates a named mutex.
	NewMutex(name string) Mutex
	// NewRWMutex creates a named reader/writer mutex.
	NewRWMutex(name string) RWMutex
	// NewCond creates a named condition variable tied to mu.
	NewCond(name string, mu Mutex) Cond
	// NewInt creates a named shared integer variable. Individual
	// accesses are indivisible (as in the JVM), so races on an IntVar
	// are logical (lost updates, stale reads), not torn reads.
	NewInt(name string, init int64) IntVar
	// NewAtomicInt creates a shared integer whose accesses additionally
	// carry release/acquire ordering, like a Java volatile. Programs
	// use atomics to build user-level synchronization; race detectors
	// differ in whether they understand it (§2.2 of the paper).
	NewAtomicInt(name string, init int64) IntVar
	// NewRef creates a named shared reference cell holding any value.
	NewRef(name string) RefVar
	// NewWaitGroup creates a named waitgroup with sync.WaitGroup
	// semantics (the rewrite layer maps sync.WaitGroup here).
	NewWaitGroup(name string) WaitGroup
	// NewChan creates a named channel with capacity cap (0 =
	// rendezvous). Values are carried as any; the rewrite layer maps
	// make(chan T, n) here and generates typed accessor shims.
	NewChan(name string, cap int) Chan

	// Select blocks until one of the cases can proceed and executes it,
	// returning the chosen case index, the received value (nil for send
	// cases) and the receive's ok flag (true for send cases). Ties are
	// broken deterministically: the lowest-index ready case wins, so a
	// schedule fully determines the choice. Default cases and send
	// cases on rendezvous channels are not supported.
	Select(cases []SelectCase) (chosen int, recv any, ok bool)
}

// Handle allows waiting for a spawned thread.
type Handle interface {
	// Join blocks the calling thread until the spawned thread's body
	// has returned.
	Join(t T)
	// TID returns the spawned thread's id.
	TID() ThreadID
}

// Mutex is a non-reentrant mutual-exclusion lock.
type Mutex interface {
	Lock(t T)
	Unlock(t T)
	// TryLock acquires the lock if it is free and reports success.
	TryLock(t T) bool
	// OID returns the object's identity for event correlation.
	OID() ObjectID
}

// RWMutex is a reader/writer lock: multiple readers or one writer.
type RWMutex interface {
	Lock(t T)
	Unlock(t T)
	RLock(t T)
	RUnlock(t T)
	OID() ObjectID
}

// Cond is a condition variable with Java monitor semantics: Wait
// releases the mutex and suspends the thread; Signal wakes one waiter
// (it is lost if nobody is waiting); Broadcast wakes all waiters. The
// caller must hold the associated mutex for all three operations.
type Cond interface {
	Wait(t T)
	Signal(t T)
	Broadcast(t T)
	OID() ObjectID
}

// IntVar is a shared integer variable. Load/Store/Add/CompareAndSwap
// are each indivisible, but sequences of them are not — which is where
// the benchmark's races and atomicity violations live.
type IntVar interface {
	Load(t T) int64
	Store(t T, v int64)
	// Add atomically adds delta and returns the new value.
	Add(t T, delta int64) int64
	// CompareAndSwap atomically replaces old with new and reports
	// whether it did.
	CompareAndSwap(t T, old, new int64) bool
	OID() ObjectID
	// IsAtomic reports whether the variable was created with
	// NewAtomicInt, i.e. carries release/acquire ordering.
	IsAtomic() bool
}

// RefVar is a shared reference cell.
type RefVar interface {
	Load(t T) any
	Store(t T, v any)
	OID() ObjectID
}

// WaitGroup mirrors sync.WaitGroup: Add moves the counter, Wait blocks
// until it reaches zero. Driving the counter negative is a failing
// oracle, as in the standard library.
type WaitGroup interface {
	Add(t T, delta int)
	Done(t T)
	Wait(t T)
	OID() ObjectID
}

// Chan is a Go channel under instrumentation: Send/Recv/Close follow
// channel semantics (rendezvous when the capacity is 0, send on closed
// and double close are failing oracles, Recv on a closed drained
// channel returns (nil, false)).
type Chan interface {
	Send(t T, v any)
	// Recv returns the received value and true, or (nil, false) once the
	// channel is closed and drained.
	Recv(t T) (any, bool)
	Close(t T)
	// Cap returns the channel's buffer capacity.
	Cap() int
	OID() ObjectID
}

// SelectCase is one arm of T.Select: a receive from Ch, or — when Send
// is set — a send of Val to Ch.
type SelectCase struct {
	Ch   Chan
	Send bool
	Val  any
}
