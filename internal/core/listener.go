package core

// Listener observes the event stream of a run. Every dynamic
// technology in the framework — noise statistics, race detection,
// deadlock detection, replay recording, coverage, tracing — is a
// Listener; this is the paper's "standard interface" through which a
// researcher plugs one component into the stock pipeline.
//
// Events are delivered in a total order (the runtimes serialize
// emission), and the *Event is only valid for the duration of the call:
// listeners that retain events must copy them.
type Listener interface {
	OnEvent(ev *Event)
}

// RunObserver is an optional extension for listeners that need run
// boundaries (e.g. per-run coverage snapshots, trace headers).
type RunObserver interface {
	RunStart(info RunInfo)
	RunEnd(res *Result)
}

// RunInfo describes a run to observers before any event is emitted.
type RunInfo struct {
	Program string // program name, if known
	Mode    string // "controlled" or "native"
	Seed    int64  // scheduler/noise seed
}

// ListenerFunc adapts a function to the Listener interface.
type ListenerFunc func(ev *Event)

// OnEvent calls f(ev).
func (f ListenerFunc) OnEvent(ev *Event) { f(ev) }

// OpMask is a bitset over Op values, used to declare which event
// classes a listener subscribes to.
type OpMask uint32

// MaskOf builds a mask from operation kinds.
func MaskOf(ops ...Op) OpMask {
	var m OpMask
	for _, o := range ops {
		m |= 1 << o
	}
	return m
}

// AllOps is the mask subscribing to every event class.
const AllOps = OpMask(1<<numOps) - 1

// Has reports whether op is in the mask.
func (m OpMask) Has(op Op) bool { return m&(1<<op) != 0 }

// OpFilter is an optional Listener extension: a listener that only
// consumes certain event classes declares them, and runtimes skip the
// fan-out call (probe construction stays, since strategies may still
// observe the event) for classes no attached listener wants. Listeners
// without the method are assumed to want everything.
type OpFilter interface {
	WantOps() OpMask
}

// LocationIndifferent is an optional Listener extension mirroring the
// strategy-side location gate: capturing the source location of every
// instrumented operation costs a stack walk per probe, so the
// controlled runtime turns capture on whenever any listener is
// attached — unless every attached listener declares, by implementing
// this interface with NeedsLocations() false, that it never reads
// Event.Loc/LocID. Listeners without the method are assumed to need
// locations. The state-hashing listener of the exploration engine's
// reduction layer is the motivating case: it observes every event on
// the hottest search path and must not reinstate the per-probe stack
// walk the runner pooling work removed.
type LocationIndifferent interface {
	NeedsLocations() bool
}

// MultiListener fans one event stream out to several listeners in
// order.
type MultiListener []Listener

// NeedLocations reports whether any listener in m may read event
// locations (see LocationIndifferent). An empty MultiListener needs
// none.
func (m MultiListener) NeedLocations() bool {
	for _, l := range m {
		li, ok := l.(LocationIndifferent)
		if !ok || li.NeedsLocations() {
			return true
		}
	}
	return false
}

// OnEvent delivers ev to each listener in order.
func (m MultiListener) OnEvent(ev *Event) {
	for _, l := range m {
		l.OnEvent(ev)
	}
}

// WantMask is the union of the listeners' subscriptions: the runtime
// skips OnEvent fan-out entirely for event classes outside it. An
// empty MultiListener wants nothing.
func (m MultiListener) WantMask() OpMask {
	var mask OpMask
	for _, l := range m {
		if f, ok := l.(OpFilter); ok {
			mask |= f.WantOps()
		} else {
			mask = AllOps
		}
	}
	return mask
}

// StartRun notifies every RunObserver in m.
func (m MultiListener) StartRun(info RunInfo) {
	for _, l := range m {
		if ro, ok := l.(RunObserver); ok {
			ro.RunStart(info)
		}
	}
}

// EndRun notifies every RunObserver in m.
func (m MultiListener) EndRun(res *Result) {
	for _, l := range m {
		if ro, ok := l.(RunObserver); ok {
			ro.RunEnd(res)
		}
	}
}
