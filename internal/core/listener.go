package core

// Listener observes the event stream of a run. Every dynamic
// technology in the framework — noise statistics, race detection,
// deadlock detection, replay recording, coverage, tracing — is a
// Listener; this is the paper's "standard interface" through which a
// researcher plugs one component into the stock pipeline.
//
// Events are delivered in a total order (the runtimes serialize
// emission), and the *Event is only valid for the duration of the call:
// listeners that retain events must copy them.
type Listener interface {
	OnEvent(ev *Event)
}

// RunObserver is an optional extension for listeners that need run
// boundaries (e.g. per-run coverage snapshots, trace headers).
type RunObserver interface {
	RunStart(info RunInfo)
	RunEnd(res *Result)
}

// RunInfo describes a run to observers before any event is emitted.
type RunInfo struct {
	Program string // program name, if known
	Mode    string // "controlled" or "native"
	Seed    int64  // scheduler/noise seed
}

// ListenerFunc adapts a function to the Listener interface.
type ListenerFunc func(ev *Event)

// OnEvent calls f(ev).
func (f ListenerFunc) OnEvent(ev *Event) { f(ev) }

// MultiListener fans one event stream out to several listeners in
// order.
type MultiListener []Listener

// OnEvent delivers ev to each listener in order.
func (m MultiListener) OnEvent(ev *Event) {
	for _, l := range m {
		l.OnEvent(ev)
	}
}

// StartRun notifies every RunObserver in m.
func (m MultiListener) StartRun(info RunInfo) {
	for _, l := range m {
		if ro, ok := l.(RunObserver); ok {
			ro.RunStart(info)
		}
	}
}

// EndRun notifies every RunObserver in m.
func (m MultiListener) EndRun(res *Result) {
	for _, l := range m {
		if ro, ok := l.(RunObserver); ok {
			ro.RunEnd(res)
		}
	}
}
