package core

import (
	"strconv"
	"sync"
)

// The interners below give the hot paths integer handles for the two
// string vocabularies every run re-uses: symbolic object names
// ("balance", "forks[0]") and program points ("prog_races.go:57").
// Both vocabularies are tiny and stable — a benchmark program names a
// handful of objects and touches a handful of source lines — while the
// event stream repeats them millions of times per search. Interning
// turns the per-event map keys consumers build (coverage trackers in
// particular) from string hashing and fmt.Sprintf into integer
// compares, and it is global so handles stay comparable across runs,
// workers and runtimes (the property cumulative trackers need).
//
// Handle 0 is reserved as "not interned": event producers that do not
// intern (the native runtime, hand-built test events) leave the ID
// fields zero and consumers intern on demand.

// interner is one string table: read-mostly, guarded by an RWMutex.
type interner struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string // index id-1 -> string
}

func (in *interner) intern(s string) uint32 {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[s]; ok {
		return id
	}
	if in.ids == nil {
		in.ids = make(map[string]uint32)
	}
	in.strs = append(in.strs, s)
	id = uint32(len(in.strs))
	in.ids[s] = id
	return id
}

func (in *interner) lookup(s string) (uint32, bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	id, ok := in.ids[s]
	return id, ok
}

func (in *interner) resolve(id uint32) string {
	if id == 0 {
		return ""
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	if int(id) > len(in.strs) {
		return ""
	}
	return in.strs[id-1]
}

var (
	nameTable interner // symbolic object names
	locTable  interner // "file:line" program-point keys
)

// InternName returns the stable handle for a symbolic object name.
// The empty string interns to 0 ("no name").
func InternName(s string) uint32 {
	if s == "" {
		return 0
	}
	return nameTable.intern(s)
}

// LookupName returns the handle a name was interned under, without
// interning it; ok is false when the name has never been seen.
func LookupName(s string) (uint32, bool) { return nameTable.lookup(s) }

// InternedName resolves a name handle back to the string ("" for 0 or
// unknown handles).
func InternedName(id uint32) string { return nameTable.resolve(id) }

// InternLocKey returns the stable handle for the "file:line" form of a
// program point — the same string Location.Key formats. Two call sites
// on the same source line share a handle, exactly as they share a Key.
func InternLocKey(file string, line int) uint32 {
	if file == "" {
		return 0
	}
	return locTable.intern(file + ":" + strconv.Itoa(line))
}

// InternedLocKey resolves a program-point handle back to its
// "file:line" key ("" for 0 or unknown handles).
func InternedLocKey(id uint32) string { return locTable.resolve(id) }
