// Package core defines the shared vocabulary of the mtbench framework:
// the event model emitted by instrumented concurrency operations, the
// thread-context API that benchmark programs are written against, and
// the listener interface through which every testing technology (noise
// makers, race detectors, replay, coverage, exploration, tracing)
// observes executions.
//
// The package corresponds to the "open APIs" goal of Havelund, Stoller
// and Ur (PADTAD 2003): a researcher writes one component against these
// interfaces and composes it with the stock implementations of all the
// others.
package core

import "fmt"

// Op identifies the kind of concurrency-relevant operation an Event
// describes. The set mirrors the instrumentation points the paper's
// instrumentor exposes: shared-variable accesses, lock operations,
// condition-variable operations, thread lifecycle, and scheduling hints.
type Op uint8

// Operation kinds. The numeric values are part of the binary trace
// format and must not be reordered; add new kinds at the end.
const (
	OpInvalid Op = iota

	// Thread lifecycle.
	OpFork // parent spawned a thread; Value = child thread id
	OpJoin // thread joined another; Value = joined thread id
	OpEnd  // thread body returned

	// Shared-variable accesses. Value carries the value read/written
	// for integer variables.
	OpRead
	OpWrite

	// Mutex operations. OpLock is emitted after the lock is acquired;
	// OpBlock is emitted when an acquire attempt finds the lock held
	// (used by synchronization-contention coverage).
	OpLock
	OpUnlock
	OpBlock

	// Reader/writer lock operations.
	OpRLock
	OpRUnlock

	// Condition-variable operations.
	OpWait      // thread started waiting (mutex released)
	OpAwake     // thread woke from Wait (before reacquiring the mutex)
	OpSignal    // Signal/notify
	OpBroadcast // Broadcast/notifyAll

	// Scheduling hints.
	OpYield
	OpSleep // Value = requested duration in nanoseconds

	// Outcome reporting (used by the multi-outcome benchmark program).
	OpOutcome

	// Assertion failure observed; Value is unused, Name carries the
	// message. Emitted before the run is torn down.
	OpFail

	// WaitGroup operations. OpWGAdd covers Add and Done (Value = counter
	// after the delta); OpWGWait is emitted when Wait returns.
	OpWGAdd
	OpWGWait

	// Channel operations. OpChanSend's Value is the number of buffered
	// elements after the send (0 for a rendezvous handoff); OpChanRecv's
	// Value is 1 for a received element and 0 for a closed-channel zero
	// receive.
	OpChanSend
	OpChanRecv
	OpChanClose

	// OpSelect is the pending-operation kind a thread publishes while
	// choosing among several channel cases. It is never emitted as an
	// event (the chosen case emits its own send/recv); it exists so the
	// reduction layer sees a multi-object operation and stays
	// conservative (see Footprint.Commutes).
	OpSelect

	numOps // sentinel; keep last
)

var opNames = [...]string{
	OpInvalid:   "invalid",
	OpFork:      "fork",
	OpJoin:      "join",
	OpEnd:       "end",
	OpRead:      "read",
	OpWrite:     "write",
	OpLock:      "lock",
	OpUnlock:    "unlock",
	OpBlock:     "block",
	OpRLock:     "rlock",
	OpRUnlock:   "runlock",
	OpWait:      "wait",
	OpAwake:     "awake",
	OpSignal:    "signal",
	OpBroadcast: "broadcast",
	OpYield:     "yield",
	OpSleep:     "sleep",
	OpOutcome:   "outcome",
	OpFail:      "fail",
	OpWGAdd:     "wgadd",
	OpWGWait:    "wgwait",
	OpChanSend:  "send",
	OpChanRecv:  "recv",
	OpChanClose: "close",
	OpSelect:    "select",
}

// String returns the lower-case mnemonic used in traces and reports.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOp is the inverse of Op.String. It reports an error for unknown
// mnemonics so trace readers can reject corrupted input.
func ParseOp(s string) (Op, error) {
	for i, n := range opNames {
		if n == s && Op(i) != OpInvalid {
			return Op(i), nil
		}
	}
	return OpInvalid, fmt.Errorf("core: unknown op %q", s)
}

// NumOps is the number of defined operation kinds, for sizing tables
// indexed by Op.
const NumOps = int(numOps)

// IsAccess reports whether the op is a shared-variable access.
func (o Op) IsAccess() bool { return o == OpRead || o == OpWrite }

// IsSync reports whether the op is a synchronization operation
// (lock, unlock, rlock, runlock, wait, awake, signal, broadcast,
// waitgroup and channel operations).
func (o Op) IsSync() bool {
	switch o {
	case OpLock, OpUnlock, OpBlock, OpRLock, OpRUnlock, OpWait, OpAwake, OpSignal, OpBroadcast,
		OpWGAdd, OpWGWait, OpChanSend, OpChanRecv, OpChanClose, OpSelect:
		return true
	}
	return false
}
