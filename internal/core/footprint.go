package core

// Footprint is the reduction layer's view of one pending operation:
// what kind of operation it is and which object it touches, named by
// the interned handle the hot paths already carry (Event.NameID /
// PendingOp.NameID). Two footprints commute when executing them in
// either order from the same state reaches the same state — the
// independence relation dynamic partial-order reduction, sleep sets
// and schedule canonicalization all share.
//
// The relation is deliberately conservative: it may declare dependent
// operations that actually commute (costing pruning, never soundness),
// and it must never declare independent a pair whose order can be
// observed. Obj == 0 means "no interned name": all unnamed objects
// alias one another and are therefore treated as the same object,
// which is the conservative direction.
type Footprint struct {
	Op  Op
	Obj uint32
}

// Commutes reports whether the two operations are independent: they
// can be swapped at adjacent schedule positions without changing the
// resulting state or either thread's behaviour.
//
//   - Invalid footprints (a thread that has not yet published a pending
//     operation) are dependent with everything.
//   - Fork and Join are dependent with everything: forking changes the
//     thread population (and thread-id assignment), joining observes a
//     thread's completion.
//   - Select is dependent with everything: its footprint names at most
//     one of the several channels it may touch, so no per-object
//     independence claim about it is sound.
//   - Yield and Sleep touch no shared object and commute with
//     everything.
//   - Operations on different objects commute — including sends and
//     receives on different channels and waitgroup operations against
//     unrelated objects.
//   - On the same object, only two reads commute; every
//     synchronization operation (lock, unlock, wait, signal, send,
//     recv, close, wgadd, wgwait, ...) conflicts with every other
//     operation on its object.
func (a Footprint) Commutes(b Footprint) bool {
	if a.Op == OpInvalid || b.Op == OpInvalid {
		return false
	}
	if a.Op == OpFork || a.Op == OpJoin || b.Op == OpFork || b.Op == OpJoin {
		return false
	}
	if a.Op == OpSelect || b.Op == OpSelect {
		return false
	}
	if a.Op == OpYield || a.Op == OpSleep || b.Op == OpYield || b.Op == OpSleep {
		return true
	}
	if a.Obj != b.Obj {
		return true
	}
	return a.Op == OpRead && b.Op == OpRead
}

// Packed folds the footprint into one comparable word (op in the high
// bits, object handle in the low), the representation the reduction
// layer's summaries and the fuzzer's canonical forms store.
func (a Footprint) Packed() uint64 {
	return uint64(a.Op)<<32 | uint64(a.Obj)
}

// UnpackFootprint is the inverse of Footprint.Packed.
func UnpackFootprint(p uint64) Footprint {
	return Footprint{Op: Op(p >> 32), Obj: uint32(p)}
}

// CommutesPacked is Commutes over packed footprints.
func CommutesPacked(a, b uint64) bool {
	return UnpackFootprint(a).Commutes(UnpackFootprint(b))
}

// HashOffset and FoldHash are the shared word-level FNV-1a fold used
// by every reduction-layer hash (the exploration engine's canonical-
// state chains, the fuzzer's canonical-form keys): one definition, so
// the constants cannot drift between consumers.
const HashOffset uint64 = 14695981039346656037

// FoldHash folds one word into an FNV-1a hash state.
func FoldHash(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}
