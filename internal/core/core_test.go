package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStringParseRoundtrip(t *testing.T) {
	for op := OpFork; op < Op(NumOps); op++ {
		name := op.String()
		back, err := ParseOp(name)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if back != op {
			t.Fatalf("roundtrip %v -> %q -> %v", op, name, back)
		}
	}
	if _, err := ParseOp("frobnicate"); err == nil {
		t.Fatal("bad op parsed")
	}
	if _, err := ParseOp("invalid"); err == nil {
		t.Fatal("the invalid sentinel must not parse")
	}
}

func TestOpClassification(t *testing.T) {
	if !OpRead.IsAccess() || !OpWrite.IsAccess() || OpLock.IsAccess() {
		t.Fatal("IsAccess")
	}
	for _, op := range []Op{OpLock, OpUnlock, OpBlock, OpRLock, OpRUnlock, OpWait, OpAwake, OpSignal, OpBroadcast} {
		if !op.IsSync() {
			t.Fatalf("%v not sync", op)
		}
	}
	for _, op := range []Op{OpRead, OpWrite, OpFork, OpJoin, OpYield, OpSleep, OpFail} {
		if op.IsSync() {
			t.Fatalf("%v wrongly sync", op)
		}
	}
}

func TestLocationString(t *testing.T) {
	var zero Location
	if zero.String() != "?" {
		t.Fatalf("zero location = %q", zero.String())
	}
	l := Location{File: "pkg/x.go", Line: 12, Fn: "pkg.body"}
	if l.String() != "pkg/x.go:12 (pkg.body)" {
		t.Fatalf("loc = %q", l.String())
	}
	if l.Key() != "pkg/x.go:12" {
		t.Fatalf("key = %q", l.Key())
	}
}

func TestCallerLocation(t *testing.T) {
	loc := CallerLocation(0)
	if !strings.HasSuffix(loc.File, "core/core_test.go") {
		t.Fatalf("file = %q", loc.File)
	}
	if loc.Line == 0 || !strings.Contains(loc.Fn, "TestCallerLocation") {
		t.Fatalf("loc = %+v", loc)
	}
	// Cached second resolution must agree.
	if loc2 := CallerLocation(0); loc2.File != loc.File {
		t.Fatalf("cache mismatch: %v vs %v", loc, loc2)
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Seq: 7, Thread: 2, Op: OpWrite, Name: "bal", Value: 42,
		Loc: Location{File: "a/b.go", Line: 3}}
	s := ev.String()
	for _, want := range []string{"#7", "t2", "write", "bal", "val=42", "a/b.go:3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
}

func TestFlags(t *testing.T) {
	var f Flags
	if f.Atomic() {
		t.Fatal("zero flags atomic")
	}
	if !(f | FlagAtomic).Atomic() {
		t.Fatal("atomic flag not detected")
	}
}

func TestVerdicts(t *testing.T) {
	if VerdictPass.Bug() {
		t.Fatal("pass counted as bug")
	}
	for _, v := range []Verdict{VerdictFail, VerdictDeadlock, VerdictStepLimit, VerdictTimeout, VerdictDiverged} {
		if !v.Bug() {
			t.Fatalf("%v not a bug", v)
		}
	}
	if VerdictDeadlock.String() != "deadlock" {
		t.Fatalf("verdict string = %q", VerdictDeadlock)
	}
}

func TestMultiListenerOrder(t *testing.T) {
	var got []int
	ml := MultiListener{
		ListenerFunc(func(*Event) { got = append(got, 1) }),
		ListenerFunc(func(*Event) { got = append(got, 2) }),
	}
	ml.OnEvent(&Event{})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("order = %v", got)
	}
}

type obs struct {
	starts, ends int
}

func (o *obs) OnEvent(*Event)   {}
func (o *obs) RunStart(RunInfo) { o.starts++ }
func (o *obs) RunEnd(*Result)   { o.ends++ }

func TestRunObserverDispatch(t *testing.T) {
	o := &obs{}
	ml := MultiListener{o, ListenerFunc(func(*Event) {})}
	ml.StartRun(RunInfo{Program: "p"})
	ml.EndRun(&Result{})
	if o.starts != 1 || o.ends != 1 {
		t.Fatalf("observer: %+v", o)
	}
}

func TestRecoverThreadClassification(t *testing.T) {
	if f, aborted := RecoverThread(nil, 1); f != nil || aborted {
		t.Fatal("nil recover misclassified")
	}
	f, aborted := RecoverThread(failPanic{f: Failure{Msg: "m", Thread: 1}}, 1)
	if f == nil || f.Msg != "m" || aborted {
		t.Fatal("failPanic misclassified")
	}
	if f, aborted := RecoverThread(abortPanic{}, 1); f != nil || !aborted {
		t.Fatal("abortPanic misclassified")
	}
	f, aborted = RecoverThread("boom", 3)
	if f == nil || aborted || !strings.Contains(f.Msg, "boom") || f.Thread != 3 {
		t.Fatalf("foreign panic: %+v aborted=%v", f, aborted)
	}
}

// Property: trimPath keeps at most the last two path elements.
func TestTrimPathProperty(t *testing.T) {
	f := func(parts []string) bool {
		clean := parts[:0]
		for _, p := range parts {
			if p != "" && !strings.ContainsAny(p, "/\x00") {
				clean = append(clean, p)
			}
		}
		if len(clean) == 0 {
			return true
		}
		joined := strings.Join(clean, "/")
		got := trimPath(joined)
		n := strings.Count(got, "/")
		if n > 1 {
			return false
		}
		return strings.HasSuffix(joined, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// maskedListener subscribes to a subset of event classes via OpFilter.
type maskedListener struct {
	mask OpMask
	seen int
}

func (m *maskedListener) OnEvent(*Event)  { m.seen++ }
func (m *maskedListener) WantOps() OpMask { return m.mask }

// TestWantMask pins the subscription-mask algebra runtimes use to skip
// listener fan-out: filtered listeners union their masks, any
// unfiltered listener widens to AllOps, and an empty listener set
// wants nothing.
func TestWantMask(t *testing.T) {
	if got := (MultiListener{}).WantMask(); got != 0 {
		t.Fatalf("empty MultiListener mask = %b, want 0", got)
	}
	a := &maskedListener{mask: MaskOf(OpRead, OpWrite)}
	b := &maskedListener{mask: MaskOf(OpLock)}
	m := MultiListener{a, b}.WantMask()
	for _, op := range []Op{OpRead, OpWrite, OpLock} {
		if !m.Has(op) {
			t.Fatalf("mask %b missing %v", m, op)
		}
	}
	if m.Has(OpYield) || m.Has(OpFork) {
		t.Fatalf("mask %b includes unsubscribed ops", m)
	}
	plain := ListenerFunc(func(*Event) {})
	if got := (MultiListener{a, plain}).WantMask(); got != AllOps {
		t.Fatalf("unfiltered listener should widen mask to AllOps, got %b", got)
	}
}

// TestInterners pins the handle tables: stable handles for repeated
// strings, 0 for empty, lookup-without-intern, and exact round trips
// (coverage reconstructs its legacy string keys from these).
func TestInterners(t *testing.T) {
	if id := InternName(""); id != 0 {
		t.Fatalf("empty name interned to %d, want 0", id)
	}
	id1 := InternName("core-test-var")
	id2 := InternName("core-test-var")
	if id1 == 0 || id1 != id2 {
		t.Fatalf("unstable name handles: %d vs %d", id1, id2)
	}
	if got := InternedName(id1); got != "core-test-var" {
		t.Fatalf("round trip = %q", got)
	}
	if _, ok := LookupName("never-interned-name"); ok {
		t.Fatal("LookupName invented a handle")
	}
	lid := InternLocKey("dir/file.go", 42)
	if lid == 0 || InternLocKey("dir/file.go", 42) != lid {
		t.Fatal("unstable location handles")
	}
	if got, want := InternedLocKey(lid), "dir/file.go:42"; got != want {
		t.Fatalf("loc round trip = %q, want %q", got, want)
	}
	if InternLocKey("dir/file.go", 43) == lid {
		t.Fatal("distinct lines share a handle")
	}
}
