// Package cloning implements load testing by cloning (§2.3): take a
// (conceptually sequential) test, run N copies of it simultaneously,
// and interpret each clone's expected result separately. The paper
// calls this "the most commonly used testing technique aimed at
// finding intermittent bugs" — contention is almost guaranteed because
// every clone touches the same resources — and notes it is a black-box
// technique that composes freely with noise or coverage, which is
// exactly how the harness treats it: clones are ordinary threads, so
// every dynamic tool applies unchanged.
package cloning

import (
	"fmt"

	"mtbench/internal/core"
	"mtbench/internal/native"
	"mtbench/internal/sched"
)

// Test is a cloneable test: Body receives the clone index so each
// clone can parameterize its inputs and verify its own expected
// results (the paper's "changes that distinguish between the clones").
type Test struct {
	Name string
	// Setup, if non-nil, runs once in the main thread before the
	// clones start and returns shared state passed to every clone.
	Setup func(t core.T) any
	// Body is the test executed by each clone.
	Body func(t core.T, shared any, clone int)
	// Check, if non-nil, runs in the main thread after every clone
	// finished.
	Check func(t core.T, shared any)
}

// wrap builds the program body that runs n clones of the test.
func wrap(test Test, n int) func(core.T) {
	return func(t core.T) {
		var shared any
		if test.Setup != nil {
			shared = test.Setup(t)
		}
		handles := make([]core.Handle, n)
		for i := 0; i < n; i++ {
			i := i
			handles[i] = t.Go(fmt.Sprintf("clone-%d", i), func(ct core.T) {
				test.Body(ct, shared, i)
			})
		}
		for _, h := range handles {
			h.Join(t)
		}
		if test.Check != nil {
			test.Check(t, shared)
		}
	}
}

// Controlled runs n clones under the controlled scheduler.
func Controlled(cfg sched.Config, test Test, n int) *core.Result {
	if cfg.Name == "" {
		cfg.Name = "clone:" + test.Name
	}
	return sched.Run(cfg, wrap(test, n))
}

// Native runs n clones on real goroutines.
func Native(cfg native.Config, test Test, n int) *core.Result {
	if cfg.Name == "" {
		cfg.Name = "clone:" + test.Name
	}
	return native.Run(cfg, wrap(test, n))
}

// Reserve returns the benchmark's canonical cloneable test: each clone
// plays a client reserving one unit from shared stock, and the
// server's check-then-decrement is non-atomic, so enough concurrent
// clones oversell it. One clone is a perfectly healthy sequential test
// — the paper's point about cloning being a black-box way to buy
// contention.
func Reserve(stock int64) Test {
	return Test{
		Name: "reserve",
		Setup: func(t core.T) any {
			return t.NewInt("stock", stock)
		},
		Body: func(t core.T, shared any, clone int) {
			s := shared.(core.IntVar)
			if s.Load(t) > 0 {
				t.Yield() // the check-then-act window
				s.Store(t, s.Load(t)-1)
			}
		},
		Check: func(t core.T, shared any) {
			s := shared.(core.IntVar)
			t.Assert(s.Load(t) >= 0, "oversold: stock=%d", s.Load(t))
		},
	}
}
