package cloning

import (
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/noise"
	"mtbench/internal/sched"
)

// reserveTest is the canonical oversell load test (see Reserve).
var reserveTest = Reserve(5)

// TestSingleCloneNeverFails pins the black-box premise: one clone is a
// passing sequential test.
func TestSingleCloneNeverFails(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res := Controlled(sched.Config{Strategy: sched.Random(seed)}, reserveTest, 1)
		if res.Verdict != core.VerdictPass {
			t.Fatalf("seed %d: single clone failed: %v", seed, res)
		}
	}
}

// TestDetectionRateRisesWithClones measures detection probability at
// several clone counts; more clones must not detect less (the E6
// shape).
func TestDetectionRateRisesWithClones(t *testing.T) {
	rate := func(clones int) float64 {
		found := 0
		const runs = 60
		for seed := int64(0); seed < runs; seed++ {
			st := noise.NewStrategy(nil, noise.NewBernoulli(0.3, noise.KindYield), seed)
			res := Controlled(sched.Config{Strategy: st}, reserveTest, clones)
			if res.Verdict.Bug() {
				found++
			}
		}
		return float64(found) / runs
	}
	r2, r8 := rate(2), rate(8)
	if r8 == 0 {
		t.Fatal("8 clones never detected the oversell bug")
	}
	if r8+0.05 < r2 {
		t.Fatalf("detection fell with clones: 2->%.2f 8->%.2f", r2, r8)
	}
	t.Logf("detection rate: 2 clones=%.2f 8 clones=%.2f", r2, r8)
}

// TestCloneIndexDistinguishes checks clones can use their index for
// per-clone inputs and oracles.
func TestCloneIndexDistinguishes(t *testing.T) {
	test := Test{
		Name: "indexed",
		Setup: func(t core.T) any {
			return t.NewInt("sum", 0)
		},
		Body: func(t core.T, shared any, clone int) {
			shared.(core.IntVar).Add(t, int64(clone))
		},
		Check: func(t core.T, shared any) {
			got := shared.(core.IntVar).Load(t)
			t.Assert(got == 0+1+2+3, "sum=%d", got)
		},
	}
	res := Controlled(sched.Config{Strategy: sched.Random(1)}, test, 4)
	if res.Verdict != core.VerdictPass {
		t.Fatalf("indexed clones failed: %v", res)
	}
}
