// Package replay implements record/playback (§2.2). Two flavors, with
// exactly the trade-off the paper describes:
//
//   - Controlled replay is exact: the controlled scheduler's decision
//     sequence is the complete source of nondeterminism, so replaying
//     it reproduces the run event-for-event. This is the "partial
//     replay ... as if the scheduler is deterministic" of Edelstein et
//     al., made total by the controlled substrate.
//
//   - Native replay is probabilistic: a recorded event order is
//     enforced over the live Go scheduler by gating instrumented
//     operations. Timing the program can't see (I/O, runtime pauses,
//     un-instrumented nondeterminism) can make the schedule
//     infeasible; the enforcer then declares divergence and lets the
//     run continue free. Experiment E3 measures the success
//     probability and record-phase overhead.
package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"mtbench/internal/core"
	"mtbench/internal/native"
	"mtbench/internal/sched"
)

// Point is one recorded scheduling-relevant operation in native mode.
type Point struct {
	Thread core.ThreadID `json:"t"`
	Op     string        `json:"op"`
	Name   string        `json:"name,omitempty"`
}

// Schedule is a saved scenario: everything needed to reproduce a run
// (§2.2: "whenever an error is detected ... a scenario leading to the
// error state is saved").
type Schedule struct {
	Version  int    `json:"version"`
	Program  string `json:"program"`
	Mode     string `json:"mode"` // "controlled" or "native"
	Seed     int64  `json:"seed"`
	Strategy string `json:"strategy,omitempty"`
	// Decisions is the controlled scheduler's per-step thread choice.
	Decisions []core.ThreadID `json:"decisions,omitempty"`
	// Order is the native event order to enforce.
	Order []Point `json:"order,omitempty"`
}

// Save writes the schedule as JSON.
func (s *Schedule) Save(w io.Writer) error {
	s.Version = 1
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// Load reads a schedule saved by Save.
func Load(r io.Reader) (*Schedule, error) {
	var s Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if s.Version != 1 {
		return nil, fmt.Errorf("replay: schedule version %d unsupported", s.Version)
	}
	return &s, nil
}

// SaveFile writes the schedule to a scenario file (the CLI tools'
// shared save path).
func (s *Schedule) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a scenario file written by SaveFile.
func LoadFile(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// RecordControlled runs body under cfg with schedule recording on and
// returns the result together with the replayable schedule.
func RecordControlled(cfg sched.Config, body func(core.T)) (*core.Result, *Schedule) {
	cfg.RecordSchedule = true
	res := sched.Run(cfg, body)
	name := ""
	if cfg.Strategy != nil {
		name = cfg.Strategy.Name()
	}
	return res, &Schedule{
		Program:   cfg.Name,
		Mode:      "controlled",
		Seed:      cfg.Seed,
		Strategy:  name,
		Decisions: res.Schedule,
	}
}

// ReplayControlled re-executes body following the recorded decisions
// exactly. The result's Diverged flag (VerdictDiverged) reports a
// schedule that could not be followed, which for a deterministic
// program indicates the program or framework changed since recording.
func ReplayControlled(s *Schedule, cfg sched.Config, body func(core.T)) *core.Result {
	cfg.Strategy = &sched.FixedSchedule{Decisions: s.Decisions}
	cfg.RecordSchedule = false
	return sched.Run(cfg, body)
}

// Recorder is a listener that captures the native event order for
// later enforcement. Attach it to a native run, then pass
// Recorder.Schedule to NewEnforcer.
type Recorder struct {
	// SyncOnly restricts recording to synchronization and lifecycle
	// operations — the cheap, ConTest-style partial record. With it
	// off, variable accesses are enforced too (higher fidelity, higher
	// overhead).
	SyncOnly bool
	points   []Point
}

// NewRecorder returns a Recorder; syncOnly selects the partial-record
// variant.
func NewRecorder(syncOnly bool) *Recorder {
	return &Recorder{SyncOnly: syncOnly}
}

// OnEvent implements core.Listener. The native runtime serializes
// emission, so no locking is needed.
func (r *Recorder) OnEvent(ev *core.Event) {
	if !r.relevant(ev.Op) {
		return
	}
	r.points = append(r.points, Point{Thread: ev.Thread, Op: ev.Op.String(), Name: ev.Name})
}

func (r *Recorder) relevant(op core.Op) bool {
	if op == core.OpFail || op == core.OpOutcome || op == core.OpEnd {
		return false // emitted outside gating; enforcing them would wedge
	}
	if r.SyncOnly {
		return op.IsSync() || op == core.OpFork || op == core.OpJoin
	}
	return true
}

// Schedule packages the recording.
func (r *Recorder) Schedule(program string, seed int64) *Schedule {
	return &Schedule{Program: program, Mode: "native", Seed: seed, Order: r.points}
}

// Len returns the number of recorded points.
func (r *Recorder) Len() int { return len(r.points) }

// Enforcer implements native.Gate: it blocks each instrumented
// operation until the recorded order says it is that operation's turn.
// If no progress is possible within Timeout the enforcer declares
// divergence and stops enforcing, letting the run complete free-form.
type Enforcer struct {
	Timeout time.Duration // per-wait budget (0 = 1s)

	mu       sync.Mutex
	order    []Point
	ops      map[string]bool // op kinds present in the schedule
	pos      int
	inflight bool
	diverged bool
	advance  chan struct{}
}

// NewEnforcer builds a gate from a recorded native schedule.
func NewEnforcer(s *Schedule) *Enforcer {
	ops := make(map[string]bool)
	for _, p := range s.Order {
		ops[p.Op] = true
	}
	return &Enforcer{order: s.Order, ops: ops, advance: make(chan struct{})}
}

var _ native.Gate = (*Enforcer)(nil)

// matches reports whether the recorded point is the given gate point.
func matches(p Point, g native.GatePoint) bool {
	return p.Thread == g.Thread && p.Name == g.Name && p.Op == g.Op.String()
}

// relevantOp mirrors Recorder.relevant for the enforcing side: op
// kinds the recorder skipped pass through ungated.
func (e *Enforcer) relevantOp(g native.GatePoint) bool {
	return e.ops[g.Op.String()]
}

// Before implements native.Gate.
func (e *Enforcer) Before(g native.GatePoint) error {
	timeout := e.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		e.mu.Lock()
		if e.diverged || e.pos >= len(e.order) {
			e.mu.Unlock()
			return nil
		}
		if !e.relevantOp(g) {
			e.mu.Unlock()
			return nil
		}
		if !e.inflight && matches(e.order[e.pos], g) {
			e.inflight = true
			e.mu.Unlock()
			return nil
		}
		ch := e.advance
		e.mu.Unlock()

		wait := time.Until(deadline)
		if wait <= 0 {
			e.declareDivergence()
			return ErrDiverged
		}
		timer := time.NewTimer(wait)
		select {
		case <-ch:
			timer.Stop()
		case <-timer.C:
			e.declareDivergence()
			return ErrDiverged
		}
	}
}

// After implements native.Gate.
func (e *Enforcer) After(g native.GatePoint) {
	e.mu.Lock()
	if !e.diverged && e.inflight && e.pos < len(e.order) && matches(e.order[e.pos], g) {
		e.pos++
		e.inflight = false
		close(e.advance)
		e.advance = make(chan struct{})
	}
	e.mu.Unlock()
}

// declareDivergence wakes all waiters and disables enforcement.
func (e *Enforcer) declareDivergence() {
	e.mu.Lock()
	if !e.diverged {
		e.diverged = true
		close(e.advance)
		e.advance = make(chan struct{})
	}
	e.mu.Unlock()
}

// Diverged reports whether enforcement was abandoned, and where.
func (e *Enforcer) Diverged() (bool, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.diverged, e.pos
}

// ErrDiverged is returned by Before when the recorded schedule cannot
// be followed.
var ErrDiverged = fmt.Errorf("replay: schedule diverged")
