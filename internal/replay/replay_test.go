package replay

import (
	"bytes"
	"slices"
	"testing"
	"time"

	"mtbench/internal/core"
	"mtbench/internal/native"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

// contended is a program whose outcome depends on the interleaving:
// the final value of x reveals the order of the two read-modify-write
// sequences.
func contended(ct core.T) {
	x := ct.NewInt("x", 0)
	h1 := ct.Go("a", func(wt core.T) {
		v := x.Load(wt)
		wt.Yield()
		x.Store(wt, v*2+1)
	})
	h2 := ct.Go("b", func(wt core.T) {
		v := x.Load(wt)
		wt.Yield()
		x.Store(wt, v*2+2)
	})
	h1.Join(ct)
	h2.Join(ct)
	ct.Outcome("x=%d", x.Load(ct))
}

func TestScheduleSaveLoad(t *testing.T) {
	s := &Schedule{
		Program:   "p",
		Mode:      "controlled",
		Seed:      7,
		Strategy:  "random",
		Decisions: []core.ThreadID{0, 1, 2, 1, 0},
		Order:     []Point{{Thread: 1, Op: "lock", Name: "mu"}},
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != "p" || got.Seed != 7 || len(got.Decisions) != 5 || len(got.Order) != 1 {
		t.Fatalf("loaded = %+v", got)
	}
}

// TestControlledReplayExact records runs under many random seeds and
// checks every replay reproduces the identical outcome — the
// controlled runtime's headline guarantee.
func TestControlledReplayExact(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		res, s := RecordControlled(sched.Config{Strategy: sched.Random(seed), Seed: seed, Name: "contended"}, contended)
		rep := ReplayControlled(s, sched.Config{}, contended)
		if rep.Diverged {
			t.Fatalf("seed %d: replay diverged", seed)
		}
		if rep.Outcome != res.Outcome || rep.Verdict != res.Verdict {
			t.Fatalf("seed %d: replay %q/%v != recorded %q/%v",
				seed, rep.Outcome, rep.Verdict, res.Outcome, res.Verdict)
		}
	}
}

// TestControlledReplayAllPrograms is the whole-repository round trip:
// every benchmark program, recorded under adversarial random
// scheduling, replays to the identical observable result — verdict,
// outcome, failure signature, finish order and step count. This is the
// substrate guarantee exploration and fuzzing stand on, checked on
// every program instead of a hand-picked few.
func TestControlledReplayAllPrograms(t *testing.T) {
	for _, p := range repository.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			body := p.BodyWith(nil)
			for seed := int64(0); seed < 3; seed++ {
				cfg := sched.Config{
					Strategy: sched.Random(seed),
					Seed:     seed,
					Name:     p.Name,
					MaxSteps: 300_000,
				}
				res, s := RecordControlled(cfg, body)
				rep := ReplayControlled(s, sched.Config{Name: p.Name, MaxSteps: 300_000}, body)
				if rep.Diverged {
					t.Fatalf("seed %d: replay diverged after %d decisions", seed, len(s.Decisions))
				}
				if rep.Verdict != res.Verdict || rep.Outcome != res.Outcome || rep.Steps != res.Steps {
					t.Fatalf("seed %d: replay %v/%q/%d != recorded %v/%q/%d",
						seed, rep.Verdict, rep.Outcome, rep.Steps, res.Verdict, res.Outcome, res.Steps)
				}
				if core.BugSignature(rep) != core.BugSignature(res) {
					t.Fatalf("seed %d: replay signature %q != recorded %q",
						seed, core.BugSignature(rep), core.BugSignature(res))
				}
				if !slices.Equal(rep.FinishOrder, res.FinishOrder) {
					t.Fatalf("seed %d: finish order %v != %v", seed, rep.FinishOrder, res.FinishOrder)
				}
			}
		})
	}
}

// TestControlledReplayDivergenceDetected replays a schedule whose
// first decision names a thread that never exists and expects
// VerdictDiverged, not a wrong answer.
func TestControlledReplayDivergenceDetected(t *testing.T) {
	s := &Schedule{Mode: "controlled", Decisions: []core.ThreadID{5}}
	other := func(ct core.T) {
		x := ct.NewInt("x", 0)
		x.Store(ct, 1) // single-threaded: thread 5 is infeasible
	}
	rep := ReplayControlled(s, sched.Config{}, other)
	if rep.Verdict != core.VerdictDiverged {
		t.Fatalf("verdict = %v, want diverged", rep.Verdict)
	}
}

// TestNativeReplayReproducesOutcome records a native run (full-order
// recording) and replays it under the enforcer; with the recorded
// order enforced, the outcome must match.
func TestNativeReplayReproducesOutcome(t *testing.T) {
	rec := NewRecorder(false)
	res := native.Run(native.Config{
		Timeout:   5 * time.Second,
		Listeners: []core.Listener{rec},
	}, contended)
	if res.Verdict != core.VerdictPass {
		t.Fatalf("record run: %v", res)
	}
	if rec.Len() == 0 {
		t.Fatal("nothing recorded")
	}
	s := rec.Schedule("contended", 0)

	successes := 0
	const tries = 5
	for i := 0; i < tries; i++ {
		enf := NewEnforcer(s)
		enf.Timeout = 2 * time.Second
		rep := native.Run(native.Config{
			Timeout: 10 * time.Second,
			Gate:    enf,
		}, contended)
		div, _ := enf.Diverged()
		if !div && rep.Outcome == res.Outcome {
			successes++
		}
	}
	if successes == 0 {
		t.Fatalf("native replay never reproduced outcome %q", res.Outcome)
	}
}

// TestNativeSyncOnlyRecorderFilters checks the partial recorder keeps
// only sync/lifecycle points.
func TestNativeSyncOnlyRecorderFilters(t *testing.T) {
	rec := NewRecorder(true)
	res := native.Run(native.Config{
		Timeout:   5 * time.Second,
		Listeners: []core.Listener{rec},
	}, func(ct core.T) {
		mu := ct.NewMutex("mu")
		x := ct.NewInt("x", 0)
		h := ct.Go("w", func(wt core.T) {
			mu.Lock(wt)
			x.Add(wt, 1)
			mu.Unlock(wt)
		})
		mu.Lock(ct)
		x.Add(ct, 1)
		mu.Unlock(ct)
		h.Join(ct)
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("run: %v", res)
	}
	for _, p := range rec.points {
		if p.Op == "read" || p.Op == "write" {
			t.Fatalf("sync-only recorder captured access %+v", p)
		}
	}
	if rec.Len() == 0 {
		t.Fatal("nothing recorded")
	}
}

// TestEnforcerDivergenceTimesOut feeds the enforcer an infeasible
// schedule and checks it reports divergence promptly instead of
// hanging the run.
func TestEnforcerDivergenceTimesOut(t *testing.T) {
	// A schedule demanding an op from a thread that never exists.
	s := &Schedule{Mode: "native", Order: []Point{{Thread: 99, Op: "write", Name: "ghost"}}}
	enf := NewEnforcer(s)
	enf.Timeout = 100 * time.Millisecond
	start := time.Now()
	res := native.Run(native.Config{
		Timeout: 5 * time.Second,
		Gate:    enf,
	}, func(ct core.T) {
		x := ct.NewInt("x", 0)
		x.Store(ct, 1)
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("run after divergence: %v", res)
	}
	if div, _ := enf.Diverged(); !div {
		t.Fatal("divergence not reported")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("divergence detection too slow")
	}
}

// TestRecorderReplayFindsBugAgain is the paper's debugging story: a
// bug found once is replayed deterministically in controlled mode.
func TestRecorderReplayFindsBugAgain(t *testing.T) {
	buggy := func(ct core.T) {
		x := ct.NewInt("x", 0)
		h1 := ct.Go("a", func(wt core.T) {
			v := x.Load(wt)
			x.Store(wt, v+1)
		})
		h2 := ct.Go("b", func(wt core.T) {
			v := x.Load(wt)
			x.Store(wt, v+1)
		})
		h1.Join(ct)
		h2.Join(ct)
		ct.Assert(x.Load(ct) == 2, "lost update")
	}
	var failing *Schedule
	for seed := int64(0); seed < 200 && failing == nil; seed++ {
		res, s := RecordControlled(sched.Config{Strategy: sched.Random(seed), Seed: seed}, buggy)
		if res.Verdict == core.VerdictFail {
			failing = s
		}
	}
	if failing == nil {
		t.Fatal("bug never found while recording")
	}
	// The failing schedule must reproduce the failure every time.
	for i := 0; i < 10; i++ {
		rep := ReplayControlled(failing, sched.Config{}, buggy)
		if rep.Verdict != core.VerdictFail {
			t.Fatalf("replay %d: verdict %v, want fail", i, rep.Verdict)
		}
	}
}
