package sched_test

import (
	"runtime"
	"slices"
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

// parker wraps a strategy and parks the run once at each listed
// decision index. Because parking does not consume the decision, the
// same Choice.Step is re-offered after Resume, so the wrapper keys on
// c.Step (not on call count) and remembers which indices it already
// parked at.
type parker struct {
	inner  sched.Strategy
	parkAt map[int64]bool
	done   map[int64]bool
}

func (p *parker) Name() string { return "parker:" + p.inner.Name() }

func (p *parker) Pick(c *sched.Choice) core.ThreadID {
	if p.parkAt[c.Step] && !p.done[c.Step] {
		p.done[c.Step] = true
		return sched.ParkID
	}
	return p.inner.Pick(c)
}

// driveParked runs a config through Start and resumes across every
// park until the run completes.
func driveParked(t *testing.T, runner *sched.Runner, cfg sched.Config, body func(core.T)) (*core.Result, int) {
	t.Helper()
	parks := 0
	res := runner.Start(cfg, body)
	for res == nil {
		if !runner.Parked() {
			t.Fatal("Start/Resume returned nil but Parked() is false")
		}
		parks++
		res = runner.Resume()
	}
	return res, parks
}

// TestParkResume is the park contract: suspending a run at a decision
// point and resuming it later is invisible — the interrupted run's
// verdict, outcome, steps, events, finish order and recorded schedule
// are byte-identical to the same strategy run without interruption.
// Every repository program is parked at several depths, including
// decision 0 (before any thread has run).
func TestParkResume(t *testing.T) {
	runner := sched.NewRunner()
	defer runner.Close()

	for _, p := range repository.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			body := p.BodyWith(nil)
			for seed := int64(0); seed < 2; seed++ {
				cfg := func(st sched.Strategy) sched.Config {
					return sched.Config{
						Strategy:       st,
						Seed:           seed,
						Name:           p.Name,
						MaxSteps:       300_000,
						RecordSchedule: true,
					}
				}
				fresh := sched.Run(cfg(sched.Random(seed)), body)
				parkAt := map[int64]bool{0: true, 3: true, 17: true}
				parked, parks := driveParked(t, runner,
					cfg(&parker{inner: sched.Random(seed), parkAt: parkAt, done: map[int64]bool{}}), body)
				if parks == 0 {
					t.Fatalf("seed %d: run never parked", seed)
				}
				if parked.Verdict != fresh.Verdict || parked.Outcome != fresh.Outcome ||
					parked.Steps != fresh.Steps || parked.Events != fresh.Events ||
					parked.Threads != fresh.Threads || parked.DeadlockInfo != fresh.DeadlockInfo {
					t.Fatalf("seed %d: parked %v != fresh %v", seed, parked, fresh)
				}
				if !slices.Equal(parked.FinishOrder, fresh.FinishOrder) {
					t.Fatalf("seed %d: finish order %v != %v", seed, parked.FinishOrder, fresh.FinishOrder)
				}
				if !slices.Equal(parked.Schedule, fresh.Schedule) {
					t.Fatalf("seed %d: schedules differ (%d vs %d decisions)",
						seed, len(parked.Schedule), len(fresh.Schedule))
				}
			}
		})
	}
}

// TestParkAbandon checks that tearing down a parked run mid-flight
// returns its virtual threads to the pool cleanly: the same runner
// immediately executes a full run with results identical to a fresh
// scheduler, across repeated park/abandon cycles and different
// programs.
func TestParkAbandon(t *testing.T) {
	runner := sched.NewRunner()
	defer runner.Close()

	for _, name := range []string{"account", "philosophers", "lostnotify"} {
		prog, err := repository.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		body := prog.BodyWith(nil)
		for round := 0; round < 3; round++ {
			for _, depth := range []int64{0, 2, 9} {
				st := &parker{inner: sched.Random(1), parkAt: map[int64]bool{depth: true}, done: map[int64]bool{}}
				res := runner.Start(sched.Config{Strategy: st, Name: name, MaxSteps: 300_000}, body)
				if res != nil {
					// Run ended before reaching the park depth; fine.
					continue
				}
				if !runner.Parked() {
					t.Fatalf("%s depth %d: nil result but not parked", name, depth)
				}
				runner.Abandon()
				if runner.Parked() {
					t.Fatalf("%s depth %d: still parked after Abandon", name, depth)
				}
			}
			fresh := sched.Run(sched.Config{Strategy: sched.Random(7), Name: name, MaxSteps: 300_000}, body)
			after := runner.Run(sched.Config{Strategy: sched.Random(7), Name: name, MaxSteps: 300_000}, body)
			if after.Verdict != fresh.Verdict || after.Outcome != fresh.Outcome || after.Steps != fresh.Steps {
				t.Fatalf("%s round %d: post-abandon run %v != fresh %v", name, round, after, fresh)
			}
		}
	}
}

// TestParkAbandonNoLeak pins the no-goroutine-leak contract: a runner
// that parked and abandoned runs releases every virtual thread's
// goroutine on Close, returning runtime.NumGoroutine to its
// pre-runner baseline. Close must also tear down a run still parked
// at close time.
func TestParkAbandonNoLeak(t *testing.T) {
	prog, err := repository.Get("philosophers")
	if err != nil {
		t.Fatal(err)
	}
	body := prog.BodyWith(nil)
	baseline := runtime.NumGoroutine()

	runner := sched.NewRunner()
	for i := 0; i < 4; i++ {
		st := &parker{inner: sched.Random(int64(i)), parkAt: map[int64]bool{5: true}, done: map[int64]bool{}}
		if res := runner.Start(sched.Config{Strategy: st, Name: "philosophers", MaxSteps: 300_000}, body); res == nil && i%2 == 0 {
			runner.Abandon()
		} else if res == nil {
			// Leave the last parked run for Close to reap.
			break
		}
	}
	runner.Close()

	for i := 0; i < 100 && runtime.NumGoroutine() > baseline; i++ {
		runtime.Gosched()
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutines leaked: baseline %d, after close %d", baseline, n)
	}
}

// coaster delegates to inner until decision k, then returns CoastID.
type coaster struct {
	inner sched.Strategy
	at    int64
}

func (c *coaster) Name() string { return "coaster" }

func (c *coaster) Pick(ch *sched.Choice) core.ThreadID {
	if ch.Step >= c.at {
		return sched.CoastID
	}
	return c.inner.Pick(ch)
}

// switcher delegates to inner until decision k, then follows the
// nonpreemptive rule explicitly — the reference behavior CoastID must
// reproduce.
type switcher struct {
	inner sched.Strategy
	at    int64
	np    sched.Strategy
}

func (s *switcher) Name() string { return "switcher" }

func (s *switcher) Pick(ch *sched.Choice) core.ThreadID {
	if ch.Step >= s.at {
		return s.np.Pick(ch)
	}
	return s.inner.Pick(ch)
}

// TestCoast checks the CoastID contract: handing the tail of a run to
// the scheduler's built-in nonpreemptive rule produces exactly the
// verdict, outcome, step count, event count and finish order that an
// explicit nonpreemptive fallback strategy produces, while the
// recorded schedule stops at the coast point.
func TestCoast(t *testing.T) {
	runner := sched.NewRunner()
	defer runner.Close()

	for _, p := range repository.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			body := p.BodyWith(nil)
			for _, at := range []int64{0, 1, 6, 25} {
				for seed := int64(0); seed < 2; seed++ {
					cfg := func(st sched.Strategy) sched.Config {
						return sched.Config{
							Strategy:       st,
							Seed:           seed,
							Name:           p.Name,
							MaxSteps:       300_000,
							RecordSchedule: true,
						}
					}
					ref := sched.Run(cfg(&switcher{inner: sched.Random(seed), at: at, np: sched.Nonpreemptive()}), body)
					coast := runner.Run(cfg(&coaster{inner: sched.Random(seed), at: at}), body)
					if coast.Verdict != ref.Verdict || coast.Outcome != ref.Outcome ||
						coast.Steps != ref.Steps || coast.Events != ref.Events ||
						coast.Threads != ref.Threads || coast.DeadlockInfo != ref.DeadlockInfo {
						t.Fatalf("at %d seed %d: coast %v != ref %v", at, seed, coast, ref)
					}
					if !slices.Equal(coast.FinishOrder, ref.FinishOrder) {
						t.Fatalf("at %d seed %d: finish order %v != %v", at, seed, coast.FinishOrder, ref.FinishOrder)
					}
					wantSched := ref.Schedule
					if int64(len(wantSched)) > at {
						wantSched = wantSched[:at]
					}
					if !slices.Equal(coast.Schedule, wantSched) {
						t.Fatalf("at %d seed %d: coast schedule %d decisions, want %d",
							at, seed, len(coast.Schedule), len(wantSched))
					}
				}
			}
		})
	}
}
