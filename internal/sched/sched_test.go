package sched

import (
	"fmt"
	"slices"
	"strings"
	"testing"
	"time"

	"mtbench/internal/core"
)

// TestSequentialBody checks that a single-threaded body runs to
// completion and produces a pass verdict.
func TestSequentialBody(t *testing.T) {
	ran := false
	res := Run(Config{}, func(ct core.T) {
		v := ct.NewInt("x", 1)
		v.Store(ct, 41)
		got := v.Add(ct, 1)
		ct.Assert(got == 42, "got %d", got)
		ran = true
	})
	if !ran {
		t.Fatal("body did not run")
	}
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v, want pass (%v)", res.Verdict, res)
	}
	if res.Threads != 1 {
		t.Fatalf("threads = %d, want 1", res.Threads)
	}
}

// TestForkJoin checks thread creation, joining, and deterministic id
// assignment.
func TestForkJoin(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		sum := ct.NewInt("sum", 0)
		var hs []core.Handle
		for i := 0; i < 5; i++ {
			hs = append(hs, ct.Go("worker", func(wt core.T) {
				sum.Add(wt, 1)
			}))
		}
		for i, h := range hs {
			if h.TID() != core.ThreadID(i+1) {
				ct.Failf("handle %d has tid %d", i, h.TID())
			}
			h.Join(ct)
		}
		ct.Assert(sum.Load(ct) == 5, "sum = %d", sum.Load(ct))
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
	if res.Threads != 6 {
		t.Fatalf("threads = %d, want 6", res.Threads)
	}
}

// TestAssertFailure checks that a failed oracle yields VerdictFail with
// the failure message and location.
func TestAssertFailure(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		ct.Assert(false, "boom %d", 7)
	})
	if res.Verdict != core.VerdictFail {
		t.Fatalf("verdict = %v, want fail", res.Verdict)
	}
	if res.Failure == nil || res.Failure.Msg != "boom 7" {
		t.Fatalf("failure = %+v", res.Failure)
	}
	if res.Failure.Loc.File == "" {
		t.Fatal("failure location not captured")
	}
}

// TestMutexExclusion checks that the controlled mutex provides mutual
// exclusion under an adversarial random schedule.
func TestMutexExclusion(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		res := Run(Config{Strategy: Random(seed), Seed: seed}, func(ct core.T) {
			mu := ct.NewMutex("mu")
			inCS := ct.NewInt("inCS", 0)
			var hs []core.Handle
			for i := 0; i < 3; i++ {
				hs = append(hs, ct.Go("w", func(wt core.T) {
					for j := 0; j < 3; j++ {
						mu.Lock(wt)
						n := inCS.Add(wt, 1)
						wt.Assert(n == 1, "two threads in critical section")
						inCS.Add(wt, -1)
						mu.Unlock(wt)
					}
				}))
			}
			for _, h := range hs {
				h.Join(ct)
			}
		})
		if res.Verdict != core.VerdictPass {
			t.Fatalf("seed %d: verdict = %v (%v)", seed, res.Verdict, res)
		}
	}
}

// TestLostUpdateManifests checks that the canonical load-then-store
// race is actually found by random scheduling — the existence proof
// that the controlled runtime exposes interleaving bugs.
func TestLostUpdateManifests(t *testing.T) {
	body := func(ct core.T) {
		x := ct.NewInt("x", 0)
		h1 := ct.Go("a", func(wt core.T) {
			v := x.Load(wt)
			x.Store(wt, v+1)
		})
		h2 := ct.Go("b", func(wt core.T) {
			v := x.Load(wt)
			x.Store(wt, v+1)
		})
		h1.Join(ct)
		h2.Join(ct)
		ct.Assert(x.Load(ct) == 2, "lost update: x = %d", x.Load(ct))
	}

	// The nonpreemptive baseline must never find it.
	for i := 0; i < 10; i++ {
		if res := Run(Config{}, body); res.Verdict != core.VerdictPass {
			t.Fatalf("nonpreemptive run %d unexpectedly failed: %v", i, res)
		}
	}

	// Random scheduling must find it within a reasonable seed budget.
	found := false
	for seed := int64(0); seed < 100; seed++ {
		if res := Run(Config{Strategy: Random(seed)}, body); res.Verdict == core.VerdictFail {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("random scheduling never exposed the lost update in 100 seeds")
	}
}

// TestDeadlockDetection checks that a classic lock-order inversion is
// reported as a deadlock with a cycle, not a hang.
func TestDeadlockDetection(t *testing.T) {
	found := false
	for seed := int64(0); seed < 50 && !found; seed++ {
		res := Run(Config{Strategy: Random(seed)}, func(ct core.T) {
			a := ct.NewMutex("A")
			b := ct.NewMutex("B")
			h1 := ct.Go("ab", func(wt core.T) {
				a.Lock(wt)
				b.Lock(wt)
				b.Unlock(wt)
				a.Unlock(wt)
			})
			h2 := ct.Go("ba", func(wt core.T) {
				b.Lock(wt)
				a.Lock(wt)
				a.Unlock(wt)
				b.Unlock(wt)
			})
			h1.Join(ct)
			h2.Join(ct)
		})
		switch res.Verdict {
		case core.VerdictDeadlock:
			found = true
			if res.DeadlockInfo == "" {
				t.Fatal("deadlock reported without info")
			}
		case core.VerdictPass:
		default:
			t.Fatalf("seed %d: unexpected verdict %v (%v)", seed, res.Verdict, res)
		}
	}
	if !found {
		t.Fatal("lock-order deadlock never manifested in 50 seeds")
	}
}

// TestCondLostSignal checks Java signal semantics: a Signal with no
// waiter is lost, so a waiter that arrives later deadlocks.
func TestCondLostSignal(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		mu := ct.NewMutex("mu")
		cv := ct.NewCond("cv", mu)
		// Signal first (nonpreemptive runs main to its block point).
		mu.Lock(ct)
		cv.Signal(ct)
		mu.Unlock(ct)
		h := ct.Go("waiter", func(wt core.T) {
			mu.Lock(wt)
			cv.Wait(wt)
			mu.Unlock(wt)
		})
		h.Join(ct)
	})
	if res.Verdict != core.VerdictDeadlock {
		t.Fatalf("verdict = %v, want deadlock (%v)", res.Verdict, res)
	}
}

// TestCondSignalWakesOne checks that Signal wakes exactly one waiter
// and Broadcast wakes all.
func TestCondSignalWakesOne(t *testing.T) {
	res := Run(Config{Strategy: RoundRobin()}, func(ct core.T) {
		mu := ct.NewMutex("mu")
		cv := ct.NewCond("cv", mu)
		woken := ct.NewInt("woken", 0)
		waiting := ct.NewInt("waiting", 0)
		var hs []core.Handle
		for i := 0; i < 3; i++ {
			hs = append(hs, ct.Go("w", func(wt core.T) {
				mu.Lock(wt)
				waiting.Add(wt, 1)
				cv.Wait(wt)
				woken.Add(wt, 1)
				mu.Unlock(wt)
			}))
		}
		// Wait until all three are parked in Wait.
		for {
			mu.Lock(ct)
			n := waiting.Load(ct)
			mu.Unlock(ct)
			if n == 3 {
				break
			}
			ct.Yield()
		}
		mu.Lock(ct)
		cv.Signal(ct)
		mu.Unlock(ct)
		for woken.Load(ct) < 1 {
			ct.Yield()
		}
		ct.Assert(woken.Load(ct) == 1, "signal woke %d", woken.Load(ct))
		mu.Lock(ct)
		cv.Broadcast(ct)
		mu.Unlock(ct)
		for _, h := range hs {
			h.Join(ct)
		}
		ct.Assert(woken.Load(ct) == 3, "after broadcast woken = %d", woken.Load(ct))
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
}

// TestSleepVirtualTime checks that Sleep uses virtual time: a sleeping
// thread resumes without real delay, and sleeps order wakeups.
func TestSleepVirtualTime(t *testing.T) {
	start := time.Now()
	res := Run(Config{}, func(ct core.T) {
		order := ct.NewInt("order", 0)
		h1 := ct.Go("slow", func(wt core.T) {
			wt.Sleep(5 * time.Second) // virtual: must not really sleep
			wt.Assert(order.CompareAndSwap(wt, 1, 2), "slow woke first")
		})
		h2 := ct.Go("fast", func(wt core.T) {
			wt.Sleep(1 * time.Second)
			wt.Assert(order.CompareAndSwap(wt, 0, 1), "fast woke second")
		})
		h1.Join(ct)
		h2.Join(ct)
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("virtual sleep took real time: %v", elapsed)
	}
}

// TestStepLimit checks that infinite loops become VerdictStepLimit.
func TestStepLimit(t *testing.T) {
	res := Run(Config{MaxSteps: 1000}, func(ct core.T) {
		x := ct.NewInt("x", 0)
		for {
			x.Add(ct, 1)
		}
	})
	if res.Verdict != core.VerdictStepLimit {
		t.Fatalf("verdict = %v, want steplimit", res.Verdict)
	}
}

// TestDeterministicReplay checks the core reproducibility property: the
// same strategy seed produces the identical event sequence, and the
// recorded schedule replayed through FixedSchedule reproduces the
// result exactly.
func TestDeterministicReplay(t *testing.T) {
	body := func(ct core.T) {
		x := ct.NewInt("x", 0)
		mu := ct.NewMutex("mu")
		var hs []core.Handle
		for i := 0; i < 3; i++ {
			i := i
			hs = append(hs, ct.Go("w", func(wt core.T) {
				mu.Lock(wt)
				x.Add(wt, int64(i))
				mu.Unlock(wt)
				v := x.Load(wt)
				x.Store(wt, v+1)
			}))
		}
		for _, h := range hs {
			h.Join(ct)
		}
		ct.Outcome("x=%d", x.Load(ct))
	}

	capture := func(strategy Strategy) (*core.Result, []core.Event) {
		var evs []core.Event
		res := Run(Config{
			Strategy:       strategy,
			RecordSchedule: true,
			Listeners:      []core.Listener{core.ListenerFunc(func(e *core.Event) { evs = append(evs, *e) })},
		}, body)
		return res, evs
	}

	res1, evs1 := capture(Random(42))
	res2, evs2 := capture(Random(42))
	if res1.Outcome != res2.Outcome || len(evs1) != len(evs2) {
		t.Fatalf("same seed diverged: %q/%d vs %q/%d", res1.Outcome, len(evs1), res2.Outcome, len(evs2))
	}
	for i := range evs1 {
		if evs1[i] != evs2[i] {
			t.Fatalf("event %d differs: %v vs %v", i, &evs1[i], &evs2[i])
		}
	}

	// Replay the recorded schedule.
	res3, evs3 := capture(&FixedSchedule{Decisions: res1.Schedule})
	if res3.Diverged {
		t.Fatalf("replay diverged: %v", res3)
	}
	if res3.Outcome != res1.Outcome || len(evs3) != len(evs1) {
		t.Fatalf("replay mismatch: %q/%d vs %q/%d", res3.Outcome, len(evs3), res1.Outcome, len(evs1))
	}
	for i := range evs1 {
		if evs1[i] != evs3[i] {
			t.Fatalf("replayed event %d differs: %v vs %v", i, &evs1[i], &evs3[i])
		}
	}
}

// TestMisuseRecursiveLock checks that runtime misuse is a failure, not
// a hang.
func TestMisuseRecursiveLock(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		mu := ct.NewMutex("mu")
		mu.Lock(ct)
		mu.Lock(ct)
	})
	if res.Verdict != core.VerdictFail {
		t.Fatalf("verdict = %v, want fail", res.Verdict)
	}
}

// TestRWMutex checks reader sharing and writer exclusion.
func TestRWMutex(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		res := Run(Config{Strategy: Random(seed)}, func(ct core.T) {
			rw := ct.NewRWMutex("rw")
			readers := ct.NewInt("readers", 0)
			writing := ct.NewInt("writing", 0)
			var hs []core.Handle
			for i := 0; i < 2; i++ {
				hs = append(hs, ct.Go("r", func(wt core.T) {
					rw.RLock(wt)
					readers.Add(wt, 1)
					wt.Assert(writing.Load(wt) == 0, "reader overlaps writer")
					readers.Add(wt, -1)
					rw.RUnlock(wt)
				}))
			}
			hs = append(hs, ct.Go("w", func(wt core.T) {
				rw.Lock(wt)
				writing.Store(wt, 1)
				wt.Assert(readers.Load(wt) == 0, "writer overlaps reader")
				writing.Store(wt, 0)
				rw.Unlock(wt)
			}))
			for _, h := range hs {
				h.Join(ct)
			}
		})
		if res.Verdict != core.VerdictPass {
			t.Fatalf("seed %d: %v (%v)", seed, res.Verdict, res)
		}
	}
}

// TestOutcomeAndFinishOrder checks outcome fragments accumulate in
// emission order.
func TestOutcomeAndFinishOrder(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		ct.Outcome("a=%d", 1)
		ct.Outcome("b=%d", 2)
	})
	if res.Outcome != "a=1;b=2" {
		t.Fatalf("outcome = %q", res.Outcome)
	}
}

// TestProgramPanicBecomesFailure checks foreign panics in program code
// are captured as failures rather than crashing the harness.
func TestProgramPanicBecomesFailure(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		var p *int
		_ = *p //nolint — deliberate nil dereference
	})
	if res.Verdict != core.VerdictFail {
		t.Fatalf("verdict = %v, want fail", res.Verdict)
	}
}

// TestIdleSchedulingReplayable: schedules containing IdleID decisions
// (time warps) replay exactly, so timing bugs found by idle-noise are
// reproducible like any other.
func TestIdleSchedulingReplayable(t *testing.T) {
	body := func(ct core.T) {
		x := ct.NewInt("x", 0)
		h := ct.Go("late", func(wt core.T) {
			wt.Sleep(5 * time.Millisecond)
			x.Store(wt, 1)
		})
		// Main races the sleeper: what it reads depends on whether the
		// strategy lets the timer expire first.
		ct.Yield()
		ct.Outcome("x=%d", x.Load(ct))
		h.Join(ct)
	}
	// A strategy that idles whenever possible.
	idler := &idleFirst{}
	res := Run(Config{Strategy: idler, RecordSchedule: true}, body)
	if res.Outcome != "x=1" {
		t.Fatalf("idling strategy outcome = %q, want x=1 (timer expired first)", res.Outcome)
	}
	hasIdle := false
	for _, d := range res.Schedule {
		if d == IdleID {
			hasIdle = true
		}
	}
	if !hasIdle {
		t.Fatal("no idle decision recorded")
	}
	rep := Run(Config{Strategy: &FixedSchedule{Decisions: res.Schedule}}, body)
	if rep.Diverged || rep.Outcome != res.Outcome {
		t.Fatalf("idle replay mismatch: %v", rep)
	}

	// The baseline never idles and reads 0.
	base := Run(Config{}, body)
	if base.Outcome != "x=0" {
		t.Fatalf("baseline outcome = %q, want x=0", base.Outcome)
	}
}

// idleFirst lets every spawned thread run up to its timer (highest id
// first) and then expires pending timers before anyone else runs.
type idleFirst struct{}

func (idleFirst) Name() string { return "idlefirst" }
func (idleFirst) Pick(c *Choice) core.ThreadID {
	if c.CanIdle {
		return IdleID
	}
	return c.Runnable[len(c.Runnable)-1]
}

// TestRandomDispatchRunsToBlock pins RandomWhenBlocked semantics: the
// current thread is never preempted while runnable.
func TestRandomDispatchRunsToBlock(t *testing.T) {
	var switches, points int
	last := core.NoThread
	tracker := ListenerStrategy{
		Strategy: RandomWhenBlocked(7),
		Hook: func(c *Choice, picked core.ThreadID) {
			points++
			if last != core.NoThread && picked != last && slices.Contains(c.Runnable, last) {
				switches++ // preemption: switched away from a runnable current
			}
			last = picked
		},
	}
	Run(Config{Strategy: &tracker}, func(ct core.T) {
		x := ct.NewInt("x", 0)
		h := ct.Go("w", func(wt core.T) {
			for i := 0; i < 5; i++ {
				x.Add(wt, 1)
			}
		})
		for i := 0; i < 5; i++ {
			x.Add(ct, 1)
		}
		h.Join(ct)
	})
	if points == 0 {
		t.Fatal("no decisions observed")
	}
	if switches != 0 {
		t.Fatalf("random dispatch preempted a runnable thread %d times", switches)
	}
}

// countingStrategy picks a deliberately non-runnable thread after a
// few decisions, simulating a buggy Strategy implementation.
type badPickStrategy struct{ picks int }

func (b *badPickStrategy) Name() string { return "bad-pick" }
func (b *badPickStrategy) Pick(c *Choice) core.ThreadID {
	b.picks++
	if b.picks > 3 {
		return core.ThreadID(99) // never runnable
	}
	return c.Runnable[0]
}

// TestStrategyBugPanicsLoudly pins the engine-bug contract after the
// direct-handoff rewrite: scheduling decisions now execute on
// virtual-thread goroutines, under the same recover that converts
// program panics into failed runs — but a Strategy returning a
// non-runnable thread must still panic out of Run (silently counting
// it as a program bug would skew every statistic built on top).
func TestStrategyBugPanicsLoudly(t *testing.T) {
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("buggy strategy did not panic out of Run")
		}
		if msg := fmt.Sprint(rec); !strings.Contains(msg, "picked non-runnable thread") {
			t.Fatalf("unexpected panic payload: %v", rec)
		}
	}()
	Run(Config{Strategy: &badPickStrategy{}}, func(ct core.T) {
		x := ct.NewInt("x", 0)
		h := ct.Go("w", func(wt core.T) { x.Add(wt, 1) })
		h.Join(ct)
	})
	t.Fatal("Run returned a result for a buggy strategy")
}

// TestMisuseFailureKeepsLocation pins that lock-misuse oracles report
// their program location even in listener-free runs, where the
// scheduler otherwise skips per-operation location capture: the
// location is part of BugSignature, so losing it would collapse
// distinct misuse sites into one deduplicated bug.
func TestMisuseFailureKeepsLocation(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		mu := ct.NewMutex("mu")
		mu.Unlock(ct) // not held: misuse failure
	})
	if res.Verdict != core.VerdictFail || res.Failure == nil {
		t.Fatalf("verdict = %v, want misuse failure", res.Verdict)
	}
	if res.Failure.Loc.File == "" {
		t.Fatalf("misuse failure lost its location: %+v", res.Failure)
	}
}
