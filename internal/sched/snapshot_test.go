package sched_test

import (
	"slices"
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

// countListener counts delivered events — the ledger for the
// fast-forward suppression contract (a fast-forwarded run's listeners
// see exactly the events after the restored position).
type countListener struct{ n int }

func (c *countListener) OnEvent(*core.Event) { c.n++ }

// TestFastForwardByteIdentical is the fast-forward contract: replaying
// a recorded decision prefix through Config.FastForward (with the
// position digest captured at the park verified via FFCheck) and
// handing the rest of the run to a replay strategy produces a Result
// byte-identical to the original run — verdict, outcome, steps,
// events, finish order and the full recorded schedule — while the
// listeners see exactly the events the original run emitted after the
// snapshot point.
func TestFastForwardByteIdentical(t *testing.T) {
	capture := sched.NewRunner()
	defer capture.Close()
	replay := sched.NewRunner()
	defer replay.Close()

	for _, p := range repository.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			body := p.BodyWith(nil)
			for seed := int64(0); seed < 2; seed++ {
				fullCount := &countListener{}
				full := sched.Run(sched.Config{
					Strategy:       sched.Random(seed),
					Listeners:      []core.Listener{fullCount},
					Name:           p.Name,
					MaxSteps:       300_000,
					RecordSchedule: true,
				}, body)

				for _, k := range []int{0, 1, 5, 20, len(full.Schedule) / 2} {
					if k > len(full.Schedule) {
						continue
					}
					// Position a run at decision k by replaying the
					// recorded schedule and parking there, and capture
					// the digest of that position.
					parkCount := &countListener{}
					res := capture.Start(sched.Config{
						Strategy: &parker{
							inner:  &sched.FixedSchedule{Decisions: full.Schedule},
							parkAt: map[int64]bool{int64(k): true},
							done:   map[int64]bool{},
						},
						Listeners:      []core.Listener{parkCount},
						Name:           p.Name,
						MaxSteps:       300_000,
						RecordSchedule: true,
					}, body)
					if res != nil {
						// The run ended before decision k (k == full
						// schedule length); nothing to snapshot.
						continue
					}
					var snap sched.Snapshot
					if !capture.Snapshot(&snap) {
						t.Fatalf("seed %d k %d: Snapshot on parked runner returned false", seed, k)
					}
					if snap.Steps != int64(k) {
						t.Fatalf("seed %d k %d: snapshot cursor %d", seed, k, snap.Steps)
					}
					capture.Abandon()

					// Fast-forward a fresh run to the same position and
					// replay the rest of the schedule.
					ffCount := &countListener{}
					ff := replay.Run(sched.Config{
						Strategy:       &sched.FixedSchedule{Decisions: append([]core.ThreadID(nil), full.Schedule[k:]...)},
						Listeners:      []core.Listener{ffCount},
						Name:           p.Name,
						MaxSteps:       300_000,
						RecordSchedule: true,
						FastForward:    full.Schedule[:k],
						FFCheck:        &snap,
					}, body)
					if ff.Verdict != full.Verdict || ff.Outcome != full.Outcome ||
						ff.Steps != full.Steps || ff.Events != full.Events ||
						ff.Threads != full.Threads || ff.DeadlockInfo != full.DeadlockInfo {
						t.Fatalf("seed %d k %d: ff %+v != full %+v", seed, k, ff, full)
					}
					if !slices.Equal(ff.FinishOrder, full.FinishOrder) {
						t.Fatalf("seed %d k %d: finish order %v != %v", seed, k, ff.FinishOrder, full.FinishOrder)
					}
					if !slices.Equal(ff.Schedule, full.Schedule) {
						t.Fatalf("seed %d k %d: ff schedule %d decisions, want %d",
							seed, k, len(ff.Schedule), len(full.Schedule))
					}
					// Event conservation: the park-capture run saw the
					// first k decisions' events, the fast-forwarded run
					// saw the rest.
					if parkCount.n+ffCount.n != fullCount.n {
						t.Fatalf("seed %d k %d: event split %d+%d != full %d",
							seed, k, parkCount.n, ffCount.n, fullCount.n)
					}
				}
			}
		})
	}
}

// TestFastForwardDivergence pins the two failure modes of restoring a
// position: a tampered digest (the model state does not match the
// snapshot) and a prefix the program cannot follow both yield
// VerdictDiverged rather than a panic or a silent wrong-state run.
func TestFastForwardDivergence(t *testing.T) {
	prog, err := repository.Get("account")
	if err != nil {
		t.Fatal(err)
	}
	body := prog.BodyWith(nil)
	full := sched.Run(sched.Config{Strategy: sched.Random(1), MaxSteps: 300_000, RecordSchedule: true}, body)
	if len(full.Schedule) < 8 {
		t.Fatalf("schedule too short: %d", len(full.Schedule))
	}
	k := 6

	capture := sched.NewRunner()
	defer capture.Close()
	if res := capture.Start(sched.Config{
		Strategy: &parker{
			inner:  &sched.FixedSchedule{Decisions: full.Schedule},
			parkAt: map[int64]bool{int64(k): true},
			done:   map[int64]bool{},
		},
		MaxSteps:       300_000,
		RecordSchedule: true,
	}, body); res != nil {
		t.Fatal("capture run completed before park depth")
	}
	var snap sched.Snapshot
	if !capture.Snapshot(&snap) {
		t.Fatal("Snapshot on parked runner returned false")
	}
	capture.Abandon()

	runner := sched.NewRunner()
	defer runner.Close()

	tampered := snap
	tampered.Sum ^= 1
	res := runner.Run(sched.Config{
		Strategy:    &sched.FixedSchedule{Decisions: append([]core.ThreadID(nil), full.Schedule[k:]...)},
		MaxSteps:    300_000,
		FastForward: full.Schedule[:k],
		FFCheck:     &tampered,
	}, body)
	if res.Verdict != core.VerdictDiverged {
		t.Fatalf("tampered digest: verdict %v, want diverged", res.Verdict)
	}

	bad := append([]core.ThreadID(nil), full.Schedule[:k]...)
	bad[k-1] = 99 // no such thread
	res = runner.Run(sched.Config{
		Strategy:    sched.Nonpreemptive(),
		MaxSteps:    300_000,
		FastForward: bad,
	}, body)
	if res.Verdict != core.VerdictDiverged {
		t.Fatalf("bad prefix: verdict %v, want diverged", res.Verdict)
	}

	// A healthy runner after diverged runs: same pooled runner completes
	// a normal run byte-identically to a fresh one.
	fresh := sched.Run(sched.Config{Strategy: sched.Random(3), MaxSteps: 300_000}, body)
	after := runner.Run(sched.Config{Strategy: sched.Random(3), MaxSteps: 300_000}, body)
	if after.Verdict != fresh.Verdict || after.Outcome != fresh.Outcome || after.Steps != fresh.Steps {
		t.Fatalf("post-divergence run %+v != fresh %+v", after, fresh)
	}
}
