// Package sched is the controlled runtime: a deterministic cooperative
// scheduler that runs benchmark programs as virtual threads and takes a
// scheduling decision at every instrumented operation. A pluggable
// Strategy makes those decisions, which is how random testing, noise
// making, replay and systematic state-space exploration all share one
// substrate (§2.2 of the paper: replay and VeriSoft-style exploration
// both need to "force interleavings").
//
// Exactly one virtual thread runs at a time; the driver (the goroutine
// that called Run) and the virtual threads hand control back and forth
// over channels. Because only the running thread touches shared state,
// the scheduler, the program's emulated variables, and all listeners
// execute race-free without locking, and a run is a pure function of
// (program, strategy decisions) — the property replay and exploration
// depend on.
package sched

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"time"

	"mtbench/internal/core"
	"mtbench/internal/instrument"
)

// DefaultMaxSteps bounds a run's scheduling decisions when
// Config.MaxSteps is zero; it converts livelocks and runaway loops into
// VerdictStepLimit results.
const DefaultMaxSteps = 2_000_000

// DefaultTimeQuantum is the virtual time that passes per scheduling
// step. Sleep durations are measured against this clock, so a
// Sleep(1ms) parks the thread for 1000 steps of other threads' work by
// default — long enough that sleep-based synchronization usually works,
// short enough that an adversarial strategy can outrun it.
const DefaultTimeQuantum = time.Microsecond

// Config configures a controlled run.
type Config struct {
	// Strategy picks the next thread at each scheduling point.
	// Nil defaults to Nonpreemptive(), the deterministic scheduler that
	// §1 of the paper blames for unit tests never hitting concurrency
	// bugs.
	Strategy Strategy
	// Listeners observe the event stream.
	Listeners []core.Listener
	// Plan gates which probes fire; nil instruments everything.
	Plan *instrument.Plan
	// MaxSteps bounds scheduling decisions (0 = DefaultMaxSteps).
	MaxSteps int64
	// TimeQuantum is the virtual time per step (0 = DefaultTimeQuantum).
	TimeQuantum time.Duration
	// Name labels the run for RunObserver listeners.
	Name string
	// Seed is reported to RunObserver listeners (the scheduler itself
	// is deterministic; randomness lives in strategies).
	Seed int64
	// RecordSchedule captures the per-step decisions in the Result for
	// replay. Exploration and replay set it; bulk statistics runs leave
	// it off to save allocation.
	RecordSchedule bool
}

// Run executes body as thread 0 under the configured strategy and
// returns the run's result. It never panics on program misbehaviour:
// assertion failures, deadlocks, step-limit hits and stray panics all
// become verdicts.
func Run(cfg Config, body func(t core.T)) *core.Result {
	s := newScheduler(cfg)
	return s.run(body)
}

type tstate uint8

const (
	tReady tstate = iota
	tRunning
	tBlocked
	tSleeping
	tDone
)

// blockKind says what a blocked thread is waiting for, for deadlock
// reporting.
type blockKind uint8

const (
	blockNone blockKind = iota
	blockLock
	blockRW
	blockCond
	blockJoin
)

type blockReason struct {
	kind blockKind
	obj  core.ObjectID
	name string
	// ready reports whether the thread could make progress now. The
	// driver evaluates it when building the runnable set; the blocked
	// operation re-checks its own guard after being resumed.
	ready func() bool
	// holder, for lock blocks, names the current holder for wait-for
	// cycle construction (NoThread when unknown or multiple, e.g.
	// readers).
	holder func() core.ThreadID
}

type resumeMsg struct{ abort bool }

type thread struct {
	id    core.ThreadID
	name  string
	state tstate
	block blockReason
	// wakeAt is the virtual deadline for sleeping threads.
	wakeAt int64
	// ready resumes the thread; every resume is answered by exactly one
	// park on the scheduler's parked channel.
	ready chan resumeMsg
	// locksHeld is the ordered multiset of mutexes the thread holds;
	// listeners and deadlock reporting read it.
	locksHeld []core.ObjectID
	// pending describes the operation the thread will perform next if
	// picked; noise heuristics read it through Choice.
	pending PendingOp
	body    func(core.T)
	sc      *scheduler
}

// PendingOp describes the operation a thread is about to perform at a
// scheduling point.
type PendingOp struct {
	Op   core.Op
	Name string
	Loc  core.Location
}

type scheduler struct {
	cfg       Config
	listeners core.MultiListener
	plan      *instrument.Plan
	strategy  Strategy

	threads []*thread
	parked  chan *thread
	cur     *thread

	seq     int64
	steps   int64
	objSeq  core.ObjectID
	nowNs   int64 // virtual clock
	quantum int64

	failure      *core.Failure
	deadlockInfo string
	stepLimitHit bool
	diverged     bool

	outcome     []string
	finishOrder []string

	schedule  []core.ThreadID
	lastEvent core.Event
	hasEvent  bool

	evScratch core.Event
}

func newScheduler(cfg Config) *scheduler {
	if cfg.Strategy == nil {
		cfg.Strategy = Nonpreemptive()
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	if cfg.TimeQuantum <= 0 {
		cfg.TimeQuantum = DefaultTimeQuantum
	}
	return &scheduler{
		cfg:       cfg,
		listeners: core.MultiListener(cfg.Listeners),
		plan:      cfg.Plan,
		strategy:  cfg.Strategy,
		parked:    make(chan *thread),
		quantum:   int64(cfg.TimeQuantum),
	}
}

func (s *scheduler) run(body func(t core.T)) *core.Result {
	start := time.Now()
	s.listeners.StartRun(core.RunInfo{Program: s.cfg.Name, Mode: "controlled", Seed: s.cfg.Seed})

	s.spawn("main", body)
	s.drive()
	s.abortAll()

	res := &core.Result{
		Verdict:      core.VerdictPass,
		Failure:      s.failure,
		DeadlockInfo: s.deadlockInfo,
		Outcome:      strings.Join(s.outcome, ";"),
		FinishOrder:  s.finishOrder,
		Steps:        s.steps,
		Events:       s.seq,
		Threads:      len(s.threads),
		Elapsed:      time.Since(start),
		Schedule:     s.schedule,
		Diverged:     s.diverged,
	}
	switch {
	case s.failure != nil:
		res.Verdict = core.VerdictFail
	case s.deadlockInfo != "":
		res.Verdict = core.VerdictDeadlock
	case s.diverged:
		res.Verdict = core.VerdictDiverged
	case s.stepLimitHit:
		res.Verdict = core.VerdictStepLimit
	}
	s.listeners.EndRun(res)
	return res
}

// drive is the scheduling loop: pick a runnable thread, resume it, wait
// for it to park, repeat until all threads are done or the run dies.
func (s *scheduler) drive() {
	for {
		if s.failure != nil {
			return
		}
		runnable := s.runnable()
		if len(runnable) == 0 {
			if s.advanceTime() {
				continue
			}
			if s.liveCount() == 0 {
				return // clean completion
			}
			s.deadlockInfo = s.describeDeadlock()
			return
		}
		if s.steps >= s.cfg.MaxSteps {
			s.stepLimitHit = true
			return
		}

		choice := Choice{
			Step:     s.steps,
			Runnable: runnable,
			Current:  core.NoThread,
		}
		if s.cur != nil {
			choice.Current = s.cur.id
			choice.Pending = s.cur.pending
		}
		if s.hasEvent {
			choice.LastEvent = &s.lastEvent
		}
		choice.PendingOf = s.pendingOf
		choice.CanIdle = s.hasFutureSleeper()
		pick := s.strategy.Pick(&choice)
		if pick == core.NoThread {
			s.diverged = true
			return
		}
		s.steps++
		if s.cfg.RecordSchedule {
			s.schedule = append(s.schedule, pick)
		}
		if pick == IdleID {
			if !choice.CanIdle || !s.advanceTime() {
				panic(fmt.Sprintf("sched: strategy %s idled with no sleeper", s.strategy.Name()))
			}
			continue
		}
		next := s.threadByID(pick)
		if next == nil || !slices.Contains(runnable, pick) {
			// A strategy bug: fail loudly rather than silently skewing
			// statistics.
			panic(fmt.Sprintf("sched: strategy %s picked non-runnable thread %d (runnable %v)",
				s.strategy.Name(), pick, runnable))
		}
		s.resume(next)
	}
}

// resume hands control to th and waits for it (or, after a spawn, the
// same thread) to park again.
func (s *scheduler) resume(th *thread) {
	s.cur = th
	th.state = tRunning
	th.ready <- resumeMsg{}
	<-s.parked
}

// runnable returns the ids of threads that can run now, in id order:
// ready threads, blocked threads whose guard is satisfied, and sleeping
// threads whose deadline passed.
func (s *scheduler) runnable() []core.ThreadID {
	var out []core.ThreadID
	for _, th := range s.threads {
		switch th.state {
		case tReady:
			out = append(out, th.id)
		case tBlocked:
			if th.block.ready == nil || th.block.ready() {
				out = append(out, th.id)
			}
		case tSleeping:
			if th.wakeAt <= s.now() {
				out = append(out, th.id)
			}
		}
	}
	return out
}

// hasFutureSleeper reports whether some thread sleeps on a deadline
// the clock has not reached (i.e. idling would change state).
func (s *scheduler) hasFutureSleeper() bool {
	for _, th := range s.threads {
		if th.state == tSleeping && th.wakeAt > s.now() {
			return true
		}
	}
	return false
}

// advanceTime warps the virtual clock to the earliest sleeping thread's
// deadline and reports whether any thread became runnable.
func (s *scheduler) advanceTime() bool {
	var min int64 = -1
	now := s.now()
	for _, th := range s.threads {
		if th.state == tSleeping && th.wakeAt > now && (min < 0 || th.wakeAt < min) {
			min = th.wakeAt
		}
	}
	if min < 0 {
		return false
	}
	s.nowNs += min - now
	return true
}

func (s *scheduler) liveCount() int {
	n := 0
	for _, th := range s.threads {
		if th.state != tDone {
			n++
		}
	}
	return n
}

func (s *scheduler) threadByID(id core.ThreadID) *thread {
	if int(id) < 0 || int(id) >= len(s.threads) {
		return nil
	}
	return s.threads[id]
}

// pendingOf reports a thread's published pending operation.
func (s *scheduler) pendingOf(id core.ThreadID) PendingOp {
	th := s.threadByID(id)
	if th == nil {
		return PendingOp{}
	}
	return th.pending
}

// describeDeadlock builds the human-readable wait-for description used
// in VerdictDeadlock results: every live thread with what it waits for,
// plus the lock cycle if one exists.
func (s *scheduler) describeDeadlock() string {
	var parts []string
	waitsFor := make(map[core.ThreadID]core.ThreadID)
	for _, th := range s.threads {
		if th.state == tDone {
			continue
		}
		switch th.state {
		case tSleeping:
			parts = append(parts, fmt.Sprintf("t%d(%s) sleeping", th.id, th.name))
		case tBlocked:
			kind := map[blockKind]string{
				blockLock: "lock", blockRW: "rwlock", blockCond: "cond", blockJoin: "join",
			}[th.block.kind]
			parts = append(parts, fmt.Sprintf("t%d(%s) blocked on %s %q", th.id, th.name, kind, th.block.name))
			if th.block.holder != nil {
				if h := th.block.holder(); h != core.NoThread {
					waitsFor[th.id] = h
				}
			}
		default:
			parts = append(parts, fmt.Sprintf("t%d(%s) %v", th.id, th.name, th.state))
		}
	}
	sort.Strings(parts)
	desc := strings.Join(parts, "; ")
	if cyc := findCycle(waitsFor); len(cyc) > 0 {
		ids := make([]string, len(cyc))
		for i, id := range cyc {
			ids[i] = fmt.Sprintf("t%d", id)
		}
		desc += " [cycle: " + strings.Join(ids, "->") + "]"
	}
	return desc
}

// findCycle finds a cycle in the wait-for map, returning the thread ids
// along it (empty if none). The result is canonical — starts are probed
// in ascending id order and the cycle is rotated to begin at its
// smallest id — so identical deadlocks always produce identical
// descriptions. Bug deduplication (explore.bugKey) depends on this.
func findCycle(waitsFor map[core.ThreadID]core.ThreadID) []core.ThreadID {
	starts := make([]core.ThreadID, 0, len(waitsFor))
	for id := range waitsFor {
		starts = append(starts, id)
	}
	slices.Sort(starts)
	for _, start := range starts {
		seen := map[core.ThreadID]int{}
		var path []core.ThreadID
		cur := start
		for {
			if i, ok := seen[cur]; ok {
				return canonicalCycle(path[i:])
			}
			next, ok := waitsFor[cur]
			if !ok {
				break
			}
			seen[cur] = len(path)
			path = append(path, cur)
			cur = next
		}
	}
	return nil
}

// canonicalCycle rotates an open cycle to start at its smallest thread
// id and closes it by repeating that id at the end.
func canonicalCycle(cyc []core.ThreadID) []core.ThreadID {
	min := 0
	for i, id := range cyc {
		if id < cyc[min] {
			min = i
		}
	}
	out := make([]core.ThreadID, 0, len(cyc)+1)
	out = append(out, cyc[min:]...)
	out = append(out, cyc[:min]...)
	return append(out, out[0])
}

// abortAll unwinds every live thread so no goroutines outlive the run.
func (s *scheduler) abortAll() {
	for _, th := range s.threads {
		if th.state == tDone {
			continue
		}
		th.ready <- resumeMsg{abort: true}
		<-s.parked
	}
}

// spawn creates a virtual thread. The new thread does not run until the
// driver picks it.
func (s *scheduler) spawn(name string, body func(core.T)) *thread {
	th := &thread{
		id:    core.ThreadID(len(s.threads)),
		name:  name,
		state: tReady,
		ready: make(chan resumeMsg),
		body:  body,
		sc:    s,
	}
	s.threads = append(s.threads, th)
	go th.main()
	return th
}

// main is the virtual thread's goroutine body.
func (th *thread) main() {
	defer func() {
		fail, aborted := core.RecoverThread(recover(), th.id)
		s := th.sc
		if fail != nil && s.failure == nil {
			s.failure = fail
		}
		if fail == nil && !aborted {
			s.finishOrder = append(s.finishOrder, th.name)
			s.emit(th, core.OpEnd, core.NoObject, "", 0, 0, core.Location{})
		}
		th.state = tDone
		s.parked <- th
	}()
	msg := <-th.ready
	if msg.abort {
		core.AbortNow()
	}
	th.state = tRunning
	th.body(&tc{th: th})
}

// park gives control back to the driver and waits to be picked again.
// The caller must have set th.state (and th.block for blocked parks).
func (th *thread) park() {
	s := th.sc
	s.parked <- th
	msg := <-th.ready
	if msg.abort {
		core.AbortNow()
	}
	th.state = tRunning
	th.block = blockReason{}
}

// point is a scheduling point: the running thread offers the strategy a
// chance to run someone else before its next operation.
func (th *thread) point() {
	th.state = tReady
	th.park()
}

// blockOn parks the thread until reason.ready() holds. The caller must
// re-check its guard afterwards in a loop: the driver guarantees the
// guard held when it picked the thread, and since nothing ran in
// between it still holds, but the loop keeps the invariant local.
func (th *thread) blockOn(reason blockReason) {
	th.state = tBlocked
	th.block = reason
	th.park()
}

// emit delivers an event to the listeners. Only the running thread
// calls it, so no locking is needed. It returns false if the plan
// suppressed the probe.
func (s *scheduler) emit(th *thread, op core.Op, obj core.ObjectID, name string, value int64, flags core.Flags, loc core.Location) bool {
	if !s.plan.Enabled(op, name) {
		return false
	}
	s.seq++
	s.evScratch = core.Event{
		Seq:    s.seq,
		Thread: th.id,
		Op:     op,
		Obj:    obj,
		Name:   name,
		Value:  value,
		Flags:  flags,
		Loc:    loc,
	}
	s.lastEvent = s.evScratch
	s.hasEvent = true
	s.listeners.OnEvent(&s.evScratch)
	return true
}

// prePoint takes the scheduling point that precedes an instrumented
// operation, unless the plan suppressed the probe. The pending
// operation is published so strategies (noise heuristics in
// particular) can key their decision on what the thread is about to
// do.
func (th *thread) prePoint(op core.Op, name string, loc core.Location) {
	if !th.sc.plan.Enabled(op, name) {
		return
	}
	th.pending = PendingOp{Op: op, Name: name, Loc: loc}
	th.point()
}

// Now returns the scheduler's virtual clock; the clock also advances
// one quantum per scheduling step.
func (s *scheduler) now() int64 {
	return s.nowNs + s.steps*s.quantum
}
