// Package sched is the controlled runtime: a deterministic cooperative
// scheduler that runs benchmark programs as virtual threads and takes a
// scheduling decision at every instrumented operation. A pluggable
// Strategy makes those decisions, which is how random testing, noise
// making, replay and systematic state-space exploration all share one
// substrate (§2.2 of the paper: replay and VeriSoft-style exploration
// both need to "force interleavings").
//
// Exactly one virtual thread runs at a time; the driver (the goroutine
// that called Run) and the virtual threads hand control back and forth
// over channels. Because only the running thread touches shared state,
// the scheduler, the program's emulated variables, and all listeners
// execute race-free without locking, and a run is a pure function of
// (program, strategy decisions) — the property replay and exploration
// depend on.
//
// Throughput matters as much as control: every search tool in the
// framework (noise, exploration, fuzzing, the campaign matrix) is
// bounded by how many short runs per second this package executes, so
// the run hot path is built for reuse. A Runner keeps its virtual
// threads' goroutines, resume channels and per-run buffers alive
// across runs (back-to-back runs pay no goroutine spawn/teardown and
// near-zero allocation), source locations are captured only when
// something subscribed can observe them, and listener fan-out is
// skipped for event classes no listener wants. Reuse never changes
// results: a pooled run is byte-identical to a fresh one (pinned by
// TestRunnerPoolingDeterminism across the whole program repository).
package sched

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"slices"
	"strconv"
	"time"

	"mtbench/internal/core"
	"mtbench/internal/instrument"
)

// DefaultMaxSteps bounds a run's scheduling decisions when
// Config.MaxSteps is zero; it converts livelocks and runaway loops into
// VerdictStepLimit results.
const DefaultMaxSteps = 2_000_000

// DefaultTimeQuantum is the virtual time that passes per scheduling
// step. Sleep durations are measured against this clock, so a
// Sleep(1ms) parks the thread for 1000 steps of other threads' work by
// default — long enough that sleep-based synchronization usually works,
// short enough that an adversarial strategy can outrun it.
const DefaultTimeQuantum = time.Microsecond

// Config configures a controlled run.
type Config struct {
	// Strategy picks the next thread at each scheduling point.
	// Nil defaults to Nonpreemptive(), the deterministic scheduler that
	// §1 of the paper blames for unit tests never hitting concurrency
	// bugs.
	Strategy Strategy
	// Listeners observe the event stream.
	Listeners []core.Listener
	// Plan gates which probes fire; nil instruments everything.
	Plan *instrument.Plan
	// MaxSteps bounds scheduling decisions (0 = DefaultMaxSteps).
	MaxSteps int64
	// TimeQuantum is the virtual time per step (0 = DefaultTimeQuantum).
	TimeQuantum time.Duration
	// Name labels the run for RunObserver listeners.
	Name string
	// Seed is reported to RunObserver listeners (the scheduler itself
	// is deterministic; randomness lives in strategies).
	Seed int64
	// RecordSchedule captures the per-step decisions in the Result for
	// replay. Exploration and replay set it; bulk statistics runs leave
	// it off to save allocation.
	RecordSchedule bool
	// SkipTiming leaves Result.Elapsed zero instead of reading the wall
	// clock twice per run. Search loops that execute millions of short
	// runs and never read Elapsed set it to keep time.Now off the
	// per-run path.
	SkipTiming bool
	// FastForward replays this recorded decision prefix before the
	// strategy sees its first decision: each entry is consumed without a
	// strategy round trip, listener fan-out or runnable-set scan, at
	// the nonpreemptive coast-mode cost — the delta replay that
	// positions a pooled runner at a previously visited branch. Step
	// counting, schedule recording and the virtual clock advance
	// exactly as if the strategy had made these picks. The scheduler
	// copies the slice at Start; the caller may reuse it immediately.
	FastForward []core.ThreadID
	// FFCheck, when non-nil, is the position digest the run must match
	// at the first decision after the fast-forward; a mismatch (a
	// nondeterministic program drifting off the recorded prefix) makes
	// the run VerdictDiverged instead of silently continuing from the
	// wrong state. The value is copied at Start.
	FFCheck *Snapshot
}

// Run executes body as thread 0 under the configured strategy and
// returns the run's result. It never panics on program misbehaviour:
// assertion failures, deadlocks, step-limit hits and stray panics all
// become verdicts.
//
// Run constructs a fresh Runner per call and tears it down afterwards;
// code that executes many runs back to back (search loops, worker
// pools) should hold a Runner and call its Run method instead, which
// reuses the goroutines and buffers across runs.
func Run(cfg Config, body func(t core.T)) *core.Result {
	r := NewRunner()
	defer r.Close()
	return r.Run(cfg, body)
}

// Runner executes controlled runs back to back, reusing the expensive
// parts between them: virtual-thread goroutines and their resume
// channels stay parked in a free pool instead of being respawned,
// and the per-run slices (runnable sets, recorded schedule, outcome
// and finish-order accumulators) keep their backing arrays. A Runner
// is single-threaded — one run at a time — and a run through a reused
// Runner is byte-identical to one through a fresh scheduler.
//
// Beyond run-to-completion (Run), a Runner supports a parked
// lifecycle: Start drives a run until it either finishes or the
// strategy returns ParkID, in which case the run suspends with every
// virtual thread blocked on its resume channel; Resume continues a
// parked run from the exact decision point it parked at, and Abandon
// tears a parked run down, unwinding the live threads back into the
// free pool. A parked Runner holds its threads (and their goroutines)
// but consumes no CPU.
//
// Ownership caveat: when Config.RecordSchedule is set, the returned
// Result.Schedule aliases the Runner's internal buffer and is only
// valid until the next run; callers that retain it (or retain the
// Result) across runs must clone it first. The package-level Run has
// no such caveat since its Runner is never reused. Results returned by
// Start/Resume are pooled more aggressively: the Result itself and its
// FinishOrder alias per-Runner buffers reused by the next run.
type Runner struct {
	s *scheduler
}

// NewRunner returns an empty Runner. The pool warms up on first use;
// call Close when done to release the pooled goroutines (a dropped
// Runner's goroutines are not otherwise reclaimed).
func NewRunner() *Runner {
	return &Runner{s: &scheduler{
		parked:  make(chan *thread),
		runDone: make(chan runSig),
	}}
}

// Run executes body under cfg to completion, reusing the Runner's
// pooled state. See Runner for the Result.Schedule ownership caveat;
// everything else in the Result is valid indefinitely. Run panics if
// the strategy parks the run — parking strategies must be driven
// through Start/Resume/Abandon.
func (r *Runner) Run(cfg Config, body func(t core.T)) *core.Result {
	p := r.Start(cfg, body)
	if p == nil {
		panic("sched: strategy parked a run driven by Run; use Start/Resume/Abandon")
	}
	// Start's Result is pooled (overwritten by the next run); Run's
	// contract is a caller-owned Result, so unpool it here.
	res := new(core.Result)
	*res = *p
	if len(res.FinishOrder) > 0 {
		res.FinishOrder = append([]string(nil), res.FinishOrder...)
	}
	return res
}

// Start begins a controlled run and drives it until it completes or
// parks. It returns the run's Result, or nil when the strategy parked
// the run (Parked reports true until Resume or Abandon). The returned
// Result and its FinishOrder (and Schedule, under RecordSchedule)
// alias per-Runner buffers: they are valid only until the next
// Start/Resume/Run on this Runner and must be cloned to be retained.
func (r *Runner) Start(cfg Config, body func(t core.T)) *core.Result {
	s := r.s
	if s.closed {
		panic("sched: Start on a closed Runner")
	}
	if s.parkedRun {
		panic("sched: Start on a Runner holding a parked run (Resume or Abandon it first)")
	}
	if s.running {
		panic("sched: Runner used for two runs at once")
	}
	s.reset(cfg)
	s.running = true
	if !cfg.SkipTiming {
		s.start = time.Now()
	} else {
		s.start = time.Time{}
	}
	s.listeners.StartRun(core.RunInfo{Program: s.cfg.Name, Mode: "controlled", Seed: s.cfg.Seed})
	s.spawn("main", body)
	return s.drive()
}

// Resume continues a parked run from the decision point it parked at.
// The interrupted decision is re-offered to the strategy (same
// Choice.Step), so park+resume is invisible to the decision sequence.
// Like Start, Resume returns nil if the run parks again; the returned
// Result has Start's pooled-ownership caveat.
func (r *Runner) Resume() *core.Result {
	s := r.s
	if !s.parkedRun {
		panic("sched: Resume on a Runner with no parked run")
	}
	s.parkedRun = false
	return s.drive()
}

// Parked reports whether the Runner holds a parked run.
func (r *Runner) Parked() bool { return r.s.parkedRun }

// Abandon tears down a parked run without completing it: every live
// virtual thread is unwound via the abort handshake and returned to
// the Runner's free pool, exactly as at the end of a completed run, so
// an abandoned run leaks no goroutines. The run produces no Result and
// is not reported to RunObserver EndRun hooks. Abandon on a Runner
// with no parked run is a no-op.
func (r *Runner) Abandon() {
	s := r.s
	if !s.parkedRun {
		return
	}
	s.parkedRun = false
	s.teardown()
	s.free = append(s.free, s.threads...)
	s.threads = s.threads[:0]
	s.running = false
}

// Close releases the Runner's pooled goroutines, abandoning a parked
// run first if one is suspended. It is a no-op on a Runner whose last
// run panicked mid-flight (the pool is unrecoverable then; the
// goroutines are leaked exactly as a fresh-scheduler panic leaked
// them).
func (r *Runner) Close() {
	s := r.s
	if s.closed {
		return
	}
	if s.parkedRun {
		r.Abandon()
	}
	s.closed = true
	if s.running || len(s.threads) > 0 {
		return
	}
	for _, th := range s.free {
		th.ready <- resumeMsg{quit: true}
	}
	s.free = nil
}

type tstate uint8

const (
	tReady tstate = iota
	tRunning
	tBlocked
	tSleeping
	tDone
)

// blockKind says what a blocked thread is waiting for, for deadlock
// reporting.
type blockKind uint8

const (
	blockNone blockKind = iota
	blockLock
	blockRW     // write-acquire of a reader/writer lock
	blockRWRead // read-acquire of a reader/writer lock
	blockCond
	blockJoin
	blockWG       // WaitGroup.Wait on a nonzero counter
	blockChanSend // parked sender waiting for a receiver or buffer space
	blockChanRecv // receiver waiting for a value or a close
	blockSelect   // Select with no ready arm
)

// blockSrc evaluates a blocked thread's guard. Synchronization objects
// implement it directly (instead of handing the scheduler closures) so
// blocking allocates nothing on the hot path.
type blockSrc interface {
	// blockReady reports whether the blocked thread could make progress
	// now. The driver evaluates it when building the runnable set; the
	// blocked operation re-checks its own guard after being resumed.
	blockReady(r *blockReason) bool
	// blockHolder names the current holder for wait-for cycle
	// construction (NoThread when unknown or multiple, e.g. readers).
	blockHolder(r *blockReason) core.ThreadID
}

type blockReason struct {
	kind blockKind
	obj  core.ObjectID
	name string
	src  blockSrc
	// tid is the waiting thread's id, for guards that are per-waiter
	// (condition-variable eligibility).
	tid core.ThreadID
}

type resumeMsg struct {
	abort bool
	quit  bool
}

// runSig is the one-per-suspension signal a virtual thread sends the
// driver on runDone: the run either finished for good (sigOver) or
// parked at a decision point with every thread waiting on its resume
// channel (sigParked).
type runSig uint8

const (
	sigOver runSig = iota
	sigParked
)

// stepStatus classifies a scheduling decision's outcome for the
// goroutine that took it: hand control to the returned thread
// (stepGo), the run is finished (stepOver), or the strategy parked the
// run without consuming the decision (stepParked).
type stepStatus uint8

const (
	stepGo stepStatus = iota
	stepOver
	stepParked
)

// engineBug is the panic payload for scheduler-internal invariant
// violations (a strategy picking a non-runnable thread, idling with no
// sleeper). Scheduling decisions execute on virtual-thread goroutines
// now, under the same recover that converts program panics into failed
// runs — engine bugs must NOT take that path (they would silently skew
// statistics as ordinary VerdictFail results), so runBody intercepts
// this type and ferries it back to the driver, which re-panics on the
// Run caller's goroutine exactly as the old driver loop did.
type engineBug struct{ msg string }

// Error makes an escaped engineBug panic print its message.
func (e engineBug) Error() string { return e.msg }

// stepSafe runs step, converting an engineBug panic into a return
// value for callers that cannot rely on runBody's recover (the driver
// at kickoff, and finishHandoff, which runs inside runBody's deferred
// function after recover has already been consumed).
func (s *scheduler) stepSafe() (next *thread, st stepStatus, bug *engineBug) {
	defer func() {
		if rec := recover(); rec != nil {
			eb, ok := rec.(engineBug)
			if !ok {
				panic(rec)
			}
			bug, st = &eb, stepOver
		}
	}()
	next, st = s.step()
	return
}

type thread struct {
	id     core.ThreadID
	name   string
	nameID uint32
	state  tstate
	block  blockReason
	// wakeAt is the virtual deadline for sleeping threads.
	wakeAt int64
	// ready resumes the thread; every resume is answered by exactly one
	// park on the scheduler's parked channel.
	ready chan resumeMsg
	// locksHeld is the ordered multiset of mutexes the thread holds;
	// listeners and deadlock reporting read it.
	locksHeld []core.ObjectID
	// pending describes the operation the thread will perform next if
	// picked; noise heuristics read it through Choice.
	pending PendingOp
	body    func(core.T)
	sc      *scheduler
	// tcv and hv are the thread's reusable core.T facade and join
	// handle, so neither allocates per run.
	tcv tc
	hv  handle
}

// PendingOp describes the operation a thread is about to perform at a
// scheduling point.
type PendingOp struct {
	Op   core.Op
	Name string
	// NameID is the interned handle for Name (0 when the operation has
	// no interned name); strategies that test set membership per
	// scheduling point key on it instead of hashing the string.
	NameID uint32
	Loc    core.Location
}

// Footprint is the operation's reduction-layer identity: its kind plus
// the interned handle of the object it targets. The exploration
// engine's independence relation (core.Footprint.Commutes) and the
// fuzzer's commutation canonicalizer both key on it. It allocates
// nothing — both fields are already carried by the pending op.
func (p PendingOp) Footprint() core.Footprint {
	return core.Footprint{Op: p.Op, Obj: p.NameID}
}

type scheduler struct {
	cfg       Config
	listeners core.MultiListener
	evMask    core.OpMask
	plan      *instrument.Plan
	strategy  Strategy
	// capLoc gates per-operation source-location capture: on only when
	// an attached listener may read locations (core.LocationIndifferent
	// lets location-blind listeners opt out) or the strategy declared
	// LocationAware, because resolving a caller PC is the single most
	// expensive part of an otherwise-listener-free probe.
	capLoc bool
	// wantPending gates publishing Choice.Pending (a multi-word copy
	// per decision); off when the strategy declares PendingFree.
	wantPending bool
	// sleepers counts threads in state tSleeping (whether or not their
	// deadline has passed), so the per-step CanIdle probe can skip the
	// all-threads scan in the common no-sleeps case.
	sleepers int

	threads []*thread
	// free holds pooled threads whose goroutines are parked waiting for
	// their next assignment.
	free []*thread
	// parked carries the abort handshake during teardown; runDone is
	// the one signal per suspension that control has left the virtual
	// threads — either for good (clean completion, failure, deadlock,
	// step limit, divergence) or because the run parked.
	parked  chan *thread
	runDone chan runSig
	cur     *thread

	seq     int64
	steps   int64
	objSeq  core.ObjectID
	nowNs   int64 // virtual clock
	quantum int64

	failure      *core.Failure
	deadlockInfo string
	stepLimitHit bool
	diverged     bool
	// bug carries an engineBug recovered on a virtual thread until the
	// driver re-panics it.
	bug *engineBug

	// outcomeBuf accumulates T.Outcome fragments ';'-joined;
	// finishOrder and schedule keep their backing arrays across runs.
	outcomeBuf  []byte
	nOutcomes   int
	finishOrder []string
	schedule    []core.ThreadID

	runnableBuf []core.ThreadID
	evScratch   core.Event
	hasEvent    bool

	// choice is the reusable decision-point value handed to the
	// strategy each step (with PendingOf bound once per run): built
	// fresh per step it escapes through the interface call and puts a
	// heap allocation on every scheduling decision.
	choice Choice
	// pendingOfFn/footprintOfFn/snapshotToFn cache the method-value
	// closures handed out through Choice (binding one allocates; see
	// reset).
	pendingOfFn   func(core.ThreadID) PendingOp
	footprintOfFn func(core.ThreadID) core.Footprint
	snapshotToFn  func(*Snapshot)

	// start is the run's wall-clock start (zero under SkipTiming); res
	// is the pooled Result returned by Start/Resume.
	start time.Time
	res   core.Result

	// coasting is set when the strategy returned CoastID: the rest of
	// the run follows the built-in nonpreemptive rule without strategy
	// round trips or schedule recording.
	coasting bool
	// Fast-forward state (Config.FastForward): ffDec is the scheduler-
	// owned copy of the prefix (the caller's slice may be reused while
	// a run is parked), ffPos the replay cursor, ffQuiet suppresses
	// listener fan-out until the first post-fast-forward decision
	// (those events are covered by the restored listener state), and
	// ffCheck/hasFFCheck carry the position digest verified there.
	ffDec      []core.ThreadID
	ffPos      int
	ffQuiet    bool
	ffCheck    Snapshot
	hasFFCheck bool
	// parkedRun is set while a run is suspended between Start/Resume
	// and Resume/Abandon.
	parkedRun bool

	// outcomeTab interns Result.Outcome strings and dlTab interns
	// deadlock descriptions: searches revisit the same few outcome and
	// deadlock shapes millions of times, and both strings are built in
	// reusable byte buffers, so interning makes them allocation-free in
	// steady state. Both tables are capped defensively.
	outcomeTab map[string]string
	dlTab      map[string]string

	// Reusable deadlock-description scratch (see describeDeadlock).
	dlArena []byte
	dlParts []dlPart
	dlBuf   []byte
	dlWaits []core.ThreadID
	dlSeen  []int32
	dlPath  []core.ThreadID
	dlCyc   []core.ThreadID

	// Object arenas: the synchronization objects a body creates
	// (NewMutex, NewInt, ...) are recycled across runs in creation
	// order — only one virtual thread runs at a time, so the cursors
	// need no locking, and every object is fully reinitialized when it
	// is handed out. This removes the per-run allocations that dominate
	// pooled-run cost (a body's object set is rebuilt on every one of a
	// search's thousands of executions).
	mus    []*mutex
	rws    []*rwmutex
	conds  []*cond
	ints   []*intvar
	refs   []*refvar
	wgs    []*waitgroup
	chans  []*channel
	nMus   int
	nRWs   int
	nConds int
	nInts  int
	nRefs  int
	nWGs   int
	nChans int

	running bool
	closed  bool
}

// dlPart is one pre-sort deadlock description fragment, as a byte
// range into the scheduler's dlArena.
type dlPart struct{ beg, end int }

// reset reconfigures the scheduler for a new run, truncating the
// reusable buffers and zeroing all per-run state.
func (s *scheduler) reset(cfg Config) {
	if cfg.Strategy == nil {
		cfg.Strategy = Nonpreemptive()
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	if cfg.TimeQuantum <= 0 {
		cfg.TimeQuantum = DefaultTimeQuantum
	}
	s.cfg = cfg
	s.listeners = core.MultiListener(cfg.Listeners)
	s.evMask = s.listeners.WantMask()
	s.plan = cfg.Plan
	s.strategy = cfg.Strategy
	s.capLoc = s.listeners.NeedLocations()
	if !s.capLoc {
		if la, ok := cfg.Strategy.(LocationAware); ok && la.NeedsLocations() {
			s.capLoc = true
		}
	}
	s.wantPending = true
	if pf, ok := cfg.Strategy.(PendingFree); ok && pf.PendingFree() {
		s.wantPending = false
	}

	s.cur = nil
	s.seq = 0
	s.steps = 0
	s.objSeq = 0
	s.nowNs = 0
	s.quantum = int64(cfg.TimeQuantum)
	s.failure = nil
	s.deadlockInfo = ""
	s.bug = nil
	s.stepLimitHit = false
	s.diverged = false
	s.outcomeBuf = s.outcomeBuf[:0]
	s.nOutcomes = 0
	s.finishOrder = s.finishOrder[:0]
	s.schedule = s.schedule[:0]
	s.evScratch = core.Event{}
	s.hasEvent = false
	s.coasting = false
	s.ffDec = append(s.ffDec[:0], cfg.FastForward...)
	s.ffPos = 0
	s.hasFFCheck = cfg.FFCheck != nil
	// An FFCheck with an empty prefix (a snapshot taken at decision 0)
	// still verifies at the first decision.
	s.ffQuiet = len(s.ffDec) > 0 || s.hasFFCheck
	if s.hasFFCheck {
		s.ffCheck = *cfg.FFCheck
	}
	// Drop the config's aliases: the scheduler owns its copies, and a
	// parked run must not pin the caller's (reused) buffers.
	s.cfg.FastForward = nil
	s.cfg.FFCheck = nil
	s.sleepers = 0
	s.nMus, s.nRWs, s.nConds, s.nInts, s.nRefs = 0, 0, 0, 0, 0
	s.nWGs, s.nChans = 0, 0
	// The accessor closures are cached on first use: binding a method
	// value allocates, and reset runs once per pooled run.
	if s.pendingOfFn == nil {
		s.pendingOfFn = s.pendingOf
		s.footprintOfFn = s.footprintOf
		s.snapshotToFn = s.captureSnapshot
	}
	s.choice = Choice{PendingOf: s.pendingOfFn, FootprintOf: s.footprintOfFn, SnapshotTo: s.snapshotToFn}
}

// progLoc resolves the benchmark program's call site (2 frames above
// the tc/object method that calls it), or reports the zero location
// when nothing in this run observes locations.
func (s *scheduler) progLoc() (core.Location, uint32) {
	if !s.capLoc {
		return core.Location{}, 0
	}
	return core.CallerLocationID(2)
}

// drive takes one scheduling decision on the driver goroutine — the
// run's first, or the re-offered decision after a Resume — hands
// control to the picked thread, and sleeps until the virtual threads
// report the run suspended again. From the handoff on, control moves
// directly from thread to thread; the driver wakes only when the run
// is over (finish) or parked (return nil with parkedRun set).
func (s *scheduler) drive() *core.Result {
	next, st, bug := s.stepSafe()
	switch {
	case bug != nil:
		s.bug = bug
	case st == stepParked:
		s.parkedRun = true
		return nil
	case st == stepOver:
	default:
		s.cur = next
		next.ready <- resumeMsg{}
		if <-s.runDone == sigParked {
			s.parkedRun = true
			return nil
		}
	}
	return s.finish()
}

// teardown unwinds every live thread and re-panics a ferried engine
// bug on the driver goroutine.
func (s *scheduler) teardown() {
	s.abortAll()
	if s.bug != nil {
		// An engine bug surfaced on a virtual thread; the teardown
		// above already unwound the other threads, so the pool is
		// intact — now fail as loudly as the old driver loop did.
		msg := s.bug.msg
		s.free = append(s.free, s.threads...)
		s.threads = s.threads[:0]
		s.running = false
		panic(msg)
	}
}

// finish tears the completed run down and builds its Result in the
// pooled slot. Outcome and DeadlockInfo are interned strings and
// FinishOrder aliases the per-run accumulator, so a completed run
// allocates nothing here in steady state.
func (s *scheduler) finish() *core.Result {
	s.teardown()

	res := &s.res
	*res = core.Result{
		Verdict:      core.VerdictPass,
		Failure:      s.failure,
		DeadlockInfo: s.deadlockInfo,
		Outcome:      s.internOutcome(),
		Steps:        s.steps,
		Events:       s.seq,
		Threads:      len(s.threads),
		Diverged:     s.diverged,
	}
	if len(s.finishOrder) > 0 {
		res.FinishOrder = s.finishOrder
	}
	if !s.start.IsZero() {
		res.Elapsed = time.Since(s.start)
	}
	if s.cfg.RecordSchedule {
		res.Schedule = s.schedule
	}
	switch {
	case s.failure != nil:
		res.Verdict = core.VerdictFail
	case s.deadlockInfo != "":
		res.Verdict = core.VerdictDeadlock
	case s.diverged:
		res.Verdict = core.VerdictDiverged
	case s.stepLimitHit:
		res.Verdict = core.VerdictStepLimit
	}
	s.listeners.EndRun(res)

	// Every thread is done; return them to the pool for the next run.
	s.free = append(s.free, s.threads...)
	s.threads = s.threads[:0]
	s.running = false
	return res
}

// internOutcome returns the run's outcome accumulator as an interned
// string: repeated outcomes (a search executes the same few program
// behaviours over and over) hit the table without allocating.
func (s *scheduler) internOutcome() string {
	if len(s.outcomeBuf) == 0 {
		return ""
	}
	if v, ok := s.outcomeTab[string(s.outcomeBuf)]; ok {
		return v
	}
	v := string(s.outcomeBuf)
	if s.outcomeTab == nil {
		s.outcomeTab = make(map[string]string, 64)
	}
	if len(s.outcomeTab) < 1<<12 {
		s.outcomeTab[v] = v
	}
	return v
}

// step is one scheduling decision, executed inline by whichever
// goroutine currently holds control (the driver at kickoff or resume,
// the yielding virtual thread everywhere else — the overhaul that
// removed the per-step round trip through a driver goroutine). It
// returns the thread control should pass to, stepOver when the run is
// finished (clean completion, failure, deadlock, step limit, or
// strategy divergence), or stepParked when the strategy parked the run
// without consuming the decision.
func (s *scheduler) step() (next *thread, st stepStatus) {
	if s.ffPos < len(s.ffDec) {
		return s.ffStep()
	}
	if s.coasting {
		return s.coastStep()
	}
	for {
		if s.failure != nil {
			return nil, stepOver
		}
		runnable := s.runnable()
		if len(runnable) == 0 {
			if s.advanceTime() {
				continue
			}
			if s.liveCount() == 0 {
				return nil, stepOver // clean completion
			}
			s.deadlockInfo = s.describeDeadlock()
			return nil, stepOver
		}
		if s.steps >= s.cfg.MaxSteps {
			s.stepLimitHit = true
			return nil, stepOver
		}
		if s.ffQuiet {
			// First decision after a fast-forward: resume listener
			// fan-out and verify the restored position. The check runs
			// here — after the silent time warps above — because the
			// digest was captured at the matching point of the recorded
			// run, with any pre-decision warps already applied.
			s.ffQuiet = false
			if s.hasFFCheck && !s.matchSnapshot(&s.ffCheck) {
				s.diverged = true
				return nil, stepOver
			}
		}

		choice := &s.choice
		choice.Step = s.steps
		choice.Runnable = runnable
		choice.Current = core.NoThread
		choice.LastEvent = nil
		if s.cur != nil {
			choice.Current = s.cur.id
		}
		// Publishing the pending operation copies a multi-word struct
		// every decision; PendingFree strategies opt out of paying it.
		if s.wantPending {
			choice.Pending = PendingOp{}
			if s.cur != nil {
				choice.Pending = s.cur.pending
			}
		}
		if s.hasEvent {
			choice.LastEvent = &s.evScratch
		}
		choice.CanIdle = s.hasFutureSleeper()
		pick := s.strategy.Pick(choice)
		switch pick {
		case core.NoThread:
			s.diverged = true
			return nil, stepOver
		case ParkID:
			// The decision is not consumed: no step is counted and
			// nothing is recorded, so the same Choice is re-offered to
			// the first Pick after Resume.
			return nil, stepParked
		case CoastID:
			// The strategy hands the rest of the run to the built-in
			// nonpreemptive rule, starting with this decision; coasted
			// decisions are counted but not recorded.
			s.coasting = true
			s.steps++
			if s.cur != nil && slices.Contains(runnable, s.cur.id) {
				return s.cur, stepGo
			}
			return s.threadByID(runnable[0]), stepGo
		}
		s.steps++
		if s.cfg.RecordSchedule {
			s.schedule = append(s.schedule, pick)
		}
		if pick == IdleID {
			if !choice.CanIdle || !s.advanceTime() {
				panic(engineBug{fmt.Sprintf("sched: strategy %s idled with no sleeper", s.strategy.Name())})
			}
			continue
		}
		th := s.threadByID(pick)
		if th == nil || !slices.Contains(runnable, pick) {
			// A strategy bug: fail loudly rather than silently skewing
			// statistics (engineBug propagates to the Run caller).
			panic(engineBug{fmt.Sprintf("sched: strategy %s picked non-runnable thread %d (runnable %v)",
				s.strategy.Name(), pick, runnable)})
		}
		return th, stepGo
	}
}

// coastStep is the post-CoastID decision path: follow the
// nonpreemptive rule (current thread while it can run, lowest-id
// runnable otherwise) without consulting the strategy or recording the
// schedule. Step counting, virtual-time advancement, deadlock
// detection and the step limit match step exactly, so a coasted run
// ends with the verdict and outcome a nonpreemptive fallback strategy
// would have produced. When the current thread merely yielded at a
// scheduling point (tReady) nothing else can have changed state, so
// the fast path skips even the runnable scan and hands control
// straight back — no channel operation, no goroutine switch.
func (s *scheduler) coastStep() (next *thread, st stepStatus) {
	if s.failure != nil {
		return nil, stepOver
	}
	if s.cur != nil && s.cur.state == tReady {
		if s.steps >= s.cfg.MaxSteps {
			s.stepLimitHit = true
			return nil, stepOver
		}
		s.steps++
		return s.cur, stepGo
	}
	for {
		runnable := s.runnable()
		if len(runnable) == 0 {
			if s.advanceTime() {
				continue
			}
			if s.liveCount() == 0 {
				return nil, stepOver // clean completion
			}
			s.deadlockInfo = s.describeDeadlock()
			return nil, stepOver
		}
		if s.steps >= s.cfg.MaxSteps {
			s.stepLimitHit = true
			return nil, stepOver
		}
		s.steps++
		if s.cur != nil && slices.Contains(runnable, s.cur.id) {
			return s.cur, stepGo
		}
		return s.threadByID(runnable[0]), stepGo
	}
}

// runnable returns the ids of threads that can run now, in id order:
// ready threads, blocked threads whose guard is satisfied, and sleeping
// threads whose deadline passed. The returned slice is the scheduler's
// scratch buffer, valid until the next call.
func (s *scheduler) runnable() []core.ThreadID {
	out := s.runnableBuf[:0]
	for _, th := range s.threads {
		switch th.state {
		case tReady:
			out = append(out, th.id)
		case tBlocked:
			if th.block.src == nil || th.block.src.blockReady(&th.block) {
				out = append(out, th.id)
			}
		case tSleeping:
			if th.wakeAt <= s.now() {
				out = append(out, th.id)
			}
		}
	}
	s.runnableBuf = out
	return out
}

// hasFutureSleeper reports whether some thread sleeps on a deadline
// the clock has not reached (i.e. idling would change state).
func (s *scheduler) hasFutureSleeper() bool {
	if s.sleepers == 0 {
		return false
	}
	now := s.now()
	for _, th := range s.threads {
		if th.state == tSleeping && th.wakeAt > now {
			return true
		}
	}
	return false
}

// advanceTime warps the virtual clock to the earliest sleeping thread's
// deadline and reports whether any thread became runnable.
func (s *scheduler) advanceTime() bool {
	var min int64 = -1
	now := s.now()
	for _, th := range s.threads {
		if th.state == tSleeping && th.wakeAt > now && (min < 0 || th.wakeAt < min) {
			min = th.wakeAt
		}
	}
	if min < 0 {
		return false
	}
	s.nowNs += min - now
	return true
}

func (s *scheduler) liveCount() int {
	n := 0
	for _, th := range s.threads {
		if th.state != tDone {
			n++
		}
	}
	return n
}

func (s *scheduler) threadByID(id core.ThreadID) *thread {
	if int(id) < 0 || int(id) >= len(s.threads) {
		return nil
	}
	return s.threads[id]
}

// pendingOf reports a thread's published pending operation.
func (s *scheduler) pendingOf(id core.ThreadID) PendingOp {
	th := s.threadByID(id)
	if th == nil {
		return PendingOp{}
	}
	return th.pending
}

// footprintOf is the register-sized fast path behind Choice.
// FootprintOf: the pending operation's reduction identity without
// copying the whole PendingOp (whose Name/Loc strings make it a
// several-word struct).
func (s *scheduler) footprintOf(id core.ThreadID) core.Footprint {
	th := s.threadByID(id)
	if th == nil {
		return core.Footprint{}
	}
	return core.Footprint{Op: th.pending.Op, Obj: th.pending.NameID}
}

// describeDeadlock builds the human-readable wait-for description used
// in VerdictDeadlock results: every live thread with what it waits
// for, plus the lock cycle if one exists. The builder is
// allocation-free in steady state: fragments are composed in a
// reusable arena, sorted as byte ranges, and the finished description
// is interned — exploration revisits the same few deadlock shapes
// thousands of times, and bug deduplication keys on the exact string,
// so repeated deadlocks cost a table lookup instead of a dozen
// Sprintf allocations.
func (s *scheduler) describeDeadlock() string {
	arena := s.dlArena[:0]
	s.dlParts = s.dlParts[:0]
	if cap(s.dlWaits) < len(s.threads) {
		s.dlWaits = make([]core.ThreadID, len(s.threads))
	}
	waits := s.dlWaits[:len(s.threads)]
	for i := range waits {
		waits[i] = core.NoThread
	}
	hasEdge := false
	for _, th := range s.threads {
		if th.state == tDone {
			continue
		}
		beg := len(arena)
		arena = append(arena, 't')
		arena = strconv.AppendInt(arena, int64(th.id), 10)
		arena = append(arena, '(')
		arena = append(arena, th.name...)
		arena = append(arena, ')', ' ')
		switch th.state {
		case tSleeping:
			arena = append(arena, "sleeping"...)
		case tBlocked:
			arena = append(arena, "blocked on "...)
			switch th.block.kind {
			case blockLock:
				arena = append(arena, "lock"...)
			case blockRW, blockRWRead:
				arena = append(arena, "rwlock"...)
			case blockCond:
				arena = append(arena, "cond"...)
			case blockJoin:
				arena = append(arena, "join"...)
			case blockWG:
				arena = append(arena, "waitgroup"...)
			case blockChanSend:
				arena = append(arena, "chan-send"...)
			case blockChanRecv:
				arena = append(arena, "chan-recv"...)
			case blockSelect:
				arena = append(arena, "select"...)
			}
			arena = append(arena, ' ')
			arena = strconv.AppendQuote(arena, th.block.name)
			if th.block.src != nil {
				if h := th.block.src.blockHolder(&th.block); h != core.NoThread {
					waits[th.id] = h
					hasEdge = true
				}
			}
		default:
			arena = strconv.AppendUint(arena, uint64(th.state), 10)
		}
		s.dlParts = append(s.dlParts, dlPart{beg, len(arena)})
	}
	s.dlArena = arena
	slices.SortFunc(s.dlParts, func(a, b dlPart) int {
		return bytes.Compare(arena[a.beg:a.end], arena[b.beg:b.end])
	})
	buf := s.dlBuf[:0]
	for i, p := range s.dlParts {
		if i > 0 {
			buf = append(buf, "; "...)
		}
		buf = append(buf, arena[p.beg:p.end]...)
	}
	if hasEdge {
		if cyc := s.findCycle(waits); len(cyc) > 0 {
			buf = append(buf, " [cycle: "...)
			for i, id := range cyc {
				if i > 0 {
					buf = append(buf, '-', '>')
				}
				buf = append(buf, 't')
				buf = strconv.AppendInt(buf, int64(id), 10)
			}
			buf = append(buf, ']')
		}
	}
	s.dlBuf = buf
	if v, ok := s.dlTab[string(buf)]; ok {
		return v
	}
	v := string(buf)
	if s.dlTab == nil {
		s.dlTab = make(map[string]string, 16)
	}
	if len(s.dlTab) < 1<<12 {
		s.dlTab[v] = v
	}
	return v
}

// findCycle finds a cycle in the wait-for table (indexed by thread id,
// core.NoThread = no edge), returning the thread ids along it (empty
// if none). The result is canonical — starts are probed in ascending
// id order and the cycle is rotated to begin at its smallest id — so
// identical deadlocks always produce identical descriptions. Bug
// deduplication (explore.bugKey) depends on this. The walk reuses
// scheduler scratch buffers and allocates nothing in steady state.
func (s *scheduler) findCycle(waits []core.ThreadID) []core.ThreadID {
	if cap(s.dlSeen) < len(waits) {
		s.dlSeen = make([]int32, len(waits))
	}
	seen := s.dlSeen[:len(waits)]
	for start := range waits {
		if waits[start] == core.NoThread {
			continue
		}
		for i := range seen {
			seen[i] = -1
		}
		path := s.dlPath[:0]
		cur := core.ThreadID(start)
		for {
			if i := seen[cur]; i >= 0 {
				s.dlPath = path
				return s.canonicalCycle(path[i:])
			}
			next := waits[cur]
			if next == core.NoThread {
				break
			}
			seen[cur] = int32(len(path))
			path = append(path, cur)
			cur = next
		}
		s.dlPath = path
	}
	return nil
}

// canonicalCycle rotates an open cycle to start at its smallest thread
// id and closes it by repeating that id at the end, into a reusable
// buffer.
func (s *scheduler) canonicalCycle(cyc []core.ThreadID) []core.ThreadID {
	min := 0
	for i, id := range cyc {
		if id < cyc[min] {
			min = i
		}
	}
	out := s.dlCyc[:0]
	out = append(out, cyc[min:]...)
	out = append(out, cyc[:min]...)
	out = append(out, out[0])
	s.dlCyc = out
	return out
}

// abortAll unwinds every live thread so no goroutines outlive the run.
func (s *scheduler) abortAll() {
	for _, th := range s.threads {
		if th.state == tDone {
			continue
		}
		th.ready <- resumeMsg{abort: true}
		<-s.parked
	}
}

// spawn creates a virtual thread, reusing a pooled one (and its
// goroutine and resume channel) when available. The new thread does
// not run until the driver picks it.
func (s *scheduler) spawn(name string, body func(core.T)) *thread {
	var th *thread
	if n := len(s.free); n > 0 {
		th = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		th = &thread{ready: make(chan resumeMsg), sc: s}
		th.tcv.th = th
		th.hv.child = th
		go func() {
			// Labels are inherited from the spawner at go-statement
			// time; set the vthread label inside the goroutine so a
			// pooled thread never carries whatever driver-phase label
			// happened to be active when it was first created.
			pprof.SetGoroutineLabels(vthreadLabels)
			th.loop()
		}()
	}
	th.id = core.ThreadID(len(s.threads))
	// Pooled threads usually get the same name run after run (the
	// repository bodies name deterministically), so a matching cached
	// name skips the intern-table lookup; InternName("") is 0, and the
	// nameID == 0 guard keeps fresh threads on the interning path.
	if th.name != name || th.nameID == 0 {
		th.name = name
		th.nameID = core.InternName(name)
	}
	th.state = tReady
	th.block = blockReason{}
	th.wakeAt = 0
	th.locksHeld = th.locksHeld[:0]
	th.pending = PendingOp{}
	th.body = body
	s.threads = append(s.threads, th)
	return th
}

// loop is the persistent goroutine body of a pooled thread: each
// iteration serves one assignment of the thread to a run. The
// happens-before chain for the cross-run field writes in spawn runs
// through the ready channel: spawn's writes precede the spawning
// thread's park, which precedes the driver's resume send, which
// precedes this goroutine's receive.
func (th *thread) loop() {
	for {
		msg := <-th.ready
		switch {
		case msg.quit:
			return
		case msg.abort:
			// Aborted before ever running (run torn down first).
			th.state = tDone
			th.sc.parked <- th
		default:
			th.state = tRunning
			th.runBody()
		}
	}
}

// runBody executes one assignment of the thread's body, converting
// oracle failures and teardown aborts (both delivered as panics) into
// scheduler state.
func (th *thread) runBody() {
	defer func() {
		rec := recover()
		s := th.sc
		if eb, ok := rec.(engineBug); ok {
			// Scheduler invariant violation: hand it to the driver to
			// re-panic on the Run caller's goroutine; this goroutine
			// returns to the pool.
			th.state = tDone
			s.bug = &eb
			s.runDone <- sigOver
			return
		}
		fail, aborted := core.RecoverThread(rec, th.id)
		if aborted {
			// Teardown handshake: the driver is sweeping threads down
			// and waits for each on the parked channel.
			th.state = tDone
			s.parked <- th
			return
		}
		if fail != nil {
			if s.failure == nil {
				s.failure = fail
			}
		} else {
			s.finishOrder = append(s.finishOrder, th.name)
			s.emit(th, core.OpEnd, core.NoObject, "", 0, 0, 0, core.Location{}, 0)
		}
		th.state = tDone
		th.finishHandoff()
	}()
	th.body(&th.tcv)
}

// finishHandoff passes control on after this thread's body ended
// (normally or by a failed oracle): pick the next thread inline and
// wake it, or report the run over. The dying thread stays s.cur, so
// the next decision's Choice.Current names it exactly as it did when a
// driver goroutine drove the loop.
func (th *thread) finishHandoff() {
	s := th.sc
	next, st, bug := s.stepSafe()
	if bug != nil {
		s.bug = bug
		s.runDone <- sigOver
		return
	}
	switch st {
	case stepOver:
		s.runDone <- sigOver
	case stepParked:
		// The run parks with this thread already finished: report the
		// park and return to the pool loop. The driver re-takes the
		// decision on Resume; s.cur still names this thread, so the
		// re-offered Choice.Current is unchanged.
		s.runDone <- sigParked
	default:
		s.cur = next
		next.ready <- resumeMsg{}
	}
}

// park takes one scheduling decision on behalf of the scheduler and
// yields accordingly: if the strategy keeps this thread, park returns
// without any goroutine switch at all; if it picks another thread,
// control is handed to it directly and park sleeps until some later
// decision picks this thread again; if the decision ends the run, the
// driver is woken and this thread waits for the teardown abort. The
// caller must have set th.state (and th.block for blocked parks).
func (th *thread) park() {
	s := th.sc
	next, st := s.step()
	if st == stepOver {
		s.runDone <- sigOver
		th.awaitAbort()
	}
	if st == stepParked {
		// The run parks at this thread's decision point: report it to
		// the driver, then wait exactly like a descheduled thread — a
		// decision after Resume may pick this thread again, or the
		// teardown abort unwinds it.
		s.runDone <- sigParked
		msg := <-th.ready
		if msg.abort {
			core.AbortNow()
		}
	} else if next != th {
		s.cur = next
		next.ready <- resumeMsg{}
		msg := <-th.ready
		if msg.abort {
			core.AbortNow()
		}
	}
	if th.state == tSleeping {
		s.sleepers--
	}
	th.state = tRunning
	th.block = blockReason{}
}

// awaitAbort parks a thread that has reported the run over; the only
// message that can arrive is the teardown abort (Close's quit is only
// ever sent to pooled threads), which unwinds the thread's body.
func (th *thread) awaitAbort() {
	<-th.ready
	core.AbortNow()
}

// point is a scheduling point: the running thread offers the strategy a
// chance to run someone else before its next operation.
func (th *thread) point() {
	th.state = tReady
	th.park()
}

// blockOn parks the thread until its guard holds. The caller must
// re-check its guard afterwards in a loop: the driver guarantees the
// guard held when it picked the thread, and since nothing ran in
// between it still holds, but the loop keeps the invariant local.
func (th *thread) blockOn(reason blockReason) {
	th.state = tBlocked
	th.block = reason
	th.park()
}

// emit delivers an event to the listeners. Only the running thread
// calls it, so no locking is needed. It returns false if the plan
// suppressed the probe. The event is always materialized in evScratch
// (strategies observe it through Choice.LastEvent), but listener
// fan-out is skipped for event classes outside the subscription mask.
func (s *scheduler) emit(th *thread, op core.Op, obj core.ObjectID, name string, nameID uint32, value int64, flags core.Flags, loc core.Location, locID uint32) bool {
	if !s.plan.Enabled(op, name) {
		return false
	}
	s.seq++
	if s.ffPos < len(s.ffDec) {
		// Mid-fast-forward: the listeners already saw these events (the
		// restored state covers them) and no decision point runs before
		// the next event overwrites the scratch, so only the sequence
		// counter must match a full replay. The final replayed
		// operation's events fall through and materialize normally —
		// the first post-fast-forward decision observes them through
		// Choice.LastEvent exactly as a full replay would.
		s.hasEvent = true
		return true
	}
	// Field-at-a-time into the scratch event: a composite literal here
	// builds a temporary and block-copies it on every probe.
	ev := &s.evScratch
	ev.Seq = s.seq
	ev.Thread = th.id
	ev.Op = op
	ev.Obj = obj
	ev.Name = name
	ev.Value = value
	ev.Flags = flags
	ev.Loc = loc
	ev.NameID = nameID
	ev.LocID = locID
	s.hasEvent = true
	// ffQuiet covers the tail of a fast-forward — the final replayed
	// operation's events, emitted after the last recorded decision was
	// consumed but before the verification point.
	if s.evMask.Has(op) && !s.ffQuiet {
		s.listeners.OnEvent(&s.evScratch)
	}
	return true
}

// prePoint takes the scheduling point that precedes an instrumented
// operation, unless the plan suppressed the probe. The pending
// operation is published so strategies (noise heuristics in
// particular) can key their decision on what the thread is about to
// do.
func (th *thread) prePoint(op core.Op, name string, nameID uint32, loc core.Location) {
	if !th.sc.plan.Enabled(op, name) {
		return
	}
	th.pending.Op = op
	th.pending.Name = name
	th.pending.NameID = nameID
	th.pending.Loc = loc
	th.point()
}

// Now returns the scheduler's virtual clock; the clock also advances
// one quantum per scheduling step.
func (s *scheduler) now() int64 {
	return s.nowNs + s.steps*s.quantum
}
