package sched

import (
	"fmt"
	"time"

	"mtbench/internal/core"
)

// tc is the controlled runtime's implementation of core.T. One tc wraps
// one virtual thread; all operations route through the thread's
// scheduler.
type tc struct {
	th *thread
}

var _ core.T = (*tc)(nil)

func (c *tc) ID() core.ThreadID { return c.th.id }
func (c *tc) Name() string      { return c.th.name }

// loc resolves the benchmark program's call site: 2 frames above the
// core helper (program -> tc method -> CallerLocation).
func progLoc() core.Location { return core.CallerLocation(2) }

func (c *tc) Go(name string, fn func(t core.T)) core.Handle {
	th, s := c.th, c.th.sc
	loc := progLoc()
	th.prePoint(core.OpFork, name, loc)
	child := s.spawn(name, func(t core.T) { fn(t) })
	s.emit(th, core.OpFork, core.NoObject, name, int64(child.id), 0, loc)
	return &handle{child: child}
}

func (c *tc) Yield() {
	th, s := c.th, c.th.sc
	loc := progLoc()
	th.prePoint(core.OpYield, "", loc)
	s.emit(th, core.OpYield, core.NoObject, "", 0, 0, loc)
}

func (c *tc) Sleep(d time.Duration) {
	th, s := c.th, c.th.sc
	loc := progLoc()
	th.prePoint(core.OpSleep, "", loc)
	s.emit(th, core.OpSleep, core.NoObject, "", int64(d), 0, loc)
	if d <= 0 {
		return
	}
	th.wakeAt = s.now() + int64(d)
	th.state = tSleeping
	th.park()
}

func (c *tc) Assert(cond bool, format string, args ...any) {
	if cond {
		return
	}
	c.fail(core.CallerLocation(1), format, args...)
}

func (c *tc) Failf(format string, args ...any) {
	c.fail(core.CallerLocation(1), format, args...)
}

func (c *tc) fail(loc core.Location, format string, args ...any) {
	th, s := c.th, c.th.sc
	msg := fmt.Sprintf(format, args...)
	s.emit(th, core.OpFail, core.NoObject, msg, 0, 0, loc)
	core.FailNow(core.Failure{Msg: msg, Thread: th.id, Loc: loc})
}

func (c *tc) Outcome(format string, args ...any) {
	th, s := c.th, c.th.sc
	loc := progLoc()
	frag := fmt.Sprintf(format, args...)
	s.outcome = append(s.outcome, frag)
	s.emit(th, core.OpOutcome, core.NoObject, frag, 0, 0, loc)
}

func (c *tc) NewMutex(name string) core.Mutex {
	s := c.th.sc
	s.objSeq++
	return &mutex{id: s.objSeq, name: name, sc: s, holder: core.NoThread}
}

func (c *tc) NewRWMutex(name string) core.RWMutex {
	s := c.th.sc
	s.objSeq++
	return &rwmutex{id: s.objSeq, name: name, sc: s, writer: core.NoThread}
}

func (c *tc) NewCond(name string, mu core.Mutex) core.Cond {
	s := c.th.sc
	m, ok := mu.(*mutex)
	if !ok {
		panic("sched: NewCond requires a mutex created by this runtime")
	}
	s.objSeq++
	return &cond{id: s.objSeq, name: name, sc: s, mu: m}
}

func (c *tc) NewInt(name string, init int64) core.IntVar {
	s := c.th.sc
	s.objSeq++
	return &intvar{id: s.objSeq, name: name, sc: s, val: init}
}

func (c *tc) NewAtomicInt(name string, init int64) core.IntVar {
	s := c.th.sc
	s.objSeq++
	return &intvar{id: s.objSeq, name: name, sc: s, val: init, atomic: true}
}

func (c *tc) NewRef(name string) core.RefVar {
	s := c.th.sc
	s.objSeq++
	return &refvar{id: s.objSeq, name: name, sc: s}
}

// handle implements core.Handle for controlled threads.
type handle struct {
	child *thread
}

func (h *handle) TID() core.ThreadID { return h.child.id }

func (h *handle) Join(t core.T) {
	c := t.(*tc)
	th, s := c.th, c.th.sc
	loc := progLoc()
	th.prePoint(core.OpJoin, h.child.name, loc)
	for h.child.state != tDone {
		th.blockOn(blockReason{
			kind:  blockJoin,
			name:  h.child.name,
			ready: func() bool { return h.child.state == tDone },
		})
	}
	s.emit(th, core.OpJoin, core.NoObject, h.child.name, int64(h.child.id), 0, loc)
}
