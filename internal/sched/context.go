package sched

import (
	"fmt"
	"strings"
	"time"

	"mtbench/internal/core"
)

// tc is the controlled runtime's implementation of core.T. One tc wraps
// one virtual thread; all operations route through the thread's
// scheduler. Each thread embeds its tc, so handing the program its
// context allocates nothing.
type tc struct {
	th *thread
}

var _ core.T = (*tc)(nil)

func (c *tc) ID() core.ThreadID { return c.th.id }
func (c *tc) Name() string      { return c.th.name }

func (c *tc) Go(name string, fn func(t core.T)) core.Handle {
	th, s := c.th, c.th.sc
	loc, locID := s.progLoc()
	th.prePoint(core.OpFork, name, 0, loc)
	child := s.spawn(name, fn)
	s.emit(th, core.OpFork, core.NoObject, name, child.nameID, int64(child.id), 0, loc, locID)
	return &child.hv
}

func (c *tc) Yield() {
	th, s := c.th, c.th.sc
	loc, locID := s.progLoc()
	th.prePoint(core.OpYield, "", 0, loc)
	s.emit(th, core.OpYield, core.NoObject, "", 0, 0, 0, loc, locID)
}

func (c *tc) Sleep(d time.Duration) {
	th, s := c.th, c.th.sc
	loc, locID := s.progLoc()
	th.prePoint(core.OpSleep, "", 0, loc)
	s.emit(th, core.OpSleep, core.NoObject, "", 0, int64(d), 0, loc, locID)
	if d <= 0 {
		return
	}
	th.wakeAt = s.now() + int64(d)
	th.state = tSleeping
	s.sleepers++
	th.park()
}

func (c *tc) Assert(cond bool, format string, args ...any) {
	if cond {
		return
	}
	c.fail(core.CallerLocation(1), format, args...)
}

func (c *tc) Failf(format string, args ...any) {
	c.fail(core.CallerLocation(1), format, args...)
}

// lazyFormat is the zero-allocation fast path for the verb-free
// common case: a format with no arguments and no '%' is its own
// result, byte for byte; anything else (including stray or escaped
// verbs with no args) goes through Sprintf exactly as before.
func lazyFormat(format string, args []any) string {
	if len(args) == 0 && !strings.ContainsRune(format, '%') {
		return format
	}
	return fmt.Sprintf(format, args...)
}

func (c *tc) fail(loc core.Location, format string, args ...any) {
	th, s := c.th, c.th.sc
	msg := lazyFormat(format, args)
	s.emit(th, core.OpFail, core.NoObject, msg, 0, 0, 0, loc, 0)
	core.FailNow(core.Failure{Msg: msg, Thread: th.id, Loc: loc})
}

// Outcome appends a fragment to the run's outcome accumulator. Plain
// fragments skip formatting entirely (see lazyFormat) — programs that
// report constant outcomes inside loops stop allocating per call — and
// the accumulator is a reused byte buffer joined with ';' exactly as
// the old per-fragment string slice was.
func (c *tc) Outcome(format string, args ...any) {
	th, s := c.th, c.th.sc
	loc, locID := s.progLoc()
	frag := lazyFormat(format, args)
	if s.nOutcomes > 0 {
		s.outcomeBuf = append(s.outcomeBuf, ';')
	}
	s.outcomeBuf = append(s.outcomeBuf, frag...)
	s.nOutcomes++
	s.emit(th, core.OpOutcome, core.NoObject, frag, 0, 0, 0, loc, locID)
}

// The object constructors hand out arena-recycled objects in creation
// order (see the scheduler's object arenas): the Nth NewMutex of a run
// reuses the Nth mutex slot, fully reinitialized. Only one virtual
// thread runs at a time, so the cursor bumps are race-free and the
// slot sequence is deterministic per schedule.

// reuseNameID returns an arena slot's cached intern handle when the
// slot is reinitialized under the same name it carried last run — the
// common case for deterministic bodies, where the Nth object of every
// run has the same name — avoiding the global intern-table lookup on
// the per-run object-creation path.
func reuseNameID(prevName string, prevID uint32, name string) uint32 {
	if prevID != 0 && prevName == name {
		return prevID
	}
	return core.InternName(name)
}

func (c *tc) NewMutex(name string) core.Mutex {
	s := c.th.sc
	s.objSeq++
	if s.nMus == len(s.mus) {
		s.mus = append(s.mus, &mutex{})
	}
	m := s.mus[s.nMus]
	s.nMus++
	*m = mutex{id: s.objSeq, name: name, nameID: reuseNameID(m.name, m.nameID, name), sc: s, holder: core.NoThread}
	return m
}

func (c *tc) NewRWMutex(name string) core.RWMutex {
	s := c.th.sc
	s.objSeq++
	if s.nRWs == len(s.rws) {
		s.rws = append(s.rws, &rwmutex{})
	}
	w := s.rws[s.nRWs]
	s.nRWs++
	readers := w.readers
	clear(readers)
	*w = rwmutex{id: s.objSeq, name: name, nameID: reuseNameID(w.name, w.nameID, name), sc: s, writer: core.NoThread, readers: readers}
	return w
}

func (c *tc) NewCond(name string, mu core.Mutex) core.Cond {
	s := c.th.sc
	m, ok := mu.(*mutex)
	if !ok {
		panic("sched: NewCond requires a mutex created by this runtime")
	}
	s.objSeq++
	if s.nConds == len(s.conds) {
		s.conds = append(s.conds, &cond{})
	}
	cd := s.conds[s.nConds]
	s.nConds++
	eligible := cd.eligible
	clear(eligible)
	*cd = cond{id: s.objSeq, name: name, nameID: reuseNameID(cd.name, cd.nameID, name), sc: s, mu: m, waiters: cd.waiters[:0], eligible: eligible}
	return cd
}

func (c *tc) NewInt(name string, init int64) core.IntVar {
	return c.th.sc.newIntVar(name, init, false)
}

func (c *tc) NewAtomicInt(name string, init int64) core.IntVar {
	return c.th.sc.newIntVar(name, init, true)
}

func (s *scheduler) newIntVar(name string, init int64, atomic bool) core.IntVar {
	s.objSeq++
	if s.nInts == len(s.ints) {
		s.ints = append(s.ints, &intvar{})
	}
	v := s.ints[s.nInts]
	s.nInts++
	*v = intvar{id: s.objSeq, name: name, nameID: reuseNameID(v.name, v.nameID, name), sc: s, val: init, atomic: atomic}
	return v
}

func (c *tc) NewRef(name string) core.RefVar {
	s := c.th.sc
	s.objSeq++
	if s.nRefs == len(s.refs) {
		s.refs = append(s.refs, &refvar{})
	}
	v := s.refs[s.nRefs]
	s.nRefs++
	*v = refvar{id: s.objSeq, name: name, nameID: reuseNameID(v.name, v.nameID, name), sc: s}
	return v
}

func (c *tc) NewWaitGroup(name string) core.WaitGroup {
	s := c.th.sc
	s.objSeq++
	if s.nWGs == len(s.wgs) {
		s.wgs = append(s.wgs, &waitgroup{})
	}
	w := s.wgs[s.nWGs]
	s.nWGs++
	*w = waitgroup{id: s.objSeq, name: name, nameID: reuseNameID(w.name, w.nameID, name), sc: s}
	return w
}

func (c *tc) NewChan(name string, capn int) core.Chan {
	s := c.th.sc
	s.objSeq++
	if s.nChans == len(s.chans) {
		s.chans = append(s.chans, &channel{})
	}
	ch := s.chans[s.nChans]
	s.nChans++
	*ch = channel{id: s.objSeq, name: name, nameID: reuseNameID(ch.name, ch.nameID, name), sc: s,
		capn: capn, buf: ch.buf[:0], sendq: ch.sendq[:0]}
	return ch
}

// handle implements core.Handle for controlled threads. Each thread
// embeds the handle for its own joiners, so Go allocates nothing for
// it.
type handle struct {
	child *thread
}

func (h *handle) TID() core.ThreadID { return h.child.id }

func (h *handle) Join(t core.T) {
	c := t.(*tc)
	th, s := c.th, c.th.sc
	loc, locID := s.progLoc()
	th.prePoint(core.OpJoin, h.child.name, h.child.nameID, loc)
	for h.child.state != tDone {
		th.blockOn(blockReason{
			kind: blockJoin,
			name: h.child.name,
			src:  h.child,
		})
	}
	s.emit(th, core.OpJoin, core.NoObject, h.child.name, h.child.nameID, int64(h.child.id), 0, loc, locID)
}

// blockReady implements blockSrc for join waits.
func (th *thread) blockReady(*blockReason) bool { return th.state == tDone }

// blockHolder implements blockSrc for join waits; the joined thread is
// not a lock holder, so no wait-for edge is reported.
func (th *thread) blockHolder(*blockReason) core.ThreadID { return core.NoThread }
