package sched

import (
	"fmt"
	"strings"
	"time"

	"mtbench/internal/core"
)

// tc is the controlled runtime's implementation of core.T. One tc wraps
// one virtual thread; all operations route through the thread's
// scheduler. Each thread embeds its tc, so handing the program its
// context allocates nothing.
type tc struct {
	th *thread
}

var _ core.T = (*tc)(nil)

func (c *tc) ID() core.ThreadID { return c.th.id }
func (c *tc) Name() string      { return c.th.name }

func (c *tc) Go(name string, fn func(t core.T)) core.Handle {
	th, s := c.th, c.th.sc
	loc, locID := s.progLoc()
	th.prePoint(core.OpFork, name, 0, loc)
	child := s.spawn(name, fn)
	s.emit(th, core.OpFork, core.NoObject, name, child.nameID, int64(child.id), 0, loc, locID)
	return &child.hv
}

func (c *tc) Yield() {
	th, s := c.th, c.th.sc
	loc, locID := s.progLoc()
	th.prePoint(core.OpYield, "", 0, loc)
	s.emit(th, core.OpYield, core.NoObject, "", 0, 0, 0, loc, locID)
}

func (c *tc) Sleep(d time.Duration) {
	th, s := c.th, c.th.sc
	loc, locID := s.progLoc()
	th.prePoint(core.OpSleep, "", 0, loc)
	s.emit(th, core.OpSleep, core.NoObject, "", 0, int64(d), 0, loc, locID)
	if d <= 0 {
		return
	}
	th.wakeAt = s.now() + int64(d)
	th.state = tSleeping
	th.park()
}

func (c *tc) Assert(cond bool, format string, args ...any) {
	if cond {
		return
	}
	c.fail(core.CallerLocation(1), format, args...)
}

func (c *tc) Failf(format string, args ...any) {
	c.fail(core.CallerLocation(1), format, args...)
}

// lazyFormat is the zero-allocation fast path for the verb-free
// common case: a format with no arguments and no '%' is its own
// result, byte for byte; anything else (including stray or escaped
// verbs with no args) goes through Sprintf exactly as before.
func lazyFormat(format string, args []any) string {
	if len(args) == 0 && !strings.ContainsRune(format, '%') {
		return format
	}
	return fmt.Sprintf(format, args...)
}

func (c *tc) fail(loc core.Location, format string, args ...any) {
	th, s := c.th, c.th.sc
	msg := lazyFormat(format, args)
	s.emit(th, core.OpFail, core.NoObject, msg, 0, 0, 0, loc, 0)
	core.FailNow(core.Failure{Msg: msg, Thread: th.id, Loc: loc})
}

// Outcome appends a fragment to the run's outcome accumulator. Plain
// fragments skip formatting entirely (see lazyFormat) — programs that
// report constant outcomes inside loops stop allocating per call — and
// the accumulator is a reused byte buffer joined with ';' exactly as
// the old per-fragment string slice was.
func (c *tc) Outcome(format string, args ...any) {
	th, s := c.th, c.th.sc
	loc, locID := s.progLoc()
	frag := lazyFormat(format, args)
	if s.nOutcomes > 0 {
		s.outcomeBuf = append(s.outcomeBuf, ';')
	}
	s.outcomeBuf = append(s.outcomeBuf, frag...)
	s.nOutcomes++
	s.emit(th, core.OpOutcome, core.NoObject, frag, 0, 0, 0, loc, locID)
}

func (c *tc) NewMutex(name string) core.Mutex {
	s := c.th.sc
	s.objSeq++
	return &mutex{id: s.objSeq, name: name, nameID: core.InternName(name), sc: s, holder: core.NoThread}
}

func (c *tc) NewRWMutex(name string) core.RWMutex {
	s := c.th.sc
	s.objSeq++
	return &rwmutex{id: s.objSeq, name: name, nameID: core.InternName(name), sc: s, writer: core.NoThread}
}

func (c *tc) NewCond(name string, mu core.Mutex) core.Cond {
	s := c.th.sc
	m, ok := mu.(*mutex)
	if !ok {
		panic("sched: NewCond requires a mutex created by this runtime")
	}
	s.objSeq++
	return &cond{id: s.objSeq, name: name, nameID: core.InternName(name), sc: s, mu: m}
}

func (c *tc) NewInt(name string, init int64) core.IntVar {
	s := c.th.sc
	s.objSeq++
	return &intvar{id: s.objSeq, name: name, nameID: core.InternName(name), sc: s, val: init}
}

func (c *tc) NewAtomicInt(name string, init int64) core.IntVar {
	s := c.th.sc
	s.objSeq++
	return &intvar{id: s.objSeq, name: name, nameID: core.InternName(name), sc: s, val: init, atomic: true}
}

func (c *tc) NewRef(name string) core.RefVar {
	s := c.th.sc
	s.objSeq++
	return &refvar{id: s.objSeq, name: name, nameID: core.InternName(name), sc: s}
}

// handle implements core.Handle for controlled threads. Each thread
// embeds the handle for its own joiners, so Go allocates nothing for
// it.
type handle struct {
	child *thread
}

func (h *handle) TID() core.ThreadID { return h.child.id }

func (h *handle) Join(t core.T) {
	c := t.(*tc)
	th, s := c.th, c.th.sc
	loc, locID := s.progLoc()
	th.prePoint(core.OpJoin, h.child.name, h.child.nameID, loc)
	for h.child.state != tDone {
		th.blockOn(blockReason{
			kind: blockJoin,
			name: h.child.name,
			src:  h.child,
		})
	}
	s.emit(th, core.OpJoin, core.NoObject, h.child.name, h.child.nameID, int64(h.child.id), 0, loc, locID)
}

// blockReady implements blockSrc for join waits.
func (th *thread) blockReady(*blockReason) bool { return th.state == tDone }

// blockHolder implements blockSrc for join waits; the joined thread is
// not a lock holder, so no wait-for edge is reported.
func (th *thread) blockHolder(*blockReason) core.ThreadID { return core.NoThread }
