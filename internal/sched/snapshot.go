// Forkable run positioning: a Snapshot is a compact digest of the
// scheduler-visible model state at a decision point (thread states and
// block sets, object states, variable values, the virtual clock and
// the decision cursor), and Config.FastForward replays a recorded
// decision prefix without strategy round trips, listener fan-out or
// runnable-set scans — the nonpreemptive-speed "delta replay" that
// positions a fresh pooled runner at a branch.
//
// Goroutine stacks cannot be copied, so a Snapshot is not a state
// transplant: restoring a position always re-executes the program's
// operations. What the snapshot buys is (a) the per-decision cost of
// re-execution dropping to the coast-mode floor (no Pick, no pending
// publication, no event fan-out, no runnable scan), and (b) a
// verifiable contract — after the fast-forward the scheduler compares
// its own digest against Config.FFCheck and declares the run
// VerdictDiverged instead of silently exploring from the wrong state
// when the program is nondeterministic.
package sched

import (
	"context"
	"runtime/pprof"

	"mtbench/internal/core"
)

// Snapshot is a position digest for a run: the decision cursor,
// virtual clock and event counter, plus an FNV-1a fold over every
// piece of model state the scheduler owns (thread states, block
// reasons, held locks, wake deadlines, mutex/rwmutex ownership,
// condition queues, int variable values, waitgroup counters, channel
// buffers and send queues, and the object-arena cursors). Two runs of
// a deterministic program that executed the same decision prefix have
// equal Snapshots; refvar values are opaque (any-typed) and fold only
// by count, which is why the digest is a divergence detector rather
// than a full state equality.
//
// Snapshot is a comparable value type: copy it with =, compare it
// with ==.
type Snapshot struct {
	// Steps is the decision cursor: how many scheduling decisions the
	// run had consumed when the snapshot was taken.
	Steps int64
	// NowNs is the virtual clock base (time warps accumulated so far;
	// the running clock is NowNs + Steps*quantum).
	NowNs int64
	// Events is the event sequence counter.
	Events int64
	// Threads is the number of virtual threads spawned so far.
	Threads int
	// Sum is the model-state fold described above.
	Sum uint64
}

// captureSnapshot fills dst with the scheduler's current position
// digest. Only meaningful at a decision point (inside a strategy Pick
// or while the run is parked), when no virtual thread is mid-
// operation.
func (s *scheduler) captureSnapshot(dst *Snapshot) {
	dst.Steps = s.steps
	dst.NowNs = s.nowNs
	dst.Events = s.seq
	dst.Threads = len(s.threads)
	dst.Sum = s.stateSum()
}

// matchSnapshot reports whether the current position digest equals
// want.
func (s *scheduler) matchSnapshot(want *Snapshot) bool {
	var cur Snapshot
	s.captureSnapshot(&cur)
	return cur == *want
}

// stateSum folds the scheduler-visible model state. Map-shaped state
// (rwmutex reader counts, condition eligibility) is folded through an
// order-independent XOR accumulator so map iteration order cannot
// perturb the digest; everything with a deterministic order (threads,
// lock-held lists, condition waiter queues, channel buffers and send
// queues) folds in that order.
func (s *scheduler) stateSum() uint64 {
	h := core.HashOffset
	if s.cur != nil {
		h = core.FoldHash(h, uint64(uint32(s.cur.id))+1)
	}
	for _, th := range s.threads {
		h = core.FoldHash(h, uint64(th.state))
		h = core.FoldHash(h, uint64(th.block.kind))
		h = core.FoldHash(h, uint64(th.block.obj))
		h = core.FoldHash(h, uint64(th.wakeAt))
		h = core.FoldHash(h, uint64(len(th.locksHeld)))
		for _, id := range th.locksHeld {
			h = core.FoldHash(h, uint64(id))
		}
	}
	for i := 0; i < s.nMus; i++ {
		h = core.FoldHash(h, uint64(uint32(s.mus[i].holder)))
	}
	for i := 0; i < s.nRWs; i++ {
		w := s.rws[i]
		h = core.FoldHash(h, uint64(uint32(w.writer)))
		var acc uint64
		for tid, cnt := range w.readers {
			if cnt != 0 {
				acc ^= core.FoldHash(core.FoldHash(core.HashOffset, uint64(uint32(tid))), uint64(cnt))
			}
		}
		h = core.FoldHash(h, acc)
	}
	for i := 0; i < s.nConds; i++ {
		c := s.conds[i]
		h = core.FoldHash(h, uint64(len(c.waiters)))
		for _, th := range c.waiters {
			h = core.FoldHash(h, uint64(uint32(th.id)))
		}
		var acc uint64
		for tid, ok := range c.eligible {
			if ok {
				acc ^= core.FoldHash(core.HashOffset, uint64(uint32(tid)))
			}
		}
		h = core.FoldHash(h, acc)
	}
	for i := 0; i < s.nInts; i++ {
		h = core.FoldHash(h, uint64(s.ints[i].val))
	}
	// refvar values are any-typed and cannot be folded; their count is
	// covered by the arena cursors below.
	for i := 0; i < s.nWGs; i++ {
		h = core.FoldHash(h, uint64(s.wgs[i].count))
	}
	for i := 0; i < s.nChans; i++ {
		c := s.chans[i]
		h = core.FoldHash(h, uint64(len(c.buf)))
		if c.closed {
			h = core.FoldHash(h, 1)
		}
		for j := range c.sendq {
			h = core.FoldHash(h, uint64(uint32(c.sendq[j].tid)))
			if c.sendq[j].taken {
				h = core.FoldHash(h, 1)
			}
		}
	}
	h = core.FoldHash(h, uint64(s.nMus))
	h = core.FoldHash(h, uint64(s.nRWs))
	h = core.FoldHash(h, uint64(s.nConds))
	h = core.FoldHash(h, uint64(s.nInts))
	h = core.FoldHash(h, uint64(s.nRefs))
	h = core.FoldHash(h, uint64(s.nWGs))
	h = core.FoldHash(h, uint64(s.nChans))
	return h
}

// Snapshot fills dst with the parked run's position digest and
// reports whether the Runner holds a parked run (it reports false,
// leaving dst alone, otherwise). The digest pairs with
// Config.FastForward/FFCheck: a later run that fast-forwards the
// parked run's recorded decision prefix verifies it reached this
// exact position.
func (r *Runner) Snapshot(dst *Snapshot) bool {
	if !r.s.parkedRun {
		return false
	}
	r.s.captureSnapshot(dst)
	return true
}

// ffStep is the fast-forward decision path: while recorded decisions
// remain, each one is consumed without consulting the strategy —
// matching step's counting, recording, time-warp and step-limit
// behaviour exactly — and control goes straight to the decided
// thread. Listener fan-out stays suppressed (see emit) until the
// first post-fast-forward decision, where the position digest is
// verified. Any mismatch (decided thread not runnable, no sleeper to
// warp to) marks the run diverged instead of panicking: feeding a
// recorded prefix to a nondeterministic program is a program bug, not
// an engine bug.
func (s *scheduler) ffStep() (next *thread, st stepStatus) {
	for {
		if s.failure != nil {
			return nil, stepOver
		}
		pick := s.ffDec[s.ffPos]
		var th *thread
		if pick == IdleID {
			// Mirror step's silent warp: the recorded run advanced the
			// clock without consuming a decision whenever nothing was
			// runnable.
			for len(s.runnable()) == 0 {
				if !s.advanceTime() {
					s.diverged = true
					return nil, stepOver
				}
			}
		} else {
			th = s.threadByID(pick)
			if th == nil {
				s.diverged = true
				return nil, stepOver
			}
			for !s.ffRunnable(th) {
				if !s.advanceTime() {
					s.diverged = true
					return nil, stepOver
				}
			}
		}
		if s.steps >= s.cfg.MaxSteps {
			s.stepLimitHit = true
			return nil, stepOver
		}
		s.ffPos++
		s.steps++
		if s.cfg.RecordSchedule {
			s.schedule = append(s.schedule, pick)
		}
		if pick == IdleID {
			if !s.advanceTime() {
				s.diverged = true
				return nil, stepOver
			}
			if s.ffPos < len(s.ffDec) {
				continue
			}
			return s.step()
		}
		return th, stepGo
	}
}

// ffRunnable is the single-thread runnability check behind ffStep: the
// same guard runnable applies per thread, without building the set.
func (s *scheduler) ffRunnable(th *thread) bool {
	switch th.state {
	case tReady:
		return true
	case tBlocked:
		return th.block.src == nil || th.block.src.blockReady(&th.block)
	case tSleeping:
		return th.wakeAt <= s.now()
	}
	return false
}

// vthreadLabels is the pprof label set every virtual-thread goroutine
// carries, so CPU profiles split program execution (replayed, novel
// and coasted operations all run here) from the driver-side phases
// labelled by the exploration engine. Labels are inherited at go-
// statement time, so spawn sets them inside the new goroutine — a
// pooled thread spawned while a driver-phase label is active must not
// keep that label for its whole pooled life.
var vthreadLabels = pprof.WithLabels(context.Background(), pprof.Labels("mtbench", "vthread"))
