package sched

import (
	"math/rand"
	"slices"

	"mtbench/internal/core"
)

// IdleID is the pseudo-thread a Strategy may return from Pick when
// Choice.CanIdle is set: instead of running anyone, the scheduler
// advances virtual time to the next sleeper's deadline. This models a
// real scheduler's freedom to let timers expire while runnable threads
// wait — the freedom that exposes sleep-as-synchronization and
// lost-wakeup timing bugs.
const IdleID core.ThreadID = -2

// ParkID is the pseudo-thread a Strategy may return from Pick to park
// the run at the current decision point instead of deciding it. The
// scheduler suspends the run with every virtual thread blocked on its
// resume channel and hands control back to the driver: Runner.Start
// (or Resume) returns nil and Runner.Parked reports true. The decision
// is not consumed — it is re-offered, with the same Choice.Step, to
// the first Pick after Runner.Resume — so parking is invisible to the
// decision sequence: park+resume produces a byte-identical run.
// Runner.Abandon tears a parked run down without completing it.
// Strategies driven through Run (or the package-level Run) must not
// park: Run has no way to hand a suspended run back.
const ParkID core.ThreadID = -3

// CoastID is the pseudo-thread a Strategy may return from Pick to hand
// the rest of the run to the scheduler: this and all later decisions
// follow the built-in nonpreemptive rule (current thread while it can
// run, lowest-id runnable otherwise) without consulting the strategy
// again and without recording the schedule. Step counting, virtual
// time, deadlock detection and the step limit are unchanged, so a
// coasted run reaches exactly the verdict and outcome a nonpreemptive
// fallback strategy would have — CoastID only removes the
// per-decision strategy round trip. The exploration engine coasts
// through run tails below a state-cache cut, where the decisions are
// forced and the subtree is already proven explored.
const CoastID core.ThreadID = -4

// Choice describes one scheduling decision point for a Strategy.
type Choice struct {
	// Step is the zero-based index of this decision in the run.
	Step int64
	// Runnable is the set of threads that can run, sorted by id; it is
	// never empty and must not be mutated.
	Runnable []core.ThreadID
	// Current is the thread that was running before this point
	// (NoThread at the start of the run). It may be absent from
	// Runnable if it blocked or finished.
	Current core.ThreadID
	// LastEvent is the most recently emitted event, or nil before the
	// first event. Noise heuristics use it to bias decisions by
	// operation kind or program location.
	LastEvent *core.Event
	// Pending describes the operation Current is about to perform, if
	// Current stopped at a pre-operation scheduling point (zero
	// otherwise). This is the information a ConTest-style noise
	// heuristic keys on.
	Pending PendingOp
	// PendingOf reports the pending operation of any runnable thread
	// (zero for threads that have not executed yet). The exploration
	// engine uses it for independence-based pruning.
	PendingOf func(core.ThreadID) PendingOp
	// FootprintOf reports just the reduction-layer footprint (operation
	// kind + interned object handle) of a runnable thread's pending
	// operation — the register-sized subset of PendingOf that
	// independence pruning and state hashing key on, avoiding the
	// multi-word PendingOp copy on the exploration hot path.
	FootprintOf func(core.ThreadID) core.Footprint
	// CanIdle reports that at least one thread sleeps on a future
	// virtual deadline, so Pick may return IdleID to warp time there.
	CanIdle bool
	// SnapshotTo fills a position digest for this decision point (see
	// Snapshot): the strategy-side handle the exploration engine uses
	// to snapshot a branch so later runs can fast-forward to it
	// (Config.FastForward/FFCheck) instead of replaying from the root
	// under full strategy control.
	SnapshotTo func(*Snapshot)
}

// CurrentRunnable reports whether the previously running thread can
// continue.
func (c *Choice) CurrentRunnable() bool {
	return c.Current != core.NoThread && slices.Contains(c.Runnable, c.Current)
}

// Strategy decides which thread runs at each scheduling point. A
// Strategy must be deterministic given its own construction (seed), so
// runs are reproducible; it may keep per-run state, but then a fresh
// instance must be used per run (the exploration engine does this).
//
// Pick must return a member of c.Runnable; core.NoThread to declare
// divergence (used by replay when the recorded schedule cannot be
// followed); IdleID to warp virtual time (only when c.CanIdle); or one
// of the run-control sentinels ParkID / CoastID.
type Strategy interface {
	Name() string
	Pick(c *Choice) core.ThreadID
}

// LocationAware is an optional Strategy extension. Capturing the
// source location of every instrumented operation costs a stack walk
// per probe — the single most expensive part of a listener-free run —
// so the scheduler skips it when nothing observes locations: any
// attached listener turns capture on, and a strategy that keys its
// decisions on Choice.Pending.Loc (the noise heuristics do) must
// declare it by implementing LocationAware with NeedsLocations() true.
// Strategies without the method see zero Locations in listener-free
// runs; everything else about the Choice is unaffected.
type LocationAware interface {
	NeedsLocations() bool
}

// PendingFree is an optional Strategy extension, the mirror image of
// LocationAware: a strategy that never reads Choice.Pending — keying
// on Choice.FootprintOf or Choice.PendingOf instead — may declare it
// with PendingFree() true, and the scheduler then skips publishing
// the multi-word PendingOp copy at every decision point. The
// exploration engine's DFS strategy does this; strategies without the
// method keep seeing Pending as before.
type PendingFree interface {
	PendingFree() bool
}

// nonpreemptive models the scheduler the paper's §1 blames for unit
// tests never exposing concurrency bugs: it keeps running the current
// thread until it blocks or finishes, then picks the lowest-id runnable
// thread. It is the deterministic baseline in the noise experiments.
type nonpreemptive struct{}

// Nonpreemptive returns the run-to-block deterministic baseline
// strategy.
func Nonpreemptive() Strategy { return nonpreemptive{} }

func (nonpreemptive) Name() string { return "nonpreemptive" }

func (nonpreemptive) Pick(c *Choice) core.ThreadID {
	if c.CurrentRunnable() {
		return c.Current
	}
	return c.Runnable[0]
}

// roundRobin rotates through runnable threads, switching at every
// scheduling point: maximal systematic interleaving without randomness.
type roundRobin struct{}

// RoundRobin returns the switch-every-point rotation strategy.
func RoundRobin() Strategy { return roundRobin{} }

func (roundRobin) Name() string { return "roundrobin" }

func (roundRobin) Pick(c *Choice) core.ThreadID {
	for _, id := range c.Runnable {
		if id > c.Current {
			return id
		}
	}
	return c.Runnable[0]
}

// randomWhenBlocked runs the current thread until it blocks, then
// dispatches a uniformly random runnable thread. This models a real
// non-preemptive-ish OS scheduler: no forced preemption, but arbitrary
// dispatch order. It is the base the noise strategies wrap — noise
// tools in the field inject delays over exactly this kind of
// nondeterministic dispatcher, and some bug classes (wakeup-order
// bugs) depend on dispatch alone.
type randomWhenBlocked struct {
	rng *rand.Rand
}

// RandomWhenBlocked returns the run-to-block, random-dispatch strategy.
func RandomWhenBlocked(seed int64) Strategy {
	return &randomWhenBlocked{rng: rand.New(rand.NewSource(seed))}
}

func (*randomWhenBlocked) Name() string { return "randomdispatch" }

func (r *randomWhenBlocked) Pick(c *Choice) core.ThreadID {
	if c.CurrentRunnable() {
		return c.Current
	}
	return c.Runnable[r.rng.Intn(len(c.Runnable))]
}

// random picks uniformly among runnable threads at every point — the
// "simulates the behaviour of other possible schedulers" extreme.
type random struct {
	rng *rand.Rand
}

// Random returns a seeded uniformly random strategy. Distinct seeds
// explore distinct interleavings; the same seed reproduces the run.
func Random(seed int64) Strategy {
	return &random{rng: rand.New(rand.NewSource(seed))}
}

func (*random) Name() string { return "random" }

func (r *random) Pick(c *Choice) core.ThreadID {
	return c.Runnable[r.rng.Intn(len(c.Runnable))]
}

// priorityRandom implements a PCT-like (probabilistic concurrency
// testing) strategy: threads get random priorities at spawn; the
// highest-priority runnable thread runs, and at d-1 randomly
// pre-chosen steps the running thread's priority is demoted below all
// others. With small switch budgets it provably hits bugs of low
// "depth" with useful probability; it is included as an extension
// strategy beyond the paper's random noise.
type priorityRandom struct {
	rng     *rand.Rand
	prio    map[core.ThreadID]int64
	changes map[int64]bool
	next    int64
}

// PriorityRandom returns a PCT-like strategy with the given number of
// priority change points scattered over horizon steps.
func PriorityRandom(seed int64, changePoints int, horizon int64) Strategy {
	rng := rand.New(rand.NewSource(seed))
	changes := make(map[int64]bool, changePoints)
	if horizon <= 0 {
		horizon = 10_000
	}
	for i := 0; i < changePoints; i++ {
		changes[rng.Int63n(horizon)] = true
	}
	return &priorityRandom{rng: rng, prio: map[core.ThreadID]int64{}, changes: changes}
}

func (*priorityRandom) Name() string { return "pct" }

func (p *priorityRandom) Pick(c *Choice) core.ThreadID {
	for _, id := range c.Runnable {
		if _, ok := p.prio[id]; !ok {
			// Fresh threads get a random high priority band.
			p.prio[id] = 1_000_000 + p.rng.Int63n(1_000_000)
		}
	}
	if p.changes[c.Step] && c.Current != core.NoThread {
		p.next++
		p.prio[c.Current] = p.next // demote below everything seen so far
	}
	best := c.Runnable[0]
	for _, id := range c.Runnable[1:] {
		if p.prio[id] > p.prio[best] {
			best = id
		}
	}
	return best
}

// FixedSchedule replays an explicit decision list and then falls back
// to fallback (used by the exploration engine to force a prefix). It
// returns divergence if a recorded decision is not runnable.
type FixedSchedule struct {
	Decisions []core.ThreadID
	Fallback  Strategy
	pos       int
}

// Name implements Strategy.
func (f *FixedSchedule) Name() string { return "fixed" }

// Pick implements Strategy.
func (f *FixedSchedule) Pick(c *Choice) core.ThreadID {
	if f.pos < len(f.Decisions) {
		want := f.Decisions[f.pos]
		f.pos++
		if want == IdleID {
			if !c.CanIdle {
				return core.NoThread
			}
			return IdleID
		}
		if !slices.Contains(c.Runnable, want) {
			return core.NoThread
		}
		return want
	}
	if f.Fallback == nil {
		f.Fallback = Nonpreemptive()
	}
	return f.Fallback.Pick(c)
}

// ListenerStrategy wraps a strategy and reports every decision to a
// hook — test instrumentation for strategy behaviour.
type ListenerStrategy struct {
	Strategy Strategy
	Hook     func(c *Choice, picked core.ThreadID)
}

// Name implements Strategy.
func (l *ListenerStrategy) Name() string { return "listener:" + l.Strategy.Name() }

// Pick implements Strategy.
func (l *ListenerStrategy) Pick(c *Choice) core.ThreadID {
	picked := l.Strategy.Pick(c)
	if l.Hook != nil {
		l.Hook(c, picked)
	}
	return picked
}
