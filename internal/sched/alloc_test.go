package sched

import (
	"runtime"
	"testing"

	"mtbench/internal/core"
)

func goroutineCount() int { return runtime.NumGoroutine() }

// allocBody is a small but representative program: an object of each
// hot kind, a fork/join pair, lock traffic and an oracle. Its own
// per-run allocations (the two object constructors and the spawned
// closure) are part of the measured budget, so the engine's share of
// the bound below is only what is left after them.
func allocBody(ct core.T) {
	x := ct.NewInt("x", 0)
	mu := ct.NewMutex("mu")
	h := ct.Go("w", func(wt core.T) {
		mu.Lock(wt)
		x.Add(wt, 1)
		mu.Unlock(wt)
	})
	mu.Lock(ct)
	x.Add(ct, 1)
	mu.Unlock(ct)
	h.Join(ct)
	ct.Assert(x.Load(ct) == 2, "sum")
}

// maxPooledAllocs pins the steady-state allocation count of a pooled
// run of allocBody. Measured at 6: one Result, one FinishOrder
// snapshot, and the program's own four (IntVar, Mutex, the spawned
// closure, and its capture cell); the scheduler, threads, goroutines,
// channels, runnable sets, schedule buffer and events contribute
// nothing. The bound leaves headroom of 2 for toolchain drift; a jump
// past it means someone put an allocation back on the per-run path —
// the regression this test exists to catch.
const maxPooledAllocs = 8

// TestPooledRunAllocs is the allocation regression gate on the run
// hot path (CI runs it with every push): steady-state pooled runs must
// stay allocation-free in the engine, with and without schedule
// recording.
func TestPooledRunAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{}},
		{"recording", Config{RecordSchedule: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRunner()
			defer r.Close()
			r.Run(tc.cfg, allocBody) // warm the pools and buffers
			n := testing.AllocsPerRun(200, func() {
				r.Run(tc.cfg, allocBody)
			})
			if n > maxPooledAllocs {
				t.Fatalf("pooled run allocates %.1f objects/run, budget %d", n, maxPooledAllocs)
			}
		})
	}
}

// TestPooledRunReusesThreads pins the goroutine side of pooling: a
// reused Runner must not grow the process's goroutine population run
// over run (each virtual thread's goroutine parks in the pool between
// runs instead of dying and respawning).
func TestPooledRunReusesThreads(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	r.Run(Config{}, allocBody)
	before := goroutineCount()
	for i := 0; i < 50; i++ {
		r.Run(Config{}, allocBody)
	}
	after := goroutineCount()
	if after > before+2 {
		t.Fatalf("goroutines grew from %d to %d over 50 pooled runs", before, after)
	}
}
