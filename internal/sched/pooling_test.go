package sched_test

import (
	"slices"
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/coverage"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

// TestRunnerPoolingDeterminism is the reuse contract behind the whole
// performance architecture: every repository program, run repeatedly
// through ONE reused Runner (pooled threads, pooled buffers, interned
// events), produces results byte-identical to a fresh scheduler per
// run — verdict, outcome, failure signature, step and event counts,
// thread count, finish order, deadlock description and the recorded
// schedule. Each program runs twice through the shared runner so the
// second run exercises a pool warmed by the first, and the runner is
// shared across programs so pools are also re-shaped between bodies
// with different thread counts.
func TestRunnerPoolingDeterminism(t *testing.T) {
	runner := sched.NewRunner()
	defer runner.Close()

	for _, p := range repository.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			body := p.BodyWith(nil)
			for seed := int64(0); seed < 2; seed++ {
				for round := 0; round < 2; round++ {
					cfg := func() sched.Config {
						return sched.Config{
							Strategy:       sched.Random(seed),
							Seed:           seed,
							Name:           p.Name,
							MaxSteps:       300_000,
							RecordSchedule: true,
						}
					}
					fresh := sched.Run(cfg(), body)
					pooled := runner.Run(cfg(), body)
					// The pooled schedule aliases the runner's buffer;
					// snapshot it before the next Run.
					pooledSchedule := slices.Clone(pooled.Schedule)

					if pooled.Verdict != fresh.Verdict || pooled.Outcome != fresh.Outcome ||
						pooled.Steps != fresh.Steps || pooled.Events != fresh.Events ||
						pooled.Threads != fresh.Threads || pooled.DeadlockInfo != fresh.DeadlockInfo {
						t.Fatalf("seed %d round %d: pooled %v != fresh %v", seed, round, pooled, fresh)
					}
					if core.BugSignature(pooled) != core.BugSignature(fresh) {
						t.Fatalf("seed %d round %d: pooled signature %q != fresh %q",
							seed, round, core.BugSignature(pooled), core.BugSignature(fresh))
					}
					if !slices.Equal(pooled.FinishOrder, fresh.FinishOrder) {
						t.Fatalf("seed %d round %d: finish order %v != %v",
							seed, round, pooled.FinishOrder, fresh.FinishOrder)
					}
					if !slices.Equal(pooledSchedule, fresh.Schedule) {
						t.Fatalf("seed %d round %d: recorded schedules differ (%d vs %d decisions)",
							seed, round, len(pooledSchedule), len(fresh.Schedule))
					}
				}
			}
		})
	}
}

// TestRunnerPoolingCoverage pins the listener-visible event stream
// under pooling: the concurrency-coverage signature of a pooled run
// (which hashes every access's thread, variable and program point)
// matches a fresh run's exactly.
func TestRunnerPoolingCoverage(t *testing.T) {
	runner := sched.NewRunner()
	defer runner.Close()

	for _, name := range []string{"account", "philosophers", "rwupgrade", "lostnotify"} {
		prog, err := repository.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		body := prog.BodyWith(nil)
		for seed := int64(0); seed < 2; seed++ {
			freshCov := coverage.NewTracker()
			pooledCov := coverage.NewTracker()
			cfg := func(cov *coverage.Tracker) sched.Config {
				return sched.Config{
					Strategy:  sched.Random(seed),
					Listeners: []core.Listener{cov},
					Name:      name,
					MaxSteps:  300_000,
				}
			}
			sched.Run(cfg(freshCov), body)
			runner.Run(cfg(pooledCov), body)
			if f, p := freshCov.Tasks(), pooledCov.Tasks(); !slices.Equal(f, p) {
				t.Fatalf("%s seed %d: pooled coverage %v != fresh %v", name, seed, p, f)
			}
		}
	}
}
