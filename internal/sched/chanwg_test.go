package sched

import (
	"strings"
	"testing"

	"mtbench/internal/core"
)

// TestWaitGroupBasics: Add/Done/Wait order a producer before the
// waiter, and the counter value rides on the OpWGAdd events.
func TestWaitGroupBasics(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		wg := ct.NewWaitGroup("wg")
		sum := ct.NewInt("sum", 0)
		wg.Add(ct, 2)
		for i := 0; i < 2; i++ {
			ct.Go("worker", func(wt core.T) {
				sum.Add(wt, 1)
				wg.Done(wt)
			})
		}
		wg.Wait(ct)
		ct.Assert(sum.Load(ct) == 2, "sum = %d", sum.Load(ct))
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
}

// TestWaitGroupNegative: driving the counter below zero fails the run.
func TestWaitGroupNegative(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		wg := ct.NewWaitGroup("wg")
		wg.Done(ct)
	})
	if res.Verdict != core.VerdictFail {
		t.Fatalf("verdict = %v, want fail (%v)", res.Verdict, res)
	}
	if !strings.Contains(res.Failure.Msg, "negative counter") {
		t.Fatalf("failure = %q", res.Failure.Msg)
	}
}

// TestWaitGroupDeadlock: waiting on a counter nobody decrements is a
// deadlock with the waitgroup named in the report.
func TestWaitGroupDeadlock(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		wg := ct.NewWaitGroup("wg")
		wg.Add(ct, 1)
		wg.Wait(ct)
	})
	if res.Verdict != core.VerdictDeadlock {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
	if !strings.Contains(res.DeadlockInfo, "waitgroup") {
		t.Fatalf("deadlock info = %q", res.DeadlockInfo)
	}
}

// TestChanRendezvous: an unbuffered channel hands values across
// threads in order, and the trace shows the deferred send before its
// receive.
func TestChanRendezvous(t *testing.T) {
	var ops []string
	lis := &funcListener{fn: func(ev *core.Event) {
		if ev.Op == core.OpChanSend || ev.Op == core.OpChanRecv {
			ops = append(ops, ev.Op.String())
		}
	}}
	res := Run(Config{Listeners: []core.Listener{lis}}, func(ct core.T) {
		ch := ct.NewChan("ch", 0)
		ct.Go("producer", func(wt core.T) {
			for i := 0; i < 3; i++ {
				ch.Send(wt, i)
			}
		})
		for i := 0; i < 3; i++ {
			v, ok := ch.Recv(ct)
			ct.Assert(ok && v.(int) == i, "recv %d = %v,%v", i, v, ok)
		}
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
	want := []string{"send", "recv", "send", "recv", "send", "recv"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Fatalf("op order = %v, want %v", ops, want)
	}
}

// TestChanBuffered: sends up to the capacity complete without a
// receiver; the next one blocks until space frees up.
func TestChanBuffered(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		ch := ct.NewChan("ch", 2)
		ch.Send(ct, 1)
		ch.Send(ct, 2)
		h := ct.Go("third", func(wt core.T) {
			ch.Send(wt, 3) // blocks: buffer full
		})
		v, ok := ch.Recv(ct)
		ct.Assert(ok && v.(int) == 1, "first recv = %v", v)
		h.Join(ct)
		v, _ = ch.Recv(ct)
		ct.Assert(v.(int) == 2, "second recv = %v", v)
		v, _ = ch.Recv(ct)
		ct.Assert(v.(int) == 3, "third recv = %v", v)
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
}

// TestChanCloseSemantics: receives drain the buffer after a close,
// then report !ok; double close and send-on-closed are failing
// oracles.
func TestChanCloseSemantics(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		ch := ct.NewChan("ch", 2)
		ch.Send(ct, 7)
		ch.Close(ct)
		v, ok := ch.Recv(ct)
		ct.Assert(ok && v.(int) == 7, "drain = %v,%v", v, ok)
		v, ok = ch.Recv(ct)
		ct.Assert(!ok && v == nil, "after close = %v,%v", v, ok)
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("drain: verdict = %v (%v)", res.Verdict, res)
	}

	res = Run(Config{}, func(ct core.T) {
		ch := ct.NewChan("ch", 0)
		ch.Close(ct)
		ch.Send(ct, 1)
	})
	if res.Verdict != core.VerdictFail || !strings.Contains(res.Failure.Msg, "send on closed") {
		t.Fatalf("send on closed: %v", res)
	}

	res = Run(Config{}, func(ct core.T) {
		ch := ct.NewChan("ch", 0)
		ch.Close(ct)
		ch.Close(ct)
	})
	if res.Verdict != core.VerdictFail || !strings.Contains(res.Failure.Msg, "close of closed") {
		t.Fatalf("double close: %v", res)
	}
}

// TestChanDeadlock: a receive nobody will satisfy deadlocks with the
// channel direction in the report.
func TestChanDeadlock(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		ch := ct.NewChan("ch", 0)
		ch.Recv(ct)
	})
	if res.Verdict != core.VerdictDeadlock {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
	if !strings.Contains(res.DeadlockInfo, "chan-recv") {
		t.Fatalf("deadlock info = %q", res.DeadlockInfo)
	}

	res = Run(Config{}, func(ct core.T) {
		ch := ct.NewChan("ch", 0)
		ch.Send(ct, 1)
	})
	if res.Verdict != core.VerdictDeadlock || !strings.Contains(res.DeadlockInfo, "chan-send") {
		t.Fatalf("send side: %v", res)
	}
}

// TestSelectDeterministic: the lowest-index ready arm wins, so under
// the nonpreemptive default the choice is fixed.
func TestSelectDeterministic(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		a := ct.NewChan("a", 1)
		b := ct.NewChan("b", 1)
		a.Send(ct, "from-a")
		b.Send(ct, "from-b")
		i, v, ok := ct.Select([]core.SelectCase{{Ch: a}, {Ch: b}})
		ct.Assert(i == 0 && ok && v.(string) == "from-a", "select = %d,%v,%v", i, v, ok)
		// Drain a; now only b is ready.
		i, v, ok = ct.Select([]core.SelectCase{{Ch: a}, {Ch: b}})
		ct.Assert(i == 1 && ok && v.(string) == "from-b", "select 2 = %d,%v,%v", i, v, ok)
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}
}

// TestSelectBlocksAndWakes: a select with no ready arm parks the
// thread and wakes when a sender arrives; all-blocked is a deadlock
// reported as a select wait.
func TestSelectBlocksAndWakes(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		work := ct.NewChan("work", 0)
		quit := ct.NewChan("quit", 0)
		h := ct.Go("consumer", func(wt core.T) {
			for {
				i, v, _ := wt.Select([]core.SelectCase{{Ch: work}, {Ch: quit}})
				if i == 1 {
					return
				}
				wt.Outcome("got %d", v.(int))
			}
		})
		work.Send(ct, 42)
		quit.Send(ct, nil)
		h.Join(ct)
	})
	if res.Verdict != core.VerdictPass || res.Outcome != "got 42" {
		t.Fatalf("res = %v outcome=%q", res, res.Outcome)
	}

	res = Run(Config{}, func(ct core.T) {
		ch := ct.NewChan("ch", 0)
		ct.Select([]core.SelectCase{{Ch: ch}})
	})
	if res.Verdict != core.VerdictDeadlock || !strings.Contains(res.DeadlockInfo, "select") {
		t.Fatalf("blocked select: %v", res)
	}
}

// TestSelectSendArm: send arms on buffered channels participate; a
// send arm on a rendezvous channel is rejected as a failing oracle.
func TestSelectSendArm(t *testing.T) {
	res := Run(Config{}, func(ct core.T) {
		full := ct.NewChan("full", 1)
		out := ct.NewChan("out", 1)
		full.Send(ct, 0)
		i, _, ok := ct.Select([]core.SelectCase{
			{Ch: full, Send: true, Val: 1},
			{Ch: out, Send: true, Val: 2},
		})
		ct.Assert(i == 1 && ok, "select = %d,%v", i, ok)
		v, _ := out.Recv(ct)
		ct.Assert(v.(int) == 2, "sent = %v", v)
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("verdict = %v (%v)", res.Verdict, res)
	}

	res = Run(Config{}, func(ct core.T) {
		ch := ct.NewChan("ch", 0)
		ct.Select([]core.SelectCase{{Ch: ch, Send: true, Val: 1}})
	})
	if res.Verdict != core.VerdictFail || !strings.Contains(res.Failure.Msg, "rendezvous") {
		t.Fatalf("rendezvous send arm: %v", res)
	}
}

// TestChanWGReplayDeterministic: a recorded schedule over the new
// primitives replays to the identical result.
func TestChanWGReplayDeterministic(t *testing.T) {
	body := func(ct core.T) {
		wg := ct.NewWaitGroup("wg")
		ch := ct.NewChan("ch", 1)
		wg.Add(ct, 1)
		ct.Go("producer", func(wt core.T) {
			ch.Send(wt, 9)
			wg.Done(wt)
		})
		v, _ := ch.Recv(ct)
		wg.Wait(ct)
		ct.Outcome("v=%d", v.(int))
	}
	first := Run(Config{Strategy: Random(42), Seed: 42, RecordSchedule: true}, body)
	if first.Verdict != core.VerdictPass {
		t.Fatalf("first run: %v", first)
	}
	second := Run(Config{Strategy: &FixedSchedule{Decisions: first.Schedule}}, body)
	if second.Verdict != first.Verdict || second.Outcome != first.Outcome {
		t.Fatalf("replay diverged: %v vs %v", second, first)
	}
}

// funcListener adapts a func to core.Listener for tests.
type funcListener struct {
	fn func(*core.Event)
}

func (l *funcListener) OnEvent(ev *core.Event) { l.fn(ev) }
