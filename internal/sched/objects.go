package sched

import (
	"mtbench/internal/core"
)

// curThread asserts that t belongs to this runtime and returns its
// thread. Sharing objects across runs (or runtimes) is a harness bug
// worth failing loudly on.
func (s *scheduler) curThread(t core.T) *thread {
	c, ok := t.(*tc)
	if !ok || c.th.sc != s {
		panic("sched: object used with a T from a different runtime/run")
	}
	return c.th
}

// mutex is the controlled runtime's non-reentrant lock.
type mutex struct {
	id     core.ObjectID
	name   string
	nameID uint32
	sc     *scheduler
	holder core.ThreadID
}

func (m *mutex) OID() core.ObjectID { return m.id }

// blockReady implements blockSrc: a lock waiter can run once the lock
// is free.
func (m *mutex) blockReady(*blockReason) bool { return m.holder == core.NoThread }

// blockHolder implements blockSrc for wait-for cycle construction.
func (m *mutex) blockHolder(*blockReason) core.ThreadID { return m.holder }

func (m *mutex) Lock(t core.T) {
	th := m.sc.curThread(t)
	loc, locID := m.sc.progLoc()
	th.prePoint(core.OpLock, m.name, m.nameID, loc)
	if m.holder == th.id {
		if loc.File == "" {
			loc, locID = core.CallerLocationID(1)
		}
		m.sc.emit(th, core.OpFail, m.id, "recursive lock of "+m.name, 0, 0, 0, loc, locID)
		core.FailNow(core.Failure{Msg: "recursive lock of " + m.name, Thread: th.id, Loc: loc})
	}
	if m.holder != core.NoThread {
		m.sc.emit(th, core.OpBlock, m.id, m.name, m.nameID, 0, 0, loc, locID)
		for m.holder != core.NoThread {
			th.blockOn(blockReason{kind: blockLock, obj: m.id, name: m.name, src: m})
		}
	}
	m.holder = th.id
	th.locksHeld = append(th.locksHeld, m.id)
	m.sc.emit(th, core.OpLock, m.id, m.name, m.nameID, 1, 0, loc, locID)
}

func (m *mutex) TryLock(t core.T) bool {
	th := m.sc.curThread(t)
	loc, locID := m.sc.progLoc()
	th.prePoint(core.OpLock, m.name, m.nameID, loc)
	if m.holder != core.NoThread {
		m.sc.emit(th, core.OpLock, m.id, m.name, m.nameID, 0, 0, loc, locID)
		return false
	}
	m.holder = th.id
	th.locksHeld = append(th.locksHeld, m.id)
	m.sc.emit(th, core.OpLock, m.id, m.name, m.nameID, 1, 0, loc, locID)
	return true
}

func (m *mutex) Unlock(t core.T) {
	th := m.sc.curThread(t)
	loc, locID := m.sc.progLoc()
	th.prePoint(core.OpUnlock, m.name, m.nameID, loc)
	if m.holder != th.id {
		if loc.File == "" {
			loc, locID = core.CallerLocationID(1)
		}
		msg := "unlock of mutex " + m.name + " not held by caller"
		m.sc.emit(th, core.OpFail, m.id, msg, 0, 0, 0, loc, locID)
		core.FailNow(core.Failure{Msg: msg, Thread: th.id, Loc: loc})
	}
	m.unlockInternal(th, loc, locID)
}

// unlockInternal releases the mutex and emits the unlock event; Wait
// reuses it.
func (m *mutex) unlockInternal(th *thread, loc core.Location, locID uint32) {
	m.holder = core.NoThread
	removeLock(th, m.id)
	m.sc.emit(th, core.OpUnlock, m.id, m.name, m.nameID, 0, 0, loc, locID)
}

// lockInternal reacquires the mutex without a scheduling point's
// prePoint (Wait's wakeup path).
func (m *mutex) lockInternal(th *thread, loc core.Location, locID uint32) {
	for m.holder != core.NoThread {
		th.blockOn(blockReason{kind: blockLock, obj: m.id, name: m.name, src: m})
	}
	m.holder = th.id
	th.locksHeld = append(th.locksHeld, m.id)
	m.sc.emit(th, core.OpLock, m.id, m.name, m.nameID, 1, 0, loc, locID)
}

func removeLock(th *thread, id core.ObjectID) {
	for i := len(th.locksHeld) - 1; i >= 0; i-- {
		if th.locksHeld[i] == id {
			th.locksHeld = append(th.locksHeld[:i], th.locksHeld[i+1:]...)
			return
		}
	}
}

// rwmutex is the controlled reader/writer lock.
type rwmutex struct {
	id      core.ObjectID
	name    string
	nameID  uint32
	sc      *scheduler
	writer  core.ThreadID
	readers map[core.ThreadID]int
}

func (w *rwmutex) OID() core.ObjectID { return w.id }

func (w *rwmutex) nreaders() int {
	n := 0
	for _, c := range w.readers {
		n += c
	}
	return n
}

// blockReady implements blockSrc: write waiters (blockRW) need the
// lock fully free; read waiters (blockRWRead) only need no writer.
func (w *rwmutex) blockReady(r *blockReason) bool {
	if r.kind == blockRWRead {
		return w.writer == core.NoThread
	}
	return w.writer == core.NoThread && w.nreaders() == 0
}

// blockHolder implements blockSrc: the writer when there is one; for
// write waiters additionally a sole reader (NoThread when unknown or
// multiple).
func (w *rwmutex) blockHolder(r *blockReason) core.ThreadID {
	if w.writer != core.NoThread {
		return w.writer
	}
	if r.kind != blockRWRead && len(w.readers) == 1 {
		for t := range w.readers {
			return t
		}
	}
	return core.NoThread
}

func (w *rwmutex) Lock(t core.T) {
	th := w.sc.curThread(t)
	loc, locID := w.sc.progLoc()
	th.prePoint(core.OpLock, w.name, w.nameID, loc)
	if w.writer != core.NoThread || w.nreaders() > 0 {
		w.sc.emit(th, core.OpBlock, w.id, w.name, w.nameID, 0, 0, loc, locID)
		for w.writer != core.NoThread || w.nreaders() > 0 {
			th.blockOn(blockReason{kind: blockRW, obj: w.id, name: w.name, src: w})
		}
	}
	w.writer = th.id
	th.locksHeld = append(th.locksHeld, w.id)
	w.sc.emit(th, core.OpLock, w.id, w.name, w.nameID, 1, 0, loc, locID)
}

func (w *rwmutex) Unlock(t core.T) {
	th := w.sc.curThread(t)
	loc, locID := w.sc.progLoc()
	th.prePoint(core.OpUnlock, w.name, w.nameID, loc)
	if w.writer != th.id {
		if loc.File == "" {
			loc, locID = core.CallerLocationID(1)
		}
		msg := "unlock of rwmutex " + w.name + " not write-held by caller"
		w.sc.emit(th, core.OpFail, w.id, msg, 0, 0, 0, loc, locID)
		core.FailNow(core.Failure{Msg: msg, Thread: th.id, Loc: loc})
	}
	w.writer = core.NoThread
	removeLock(th, w.id)
	w.sc.emit(th, core.OpUnlock, w.id, w.name, w.nameID, 0, 0, loc, locID)
}

func (w *rwmutex) RLock(t core.T) {
	th := w.sc.curThread(t)
	loc, locID := w.sc.progLoc()
	th.prePoint(core.OpRLock, w.name, w.nameID, loc)
	if w.writer != core.NoThread {
		w.sc.emit(th, core.OpBlock, w.id, w.name, w.nameID, 0, 0, loc, locID)
		for w.writer != core.NoThread {
			th.blockOn(blockReason{kind: blockRWRead, obj: w.id, name: w.name, src: w})
		}
	}
	if w.readers == nil {
		w.readers = make(map[core.ThreadID]int)
	}
	w.readers[th.id]++
	w.sc.emit(th, core.OpRLock, w.id, w.name, w.nameID, 1, 0, loc, locID)
}

func (w *rwmutex) RUnlock(t core.T) {
	th := w.sc.curThread(t)
	loc, locID := w.sc.progLoc()
	th.prePoint(core.OpRUnlock, w.name, w.nameID, loc)
	if w.readers[th.id] == 0 {
		if loc.File == "" {
			loc, locID = core.CallerLocationID(1)
		}
		msg := "runlock of rwmutex " + w.name + " not read-held by caller"
		w.sc.emit(th, core.OpFail, w.id, msg, 0, 0, 0, loc, locID)
		core.FailNow(core.Failure{Msg: msg, Thread: th.id, Loc: loc})
	}
	w.readers[th.id]--
	if w.readers[th.id] == 0 {
		delete(w.readers, th.id)
	}
	w.sc.emit(th, core.OpRUnlock, w.id, w.name, w.nameID, 0, 0, loc, locID)
}

// cond is the controlled condition variable with Java monitor
// semantics.
type cond struct {
	id     core.ObjectID
	name   string
	nameID uint32
	sc     *scheduler
	mu     *mutex
	// waiters holds parked threads in FIFO arrival order; Signal moves
	// the head to eligible.
	waiters  []*thread
	eligible map[core.ThreadID]bool
}

func (c *cond) OID() core.ObjectID { return c.id }

// blockReady implements blockSrc: a waiter can run once signalled
// eligible.
func (c *cond) blockReady(r *blockReason) bool { return c.eligible[r.tid] }

// blockHolder implements blockSrc; condition waits carry no wait-for
// edge.
func (c *cond) blockHolder(*blockReason) core.ThreadID { return core.NoThread }

func (c *cond) checkHeld(th *thread, op string, loc core.Location, locID uint32) {
	if c.mu.holder != th.id {
		if loc.File == "" {
			loc, locID = core.CallerLocationID(2)
		}
		msg := op + " on cond " + c.name + " without holding mutex " + c.mu.name
		c.sc.emit(th, core.OpFail, c.id, msg, 0, 0, 0, loc, locID)
		core.FailNow(core.Failure{Msg: msg, Thread: th.id, Loc: loc})
	}
}

func (c *cond) Wait(t core.T) {
	th := c.sc.curThread(t)
	loc, locID := c.sc.progLoc()
	th.prePoint(core.OpWait, c.name, c.nameID, loc)
	c.checkHeld(th, "wait", loc, locID)
	c.sc.emit(th, core.OpWait, c.id, c.name, c.nameID, 0, 0, loc, locID)
	c.mu.unlockInternal(th, loc, locID)
	if c.eligible == nil {
		c.eligible = make(map[core.ThreadID]bool)
	}
	c.waiters = append(c.waiters, th)
	for !c.eligible[th.id] {
		th.blockOn(blockReason{kind: blockCond, obj: c.id, name: c.name, src: c, tid: th.id})
	}
	delete(c.eligible, th.id)
	c.sc.emit(th, core.OpAwake, c.id, c.name, c.nameID, 0, 0, loc, locID)
	c.mu.lockInternal(th, loc, locID)
}

func (c *cond) Signal(t core.T) {
	th := c.sc.curThread(t)
	loc, locID := c.sc.progLoc()
	th.prePoint(core.OpSignal, c.name, c.nameID, loc)
	c.checkHeld(th, "signal", loc, locID)
	c.sc.emit(th, core.OpSignal, c.id, c.name, c.nameID, int64(len(c.waiters)), 0, loc, locID)
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		c.eligible[w.id] = true
	}
}

func (c *cond) Broadcast(t core.T) {
	th := c.sc.curThread(t)
	loc, locID := c.sc.progLoc()
	th.prePoint(core.OpBroadcast, c.name, c.nameID, loc)
	c.checkHeld(th, "broadcast", loc, locID)
	c.sc.emit(th, core.OpBroadcast, c.id, c.name, c.nameID, int64(len(c.waiters)), 0, loc, locID)
	for _, w := range c.waiters {
		c.eligible[w.id] = true
	}
	c.waiters = nil
}

// intvar is the controlled shared integer. Every access is a scheduling
// point; the value itself needs no protection because only one thread
// runs at a time.
type intvar struct {
	id     core.ObjectID
	name   string
	nameID uint32
	sc     *scheduler
	val    int64
	atomic bool
}

func (v *intvar) OID() core.ObjectID { return v.id }
func (v *intvar) IsAtomic() bool     { return v.atomic }

func (v *intvar) flags() core.Flags {
	if v.atomic {
		return core.FlagAtomic
	}
	return 0
}

func (v *intvar) Load(t core.T) int64 {
	th := v.sc.curThread(t)
	loc, locID := v.sc.progLoc()
	th.prePoint(core.OpRead, v.name, v.nameID, loc)
	val := v.val
	v.sc.emit(th, core.OpRead, v.id, v.name, v.nameID, val, v.flags(), loc, locID)
	return val
}

func (v *intvar) Store(t core.T, val int64) {
	th := v.sc.curThread(t)
	loc, locID := v.sc.progLoc()
	th.prePoint(core.OpWrite, v.name, v.nameID, loc)
	v.val = val
	v.sc.emit(th, core.OpWrite, v.id, v.name, v.nameID, val, v.flags(), loc, locID)
}

func (v *intvar) Add(t core.T, delta int64) int64 {
	th := v.sc.curThread(t)
	loc, locID := v.sc.progLoc()
	th.prePoint(core.OpWrite, v.name, v.nameID, loc)
	v.val += delta
	v.sc.emit(th, core.OpWrite, v.id, v.name, v.nameID, v.val, v.flags(), loc, locID)
	return v.val
}

func (v *intvar) CompareAndSwap(t core.T, old, new int64) bool {
	th := v.sc.curThread(t)
	loc, locID := v.sc.progLoc()
	th.prePoint(core.OpWrite, v.name, v.nameID, loc)
	if v.val != old {
		v.sc.emit(th, core.OpRead, v.id, v.name, v.nameID, v.val, v.flags(), loc, locID)
		return false
	}
	v.val = new
	v.sc.emit(th, core.OpWrite, v.id, v.name, v.nameID, new, v.flags(), loc, locID)
	return true
}

// refvar is the controlled shared reference cell.
type refvar struct {
	id     core.ObjectID
	name   string
	nameID uint32
	sc     *scheduler
	val    any
}

func (v *refvar) OID() core.ObjectID { return v.id }

func (v *refvar) Load(t core.T) any {
	th := v.sc.curThread(t)
	loc, locID := v.sc.progLoc()
	th.prePoint(core.OpRead, v.name, v.nameID, loc)
	val := v.val
	v.sc.emit(th, core.OpRead, v.id, v.name, v.nameID, 0, 0, loc, locID)
	return val
}

func (v *refvar) Store(t core.T, val any) {
	th := v.sc.curThread(t)
	loc, locID := v.sc.progLoc()
	th.prePoint(core.OpWrite, v.name, v.nameID, loc)
	v.val = val
	v.sc.emit(th, core.OpWrite, v.id, v.name, v.nameID, 0, 0, loc, locID)
}
