package sched

import (
	"mtbench/internal/core"
)

// waitgroup is the controlled runtime's sync.WaitGroup: a plain
// counter, because only one virtual thread runs at a time. Waiters
// block until the counter reaches zero; a negative counter is a
// failing oracle, as in the standard library.
type waitgroup struct {
	id     core.ObjectID
	name   string
	nameID uint32
	sc     *scheduler
	count  int
}

func (w *waitgroup) OID() core.ObjectID { return w.id }

// blockReady implements blockSrc: a waiter can run once the counter is
// zero.
func (w *waitgroup) blockReady(*blockReason) bool { return w.count == 0 }

// blockHolder implements blockSrc; a waitgroup has no single holder,
// so no wait-for edge is reported.
func (w *waitgroup) blockHolder(*blockReason) core.ThreadID { return core.NoThread }

func (w *waitgroup) Add(t core.T, delta int) {
	th := w.sc.curThread(t)
	loc, locID := w.sc.progLoc()
	th.prePoint(core.OpWGAdd, w.name, w.nameID, loc)
	w.add(th, delta, loc, locID)
}

func (w *waitgroup) Done(t core.T) {
	th := w.sc.curThread(t)
	loc, locID := w.sc.progLoc()
	th.prePoint(core.OpWGAdd, w.name, w.nameID, loc)
	w.add(th, -1, loc, locID)
}

func (w *waitgroup) add(th *thread, delta int, loc core.Location, locID uint32) {
	w.count += delta
	if w.count < 0 {
		if loc.File == "" {
			loc, locID = core.CallerLocationID(2)
		}
		msg := "negative counter on waitgroup " + w.name
		w.sc.emit(th, core.OpFail, w.id, msg, 0, 0, 0, loc, locID)
		core.FailNow(core.Failure{Msg: msg, Thread: th.id, Loc: loc})
	}
	w.sc.emit(th, core.OpWGAdd, w.id, w.name, w.nameID, int64(w.count), 0, loc, locID)
}

func (w *waitgroup) Wait(t core.T) {
	th := w.sc.curThread(t)
	loc, locID := w.sc.progLoc()
	th.prePoint(core.OpWGWait, w.name, w.nameID, loc)
	if w.count > 0 {
		w.sc.emit(th, core.OpBlock, w.id, w.name, w.nameID, 0, 0, loc, locID)
		for w.count > 0 {
			th.blockOn(blockReason{kind: blockWG, obj: w.id, name: w.name, src: w})
		}
	}
	w.sc.emit(th, core.OpWGWait, w.id, w.name, w.nameID, 0, 0, loc, locID)
}

// sendWaiter is one blocked sender's parked value. The receiver that
// consumes it marks it taken and emits the send event on the sender's
// behalf (so the trace shows send before receive, and release/acquire
// edges point the right way); the sender removes its own entry when it
// resumes.
type sendWaiter struct {
	tid   core.ThreadID
	val   any
	taken bool
}

// channel is the controlled runtime's Go channel: a bounded buffer
// plus a queue of parked senders. A rendezvous channel (cap 0) is the
// degenerate case where every send parks until a receiver takes the
// value directly.
type channel struct {
	id     core.ObjectID
	name   string
	nameID uint32
	sc     *scheduler
	capn   int
	buf    []any
	closed bool
	sendq  []sendWaiter
}

func (c *channel) OID() core.ObjectID { return c.id }
func (c *channel) Cap() int           { return c.capn }

// findSend returns the parked entry for tid, or nil.
func (c *channel) findSend(tid core.ThreadID) *sendWaiter {
	for i := range c.sendq {
		if c.sendq[i].tid == tid {
			return &c.sendq[i]
		}
	}
	return nil
}

// anyUntaken reports whether a parked sender still holds an unconsumed
// value.
func (c *channel) anyUntaken() bool {
	for i := range c.sendq {
		if !c.sendq[i].taken {
			return true
		}
	}
	return false
}

// blockReady implements blockSrc for both directions: a parked sender
// can run once its value was taken (or the channel closed under it — it
// resumes to fail); a parked receiver once a value or a close is
// available.
func (c *channel) blockReady(r *blockReason) bool {
	if r.kind == blockChanSend {
		e := c.findSend(r.tid)
		return e == nil || e.taken || c.closed
	}
	return len(c.buf) > 0 || c.anyUntaken() || c.closed
}

// blockHolder implements blockSrc; channels have no holder, so no
// wait-for edge is reported.
func (c *channel) blockHolder(*blockReason) core.ThreadID { return core.NoThread }

func (c *channel) Send(t core.T, v any) {
	th := c.sc.curThread(t)
	loc, locID := c.sc.progLoc()
	th.prePoint(core.OpChanSend, c.name, c.nameID, loc)
	if c.closed {
		c.failClosedSend(th, loc, locID)
	}
	if c.capn > 0 && len(c.buf) < c.capn {
		c.buf = append(c.buf, v)
		c.sc.emit(th, core.OpChanSend, c.id, c.name, c.nameID, int64(len(c.buf)), 0, loc, locID)
		return
	}
	// Rendezvous, or the buffer is full: park the value and block until
	// a receiver takes it (the receiver emits this send's event).
	c.sendq = append(c.sendq, sendWaiter{tid: th.id, val: v})
	c.sc.emit(th, core.OpBlock, c.id, c.name, c.nameID, 0, 0, loc, locID)
	for {
		e := c.findSend(th.id)
		if e == nil || e.taken {
			break
		}
		if c.closed {
			c.removeSend(th.id)
			c.failClosedSend(th, loc, locID)
		}
		th.blockOn(blockReason{kind: blockChanSend, obj: c.id, name: c.name, src: c, tid: th.id})
	}
	c.removeSend(th.id)
}

func (c *channel) failClosedSend(th *thread, loc core.Location, locID uint32) {
	if loc.File == "" {
		loc, locID = core.CallerLocationID(2)
	}
	msg := "send on closed channel " + c.name
	c.sc.emit(th, core.OpFail, c.id, msg, 0, 0, 0, loc, locID)
	core.FailNow(core.Failure{Msg: msg, Thread: th.id, Loc: loc})
}

func (c *channel) removeSend(tid core.ThreadID) {
	for i := range c.sendq {
		if c.sendq[i].tid == tid {
			c.sendq = append(c.sendq[:i], c.sendq[i+1:]...)
			return
		}
	}
}

func (c *channel) Recv(t core.T) (any, bool) {
	th := c.sc.curThread(t)
	loc, locID := c.sc.progLoc()
	th.prePoint(core.OpChanRecv, c.name, c.nameID, loc)
	for {
		if v, ok, ready := c.tryRecv(th, loc, locID); ready {
			return v, ok
		}
		c.sc.emit(th, core.OpBlock, c.id, c.name, c.nameID, 0, 0, loc, locID)
		for !(len(c.buf) > 0 || c.anyUntaken() || c.closed) {
			th.blockOn(blockReason{kind: blockChanRecv, obj: c.id, name: c.name, src: c, tid: th.id})
		}
	}
}

// tryRecv completes a receive if one is possible now, emitting the
// receive event (and any parked sender's deferred send event). ready
// is false when the receiver must block. Select's receive arms share
// it.
func (c *channel) tryRecv(th *thread, loc core.Location, locID uint32) (v any, ok, ready bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		copy(c.buf, c.buf[1:])
		c.buf = c.buf[:len(c.buf)-1]
		c.promoteSenders(loc, locID)
		c.sc.emit(th, core.OpChanRecv, c.id, c.name, c.nameID, 1, 0, loc, locID)
		return v, true, true
	}
	for i := range c.sendq {
		if c.sendq[i].taken {
			continue
		}
		e := &c.sendq[i]
		e.taken = true
		v = e.val
		e.val = nil
		if sender := c.sc.threadByID(e.tid); sender != nil {
			c.sc.emit(sender, core.OpChanSend, c.id, c.name, c.nameID, 0, 0, loc, locID)
		}
		c.sc.emit(th, core.OpChanRecv, c.id, c.name, c.nameID, 1, 0, loc, locID)
		return v, true, true
	}
	if c.closed {
		c.sc.emit(th, core.OpChanRecv, c.id, c.name, c.nameID, 0, 0, loc, locID)
		return nil, false, true
	}
	return nil, false, false
}

// promoteSenders refills freed buffer space from parked senders in
// arrival order, emitting their deferred send events.
func (c *channel) promoteSenders(loc core.Location, locID uint32) {
	for i := range c.sendq {
		if len(c.buf) >= c.capn {
			return
		}
		if c.sendq[i].taken {
			continue
		}
		e := &c.sendq[i]
		e.taken = true
		c.buf = append(c.buf, e.val)
		e.val = nil
		if sender := c.sc.threadByID(e.tid); sender != nil {
			c.sc.emit(sender, core.OpChanSend, c.id, c.name, c.nameID, int64(len(c.buf)), 0, loc, locID)
		}
	}
}

func (c *channel) Close(t core.T) {
	th := c.sc.curThread(t)
	loc, locID := c.sc.progLoc()
	th.prePoint(core.OpChanClose, c.name, c.nameID, loc)
	if c.closed {
		if loc.File == "" {
			loc, locID = core.CallerLocationID(1)
		}
		msg := "close of closed channel " + c.name
		c.sc.emit(th, core.OpFail, c.id, msg, 0, 0, 0, loc, locID)
		core.FailNow(core.Failure{Msg: msg, Thread: th.id, Loc: loc})
	}
	c.closed = true
	c.sc.emit(th, core.OpChanClose, c.id, c.name, c.nameID, int64(len(c.buf)), 0, loc, locID)
}

// selectWait is the blockSrc for a thread parked in Select: ready as
// soon as any arm could proceed.
type selectWait struct {
	cases []core.SelectCase
}

func (sw *selectWait) blockReady(*blockReason) bool {
	for _, sc := range sw.cases {
		ch := sc.Ch.(*channel)
		if sc.Send {
			if ch.closed || (ch.capn > 0 && len(ch.buf) < ch.capn) {
				return true
			}
		} else if len(ch.buf) > 0 || ch.anyUntaken() || ch.closed {
			return true
		}
	}
	return false
}

func (sw *selectWait) blockHolder(*blockReason) core.ThreadID { return core.NoThread }

// Select blocks until one arm can proceed and executes the
// lowest-index ready arm, so the schedule fully determines the choice.
// Send arms on rendezvous channels and default arms are not supported
// (see DESIGN.md, "The rewrite layer").
func (c *tc) Select(cases []core.SelectCase) (int, any, bool) {
	th, s := c.th, c.th.sc
	loc, locID := s.progLoc()
	if len(cases) == 0 {
		c.Failf("select with no cases")
	}
	name := ""
	for _, sc := range cases {
		ch, ok := sc.Ch.(*channel)
		if !ok || ch.sc != s {
			panic("sched: Select case channel from a different runtime/run")
		}
		if name == "" {
			name = ch.name
		}
		if sc.Send && ch.capn == 0 {
			c.Failf("select send on rendezvous channel %s is not supported", ch.name)
		}
	}
	th.prePoint(core.OpSelect, name, 0, loc)
	sw := selectWait{cases: cases}
	for {
		for i, sc := range cases {
			ch := sc.Ch.(*channel)
			if sc.Send {
				if ch.closed {
					ch.failClosedSend(th, loc, locID)
				}
				if len(ch.buf) < ch.capn {
					ch.buf = append(ch.buf, sc.Val)
					s.emit(th, core.OpChanSend, ch.id, ch.name, ch.nameID, int64(len(ch.buf)), 0, loc, locID)
					return i, nil, true
				}
			} else if v, ok, ready := ch.tryRecv(th, loc, locID); ready {
				return i, v, ok
			}
		}
		th.blockOn(blockReason{kind: blockSelect, name: name, src: &sw, tid: th.id})
	}
}
