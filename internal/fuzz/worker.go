// The fuzzing coordinator: corpus seeding, the parallel worker pool,
// and the merge layer. The budget and merge idioms mirror
// internal/explore/parallel.go — MaxRuns is reserved run-by-run from a
// shared counter so the global budget never overruns, StopAtFirstBug
// winds every worker down after its in-flight run, and bugs
// deduplicate globally by core.BugSignature.
//
// Unlike exploration there is no work queue: fuzzing's shared state is
// the corpus plus the cumulative coverage set, and every worker runs
// the same pick → mutate → execute → merge loop against them. Each
// worker owns a seeded rng derived from (Options.Seed, worker index),
// so a single worker is fully deterministic and N workers differ only
// in how their deterministic streams interleave on the shared corpus.
package fuzz

import (
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"

	"mtbench/internal/core"
	"mtbench/internal/coverage"
	"mtbench/internal/sched"
)

type coordinator struct {
	opts Options
	body func(core.T)

	// global accumulates coverage over every run; its ContendedVars
	// feed the variable-bias mutator's targets. Tracker is safe for
	// concurrent use.
	global *coverage.Tracker

	// mu guards the corpus, the covered-task set and the campaign
	// statistics.
	mu           sync.Mutex
	corp         *corpus
	covered      map[string]bool
	coverageRuns int
	repairs      int64
	ops          map[string]int

	// reserved hands out run-budget slots; executed counts runs
	// actually performed (Result.Runs and Bug.Index).
	reserved atomic.Int64
	executed atomic.Int64
	stopping atomic.Bool

	// resMu guards the merged bug set.
	resMu    sync.Mutex
	seenBugs map[string]bool
	bugs     []Bug
}

func newCoordinator(opts Options, body func(core.T)) *coordinator {
	return &coordinator{
		opts:     opts,
		body:     body,
		global:   coverage.NewTracker(),
		corp:     newCorpus(opts.MaxCorpus),
		covered:  map[string]bool{},
		ops:      map[string]int{},
		seenBugs: map[string]bool{},
	}
}

// mix derives a stream seed from the master seed and a stream index,
// so workers and phases get decorrelated but reproducible rngs. It is
// the shared core.MixSeed derivation (the campaign finders use the
// same one, which keeps per-run seeds comparable across tools).
func mix(seed, stream int64) int64 { return core.MixSeed(seed, stream) }

// run executes the campaign: seed the corpus, run the worker pool to
// budget exhaustion (or global stop), merge.
func (c *coordinator) run() *Result {
	c.seedCorpus()
	var wg sync.WaitGroup
	for w := 0; w < c.opts.Workers; w++ {
		rng := rand.New(rand.NewSource(mix(c.opts.Seed, int64(w)+1)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.fuzzLoop(rng)
		}()
	}
	wg.Wait()

	c.mu.Lock()
	res := &Result{
		Runs:         int(c.executed.Load()),
		CorpusSize:   len(c.corp.entries),
		Coverage:     len(c.covered),
		CoverageRuns: c.coverageRuns,
		Repairs:      c.repairs,
		Ops:          c.ops,
	}
	c.mu.Unlock()
	c.resMu.Lock()
	res.Bugs = c.bugs
	c.resMu.Unlock()
	slices.SortFunc(res.Bugs, func(a, b Bug) int { return a.Index - b.Index })
	return res
}

// seedCorpus primes the search before any mutation: the nonpreemptive
// baseline schedule (always corpus entry 0) plus a few seeded random
// walks, all charged against MaxRuns and merged like any other run.
func (c *coordinator) seedCorpus() {
	for i := 0; i < seedRuns; i++ {
		if c.stopping.Load() || c.reserved.Add(1) > int64(c.opts.MaxRuns) {
			return
		}
		g := &guided{rng: rand.New(rand.NewSource(mix(c.opts.Seed, -int64(i)-1)))}
		var st sched.Strategy = g
		if i == 0 {
			st = sched.Nonpreemptive()
			g = nil
		}
		c.executeAndMerge(st, g, "seed")
	}
}

// fuzzLoop is one worker: reserve budget, pick a base and an operator,
// mutate, execute, merge — until the budget or a global stop ends the
// campaign.
func (c *coordinator) fuzzLoop(rng *rand.Rand) {
	for {
		if c.stopping.Load() {
			return
		}
		if c.reserved.Add(1) > int64(c.opts.MaxRuns) {
			return
		}

		c.mu.Lock()
		base := c.corp.pick(rng)
		donor := c.corp.pick(rng)
		targets := c.targetsLocked()
		c.mu.Unlock()
		if base == nil {
			return // seeding found nothing to build on (empty budget)
		}

		m := mutators[rng.Intn(len(mutators))]
		candidate := m.fn(rng, base, donor, &c.opts)
		g := &guided{
			decisions: candidate,
			rng:       rand.New(rand.NewSource(rng.Int63())),
			targets:   targets,
		}
		c.executeAndMerge(g, g, m.name)
	}
}

// targetsLocked snapshots the contended-variable set for hot-position
// tracking. Caller holds c.mu (the snapshot itself reads the tracker,
// which has its own lock).
func (c *coordinator) targetsLocked() map[string]bool {
	vars := c.global.ContendedVars()
	if len(vars) == 0 {
		return nil
	}
	m := make(map[string]bool, len(vars))
	for _, v := range vars {
		m[v] = true
	}
	return m
}

// executeAndMerge performs one controlled run under st and merges its
// coverage, corpus and bug contributions. g carries the guided
// strategy's repair count and hot positions (nil for the baseline
// seed).
func (c *coordinator) executeAndMerge(st sched.Strategy, g *guided, op string) {
	perRun := coverage.NewTracker()
	listeners := make([]core.Listener, 0, len(c.opts.Listeners)+2)
	listeners = append(listeners, c.global, perRun)
	listeners = append(listeners, c.opts.Listeners...)

	res := sched.Run(sched.Config{
		Strategy:       st,
		Listeners:      listeners,
		MaxSteps:       c.opts.MaxSteps,
		Name:           c.opts.Name,
		Seed:           c.opts.Seed,
		RecordSchedule: true,
	}, c.body)
	index := int(c.executed.Add(1))

	// The run's coverage signature: contention-model tasks plus the
	// observed outcome class, so outcome diversity also counts as
	// progress (the multi-outcome benchmark's lesson).
	tasks := append(perRun.Tasks(), "outcome:"+res.Verdict.String()+":"+res.Outcome)

	newBug := c.recordBug(res, index)

	c.mu.Lock()
	c.ops[op]++
	if g != nil {
		c.repairs += g.repairs
	}
	gain := 0
	for _, task := range tasks {
		if !c.covered[task] {
			c.covered[task] = true
			gain++
		}
	}
	if gain > 0 {
		c.coverageRuns++
	}
	if gain > 0 || newBug {
		e := &entry{
			schedule: slices.Clone(res.Schedule),
			gain:     gain,
			bug:      newBug,
		}
		if g != nil {
			e.hot = g.hot
		}
		c.corp.add(e)
	}
	c.mu.Unlock()
}

// recordBug merges a buggy result into the global deduplicated bug set
// and triggers the global stop under StopAtFirstBug. It reports
// whether the bug signature was new.
func (c *coordinator) recordBug(res *core.Result, index int) bool {
	if !res.Verdict.Bug() {
		return false
	}
	key := core.BugSignature(res)
	c.resMu.Lock()
	fresh := !c.seenBugs[key]
	if fresh {
		c.seenBugs[key] = true
		c.bugs = append(c.bugs, Bug{
			Schedule: slices.Clone(res.Schedule),
			Result:   res,
			Index:    index,
		})
	}
	c.resMu.Unlock()
	if c.opts.StopAtFirstBug {
		c.stopping.Store(true)
	}
	return fresh
}
