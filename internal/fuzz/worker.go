// The fuzzing coordinator: corpus seeding, the parallel worker pool,
// and the merge layer. The budget and merge idioms mirror
// internal/explore/parallel.go — MaxRuns is reserved run-by-run from a
// shared counter so the global budget never overruns, StopAtFirstBug
// winds every worker down after its in-flight run, and bugs
// deduplicate globally by core.BugSignature.
//
// Unlike exploration there is no work queue: fuzzing's shared state is
// the corpus plus the cumulative coverage set, and every worker runs
// the same pick → mutate → execute → merge loop against them. Each
// worker owns a seeded rng derived from (Options.Seed, worker index),
// so a single worker is fully deterministic and N workers differ only
// in how their deterministic streams interleave on the shared corpus.
//
// Each worker also owns its run machinery — a pooled sched.Runner, a
// per-run coverage tracker that is reset between runs and batch-merged
// into the cumulative tracker once per run (coverage.Tracker.Merge),
// and a reusable guided strategy whose rng is reseeded per candidate —
// so the steady-state loop executes schedules without reallocating any
// of it and the cumulative tracker's mutex never appears on the
// per-event path. Reuse is invisible to results: Workers: 1 with a
// fixed seed remains byte-identical (TestFuzzGolden).
package fuzz

import (
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"

	"mtbench/internal/core"
	"mtbench/internal/coverage"
	"mtbench/internal/sched"
)

type coordinator struct {
	opts Options
	body func(core.T)

	// global accumulates coverage over every run; its contended
	// variables feed the variable-bias mutator's targets. Workers write
	// it through per-worker shards, so the only lock on the per-event
	// path is the worker's own.
	global *coverage.Tracker

	// mu guards the corpus, the covered-task set and the campaign
	// statistics.
	mu           sync.Mutex
	corp         *corpus
	coveredTasks map[coverage.TaskKey]bool
	coveredOuts  map[string]bool
	coverageRuns int
	repairs      int64
	ops          map[string]int
	// seenCanon dedups executed runs by commutation-canonical form
	// (Options.Canonicalize); canonDups counts the repeats.
	seenCanon map[uint64]bool
	canonDups int

	// reserved hands out run-budget slots; executed counts runs
	// actually performed (Result.Runs and Bug.Index).
	reserved atomic.Int64
	executed atomic.Int64
	stopping atomic.Bool

	// resMu guards the merged bug set.
	resMu    sync.Mutex
	seenBugs map[string]bool
	bugs     []Bug
}

func newCoordinator(opts Options, body func(core.T)) *coordinator {
	return &coordinator{
		opts:         opts,
		body:         body,
		global:       coverage.NewTracker(),
		corp:         newCorpus(opts.MaxCorpus),
		coveredTasks: map[coverage.TaskKey]bool{},
		coveredOuts:  map[string]bool{},
		ops:          map[string]int{},
		seenCanon:    map[uint64]bool{},
		seenBugs:     map[string]bool{},
	}
}

// workerState is one worker's reusable execution machinery.
type workerState struct {
	runner *sched.Runner
	// perRun measures one run's coverage signature; Reset clears it in
	// place between runs, and a per-run Merge folds it into the
	// cumulative tracker — so the only listener on the event path is
	// the worker's own, and the global tracker's mutex is taken once
	// per run instead of once per event.
	perRun *coverage.Tracker
	// g is the reusable guided strategy; grng is its rng, lazily
	// reseeded per candidate (equivalent stream to a freshly
	// constructed one, but runs that never draw pay nothing).
	g    guided
	gsrc *lazySeedSource
	grng *rand.Rand

	listeners []core.Listener
	keys      []coverage.TaskKey
	varBuf    []uint32
	targets   map[uint32]bool
}

func (c *coordinator) newWorkerState() *workerState {
	ws := &workerState{
		runner:  sched.NewRunner(),
		perRun:  coverage.NewTracker(),
		gsrc:    newLazySeedSource(),
		targets: map[uint32]bool{},
	}
	ws.grng = rand.New(ws.gsrc)
	return ws
}

// mix derives a stream seed from the master seed and a stream index,
// so workers and phases get decorrelated but reproducible rngs. It is
// the shared core.MixSeed derivation (the campaign finders use the
// same one, which keeps per-run seeds comparable across tools).
func mix(seed, stream int64) int64 { return core.MixSeed(seed, stream) }

// run executes the campaign: seed the corpus, run the worker pool to
// budget exhaustion (or global stop), merge.
func (c *coordinator) run() *Result {
	seedWS := c.newWorkerState()
	c.seedCorpus(seedWS)
	seedWS.runner.Close()

	var wg sync.WaitGroup
	for w := 0; w < c.opts.Workers; w++ {
		rng := rand.New(rand.NewSource(mix(c.opts.Seed, int64(w)+1)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := c.newWorkerState()
			defer ws.runner.Close()
			c.fuzzLoop(ws, rng)
		}()
	}
	wg.Wait()

	c.mu.Lock()
	res := &Result{
		Runs:         int(c.executed.Load()),
		CorpusSize:   len(c.corp.entries),
		Coverage:     len(c.coveredTasks) + len(c.coveredOuts),
		CoverageRuns: c.coverageRuns,
		Repairs:      c.repairs,
		CanonDups:    c.canonDups,
		Ops:          c.ops,
	}
	c.mu.Unlock()
	c.resMu.Lock()
	res.Bugs = c.bugs
	c.resMu.Unlock()
	slices.SortFunc(res.Bugs, func(a, b Bug) int { return a.Index - b.Index })
	return res
}

// seedCorpus primes the search before any mutation: the nonpreemptive
// baseline schedule (always corpus entry 0) plus a few seeded random
// walks, all charged against MaxRuns and merged like any other run.
func (c *coordinator) seedCorpus(ws *workerState) {
	for i := 0; i < seedRuns; i++ {
		if c.stopping.Load() || c.reserved.Add(1) > int64(c.opts.MaxRuns) {
			return
		}
		g := &guided{rng: rand.New(rand.NewSource(mix(c.opts.Seed, -int64(i)-1))), capture: c.opts.Canonicalize}
		var st sched.Strategy = g
		if i == 0 {
			st = sched.Nonpreemptive()
			g = nil
		}
		c.executeAndMerge(ws, st, g, "seed")
	}
}

// fuzzLoop is one worker: reserve budget, pick a base and an operator,
// mutate, execute, merge — until the budget or a global stop ends the
// campaign.
func (c *coordinator) fuzzLoop(ws *workerState, rng *rand.Rand) {
	for {
		if c.stopping.Load() {
			return
		}
		if c.reserved.Add(1) > int64(c.opts.MaxRuns) {
			return
		}

		c.mu.Lock()
		base := c.corp.pick(rng)
		donor := c.corp.pick(rng)
		targets := c.fillTargets(ws)
		c.mu.Unlock()
		if base == nil {
			return // seeding found nothing to build on (empty budget)
		}

		m := mutators[rng.Intn(len(mutators))]
		candidate := m.fn(rng, base, donor, &c.opts)
		// Reuse the worker's guided strategy: reseeding its rng yields
		// the same stream a freshly built rand.New(rand.NewSource(n))
		// would, so reuse is invisible to the campaign's determinism.
		g := &ws.g
		ws.gsrc.Seed(rng.Int63())
		*g = guided{decisions: candidate, rng: ws.grng, targets: targets, hot: g.hot[:0],
			capture: c.opts.Canonicalize, fps: g.fps[:0]}
		c.executeAndMerge(ws, g, g, m.name)
	}
}

// fillTargets refreshes the worker's contended-variable set for
// hot-position tracking, returning nil when nothing is contended yet.
// Caller holds c.mu (the read itself locks the tracker and shards).
func (c *coordinator) fillTargets(ws *workerState) map[uint32]bool {
	ws.varBuf = c.global.AppendContendedVarIDs(ws.varBuf[:0])
	if len(ws.varBuf) == 0 {
		return nil
	}
	clear(ws.targets)
	for _, v := range ws.varBuf {
		ws.targets[v] = true
	}
	return ws.targets
}

// executeAndMerge performs one controlled run under st and merges its
// coverage, corpus and bug contributions. g carries the guided
// strategy's repair count and hot positions (nil for the baseline
// seed).
func (c *coordinator) executeAndMerge(ws *workerState, st sched.Strategy, g *guided, op string) {
	ws.perRun.Reset()
	ws.listeners = append(ws.listeners[:0], core.Listener(ws.perRun))
	ws.listeners = append(ws.listeners, c.opts.Listeners...)

	res := ws.runner.Run(sched.Config{
		Strategy:       st,
		Listeners:      ws.listeners,
		MaxSteps:       c.opts.MaxSteps,
		Name:           c.opts.Name,
		Seed:           c.opts.Seed,
		Plan:           c.opts.Plan,
		RecordSchedule: true,
	}, c.body)
	index := int(c.executed.Add(1))

	// The run's coverage signature: contention-model tasks plus the
	// observed outcome class, so outcome diversity also counts as
	// progress (the multi-outcome benchmark's lesson). The run's
	// coverage also folds into the cumulative tracker here, once.
	ws.keys = ws.perRun.AppendTaskKeys(ws.keys[:0])
	outKey := res.Verdict.String() + ":" + res.Outcome
	c.global.Merge(ws.perRun)

	newBug := c.recordBug(res, index)

	// Commutation dedup: a run whose canonical form was already
	// executed re-proved a known partial order. Count it and keep it
	// out of the corpus (unless it exposed a fresh bug). The canonical
	// form is computed once here and retained on the admitted entry
	// for the preemption-bound mutator.
	dup := false
	var ch uint64
	var canon []core.ThreadID
	if c.opts.Canonicalize && g != nil && len(g.fps) == len(res.Schedule) {
		canon = canonicalize(res.Schedule, g.fps)
		ch = canonHashOf(canon)
	}

	c.mu.Lock()
	c.ops[op]++
	if g != nil {
		c.repairs += g.repairs
	}
	if ch != 0 {
		if c.seenCanon[ch] {
			dup = true
			c.canonDups++
		} else {
			c.seenCanon[ch] = true
		}
	}
	gain := 0
	for _, task := range ws.keys {
		if !c.coveredTasks[task] {
			c.coveredTasks[task] = true
			gain++
		}
	}
	if !c.coveredOuts[outKey] {
		c.coveredOuts[outKey] = true
		gain++
	}
	if gain > 0 {
		c.coverageRuns++
	}
	if (gain > 0 || newBug) && (!dup || newBug) {
		e := &entry{
			schedule: slices.Clone(res.Schedule),
			gain:     gain,
			bug:      newBug,
		}
		if g != nil {
			e.hot = slices.Clone(g.hot)
			if canon != nil {
				e.fps = slices.Clone(g.fps)
				e.canon = canon // fresh slice from canonicalize
			}
		}
		c.corp.add(e)
	}
	c.mu.Unlock()
}

// recordBug merges a buggy result into the global deduplicated bug set
// and triggers the global stop under StopAtFirstBug. It reports
// whether the bug signature was new.
func (c *coordinator) recordBug(res *core.Result, index int) bool {
	if !res.Verdict.Bug() {
		return false
	}
	key := core.BugSignature(res)
	c.resMu.Lock()
	fresh := !c.seenBugs[key]
	if fresh {
		c.seenBugs[key] = true
		// The schedule aliases the worker's pooled runner buffer; clone
		// before retaining, and point the retained Result at the clone.
		sch := slices.Clone(res.Schedule)
		res.Schedule = sch
		c.bugs = append(c.bugs, Bug{
			Schedule: sch,
			Result:   res,
			Index:    index,
		})
	}
	c.resMu.Unlock()
	if c.opts.StopAtFirstBug {
		c.stopping.Store(true)
	}
	return fresh
}
