package fuzz

import (
	"math/rand"
	"slices"

	"mtbench/internal/core"
)

// entry is one retained schedule: interesting because it contributed
// new coverage tasks (gain > 0) or exposed a distinct bug.
type entry struct {
	// schedule is the decision log actually executed (post-repair), so
	// every corpus entry is feasible as recorded.
	schedule []core.ThreadID
	// hot are the step indices where a runnable thread pended an
	// operation on a then-known contended variable; the variable-bias
	// mutator prefers them.
	hot []int
	// fps are the per-decision packed operation footprints (aligned
	// with schedule) and canon the schedule's commutation normal form,
	// both recorded only under Options.Canonicalize. The normal form
	// is computed once at admission — entries are immutable, so the
	// preemption-bound mutator reuses it instead of re-running the
	// quadratic canonicalization per draw.
	fps   []uint64
	canon []core.ThreadID
	// gain is the number of new coverage tasks the entry contributed
	// when admitted; it is the entry's selection weight (+1).
	gain int
	// bug marks entries that exposed a distinct bug (admitted even
	// without coverage gain: buggy prefixes splice well).
	bug bool
}

// corpus is the weighted pool of interesting schedules. Not
// self-locking: the coordinator serializes access.
type corpus struct {
	entries []*entry
	max     int
	weight  int // cached sum of (gain+1) over entries
}

func newCorpus(max int) *corpus { return &corpus{max: max} }

// add admits an entry, evicting the lowest-gain (oldest on ties)
// non-baseline entry when full. The first entry — the nonpreemptive
// seed — is never evicted, so mutation always has the natural schedule
// to restart from.
func (c *corpus) add(e *entry) {
	c.entries = append(c.entries, e)
	c.weight += e.gain + 1
	if len(c.entries) <= c.max {
		return
	}
	lo := 1
	for i := 2; i < len(c.entries); i++ {
		if c.entries[i].gain < c.entries[lo].gain {
			lo = i
		}
	}
	c.weight -= c.entries[lo].gain + 1
	c.entries = slices.Delete(c.entries, lo, lo+1)
}

// pick selects a mutation base, weighted by coverage gain so schedules
// that opened more of the program get proportionally more of the
// budget (the greybox "energy" schedule, kept deliberately simple and
// deterministic).
func (c *corpus) pick(rng *rand.Rand) *entry {
	if len(c.entries) == 0 {
		return nil
	}
	r := rng.Intn(c.weight)
	for _, e := range c.entries {
		r -= e.gain + 1
		if r < 0 {
			return e
		}
	}
	return c.entries[len(c.entries)-1]
}
