package fuzz

import (
	"math/rand"
	"slices"

	"mtbench/internal/core"
	"mtbench/internal/sched"
)

// lazySeedSource wraps the stock math/rand source with deferred
// seeding: Seed just records the seed, and the expensive legacy
// reseed (the generator regenerates its whole 607-word state) runs on
// the first draw — so candidates that execute without ever consulting
// the rng (no repairs, no random tail) pay nothing. The draw stream is
// exactly the one rand.New(rand.NewSource(seed)) would produce.
type lazySeedSource struct {
	src    rand.Source64
	seed   int64
	seeded bool
}

func newLazySeedSource() *lazySeedSource {
	return &lazySeedSource{src: rand.NewSource(0).(rand.Source64), seeded: true}
}

// Seed implements rand.Source, deferring the underlying reseed.
func (l *lazySeedSource) Seed(seed int64) { l.seed, l.seeded = seed, false }

func (l *lazySeedSource) force() {
	if !l.seeded {
		l.src.Seed(l.seed)
		l.seeded = true
	}
}

// Int63 implements rand.Source.
func (l *lazySeedSource) Int63() int64 {
	l.force()
	return l.src.Int63()
}

// Uint64 implements rand.Source64 (rand.Rand draws through it when
// available, so the wrapper must forward it to keep streams
// identical).
func (l *lazySeedSource) Uint64() uint64 {
	l.force()
	return l.src.Uint64()
}

// guided is the candidate-execution strategy: it follows a mutated
// decision log for as long as the log is feasible, repairs infeasible
// decisions with a seeded random pick instead of declaring divergence
// (a mutated schedule is a search hint, not a replay contract), and
// extends past the end of the log with a random walk so short mutants
// still complete their run.
//
// While driving, it also records which executed steps had a runnable
// thread pending an operation on a known-contended variable — the
// "hot" positions the variable-bias mutator later prefers to mutate
// (thread-aware greybox fuzzing's coverage priming).
type guided struct {
	decisions []core.ThreadID
	rng       *rand.Rand
	// targets is the snapshot of contended variables at candidate
	// construction time, keyed by interned name handle (nil disables
	// hot tracking).
	targets map[uint32]bool
	// capture records each executed decision's packed operation
	// footprint into fps, aligned with the run's recorded schedule —
	// the input the commutation canonicalizer needs
	// (Options.Canonicalize).
	capture bool

	pos     int
	repairs int64
	hot     []int
	fps     []uint64
}

// Name implements sched.Strategy.
func (g *guided) Name() string { return "fuzz-guided" }

// Pick implements sched.Strategy.
func (g *guided) Pick(c *sched.Choice) core.ThreadID {
	if g.targets != nil && c.PendingOf != nil {
		for _, id := range c.Runnable {
			if g.targets[c.PendingOf(id).NameID] {
				g.hot = append(g.hot, int(c.Step))
				break
			}
		}
	}
	pick := g.pickRaw(c)
	if g.capture && c.PendingOf != nil {
		// Footprint of the decision actually executed (repairs
		// included), aligned index-for-index with the recorded
		// schedule. IdleID has no pending operation and records the
		// conservative zero footprint.
		g.fps = append(g.fps, c.PendingOf(pick).Footprint().Packed())
	}
	return pick
}

func (g *guided) pickRaw(c *sched.Choice) core.ThreadID {
	if g.pos < len(g.decisions) {
		want := g.decisions[g.pos]
		g.pos++
		if want == sched.IdleID {
			if c.CanIdle {
				return sched.IdleID
			}
		} else if slices.Contains(c.Runnable, want) {
			return want
		}
		g.repairs++
	}
	return c.Runnable[g.rng.Intn(len(c.Runnable))]
}
