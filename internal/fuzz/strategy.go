package fuzz

import (
	"math/rand"
	"slices"

	"mtbench/internal/core"
	"mtbench/internal/sched"
)

// guided is the candidate-execution strategy: it follows a mutated
// decision log for as long as the log is feasible, repairs infeasible
// decisions with a seeded random pick instead of declaring divergence
// (a mutated schedule is a search hint, not a replay contract), and
// extends past the end of the log with a random walk so short mutants
// still complete their run.
//
// While driving, it also records which executed steps had a runnable
// thread pending an operation on a known-contended variable — the
// "hot" positions the variable-bias mutator later prefers to mutate
// (thread-aware greybox fuzzing's coverage priming).
type guided struct {
	decisions []core.ThreadID
	rng       *rand.Rand
	// targets is the snapshot of contended variables at candidate
	// construction time (nil disables hot tracking).
	targets map[string]bool

	pos     int
	repairs int64
	hot     []int
}

// Name implements sched.Strategy.
func (g *guided) Name() string { return "fuzz-guided" }

// Pick implements sched.Strategy.
func (g *guided) Pick(c *sched.Choice) core.ThreadID {
	if g.targets != nil && c.PendingOf != nil {
		for _, id := range c.Runnable {
			if g.targets[c.PendingOf(id).Name] {
				g.hot = append(g.hot, int(c.Step))
				break
			}
		}
	}
	if g.pos < len(g.decisions) {
		want := g.decisions[g.pos]
		g.pos++
		if want == sched.IdleID {
			if c.CanIdle {
				return sched.IdleID
			}
		} else if slices.Contains(c.Runnable, want) {
			return want
		}
		g.repairs++
	}
	return c.Runnable[g.rng.Intn(len(c.Runnable))]
}
