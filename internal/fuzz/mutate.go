package fuzz

import (
	"math/rand"
	"slices"

	"mtbench/internal/core"
	"mtbench/internal/sched"
)

// A mutator derives a candidate decision log from a corpus base (and,
// for splicing, a donor). Mutants need not be feasible: the guided
// strategy repairs infeasible decisions at execution time, so every
// operator is free to be syntactic.
type mutator struct {
	name string
	fn   func(rng *rand.Rand, base, donor *entry, opts *Options) []core.ThreadID
}

// mutators is the operator table, in fixed order so weighted selection
// is deterministic under a fixed seed.
//
//   - flip:    change one decision to another participating thread —
//     the minimal interleaving change.
//   - varbias: flip, but at a hot position (a step where some runnable
//     thread pended on a contended variable) — the thread-aware bias
//     after MUZZ.
//   - insert:  force an extra preemption by inserting a switch to a
//     different thread.
//   - drop:    remove a context switch, merging two execution bursts.
//   - splice:  crossover — a prefix of one interesting schedule joined
//     to a suffix of another.
//   - pbound:  canonicalize to at most P context switches (Options.
//     PreemptionBound, or a drawn 0..2), per Bindal/Bansal/Lal's
//     bounded mutations: most bugs need very few preemptions. Under
//     Options.Canonicalize it bounds the commutation normal form of
//     the base (see canonicalize), so equivalent bases produce
//     identical mutants.
//   - trunc:   keep a prefix and let the guided random tail re-explore
//     from there.
var mutators = []mutator{
	{"flip", mutFlip},
	{"varbias", mutVarBias},
	{"insert", mutInsert},
	{"drop", mutDrop},
	{"splice", mutSplice},
	{"pbound", mutPBound},
	{"trunc", mutTrunc},
}

// threadsOf returns the distinct real thread ids appearing in s, in
// first-appearance order.
func threadsOf(s []core.ThreadID) []core.ThreadID {
	var ids []core.ThreadID
	for _, id := range s {
		if id != sched.IdleID && !slices.Contains(ids, id) {
			ids = append(ids, id)
		}
	}
	return ids
}

// otherThread picks a participating thread different from cur (falling
// back to cur+1, which the guided repair resolves if infeasible).
func otherThread(rng *rand.Rand, ids []core.ThreadID, cur core.ThreadID) core.ThreadID {
	var cands []core.ThreadID
	for _, id := range ids {
		if id != cur {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		return cur + 1
	}
	return cands[rng.Intn(len(cands))]
}

func flipAt(rng *rand.Rand, s []core.ThreadID, i int) []core.ThreadID {
	out := slices.Clone(s)
	out[i] = otherThread(rng, threadsOf(s), s[i])
	return out
}

func mutFlip(rng *rand.Rand, base, _ *entry, _ *Options) []core.ThreadID {
	if len(base.schedule) == 0 {
		return nil
	}
	return flipAt(rng, base.schedule, rng.Intn(len(base.schedule)))
}

func mutVarBias(rng *rand.Rand, base, donor *entry, opts *Options) []core.ThreadID {
	var hot []int
	for _, i := range base.hot {
		if i < len(base.schedule) {
			hot = append(hot, i)
		}
	}
	if len(hot) == 0 {
		return mutFlip(rng, base, donor, opts)
	}
	return flipAt(rng, base.schedule, hot[rng.Intn(len(hot))])
}

func mutInsert(rng *rand.Rand, base, _ *entry, _ *Options) []core.ThreadID {
	s := base.schedule
	i := rng.Intn(len(s) + 1)
	var cur core.ThreadID = -1
	if i > 0 {
		cur = s[i-1]
	}
	out := make([]core.ThreadID, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, otherThread(rng, threadsOf(s), cur))
	out = append(out, s[i:]...)
	return out
}

func mutDrop(rng *rand.Rand, base, _ *entry, _ *Options) []core.ThreadID {
	s := base.schedule
	if len(s) == 0 {
		return nil
	}
	// Prefer deleting a decision that switched threads; fall back to a
	// uniform position.
	var switches []int
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			switches = append(switches, i)
		}
	}
	i := rng.Intn(len(s))
	if len(switches) > 0 {
		i = switches[rng.Intn(len(switches))]
	}
	return slices.Delete(slices.Clone(s), i, i+1)
}

func mutSplice(rng *rand.Rand, base, donor *entry, _ *Options) []core.ThreadID {
	a, b := base.schedule, donor.schedule
	i := rng.Intn(len(a) + 1)
	j := rng.Intn(len(b) + 1)
	out := make([]core.ThreadID, 0, i+len(b)-j)
	out = append(out, a[:i]...)
	return append(out, b[j:]...)
}

// canonicalize rewrites a decision log into its commutation normal
// form: the unique greedy linearization of the log's dependence DAG
// (Foata-style), built by repeatedly emitting the smallest-thread
// decision all of whose dependent predecessors — same thread, or a
// non-commuting operation per core.CommutesPacked, the exploration
// engine's independence relation — are already emitted. Two logs that
// differ only by reordering independent operations have the same
// dependence DAG and therefore rewrite to the same bytes (an
// adjacent-swap bubble sort would not: a decision stuck behind a
// dependent one can block its thread while an independent later
// decision bubbles past, leaving two distinct fixed points of one
// equivalence class). The rewrite preserves feasibility: by
// definition of independence, any linearization of the DAG executes
// the same operations through the same states.
func canonicalize(s []core.ThreadID, fps []uint64) []core.ThreadID {
	n := len(s)
	// preds[i] = indices j < i whose decision must precede i; indeg is
	// the count still unemitted.
	preds := make([][]int, n)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if s[j] == s[i] || !core.CommutesPacked(fps[j], fps[i]) {
				preds[i] = append(preds[i], j)
				indeg[i]++
			}
		}
	}
	out := make([]core.ThreadID, 0, n)
	emitted := make([]bool, n)
	for len(out) < n {
		// The smallest ready thread; scanning in log order makes the
		// earliest decision of that thread win, preserving program
		// order (same-thread decisions are mutual predecessors anyway).
		best := -1
		for i := 0; i < n; i++ {
			if !emitted[i] && indeg[i] == 0 && (best < 0 || s[i] < s[best]) {
				best = i
			}
		}
		emitted[best] = true
		out = append(out, s[best])
		for i := best + 1; i < n; i++ {
			if emitted[i] {
				continue
			}
			for _, j := range preds[i] {
				if j == best {
					indeg[i]--
					break
				}
			}
		}
	}
	return out
}

// canonHashOf is the FNV-1a fold of an already-canonicalized log, the
// key the coordinator dedups executed runs by.
func canonHashOf(canon []core.ThreadID) uint64 {
	h := core.HashOffset
	for _, id := range canon {
		h = core.FoldHash(h, uint64(uint32(id)))
	}
	return h
}

// canonHash canonicalizes and hashes in one step.
func canonHash(s []core.ThreadID, fps []uint64) uint64 {
	return canonHashOf(canonicalize(s, fps))
}

func mutPBound(rng *rand.Rand, base, _ *entry, opts *Options) []core.ThreadID {
	bound := rng.Intn(3)
	if opts.PreemptionBound != nil {
		bound = *opts.PreemptionBound
	}
	out := slices.Clone(base.schedule)
	// With Canonicalize, bound the commutation normal form instead of
	// the raw log: equivalent bases then produce identical mutants.
	// The form was computed at corpus admission (entries are
	// immutable).
	if opts.Canonicalize && base.canon != nil {
		out = slices.Clone(base.canon)
	}
	switches := 0
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1] {
			continue
		}
		switches++
		if switches > bound {
			// Over budget: keep the previous thread running; the guided
			// repair takes over when it blocks or finishes.
			out[i] = out[i-1]
		}
	}
	return out
}

func mutTrunc(rng *rand.Rand, base, _ *entry, _ *Options) []core.ThreadID {
	s := base.schedule
	return slices.Clone(s[:rng.Intn(len(s)+1)])
}
