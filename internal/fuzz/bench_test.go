package fuzz

import (
	"fmt"
	"runtime"
	"testing"
)

// benchmarkFuzz measures raw fuzzing throughput — schedules per second
// — at a given worker count. The workload is a fixed MaxRuns budget
// over a repository buggy program with no StopAtFirstBug, so every
// iteration executes the same number of runs regardless of where bugs
// fall. Run with
//
//	go test -bench=Fuzz -benchtime=5x ./internal/fuzz/
func benchmarkFuzz(b *testing.B, program string, workers, budget int) {
	body := bodyOf(b, program)
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Fuzz(Options{MaxRuns: budget, Seed: int64(i), Workers: workers}, body)
		total += res.Runs
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "schedules/sec")
}

func BenchmarkFuzz(b *testing.B) {
	for _, program := range []string{"account", "abastack"} {
		for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
			b.Run(fmt.Sprintf("%s/workers=%d", program, workers), func(b *testing.B) {
				benchmarkFuzz(b, program, workers, 2000)
			})
		}
	}
}
