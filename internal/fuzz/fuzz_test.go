package fuzz

import (
	"reflect"
	"sort"
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/multiout"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

// smallParams shrinks the larger repository programs the same way the
// exploration tests do, so campaigns stay fast.
var smallParams = map[string]repository.Params{
	"account":      {"depositors": 2, "deposits": 1},
	"statmax":      {"reporters": 2},
	"philosophers": {"philosophers": 2, "rounds": 1},
}

func bodyOf(t testing.TB, name string) func(core.T) {
	t.Helper()
	prog, err := repository.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return prog.BodyWith(smallParams[name])
}

// lostUpdate is the canonical 1-preemption bug (mirrors the explore
// tests), free of repository coupling.
func lostUpdate(ct core.T) {
	x := ct.NewInt("x", 0)
	h1 := ct.Go("a", func(wt core.T) {
		v := x.Load(wt)
		x.Store(wt, v+1)
	})
	h2 := ct.Go("b", func(wt core.T) {
		v := x.Load(wt)
		x.Store(wt, v+1)
	})
	h1.Join(ct)
	h2.Join(ct)
	ct.Assert(x.Load(ct) == 2, "lost update")
}

func TestFuzzFindsLostUpdate(t *testing.T) {
	res := Fuzz(Options{MaxRuns: 500, Seed: 1, StopAtFirstBug: true}, lostUpdate)
	if len(res.Bugs) == 0 {
		t.Fatalf("fuzzing missed the lost update in %d runs", res.Runs)
	}
	if res.FirstBugIndex() < 1 {
		t.Fatalf("first bug index = %d, want >= 1", res.FirstBugIndex())
	}
	if res.Runs > 500 {
		t.Fatalf("budget overrun: %d runs", res.Runs)
	}
}

// fuzzGolden pins the fixed-seed serial campaign exactly, the same
// convention TestSerialGolden pins for exploration: every value below
// is a pure function of (program, Seed: 1, Workers: 1, MaxRuns: 1000),
// so any drift here is a change to the search semantics and must be
// deliberate.
var fuzzGolden = []struct {
	program      string
	firstBug     int
	bugs         int
	coverage     int
	corpusSize   int
	coverageRuns int
}{
	{"account", 4, 1, 10, 2, 2},
	{"statmax", 5, 1, 9, 4, 4},
	{"semleak", 3, 1, 11, 4, 4},
	{"waitholdinglock", 2, 1, 9, 4, 4},
}

func TestFuzzGolden(t *testing.T) {
	for _, g := range fuzzGolden {
		res := Fuzz(Options{MaxRuns: 1000, Seed: 1}, bodyOf(t, g.program))
		if res.Runs != 1000 {
			t.Errorf("%s: runs = %d, want 1000", g.program, res.Runs)
		}
		if got := res.FirstBugIndex(); got != g.firstBug {
			t.Errorf("%s: first bug at %d, golden %d", g.program, got, g.firstBug)
		}
		if len(res.Bugs) != g.bugs {
			t.Errorf("%s: %d distinct bugs, golden %d", g.program, len(res.Bugs), g.bugs)
		}
		if res.Coverage != g.coverage {
			t.Errorf("%s: coverage = %d, golden %d", g.program, res.Coverage, g.coverage)
		}
		if res.CorpusSize != g.corpusSize {
			t.Errorf("%s: corpus = %d, golden %d", g.program, res.CorpusSize, g.corpusSize)
		}
		if res.CoverageRuns != g.coverageRuns {
			t.Errorf("%s: coverage runs = %d, golden %d", g.program, res.CoverageRuns, g.coverageRuns)
		}
	}
}

// TestFuzzDeterministicSerial: Workers: 1 with a fixed seed is
// byte-identical campaign over campaign — runs, bug indices and
// signatures, coverage, corpus, repairs and the per-operator
// histogram.
func TestFuzzDeterministicSerial(t *testing.T) {
	for _, name := range []string{"account", "philosophers", "abastack"} {
		body := bodyOf(t, name)
		a := Fuzz(Options{MaxRuns: 800, Seed: 7}, body)
		b := Fuzz(Options{MaxRuns: 800, Seed: 7}, body)
		if a.Runs != b.Runs || a.Coverage != b.Coverage || a.CorpusSize != b.CorpusSize ||
			a.CoverageRuns != b.CoverageRuns || a.Repairs != b.Repairs {
			t.Errorf("%s: campaigns differ: %+v vs %+v", name, a, b)
		}
		if !reflect.DeepEqual(a.Ops, b.Ops) {
			t.Errorf("%s: operator histograms differ: %v vs %v", name, a.Ops, b.Ops)
		}
		if len(a.Bugs) != len(b.Bugs) {
			t.Fatalf("%s: bug counts differ: %d vs %d", name, len(a.Bugs), len(b.Bugs))
		}
		for i := range a.Bugs {
			if a.Bugs[i].Index != b.Bugs[i].Index ||
				core.BugSignature(a.Bugs[i].Result) != core.BugSignature(b.Bugs[i].Result) ||
				!reflect.DeepEqual(a.Bugs[i].Schedule, b.Bugs[i].Schedule) {
				t.Errorf("%s: bug %d differs: #%d vs #%d", name, i, a.Bugs[i].Index, b.Bugs[i].Index)
			}
		}
	}
}

// bugKeys returns the sorted deduplicated bug signatures of a result.
func bugKeys(res *Result) []string {
	keys := make([]string, 0, len(res.Bugs))
	for _, b := range res.Bugs {
		keys = append(keys, core.BugSignature(b.Result))
	}
	sort.Strings(keys)
	return keys
}

// TestFuzzWorkersSameBugs is the parallel contract: Workers: 4 must
// find the same deduplicated bug set Workers: 1 finds (run order and
// indices may differ — fuzzing is feedback-driven — but not the bugs,
// given a budget generous enough for every worker stream).
func TestFuzzWorkersSameBugs(t *testing.T) {
	for _, name := range []string{"account", "statmax", "semleak", "waitholdinglock"} {
		body := bodyOf(t, name)
		serial := Fuzz(Options{MaxRuns: 2000, Seed: 1, Workers: 1}, body)
		parallel := Fuzz(Options{MaxRuns: 2000, Seed: 1, Workers: 4}, body)
		if parallel.Runs > 2000 {
			t.Errorf("%s: parallel budget overrun: %d runs", name, parallel.Runs)
		}
		if sk, pk := bugKeys(serial), bugKeys(parallel); !reflect.DeepEqual(sk, pk) {
			t.Errorf("%s: bug sets differ\n  serial:   %v\n  parallel: %v", name, sk, pk)
		}
	}
}

// TestFuzzStopAtFirstBug: the stop is global and the budget is not
// exhausted once a bug is in hand.
func TestFuzzStopAtFirstBug(t *testing.T) {
	for _, workers := range []int{1, 4} {
		res := Fuzz(Options{MaxRuns: 5000, Seed: 1, Workers: workers, StopAtFirstBug: true}, bodyOf(t, "account"))
		if len(res.Bugs) == 0 {
			t.Fatalf("workers=%d: no bug found", workers)
		}
		if res.Runs >= 5000 {
			t.Errorf("workers=%d: stop did not cut the campaign short (%d runs)", workers, res.Runs)
		}
	}
}

// TestFuzzBugReplayable: a reported bug schedule is the executed
// decision log, so FixedSchedule replays it to the identical failure.
func TestFuzzBugReplayable(t *testing.T) {
	body := bodyOf(t, "abastack")
	res := Fuzz(Options{MaxRuns: 5000, Seed: 0, StopAtFirstBug: true}, body)
	if len(res.Bugs) == 0 {
		t.Fatalf("abastack bug not found in %d runs", res.Runs)
	}
	bug := res.Bugs[0]
	for i := 0; i < 5; i++ {
		rep := sched.Run(sched.Config{Strategy: &sched.FixedSchedule{Decisions: bug.Schedule}}, body)
		if core.BugSignature(rep) != core.BugSignature(bug.Result) {
			t.Fatalf("replay %d: %q != recorded %q", i, core.BugSignature(rep), core.BugSignature(bug.Result))
		}
	}
}

// TestFuzzOpsExercised: a full-budget campaign runs every mutation
// operator and accounts for every run in the histogram.
func TestFuzzOpsExercised(t *testing.T) {
	res := Fuzz(Options{MaxRuns: 2000, Seed: 1}, bodyOf(t, "account"))
	total := 0
	for _, n := range res.Ops {
		total += n
	}
	if total != res.Runs {
		t.Fatalf("operator histogram sums to %d, runs = %d", total, res.Runs)
	}
	if res.Ops["seed"] == 0 {
		t.Fatal("no seeding runs recorded")
	}
	for _, m := range mutators {
		if res.Ops[m.name] == 0 {
			t.Errorf("operator %s never ran: %v", m.name, res.Ops)
		}
	}
}

// TestFuzzCorpusCap: MaxCorpus bounds retained entries even on the
// many-outcomes program (whose outcome diversity keeps admitting new
// entries), and eviction keeps the campaign running.
func TestFuzzCorpusCap(t *testing.T) {
	res := Fuzz(Options{MaxRuns: 1500, Seed: 1, MaxCorpus: 4}, multiout.Body())
	if res.CorpusSize > 4 {
		t.Fatalf("corpus = %d, cap 4", res.CorpusSize)
	}
	if res.CoverageRuns <= 4 {
		t.Fatalf("multiout should keep yielding new outcomes: coverage runs = %d", res.CoverageRuns)
	}
}

// TestFuzzPreemptionBound: the bounding mutator honors an explicit
// bound and the campaign still finds the 1-preemption bug.
func TestFuzzPreemptionBound(t *testing.T) {
	res := Fuzz(Options{MaxRuns: 1000, Seed: 1, PreemptionBound: Bound(1), StopAtFirstBug: true}, bodyOf(t, "account"))
	if len(res.Bugs) == 0 {
		t.Fatalf("bounded campaign missed the account bug in %d runs", res.Runs)
	}
}

// TestCanonicalize pins the commutation normal form: adjacent
// independent decisions sort by thread id, dependent ones hold their
// order, and independence can move a decision across several
// commuting positions.
func TestCanonicalize(t *testing.T) {
	read := core.Footprint{Op: core.OpRead, Obj: core.InternName("cx")}.Packed()
	write := core.Footprint{Op: core.OpWrite, Obj: core.InternName("cx")}.Packed()
	readY := core.Footprint{Op: core.OpRead, Obj: core.InternName("cy")}.Packed()
	for _, tc := range []struct {
		name string
		s    []core.ThreadID
		fps  []uint64
		want []core.ThreadID
	}{
		{"commuting-reads-sort", []core.ThreadID{2, 1}, []uint64{read, read}, []core.ThreadID{1, 2}},
		{"dependent-holds", []core.ThreadID{2, 1}, []uint64{write, read}, []core.ThreadID{2, 1}},
		{"bubble-through", []core.ThreadID{3, 2, 1}, []uint64{readY, read, readY}, []core.ThreadID{1, 2, 3}},
		{"same-thread-holds", []core.ThreadID{2, 2, 1}, []uint64{read, read, read}, []core.ThreadID{1, 2, 2}},
		// Confluence: both linearizations of {t3:write-x < t1:read-x}
		// with an independent t2:read-y must reach the same normal form
		// (an adjacent-swap rewrite strands t1 behind t3 in one of the
		// two, splitting the equivalence class).
		{"confluent-a", []core.ThreadID{3, 1, 2}, []uint64{write, read, readY}, []core.ThreadID{2, 3, 1}},
		{"confluent-b", []core.ThreadID{3, 2, 1}, []uint64{write, readY, read}, []core.ThreadID{2, 3, 1}},
	} {
		if got := canonicalize(tc.s, tc.fps); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: canonicalize(%v) = %v, want %v", tc.name, tc.s, got, tc.want)
		}
	}
	// Equivalent logs share a canonical hash; inequivalent ones don't.
	if canonHash([]core.ThreadID{2, 1}, []uint64{read, read}) != canonHash([]core.ThreadID{1, 2}, []uint64{read, read}) {
		t.Error("commutation-equivalent logs hash differently")
	}
	if canonHash([]core.ThreadID{2, 1}, []uint64{write, read}) == canonHash([]core.ThreadID{1, 2}, []uint64{read, write}) {
		t.Error("conflicting orders collapsed to one hash")
	}
}

// TestFuzzCanonicalizeDedups: with Canonicalize on, the campaign still
// finds the documented bug, detects commutation-duplicate runs, and
// stays deterministic for a fixed seed.
func TestFuzzCanonicalizeDedups(t *testing.T) {
	body := bodyOf(t, "account")
	a := Fuzz(Options{MaxRuns: 1000, Seed: 1, Canonicalize: true}, body)
	if len(a.Bugs) == 0 {
		t.Fatalf("canonicalizing campaign missed the account bug in %d runs", a.Runs)
	}
	if a.CanonDups == 0 {
		t.Error("no commutation duplicates detected in 1000 runs on a 3-thread program")
	}
	b := Fuzz(Options{MaxRuns: 1000, Seed: 1, Canonicalize: true}, body)
	if a.Runs != b.Runs || a.CanonDups != b.CanonDups || a.Coverage != b.Coverage {
		t.Errorf("canonicalizing campaign not deterministic: %+v vs %+v", a, b)
	}
	plain := Fuzz(Options{MaxRuns: 1000, Seed: 1}, body)
	if plain.CanonDups != 0 {
		t.Errorf("CanonDups = %d without Canonicalize", plain.CanonDups)
	}
}

// TestFirstBugIndexNoBug pins the documented -1 sentinel.
func TestFirstBugIndexNoBug(t *testing.T) {
	res := &Result{}
	if got := res.FirstBugIndex(); got != -1 {
		t.Fatalf("FirstBugIndex() on empty result = %d, want -1", got)
	}
}

// TestFuzzCorrectProgramClean: a defect-free program yields no bugs
// however hard the fuzzer leans on it.
func TestFuzzCorrectProgramClean(t *testing.T) {
	res := Fuzz(Options{MaxRuns: 1500, Seed: 1}, bodyOf(t, "lockedcounter"))
	if len(res.Bugs) != 0 {
		t.Fatalf("fuzzer 'found' %d bugs in a correct program: %v", len(res.Bugs), res.Bugs[0].Result)
	}
}
