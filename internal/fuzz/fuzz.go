// Package fuzz implements coverage-guided greybox fuzzing over
// schedules — the middle ground between the two search extremes the
// framework already has. Random noise (internal/noise) samples the
// interleaving space blindly; systematic exploration (internal/explore)
// enumerates it exhaustively and drowns on large programs. Thread-aware
// greybox fuzzing (MUZZ, Chen et al. 2020) sits in between: it keeps a
// corpus of schedules that produced new concurrency coverage, mutates
// them with interleaving-aware operators, and spends its run budget
// near the schedules that already proved interesting.
//
// The representation is the controlled scheduler's decision log: a
// schedule is the per-step sequence of thread picks that
// sched.Config.RecordSchedule captures and internal/replay replays.
// Because a controlled run is a pure function of its decision sequence,
// a mutated log IS a new test input — no process restarts, no
// snapshotting. Infeasible mutants are repaired on the fly by the
// guided strategy (see strategy.go) instead of being discarded, so
// every budgeted run executes and feeds coverage back.
//
// Feedback is the concurrency coverage of internal/coverage: a
// candidate that covers a new variable-contention, blocked-lock or
// access-pair task (or a never-seen outcome) enters the corpus,
// weighted by how much it contributed. Mutation positions are biased
// toward steps where a runnable thread was about to touch a variable
// the cumulative tracker already knows is contended — the fuzzer's
// version of MUZZ's thread-aware instrumentation priming. A
// preemption-bound mutator (after Bindal, Bansal and Lal 2012)
// canonicalizes candidates to few-preemption schedules, the region
// where most real concurrency bugs live.
//
// The run loop reuses the budget and merge idioms of
// internal/explore/parallel.go: MaxRuns is a global budget reserved
// run-by-run from a shared counter, StopAtFirstBug is a global
// wind-down, and bugs deduplicate by core.BugSignature. Workers: 1
// with a fixed Seed is byte-identical run over run (pinned by
// TestFuzzGolden); Workers: N trades that for wall-clock speed while
// still finding the same deduplicated bug set on the benchmark
// programs (TestFuzzWorkersSameBugs).
package fuzz

import (
	"mtbench/internal/core"
	"mtbench/internal/instrument"
)

// Defaults for Options zero values.
const (
	DefaultMaxRuns   = 2000
	DefaultMaxCorpus = 256
	// seedRuns is the number of corpus-seeding executions (one
	// nonpreemptive baseline plus random walks) charged against MaxRuns
	// before mutation starts.
	seedRuns = 5
)

// Options configures a fuzzing campaign.
type Options struct {
	// MaxRuns bounds how many schedules are executed (0 = 2000). With
	// Workers > 1 it is a global budget shared by all workers, enforced
	// by reservation exactly like explore.Options.MaxSchedules.
	MaxRuns int
	// MaxSteps bounds each run (0 = sched default).
	MaxSteps int64
	// Seed is the master seed. All randomness — corpus selection,
	// mutator choice, mutation positions, guided-replay repairs and
	// random tails — derives from it, so (Seed, Workers: 1) reproduces
	// a campaign exactly.
	Seed int64
	// Workers is the number of parallel fuzzing workers (0 = 1). Unlike
	// exploration, fuzzing is feedback-driven: with more workers the
	// corpus grows in a schedule-dependent order, so only Workers: 1 is
	// deterministic. Budgets and the bug set remain global.
	Workers int
	// StopAtFirstBug ends the campaign at the first non-pass verdict.
	// The stop is global: in-flight runs on other workers finish and
	// are counted, then the campaign winds down.
	StopAtFirstBug bool
	// PreemptionBound, when non-nil, fixes the budget the
	// preemption-bound mutator canonicalizes candidates to. When nil
	// the mutator stays enabled but draws a small bound (0..2) per
	// mutation, which preserves the few-preemption bias without
	// excluding deeper schedules.
	PreemptionBound *int
	// MaxCorpus caps retained corpus entries (0 = 256); when full, the
	// lowest-gain entry after the baseline seed is evicted.
	MaxCorpus int
	// Canonicalize enables commutation-aware candidate dedup: the
	// guided strategy records each executed decision's operation
	// footprint, the preemption-bound mutator first rewrites its base
	// into a canonical normal form (adjacent independent decisions
	// sorted by thread id, using the exploration engine's
	// core.Footprint.Commutes relation — two schedules that differ
	// only by reordering commuting operations rewrite to the same
	// log), and runs whose canonical form was already executed are
	// counted (Result.CanonDups) and kept out of the corpus. Off by
	// default: it changes the campaign's run sequence, and the
	// fixed-seed goldens pin the un-canonicalized search.
	Canonicalize bool
	// Listeners are attached to every run. With Workers > 1, runs
	// execute concurrently, so listeners must be safe for concurrent
	// use.
	Listeners []core.Listener
	// Name labels runs for RunObserver listeners.
	Name string
	// Plan filters which probes fire in every run (nil = instrument
	// everything); rewrite-pipeline programs pass their escape-analysis
	// plan through here.
	Plan *instrument.Plan
}

// Bound is a convenience for Options.PreemptionBound.
func Bound(n int) *int { return &n }

// Bug is one erroneous schedule found while fuzzing.
type Bug struct {
	// Schedule is the executed decision log that exposed the bug; it
	// replays through sched.FixedSchedule or the replay package.
	Schedule []core.ThreadID
	Result   *core.Result
	// Index is the 1-based number of the run that exposed it.
	Index int
}

// Result summarizes a fuzzing campaign.
type Result struct {
	// Runs is the number of executions performed (seeding included).
	Runs int
	// Bugs are the distinct failures found, deduplicated by
	// core.BugSignature and ordered by Index.
	Bugs []Bug
	// CorpusSize is the number of interesting schedules retained.
	CorpusSize int
	// Coverage is the number of distinct coverage tasks (plus distinct
	// outcomes) accumulated over the whole campaign.
	Coverage int
	// CoverageRuns counts runs that contributed at least one new task —
	// the fuzzer's progress curve, comparable across campaigns.
	CoverageRuns int
	// Repairs counts mutated decisions that were infeasible at
	// execution time and were repaired by the guided strategy.
	Repairs int64
	// CanonDups counts executed runs whose commutation-canonical form
	// had already been executed — budget spent re-proving an
	// equivalence class (0 unless Options.Canonicalize).
	CanonDups int
	// Ops histograms executed runs by the mutation operator that
	// produced them ("seed" for the corpus-seeding runs).
	Ops map[string]int
}

// FirstBugIndex returns the run number of the first bug, or -1 when no
// bug was found (run numbers are 1-based, so -1 is unambiguous —
// the same convention as explore.Result).
func (r *Result) FirstBugIndex() int {
	if len(r.Bugs) == 0 {
		return -1
	}
	return r.Bugs[0].Index
}

// Fuzz runs a coverage-guided schedule-fuzzing campaign over body and
// returns its summary. See the package comment for the search design;
// see worker.go for the budget and merge machinery.
func Fuzz(opts Options, body func(core.T)) *Result {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = DefaultMaxRuns
	}
	if opts.MaxCorpus <= 0 {
		opts.MaxCorpus = DefaultMaxCorpus
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	return newCoordinator(opts, body).run()
}
