package staticinfo

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

func analyzeAll(t *testing.T) map[string]*Info {
	t.Helper()
	infos, err := AnalyzeDir(repository.SourceDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("no body functions analyzed")
	}
	return infos
}

func TestEveryProgramAnalyzed(t *testing.T) {
	for _, p := range repository.All() {
		if _, err := ForProgram(p); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// TestAccountAnalysis pins the analysis on the canonical program:
// balance is shared and a race suspect.
func TestAccountAnalysis(t *testing.T) {
	p, err := repository.Get("account")
	if err != nil {
		t.Fatal(err)
	}
	info, err := ForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(info.SharedVars, []string{"balance"}) {
		t.Fatalf("shared = %v, want [balance]", info.SharedVars)
	}
	if !reflect.DeepEqual(info.RaceSuspects, []string{"balance"}) {
		t.Fatalf("race suspects = %v, want [balance]", info.RaceSuspects)
	}
	if len(info.DeadlockSuspects) != 0 {
		t.Fatalf("deadlock suspects = %v", info.DeadlockSuspects)
	}
}

// TestHelperClosureInlining pins the call-site inlining of bound
// helper closures: abastack routes every access through local pop/push
// helpers called from three thread contexts, so its stack cells must
// come out shared (they feed the fuzzer's contention targets and the
// coverage universe), and nothing may be pruned because the
// helper-returning nextOf receiver stays unresolved.
func TestHelperClosureInlining(t *testing.T) {
	p, err := repository.Get("abastack")
	if err != nil {
		t.Fatal(err)
	}
	info, err := ForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"top", "pops1", "pops2", "pushes1", "pushes2", "next1", "next2"} {
		if !contains(info.SharedVars, v) {
			t.Errorf("%s not shared: shared=%v local=%v", v, info.SharedVars, info.LocalVars)
		}
	}
	if len(info.LocalVars) != 0 {
		t.Errorf("unsound pruning with unresolved accesses: local=%v", info.LocalVars)
	}
	if info.Unresolved == 0 {
		t.Error("expected the computed nextOf(...) receiver to count as unresolved")
	}
}

// TestInlinedSpawnInLoopIsMultiInstance guards the inlining against
// losing the call site's loop depth: a helper that spawns a thread,
// called from a loop, creates many instances, so a variable touched
// only by that thread body is still shared — pruning it would drop
// probes on a real N-thread race.
func TestInlinedSpawnInLoopIsMultiInstance(t *testing.T) {
	src := `package p

func helperSpawnBody(t core.T, p Params) {
	x := t.NewInt("x", 0)
	spawnWorker := func() {
		t.Go("w", func(wt core.T) {
			x.Add(wt, 1)
		})
	}
	for i := 0; i < 3; i++ {
		spawnWorker()
	}
}
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	info := infos["helperSpawnBody"]
	if info == nil {
		t.Fatal("helperSpawnBody not analyzed")
	}
	if !contains(info.SharedVars, "x") {
		t.Fatalf("x not shared: shared=%v local=%v unresolved=%d",
			info.SharedVars, info.LocalVars, info.Unresolved)
	}
}

// TestLockedCounterNotSuspect: consistent locking means no race
// suspect even though the variable is shared.
func TestLockedCounterNotSuspect(t *testing.T) {
	p, err := repository.Get("lockedcounter")
	if err != nil {
		t.Fatal(err)
	}
	info, err := ForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(info.SharedVars, "count") {
		t.Fatalf("count not shared: %v", info.SharedVars)
	}
	if contains(info.RaceSuspects, "count") {
		t.Fatalf("count wrongly suspected: %v", info.RaceSuspects)
	}
}

// TestWrongLockSuspect: two different locks do not protect.
func TestWrongLockSuspect(t *testing.T) {
	p, err := repository.Get("wronglock")
	if err != nil {
		t.Fatal(err)
	}
	info, err := ForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(info.RaceSuspects, "count") {
		t.Fatalf("wronglock count not suspected: %+v", info.RaceSuspects)
	}
}

// TestInversionStaticCycle: the AB-BA order shows up as a static lock
// cycle; the consistently ordered variant shows none.
func TestInversionStaticCycle(t *testing.T) {
	inv, err := repository.Get("inversion")
	if err != nil {
		t.Fatal(err)
	}
	info, err := ForProgram(inv)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.DeadlockSuspects) == 0 {
		t.Fatalf("no static cycle found for inversion (edges %v)", info.LockEdges)
	}

	fixed, err := repository.Get("gatedinversion")
	if err != nil {
		t.Fatal(err)
	}
	finfo, err := ForProgram(fixed)
	if err != nil {
		t.Fatal(err)
	}
	// The syntactic analysis sees the same inner cycle; it cannot
	// reason about gates. That is documented over-approximation: the
	// static report includes it, the GoodLock dynamic refinement
	// removes it. Just pin that analysis ran and found the locks.
	if len(finfo.Locks) != 3 {
		t.Fatalf("gatedinversion locks = %v", finfo.Locks)
	}
}

// TestAtomicNotSuspect: the correct adhocsync handoff must not have
// its atomic flag suspected (payload remains, correctly, a static
// suspect — statics cannot prove the protocol).
func TestAtomicNotSuspect(t *testing.T) {
	p, err := repository.Get("adhocsync")
	if err != nil {
		t.Fatal(err)
	}
	info, err := ForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if contains(info.RaceSuspects, "readyflag") {
		t.Fatalf("atomic flag suspected: %v", info.RaceSuspects)
	}
}

// TestPlanPrunesThreadLocal builds a tiny two-variable program source
// behaviorally: run a program with a pruning plan from analysis and
// check local-variable probes are suppressed while shared ones fire.
func TestPlanPrunesThreadLocal(t *testing.T) {
	// transfer has acctA/acctB shared; use a synthetic check instead
	// on lockedcounter (count shared) — plus prove a local var would
	// be pruned using checkthenact? All repository vars in small
	// programs are shared; craft the check directly on the Plan API.
	info := &Info{
		Vars:       map[string]VarKind{"shared": KindInt, "local": KindInt},
		SharedVars: []string{"shared"},
		LocalVars:  []string{"local"},
	}
	plan := info.Plan()
	var names []string
	res := sched.Run(sched.Config{
		Plan: plan,
		Listeners: []core.Listener{core.ListenerFunc(func(ev *core.Event) {
			if ev.Op.IsAccess() {
				names = append(names, ev.Name)
			}
		})},
	}, func(ct core.T) {
		sh := ct.NewInt("shared", 0)
		lo := ct.NewInt("local", 0)
		lo.Add(ct, 1)
		sh.Add(ct, 1)
		lo.Add(ct, 1)
	})
	if res.Verdict != core.VerdictPass {
		t.Fatalf("run: %v", res)
	}
	if !reflect.DeepEqual(names, []string{"shared"}) {
		t.Fatalf("access events = %v, want [shared] only", names)
	}
	if plan.Skipped() == 0 {
		t.Fatal("plan did not count skipped probes")
	}
}

// TestUniverseFromAnalysis: coverage universe carries shared vars and
// locks.
func TestUniverseFromAnalysis(t *testing.T) {
	p, err := repository.Get("lockedcounter")
	if err != nil {
		t.Fatal(err)
	}
	info, err := ForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	u := info.Universe()
	if !contains(u.SharedVars, "count") || !contains(u.Locks, "mu") {
		t.Fatalf("universe = %+v", u)
	}
}

// TestSharedVsGroundTruth checks the escape analysis against dynamic
// ground truth for every program: a variable the analysis calls
// thread-local must never be touched by two threads at run time
// (soundness of pruning); variables it calls shared should mostly be
// truly shared (precision, spot-checked loosely).
func TestSharedVsGroundTruth(t *testing.T) {
	for _, p := range repository.All() {
		p := p
		info, err := ForProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(info.LocalVars) == 0 {
			continue
		}
		local := map[string]bool{}
		for _, v := range info.LocalVars {
			local[v] = true
		}
		// Per-thread objects share a name across instances, so the
		// ground truth is per ObjectID: no single object may be
		// touched by two threads.
		touched := map[core.ObjectID]map[core.ThreadID]bool{}
		objName := map[core.ObjectID]string{}
		sched.Run(sched.Config{
			Strategy: sched.RoundRobin(),
			Listeners: []core.Listener{core.ListenerFunc(func(ev *core.Event) {
				if !ev.Op.IsAccess() || !local[ev.Name] {
					return
				}
				set := touched[ev.Obj]
				if set == nil {
					set = map[core.ThreadID]bool{}
					touched[ev.Obj] = set
				}
				set[ev.Thread] = true
				objName[ev.Obj] = ev.Name
			})},
		}, p.BodyWith(nil))
		for obj, set := range touched {
			if len(set) > 1 {
				t.Errorf("%s: analysis called %q thread-local but %d threads touched object %d",
					p.Name, objName[obj], len(set), obj)
			}
		}
	}
}

func contains(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// TestFactoryClosureUnresolved guards the escape analysis against the
// invisible-helper hole: a closure produced by a factory captures a
// variable and is the only thing that ever touches it from the spawned
// threads. The analysis cannot see the factory's body, so the call
// through the returned closure must count as unresolved and force
// every variable — including the captured one — to stay shared;
// pruning "hidden" here would drop the probes on a real cross-thread
// access.
func TestFactoryClosureUnresolved(t *testing.T) {
	src := `package p

func factoryBody(t core.T, p Params) {
	hidden := t.NewInt("hidden", 0)
	makeBump := func() func(core.T) {
		return func(wt core.T) {
			hidden.Add(wt, 1)
		}
	}
	bump := makeBump()
	t.Go("w", func(wt core.T) {
		bump(wt)
	})
	bump(t)
}
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	info := infos["factoryBody"]
	if info == nil {
		t.Fatal("factoryBody not analyzed")
	}
	if info.Unresolved == 0 {
		t.Fatal("factory-closure call not counted as unresolved")
	}
	if !contains(info.SharedVars, "hidden") {
		t.Fatalf("hidden pruned despite invisible accesses: shared=%v local=%v",
			info.SharedVars, info.LocalVars)
	}
	if len(info.LocalVars) != 0 {
		t.Fatalf("unsound pruning with an unresolved call: local=%v", info.LocalVars)
	}
}
