package staticinfo

import (
	"fmt"
	"sync"

	"mtbench/internal/coverage"
	"mtbench/internal/instrument"
	"mtbench/internal/repository"
)

// This file joins analysis results to repository programs and derives
// the artifacts the dynamic tools consume: instrumentation-pruning
// plans (§3: "if the instrumentor is told some information by the
// static analyzer ... this can be used to decide on a subset of the
// points to be instrumented") and coverage universes (§2.2: statics
// decide which contention tasks are feasible).

var (
	cacheMu sync.Mutex
	cached  map[string]*Info
)

// analyzeRepository runs (and caches) the analysis over the repository
// sources.
func analyzeRepository() (map[string]*Info, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if cached != nil {
		return cached, nil
	}
	dir := repository.SourceDir()
	if dir == "" {
		return nil, fmt.Errorf("staticinfo: repository source dir unknown")
	}
	infos, err := AnalyzeDir(dir)
	if err != nil {
		return nil, err
	}
	cached = infos
	return infos, nil
}

// ForProgram returns the static analysis of a repository program's
// body.
func ForProgram(p *repository.Program) (*Info, error) {
	infos, err := analyzeRepository()
	if err != nil {
		return nil, err
	}
	fn := p.BodyFuncName()
	info, ok := infos[fn]
	if !ok {
		return nil, fmt.Errorf("staticinfo: no analysis for %s (func %q)", p.Name, fn)
	}
	return info, nil
}

// Plan derives the instrumentation-pruning plan: access probes fire
// only on variables the analysis could not prove thread-local. Sync
// and lifecycle probes are untouched (downstream tools need them).
func (info *Info) Plan() *instrument.Plan {
	if len(info.SharedVars) == 0 {
		// Nothing provably shared (analysis gave up): instrument all.
		return instrument.All()
	}
	return instrument.All().OnlyObjects(info.SharedVars...)
}

// Universe derives the feasible-task universe for coverage models.
func (info *Info) Universe() *coverage.Universe {
	return &coverage.Universe{
		SharedVars: append([]string(nil), info.SharedVars...),
		Locks:      append([]string(nil), info.Locks...),
	}
}
