// Package staticinfo is the framework's static-analysis component
// (§2.1): a source-level analysis of benchmark program bodies that
// plays both roles the paper assigns to statics —
//
//  1. finding defects directly: variables written without a common
//     lock (race suspects) and static lock-order cycles (deadlock
//     suspects); and
//  2. producing information for the dynamic tools: which variables can
//     be shared between threads (escape analysis), which feeds the
//     instrumentor a pruning plan (skip thread-local probes, §3) and
//     the coverage models their feasible-task universe (§2.2).
//
// The analysis parses the repository sources with go/ast and is
// deliberately syntactic: intraprocedural, no aliasing, loops
// approximated by multiplicity, branches merged. It over-approximates
// sharing for anything it cannot resolve (dynamically named objects,
// closures passed through factories), which keeps the instrumentation
// plan safe: a probe is only pruned when the variable is provably
// confined to one thread context.
package staticinfo

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// VarKind classifies a created object.
type VarKind string

// Object kinds.
const (
	KindInt    VarKind = "int"
	KindAtomic VarKind = "atomic"
	KindRef    VarKind = "ref"
	KindMutex  VarKind = "mutex"
	KindRW     VarKind = "rwmutex"
	KindCond   VarKind = "cond"
)

// Access is one syntactic variable access.
type Access struct {
	Var     string
	Write   bool
	Context int      // thread context id (0 = program main)
	Locks   []string // locks syntactically open at the access
	// PostJoin marks accesses after a Join in the same context: they
	// are fork/join-ordered with the joined threads, so the race
	// heuristic does not require a lock for them.
	PostJoin bool
	Line     int
}

// Info is the analysis result for one program body.
type Info struct {
	Func string // analyzed function name

	// Vars maps object name to kind for every statically resolved
	// creation.
	Vars map[string]VarKind
	// SharedVars are data variables that may be touched by more than
	// one thread; LocalVars are provably single-context.
	SharedVars []string
	LocalVars  []string
	// Locks are the lock-like objects created.
	Locks []string
	// Accesses are all resolved variable accesses.
	Accesses []Access
	// RaceSuspects are shared variables with a write and no common
	// lock across all accesses.
	RaceSuspects []string
	// LockEdges are the static lock-order edges (held -> acquired).
	LockEdges [][2]string
	// DeadlockSuspects are cycles in the static lock graph.
	DeadlockSuspects [][]string
	// Unresolved counts receivers the analysis could not map to a
	// creation (the over-approximation trigger).
	Unresolved int
}

// AnalyzeDir parses every .go file in dir and analyzes each top-level
// function named *Body with a (T, Params)-shaped signature, returning
// results keyed by function name.
func AnalyzeDir(dir string) (map[string]*Info, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("staticinfo: %w", err)
	}
	out := map[string]*Info{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil || !strings.HasSuffix(fd.Name.Name, "Body") {
					continue
				}
				if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
					continue
				}
				info := analyzeFunc(fset, fd)
				out[fd.Name.Name] = info
			}
		}
	}
	return out, nil
}

// analysis is the walker state for one body function.
type analysis struct {
	fset *token.FileSet
	info *Info

	// tParams are identifiers known to be thread contexts (the body's
	// T parameter and every closure's).
	tParams map[string]bool
	// vars maps local identifier -> object name.
	vars map[string]string
	// createdIn maps object name -> context of creation. Objects
	// created inside a (possibly multi-instance) thread body are
	// per-instance, so accesses confined to the creating context are
	// thread-local even when many instances exist.
	createdIn map[string]int
	// funcLits remembers literals bound to identifiers so that
	// t.Go("x", consumer) can be resolved and helper closures (e.g. a
	// lock-free pop shared by several threads) can be inlined at their
	// call sites.
	funcLits map[string]*ast.FuncLit
	// inlining guards against recursive helper closures during
	// call-site inlining.
	inlining map[string]bool
	// opaqueFns are identifiers bound to call results (factory-returned
	// closures and the like). Their bodies are invisible to the
	// analysis, so invoking one must count as unresolved — it may touch
	// any captured variable.
	opaqueFns map[string]bool

	nextCtx int
	// multiCtx marks contexts spawned inside loops (many instances).
	multiCtx map[int]bool
	// joinSeen marks contexts that have executed a Join.
	joinSeen map[int]bool
}

func analyzeFunc(fset *token.FileSet, fd *ast.FuncDecl) *Info {
	a := &analysis{
		fset: fset,
		info: &Info{
			Func: fd.Name.Name,
			Vars: map[string]VarKind{},
		},
		tParams:   map[string]bool{},
		vars:      map[string]string{},
		funcLits:  map[string]*ast.FuncLit{},
		inlining:  map[string]bool{},
		opaqueFns: map[string]bool{},
		createdIn: map[string]int{},
		multiCtx:  map[int]bool{},
		joinSeen:  map[int]bool{},
	}
	if names := fd.Type.Params.List[0].Names; len(names) > 0 {
		a.tParams[names[0].Name] = true
	}
	a.walkBody(fd.Body, 0, 0, &[]string{})
	a.finish()
	return a.info
}

// creationKind maps a method name to the created object kind.
func creationKind(method string) (VarKind, bool) {
	switch method {
	case "NewInt":
		return KindInt, true
	case "NewAtomicInt":
		return KindAtomic, true
	case "NewRef":
		return KindRef, true
	case "NewMutex":
		return KindMutex, true
	case "NewRWMutex":
		return KindRW, true
	case "NewCond":
		return KindCond, true
	}
	return "", false
}

// walkBody traverses statements in source order, tracking the open
// lock stack (shared, mutated in order) and the thread context.
func (a *analysis) walkBody(n ast.Node, ctx, loopDepth int, open *[]string) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.ForStmt:
			a.walkParts(ctx, loopDepth, open, x.Init, x.Cond, x.Post)
			a.walkBody(x.Body, ctx, loopDepth+1, open)
			return false
		case *ast.RangeStmt:
			a.walkParts(ctx, loopDepth, open, x.X)
			a.walkBody(x.Body, ctx, loopDepth+1, open)
			return false
		case *ast.AssignStmt:
			a.assign(x, ctx, loopDepth, open)
			return false
		case *ast.CallExpr:
			a.call(x, ctx, loopDepth, open)
			return false
		case *ast.FuncLit:
			// A literal not consumed by Go/assignment (e.g. an
			// argument to a helper): analyze in the same context,
			// conservatively.
			a.walkBody(x.Body, ctx, loopDepth, open)
			return false
		}
		return true
	})
}

func (a *analysis) walkParts(ctx, loopDepth int, open *[]string, parts ...ast.Node) {
	for _, p := range parts {
		if p != nil {
			a.walkBody(p, ctx, loopDepth, open)
		}
	}
}

// assign handles object creations and func-literal bindings; other
// assignments are walked for nested calls.
func (a *analysis) assign(st *ast.AssignStmt, ctx, loopDepth int, open *[]string) {
	for i, rhs := range st.Rhs {
		var lhsIdent string
		if i < len(st.Lhs) {
			if id, ok := st.Lhs[i].(*ast.Ident); ok {
				lhsIdent = id.Name
			}
		}
		switch r := rhs.(type) {
		case *ast.FuncLit:
			if lhsIdent != "" {
				a.funcLits[lhsIdent] = r
				continue
			}
			a.walkBody(r.Body, ctx, loopDepth, open)
		case *ast.CallExpr:
			if name, kind, ok := a.creation(r); ok {
				a.info.Vars[name] = kind
				a.createdIn[name] = ctx
				if lhsIdent != "" {
					a.vars[lhsIdent] = name
				}
				continue
			}
			if lhsIdent != "" {
				// The identifier now holds a call result. If it is later
				// invoked, that is a closure from a factory — a body the
				// analysis never sees (inlineCall counts the invocation
				// as unresolved).
				a.opaqueFns[lhsIdent] = true
			}
			a.call(r, ctx, loopDepth, open)
		default:
			a.walkBody(rhs, ctx, loopDepth, open)
		}
	}
}

// creation matches <t>.New*(name, ...) with a literal name.
func (a *analysis) creation(call *ast.CallExpr) (string, VarKind, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok || !a.tParams[recv.Name] {
		return "", "", false
	}
	kind, ok := creationKind(sel.Sel.Name)
	if !ok {
		return "", "", false
	}
	if len(call.Args) == 0 {
		return "", "", false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		a.info.Unresolved++ // dynamically named object
		return "", "", false
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", "", false
	}
	return name, kind, true
}

// call dispatches the interesting method calls: Go (new context),
// lock operations, and variable accesses.
func (a *analysis) call(call *ast.CallExpr, ctx, loopDepth int, open *[]string) {
	// Walk arguments that are calls themselves (e.g. x.Load nested in
	// Assert or arithmetic), except the ones handled specially below.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		for _, arg := range call.Args {
			a.walkBody(arg, ctx, loopDepth, open)
		}
		a.inlineCall(call, ctx, loopDepth, open)
		return
	}
	// A computed receiver (e.g. helper(wt, n).Load(wt)) may hide the
	// accessed object; walk it for nested calls and let resolveRecv
	// count it unresolved below.
	if _, isIdent := sel.X.(*ast.Ident); !isIdent {
		a.walkBody(sel.X, ctx, loopDepth, open)
	}
	method := sel.Sel.Name

	// Thread spawn: <t>.Go(name, fn)
	if method == "Go" {
		if recv, ok := sel.X.(*ast.Ident); ok && a.tParams[recv.Name] && len(call.Args) == 2 {
			a.spawn(call.Args[1], loopDepth, open)
			return
		}
	}

	recvName, known := a.resolveRecv(sel.X)

	switch method {
	case "Lock", "RLock":
		if known && a.isLock(recvName) {
			for _, held := range *open {
				if held != recvName {
					a.info.LockEdges = append(a.info.LockEdges, [2]string{held, recvName})
				}
			}
			*open = append(*open, recvName)
		} else if !known {
			a.info.Unresolved++
		}
		return
	case "Unlock", "RUnlock":
		if known && a.isLock(recvName) {
			for i := len(*open) - 1; i >= 0; i-- {
				if (*open)[i] == recvName {
					*open = append((*open)[:i], (*open)[i+1:]...)
					break
				}
			}
		}
		return
	case "TryLock":
		// Conservative: may or may not hold; do not track.
		return
	case "Load":
		a.access(recvName, known, false, ctx, open, call)
		return
	case "Store", "Add", "CompareAndSwap":
		a.access(recvName, known, true, ctx, open, call)
		for _, arg := range call.Args {
			a.walkBody(arg, ctx, loopDepth, open)
		}
		return
	case "Join":
		a.joinSeen[ctx] = true
		return
	case "Wait", "Signal", "Broadcast", "Yield", "Sleep", "Assert", "Failf", "Outcome":
		for _, arg := range call.Args {
			a.walkBody(arg, ctx, loopDepth, open)
		}
		return
	}
	for _, arg := range call.Args {
		a.walkBody(arg, ctx, loopDepth, open)
	}
}

// inlineCall analyzes a direct call to a bound helper closure (pop(),
// push(wt, n), ...) in the calling context — syntactic inlining, so
// accesses inside shared helpers are attributed to every thread that
// calls them. The helper runs under the caller's open lock stack and
// loop depth (a spawn inside a helper called from a loop is still a
// multi-instance spawn). Recursive helpers are walked once and then
// cut off.
func (a *analysis) inlineCall(call *ast.CallExpr, ctx, loopDepth int, open *[]string) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	lit := a.funcLits[id.Name]
	if lit == nil {
		// Only calls through identifiers known to hold a call result
		// count: plain unknown identifiers here are builtins and
		// conversions (len, int, panic, ...), which touch nothing. A
		// factory-returned closure, by contrast, can read or write every
		// variable it captured, so the whole body must stay unpruned.
		if a.opaqueFns[id.Name] {
			a.info.Unresolved++
		}
		return
	}
	if a.inlining[id.Name] {
		return
	}
	a.inlining[id.Name] = true
	if params := lit.Type.Params; params != nil && len(params.List) > 0 {
		if names := params.List[0].Names; len(names) > 0 {
			a.tParams[names[0].Name] = true
		}
	}
	a.walkBody(lit.Body, ctx, loopDepth, open)
	delete(a.inlining, id.Name)
}

// spawn analyzes a thread body in a fresh context. Literals bound to
// identifiers are looked up; unresolvable bodies count as unresolved.
func (a *analysis) spawn(fn ast.Expr, loopDepth int, open *[]string) {
	var lit *ast.FuncLit
	switch f := fn.(type) {
	case *ast.FuncLit:
		lit = f
	case *ast.Ident:
		lit = a.funcLits[f.Name]
	case *ast.CallExpr:
		// Factory call returning a closure: walk the factory's
		// arguments but give up on the body.
		a.info.Unresolved++
		return
	}
	if lit == nil {
		a.info.Unresolved++
		return
	}
	ctx := a.newContext(loopDepth > 0)
	if params := lit.Type.Params; params != nil && len(params.List) > 0 {
		if names := params.List[0].Names; len(names) > 0 {
			a.tParams[names[0].Name] = true
		}
	}
	// Threads start with no locks held.
	fresh := []string{}
	a.walkBody(lit.Body, ctx, 0, &fresh)
}

func (a *analysis) newContext(multi bool) int {
	a.nextCtx++
	a.multiCtx[a.nextCtx] = multi
	return a.nextCtx
}

// resolveRecv maps a receiver expression to an object name.
func (a *analysis) resolveRecv(x ast.Expr) (string, bool) {
	id, ok := x.(*ast.Ident)
	if !ok {
		return "", false
	}
	name, ok := a.vars[id.Name]
	return name, ok
}

func (a *analysis) isLock(name string) bool {
	k := a.info.Vars[name]
	return k == KindMutex || k == KindRW
}

func (a *analysis) isData(name string) bool {
	k := a.info.Vars[name]
	return k == KindInt || k == KindAtomic || k == KindRef
}

// access records a resolved data access.
func (a *analysis) access(name string, known, write bool, ctx int, open *[]string, call *ast.CallExpr) {
	if !known || !a.isData(name) {
		if !known {
			a.info.Unresolved++
		}
		return
	}
	locks := make([]string, len(*open))
	copy(locks, *open)
	a.info.Accesses = append(a.info.Accesses, Access{
		Var:      name,
		Write:    write,
		Context:  ctx,
		Locks:    locks,
		PostJoin: a.joinSeen[ctx],
		Line:     a.fset.Position(call.Pos()).Line,
	})
}

// finish derives the summary sets from the collected accesses.
func (a *analysis) finish() {
	info := a.info
	ctxsOf := map[string]map[int]bool{}
	for _, acc := range info.Accesses {
		set := ctxsOf[acc.Var]
		if set == nil {
			set = map[int]bool{}
			ctxsOf[acc.Var] = set
		}
		set[acc.Context] = true
	}

	for name, kind := range info.Vars {
		switch kind {
		case KindMutex, KindRW:
			info.Locks = append(info.Locks, name)
		case KindInt, KindAtomic, KindRef:
			ctxs := ctxsOf[name]
			created := a.createdIn[name]
			shared := len(ctxs) > 1
			if !shared {
				// Single access context: the object is shared only if
				// that context is multi-instance AND the object was
				// created outside it (one object, many threads).
				// Objects created inside a multi-instance body are
				// per-instance and stay thread-local.
				for c := range ctxs {
					if a.multiCtx[c] && c != created {
						shared = true
					}
				}
			}
			if info.Unresolved > 0 {
				// Unresolved receivers or thread bodies may hide
				// accesses to any object — including objects with no
				// resolved access at all (reached only through
				// expressions the analysis cannot follow). Pruning is
				// only sound when the whole body resolved.
				shared = true
			}
			if shared {
				info.SharedVars = append(info.SharedVars, name)
			} else {
				info.LocalVars = append(info.LocalVars, name)
			}
		}
	}
	sort.Strings(info.Locks)
	sort.Strings(info.SharedVars)
	sort.Strings(info.LocalVars)

	// Race suspects: shared, written, and no lock common to every
	// access (atomics excluded: release/acquire is their protection).
	sharedSet := map[string]bool{}
	for _, v := range info.SharedVars {
		sharedSet[v] = true
	}
	byVar := map[string][]Access{}
	for _, acc := range info.Accesses {
		byVar[acc.Var] = append(byVar[acc.Var], acc)
	}
	for v, accs := range byVar {
		if !sharedSet[v] || info.Vars[v] == KindAtomic {
			continue
		}
		hasWrite := false
		considered := 0
		var common map[string]bool
		for _, acc := range accs {
			if acc.PostJoin {
				continue // ordered by fork/join, needs no lock
			}
			considered++
			if acc.Write {
				hasWrite = true
			}
			set := map[string]bool{}
			for _, l := range acc.Locks {
				set[l] = true
			}
			if common == nil {
				common = set
			} else {
				for l := range common {
					if !set[l] {
						delete(common, l)
					}
				}
			}
		}
		if hasWrite && considered > 1 && len(common) == 0 {
			info.RaceSuspects = append(info.RaceSuspects, v)
		}
	}
	sort.Strings(info.RaceSuspects)

	info.DeadlockSuspects = lockCycles(info.LockEdges)
}

// lockCycles finds simple cycles in the static lock graph.
func lockCycles(edges [][2]string) [][]string {
	adj := map[string][]string{}
	seenEdge := map[string]bool{}
	for _, e := range edges {
		key := e[0] + "->" + e[1]
		if seenEdge[key] {
			continue
		}
		seenEdge[key] = true
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, next := range adj {
		sort.Strings(next)
	}

	var out [][]string
	var path []string
	onPath := map[string]bool{}
	var dfs func(start, cur string)
	dfs = func(start, cur string) {
		for _, nxt := range adj[cur] {
			if nxt == start && len(path) >= 2 {
				cycle := make([]string, len(path))
				copy(cycle, path)
				out = append(out, cycle)
				continue
			}
			if nxt <= start || onPath[nxt] {
				continue
			}
			path = append(path, nxt)
			onPath[nxt] = true
			dfs(start, nxt)
			onPath[nxt] = false
			path = path[:len(path)-1]
		}
	}
	for _, n := range nodes {
		path = append(path[:0], n)
		onPath = map[string]bool{n: true}
		dfs(n, n)
	}
	return out
}
