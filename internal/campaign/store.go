// The persistent campaign store: an append-only JSONL journal with a
// canonical compacted form.
//
// Line 1 is the meta record pinning the campaign config (the
// CK-framework discipline: results without their reproducible config
// are just numbers); every further line is one completed cell. While a
// campaign runs, cells append in completion order — that is what makes
// interruption safe, a partial journal is still a valid store. When a
// campaign completes, Compact rewrites the file in canonical cell
// order, so any two completed runs of the same fixed-seed config are
// byte-identical and `diff` / git are meaningful over baselines.
package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// storeVersion tags the meta line so future format changes can be
// detected instead of misparsed.
const storeVersion = 1

// metaLine is the store's first line.
type metaLine struct {
	Campaign int    `json:"campaign"` // format version
	Config   Config `json:"config"`
}

// Store is a campaign result store: an in-memory record map mirrored
// to a JSONL journal (unless created in-memory only). Safe for
// concurrent use by the cell worker pool.
type Store struct {
	mu   sync.Mutex
	path string   // "" = in-memory
	f    *os.File // append handle, nil when in-memory
	cfg  Config
	recs map[string]Record
	sync bool  // fsync after every append (see SetSync)
	torn int64 // bytes Open truncated as a torn tail (see TornBytes)
}

// Create makes a fresh store at path (truncating any existing file)
// and writes the meta line for cfg.
func Create(path string, cfg Config) (*Store, error) {
	cfg = cfg.normalized()
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: create store: %w", err)
	}
	s := &Store{path: path, f: f, cfg: cfg, recs: map[string]Record{}}
	if err := s.writeLine(metaLine{Campaign: storeVersion, Config: cfg}); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Open loads an existing store for resumption: the meta line yields
// the campaign config, every cell line a completed record, and the
// file stays open for appending. A torn tail left by a crash
// mid-append is truncated away first, so the next append starts on a
// clean line boundary (the torn cell simply re-runs).
func Open(path string) (*Store, error) {
	cfg, recs, validLen, err := loadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open store: %w", err)
	}
	var torn int64
	if info, err := f.Stat(); err == nil && info.Size() > validLen {
		torn = info.Size() - validLen
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign: truncate torn store tail: %w", err)
		}
	}
	s := &Store{path: path, f: f, cfg: cfg, recs: map[string]Record{}, torn: torn}
	for _, r := range recs {
		s.recs[r.Key()] = r
	}
	return s, nil
}

// NewMemStore is a store with no backing file — the form experiments
// and tests use when persistence is not the point.
func NewMemStore(cfg Config) *Store {
	return &Store{cfg: cfg.normalized(), recs: map[string]Record{}}
}

// Load reads a store file without holding it open: the campaign config
// and the completed records in canonical order. This is the read path
// Compare and the gate use.
func Load(path string) (Config, []Record, error) {
	cfg, recs, _, err := loadFile(path)
	return cfg, recs, err
}

// loadFile parses a store file and additionally reports the byte
// length of its valid prefix. Every newline-terminated line must
// parse — a bad line in the middle is corruption and errors — but a
// final unterminated chunk is tolerated as the torn tail of an append
// that a crash (SIGKILL, OOM, power loss) cut short: it is excluded from
// the records and from the valid length, so Open can truncate it and
// the interrupted cell simply re-runs on resume.
func loadFile(path string) (Config, []Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, nil, 0, fmt.Errorf("campaign: load store: %w", err)
	}

	var meta metaLine
	byKey := map[string]Record{}
	var validLen int64
	rest := data
	lineNo := 0
	for len(rest) > 0 {
		lineNo++
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// Unterminated final chunk: a torn append. The meta line has
			// no completed cells to salvage, so a torn line 1 is still an
			// invalid store.
			if lineNo == 1 {
				return Config{}, nil, 0, fmt.Errorf("campaign: store %s has no valid meta line", path)
			}
			break
		}
		line := rest[:nl]
		rest = rest[nl+1:]
		switch {
		case lineNo == 1:
			if err := json.Unmarshal(line, &meta); err != nil || meta.Campaign == 0 {
				return Config{}, nil, 0, fmt.Errorf("campaign: store %s has no valid meta line", path)
			}
			if meta.Campaign != storeVersion {
				return Config{}, nil, 0, fmt.Errorf("campaign: store %s has format version %d, want %d", path, meta.Campaign, storeVersion)
			}
		case len(line) > 0:
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				return Config{}, nil, 0, fmt.Errorf("campaign: store %s line %d: %w", path, lineNo, err)
			}
			byKey[rec.Key()] = rec
		}
		validLen += int64(nl + 1)
	}
	if lineNo == 0 {
		return Config{}, nil, 0, fmt.Errorf("campaign: store %s is empty (no meta line)", path)
	}

	recs := make([]Record, 0, len(byKey))
	for _, r := range byKey {
		recs = append(recs, r)
	}
	sortRecords(recs)
	return meta.Config.normalized(), recs, validLen, nil
}

// Config returns the campaign config pinned in the store.
func (s *Store) Config() Config { return s.cfg }

// SetSync toggles fsync-on-append: with it on, every journal line is
// forced to stable storage before Append returns. Off by default — a
// local campaign prefers speed and recovers a torn tail on Open by
// re-running one cell — but the distributed coordinator turns it on,
// because its merged store is the single copy of an entire fleet's
// work and "short of losing the store" is the fault model's boundary.
func (s *Store) SetSync(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sync = on
}

// TornBytes reports how many trailing bytes Open discarded as the
// torn tail of a crashed append — 0 for a cleanly closed store. The
// CLI surfaces it as a warning; the truncated cell simply re-runs.
func (s *Store) TornBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.torn
}

// Path returns the backing file path ("" for in-memory stores).
func (s *Store) Path() string { return s.path }

// Has reports whether the cell is already completed.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.recs[key]
	return ok
}

// Len returns the number of completed cells.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Append records a completed cell and streams it to the journal.
func (s *Store) Append(rec Record) error {
	if rec.Bugs == nil {
		rec.Bugs = []string{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs[rec.Key()] = rec
	return s.writeLineLocked(rec)
}

// Records returns the completed cells in canonical order.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]Record, 0, len(s.recs))
	for _, r := range s.recs {
		recs = append(recs, r)
	}
	sortRecords(recs)
	return recs
}

// Compact rewrites the journal in canonical order (meta line, then
// cells sorted by key), atomically via a temp file + rename. After
// compaction two completed runs of the same fixed-seed config are
// byte-identical. No-op for in-memory stores.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}

	tmp := s.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("campaign: compact store: %w", err)
	}
	w := bufio.NewWriter(f)
	write := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		_, err = w.Write(b)
		return err
	}
	err = write(metaLine{Campaign: storeVersion, Config: s.cfg})
	recs := make([]Record, 0, len(s.recs))
	for _, r := range s.recs {
		recs = append(recs, r)
	}
	sortRecords(recs)
	for _, r := range recs {
		if err != nil {
			break
		}
		err = write(r)
	}
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: compact store: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: compact store: %w", err)
	}

	// Reopen the append handle on the compacted file.
	s.f.Close()
	f, err = os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: compact store: %w", err)
	}
	s.f = f
	return nil
}

// Close releases the journal handle (in-memory stores: no-op).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

func (s *Store) writeLine(v any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeLineLocked(v)
}

func (s *Store) writeLineLocked(v any) error {
	if s.f == nil {
		return nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("campaign: encode store line: %w", err)
	}
	b = append(b, '\n')
	if _, err := s.f.Write(b); err != nil {
		return fmt.Errorf("campaign: write store line: %w", err)
	}
	if s.sync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("campaign: sync store: %w", err)
		}
	}
	return nil
}
