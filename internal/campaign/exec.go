// Single-cell execution with guard rails: the one code path every
// cell goes through, whether the pool lives in this process
// (campaign.Run) or on a fleet (internal/campsvc workers). The guard
// rails are what make a campaign robust to its own finders — a finder
// that panics becomes a "panic:" record instead of a dead pool, and a
// finder that hangs becomes a "timeout:" record instead of a wedged
// worker (Config.CellTimeout).
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"mtbench/internal/repository"
)

// boundCell is a matrix cell resolved against the repository and the
// finder registry, ready to execute.
type boundCell struct {
	cell   Cell
	finder *Finder
	spec   cellSpec
}

// bindCell resolves a cell's program, finder and parameter overrides,
// so unknown names fail before any budget burns.
func bindCell(cfg Config, cell Cell) (boundCell, error) {
	prog, err := repository.Get(cell.Program)
	if err != nil {
		return boundCell{}, err
	}
	finder, err := getFinder(cell.Finder)
	if err != nil {
		return boundCell{}, err
	}
	var params repository.Params
	if over, ok := cfg.Params[cell.Program]; ok {
		params = repository.Params(over)
	}
	return boundCell{
		cell:   cell,
		finder: finder,
		spec: cellSpec{
			prog:        prog,
			body:        prog.BodyWith(params),
			seed:        cell.Seed,
			budget:      cell.Budget,
			maxSteps:    cfg.MaxSteps,
			checkpoints: cfg.Checkpoints,
			vbound:      cfg.VariableBound,
			tbound:      cfg.ThreadBound,
			pctDepth:    cfg.PCTDepth,
		},
	}, nil
}

// ExecCell executes one matrix cell of cfg and returns its Record —
// the exact code path campaign.Run drives, exported so distributed
// workers (internal/campsvc) run cells through the same finders with
// the same guard rails, which is what makes a distributed store
// byte-identical to an in-process run.
//
// Context semantics: cancelling ctx kills the cell — ExecCell returns
// the cancellation cause and NO record, so a killed worker leaves
// nothing half-done (the distributed lease simply re-runs the cell
// elsewhere). A cfg.CellTimeout deadline, by contrast, settles the
// cell with a "timeout:" Outcome record. A panicking finder settles
// it with a "panic:" record carrying the stack.
func ExecCell(ctx context.Context, cfg Config, cell Cell) (Record, error) {
	cfg = cfg.normalized()
	bc, err := bindCell(cfg, cell)
	if err != nil {
		return Record{}, err
	}
	return bc.exec(ctx, cfg)
}

// finderReturn is what the sandboxed finder goroutine reports back.
type finderReturn struct {
	out      cellOutcome
	err      error
	panicked string // non-empty: the recovered panic value + stack
}

// exec runs the bound cell inside the guard rails. The finder runs on
// its own goroutine so a panic is recoverable and a hang abandonable;
// the channel is buffered so an abandoned finder's send never blocks.
func (bc boundCell) exec(ctx context.Context, cfg Config) (Record, error) {
	rec := Record{
		Program:  bc.cell.Program,
		Finder:   bc.cell.Finder,
		Seed:     bc.cell.Seed,
		Budget:   bc.cell.Budget,
		Bugs:     []string{},
		FirstBug: -1,
	}
	cellCtx := ctx
	if cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		cellCtx, cancel = context.WithTimeout(ctx, cfg.CellTimeout)
		defer cancel()
	}

	ch := make(chan finderReturn, 1)
	start := time.Now()
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- finderReturn{panicked: fmt.Sprintf("%v\n%s", r, debug.Stack())}
			}
		}()
		out, err := bc.finder.run(cellCtx, bc.spec)
		ch <- finderReturn{out: out, err: err}
	}()

	select {
	case fr := <-ch:
		switch {
		case fr.panicked != "":
			rec.Outcome = "panic: " + fr.panicked
		case fr.err != nil:
			if ctx.Err() != nil {
				// Killed from above; the finder noticed the context.
				return Record{}, context.Cause(ctx)
			}
			if errors.Is(fr.err, context.DeadlineExceeded) {
				rec.Outcome = timeoutOutcome(cfg.CellTimeout)
			} else {
				return Record{}, fr.err
			}
		default:
			rec.Runs = fr.out.runs
			if bugs := sortedUnique(fr.out.bugs); len(bugs) > 0 {
				rec.Bugs = bugs
			}
			rec.FirstBug = fr.out.firstBug
		}
	case <-cellCtx.Done():
		// The finder did not notice its context in time (the engine
		// finders — explore, fuzz, pct — are uninterruptible library
		// calls). A parent cancellation is a kill: no record. A
		// deadline is the cell timeout: the finder goroutine is
		// abandoned (MaxSteps bounds how long it can linger; the
		// buffered channel lets its eventual return vanish) and a
		// timeout record takes the cell's place.
		if ctx.Err() != nil {
			return Record{}, context.Cause(ctx)
		}
		rec.Outcome = timeoutOutcome(cfg.CellTimeout)
	}
	if cfg.Timing {
		rec.WallMS = int64(time.Since(start) / time.Millisecond)
	}
	return rec, nil
}

func timeoutOutcome(d time.Duration) string {
	return fmt.Sprintf("timeout: cell exceeded %s wall clock", d)
}
