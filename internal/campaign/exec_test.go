// Guard-rail tests for single-cell execution: the panic sandbox, the
// cell wall-clock timeout, and the kill-vs-timeout context split that
// the distributed workers (internal/campsvc) rely on.
package campaign

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// registerTestFinder installs a finder for one test and removes it on
// cleanup — testConfig() uses "all registered finders", so leaked test
// finders would change every other test's matrix.
func registerTestFinder(t *testing.T, name string, fn func(ctx context.Context, in CellInput) (CellResult, error)) {
	t.Helper()
	if err := RegisterFinder(name, "test finder", fn); err != nil {
		t.Fatalf("RegisterFinder(%q): %v", name, err)
	}
	t.Cleanup(func() { delete(finderTable, name) })
}

func testCell(finder string) Cell {
	return Cell{Program: "lockedcounter", Finder: finder, Seed: 0, Budget: 10}
}

func TestExecCellPanicRecovered(t *testing.T) {
	registerTestFinder(t, "test-panic", func(ctx context.Context, in CellInput) (CellResult, error) {
		panic("finder exploded")
	})
	cfg := Config{Finders: []string{"test-panic"}, Programs: []string{"lockedcounter"}, Budget: 10}

	rec, err := ExecCell(context.Background(), cfg, testCell("test-panic"))
	if err != nil {
		t.Fatalf("ExecCell: %v", err)
	}
	if !rec.Failed() || !strings.HasPrefix(rec.Outcome, "panic: ") {
		t.Fatalf("outcome = %q, want panic classification", rec.Outcome)
	}
	if !strings.Contains(rec.Outcome, "finder exploded") {
		t.Errorf("outcome lost the panic value: %q", rec.Outcome)
	}
	if !strings.Contains(rec.Outcome, "goroutine") {
		t.Errorf("outcome carries no stack: %.80q", rec.Outcome)
	}
	if rec.Runs != 0 || rec.FirstBug != -1 || len(rec.Bugs) != 0 {
		t.Errorf("panic record carries finder results: %+v", rec)
	}
}

func TestExecCellTimeout(t *testing.T) {
	registerTestFinder(t, "test-hang", func(ctx context.Context, in CellInput) (CellResult, error) {
		<-ctx.Done() // honour the deadline like a well-behaved finder
		return CellResult{}, ctx.Err()
	})
	cfg := Config{
		Finders:     []string{"test-hang"},
		Programs:    []string{"lockedcounter"},
		Budget:      10,
		CellTimeout: 20 * time.Millisecond,
	}

	rec, err := ExecCell(context.Background(), cfg, testCell("test-hang"))
	if err != nil {
		t.Fatalf("ExecCell: %v", err)
	}
	if !strings.HasPrefix(rec.Outcome, "timeout: ") {
		t.Fatalf("outcome = %q, want timeout classification", rec.Outcome)
	}
	if rec.Runs != 0 || rec.FirstBug != -1 {
		t.Errorf("timeout record carries finder results: %+v", rec)
	}
}

func TestExecCellTimeoutUncooperativeFinder(t *testing.T) {
	// An engine-style finder that never looks at its context: the
	// executor must abandon it and still settle the cell.
	release := make(chan struct{})
	registerTestFinder(t, "test-deaf", func(ctx context.Context, in CellInput) (CellResult, error) {
		<-release
		return CellResult{FirstBug: -1}, nil
	})
	t.Cleanup(func() { close(release) })
	cfg := Config{
		Finders:     []string{"test-deaf"},
		Programs:    []string{"lockedcounter"},
		Budget:      10,
		CellTimeout: 20 * time.Millisecond,
	}

	rec, err := ExecCell(context.Background(), cfg, testCell("test-deaf"))
	if err != nil {
		t.Fatalf("ExecCell: %v", err)
	}
	if !strings.HasPrefix(rec.Outcome, "timeout: ") {
		t.Fatalf("outcome = %q, want timeout classification", rec.Outcome)
	}
}

func TestExecCellKilled(t *testing.T) {
	registerTestFinder(t, "test-killable", func(ctx context.Context, in CellInput) (CellResult, error) {
		<-ctx.Done()
		return CellResult{}, ctx.Err()
	})
	cfg := Config{Finders: []string{"test-killable"}, Programs: []string{"lockedcounter"}, Budget: 10}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	rec, err := ExecCell(ctx, cfg, testCell("test-killable"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecCell err = %v, want context.Canceled", err)
	}
	if rec.Program != "" || rec.Outcome != "" {
		t.Errorf("killed cell produced a record: %+v", rec)
	}
}

func TestCampaignRunRecoversPanic(t *testing.T) {
	// A panicking finder costs one "panic:" record, not the pool: the
	// other finder's cells all complete normally.
	registerTestFinder(t, "test-panic-pool", func(ctx context.Context, in CellInput) (CellResult, error) {
		panic("poison")
	})
	cfg := Config{
		Finders:  []string{"noise", "test-panic-pool"},
		Programs: []string{"lockedcounter", "semleak"},
		Budget:   30,
		Workers:  2,
	}

	sum, err := Run(context.Background(), cfg, nil, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.Executed != 4 {
		t.Fatalf("executed %d cells, want 4", sum.Executed)
	}
	var panicked, normal int
	for _, rec := range sum.Records {
		switch {
		case strings.HasPrefix(rec.Outcome, "panic: "):
			panicked++
			if rec.Finder != "test-panic-pool" {
				t.Errorf("panic record from wrong finder: %+v", rec)
			}
		case rec.Failed():
			t.Errorf("unexpected abnormal record: %+v", rec)
		default:
			normal++
			if rec.Runs == 0 {
				t.Errorf("normal record with zero runs: %+v", rec)
			}
		}
	}
	if panicked != 2 || normal != 2 {
		t.Fatalf("got %d panic / %d normal records, want 2 / 2", panicked, normal)
	}
}

func TestRegisterFinderValidation(t *testing.T) {
	ok := func(ctx context.Context, in CellInput) (CellResult, error) { return CellResult{FirstBug: -1}, nil }
	for _, name := range []string{"", "has space", "has|pipe", "has\nnewline"} {
		if err := RegisterFinder(name, "doc", ok); err == nil {
			delete(finderTable, name)
			t.Errorf("RegisterFinder(%q) accepted an invalid name", name)
		}
	}
	if err := RegisterFinder("test-valid", "doc", nil); err == nil {
		delete(finderTable, "test-valid")
		t.Error("RegisterFinder accepted a nil function")
	}
	registerTestFinder(t, "test-dup", ok)
	if err := RegisterFinder("test-dup", "doc", ok); err == nil {
		t.Error("RegisterFinder accepted a duplicate name")
	}
}
