package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStoreAppendLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	cfg := testConfig()
	store, err := Create(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Append out of canonical order; bugs nil normalizes to [].
	r2 := rec("zzz", "noise", 0, 60, nil, -1)
	r1 := rec("account", "fuzz", 0, 60, []string{"fail:x"}, 3)
	if err := store.Append(r2); err != nil {
		t.Fatal(err)
	}
	if err := store.Append(r1); err != nil {
		t.Fatal(err)
	}
	if !store.Has(r1.Key()) || store.Len() != 2 {
		t.Fatalf("store state wrong: len=%d", store.Len())
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	gotCfg, recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotCfg.Fingerprint() != cfg.Fingerprint() {
		t.Fatal("loaded config does not match the created one")
	}
	if len(recs) != 2 || recs[0].Program != "account" || recs[1].Program != "zzz" {
		t.Fatalf("loaded records not in canonical order: %v", recs)
	}
	if recs[1].Bugs == nil || len(recs[1].Bugs) != 0 {
		t.Fatalf("empty bug set did not round-trip as []: %#v", recs[1].Bugs)
	}
}

func TestStoreCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	store, err := Create(path, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	store.Append(rec("zzz", "noise", 0, 60, nil, -1))
	store.Append(rec("account", "fuzz", 0, 60, []string{"fail:x"}, 3))
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 {
		t.Fatalf("compacted store has %d lines, want meta + 2 cells", len(lines))
	}
	if !strings.Contains(lines[1], `"program":"account"`) || !strings.Contains(lines[2], `"program":"zzz"`) {
		t.Fatalf("compacted store not in canonical order:\n%s", raw)
	}

	// The append handle survives compaction.
	if err := store.Append(rec("mmm", "race", 0, 60, nil, -1)); err != nil {
		t.Fatal(err)
	}
	store.Close()
	_, recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("post-compact append lost: %d records", len(recs))
	}
}

func TestLoadRejectsBadStores(t *testing.T) {
	dir := t.TempDir()

	empty := filepath.Join(dir, "empty.jsonl")
	os.WriteFile(empty, nil, 0o644)
	if _, _, err := Load(empty); err == nil {
		t.Fatal("empty store accepted")
	}

	noMeta := filepath.Join(dir, "nometa.jsonl")
	os.WriteFile(noMeta, []byte(`{"program":"account","finder":"fuzz"}`+"\n"), 0o644)
	if _, _, err := Load(noMeta); err == nil {
		t.Fatal("store without meta line accepted")
	}

	badVersion := filepath.Join(dir, "badver.jsonl")
	os.WriteFile(badVersion, []byte(`{"campaign":99,"config":{}}`+"\n"), 0o644)
	if _, _, err := Load(badVersion); err == nil {
		t.Fatal("future store version accepted")
	}

	garbage := filepath.Join(dir, "garbage.jsonl")
	os.WriteFile(garbage, []byte(`{"campaign":1,"config":{}}`+"\nnot json\n"), 0o644)
	if _, _, err := Load(garbage); err == nil {
		t.Fatal("corrupt cell line accepted")
	}

	if _, _, err := Load(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestStoreTornTail pins crash safety beyond graceful SIGINT: a final
// line cut short mid-append (SIGKILL, OOM, power loss) is tolerated
// by Load and truncated by Open, so the store resumes instead of
// stranding its completed cells. A bad line in the middle is still
// corruption.
func TestStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	store, err := Create(path, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	store.Append(rec("account", "fuzz", 0, 60, []string{"fail:x"}, 3))
	store.Close()

	// Simulate a torn append: a partial JSON object with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"program":"semleak","finder":"noi`)
	f.Close()

	_, recs, err := Load(path)
	if err != nil {
		t.Fatalf("torn tail rejected by Load: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("torn store has %d records, want the 1 completed cell", len(recs))
	}

	// Open truncates the tail so the next append lands on a clean line.
	store, err = Open(path)
	if err != nil {
		t.Fatalf("torn tail rejected by Open: %v", err)
	}
	if err := store.Append(rec("semleak", "noise", 0, 60, nil, -1)); err != nil {
		t.Fatal(err)
	}
	store.Close()
	_, recs, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("post-truncate append gave %d records, want 2", len(recs))
	}

	// A torn line in the MIDDLE is corruption, not a tail.
	raw, _ := os.ReadFile(path)
	corrupt := filepath.Join(t.TempDir(), "corrupt.jsonl")
	os.WriteFile(corrupt, append([]byte(`{"campaign":1,"config":{}}`+"\n"+`{"program":"acc`+"\n"), raw...), 0o644)
	if _, _, err := Load(corrupt); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// TestEmptyParamsRoundTrip pins that an explicitly-empty Params map
// (no overrides: full-size programs) survives the store meta line
// instead of collapsing to nil and silently re-normalizing to
// DefaultParams on resume.
func TestEmptyParamsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	cfg := testConfig()
	cfg.Params = map[string]map[string]int{}
	store, err := Create(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	store.Close()
	loaded, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Params) != 0 || loaded.Params == nil {
		t.Fatalf("empty Params became %v after the store round trip", loaded.Params)
	}
	if loaded.Fingerprint() != cfg.Fingerprint() {
		t.Fatal("empty-Params config changed fingerprint across the store round trip")
	}
}

// TestMemStore pins that in-memory stores behave like file stores
// minus persistence (the E12 path).
func TestMemStore(t *testing.T) {
	store := NewMemStore(testConfig())
	store.Append(rec("account", "fuzz", 0, 60, []string{"fail:x"}, 3))
	if err := store.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if got := store.Records(); len(got) != 1 {
		t.Fatalf("mem store lost records: %v", got)
	}
	if store.Path() != "" {
		t.Fatal("mem store has a path")
	}
}

// TestStoreTornBytes pins that Open reports how much torn tail it
// discarded (0 for clean stores) — the CLI's warn-and-continue signal.
func TestStoreTornBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	store, err := Create(path, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	store.Append(rec("account", "fuzz", 0, 60, nil, -1))
	store.Close()

	store, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := store.TornBytes(); n != 0 {
		t.Fatalf("clean store reports %d torn bytes", n)
	}
	store.Close()

	torn := []byte(`{"program":"semleak","finder":"noi`)
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write(torn)
	f.Close()

	store, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if n := store.TornBytes(); n != int64(len(torn)) {
		t.Fatalf("TornBytes = %d, want %d", n, len(torn))
	}
}

// TestStoreSync pins that fsync-on-append keeps working appends (the
// coordinator's crash-safety mode; correctness of the data path, the
// durability side being the kernel's job).
func TestStoreSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	store, err := Create(path, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	store.SetSync(true)
	if err := store.Append(rec("account", "fuzz", 0, 60, []string{"fail:x"}, 3)); err != nil {
		t.Fatalf("synced append: %v", err)
	}
	if err := store.Append(rec("semleak", "noise", 0, 60, nil, -1)); err != nil {
		t.Fatalf("synced append: %v", err)
	}
	store.Close()

	_, recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("synced store has %d records, want 2", len(recs))
	}

	// In-memory stores tolerate the toggle (no file to sync).
	mem := NewMemStore(testConfig())
	mem.SetSync(true)
	if err := mem.Append(rec("account", "fuzz", 0, 60, nil, -1)); err != nil {
		t.Fatalf("mem synced append: %v", err)
	}
}
