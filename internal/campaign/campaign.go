// Package campaign turns the repository's ad-hoc experiments into the
// paper's actual deliverable: a benchmark others can run, extend and
// regress against. A campaign is a declarative matrix of finders
// (noise / explore and its bounded or reduced variants / fuzz / pct /
// race) × repository programs × seeds × budgets. A parallel worker pool executes the matrix cell by cell
// (each cell runs its finder serially, so a fixed-seed campaign is
// fully deterministic) and streams every completed cell as a JSONL
// record into a persistent Store.
//
// The store is the campaign's first-class bookkeeping, after the
// CK-framework lesson that large experimental comparisons need stored
// per-cell results, reproducible configs and incremental re-runs:
//
//   - resumable: re-invoking Run over an existing store skips
//     completed cells and executes only the remainder, so an
//     interrupted campaign finishes instead of restarting;
//   - reproducible: the store's first line pins the campaign config,
//     and a completed store is compacted to canonical order, so two
//     runs of the same fixed-seed config produce byte-identical files;
//   - diffable: Compare classifies per-cell deltas between two stores
//     (bug lost / bug gained / budget regression / cell missing) and
//     renders them through the shared report tables, and Diff.Gate
//     turns effectiveness regressions into a non-zero exit for CI.
//
// Effectiveness comparisons only mean something under explicit shared
// budgets (Bindal, Bansal and Lal), so the budget is part of every
// cell's identity: a cell is (program, finder, seed, budget), and every
// finder spends at most Budget runs/schedules.
package campaign

import (
	"encoding/json"
	"fmt"
	"slices"
	"strconv"
	"strings"
	"time"
)

// Config declares a campaign matrix. The identity fields (everything
// serialized to JSON) are pinned into the store's meta line; Workers
// and Timing are execution details that change neither the matrix nor
// its results.
type Config struct {
	// Finders names the tools to compare (see Finders for the
	// registry). Empty = all registered finders.
	Finders []string `json:"finders"`
	// Programs names the repository programs. Empty = DefaultPrograms.
	Programs []string `json:"programs"`
	// Seeds are the master seeds; every (program, finder) pair runs
	// once per seed. Empty = {0}.
	Seeds []int64 `json:"seeds"`
	// Budget is the shared per-cell effort: the maximum number of
	// runs (noise, fuzz, race) or schedules (explore) a finder may
	// spend. 0 = DefaultBudget.
	Budget int `json:"budget"`
	// MaxSteps bounds each individual run (0 = DefaultMaxSteps).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Checkpoints is the parked-runner checkpoint budget per explore
	// worker (see explore.Options.Checkpoints); only the explore-por
	// finder consumes it. 0 = off, which keeps fixed-seed stores
	// byte-identical with pre-checkpoint campaigns — checkpointing
	// changes how the reduced DFS revisits branch points, never which
	// schedules, bugs, or first-bug indices a cell reports.
	Checkpoints int `json:"checkpoints,omitempty"`
	// VariableBound and ThreadBound override the bounds the explore-vb
	// and explore-tb finders search under (0 = the finder defaults,
	// DefaultVariableBound / DefaultThreadBound). Zero values are
	// omitted from the fingerprint, so pre-bounding stores resume
	// unchanged.
	VariableBound int `json:"variable_bound,omitempty"`
	ThreadBound   int `json:"thread_bound,omitempty"`
	// PCTDepth overrides the pct finder's targeted bug depth d
	// (0 = pct.DefaultDepth); zero is likewise fingerprint-invisible.
	PCTDepth int `json:"pct_depth,omitempty"`
	// CellTimeout bounds one cell's wall-clock execution (0 = none).
	// A cell that exceeds it is recorded with a "timeout:" Outcome
	// instead of blocking its pool worker forever, so a hung finder
	// costs one record, not the campaign. It is an identity field (a
	// timed-out cell reports different results than an unbounded one)
	// but zero is omitted, so pre-timeout stores resume unchanged.
	// Wall-clock bounds are inherently nondeterministic: fixed-seed
	// byte-identity only holds for campaigns no cell of which times
	// out.
	CellTimeout time.Duration `json:"cell_timeout_ns,omitempty"`
	// Params overrides program parameters by program name, so large
	// programs face the same shrunk instances for every finder.
	// nil = DefaultParams; an explicitly empty map means "no
	// overrides, full-size programs" and round-trips through the
	// store's meta line as {} (hence no omitempty: collapsing it to
	// nil on reload would silently resume with DefaultParams).
	Params map[string]map[string]int `json:"params"`

	// Workers sizes the cell worker pool (0 = 1). Cells are
	// independent, so campaign-level parallelism never changes any
	// cell's result, only wall time.
	Workers int `json:"-"`
	// Timing records real wall time per cell. It is off by default
	// because wall time is the one nondeterministic field: fixed-seed
	// stores are byte-identical only with Timing off (wall_ms = 0).
	Timing bool `json:"-"`
}

// Campaign-wide defaults.
const (
	DefaultBudget   = 400
	DefaultMaxSteps = 200_000
)

// DefaultPrograms is the gate matrix: the exploration classics (shrunk
// exactly like E5/E11 so every finder faces identical instances), the
// scenario-diversity programs the stock tools were not tuned on, and a
// correct program as false-alarm bait for the race finder.
var DefaultPrograms = []string{
	"abastack", "account", "bankwithdraw", "lockedcounter",
	"philosophers", "semleak", "statmax",
}

// DefaultParams shrinks the larger default programs the same way E5
// and E11 do.
var DefaultParams = map[string]map[string]int{
	"account":      {"depositors": 2, "deposits": 1},
	"philosophers": {"philosophers": 2, "rounds": 1},
	"statmax":      {"reporters": 2},
}

// Default returns the standard fixed-seed gate campaign — the config
// campaign/baseline.jsonl is generated from.
func Default() Config {
	return Config{}.normalized()
}

// normalized fills defaults and canonicalizes order, so configs that
// declare the same matrix have the same fingerprint.
func (c Config) normalized() Config {
	if len(c.Finders) == 0 {
		c.Finders = Finders()
	}
	if len(c.Programs) == 0 {
		c.Programs = slices.Clone(DefaultPrograms)
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{0}
	}
	if c.Budget <= 0 {
		c.Budget = DefaultBudget
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = DefaultMaxSteps
	}
	if c.Params == nil {
		c.Params = DefaultParams
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	c.Finders = sortedUnique(c.Finders)
	c.Programs = sortedUnique(c.Programs)
	seeds := slices.Clone(c.Seeds)
	slices.Sort(seeds)
	c.Seeds = slices.Compact(seeds)
	return c
}

func sortedUnique(in []string) []string {
	out := slices.Clone(in)
	slices.Sort(out)
	return slices.Compact(out)
}

// Fingerprint is the canonical serialization of the config's identity
// fields (encoding/json sorts map keys, so it is deterministic). A
// store refuses to resume under a config whose fingerprint differs
// from its meta line.
func (c Config) Fingerprint() string {
	b, err := json.Marshal(c.normalized())
	if err != nil {
		panic(fmt.Sprintf("campaign: config not serializable: %v", err))
	}
	return string(b)
}

// Cell identifies one matrix entry. The JSON tags are the campaign
// service's wire form (internal/campsvc leases serialize cells).
type Cell struct {
	Program string `json:"program"`
	Finder  string `json:"finder"`
	Seed    int64  `json:"seed"`
	Budget  int    `json:"budget"`
}

// Key is the cell's unique identity within a store.
func (c Cell) Key() string {
	return c.Program + "|" + c.Finder + "|" + strconv.FormatInt(c.Seed, 10) + "|" + strconv.Itoa(c.Budget)
}

// Cells expands the config into its matrix in canonical order
// (program, then finder, then seed) — the order records are stored in
// after compaction.
func Cells(cfg Config) []Cell {
	cfg = cfg.normalized()
	var out []Cell
	for _, prog := range cfg.Programs {
		for _, finder := range cfg.Finders {
			for _, seed := range cfg.Seeds {
				out = append(out, Cell{Program: prog, Finder: finder, Seed: seed, Budget: cfg.Budget})
			}
		}
	}
	return out
}

// Record is one completed cell, the unit the store persists. Field
// order is fixed by this struct, so serialization is deterministic.
type Record struct {
	Program string `json:"program"`
	Finder  string `json:"finder"`
	Seed    int64  `json:"seed"`
	Budget  int    `json:"budget"`
	// Runs is the number of executions the finder actually spent
	// (≤ Budget; explore stops early when the tree is exhausted).
	Runs int `json:"runs"`
	// Bugs are the distinct bugs found, as sorted core.BugSignature
	// strings (plus "race:<var>" warning signatures for the race
	// finder). Never nil, so empty cells serialize as [].
	Bugs []string `json:"bugs"`
	// FirstBug is the 1-based index of the first bug-exposing run, or
	// -1 when the cell found nothing — the per-cell budget envelope
	// the gate checks regressions against.
	FirstBug int `json:"first_bug"`
	// WallMS is the cell's wall time in milliseconds; 0 unless the
	// campaign ran with Config.Timing (see there for why).
	WallMS int64 `json:"wall_ms"`
	// Outcome classifies abnormal cell completions; empty for a
	// normally-executed cell, and omitted from the serialized record,
	// so pre-existing stores and fixed-seed byte-identity are
	// untouched. The classified forms:
	//
	//   "timeout: ..."     the cell exceeded Config.CellTimeout;
	//   "panic: ..."       the finder panicked mid-cell (the message
	//                      carries the recovered value and stack);
	//   "quarantined: ..." the distributed coordinator (internal/
	//                      campsvc) gave up on a poison cell after
	//                      MaxAttempts failed leases.
	//
	// Abnormal records carry Runs 0 (timeout/quarantine) and FirstBug
	// -1; Compare classifies an Outcome change as cell-failed /
	// cell-recovered.
	Outcome string `json:"outcome,omitempty"`
}

// Failed reports whether the record carries an abnormal outcome
// (timeout, panic or quarantine) instead of real finder results.
func (r Record) Failed() bool { return r.Outcome != "" }

// Cell returns the record's matrix identity.
func (r Record) Cell() Cell {
	return Cell{Program: r.Program, Finder: r.Finder, Seed: r.Seed, Budget: r.Budget}
}

// Key is the record's cell key.
func (r Record) Key() string { return r.Cell().Key() }

// String summarizes the record in one line.
func (r Record) String() string {
	return fmt.Sprintf("%s/%s seed=%d budget=%d runs=%d bugs=%d first=%d",
		r.Program, r.Finder, r.Seed, r.Budget, r.Runs, len(r.Bugs), r.FirstBug)
}

// sortRecords orders records canonically (program, finder, seed,
// budget), matching Cells order.
func sortRecords(recs []Record) {
	slices.SortFunc(recs, func(a, b Record) int {
		if c := strings.Compare(a.Program, b.Program); c != 0 {
			return c
		}
		if c := strings.Compare(a.Finder, b.Finder); c != 0 {
			return c
		}
		if a.Seed != b.Seed {
			if a.Seed < b.Seed {
				return -1
			}
			return 1
		}
		return a.Budget - b.Budget
	})
}
