// The finder registry: every tool the campaign matrix compares,
// wrapped behind one per-cell interface. A finder spends at most the
// cell's budget, deduplicates what it finds by core.BugSignature, and
// must be a pure function of (program, params, seed, budget, max
// steps) — campaign determinism rests on every finder being serially
// deterministic inside its cell, with parallelism living one level up
// in the cell pool.
package campaign

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"mtbench/internal/core"
	"mtbench/internal/explore"
	"mtbench/internal/fuzz"
	"mtbench/internal/noise"
	"mtbench/internal/pct"
	"mtbench/internal/race"
	"mtbench/internal/repository"
	"mtbench/internal/sched"
)

// Finder is one registered tool.
type Finder struct {
	// Name is the matrix key ("noise", "explore", "fuzz", "race").
	Name string
	// Doc is the one-line description the CLI lists.
	Doc string
	// run executes one cell. The context carries the cell's wall-clock
	// deadline (Config.CellTimeout) and kill signal: per-run loop
	// finders check it between runs and return ctx.Err() early; the
	// engine finders (explore, fuzz, pct) run uninterruptible library
	// calls and rely on the exec watchdog to abandon them.
	run func(ctx context.Context, spec cellSpec) (cellOutcome, error)
}

// cellSpec is everything a finder needs to execute one cell.
type cellSpec struct {
	prog        *repository.Program
	body        func(core.T)
	seed        int64
	budget      int
	maxSteps    int64
	checkpoints int
	vbound      int
	tbound      int
	pctDepth    int
}

// cellOutcome is a finder's raw per-cell result before it becomes a
// Record.
type cellOutcome struct {
	runs     int
	bugs     []string // deduplicated signatures, sorted before storing
	firstBug int      // 1-based run index, -1 = none
}

// finderTable is the registry, keyed by name.
var finderTable = map[string]*Finder{
	"noise": {
		Name: "noise",
		Doc:  "yield-noise over random dispatch, one fresh derived seed per run",
		run:  runNoiseFinder,
	},
	"explore": {
		Name: "explore",
		Doc:  "systematic serial DFS over schedules (seed-invariant)",
		run:  runExploreFinder,
	},
	"explore-por": {
		Name: "explore-por",
		Doc:  "reduced serial DFS: dynamic partial-order reduction + state caching (seed-invariant)",
		run:  runExplorePORFinder,
	},
	"explore-vb": {
		Name: "explore-vb",
		Doc:  "variable-bounded serial DFS: context switches limited to few distinct shared objects (seed-invariant)",
		run:  runExploreVBFinder,
	},
	"explore-tb": {
		Name: "explore-tb",
		Doc:  "thread-bounded serial DFS: preemptions limited to few distinct threads (seed-invariant)",
		run:  runExploreTBFinder,
	},
	"pct": {
		Name: "pct",
		Doc:  "probabilistic concurrency testing: random priorities + d-1 change points per run (internal/pct)",
		run:  runPCTFinder,
	},
	"fuzz": {
		Name: "fuzz",
		Doc:  "coverage-guided schedule fuzzing (internal/fuzz, one worker)",
		run:  runFuzzFinder,
	},
	"race": {
		Name: "race",
		Doc:  "hybrid race detector over round-robin and random schedules; warnings count as race:<var> bugs",
		run:  runRaceFinder,
	},
}

// Finders returns the registered finder names, sorted.
func Finders() []string {
	out := make([]string, 0, len(finderTable))
	for name := range finderTable {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FinderDoc returns a finder's one-line description.
func FinderDoc(name string) string {
	if f, ok := finderTable[name]; ok {
		return f.Doc
	}
	return ""
}

func getFinder(name string) (*Finder, error) {
	f, ok := finderTable[name]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown finder %q (have %v)", name, Finders())
	}
	return f, nil
}

// CellInput is what an externally registered finder receives for one
// cell: the resolved program, its parameter-applied body, and the
// cell's identity and budgets.
type CellInput struct {
	Program  *repository.Program
	Body     func(core.T)
	Seed     int64
	Budget   int
	MaxSteps int64
}

// CellResult is an externally registered finder's raw per-cell result.
type CellResult struct {
	// Runs is the number of executions actually spent (≤ Budget).
	Runs int
	// Bugs are distinct bug signatures; they are deduplicated and
	// sorted before storing.
	Bugs []string
	// FirstBug is the 1-based index of the first bug-exposing run, or
	// -1 when the cell found nothing.
	FirstBug int
}

// RegisterFinder adds a finder to the campaign registry under name —
// the campaign mirror of repository.Register, so external tools (and
// the fault-injection test suites) extend the matrix without editing
// this package. Register at init time, before any campaign resolves
// its matrix; the registry is not synchronized.
//
// The function must be a pure function of its inputs for fixed-seed
// campaigns to stay reproducible, and should honour ctx between runs:
// cancellation means the cell is being killed (return ctx.Err(), the
// partial result is discarded), a deadline means Config.CellTimeout
// fired. Panics need no handling — the executor recovers them into
// "panic:" records (in-process) or fail reports (distributed).
func RegisterFinder(name, doc string, fn func(ctx context.Context, in CellInput) (CellResult, error)) error {
	if name == "" || strings.ContainsAny(name, "|\n ") {
		return fmt.Errorf("campaign: invalid finder name %q", name)
	}
	if fn == nil {
		return fmt.Errorf("campaign: finder %q registered with nil function", name)
	}
	if _, dup := finderTable[name]; dup {
		return fmt.Errorf("campaign: finder %q already registered", name)
	}
	finderTable[name] = &Finder{
		Name: name,
		Doc:  doc,
		run: func(ctx context.Context, spec cellSpec) (cellOutcome, error) {
			res, err := fn(ctx, CellInput{
				Program:  spec.prog,
				Body:     spec.body,
				Seed:     spec.seed,
				Budget:   spec.budget,
				MaxSteps: spec.maxSteps,
			})
			if err != nil {
				return cellOutcome{}, err
			}
			return cellOutcome{runs: res.Runs, bugs: res.Bugs, firstBug: res.FirstBug}, nil
		},
	}
	return nil
}

// mix derives a per-run seed from the cell seed and a run index via
// the shared core.MixSeed derivation (the same one the fuzzer uses),
// so the runs of one cell are decorrelated but reproducible.
func mix(seed, stream int64) int64 { return core.MixSeed(seed, stream) }

// bugSet accumulates deduplicated signatures in first-seen order.
type bugSet struct {
	seen map[string]bool
	sigs []string
}

func (b *bugSet) add(sig string) {
	if b.seen == nil {
		b.seen = map[string]bool{}
	}
	if !b.seen[sig] {
		b.seen[sig] = true
		b.sigs = append(b.sigs, sig)
	}
}

// runNoiseFinder is the ConTest-style baseline: every budget unit is
// one fresh-seeded noise run (Bernoulli yield noise over random
// dispatch, the E11 configuration) through one pooled runner.
func runNoiseFinder(ctx context.Context, spec cellSpec) (cellOutcome, error) {
	runner := sched.NewRunner()
	defer runner.Close()
	var bugs bugSet
	first := -1
	for i := 0; i < spec.budget; i++ {
		if err := ctx.Err(); err != nil {
			return cellOutcome{}, err
		}
		runSeed := mix(spec.seed, int64(i))
		st := noise.NewStrategy(nil, noise.NewBernoulli(0.4, noise.KindYield), runSeed)
		res := runner.Run(sched.Config{
			Strategy: st,
			Seed:     runSeed,
			Name:     spec.prog.Name,
			MaxSteps: spec.maxSteps,
			Plan:     spec.prog.Plan,
		}, spec.body)
		if res.Verdict.Bug() {
			bugs.add(core.BugSignature(res))
			if first < 0 {
				first = i + 1
			}
		}
	}
	return cellOutcome{runs: spec.budget, bugs: bugs.sigs, firstBug: first}, nil
}

// runExploreFinder is the systematic extreme: a serial DFS under the
// cell's schedule budget. The DFS is deterministic and ignores the
// seed; seeds still enumerate cells so the matrix stays rectangular,
// and multi-seed configs simply pin that exploration reproduces.
func runExploreFinder(ctx context.Context, spec cellSpec) (cellOutcome, error) {
	er := explore.Explore(explore.Options{
		MaxSchedules: spec.budget,
		MaxSteps:     spec.maxSteps,
		Workers:      1,
		Name:         spec.prog.Name,
		Plan:         spec.prog.Plan,
	}, spec.body)
	if er.Err != nil {
		return cellOutcome{}, fmt.Errorf("explore %s: %w", spec.prog.Name, er.Err)
	}
	var bugs bugSet
	for _, b := range er.Bugs {
		bugs.add(core.BugSignature(b.Result))
	}
	return cellOutcome{runs: er.Schedules, bugs: bugs.sigs, firstBug: er.FirstBugIndex()}, nil
}

// runExplorePORFinder is the reduced systematic extreme: the same
// serial DFS under the same budget, with dynamic partial-order
// reduction and the canonical-state cache pruning schedules that only
// re-prove an already-explored partial order. Its cells pin the pruned
// budgets: within the shared budget the reduced search reaches (and
// usually exhausts) trees the full DFS cannot, so a reduction
// regression shows up as a lost bug or a worse first-bug envelope.
func runExplorePORFinder(ctx context.Context, spec cellSpec) (cellOutcome, error) {
	er := explore.Explore(explore.Options{
		MaxSchedules: spec.budget,
		MaxSteps:     spec.maxSteps,
		Workers:      1,
		DPOR:         true,
		StateCache:   true,
		Checkpoints:  spec.checkpoints,
		Name:         spec.prog.Name,
		Plan:         spec.prog.Plan,
	}, spec.body)
	if er.Err != nil {
		return cellOutcome{}, fmt.Errorf("explore-por %s: %w", spec.prog.Name, er.Err)
	}
	var bugs bugSet
	for _, b := range er.Bugs {
		bugs.add(core.BugSignature(b.Result))
	}
	return cellOutcome{runs: er.Schedules, bugs: bugs.sigs, firstBug: er.FirstBugIndex()}, nil
}

// Gate bounds for the bounded finders when the config leaves them
// zero: both gate programs (and every repository program measured so
// far) expose their full documented bug set at bound 2, pinned by
// TestBoundedEquivalence.
const (
	DefaultVariableBound = 2
	DefaultThreadBound   = 2
)

// runExploreVBFinder is the variable-bounded systematic regime
// (Bindal et al.): the same serial DFS under the same budget, with
// context switches restricted to schedules that involve at most
// vbound distinct shared objects. The bounded tree is exponentially
// smaller, so within the shared budget the bounded search exhausts
// programs the full DFS cannot — the portfolio bet the E13 experiment
// measures.
func runExploreVBFinder(ctx context.Context, spec cellSpec) (cellOutcome, error) {
	bound := spec.vbound
	if bound <= 0 {
		bound = DefaultVariableBound
	}
	er := explore.Explore(explore.Options{
		MaxSchedules:  spec.budget,
		MaxSteps:      spec.maxSteps,
		Workers:       1,
		VariableBound: explore.Bound(bound),
		Name:          spec.prog.Name,
		Plan:          spec.prog.Plan,
	}, spec.body)
	if er.Err != nil {
		return cellOutcome{}, fmt.Errorf("explore-vb %s: %w", spec.prog.Name, er.Err)
	}
	var bugs bugSet
	for _, b := range er.Bugs {
		bugs.add(core.BugSignature(b.Result))
	}
	return cellOutcome{runs: er.Schedules, bugs: bugs.sigs, firstBug: er.FirstBugIndex()}, nil
}

// runExploreTBFinder is the thread-bounded systematic regime (Bindal
// et al.): preemptions restricted to at most tbound distinct threads
// per schedule, arbitrarily many preemptions against that set.
func runExploreTBFinder(ctx context.Context, spec cellSpec) (cellOutcome, error) {
	bound := spec.tbound
	if bound <= 0 {
		bound = DefaultThreadBound
	}
	er := explore.Explore(explore.Options{
		MaxSchedules: spec.budget,
		MaxSteps:     spec.maxSteps,
		Workers:      1,
		ThreadBound:  explore.Bound(bound),
		Name:         spec.prog.Name,
		Plan:         spec.prog.Plan,
	}, spec.body)
	if er.Err != nil {
		return cellOutcome{}, fmt.Errorf("explore-tb %s: %w", spec.prog.Name, er.Err)
	}
	var bugs bugSet
	for _, b := range er.Bugs {
		bugs.add(core.BugSignature(b.Result))
	}
	return cellOutcome{runs: er.Schedules, bugs: bugs.sigs, firstBug: er.FirstBugIndex()}, nil
}

// runPCTFinder is the randomized-with-guarantees regime: one serial
// PCT campaign under the cell's run budget (see internal/pct for the
// depth-d probability bound).
func runPCTFinder(ctx context.Context, spec cellSpec) (cellOutcome, error) {
	pr := pct.Run(pct.Options{
		MaxRuns:  spec.budget,
		MaxSteps: spec.maxSteps,
		Seed:     spec.seed,
		Depth:    spec.pctDepth,
		Name:     spec.prog.Name,
		Plan:     spec.prog.Plan,
	}, spec.body)
	var bugs bugSet
	for _, b := range pr.Bugs {
		bugs.add(core.BugSignature(b.Result))
	}
	return cellOutcome{runs: pr.Runs, bugs: bugs.sigs, firstBug: pr.FirstBugIndex()}, nil
}

// runFuzzFinder is the greybox middle ground: one deterministic fuzz
// worker under the cell's run budget.
func runFuzzFinder(ctx context.Context, spec cellSpec) (cellOutcome, error) {
	fr := fuzz.Fuzz(fuzz.Options{
		MaxRuns:  spec.budget,
		MaxSteps: spec.maxSteps,
		Seed:     spec.seed,
		Workers:  1,
		Name:     spec.prog.Name,
		Plan:     spec.prog.Plan,
	}, spec.body)
	var bugs bugSet
	for _, b := range fr.Bugs {
		bugs.add(core.BugSignature(b.Result))
	}
	return cellOutcome{runs: fr.Runs, bugs: bugs.sigs, firstBug: fr.FirstBugIndex()}, nil
}

// runRaceFinder attaches the hybrid race detector to one round-robin
// run (maximal forced contention, fully deterministic — repeating it
// would add nothing) followed by seeded-random schedules, the E2
// spread without E2's duplicated determinism. Verdict bugs count by
// signature as everywhere; race warnings count as "race:<var>"
// signatures — including false alarms, deliberately: the gate guards
// the tool's output, and a detector that stops warning where it used
// to warn has changed behaviour either way.
func runRaceFinder(ctx context.Context, spec cellSpec) (cellOutcome, error) {
	runner := sched.NewRunner()
	defer runner.Close()
	det := race.NewHybrid(true)
	var bugs bugSet
	first := -1
	for i := 0; i < spec.budget; i++ {
		if err := ctx.Err(); err != nil {
			return cellOutcome{}, err
		}
		var st sched.Strategy
		if i == 0 {
			st = sched.RoundRobin()
		} else {
			st = sched.Random(mix(spec.seed, int64(i)))
		}
		res := runner.Run(sched.Config{
			Strategy:  st,
			Listeners: []core.Listener{det},
			Seed:      spec.seed,
			Name:      spec.prog.Name,
			MaxSteps:  spec.maxSteps,
			Plan:      spec.prog.Plan,
		}, spec.body)
		if res.Verdict.Bug() {
			bugs.add(core.BugSignature(res))
			if first < 0 {
				first = i + 1
			}
		}
		if first < 0 && len(det.Warnings()) > 0 {
			first = i + 1
		}
	}
	for _, v := range det.WarnedVars() {
		bugs.add("race:" + v)
	}
	return cellOutcome{runs: spec.budget, bugs: bugs.sigs, firstBug: first}, nil
}
