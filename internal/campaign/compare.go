// The diff layer: what makes a stored campaign more than a log file.
// Compare classifies per-cell deltas between a baseline store and a
// current store, Diff renders them through the shared report tables,
// and Gate turns effectiveness regressions into an error CI can fail
// a build on — the benchmark's answer to "did this change make the
// finders worse".
package campaign

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"mtbench/internal/report"
)

// DeltaKind classifies one per-cell difference.
type DeltaKind string

// Delta kinds. Regression kinds fail the gate; the others are
// informational.
const (
	// DeltaBugLost: a bug the baseline found in this cell is gone.
	DeltaBugLost DeltaKind = "bug-lost"
	// DeltaBugGained: the current run found a bug the baseline missed.
	DeltaBugGained DeltaKind = "bug-gained"
	// DeltaBudgetRegression: the first bug now needs more runs than
	// the baseline's envelope (baseline first_bug × slack) allows.
	DeltaBudgetRegression DeltaKind = "budget-regression"
	// DeltaBudgetImprovement: the first bug arrives earlier than in
	// the baseline.
	DeltaBudgetImprovement DeltaKind = "budget-improvement"
	// DeltaCellMissing: the baseline has a cell the current store
	// lacks (shrunk matrix or interrupted campaign).
	DeltaCellMissing DeltaKind = "cell-missing"
	// DeltaCellAdded: the current store has a cell the baseline
	// lacks (grown matrix); never a regression.
	DeltaCellAdded DeltaKind = "cell-added"
	// DeltaCellFailed: the current cell carries an abnormal Outcome
	// (timeout, panic, quarantine) the baseline does not — its finder
	// results are missing, so the gate fails.
	DeltaCellFailed DeltaKind = "cell-failed"
	// DeltaCellRecovered: the baseline cell was abnormal and the
	// current one executed normally (or failed differently);
	// informational.
	DeltaCellRecovered DeltaKind = "cell-recovered"
)

// Regression reports whether the kind fails the gate.
func (k DeltaKind) Regression() bool {
	switch k {
	case DeltaBugLost, DeltaBudgetRegression, DeltaCellMissing, DeltaCellFailed:
		return true
	}
	return false
}

// Delta is one classified per-cell difference.
type Delta struct {
	Cell   Cell
	Kind   DeltaKind
	Detail string
}

func (d Delta) String() string {
	return fmt.Sprintf("%s/%s seed=%d: %s (%s)", d.Cell.Program, d.Cell.Finder, d.Cell.Seed, d.Kind, d.Detail)
}

// Diff is the classified comparison of two record sets.
type Diff struct {
	// Deltas in canonical cell order, regressions and improvements
	// interleaved as they fall.
	Deltas []Delta
	// Compared counts cells present in both stores; BaselineOnly and
	// CurrentOnly count the asymmetric remainder.
	Compared     int
	BaselineOnly int
	CurrentOnly  int
	// Slack is the budget envelope multiplier the diff was built with.
	Slack float64
}

// Compare classifies the per-cell deltas from baseline to current.
// Slack widens the budget envelope: a current first_bug within
// ceil(baseline first_bug × slack) passes. Slack ≤ 0 means 1.0 — exact
// reproduction, the right envelope for fully deterministic fixed-seed
// campaigns.
func Compare(baseline, current []Record, slack float64) *Diff {
	if slack <= 0 {
		slack = 1.0
	}
	d := &Diff{Slack: slack}

	curByKey := make(map[string]Record, len(current))
	for _, r := range current {
		curByKey[r.Key()] = r
	}
	baseKeys := make(map[string]bool, len(baseline))

	base := append([]Record(nil), baseline...)
	sortRecords(base)
	for _, b := range base {
		baseKeys[b.Key()] = true
		c, ok := curByKey[b.Key()]
		if !ok {
			d.BaselineOnly++
			d.Deltas = append(d.Deltas, Delta{Cell: b.Cell(), Kind: DeltaCellMissing,
				Detail: "cell absent from current store"})
			continue
		}
		d.Compared++
		d.compareCell(b, c)
	}

	cur := append([]Record(nil), current...)
	sortRecords(cur)
	for _, c := range cur {
		if !baseKeys[c.Key()] {
			d.CurrentOnly++
			d.Deltas = append(d.Deltas, Delta{Cell: c.Cell(), Kind: DeltaCellAdded,
				Detail: fmt.Sprintf("new cell, %d bugs", len(c.Bugs))})
		}
	}
	return d
}

// compareCell classifies one shared cell.
func (d *Diff) compareCell(b, c Record) {
	// Abnormal outcomes dominate the finer classifications: a cell
	// that timed out, panicked or was quarantined has no finder
	// results worth diffing bug-by-bug.
	if b.Outcome != c.Outcome {
		switch {
		case c.Failed():
			d.Deltas = append(d.Deltas, Delta{Cell: b.Cell(), Kind: DeltaCellFailed, Detail: c.Outcome})
		default:
			d.Deltas = append(d.Deltas, Delta{Cell: b.Cell(), Kind: DeltaCellRecovered,
				Detail: fmt.Sprintf("baseline outcome was %q", b.Outcome)})
		}
		if c.Failed() {
			return
		}
	} else if b.Failed() {
		// Both failed identically: nothing to diff.
		return
	}
	curBugs := make(map[string]bool, len(c.Bugs))
	for _, sig := range c.Bugs {
		curBugs[sig] = true
	}
	baseBugs := make(map[string]bool, len(b.Bugs))
	for _, sig := range b.Bugs {
		baseBugs[sig] = true
	}
	for _, sig := range b.Bugs {
		if !curBugs[sig] {
			d.Deltas = append(d.Deltas, Delta{Cell: b.Cell(), Kind: DeltaBugLost, Detail: sig})
		}
	}
	for _, sig := range c.Bugs {
		if !baseBugs[sig] {
			d.Deltas = append(d.Deltas, Delta{Cell: b.Cell(), Kind: DeltaBugGained, Detail: sig})
		}
	}

	// Budget envelope, only meaningful when both sides found something
	// (a current side that found nothing is already fully covered by
	// bug-lost deltas).
	if b.FirstBug >= 1 && c.FirstBug >= 1 {
		allowed := int(math.Ceil(float64(b.FirstBug) * d.Slack))
		switch {
		case c.FirstBug > allowed:
			d.Deltas = append(d.Deltas, Delta{Cell: b.Cell(), Kind: DeltaBudgetRegression,
				Detail: fmt.Sprintf("first bug at run %d, baseline %d (envelope %d)", c.FirstBug, b.FirstBug, allowed)})
		case c.FirstBug < b.FirstBug:
			d.Deltas = append(d.Deltas, Delta{Cell: b.Cell(), Kind: DeltaBudgetImprovement,
				Detail: fmt.Sprintf("first bug at run %d, baseline %d", c.FirstBug, b.FirstBug)})
		}
	}
}

// Regressions returns the gate-failing deltas.
func (d *Diff) Regressions() []Delta {
	var out []Delta
	for _, delta := range d.Deltas {
		if delta.Kind.Regression() {
			out = append(out, delta)
		}
	}
	return out
}

// Gate returns nil when no regression was classified, and otherwise an
// error naming every regression — the single check `cmd/campaign
// gate` and the CI campaign-gate job exit non-zero on.
func (d *Diff) Gate() error {
	regs := d.Regressions()
	if len(regs) == 0 {
		return nil
	}
	msg := fmt.Sprintf("%d effectiveness regression(s) against baseline:", len(regs))
	for _, r := range regs {
		msg += "\n  " + r.String()
	}
	return fmt.Errorf("%s", msg)
}

// Tables renders the diff as report tables: CMP, a count per delta
// class, and CMPD, one row per delta.
func (d *Diff) Tables() []*report.Table {
	summary := &report.Table{
		ID:      "CMP",
		Title:   "campaign comparison summary",
		Columns: []string{"class", "count", "regression"},
	}
	summary.Note("compared %d cells (%d baseline-only, %d current-only), budget envelope slack %.2f",
		d.Compared, d.BaselineOnly, d.CurrentOnly, d.Slack)

	counts := map[DeltaKind]int{}
	for _, delta := range d.Deltas {
		counts[delta.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		kind := DeltaKind(k)
		summary.AddRow(k, strconv.Itoa(counts[kind]), fmt.Sprintf("%v", kind.Regression()))
	}
	if len(counts) == 0 {
		summary.Note("no deltas: current matches baseline exactly")
	}

	detail := &report.Table{
		ID:      "CMPD",
		Title:   "campaign comparison deltas",
		Columns: []string{"program", "finder", "seed", "budget", "class", "detail"},
	}
	for _, delta := range d.Deltas {
		detail.AddRow(delta.Cell.Program, delta.Cell.Finder,
			strconv.FormatInt(delta.Cell.Seed, 10), strconv.Itoa(delta.Cell.Budget),
			string(delta.Kind), delta.Detail)
	}
	return []*report.Table{summary, detail}
}

// SummaryTables renders a record set as report tables: CAM, the
// per-finder aggregate, and CAMD, the full per-cell matrix — the
// "push of a button" report for a stored campaign.
func SummaryTables(cfg Config, recs []Record) []*report.Table {
	cfg = cfg.normalized()

	type agg struct {
		cells, found, bugs, runs int
		firstSum                 int
	}
	byFinder := map[string]*agg{}
	for _, r := range recs {
		a := byFinder[r.Finder]
		if a == nil {
			a = &agg{}
			byFinder[r.Finder] = a
		}
		a.cells++
		a.runs += r.Runs
		a.bugs += len(r.Bugs)
		if r.FirstBug >= 1 {
			a.found++
			a.firstSum += r.FirstBug
		}
	}

	summary := &report.Table{
		ID:      "CAM",
		Title:   "campaign summary per finder",
		Columns: []string{"finder", "cells", "found_cells", "bugs", "mean_first_bug", "runs"},
	}
	summary.Note("budget %d per cell; bugs = distinct signatures summed over cells; mean_first_bug over bug-finding cells", cfg.Budget)
	finders := make([]string, 0, len(byFinder))
	for f := range byFinder {
		finders = append(finders, f)
	}
	sort.Strings(finders)
	for _, f := range finders {
		a := byFinder[f]
		mean := "-"
		if a.found > 0 {
			mean = fmt.Sprintf("%.1f", float64(a.firstSum)/float64(a.found))
		}
		summary.AddRow(f, strconv.Itoa(a.cells), strconv.Itoa(a.found),
			strconv.Itoa(a.bugs), mean, strconv.Itoa(a.runs))
	}

	detail := &report.Table{
		ID:      "CAMD",
		Title:   "campaign cells",
		Columns: []string{"program", "finder", "seed", "budget", "runs", "bugs", "first_bug", "wall_ms", "outcome"},
	}
	for _, r := range recs {
		first := "-"
		if r.FirstBug >= 1 {
			first = strconv.Itoa(r.FirstBug)
		}
		outcome := "ok"
		if r.Failed() {
			// Keep the row scannable: the class alone, not the stack.
			outcome, _, _ = strings.Cut(r.Outcome, ":")
		}
		detail.AddRow(r.Program, r.Finder, strconv.FormatInt(r.Seed, 10), strconv.Itoa(r.Budget),
			strconv.Itoa(r.Runs), strconv.Itoa(len(r.Bugs)), first, strconv.FormatInt(r.WallMS, 10), outcome)
	}
	return []*report.Table{summary, detail}
}
