package campaign

import (
	"context"
	"testing"
)

// TestCheckedInBaseline re-runs the checked-in baseline's pinned
// config and gates against it — the same path CI's campaign-gate job
// exercises, pinned here so a finder change that loses a bug or blows
// a budget envelope fails `go test` too, with the classified diff in
// the failure message.
func TestCheckedInBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full baseline campaign in -short mode")
	}
	cfg, base, err := Load("../../campaign/baseline.jsonl")
	if err != nil {
		t.Fatalf("checked-in baseline unreadable (regenerate with `go run ./cmd/campaign run -store campaign/baseline.jsonl -force`): %v", err)
	}
	cfg.Workers = 4
	sum, err := Run(context.Background(), cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	diff := Compare(base, sum.Records, 1.0)
	if err := diff.Gate(); err != nil {
		t.Fatalf("current finders regress against campaign/baseline.jsonl:\n%v\n(if the change is intentional, regenerate the baseline)", err)
	}
}
