// The campaign executor: a worker pool over matrix cells, reusing the
// budget-and-merge idioms of explore/fuzz one level up — cells are
// claimed from a shared atomic cursor, results merge into the store
// under its lock, and cancellation is a global wind-down (in-flight
// cells finish and are recorded, nothing half-done is stored).
package campaign

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Progress observes each completed cell: done of total counts cells
// executed by this invocation (skipped cells are not reported).
// Callbacks are serialized. A Progress callback may cancel the run's
// context to interrupt the campaign — that is exactly how the
// resumability tests interrupt after K cells.
type Progress func(done, total int, rec Record)

// Summary is the outcome of one Run invocation.
type Summary struct {
	// Config is the normalized campaign config.
	Config Config
	// Cells is the size of the full matrix.
	Cells int
	// Executed counts cells this invocation ran; Skipped counts cells
	// the store already had (the resumability ledger).
	Executed int
	Skipped  int
	// Records is the store's full record set, canonically ordered.
	Records []Record
}

// Run executes the campaign matrix into store, skipping cells the
// store already holds — so the same call both starts and resumes a
// campaign. The store must carry the same config fingerprint (Create
// pins it; pass the store's own Config to resume). On completion the
// store is compacted to canonical order; on context cancellation the
// journal keeps its partial state and Run returns the context error
// alongside a summary of what did complete.
func Run(ctx context.Context, cfg Config, store *Store, progress Progress) (*Summary, error) {
	cfg = cfg.normalized()
	if store == nil {
		store = NewMemStore(cfg)
	}
	if got, want := store.Config().Fingerprint(), cfg.Fingerprint(); got != want {
		return nil, fmt.Errorf("campaign: store config mismatch: store pins %s, run asked for %s", got, want)
	}

	// Resolve the matrix up front: unknown programs or finders fail
	// before any cell burns budget.
	cells := Cells(cfg)
	var pending []boundCell
	skipped := 0
	for _, cell := range cells {
		bc, err := bindCell(cfg, cell)
		if err != nil {
			return nil, err
		}
		if store.Has(cell.Key()) {
			skipped++
			continue
		}
		pending = append(pending, bc)
	}

	var (
		cursor   atomic.Int64
		mu       sync.Mutex // guards done, firstErr, and serializes progress
		done     int
		firstErr error
		wg       sync.WaitGroup
	)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := cfg.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if runCtx.Err() != nil {
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= len(pending) {
					return
				}
				bc := pending[i]

				// Cells execute under Background, not runCtx: a campaign
				// interrupt winds the pool down but lets in-flight cells
				// finish and be recorded (nothing half-done is stored,
				// nothing finished is thrown away). CellTimeout and the
				// panic sandbox guard each cell inside exec.
				rec, err := bc.exec(context.Background(), cfg)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					return
				}
				if err := store.Append(rec); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
					return
				}
				// done advances under the same lock that serializes the
				// callback, so Progress observes a monotone count.
				mu.Lock()
				done++
				if progress != nil {
					progress(done, len(pending), rec)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	sum := &Summary{
		Config:   cfg,
		Cells:    len(cells),
		Executed: done,
		Skipped:  skipped,
		Records:  store.Records(),
	}
	if firstErr != nil {
		return sum, firstErr
	}
	if err := ctx.Err(); err != nil {
		// Interrupted: leave the journal as-is for a later resume.
		return sum, err
	}
	if err := store.Compact(); err != nil {
		return sum, err
	}
	return sum, nil
}
