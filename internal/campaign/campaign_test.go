package campaign

import (
	"bytes"
	"context"
	"encoding/csv"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mtbench/internal/report"
)

// testConfig is a small matrix that still exercises every finder:
// two buggy programs, one correct program, tight budget.
func testConfig() Config {
	return Config{
		Programs: []string{"account", "lockedcounter", "semleak"},
		Seeds:    []int64{0},
		Budget:   60,
		Workers:  2,
	}
}

// runToFile executes cfg into path and returns the summary.
func runToFile(t *testing.T, cfg Config, path string) *Summary {
	t.Helper()
	store, err := Create(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	sum, err := Run(context.Background(), cfg, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestCampaignDeterministic pins the acceptance criterion: two runs of
// the same fixed-seed config produce byte-identical JSONL stores.
func TestCampaignDeterministic(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")

	sumA := runToFile(t, cfg, a)
	sumB := runToFile(t, cfg, b)

	want := 3 * len(Finders()) // 3 programs x every registered finder
	if sumA.Cells != want || sumA.Executed != want {
		t.Fatalf("expected %d executed cells, got %+v", want, sumA)
	}
	bugs := 0
	for _, r := range sumA.Records {
		bugs += len(r.Bugs)
	}
	if bugs == 0 {
		t.Fatal("campaign found no bugs at all; matrix is not exercising the finders")
	}
	if !reflect.DeepEqual(sumA.Records, sumB.Records) {
		t.Fatal("two runs of the same config produced different records")
	}

	fa, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fa, fb) {
		t.Fatalf("stores are not byte-identical:\n--- a ---\n%s\n--- b ---\n%s", fa, fb)
	}
}

// TestCampaignResume pins the other half of the criterion: interrupt
// after K cells, resume, no cell re-runs, and the final store is
// byte-identical to an uninterrupted run.
func TestCampaignResume(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()

	full := filepath.Join(dir, "full.jsonl")
	runToFile(t, cfg, full)

	// Phase 1: interrupt after 3 completed cells.
	path := filepath.Join(dir, "resumed.jsonl")
	store, err := Create(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	phase1 := map[string]bool{}
	sum1, err := Run(ctx, cfg, store, func(done, total int, rec Record) {
		phase1[rec.Key()] = true
		if done == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: want context.Canceled, got %v", err)
	}
	if sum1.Executed < 3 || sum1.Executed >= sum1.Cells {
		t.Fatalf("interrupt did not leave a partial campaign: executed %d of %d", sum1.Executed, sum1.Cells)
	}
	store.Close()

	// Phase 2: reopen and resume under the pinned config.
	store, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cfg2 := store.Config()
	cfg2.Workers = 2
	phase2 := map[string]bool{}
	sum2, err := Run(context.Background(), cfg2, store, func(done, total int, rec Record) {
		if phase1[rec.Key()] {
			t.Errorf("cell %s re-ran after resume", rec.Key())
		}
		phase2[rec.Key()] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Skipped != sum1.Executed {
		t.Fatalf("resume skipped %d cells, want %d (the interrupted run's completions)", sum2.Skipped, sum1.Executed)
	}
	if sum2.Executed+sum2.Skipped != sum2.Cells {
		t.Fatalf("resume did not complete the matrix: %d executed + %d skipped != %d cells",
			sum2.Executed, sum2.Skipped, sum2.Cells)
	}

	fullBytes, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	resumedBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fullBytes, resumedBytes) {
		t.Fatal("interrupted-then-resumed store differs from an uninterrupted run")
	}
}

// TestCampaignParallelMatchesSerial pins that campaign-level
// parallelism never changes cell results.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	serial := testConfig()
	serial.Workers = 1
	parallel := testConfig()
	parallel.Workers = 4

	sumS, err := Run(context.Background(), serial, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sumP, err := Run(context.Background(), parallel, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sumS.Records, sumP.Records) {
		t.Fatal("Workers=4 produced different records than Workers=1")
	}
}

func TestConfigFingerprint(t *testing.T) {
	a := Config{Programs: []string{"account", "semleak"}, Finders: []string{"fuzz", "noise"}, Seeds: []int64{2, 1}}
	b := Config{Programs: []string{"semleak", "account"}, Finders: []string{"noise", "fuzz"}, Seeds: []int64{1, 2},
		Workers: 8, Timing: true}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint depends on declaration order or execution details")
	}
	c := a
	c.Budget = 77
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("fingerprint ignores the budget")
	}
}

func TestRunRejectsUnknownMatrix(t *testing.T) {
	cfg := testConfig()
	cfg.Programs = []string{"nosuchprogram"}
	if _, err := Run(context.Background(), cfg, nil, nil); err == nil {
		t.Fatal("unknown program accepted")
	}
	cfg = testConfig()
	cfg.Finders = []string{"nosuchfinder"}
	if _, err := Run(context.Background(), cfg, nil, nil); err == nil {
		t.Fatal("unknown finder accepted")
	}
}

func TestRunRejectsConfigMismatch(t *testing.T) {
	store := NewMemStore(testConfig())
	other := testConfig()
	other.Budget = 999
	if _, err := Run(context.Background(), other, store, nil); err == nil {
		t.Fatal("config mismatch with the store's pinned config accepted")
	}
}

// rec is a Record literal helper for compare tests.
func rec(prog, finder string, seed int64, budget int, bugs []string, first int) Record {
	if bugs == nil {
		bugs = []string{}
	}
	return Record{Program: prog, Finder: finder, Seed: seed, Budget: budget,
		Runs: budget, Bugs: bugs, FirstBug: first}
}

func kinds(deltas []Delta) []DeltaKind {
	out := make([]DeltaKind, len(deltas))
	for i, d := range deltas {
		out[i] = d.Kind
	}
	return out
}

func TestCompareClassification(t *testing.T) {
	baseline := []Record{
		rec("account", "fuzz", 0, 100, []string{"fail:x"}, 10),
		rec("account", "noise", 0, 100, []string{"fail:x", "fail:y"}, 5),
		rec("semleak", "fuzz", 0, 100, nil, -1),
		rec("statmax", "fuzz", 0, 100, []string{"fail:z"}, 3),
	}
	current := []Record{
		rec("account", "fuzz", 0, 100, []string{"fail:x"}, 25),     // later first bug
		rec("account", "noise", 0, 100, []string{"fail:x"}, 5),     // lost fail:y
		rec("semleak", "fuzz", 0, 100, []string{"deadlock:d"}, 40), // gained
		// statmax cell missing
		rec("extra", "race", 0, 100, nil, -1), // added
	}

	diff := Compare(baseline, current, 2.0)
	want := map[DeltaKind]int{
		DeltaBudgetRegression: 1, // 25 > ceil(10*2.0)=20
		DeltaBugLost:          1,
		DeltaBugGained:        1,
		DeltaCellMissing:      1,
		DeltaCellAdded:        1,
	}
	got := map[DeltaKind]int{}
	for _, k := range kinds(diff.Deltas) {
		got[k]++
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delta kinds = %v, want %v", got, want)
	}
	if n := len(diff.Regressions()); n != 3 {
		t.Fatalf("regressions = %d, want 3 (bug-lost + budget-regression + cell-missing)", n)
	}
	if err := diff.Gate(); err == nil {
		t.Fatal("gate passed a diff with regressions")
	}

	// Wider slack absorbs the budget regression; the losses remain.
	diff = Compare(baseline, current, 3.0)
	if got := kinds(diff.Regressions()); len(got) != 2 {
		t.Fatalf("slack 3.0 regressions = %v, want bug-lost + cell-missing", got)
	}

	// Improvements only: earlier first bug gates clean.
	diff = Compare(
		[]Record{rec("account", "fuzz", 0, 100, []string{"fail:x"}, 50)},
		[]Record{rec("account", "fuzz", 0, 100, []string{"fail:x"}, 2)}, 1.0)
	if err := diff.Gate(); err != nil {
		t.Fatalf("gate failed an improvement-only diff: %v", err)
	}
	if got := kinds(diff.Deltas); !reflect.DeepEqual(got, []DeltaKind{DeltaBudgetImprovement}) {
		t.Fatalf("deltas = %v, want [budget-improvement]", got)
	}

	// Identical stores: no deltas at all.
	diff = Compare(baseline, baseline, 1.0)
	if len(diff.Deltas) != 0 || diff.Gate() != nil {
		t.Fatalf("self-compare produced deltas: %v", diff.Deltas)
	}
}

// TestCampaignTablesRoundTrip pins that campaign tables survive the
// report JSON and CSV serializations intact — the contract CI artifact
// collectors rely on.
func TestCampaignTablesRoundTrip(t *testing.T) {
	baseline := []Record{
		rec("account", "fuzz", 0, 100, []string{"fail:x"}, 10),
		rec("semleak", "noise", 0, 100, nil, -1),
	}
	current := []Record{
		rec("account", "fuzz", 0, 100, nil, -1),
		rec("semleak", "noise", 0, 100, []string{"deadlock:d, with comma"}, 7),
	}
	cfg := Config{}.normalized()
	tables := append(SummaryTables(cfg, baseline), Compare(baseline, current, 1.0).Tables()...)

	// JSON round trip.
	var buf bytes.Buffer
	if err := report.JSONAll(&buf, tables); err != nil {
		t.Fatal(err)
	}
	back, err := report.ParseJSONAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tables) {
		t.Fatalf("JSON round trip returned %d tables, want %d", len(back), len(tables))
	}
	for i, tb := range tables {
		got := back[i]
		wantRows := tb.Rows
		if wantRows == nil {
			wantRows = [][]string{}
		}
		if got.ID != tb.ID || got.Title != tb.Title ||
			!reflect.DeepEqual(got.Columns, tb.Columns) ||
			!reflect.DeepEqual(got.Rows, wantRows) ||
			!reflect.DeepEqual(got.Notes, tb.Notes) {
			t.Fatalf("JSON round trip mutated table %s:\ngot  %+v\nwant %+v", tb.ID, got, tb)
		}
	}

	// CSV round trip (header + rows; CSV carries no id/title/notes).
	for _, tb := range tables {
		var cbuf bytes.Buffer
		if err := tb.CSV(&cbuf); err != nil {
			t.Fatal(err)
		}
		rows, err := csv.NewReader(strings.NewReader(cbuf.String())).ReadAll()
		if err != nil {
			t.Fatalf("table %s CSV does not re-parse: %v", tb.ID, err)
		}
		want := append([][]string{tb.Columns}, tb.Rows...)
		if !reflect.DeepEqual(rows, want) {
			t.Fatalf("CSV round trip mutated table %s:\ngot  %v\nwant %v", tb.ID, rows, want)
		}
	}
}

// failedRec is rec with an abnormal Outcome (timeout/panic/quarantine).
func failedRec(prog, finder string, outcome string) Record {
	r := rec(prog, finder, 0, 100, nil, -1)
	r.Runs = 0
	r.Outcome = outcome
	return r
}

func TestCompareOutcomeClassification(t *testing.T) {
	baseline := []Record{
		rec("account", "fuzz", 0, 100, []string{"fail:x"}, 10),
		failedRec("semleak", "noise", "timeout: cell exceeded 1s wall clock"),
		failedRec("statmax", "fuzz", "panic: boom"),
	}
	current := []Record{
		failedRec("account", "fuzz", "quarantined: 3 failed lease attempts"), // was healthy
		rec("semleak", "noise", 0, 100, []string{"deadlock:d"}, 4),           // recovered
		failedRec("statmax", "fuzz", "panic: boom"),                          // same failure
	}

	diff := Compare(baseline, current, 1.0)
	got := map[DeltaKind]int{}
	for _, k := range kinds(diff.Deltas) {
		got[k]++
	}
	// The failed cell contributes cell-failed only (no bug-lost spam on
	// top); the recovered cell contributes cell-recovered plus its
	// gained bug; the identically-failed cell contributes nothing.
	want := map[DeltaKind]int{
		DeltaCellFailed:    1,
		DeltaCellRecovered: 1,
		DeltaBugGained:     1,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delta kinds = %v, want %v", got, want)
	}
	if err := diff.Gate(); err == nil {
		t.Fatal("gate passed a diff with a newly failed cell")
	}

	// Recovery alone gates clean.
	diff = Compare(
		[]Record{failedRec("account", "fuzz", "timeout: cell exceeded 1s wall clock")},
		[]Record{rec("account", "fuzz", 0, 100, nil, -1)}, 1.0)
	if err := diff.Gate(); err != nil {
		t.Fatalf("gate failed a recovery-only diff: %v", err)
	}
}
