// Package noise implements noise makers (§2.2 of the paper): heuristics
// that perturb scheduling at instrumentation points "to force different
// legal interleavings for each execution of the test". One Heuristic
// interface serves both runtimes:
//
//   - in the controlled runtime, a noise decision forces the strategy
//     to switch threads at the scheduling point (Strategy wraps any
//     base sched.Strategy);
//   - in the native runtime, a noise decision injects a real delay
//     (sleep, yield, or spin) before the operation, ConTest-style.
//
// The two research questions §2.2 poses — which heuristic uncovers more
// bugs, and where noise should be injected — map to the Heuristic
// implementations below and to the instrument.Plan that gates which
// probes call them.
package noise

import (
	"math/rand"
	"sync"
	"time"

	"mtbench/internal/core"
)

// Decision is a heuristic's verdict at one instrumentation point.
type Decision struct {
	// Switch asks the controlled scheduler to run a different thread.
	Switch bool
	// Sleep asks the native runtime to sleep before the operation.
	Sleep time.Duration
	// Yield asks the native runtime to call runtime.Gosched.
	Yield bool
	// Spin asks the native runtime to busy-loop for roughly this many
	// iterations (cheap sub-microsecond noise).
	Spin int
}

// Noisy reports whether the decision perturbs the schedule at all.
func (d Decision) Noisy() bool {
	return d.Switch || d.Sleep > 0 || d.Yield || d.Spin > 0
}

// Point describes the instrumentation point a heuristic decides at: the
// operation the thread is about to perform.
type Point struct {
	Thread core.ThreadID
	Op     core.Op
	Name   string // object name ("" when none)
	Loc    core.Location
}

// Heuristic decides, at every enabled instrumentation point, whether
// and how to perturb the schedule. Implementations must be safe for
// concurrent use (the native runtime calls Decide from many
// goroutines); the rng is owned by the calling thread.
type Heuristic interface {
	Name() string
	Decide(p *Point, rng *rand.Rand) Decision
}

// None returns the no-noise heuristic: the baseline for every
// noise-maker comparison.
func None() Heuristic { return noneH{} }

type noneH struct{}

func (noneH) Name() string                       { return "none" }
func (noneH) Decide(*Point, *rand.Rand) Decision { return Decision{} }

// Kind selects the perturbation a probabilistic heuristic applies in
// native mode (controlled mode always translates to a forced switch).
type Kind uint8

// Perturbation kinds.
const (
	KindYield Kind = iota // runtime.Gosched
	KindSleep             // time.Sleep up to MaxSleep
	KindMixed             // coin-flip between yield and sleep
)

// Bernoulli perturbs at every enabled point with fixed probability P —
// the simplest heuristic in the ConTest family ("decides, randomly
// ... if some kind of delay is needed").
type Bernoulli struct {
	P        float64
	Kind     Kind
	MaxSleep time.Duration // 0 = 1ms
	// OnlyOps restricts noise to the listed operation kinds (nil = all
	// points). Restricting to sync ops or accesses is the cheap answer
	// to the paper's "where should calls be embedded" question.
	OnlyOps []core.Op
	label   string
}

// NewBernoulli returns a Bernoulli heuristic with a descriptive name.
func NewBernoulli(p float64, kind Kind, only ...core.Op) *Bernoulli {
	return &Bernoulli{P: p, Kind: kind, OnlyOps: only}
}

// Name implements Heuristic.
func (b *Bernoulli) Name() string {
	if b.label != "" {
		return b.label
	}
	switch {
	case len(b.OnlyOps) > 0:
		return "bernoulli-filtered"
	case b.Kind == KindSleep:
		return "bernoulli-sleep"
	case b.Kind == KindMixed:
		return "bernoulli-mixed"
	default:
		return "bernoulli-yield"
	}
}

// WithName overrides the reported name (used by experiments comparing
// several configurations of one heuristic).
func (b *Bernoulli) WithName(name string) *Bernoulli {
	b.label = name
	return b
}

func (b *Bernoulli) applies(op core.Op) bool {
	if len(b.OnlyOps) == 0 {
		return true
	}
	for _, o := range b.OnlyOps {
		if o == op {
			return true
		}
	}
	return false
}

// Decide implements Heuristic.
func (b *Bernoulli) Decide(p *Point, rng *rand.Rand) Decision {
	if !b.applies(p.Op) || rng.Float64() >= b.P {
		return Decision{}
	}
	return b.perturb(rng)
}

func (b *Bernoulli) perturb(rng *rand.Rand) Decision {
	max := b.MaxSleep
	if max <= 0 {
		max = time.Millisecond
	}
	switch b.Kind {
	case KindSleep:
		return Decision{Switch: true, Sleep: time.Duration(rng.Int63n(int64(max)) + 1)}
	case KindMixed:
		if rng.Intn(2) == 0 {
			return Decision{Switch: true, Yield: true}
		}
		return Decision{Switch: true, Sleep: time.Duration(rng.Int63n(int64(max)) + 1)}
	default:
		return Decision{Switch: true, Yield: true}
	}
}

// SharedVarNoise perturbs only at shared-variable accesses: the
// placement heuristic that targets the operations races are made of.
func SharedVarNoise(p float64) Heuristic {
	return NewBernoulli(p, KindYield, core.OpRead, core.OpWrite).WithName("sharedvar")
}

// SyncNoise perturbs only at synchronization operations: the placement
// heuristic that targets lock-discipline and notify bugs.
func SyncNoise(p float64) Heuristic {
	return NewBernoulli(p, KindYield,
		core.OpLock, core.OpUnlock, core.OpWait, core.OpSignal, core.OpBroadcast).WithName("sync")
}

// Statistical adapts to the program: locations that have produced few
// perturbations so far get perturbed with higher probability, spreading
// noise across the program instead of hammering hot loops (the
// "based on specific statistics" heuristic of §2.2). State accumulates
// across runs of a campaign, which is the point: later runs perturb
// what earlier runs neglected.
type Statistical struct {
	// Base is the probability for a never-seen location (default 0.5).
	Base float64
	// Decay divides the probability per prior perturbation at the same
	// location (default 0.5 halves it each time).
	Decay float64

	mu     sync.Mutex
	counts map[string]int
}

// NewStatistical returns an adaptive per-location heuristic.
func NewStatistical(base, decay float64) *Statistical {
	if base <= 0 {
		base = 0.5
	}
	if decay <= 0 || decay >= 1 {
		decay = 0.5
	}
	return &Statistical{Base: base, Decay: decay, counts: make(map[string]int)}
}

// Name implements Heuristic.
func (s *Statistical) Name() string { return "statistical" }

// Decide implements Heuristic.
func (s *Statistical) Decide(p *Point, rng *rand.Rand) Decision {
	key := p.Loc.Key()
	s.mu.Lock()
	n := s.counts[key]
	prob := s.Base
	for i := 0; i < n && prob > 1e-4; i++ {
		prob *= s.Decay
	}
	hit := rng.Float64() < prob
	if hit {
		s.counts[key] = n + 1
	}
	s.mu.Unlock()
	if !hit {
		return Decision{}
	}
	return Decision{Switch: true, Yield: true}
}

// CoverageDirected perturbs at points whose (object, location) pair has
// been exercised the fewest times — the §2.2 heuristic that decides
// "based on ... coverage". It is the Statistical idea keyed by the
// coverage task (variable × program point) rather than the bare
// location.
type CoverageDirected struct {
	// Base probability for an uncovered task (default 0.8).
	Base float64

	mu     sync.Mutex
	counts map[string]int
}

// NewCoverageDirected returns a coverage-directed heuristic.
func NewCoverageDirected(base float64) *CoverageDirected {
	if base <= 0 {
		base = 0.8
	}
	return &CoverageDirected{Base: base, counts: make(map[string]int)}
}

// Name implements Heuristic.
func (c *CoverageDirected) Name() string { return "covdirected" }

// Decide implements Heuristic.
func (c *CoverageDirected) Decide(p *Point, rng *rand.Rand) Decision {
	if !p.Op.IsAccess() && !p.Op.IsSync() {
		return Decision{}
	}
	key := p.Name + "@" + p.Loc.Key()
	c.mu.Lock()
	n := c.counts[key]
	c.counts[key] = n + 1
	c.mu.Unlock()
	prob := c.Base / float64(1+n)
	if rng.Float64() >= prob {
		return Decision{}
	}
	return Decision{Switch: true, Yield: true}
}
