package noise

import (
	"math/rand"

	"mtbench/internal/core"
	"mtbench/internal/sched"
)

// Strategy wraps a base scheduling strategy with a noise heuristic for
// the controlled runtime: at each scheduling point the heuristic
// inspects the pending operation, and a Noisy decision forces a switch
// to a different runnable thread (chosen uniformly). Otherwise the base
// strategy decides.
//
// This is the controlled-mode analogue of injecting sleeps into a
// preemptive runtime: a forced switch "simulates the behaviour of other
// possible schedulers" exactly as §2.2 describes.
type Strategy struct {
	Base sched.Strategy
	H    Heuristic
	rng  *rand.Rand

	// decisions/perturbations count heuristic activity for overhead
	// reporting.
	decisions     int64
	perturbations int64
}

// NewStrategy builds a noise-wrapped strategy. A nil base defaults to
// run-to-block with random dispatch (sched.RandomWhenBlocked), the
// model of the nondeterministic OS scheduler noise tools run over in
// the field: the heuristic adds preemptions at instrumentation points,
// the base decides who runs after a block. Pass sched.Nonpreemptive()
// explicitly to isolate the heuristic's contribution over a fully
// deterministic dispatcher.
func NewStrategy(base sched.Strategy, h Heuristic, seed int64) *Strategy {
	if base == nil {
		base = sched.RandomWhenBlocked(seed ^ 0x5DEECE66D)
	}
	if h == nil {
		h = None()
	}
	return &Strategy{Base: base, H: h, rng: rand.New(rand.NewSource(seed))}
}

// Name implements sched.Strategy.
func (s *Strategy) Name() string { return "noise:" + s.H.Name() }

// NeedsLocations implements sched.LocationAware: noise heuristics key
// their Points on the pending operation's program location, so the
// scheduler must keep capturing locations even in listener-free runs.
func (s *Strategy) NeedsLocations() bool { return true }

// Pick implements sched.Strategy.
func (s *Strategy) Pick(c *sched.Choice) core.ThreadID {
	canPerturb := c.CurrentRunnable() && (len(c.Runnable) > 1 || c.CanIdle)
	if canPerturb && c.Pending.Op != core.OpInvalid {
		s.decisions++
		p := Point{Thread: c.Current, Op: c.Pending.Op, Name: c.Pending.Name, Loc: c.Pending.Loc}
		if d := s.H.Decide(&p, s.rng); d.Noisy() {
			s.perturbations++
			// A sleep-type decision prefers letting virtual time pass
			// (delaying the current thread past pending timer
			// deadlines), matching a real injected delay; otherwise,
			// or when no timer is pending, switch threads.
			if d.Sleep > 0 && c.CanIdle {
				return sched.IdleID
			}
			if len(c.Runnable) > 1 {
				return s.pickOther(c)
			}
			return c.Current
		}
	}
	return s.Base.Pick(c)
}

// pickOther picks a uniformly random runnable thread other than the
// current one.
func (s *Strategy) pickOther(c *sched.Choice) core.ThreadID {
	others := make([]core.ThreadID, 0, len(c.Runnable)-1)
	for _, id := range c.Runnable {
		if id != c.Current {
			others = append(others, id)
		}
	}
	return others[s.rng.Intn(len(others))]
}

// Stats returns how many points the heuristic saw and how many it
// perturbed.
func (s *Strategy) Stats() (decisions, perturbations int64) {
	return s.decisions, s.perturbations
}
