package noise

import (
	"math/rand"
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/sched"
)

func point(op core.Op, name, locKey string) *Point {
	return &Point{Op: op, Name: name, Loc: core.Location{File: locKey, Line: 1}}
}

func TestNoneNeverPerturbs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := None()
	for i := 0; i < 100; i++ {
		if h.Decide(point(core.OpRead, "x", "f"), rng).Noisy() {
			t.Fatal("None perturbed")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := NewBernoulli(0.3, KindYield)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if h.Decide(point(core.OpRead, "x", "f"), rng).Noisy() {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("rate = %.3f, want ~0.3", rate)
	}
}

func TestBernoulliOpFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := SyncNoise(1.0)
	if !h.Decide(point(core.OpLock, "mu", "f"), rng).Noisy() {
		t.Fatal("sync noise skipped a lock op")
	}
	if h.Decide(point(core.OpRead, "x", "f"), rng).Noisy() {
		t.Fatal("sync noise perturbed a read")
	}
}

func TestStatisticalDecays(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := NewStatistical(1.0, 0.5)
	// First decision at a fresh location must fire (base prob 1.0).
	if !h.Decide(point(core.OpRead, "x", "hot.go"), rng).Noisy() {
		t.Fatal("fresh location not perturbed at base=1.0")
	}
	// After many hits the same location's rate must collapse.
	hits := 0
	for i := 0; i < 1000; i++ {
		if h.Decide(point(core.OpRead, "x", "hot.go"), rng).Noisy() {
			hits++
		}
	}
	if hits > 30 {
		t.Fatalf("hot location still perturbed %d/1000 times", hits)
	}
	// A fresh location still fires.
	if !h.Decide(point(core.OpRead, "y", "cold.go"), rng).Noisy() {
		t.Fatal("cold location not perturbed")
	}
}

func TestCoverageDirectedPrefersRareTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := NewCoverageDirected(1.0)
	if !h.Decide(point(core.OpWrite, "v", "a.go"), rng).Noisy() {
		t.Fatal("uncovered task not perturbed at base=1.0")
	}
	hot := 0
	for i := 0; i < 500; i++ {
		if h.Decide(point(core.OpWrite, "v", "a.go"), rng).Noisy() {
			hot++
		}
	}
	if hot > 60 {
		t.Fatalf("covered task still perturbed %d/500 times", hot)
	}
}

// TestStrategyFindsLostUpdate is the noise maker's reason to exist: the
// nonpreemptive baseline never exposes the canonical lost update, and
// the same baseline wrapped with Bernoulli noise does.
func TestStrategyFindsLostUpdate(t *testing.T) {
	body := func(ct core.T) {
		x := ct.NewInt("x", 0)
		h1 := ct.Go("a", func(wt core.T) {
			v := x.Load(wt)
			x.Store(wt, v+1)
		})
		h2 := ct.Go("b", func(wt core.T) {
			v := x.Load(wt)
			x.Store(wt, v+1)
		})
		h1.Join(ct)
		h2.Join(ct)
		ct.Assert(x.Load(ct) == 2, "lost update")
	}

	baselineFound := 0
	noiseFound := 0
	const tries = 60
	for seed := int64(0); seed < tries; seed++ {
		if res := sched.Run(sched.Config{Strategy: sched.Nonpreemptive()}, body); res.Verdict.Bug() {
			baselineFound++
		}
		st := NewStrategy(nil, NewBernoulli(0.5, KindYield), seed)
		if res := sched.Run(sched.Config{Strategy: st}, body); res.Verdict.Bug() {
			noiseFound++
		}
	}
	if baselineFound != 0 {
		t.Fatalf("baseline found the bug %d times; it must be deterministic-blind", baselineFound)
	}
	if noiseFound == 0 {
		t.Fatal("noise never found the lost update")
	}
}

// TestStrategyDeterministicPerSeed checks that a noise strategy with a
// fixed seed reproduces the same schedule (required for the statistics
// scripts to be rerunnable).
func TestStrategyDeterministicPerSeed(t *testing.T) {
	body := func(ct core.T) {
		x := ct.NewInt("x", 0)
		h1 := ct.Go("a", func(wt core.T) {
			v := x.Load(wt)
			x.Store(wt, v+1)
		})
		h2 := ct.Go("b", func(wt core.T) {
			v := x.Load(wt)
			x.Store(wt, v+2)
		})
		h1.Join(ct)
		h2.Join(ct)
		ct.Outcome("x=%d", x.Load(ct))
	}
	run := func(seed int64) string {
		st := NewStrategy(nil, NewBernoulli(0.5, KindYield), seed)
		return sched.Run(sched.Config{Strategy: st}, body).Outcome
	}
	for seed := int64(0); seed < 10; seed++ {
		if a, b := run(seed), run(seed); a != b {
			t.Fatalf("seed %d not deterministic: %q vs %q", seed, a, b)
		}
	}
}

// TestStrategyStats checks perturbation accounting.
func TestStrategyStats(t *testing.T) {
	st := NewStrategy(nil, NewBernoulli(1.0, KindYield), 1)
	sched.Run(sched.Config{Strategy: st}, func(ct core.T) {
		x := ct.NewInt("x", 0)
		h := ct.Go("w", func(wt core.T) { x.Add(wt, 1) })
		for i := 0; i < 5; i++ {
			x.Add(ct, 1)
		}
		h.Join(ct)
	})
	dec, per := st.Stats()
	if dec == 0 || per == 0 {
		t.Fatalf("stats not collected: decisions=%d perturbations=%d", dec, per)
	}
	if per > dec {
		t.Fatalf("perturbations %d > decisions %d", per, dec)
	}
}
