package multiout

import (
	"math"
	"strings"
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/noise"
	"mtbench/internal/sched"
)

func TestBodyReportsEverySample(t *testing.T) {
	res := sched.Run(sched.Config{}, Body())
	if res.Verdict != core.VerdictPass {
		t.Fatalf("multiout run: %v", res)
	}
	for _, s := range Samples() {
		if !strings.Contains(res.Outcome, s.Name+"=") {
			t.Fatalf("outcome %q missing sample %s", res.Outcome, s.Name)
		}
	}
	if len(res.FinishOrder) < len(Samples()) {
		t.Fatalf("finish order %v too short", res.FinishOrder)
	}
}

func TestCanonicalDeterministicPerSchedule(t *testing.T) {
	run := func() string {
		return Canonical(sched.Run(sched.Config{Strategy: sched.Random(7)}, Body()))
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different canonical outcome:\n%s\n%s", a, b)
	}
}

// TestNoiseWidensDistribution is the component's reason to exist: a
// noise maker must induce more distinct outcomes (higher entropy) than
// the deterministic baseline, which always produces exactly one.
func TestNoiseWidensDistribution(t *testing.T) {
	const runs = 120

	base := Distribution{}
	for i := 0; i < runs; i++ {
		base.Add(sched.Run(sched.Config{}, Body()))
	}
	if base.Distinct() != 1 {
		t.Fatalf("deterministic baseline produced %d outcomes", base.Distinct())
	}
	if base.Entropy() != 0 {
		t.Fatalf("baseline entropy = %v", base.Entropy())
	}

	noisy := Distribution{}
	for seed := int64(0); seed < runs; seed++ {
		st := noise.NewStrategy(nil, noise.NewBernoulli(0.4, noise.KindYield), seed)
		noisy.Add(sched.Run(sched.Config{Strategy: st}, Body()))
	}
	if noisy.Distinct() < 5 {
		t.Fatalf("noise produced only %d distinct outcomes", noisy.Distinct())
	}
	if noisy.Entropy() <= 1 {
		t.Fatalf("noise entropy = %.2f, want > 1 bit", noisy.Entropy())
	}
	t.Logf("baseline: %d outcomes, noise: %d outcomes, %.2f bits",
		base.Distinct(), noisy.Distinct(), noisy.Entropy())
}

func TestDistributionMath(t *testing.T) {
	d := Distribution{"a": 2, "b": 2}
	if d.Runs() != 4 || d.Distinct() != 2 {
		t.Fatalf("runs=%d distinct=%d", d.Runs(), d.Distinct())
	}
	if math.Abs(d.Entropy()-1.0) > 1e-9 {
		t.Fatalf("entropy = %v, want 1 bit", d.Entropy())
	}
	var empty Distribution = map[string]int{}
	if empty.Entropy() != 0 {
		t.Fatal("empty distribution entropy != 0")
	}
}
