// Package multiout implements the benchmark's fourth component (§4):
// "a specially prepared benchmark program that has no inputs and many
// possible results. We create the program by having a 'main' that
// starts many of our simpler documented sample programs in parallel,
// each of which writes its result (with a number of possible outcomes)
// into a variable. The benchmark program outputs these results as well
// as the order in which the sample programs finished. Tools such as
// noise makers can be compared as to the distribution of their
// results."
//
// The samples are small assert-free computations whose results depend
// on the interleaving; the canonical outcome string combines every
// sample's result with the finish order, and Distribution summarizes a
// campaign of runs (distinct outcomes, Shannon entropy). A noise maker
// that induces a wider, flatter distribution explores more of the
// interleaving space.
package multiout

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mtbench/internal/core"
)

// Sample is one no-input, several-outcomes computation.
type Sample struct {
	Name string
	// Outcomes documents the possible results, for the record.
	Outcomes string
	// Run computes the sample's result; it must not Assert.
	Run func(t core.T) int64
}

// Samples returns the fixed sample set the benchmark program runs.
func Samples() []Sample {
	return []Sample{
		{
			Name:     "inc",
			Outcomes: "1 or 2 (lost update)",
			Run: func(t core.T) int64 {
				x := t.NewInt("inc.x", 0)
				h1 := t.Go("inc.a", func(wt core.T) {
					v := x.Load(wt)
					x.Store(wt, v+1)
				})
				h2 := t.Go("inc.b", func(wt core.T) {
					v := x.Load(wt)
					x.Store(wt, v+1)
				})
				h1.Join(t)
				h2.Join(t)
				return x.Load(t)
			},
		},
		{
			Name:     "chain",
			Outcomes: "1, 2, 4 or 5 (order of 2x+1 / 2x+2)",
			Run: func(t core.T) int64 {
				x := t.NewInt("chain.x", 0)
				h1 := t.Go("chain.a", func(wt core.T) {
					v := x.Load(wt)
					x.Store(wt, v*2+1)
				})
				h2 := t.Go("chain.b", func(wt core.T) {
					v := x.Load(wt)
					x.Store(wt, v*2+2)
				})
				h1.Join(t)
				h2.Join(t)
				return x.Load(t)
			},
		},
		{
			Name:     "winner",
			Outcomes: "1, 2 or 3 (first writer wins)",
			Run: func(t core.T) int64 {
				w := t.NewInt("winner.w", 0)
				var hs []core.Handle
				for i := 1; i <= 3; i++ {
					val := int64(i)
					hs = append(hs, t.Go(fmt.Sprintf("winner.%d", i), func(wt core.T) {
						w.CompareAndSwap(wt, 0, val)
					}))
				}
				for _, h := range hs {
					h.Join(t)
				}
				return w.Load(t)
			},
		},
		{
			Name:     "maxskew",
			Outcomes: "10, 20 or 30 (racy running maximum)",
			Run: func(t core.T) int64 {
				m := t.NewInt("maxskew.m", 0)
				var hs []core.Handle
				for i := 1; i <= 3; i++ {
					val := int64(i * 10)
					hs = append(hs, t.Go(fmt.Sprintf("maxskew.%d", i), func(wt core.T) {
						if m.Load(wt) < val {
							m.Store(wt, val)
						}
					}))
				}
				for _, h := range hs {
					h.Join(t)
				}
				return m.Load(t)
			},
		},
	}
}

// Body returns the benchmark program: every sample runs in its own
// thread, reports "name=value" as an outcome fragment, and the finish
// order is captured by the runtime.
func Body() func(core.T) {
	samples := Samples()
	return func(t core.T) {
		handles := make([]core.Handle, len(samples))
		for i, s := range samples {
			s := s
			handles[i] = t.Go(s.Name, func(wt core.T) {
				wt.Outcome("%s=%d", s.Name, s.Run(wt))
			})
		}
		for _, h := range handles {
			h.Join(t)
		}
	}
}

// Canonical builds the comparable outcome string from a run result:
// sorted sample results plus the sample finish order.
func Canonical(res *core.Result) string {
	frags := strings.Split(res.Outcome, ";")
	sort.Strings(frags)
	names := map[string]bool{}
	for _, s := range Samples() {
		names[s.Name] = true
	}
	var order []string
	for _, n := range res.FinishOrder {
		if names[n] {
			order = append(order, n)
		}
	}
	return strings.Join(frags, ";") + "|" + strings.Join(order, ",")
}

// Distribution counts canonical outcomes over a campaign.
type Distribution map[string]int

// Add records one run.
func (d Distribution) Add(res *core.Result) {
	d[Canonical(res)]++
}

// Distinct returns the number of different outcomes observed.
func (d Distribution) Distinct() int { return len(d) }

// Runs returns the total number of recorded runs.
func (d Distribution) Runs() int {
	n := 0
	for _, c := range d {
		n += c
	}
	return n
}

// Entropy returns the Shannon entropy of the outcome distribution in
// bits: the paper's tool-comparison metric made concrete. Higher means
// the tool spread executions over more interleaving classes.
func (d Distribution) Entropy() float64 {
	total := float64(d.Runs())
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range d {
		p := float64(c) / total
		h -= p * math.Log2(p)
	}
	return h
}
