package deadlock

import (
	"strings"
	"testing"
	"time"

	"mtbench/internal/core"
	"mtbench/internal/sched"
)

// analyze runs body under the deterministic baseline (which typically
// does NOT deadlock) and returns the potentials found in the lock
// graph — the point of GoodLock: find the latent cycle in a passing
// run.
func analyze(t *testing.T, body func(core.T)) []Potential {
	t.Helper()
	a := NewAnalyzer()
	res := sched.Run(sched.Config{Strategy: sched.Nonpreemptive(), Listeners: []core.Listener{a}}, body)
	if res.Verdict == core.VerdictDeadlock {
		t.Fatalf("baseline run deadlocked; want a passing run with latent cycle: %v", res)
	}
	return a.Potentials()
}

func TestLockOrderInversionPotential(t *testing.T) {
	pots := analyze(t, func(ct core.T) {
		a := ct.NewMutex("A")
		b := ct.NewMutex("B")
		h1 := ct.Go("ab", func(wt core.T) {
			a.Lock(wt)
			b.Lock(wt)
			b.Unlock(wt)
			a.Unlock(wt)
		})
		h1.Join(ct)
		h2 := ct.Go("ba", func(wt core.T) {
			b.Lock(wt)
			a.Lock(wt)
			a.Unlock(wt)
			b.Unlock(wt)
		})
		h2.Join(ct)
	})
	if len(pots) != 1 {
		t.Fatalf("potentials = %v, want exactly one", pots)
	}
	s := pots[0].String()
	if !strings.Contains(s, "A") || !strings.Contains(s, "B") {
		t.Fatalf("cycle does not mention both locks: %s", s)
	}
}

// TestGateLockSuppression is the GoodLock refinement: the same
// inversion wrapped in a common gate lock G cannot deadlock and must
// not be reported.
func TestGateLockSuppression(t *testing.T) {
	pots := analyze(t, func(ct core.T) {
		g := ct.NewMutex("G")
		a := ct.NewMutex("A")
		b := ct.NewMutex("B")
		h1 := ct.Go("ab", func(wt core.T) {
			g.Lock(wt)
			a.Lock(wt)
			b.Lock(wt)
			b.Unlock(wt)
			a.Unlock(wt)
			g.Unlock(wt)
		})
		h1.Join(ct)
		h2 := ct.Go("ba", func(wt core.T) {
			g.Lock(wt)
			b.Lock(wt)
			a.Lock(wt)
			a.Unlock(wt)
			b.Unlock(wt)
			g.Unlock(wt)
		})
		h2.Join(ct)
	})
	if len(pots) != 0 {
		t.Fatalf("gated inversion reported: %v", pots)
	}
}

// TestSingleThreadNoPotential: one thread using both orders (at
// different times) cannot deadlock with itself.
func TestSingleThreadNoPotential(t *testing.T) {
	pots := analyze(t, func(ct core.T) {
		a := ct.NewMutex("A")
		b := ct.NewMutex("B")
		a.Lock(ct)
		b.Lock(ct)
		b.Unlock(ct)
		a.Unlock(ct)
		b.Lock(ct)
		a.Lock(ct)
		a.Unlock(ct)
		b.Unlock(ct)
	})
	if len(pots) != 0 {
		t.Fatalf("single-thread inversion reported: %v", pots)
	}
}

// TestThreeLockCycle checks cycles longer than two.
func TestThreeLockCycle(t *testing.T) {
	pots := analyze(t, func(ct core.T) {
		a := ct.NewMutex("A")
		b := ct.NewMutex("B")
		c := ct.NewMutex("C")
		pairs := []struct {
			first, second core.Mutex
		}{{a, b}, {b, c}, {c, a}}
		for _, p := range pairs {
			p := p
			h := ct.Go("w", func(wt core.T) {
				p.first.Lock(wt)
				p.second.Lock(wt)
				p.second.Unlock(wt)
				p.first.Unlock(wt)
			})
			h.Join(ct)
		}
	})
	if len(pots) != 1 {
		t.Fatalf("potentials = %v, want the single 3-cycle", pots)
	}
	if len(pots[0].Locks) != 3 {
		t.Fatalf("cycle length = %d, want 3", len(pots[0].Locks))
	}
}

// TestConsistentOrderNoPotential: everyone locking A then B is safe.
func TestConsistentOrderNoPotential(t *testing.T) {
	pots := analyze(t, func(ct core.T) {
		a := ct.NewMutex("A")
		b := ct.NewMutex("B")
		for i := 0; i < 3; i++ {
			h := ct.Go("w", func(wt core.T) {
				a.Lock(wt)
				b.Lock(wt)
				b.Unlock(wt)
				a.Unlock(wt)
			})
			h.Join(ct)
		}
	})
	if len(pots) != 0 {
		t.Fatalf("consistent order reported: %v", pots)
	}
}

// TestTryLockFailureDoesNotPoisonGraph: a failed TryLock never holds
// the lock and must not create edges.
func TestTryLockFailureDoesNotPoisonGraph(t *testing.T) {
	pots := analyze(t, func(ct core.T) {
		a := ct.NewMutex("A")
		b := ct.NewMutex("B")
		h := ct.Go("holder", func(wt core.T) {
			b.Lock(wt)
			wt.Sleep(10 * time.Millisecond) // hold B across main's attempt
			b.Unlock(wt)
		})
		// Block main in virtual time so the holder acquires B first.
		ct.Sleep(1 * time.Millisecond)
		a.Lock(ct)
		if b.TryLock(ct) { // holder still sleeping with B held: must fail
			ct.Failf("TryLock unexpectedly succeeded")
		}
		a.Unlock(ct)
		h.Join(ct)
		h2 := ct.Go("ba", func(wt core.T) {
			b.Lock(wt)
			a.Lock(wt)
			a.Unlock(wt)
			b.Unlock(wt)
		})
		h2.Join(ct)
	})
	// The only A->B evidence is the failed TryLock, which never held B,
	// so no cycle may be reported despite the B->A edge.
	if len(pots) != 0 {
		t.Fatalf("failed trylock created cycle: %v", pots)
	}
}
