// Package deadlock implements deadlock-potential detection from
// execution histories (§2.2: "tools exist which can examine traces for
// evidence of deadlock potentials ... they look for cycles in lock
// graphs", as in Visual Threads and JPaX's GoodLock algorithm).
//
// The Analyzer is a core.Listener: it builds the runtime lock graph —
// an edge l1 -> l2 whenever a thread acquires l2 while holding l1 —
// and reports cycles as deadlock potentials even when the observed run
// completed. The GoodLock gate-lock refinement suppresses cycles whose
// edges are all guarded by a common outer lock, and cycles formed by a
// single thread, both of which cannot deadlock.
//
// Actual deadlocks (all threads blocked) are detected by the runtimes
// themselves; this package finds the latent ones.
package deadlock

import (
	"fmt"
	"sort"
	"strings"

	"mtbench/internal/core"
)

// edgeInstance is one observed "acquired To while holding From", with
// the context needed for the refinement.
type edgeInstance struct {
	thread core.ThreadID
	gates  map[core.ObjectID]bool // all locks held at the acquisition
	loc    core.Location
}

type edgeKey struct {
	from, to core.ObjectID
}

// Potential is a reported deadlock potential: a cycle in the lock
// graph realizable by distinct threads with disjoint gates.
type Potential struct {
	// Locks is the cycle, each entry holding while acquiring the next
	// (the last acquires the first).
	Locks []string
	// Threads are the witnesses, one per edge.
	Threads []core.ThreadID
	// Sites are the acquisition sites, one per edge.
	Sites []core.Location
}

// String renders the potential one-line.
func (p Potential) String() string {
	tids := make([]string, len(p.Threads))
	for i, t := range p.Threads {
		tids[i] = fmt.Sprintf("t%d", t)
	}
	return fmt.Sprintf("lock cycle [%s] by [%s]", strings.Join(p.Locks, " -> "), strings.Join(tids, ","))
}

// Analyzer builds the lock graph online or from a replayed trace.
type Analyzer struct {
	// MaxCycleLen bounds the cycle search (0 = 6). Real deadlocks
	// involve short cycles; the bound keeps the search linear-ish.
	MaxCycleLen int

	held  map[core.ThreadID][]core.ObjectID
	names map[core.ObjectID]string
	edges map[edgeKey][]edgeInstance
}

// NewAnalyzer returns a fresh lock-graph analyzer.
func NewAnalyzer() *Analyzer {
	a := &Analyzer{}
	a.Reset()
	return a
}

// Reset clears all state.
func (a *Analyzer) Reset() {
	a.held = map[core.ThreadID][]core.ObjectID{}
	a.names = map[core.ObjectID]string{}
	a.edges = map[edgeKey][]edgeInstance{}
}

// RunStart implements core.RunObserver: held-lock tracking is per
// execution; the lock graph accumulates across a campaign of runs of
// the same program (object ids are creation-ordered and therefore
// stable across its runs).
func (a *Analyzer) RunStart(core.RunInfo) {
	a.held = map[core.ThreadID][]core.ObjectID{}
}

// RunEnd implements core.RunObserver.
func (a *Analyzer) RunEnd(*core.Result) {}

// OnEvent implements core.Listener.
func (a *Analyzer) OnEvent(ev *core.Event) {
	switch ev.Op {
	case core.OpLock, core.OpRLock:
		if ev.Op == core.OpLock && ev.Value != 1 {
			return // failed TryLock
		}
		a.names[ev.Obj] = ev.Name
		held := a.held[ev.Thread]
		if len(held) > 0 {
			gates := make(map[core.ObjectID]bool, len(held))
			for _, l := range held {
				gates[l] = true
			}
			for _, l := range held {
				if l == ev.Obj {
					continue
				}
				k := edgeKey{from: l, to: ev.Obj}
				a.edges[k] = append(a.edges[k], edgeInstance{
					thread: ev.Thread,
					gates:  gates,
					loc:    ev.Loc,
				})
			}
		}
		a.held[ev.Thread] = append(held, ev.Obj)
	case core.OpUnlock, core.OpRUnlock:
		held := a.held[ev.Thread]
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == ev.Obj {
				a.held[ev.Thread] = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
}

// Potentials enumerates deadlock potentials: cycles in the lock graph
// with an instance assignment using pairwise-distinct threads and
// pairwise-disjoint gate sets (ignoring the cycle's own locks).
func (a *Analyzer) Potentials() []Potential {
	maxLen := a.MaxCycleLen
	if maxLen <= 0 {
		maxLen = 6
	}
	// Adjacency over locks.
	adj := map[core.ObjectID][]core.ObjectID{}
	for k := range a.edges {
		adj[k.from] = append(adj[k.from], k.to)
	}
	for _, next := range adj {
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
	}
	nodes := make([]core.ObjectID, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	var out []Potential
	seen := map[string]bool{}
	var path []core.ObjectID
	onPath := map[core.ObjectID]bool{}

	var dfs func(start, cur core.ObjectID)
	dfs = func(start, cur core.ObjectID) {
		if len(path) > maxLen {
			return
		}
		for _, nxt := range adj[cur] {
			if nxt == start && len(path) >= 2 {
				if p, ok := a.realizable(path); ok {
					key := cycleKey(path)
					if !seen[key] {
						seen[key] = true
						out = append(out, p)
					}
				}
				continue
			}
			// Canonical form: only walk nodes greater than start so
			// each cycle is found once, rooted at its minimum.
			if nxt <= start || onPath[nxt] {
				continue
			}
			path = append(path, nxt)
			onPath[nxt] = true
			dfs(start, nxt)
			onPath[nxt] = false
			path = path[:len(path)-1]
		}
	}
	for _, n := range nodes {
		path = append(path[:0], n)
		onPath = map[core.ObjectID]bool{n: true}
		dfs(n, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// realizable searches for an instance per edge of the cycle such that
// threads are pairwise distinct and gate sets pairwise disjoint
// (excluding the cycle's own locks) — the GoodLock validity test.
func (a *Analyzer) realizable(cycle []core.ObjectID) (Potential, bool) {
	n := len(cycle)
	inCycle := map[core.ObjectID]bool{}
	for _, l := range cycle {
		inCycle[l] = true
	}
	chosen := make([]edgeInstance, n)

	var pick func(i int) bool
	pick = func(i int) bool {
		if i == n {
			return true
		}
		k := edgeKey{from: cycle[i], to: cycle[(i+1)%n]}
		for _, inst := range a.edges[k] {
			if !a.compatible(chosen[:i], inst, inCycle) {
				continue
			}
			chosen[i] = inst
			if pick(i + 1) {
				return true
			}
		}
		return false
	}
	if !pick(0) {
		return Potential{}, false
	}

	p := Potential{}
	for i, l := range cycle {
		p.Locks = append(p.Locks, a.names[l])
		p.Threads = append(p.Threads, chosen[i].thread)
		p.Sites = append(p.Sites, chosen[i].loc)
	}
	return p, true
}

// compatible checks the candidate instance against the already-chosen
// ones: distinct thread, and no shared gate lock outside the cycle.
func (a *Analyzer) compatible(chosen []edgeInstance, cand edgeInstance, inCycle map[core.ObjectID]bool) bool {
	for _, c := range chosen {
		if c.thread == cand.thread {
			return false
		}
		for g := range cand.gates {
			if inCycle[g] {
				continue
			}
			if c.gates[g] {
				return false // common gate lock guards both edges
			}
		}
	}
	return true
}

func cycleKey(cycle []core.ObjectID) string {
	parts := make([]string, len(cycle))
	for i, l := range cycle {
		parts[i] = fmt.Sprintf("%d", l)
	}
	return strings.Join(parts, ",")
}
