// Package repository is the benchmark's program collection (§4,
// component 1): multi-threaded programs with documented bugs, each with
// its bug kind, description, the variables involved (ground truth for
// race-detector accuracy accounting), test drivers (the bodies run
// under either runtime), and annotators for producing the documented
// trace artifacts.
//
// The collection spans the classic concurrency-bug taxonomy the IBM
// benchmark gathered: data races and atomicity violations, lock-order
// deadlocks, lost/misused notifications, order violations
// (sleep-as-synchronization, missing join), livelock, and — important
// for false-alarm measurement — correct programs whose synchronization
// confuses weaker tools.
package repository

import (
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"

	"mtbench/internal/core"
	"mtbench/internal/instrument"
	"mtbench/internal/trace"
)

// SourceDir returns the directory holding this package's sources, so
// the static analyzer can parse the program bodies. It relies on the
// build embedding source paths; analyses require a source checkout.
func SourceDir() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return ""
	}
	return filepath.Dir(file)
}

// BodyFuncName returns the package-level function name implementing
// the program's body (e.g. "accountBody"), which is how static
// analysis results are joined back to registry entries.
func (p *Program) BodyFuncName() string {
	pc := reflect.ValueOf(p.Body).Pointer()
	fn := runtime.FuncForPC(pc)
	if fn == nil {
		return ""
	}
	name := fn.Name()
	if i := len(name) - 1; i > 0 {
		for j := i; j >= 0; j-- {
			if name[j] == '.' {
				return name[j+1:]
			}
		}
	}
	return name
}

// Kind classifies a program's documented defect.
type Kind string

// Bug kinds.
const (
	KindNone      Kind = "none" // correct program (false-alarm bait / baseline)
	KindRace      Kind = "race"
	KindAtomicity Kind = "atomicity-violation"
	KindOrder     Kind = "order-violation"
	KindDeadlock  Kind = "deadlock"
	KindNotify    Kind = "notify"
	KindLivelock  Kind = "livelock"
)

// Params carries per-program integer knobs (thread counts, iteration
// counts) with defaults from the program's metadata.
type Params map[string]int

// Get returns the value of key or def.
func (p Params) Get(key string, def int) int {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// clone returns a copy so callers can override without aliasing.
func (p Params) clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Program is one benchmark entry.
type Program struct {
	// Name is the unique identifier used by the CLI and experiments.
	Name string
	// Synopsis is the one-line description.
	Synopsis string
	// Kind is the documented bug class.
	Kind Kind
	// Doc documents the bug: what goes wrong, under which interleaving,
	// and how it manifests (assertion, deadlock, step limit).
	Doc string
	// BugVars are the shared variables participating in the documented
	// bug — the "is this location involved in a bug" annotation for
	// traces, and the ground truth for counting a race warning as real.
	BugVars []string
	// BenignVars are variables a detector may flag even though the
	// program is correct (e.g. data handed over by ad-hoc
	// synchronization); warnings on them are counted as false alarms.
	BenignVars []string
	// Threads is the nominal thread count (including main) under
	// default parameters, for documentation.
	Threads int
	// Defaults are the default parameters.
	Defaults Params
	// Body is the test driver. It must use only the core.T API and
	// carry its own oracle (Assert); deadlocks are detected by the
	// runtimes.
	Body func(t core.T, p Params)
	// Plan, when non-nil, is the instrumentation plan the dynamic tools
	// attach to every run of this program. Hand-written repository
	// entries leave it nil (instrument everything); programs produced by
	// the rewrite pipeline carry the plan its escape analysis computed,
	// so provably thread-local accesses never reach the scheduler.
	Plan *instrument.Plan
}

// BodyWith binds parameters (defaults overridden by over) into a plain
// runnable body.
func (p *Program) BodyWith(over Params) func(core.T) {
	params := p.Defaults.clone()
	for k, v := range over {
		params[k] = v
	}
	return func(t core.T) { p.Body(t, params) }
}

// HasBug reports whether the program has a documented defect.
func (p *Program) HasBug() bool { return p.Kind != KindNone }

// Annotator returns the trace annotator implementing the benchmark's
// record documentation: why each record exists and whether its
// variable participates in the documented bug.
func (p *Program) Annotator() trace.Annotator {
	bug := make(map[string]bool, len(p.BugVars))
	for _, v := range p.BugVars {
		bug[v] = true
	}
	return func(ev *core.Event) (string, bool) {
		return trace.DefaultWhy(ev), ev.Name != "" && bug[ev.Name]
	}
}

// registry holds all programs, keyed by name.
var registry = map[string]*Program{}

// Register adds a program built outside this package — the hook the
// rewrite pipeline's generated registrations use. Unlike the internal
// init-time path it reports duplicates as errors, so a generated
// package colliding with a hand-written entry (or a double import of
// the same generated package) surfaces as a diagnosable failure
// instead of an init panic deep in the import graph.
func Register(p *Program) error {
	if p == nil || p.Name == "" {
		return fmt.Errorf("repository: Register needs a named program")
	}
	if p.Body == nil {
		return fmt.Errorf("repository: program %q has no body", p.Name)
	}
	if _, dup := registry[p.Name]; dup {
		return fmt.Errorf("repository: duplicate program %q", p.Name)
	}
	registry[p.Name] = p
	return nil
}

// MustRegister is Register for init functions: generated registration
// files call it at import time, where an error has nowhere to go but a
// panic.
func MustRegister(p *Program) *Program {
	if err := Register(p); err != nil {
		panic(err)
	}
	return p
}

// register adds a program at package init; duplicate names are
// programming errors.
func register(p *Program) *Program { return MustRegister(p) }

// All returns every program sorted by name.
func All() []*Program {
	out := make([]*Program, 0, len(registry))
	for _, p := range registry {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Buggy returns the programs with documented defects, sorted by name.
func Buggy() []*Program {
	var out []*Program
	for _, p := range All() {
		if p.HasBug() {
			out = append(out, p)
		}
	}
	return out
}

// Correct returns the defect-free programs, sorted by name.
func Correct() []*Program {
	var out []*Program
	for _, p := range All() {
		if !p.HasBug() {
			out = append(out, p)
		}
	}
	return out
}

// Get returns a program by name.
func Get(name string) (*Program, error) {
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("repository: unknown program %q", name)
	}
	return p, nil
}
