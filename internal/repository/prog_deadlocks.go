package repository

import (
	"mtbench/internal/core"
)

// Small repeated names here are served by smallName (names.go).

// This file holds the deadlock and livelock programs: lock-order
// inversions, dining philosophers (broken and fixed), the gate-lock
// false-positive bait, and a TryLock retry livelock.

// inversionBody is the minimal AB-BA deadlock.
func inversionBody(t core.T, p Params) {
	iters := p.Get("iters", 1)
	a := t.NewMutex("lockA")
	b := t.NewMutex("lockB")
	h1 := t.Go("ab", func(wt core.T) {
		for i := 0; i < iters; i++ {
			a.Lock(wt)
			b.Lock(wt)
			b.Unlock(wt)
			a.Unlock(wt)
		}
	})
	h2 := t.Go("ba", func(wt core.T) {
		for i := 0; i < iters; i++ {
			b.Lock(wt)
			a.Lock(wt)
			a.Unlock(wt)
			b.Unlock(wt)
		}
	})
	h1.Join(t)
	h2.Join(t)
}

var _ = register(&Program{
	Name:     "inversion",
	Synopsis: "two locks acquired in opposite orders (AB-BA deadlock)",
	Kind:     KindDeadlock,
	Doc: `Thread 1 locks A then B; thread 2 locks B then A. If each takes
its first lock before the other takes its second, both block forever.
The controlled runtime reports the wait-for cycle; natively the
watchdog fires. A passing run still leaves the cycle in the lock graph,
which the GoodLock analyzer reports as a potential.`,
	Threads:  3,
	Defaults: Params{"iters": 1},
	Body:     inversionBody,
})

// philosophersBody: every philosopher picks the left fork first — the
// classic symmetric deadlock.
func philosophersBody(t core.T, p Params) {
	n := p.Get("philosophers", 3)
	rounds := p.Get("rounds", 1)
	forks := make([]core.Mutex, n)
	for i := range forks {
		forks[i] = t.NewMutex(smallName("fork", i))
	}
	meals := t.NewInt("meals", 0)
	handles := make([]core.Handle, n)
	for i := range handles {
		i := i
		handles[i] = t.Go(smallName("phil", i), func(wt core.T) {
			left, right := forks[i], forks[(i+1)%n]
			for r := 0; r < rounds; r++ {
				left.Lock(wt) // BUG: everyone grabs left first
				right.Lock(wt)
				meals.Add(wt, 1)
				right.Unlock(wt)
				left.Unlock(wt)
			}
		})
	}
	for _, h := range handles {
		h.Join(t)
	}
	t.Assert(meals.Load(t) == int64(n*rounds), "meals=%d", meals.Load(t))
}

var _ = register(&Program{
	Name:     "philosophers",
	Synopsis: "dining philosophers, all left-handed (cyclic deadlock)",
	Kind:     KindDeadlock,
	Doc: `N philosophers each lock their left fork then their right. If
every philosopher holds a left fork simultaneously the forks form a
cycle and no right fork can ever be acquired. Rare under light
scheduling (each philosopher usually eats quickly), increasingly likely
under noise — the benchmark's standard target for noise-vs-probability
curves — and found deterministically by exploration.`,
	Threads:  4,
	Defaults: Params{"philosophers": 3, "rounds": 1},
	Body:     philosophersBody,
})

// philosophersOrderedBody is the CORRECT resource-ordering fix.
func philosophersOrderedBody(t core.T, p Params) {
	n := p.Get("philosophers", 3)
	rounds := p.Get("rounds", 1)
	forks := make([]core.Mutex, n)
	for i := range forks {
		forks[i] = t.NewMutex(smallName("fork", i))
	}
	meals := t.NewInt("meals", 0)
	handles := make([]core.Handle, n)
	for i := range handles {
		i := i
		handles[i] = t.Go(smallName("phil", i), func(wt core.T) {
			lo, hi := i, (i+1)%n
			if lo > hi {
				lo, hi = hi, lo
			}
			first, second := forks[lo], forks[hi]
			for r := 0; r < rounds; r++ {
				first.Lock(wt) // global fork order: no cycle possible
				second.Lock(wt)
				meals.Add(wt, 1)
				second.Unlock(wt)
				first.Unlock(wt)
			}
		})
	}
	for _, h := range handles {
		h.Join(t)
	}
	t.Assert(meals.Load(t) == int64(n*rounds), "meals=%d", meals.Load(t))
}

var _ = register(&Program{
	Name:     "philosophersfixed",
	Synopsis: "dining philosophers with global fork ordering (correct)",
	Kind:     KindNone,
	Doc: `The resource-ordering fix: forks are always acquired in index
order, so the lock graph is acyclic and deadlock is impossible. Paired
with "philosophers" to check that deadlock detectors separate the two
(no potential may be reported here).`,
	Threads:  4,
	Defaults: Params{"philosophers": 3, "rounds": 1},
	Body:     philosophersOrderedBody,
})

// gatedInversionBody is CORRECT: the AB-BA inversion exists but both
// sides hold a common gate lock, so the interleaving that deadlocks is
// impossible.
func gatedInversionBody(t core.T, p Params) {
	g := t.NewMutex("gate")
	a := t.NewMutex("lockA")
	b := t.NewMutex("lockB")
	h1 := t.Go("ab", func(wt core.T) {
		g.Lock(wt)
		a.Lock(wt)
		b.Lock(wt)
		b.Unlock(wt)
		a.Unlock(wt)
		g.Unlock(wt)
	})
	h2 := t.Go("ba", func(wt core.T) {
		g.Lock(wt)
		b.Lock(wt)
		a.Lock(wt)
		a.Unlock(wt)
		b.Unlock(wt)
		g.Unlock(wt)
	})
	h1.Join(t)
	h2.Join(t)
}

var _ = register(&Program{
	Name:     "gatedinversion",
	Synopsis: "AB-BA inversion guarded by a gate lock (correct)",
	Kind:     KindNone,
	Doc: `Both threads take the same outer gate lock before their
inverted inner acquisitions, so at most one of them is ever inside and
the cycle cannot close. A naive cycle detector reports a potential
here; GoodLock's gate-lock refinement must stay silent. This program
measures deadlock-detector false alarms.`,
	Threads:  3,
	Defaults: Params{},
	Body:     gatedInversionBody,
})

// livelockBody: two polite threads TryLock each other's resource,
// back off, and retry — under an adversarial alternation they starve
// forever.
func livelockBody(t core.T, p Params) {
	retries := p.Get("retries", 100000)
	a := t.NewMutex("resA")
	b := t.NewMutex("resB")
	done := t.NewInt("done", 0)
	polite := func(first, second core.Mutex) func(core.T) {
		return func(wt core.T) {
			for i := 0; i < retries; i++ {
				first.Lock(wt)
				if second.TryLock(wt) {
					done.Add(wt, 1)
					second.Unlock(wt)
					first.Unlock(wt)
					return
				}
				first.Unlock(wt) // back off politely and retry
				wt.Yield()
			}
			wt.Failf("starved after %d retries", retries)
		}
	}
	h1 := t.Go("ab", polite(a, b))
	h2 := t.Go("ba", polite(b, a))
	h1.Join(t)
	h2.Join(t)
	t.Assert(done.Load(t) == 2, "done=%d", done.Load(t))
}

var _ = register(&Program{
	Name:     "livelock",
	Synopsis: "polite TryLock retry loop that can starve forever",
	Kind:     KindLivelock,
	Doc: `Each thread locks its own resource, tries the other's with
TryLock, and backs off on failure. No thread ever blocks — so no
deadlock — but under a schedule that keeps the two threads in
lockstep, every TryLock fails and both spin forever. Manifests as the
retry-budget oracle firing, or as a step-limit verdict under an
adversarial controlled schedule. The deterministic baseline finishes
instantly.`,
	BugVars:  nil,
	Threads:  3,
	Defaults: Params{"retries": 100000},
	Body:     livelockBody,
})
