package repository

import (
	"strings"
	"testing"
	"time"

	"mtbench/internal/core"
	"mtbench/internal/explore"
	"mtbench/internal/native"
	"mtbench/internal/noise"
	"mtbench/internal/sched"
)

// TestRegistryIntegrity checks the collection's metadata obligations:
// enough programs, documentation on every entry, ground-truth variables
// on the racy ones.
func TestRegistryIntegrity(t *testing.T) {
	all := All()
	if len(all) < 20 {
		t.Fatalf("repository has %d programs, want >= 20", len(all))
	}
	if len(Buggy()) < 15 {
		t.Fatalf("repository has %d buggy programs, want >= 15", len(Buggy()))
	}
	if len(Correct()) < 4 {
		t.Fatalf("repository has %d correct programs, want >= 4", len(Correct()))
	}
	for _, p := range all {
		if p.Synopsis == "" || p.Doc == "" {
			t.Errorf("%s: missing documentation", p.Name)
		}
		if p.Body == nil {
			t.Errorf("%s: missing body", p.Name)
		}
		if p.Threads < 2 && p.Name != "multiout" {
			t.Errorf("%s: not multi-threaded (%d)", p.Name, p.Threads)
		}
		if p.Kind == KindRace && len(p.BugVars) == 0 {
			t.Errorf("%s: race program without ground-truth BugVars", p.Name)
		}
		if !p.HasBug() && len(p.BugVars) != 0 {
			t.Errorf("%s: correct program with BugVars", p.Name)
		}
	}
	if _, err := Get("account"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("no-such-program"); err == nil {
		t.Fatal("Get of unknown program succeeded")
	}
}

// baselineExpectation is the documented behaviour under the
// deterministic run-to-block scheduler: the paper's §1 claim is that
// unit-test scheduling hides concurrency bugs, and the repository
// makes it measurable. Two programs are documented exceptions.
var baselineExpectation = map[string]core.Verdict{
	"barrier":       core.VerdictDeadlock, // laps deterministically under run-to-block
	"forgottenjoin": core.VerdictFail,     // main wins the race deterministically
}

func TestBaselineBehaviour(t *testing.T) {
	for _, p := range All() {
		res := sched.Run(sched.Config{Name: p.Name}, p.BodyWith(nil))
		want, special := baselineExpectation[p.Name]
		if !special {
			want = core.VerdictPass
		}
		if res.Verdict != want {
			t.Errorf("%s: baseline verdict %v, want %v (%v)", p.Name, res.Verdict, want, res)
		}
	}
}

// TestCorrectProgramsPassUnderAdversity: the defect-free programs must
// pass under heavy random scheduling and noise — any failure would be
// a framework or program bug poisoning the false-alarm accounting.
func TestCorrectProgramsPassUnderAdversity(t *testing.T) {
	for _, p := range Correct() {
		body := p.BodyWith(nil)
		for seed := int64(0); seed < 15; seed++ {
			if res := sched.Run(sched.Config{Strategy: sched.Random(seed), Name: p.Name}, body); res.Verdict != core.VerdictPass {
				t.Fatalf("%s: random seed %d: %v", p.Name, seed, res)
			}
			st := noise.NewStrategy(nil, noise.NewBernoulli(0.4, noise.KindMixed), seed)
			if res := sched.Run(sched.Config{Strategy: st, Name: p.Name}, body); res.Verdict != core.VerdictPass {
				t.Fatalf("%s: noise seed %d: %v", p.Name, seed, res)
			}
		}
	}
}

// finder describes how each documented bug is expected to be found.
type finder struct {
	params Params
	// heuristic for noise-based search (nil = use exploration).
	heuristic func() noise.Heuristic
	seeds     int64
	timeouts  bool // exploration needs timeout branching
}

var finders = map[string]finder{
	"account":         {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 200},
	"wronglock":       {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 200},
	"checkthenact":    {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 200},
	"transfer":        {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 200},
	"dcl":             {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 200},
	"statmax":         {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 200},
	"rwcache":         {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 200},
	"inversion":       {heuristic: func() noise.Heuristic { return noise.SyncNoise(0.5) }, seeds: 200},
	"philosophers":    {heuristic: func() noise.Heuristic { return noise.SyncNoise(0.5) }, seeds: 200},
	"signalnotall":    {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 300},
	"waitnotinloop":   {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 300},
	"workqueue":       {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 300},
	"sleepsync":       {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.5, noise.KindSleep) }, seeds: 300},
	"lostnotify":      {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.5, noise.KindSleep) }, seeds: 300},
	"forgottenjoin":   {heuristic: func() noise.Heuristic { return noise.None() }, seeds: 1},
	"barrier":         {heuristic: func() noise.Heuristic { return noise.None() }, seeds: 1},
	"livelock":        {params: Params{"retries": 4}},
	"bankwithdraw":    {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 200},
	"semaphore":       {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 300},
	"onecond":         {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 400},
	"lazyinit":        {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 200},
	"abastack":        {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 300},
	"semleak":         {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 200},
	"rwupgrade":       {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 200},
	"waitholdinglock": {heuristic: func() noise.Heuristic { return noise.NewBernoulli(0.4, noise.KindYield) }, seeds: 200},
}

// TestEveryBugFindable is the repository's core guarantee: each
// documented bug manifests under some stock tool configuration. Noise
// search for the probabilistic ones, exploration for the ones needing
// a precisely adversarial schedule.
func TestEveryBugFindable(t *testing.T) {
	for _, p := range Buggy() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			f, ok := finders[p.Name]
			if !ok {
				t.Fatalf("no finder registered for %s", p.Name)
			}
			body := p.BodyWith(f.params)
			if f.heuristic == nil {
				res := explore.Explore(explore.Options{
					MaxSchedules:    20000,
					StopAtFirstBug:  true,
					ExploreTimeouts: f.timeouts,
					Name:            p.Name,
				}, body)
				if res.Err != nil {
					t.Fatal(res.Err)
				}
				if len(res.Bugs) == 0 {
					t.Fatalf("exploration missed the bug in %d schedules", res.Schedules)
				}
				return
			}
			for seed := int64(0); seed < f.seeds; seed++ {
				st := noise.NewStrategy(nil, f.heuristic(), seed)
				res := sched.Run(sched.Config{Strategy: st, Name: p.Name, MaxSteps: 200000}, body)
				if res.Verdict.Bug() {
					return
				}
			}
			t.Fatalf("noise never exposed the bug in %d seeds", f.seeds)
		})
	}
}

// TestAnnotatorMarksBugVars checks the trace annotation ground truth.
func TestAnnotatorMarksBugVars(t *testing.T) {
	p, err := Get("account")
	if err != nil {
		t.Fatal(err)
	}
	ann := p.Annotator()
	why, bug := ann(&core.Event{Op: core.OpWrite, Name: "balance"})
	if !bug || why == "" {
		t.Fatalf("balance access not marked: why=%q bug=%v", why, bug)
	}
	_, bug = ann(&core.Event{Op: core.OpWrite, Name: "unrelated"})
	if bug {
		t.Fatal("unrelated variable marked as bug-involved")
	}
}

// TestProgramsRunNatively smoke-tests that repository bodies work on
// the native runtime too: a correct program passes, and a deadlocking
// program times out rather than hanging the suite.
func TestProgramsRunNatively(t *testing.T) {
	locked, err := Get("lockedcounter")
	if err != nil {
		t.Fatal(err)
	}
	res := native.Run(native.Config{Timeout: 5 * time.Second, Name: locked.Name}, locked.BodyWith(nil))
	if res.Verdict != core.VerdictPass {
		t.Fatalf("lockedcounter native: %v", res)
	}

	barrier, err := Get("barrier")
	if err != nil {
		t.Fatal(err)
	}
	res = native.Run(native.Config{Timeout: 1 * time.Second, Name: barrier.Name}, barrier.BodyWith(nil))
	if res.Verdict == core.VerdictPass {
		// The lapping bug is timing-dependent natively; a pass is
		// possible but the run must at least terminate, which reaching
		// this line proves.
		t.Log("barrier passed natively (timing-dependent)")
	}
}

// TestParamsOverride checks BodyWith parameter plumbing.
func TestParamsOverride(t *testing.T) {
	p, err := Get("account")
	if err != nil {
		t.Fatal(err)
	}
	var events int
	res := sched.Run(sched.Config{
		Listeners: []core.Listener{core.ListenerFunc(func(ev *core.Event) { events++ })},
	}, p.BodyWith(Params{"depositors": 1, "deposits": 1}))
	if res.Verdict != core.VerdictPass {
		t.Fatalf("tiny account: %v", res)
	}
	if res.Threads != 2 {
		t.Fatalf("threads = %d, want 2 (1 depositor + main)", res.Threads)
	}
}

// TestDocsMentionMechanism spot-checks that program docs explain the
// interleaving, not just name the bug.
func TestDocsMentionMechanism(t *testing.T) {
	for _, p := range Buggy() {
		if len(strings.Fields(p.Doc)) < 25 {
			t.Errorf("%s: bug documentation too thin (%d words)", p.Name, len(strings.Fields(p.Doc)))
		}
	}
}

// TestRegisterHook: the external registration hook accepts a new
// program, rejects duplicates with an error (not a panic), and rejects
// anonymous or bodyless entries.
func TestRegisterHook(t *testing.T) {
	p := &Program{
		Name:     "register-hook-probe",
		Synopsis: "test-only entry",
		Kind:     KindNone,
		Body:     func(ct core.T, _ Params) {},
	}
	if err := Register(p); err != nil {
		t.Fatalf("Register: %v", err)
	}
	defer delete(registry, p.Name)

	got, err := Get(p.Name)
	if err != nil || got != p {
		t.Fatalf("Get after Register = %v, %v", got, err)
	}
	if err := Register(p); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate Register error = %v", err)
	}
	if err := Register(&Program{Name: "x"}); err == nil {
		t.Fatal("bodyless program registered")
	}
	if err := Register(&Program{Body: p.Body}); err == nil {
		t.Fatal("anonymous program registered")
	}
}
