package repository

import (
	"mtbench/internal/core"
)

// Small repeated names here are served by smallName (names.go).

// This file holds the repository's larger, service-shaped programs —
// the "larger programs ... with bugs from the field" tier of §4: a
// work-queue service with a shutdown race and a reader/writer cache
// with a lock-downgrade mistake.

// workQueueBody is a miniature task service: a master enqueues units
// of work, N workers drain the queue under a mutex/condvar, and a
// shutdown protocol stops the workers when the work is done. The
// shutdown has two field-typical mistakes (flag written outside the
// lock, Signal instead of Broadcast), so workers can miss the shutdown
// and block forever.
func workQueueBody(t core.T, p Params) {
	workers := p.Get("workers", 3)
	tasks := p.Get("tasks", 6)

	mu := t.NewMutex("qmu")
	nonEmpty := t.NewCond("qcond", mu)
	queued := t.NewInt("queued", 0) // tasks waiting
	processed := t.NewInt("processed", 0)
	stopping := t.NewInt("stopflag", 0)

	var hs []core.Handle
	for i := 0; i < workers; i++ {
		hs = append(hs, t.Go(smallName("worker", i), func(wt core.T) {
			mywork := wt.NewInt("mywork", 0) // per-worker, prunable
			for {
				mu.Lock(wt)
				for queued.Load(wt) == 0 && stopping.Load(wt) == 0 {
					nonEmpty.Wait(wt)
				}
				if queued.Load(wt) == 0 { // stopping and drained
					mu.Unlock(wt)
					return
				}
				queued.Add(wt, -1)
				mu.Unlock(wt)
				processed.Add(wt, 1) // do the "work" outside the lock
				mywork.Add(wt, 1)
			}
		}))
	}

	// Master: enqueue all tasks.
	for i := 0; i < tasks; i++ {
		mu.Lock(t)
		queued.Add(t, 1)
		nonEmpty.Signal(t)
		mu.Unlock(t)
	}

	// Shutdown. BUG 1: the flag is stored without holding the queue
	// lock, so a worker can check the flag, see 0, and park in Wait
	// just as the store happens — the subsequent wakeup is all that
	// saves it. BUG 2: only Signal is used, so at most one parked
	// worker hears about the shutdown; with several workers parked the
	// rest sleep forever.
	stopping.Store(t, 1)
	mu.Lock(t)
	nonEmpty.Signal(t)
	mu.Unlock(t)

	for _, h := range hs {
		h.Join(t)
	}
	t.Assert(processed.Load(t) == int64(tasks),
		"processed=%d want=%d", processed.Load(t), tasks)
}

var _ = register(&Program{
	Name:     "workqueue",
	Synopsis: "task service whose shutdown misses parked workers",
	Kind:     KindNotify,
	Doc: `A master feeds a mutex/condvar work queue drained by N workers,
then shuts down by setting a stop flag and signalling once. Two field
bugs compose: the stop flag is written outside the critical section
(a race with the workers' predicate check), and shutdown uses Signal
rather than Broadcast, waking at most one parked worker. Whenever two
or more workers are parked at shutdown, the others never wake and the
master's join blocks forever. Under light schedules workers rarely
park simultaneously, so the service passes its tests — until it
deadlocks in production. This is the repository's larger "from the
field" specimen: realistic structure (service loop, drain-then-stop
protocol, work outside the lock) with a bug that needs a specific
thread configuration.`,
	BugVars:  []string{"stopflag"},
	Threads:  4,
	Defaults: Params{"workers": 3, "tasks": 6},
	Body:     workQueueBody,
})

// rwCacheBody is a read-mostly cache whose refresh path updates the
// payload while holding only the read lock.
func rwCacheBody(t core.T, p Params) {
	readers := p.Get("readers", 2)
	lookups := p.Get("lookups", 2)

	rw := t.NewRWMutex("cachelock")
	cacheVal := t.NewInt("cacheval", 0)
	cacheVer := t.NewInt("cachever", 0)

	var hs []core.Handle
	for i := 0; i < readers; i++ {
		hs = append(hs, t.Go(smallName("reader", i), func(wt core.T) {
			for j := 0; j < lookups; j++ {
				rw.RLock(wt)
				v := cacheVal.Load(wt)
				ver := cacheVer.Load(wt)
				wt.Assert(v == ver*10,
					"torn cache entry: val=%d ver=%d", v, ver)
				rw.RUnlock(wt)
			}
		}))
	}
	hs = append(hs, t.Go("refresher", func(wt core.T) {
		// BUG: refresh mutates the entry under the read lock — it
		// should take the write lock. Concurrent readers can observe
		// the version/value pair mid-update.
		rw.RLock(wt)
		cacheVer.Add(wt, 1)
		wt.Yield() // the torn window
		cacheVal.Store(wt, cacheVer.Load(wt)*10)
		rw.RUnlock(wt)
	}))
	for _, h := range hs {
		h.Join(t)
	}
}

var _ = register(&Program{
	Name:     "rwcache",
	Synopsis: "cache refresh mutates the entry under a read lock",
	Kind:     KindRace,
	Doc: `Readers take the read lock and check the invariant
value == version*10; the refresher bumps version and value in two steps
— but under the read lock instead of the write lock, so readers run
concurrently with the update and can observe the torn pair. Eraser's
reader/writer refinement catches it statically in one contended run:
the write to cachever holds no write-capable lock. The oracle catches
it dynamically when a reader lands inside the window.`,
	BugVars:  []string{"cacheval", "cachever"},
	Threads:  4,
	Defaults: Params{"readers": 2, "lookups": 2},
	Body:     rwCacheBody,
})
