package repository

import "mtbench/internal/core"

// This file extends the repository with four further field-typical
// specimens added for scenario diversity (the fuzzing experiment E11
// compares tools on targets none of them were tuned on): a lock-free
// stack with an ABA window, a semaphore whose unlocked release fast
// path loses a wakeup, a reader-lock upgrade acting on a stale check,
// and a wait that holds an unrelated lock across the park.

// abaStackBody is a two-node Treiber stack built from CAS on shared
// integers: top holds a node handle (1 or 2; 0 = empty), nextN holds
// node N's successor. Pop reads top and the node's next pointer, then
// CASes top — the classic ABA window: if, between the reads and the
// CAS, another thread pops that node (and more) and pushes it back,
// the CAS still succeeds but installs a stale successor.
func abaStackBody(t core.T, p Params) {
	top := t.NewInt("top", 1)
	next1 := t.NewInt("next1", 2)
	next2 := t.NewInt("next2", 0)
	// Per-node push/pop ledger: a correct stack never pops a node more
	// often than it was pushed.
	pushes1 := t.NewInt("pushes1", 1)
	pushes2 := t.NewInt("pushes2", 1)
	pops1 := t.NewInt("pops1", 0)
	pops2 := t.NewInt("pops2", 0)

	nextOf := func(wt core.T, n int64) core.IntVar {
		if n == 1 {
			return next1
		}
		return next2
	}
	countPop := func(wt core.T, n int64) {
		if n == 1 {
			pops1.Add(wt, 1)
		} else {
			pops2.Add(wt, 1)
		}
	}
	pop := func(wt core.T) int64 {
		for {
			old := top.Load(wt)
			if old == 0 {
				return 0
			}
			nxt := nextOf(wt, old).Load(wt)
			// BUG window: old may be popped and re-pushed here; the CAS
			// below cannot tell.
			if top.CompareAndSwap(wt, old, nxt) {
				countPop(wt, old)
				return old
			}
		}
	}
	push := func(wt core.T, n int64) {
		for {
			old := top.Load(wt)
			nextOf(wt, n).Store(wt, old)
			if top.CompareAndSwap(wt, old, n) {
				if n == 1 {
					pushes1.Add(wt, 1)
				} else {
					pushes2.Add(wt, 1)
				}
				return
			}
		}
	}

	slow := t.Go("slowpop", func(wt core.T) {
		pop(wt)
	})
	churn := t.Go("churn", func(wt core.T) {
		first := pop(wt)
		pop(wt)
		if first != 0 {
			push(wt, first) // same handle back on top: the "A" of ABA
		}
	})
	slow.Join(t)
	churn.Join(t)
	// Drain whatever is left and check the ledger.
	for pop(t) != 0 {
	}
	t.Assert(pops1.Load(t) <= pushes1.Load(t) && pops2.Load(t) <= pushes2.Load(t),
		"ABA double-pop: node1 %d/%d node2 %d/%d pops/pushes",
		pops1.Load(t), pushes1.Load(t), pops2.Load(t), pushes2.Load(t))
}

var _ = register(&Program{
	Name:     "abastack",
	Synopsis: "lock-free two-node stack with an ABA pop window",
	Kind:     KindAtomicity,
	Doc: `A Treiber stack over CAS: pop reads the top handle and its next
pointer, then CASes top from the old handle to the stale next. If the
churn thread pops that node and the one below it and pushes the first
back while the slow popper is parked inside the window, the CAS
succeeds — same handle on top — but installs a successor that was
already popped. The drain then pops that node a second time and the
per-node push/pop ledger catches it. Sequentially (and under the
run-to-block baseline) every CAS is immediate and the stack is
correct; only a preemption inside the read-read-CAS window exposes
the bug, and no lock is involved anywhere for a lockset detector to
reason about.`,
	BugVars:  []string{"top", "next1", "next2"},
	Threads:  3,
	Defaults: Params{},
	Body:     abaStackBody,
})

// semLeakBody is a one-permit semaphore whose release skips the
// condvar entirely when it observes no waiters — but observes them
// without the lock, racing the acquirer's check-then-park sequence.
func semLeakBody(t core.T, p Params) {
	permits := t.NewInt("permits", 0) // main holds the permit initially
	waiters := t.NewInt("semwaiters", 0)
	mu := t.NewMutex("semmu")
	cv := t.NewCond("semcv", mu)

	worker := t.Go("acquirer", func(wt core.T) {
		mu.Lock(wt)
		for permits.Load(wt) == 0 {
			waiters.Add(wt, 1)
			cv.Wait(wt)
			waiters.Add(wt, -1)
		}
		permits.Add(wt, -1)
		mu.Unlock(wt)
	})

	// Release the permit. BUG: the no-waiter fast path reads the waiter
	// count without the lock, so it can run between the acquirer's
	// predicate check and its park — the permit is published, the
	// signal is skipped, and the acquirer sleeps on an available
	// permit forever.
	permits.Add(t, 1)
	if waiters.Load(t) > 0 {
		mu.Lock(t)
		cv.Signal(t)
		mu.Unlock(t)
	}
	worker.Join(t)
	t.Assert(permits.Load(t) == 0, "permit leaked: %d", permits.Load(t))
}

var _ = register(&Program{
	Name:     "semleak",
	Synopsis: "semaphore release skips the signal on an unlocked waiter check",
	Kind:     KindNotify,
	Doc: `The acquirer checks permits under the lock, registers as a waiter
and parks; Wait releases the mutex atomically. The releaser, to "avoid
an unnecessary lock acquisition", increments the permit count and reads
the waiter count without the mutex. Interleaved between the acquirer's
failed predicate check and its registration, the releaser sees zero
waiters, skips the signal, and returns — leaving one available permit
and one waiter parked forever. Manifests as deadlock at main's join.
Under the run-to-block baseline main releases before the acquirer ever
runs, so the fast path is correct and the test passes.`,
	BugVars:  []string{"semwaiters", "permits"},
	Threads:  2,
	Defaults: Params{},
	Body:     semLeakBody,
})

// rwUpgradeBody: readers decide under the read lock that a shared
// resource needs (re)building, release, and re-acquire the write lock
// to build it — without re-validating the decision after the upgrade.
func rwUpgradeBody(t core.T, p Params) {
	upgraders := p.Get("upgraders", 2)
	rw := t.NewRWMutex("cfglock")
	built := t.NewInt("cfgbuilt", 0)
	builds := t.NewInt("cfgbuilds", 0)

	handles := make([]core.Handle, upgraders)
	for i := range handles {
		handles[i] = t.Go("upgrader", func(wt core.T) {
			rw.RLock(wt)
			needs := built.Load(wt) == 0
			rw.RUnlock(wt)
			// BUG: the decision is stale once the read lock is gone; a
			// correct upgrade re-checks under the write lock.
			if needs {
				rw.Lock(wt)
				builds.Add(wt, 1)
				built.Store(wt, 1)
				rw.Unlock(wt)
			}
		})
	}
	for _, h := range handles {
		h.Join(t)
	}
	t.Assert(builds.Load(t) == 1, "resource built %d times", builds.Load(t))
}

var _ = register(&Program{
	Name:     "rwupgrade",
	Synopsis: "read-lock check acted on after upgrading to the write lock",
	Kind:     KindAtomicity,
	Doc: `Each upgrader checks "not built yet" under the read lock, drops
it, and re-acquires the write lock to build — the classic lock-upgrade
atomicity violation. Because read locks are shared, two upgraders can
both pass the check before either takes the write lock; both then
build, serialized but duplicated, and the build counter hits 2. Every
access is lock-protected (no data race, lockset detectors stay silent)
and the baseline scheduler runs each upgrader to completion in turn,
so only an interleaving tool exposes the duplicated build.`,
	BugVars:  []string{"cfgbuilt", "cfgbuilds"},
	Threads:  3,
	Defaults: Params{"upgraders": 2},
	Body:     rwUpgradeBody,
})

// waitHoldingLockBody: a consumer parks on a condition variable while
// holding a second, unrelated lock that the producer needs on its way
// to the signal. Wait releases only the condvar's own mutex.
func waitHoldingLockBody(t core.T, p Params) {
	mu := t.NewMutex("cvmu")
	cv := t.NewCond("readycv", mu)
	reg := t.NewMutex("regmu") // the "registry" lock both sides touch
	ready := t.NewInt("ready", 0)
	consumed := t.NewInt("consumed", 0)

	consumer := t.Go("consumer", func(wt core.T) {
		reg.Lock(wt) // BUG: held across the park below
		mu.Lock(wt)
		for ready.Load(wt) == 0 {
			cv.Wait(wt) // releases mu, NOT reg
		}
		consumed.Add(wt, 1)
		mu.Unlock(wt)
		reg.Unlock(wt)
	})

	// Producer path: update the registry, then publish and signal.
	reg.Lock(t)
	reg.Unlock(t)
	mu.Lock(t)
	ready.Store(t, 1)
	cv.Signal(t)
	mu.Unlock(t)
	consumer.Join(t)
	t.Assert(consumed.Load(t) == 1, "consumed=%d", consumed.Load(t))
}

var _ = register(&Program{
	Name:     "waitholdinglock",
	Synopsis: "condvar wait parks while holding an unrelated lock",
	Kind:     KindDeadlock,
	Doc: `The consumer takes the registry lock, then the condvar's mutex,
and parks waiting for the ready flag. Wait atomically releases the
condvar's mutex — but not the registry lock, which rides along into
the park. The producer must pass through the registry lock before it
can publish and signal, so if the consumer parks first the producer
blocks on the registry forever: a deadlock between a lock and a
condition variable that no lock-order analysis sees (there is only one
ordering of the two mutexes). Under the run-to-block baseline main
races through the registry before the consumer starts, so the test
passes; any schedule that lets the consumer park first deadlocks.`,
	BugVars:  []string{"ready"},
	Threads:  2,
	Defaults: Params{},
	Body:     waitHoldingLockBody,
})
