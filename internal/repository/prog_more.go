package repository

import (
	"mtbench/internal/core"
)

// Small repeated names here are served by smallName (names.go).

// This file extends the repository with further classic patterns: a
// TOCTOU overdraft, a condvar-based semaphore with the if/while bug, a
// two-stage pipeline with a missed inter-stage signal, lazy
// initialization through a reference cell, and a correct ticket lock
// built from atomics (user-implemented synchronization bait).

// bankWithdrawBody: check-balance-then-withdraw where the check and
// the debit are separate critical sections — concurrent withdrawals
// overdraft.
func bankWithdrawBody(t core.T, p Params) {
	withdrawers := p.Get("withdrawers", 2)
	amount := int64(p.Get("amount", 60))
	balance := t.NewInt("funds", 100)
	mu := t.NewMutex("acctmu")
	handles := make([]core.Handle, withdrawers)
	for i := range handles {
		handles[i] = t.Go("withdrawer", func(wt core.T) {
			mu.Lock(wt)
			enough := balance.Load(wt) >= amount
			mu.Unlock(wt)
			if enough { // BUG: decision is stale once the lock is gone
				mu.Lock(wt)
				balance.Store(wt, balance.Load(wt)-amount)
				mu.Unlock(wt)
			}
		})
	}
	for _, h := range handles {
		h.Join(t)
	}
	got := balance.Load(t)
	t.Assert(got >= 0, "overdraft: balance=%d", got)
}

var _ = register(&Program{
	Name:     "bankwithdraw",
	Synopsis: "balance check and debit in separate critical sections (overdraft)",
	Kind:     KindAtomicity,
	Doc: `Each withdrawer checks funds >= amount under the lock, releases
it, then debits under a second acquisition. Two withdrawers of 60 from
100 can both pass the check and drive the balance to -20. Like
"checkthenact" every access is individually locked — race detectors
stay silent — but the business invariant needs the check and the act
in one atomic step. A two-withdrawer, one-preemption bug that
exploration finds in a handful of schedules.`,
	BugVars:  []string{"funds"},
	Threads:  3,
	Defaults: Params{"withdrawers": 2, "amount": 60},
	Body:     bankWithdrawBody,
})

// semaphoreBody: a counting semaphore built on a condition variable,
// with the waiter re-checking via `if` — two waiters woken by two
// releases can both pass a one-permit check window.
func semaphoreBody(t core.T, p Params) {
	acquirers := p.Get("acquirers", 2)
	permits := t.NewInt("permits", 0)
	mu := t.NewMutex("semmu")
	cv := t.NewCond("semcv", mu)

	handles := make([]core.Handle, acquirers)
	for i := range handles {
		handles[i] = t.Go("acquirer", func(wt core.T) {
			mu.Lock(wt)
			if permits.Load(wt) == 0 { // BUG: must be while
				cv.Wait(wt)
			}
			v := permits.Add(wt, -1)
			wt.Assert(v >= 0, "semaphore underflow: permits=%d", v)
			mu.Unlock(wt)
		})
	}
	// Release one permit, then broadcast (a sloppy implementation that
	// wakes everyone on any release).
	mu.Lock(t)
	permits.Add(t, 1)
	cv.Broadcast(t)
	mu.Unlock(t)
	// Second permit a little later.
	mu.Lock(t)
	permits.Add(t, 1)
	cv.Broadcast(t)
	mu.Unlock(t)
	for _, h := range handles {
		h.Join(t)
	}
}

var _ = register(&Program{
	Name:     "semaphore",
	Synopsis: "condvar semaphore whose waiters re-check with if",
	Kind:     KindNotify,
	Doc: `A counting semaphore: acquirers wait while permits == 0,
releases broadcast. The waiters re-check the permit count with "if"
instead of "while", so when one release's broadcast wakes two parked
acquirers, both decrement and the count underflows. Structurally the
same defect class as "waitnotinloop" but in a reusable-synchronizer
shape — the kind of code the paper expects students to write and test
tools to vet.`,
	BugVars:  []string{"permits"},
	Threads:  3,
	Defaults: Params{"acquirers": 2},
	Body:     semaphoreBody,
})

// oneCondBody: a bounded buffer whose producers and consumers share a
// single condition variable and wake with Signal. A "space free"
// signal can land on a parked producer (or "item ready" on a parked
// consumer), which re-checks its own predicate, parks again, and the
// wakeup is consumed without informing the thread that needed it.
func oneCondBody(t core.T, p Params) {
	producers := p.Get("producers", 2)
	consumers := p.Get("consumers", 2)
	capacity := int64(p.Get("capacity", 1))

	mu := t.NewMutex("bufmu")
	cv := t.NewCond("onecv", mu) // BUG: one condvar for two predicates
	count := t.NewInt("items", 0)
	moved := t.NewInt("moved", 0)

	var hs []core.Handle
	for i := 0; i < producers; i++ {
		hs = append(hs, t.Go(smallName("prod", i), func(wt core.T) {
			mu.Lock(wt)
			for count.Load(wt) >= capacity {
				cv.Wait(wt)
			}
			count.Add(wt, 1)
			cv.Signal(wt) // BUG: may wake another producer
			mu.Unlock(wt)
		}))
	}
	for i := 0; i < consumers; i++ {
		hs = append(hs, t.Go(smallName("cons", i), func(wt core.T) {
			mu.Lock(wt)
			for count.Load(wt) == 0 {
				cv.Wait(wt)
			}
			count.Add(wt, -1)
			moved.Add(wt, 1)
			cv.Signal(wt) // BUG: may wake another consumer
			mu.Unlock(wt)
		}))
	}
	for _, h := range hs {
		h.Join(t)
	}
	t.Assert(moved.Load(t) == int64(producers), "moved=%d want=%d", moved.Load(t), producers)
}

var _ = register(&Program{
	Name:     "onecond",
	Synopsis: "producers and consumers share one condvar and Signal",
	Kind:     KindNotify,
	Doc: `A capacity-1 buffer with two producers and two consumers parked
on a single condition variable. Signal wakes the FIFO head, which can
be a same-class waiter: a producer's "item ready" can wake the other
producer, which re-checks "buffer full", parks again, and the wakeup
is consumed — the consumer that needed it sleeps forever and the run
deadlocks. The textbook fixes are separate not-full/not-empty
condition variables (see "boundedbuffer") or Broadcast. Whether the
wrong-class wakeup happens depends entirely on who is parked when each
Signal fires, making this a pure wakeup-ordering bug for dispatch
randomness to find.`,
	BugVars:  []string{"items"},
	Threads:  5,
	Defaults: Params{"producers": 2, "consumers": 2, "capacity": 1},
	Body:     oneCondBody,
})

// lazyInitBody: a reference cell initialized lazily by whoever needs
// it first, with a check-then-create window that loses one thread's
// cache entry (and exposes readers to nil during publication).
func lazyInitBody(t core.T, p Params) {
	readers := p.Get("readers", 2)
	cache := t.NewRef("cacheref")
	inits := t.NewInt("inits", 0)
	handles := make([]core.Handle, readers)
	for i := range handles {
		handles[i] = t.Go("user", func(wt core.T) {
			if cache.Load(wt) == nil { // BUG: unsynchronized check
				wt.Yield()
				inits.Add(wt, 1) // expensive construction, duplicated
				cache.Store(wt, smallName("resource-", int(wt.ID())))
			}
			got := cache.Load(wt)
			wt.Assert(got != nil, "used nil resource")
		})
	}
	for _, h := range handles {
		h.Join(t)
	}
	n := inits.Load(t)
	t.Assert(n == 1, "lazy init ran %d times", n)
}

var _ = register(&Program{
	Name:     "lazyinit",
	Synopsis: "unsynchronized lazy initialization constructs twice",
	Kind:     KindRace,
	Doc: `Every user checks the cache reference and constructs the
resource if nil. Two users can both see nil and both construct — the
oracle counts constructions. This is the read-check-write race on a
reference cell (the "singleton without locking" idiom), exercising the
RefVar access path of the detectors rather than the integer one.`,
	BugVars:  []string{"cacheref", "inits"},
	Threads:  3,
	Defaults: Params{"readers": 2},
	Body:     lazyInitBody,
})

// ticketLockBody is CORRECT: a ticket lock built from two atomic
// counters protects a plain variable. Lockset detectors see no lock at
// all; happens-before detectors that respect atomics see the
// release/acquire chain through the serving counter.
func ticketLockBody(t core.T, p Params) {
	workers := p.Get("workers", 2)
	iters := p.Get("iters", 2)
	nextTicket := t.NewAtomicInt("nextticket", 0)
	nowServing := t.NewAtomicInt("nowserving", 0)
	counter := t.NewInt("guarded", 0)

	handles := make([]core.Handle, workers)
	for i := range handles {
		handles[i] = t.Go("client", func(wt core.T) {
			for j := 0; j < iters; j++ {
				my := nextTicket.Add(wt, 1) - 1 // take a ticket
				for nowServing.Load(wt) != my { // spin: acquire
					wt.Yield()
				}
				v := counter.Load(wt) // critical section
				counter.Store(wt, v+1)
				nowServing.Add(wt, 1) // release
			}
		})
	}
	for _, h := range handles {
		h.Join(t)
	}
	got := counter.Load(t)
	t.Assert(got == int64(workers*iters), "ticket lock broken: %d", got)
}

var _ = register(&Program{
	Name:     "ticketlock",
	Synopsis: "correct ticket lock from atomics guarding a plain counter",
	Kind:     KindNone,
	Doc: `A ticket lock: take-a-number via one atomic counter, spin on a
second until served, bump it to release. The guarded plain counter is
perfectly protected — by user-implemented synchronization no lockset
detector can see, so Eraser-style tools false-alarm on it, while
happens-before detectors that model atomics as release/acquire stay
silent. Together with "adhocsync" this measures §2.2's claim that "the
ability to detect user implemented synchronization is different".`,
	BenignVars: []string{"guarded"},
	Threads:    3,
	Defaults:   Params{"workers": 2, "iters": 2},
	Body:       ticketLockBody,
})
