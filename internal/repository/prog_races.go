package repository

import "mtbench/internal/core"

// This file holds the race and atomicity-violation programs: the
// load-store races, check-then-act windows, invariant-splitting
// transfers, broken double-checked locking, and the wrong-lock
// variants that Eraser-style detectors were built for.

// accountBody is the canonical bank-account lost update: deposits are
// unsynchronized load-then-store sequences, so concurrent deposits can
// overwrite each other and the final balance comes up short.
func accountBody(t core.T, p Params) {
	depositors := p.Get("depositors", 3)
	deposits := p.Get("deposits", 2)
	balance := t.NewInt("balance", 0)
	handles := make([]core.Handle, depositors)
	for i := range handles {
		handles[i] = t.Go("depositor", func(wt core.T) {
			// Per-depositor bookkeeping: thread-local by construction,
			// so static analysis can prune its probes (E8).
			tally := wt.NewInt("tally", 0)
			for d := 0; d < deposits; d++ {
				v := balance.Load(wt) // read
				balance.Store(wt, v+10)
				tally.Add(wt, 10)
			}
		})
	}
	for _, h := range handles {
		h.Join(t)
	}
	want := int64(depositors * deposits * 10)
	got := balance.Load(t)
	t.Assert(got == want, "lost update: balance=%d want=%d", got, want)
}

var _ = register(&Program{
	Name:     "account",
	Synopsis: "bank account with unsynchronized deposits (lost update)",
	Kind:     KindRace,
	Doc: `Each depositor runs balance = balance + 10 as separate load and
store operations with no lock. If a thread is preempted between its
load and its store, deposits made in between are overwritten and the
final balance is short. Manifests as an assertion failure on the final
balance. The deterministic unit-test scheduler never preempts inside
the window, so the test always passes without noise.`,
	BugVars:  []string{"balance"},
	Threads:  4,
	Defaults: Params{"depositors": 3, "deposits": 2},
	Body:     accountBody,
})

// counterWrongLockBody protects one counter with two different locks:
// each thread is locally disciplined, globally unprotected.
func counterWrongLockBody(t core.T, p Params) {
	iters := p.Get("iters", 3)
	count := t.NewInt("count", 0)
	muA := t.NewMutex("muA")
	muB := t.NewMutex("muB")
	h1 := t.Go("incA", func(wt core.T) {
		for i := 0; i < iters; i++ {
			muA.Lock(wt)
			v := count.Load(wt)
			count.Store(wt, v+1)
			muA.Unlock(wt)
		}
	})
	h2 := t.Go("incB", func(wt core.T) {
		for i := 0; i < iters; i++ {
			muB.Lock(wt)
			v := count.Load(wt)
			count.Store(wt, v+1)
			muB.Unlock(wt)
		}
	})
	h1.Join(t)
	h2.Join(t)
	got := count.Load(t)
	t.Assert(got == int64(2*iters), "wrong-lock race: count=%d want=%d", got, 2*iters)
}

var _ = register(&Program{
	Name:     "wronglock",
	Synopsis: "two threads protect one counter with different locks",
	Kind:     KindRace,
	Doc: `Thread A always holds muA while updating count; thread B always
holds muB. Each thread looks disciplined in isolation, but the two
critical sections do not exclude each other, so increments are lost.
This is the textbook case where the Eraser lockset goes empty (the
intersection of {muA} and {muB}) while naive inspection sees locks
everywhere.`,
	BugVars:  []string{"count"},
	Threads:  3,
	Defaults: Params{"iters": 3},
	Body:     counterWrongLockBody,
})

// checkThenActBody: the capacity check and the insertion are not
// atomic, so two threads can both pass the check and overflow.
func checkThenActBody(t core.T, p Params) {
	adders := p.Get("adders", 3)
	capacity := int64(p.Get("capacity", 2))
	size := t.NewInt("size", 0)
	mu := t.NewMutex("mu")
	handles := make([]core.Handle, adders)
	for i := range handles {
		handles[i] = t.Go("adder", func(wt core.T) {
			mu.Lock(wt)
			full := size.Load(wt) >= capacity
			mu.Unlock(wt)
			// BUG: decision used after the lock is released.
			if !full {
				mu.Lock(wt)
				size.Store(wt, size.Load(wt)+1)
				mu.Unlock(wt)
			}
		})
	}
	for _, h := range handles {
		h.Join(t)
	}
	got := size.Load(t)
	t.Assert(got <= capacity, "overflow: size=%d capacity=%d", got, capacity)
}

var _ = register(&Program{
	Name:     "checkthenact",
	Synopsis: "capacity check and insert in separate critical sections",
	Kind:     KindAtomicity,
	Doc: `Each adder checks size < capacity under the lock, releases it,
and then inserts under a second lock acquisition. Between the check and
the act other adders may fill the container, so more than capacity
elements are inserted. Every individual access is lock-protected —
lockset detectors stay silent — making this the canonical atomicity
violation that only interleaving-based tools (noise, exploration)
expose.`,
	BugVars:  []string{"size"},
	Threads:  4,
	Defaults: Params{"adders": 3, "capacity": 2},
	Body:     checkThenActBody,
})

// transferBody splits the invariant a+b == total across two locks and
// updates the halves in separate critical sections.
func transferBody(t core.T, p Params) {
	transfers := p.Get("transfers", 2)
	a := t.NewInt("acctA", 100)
	b := t.NewInt("acctB", 100)
	mu := t.NewMutex("mu")
	mover := t.Go("mover", func(wt core.T) {
		for i := 0; i < transfers; i++ {
			mu.Lock(wt)
			a.Store(wt, a.Load(wt)-10)
			mu.Unlock(wt)
			// BUG: the invariant is broken between the two sections.
			mu.Lock(wt)
			b.Store(wt, b.Load(wt)+10)
			mu.Unlock(wt)
		}
	})
	auditor := t.Go("auditor", func(wt core.T) {
		mu.Lock(wt)
		sum := a.Load(wt) + b.Load(wt)
		mu.Unlock(wt)
		wt.Assert(sum == 200, "invariant broken: a+b=%d", sum)
	})
	mover.Join(t)
	auditor.Join(t)
}

var _ = register(&Program{
	Name:     "transfer",
	Synopsis: "two-account transfer with a non-atomic invariant window",
	Kind:     KindAtomicity,
	Doc: `The mover debits account A and credits account B in two separate
critical sections; the auditor observes the invariant a+b == 200 under
the same lock. If the auditor runs between the debit and the credit it
sees the money in flight. All accesses are consistently locked (no data
race), yet the program is wrong — the paper's point that race freedom
is not atomicity.`,
	BugVars:  []string{"acctA", "acctB"},
	Threads:  3,
	Defaults: Params{"transfers": 2},
	Body:     transferBody,
})

// dclBody models broken double-checked locking: the fast-path read of
// the initialized flag is unsynchronized, and the writer publishes the
// flag before the payload.
func dclBody(t core.T, p Params) {
	readers := p.Get("readers", 2)
	value := t.NewInt("value", 0)          // the lazily built object
	initialized := t.NewInt("initflag", 0) // BUG: plain, not atomic
	mu := t.NewMutex("initmu")

	handles := make([]core.Handle, readers)
	for i := range handles {
		handles[i] = t.Go("reader", func(wt core.T) {
			if initialized.Load(wt) == 0 { // unsynchronized fast path
				mu.Lock(wt)
				if initialized.Load(wt) == 0 {
					// BUG: flag published before the payload is built.
					initialized.Store(wt, 1)
					wt.Yield() // widen the construction window
					value.Store(wt, 42)
				}
				mu.Unlock(wt)
			}
			got := value.Load(wt)
			wt.Assert(got == 42, "observed uninitialized singleton: value=%d", got)
		})
	}
	for _, h := range handles {
		h.Join(t)
	}
}

var _ = register(&Program{
	Name:     "dcl",
	Synopsis: "double-checked locking publishing the flag before the payload",
	Kind:     KindOrder,
	Doc: `The classic broken singleton: the initializing thread sets the
"initialized" flag before finishing construction, and readers check the
flag without synchronization. A reader that sees the flag set while
construction is still in progress uses a half-built object. Manifests
as an assertion on the observed payload. The happens-before race
detector also flags the unsynchronized flag/value accesses.`,
	BugVars:  []string{"initflag", "value"},
	Threads:  3,
	Defaults: Params{"readers": 2},
	Body:     dclBody,
})

// adhocSyncBody is CORRECT: it hands data across threads via an atomic
// flag with release/acquire meaning. It exists to measure false
// alarms: lockset tools cannot see this synchronization.
func adhocSyncBody(t core.T, p Params) {
	data := t.NewInt("payload", 0)
	ready := t.NewAtomicInt("readyflag", 0)
	consumer := t.Go("consumer", func(wt core.T) {
		for ready.Load(wt) == 0 {
			wt.Yield()
		}
		got := data.Load(wt)
		wt.Assert(got == 7, "handoff broken: payload=%d", got)
	})
	data.Store(t, 7)
	ready.Store(t, 1) // release: publishes the payload
	consumer.Join(t)
}

var _ = register(&Program{
	Name:     "adhocsync",
	Synopsis: "correct atomic-flag handoff (lockset false-alarm bait)",
	Kind:     KindNone,
	Doc: `The producer writes the payload and then sets an atomic flag;
the consumer spins on the flag before reading the payload. Under
release/acquire semantics this is correct and the assertion never
fails. Lockset detectors, which only understand locks, report the
payload as a race — the benchmark counts that as a false alarm, the
measurement §2.2 asks for ("detecting such synchronization ... will
alleviate much of the problem of false alarms").`,
	BenignVars: []string{"payload"},
	Threads:    2,
	Defaults:   Params{},
	Body:       adhocSyncBody,
})

// lockedCounterBody is CORRECT: the fully locked counter baseline.
func lockedCounterBody(t core.T, p Params) {
	workers := p.Get("workers", 3)
	iters := p.Get("iters", 3)
	count := t.NewInt("count", 0)
	mu := t.NewMutex("mu")
	handles := make([]core.Handle, workers)
	for i := range handles {
		handles[i] = t.Go("inc", func(wt core.T) {
			localops := wt.NewInt("localops", 0) // per-thread, prunable
			for j := 0; j < iters; j++ {
				mu.Lock(wt)
				v := count.Load(wt)
				count.Store(wt, v+1)
				mu.Unlock(wt)
				localops.Add(wt, 1)
			}
		})
	}
	for _, h := range handles {
		h.Join(t)
	}
	got := count.Load(t)
	t.Assert(got == int64(workers*iters), "locked counter wrong: %d", got)
}

var _ = register(&Program{
	Name:     "lockedcounter",
	Synopsis: "correct lock-protected counter (no-bug baseline)",
	Kind:     KindNone,
	Doc: `A counter incremented by several threads, every access under one
mutex. Correct under every interleaving: the baseline for false-alarm
rates (any warning here is false) and for noise-maker overhead
measurements on healthy code.`,
	Threads:  4,
	Defaults: Params{"workers": 3, "iters": 3},
	Body:     lockedCounterBody,
})

// statMaxBody races on a "maximum seen" cell: read-compare-write
// without a lock can go backwards.
func statMaxBody(t core.T, p Params) {
	reporters := p.Get("reporters", 3)
	maxSeen := t.NewInt("maxseen", 0)
	handles := make([]core.Handle, reporters)
	for i := range handles {
		val := int64((i + 1) * 10)
		handles[i] = t.Go("reporter", func(wt core.T) {
			if maxSeen.Load(wt) < val { // read
				maxSeen.Store(wt, val) // write: may overwrite a larger max
			}
		})
	}
	for _, h := range handles {
		h.Join(t)
	}
	got := maxSeen.Load(t)
	want := int64(reporters * 10)
	t.Assert(got == want, "max regressed: maxseen=%d want=%d", got, want)
}

var _ = register(&Program{
	Name:     "statmax",
	Synopsis: "unsynchronized running-maximum update",
	Kind:     KindRace,
	Doc: `Reporters update a shared maximum with an unsynchronized
compare-then-store. A reporter holding a small value can pass the
comparison, get delayed, and then overwrite a larger maximum written in
between — the statistic goes backwards. A one-preemption bug used by
the exploration experiment as an easy target.`,
	BugVars:  []string{"maxseen"},
	Threads:  4,
	Defaults: Params{"reporters": 3},
	Body:     statMaxBody,
})
