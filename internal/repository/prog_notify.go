package repository

import (
	"time"

	"mtbench/internal/core"
)

// This file holds the condition-variable misuse programs: lost
// notifications, signal-instead-of-broadcast, wait outside a loop, and
// the correct bounded buffer they are all variations of.

// lostNotifyBody: the consumer waits unconditionally for a wakeup; the
// producer signals once after "briefly" preparing the work. Java-style
// signals are not sticky, so if the signal fires before the consumer
// parks, the wakeup is lost forever.
func lostNotifyBody(t core.T, p Params) {
	prepUs := p.Get("prepUs", 200)
	mu := t.NewMutex("mu")
	cv := t.NewCond("cv", mu)
	served := t.NewInt("served", 0)
	consumer := t.Go("consumer", func(wt core.T) {
		mu.Lock(wt)
		cv.Wait(wt) // BUG: waits without a predicate
		served.Add(wt, 1)
		mu.Unlock(wt)
	})
	// The producer "prepares" for a while — normally long enough for
	// the consumer to park — and then signals exactly once.
	t.Sleep(time.Duration(prepUs) * time.Microsecond)
	mu.Lock(t)
	cv.Signal(t)
	mu.Unlock(t)
	consumer.Join(t)
	t.Assert(served.Load(t) == 1, "served=%d", served.Load(t))
}

var _ = register(&Program{
	Name:     "lostnotify",
	Synopsis: "signal raced ahead of an unconditional wait",
	Kind:     KindNotify,
	Doc: `The consumer parks on the condition variable with no predicate;
the producer prepares for ~200µs and signals once. Whenever the
producer's preparation finishes before the consumer has parked — a
delayed consumer thread, an early timer — the signal finds no waiter,
is dropped (Java semantics), and the consumer then parks forever.
Manifests as deadlock. Exposing it requires timing freedom: noise that
delays the consumer past the producer's timer (idle-noise in the
controlled runtime, sleep injection natively), or exploration with
timeout branching.`,
	BugVars:  []string{"served"},
	Threads:  2,
	Defaults: Params{"prepUs": 200},
	Body:     lostNotifyBody,
})

// signalNotBroadcastBody: two consumers, producer wakes only one per
// item batch boundary — the second consumer starves.
func signalNotBroadcastBody(t core.T, p Params) {
	mu := t.NewMutex("mu")
	cv := t.NewCond("cv", mu)
	items := t.NewInt("items", 0)
	consumed := t.NewInt("consumed", 0)
	consumer := func(wt core.T) {
		mu.Lock(wt)
		for items.Load(wt) == 0 {
			cv.Wait(wt)
		}
		items.Add(wt, -1)
		consumed.Add(wt, 1)
		mu.Unlock(wt)
	}
	c1 := t.Go("consumer1", consumer)
	c2 := t.Go("consumer2", consumer)
	mu.Lock(t)
	items.Store(t, 2)
	cv.Signal(t) // BUG: two items, one wakeup — should be Broadcast
	mu.Unlock(t)
	c1.Join(t)
	c2.Join(t)
	t.Assert(consumed.Load(t) == 2, "consumed=%d", consumed.Load(t))
}

var _ = register(&Program{
	Name:     "signalnotall",
	Synopsis: "Signal used where Broadcast is required; a waiter starves",
	Kind:     KindNotify,
	Doc: `The producer publishes two items but wakes only one of the two
waiting consumers. The woken consumer takes one item and leaves; the
other consumer is never signalled and waits forever although an item is
available. Manifests as deadlock with one thread parked on the
condition variable. Whether it manifests depends on both consumers
reaching Wait before the producer signals, which is exactly what noise
and exploration control.`,
	BugVars:  []string{"items"},
	Threads:  3,
	Defaults: Params{},
	Body:     signalNotBroadcastBody,
})

// waitNotInLoopBody: a consumer re-checks with `if` instead of `while`;
// with two consumers racing for one item, the late one underflows.
func waitNotInLoopBody(t core.T, p Params) {
	mu := t.NewMutex("mu")
	cv := t.NewCond("cv", mu)
	items := t.NewInt("queue", 0)
	consumer := func(wt core.T) {
		mu.Lock(wt)
		if items.Load(wt) == 0 { // BUG: must be a loop
			cv.Wait(wt)
		}
		// After a wakeup the item may already be gone.
		v := items.Add(wt, -1)
		wt.Assert(v >= 0, "queue underflow: %d", v)
		mu.Unlock(wt)
	}
	c1 := t.Go("consumer1", consumer)
	c2 := t.Go("consumer2", consumer)
	mu.Lock(t)
	items.Store(t, 1)
	cv.Broadcast(t) // everyone parked wakes; only one item exists
	mu.Unlock(t)
	mu.Lock(t)
	items.Add(t, 1)
	cv.Broadcast(t)
	mu.Unlock(t)
	c1.Join(t)
	c2.Join(t)
}

var _ = register(&Program{
	Name:     "waitnotinloop",
	Synopsis: "condition re-checked with if instead of while",
	Kind:     KindNotify,
	Doc: `Both consumers wake from one Broadcast announcing a single item.
The first consumer takes it; the second, having re-checked its
predicate with "if" rather than "while", proceeds anyway and drives the
queue negative. The bug needs both consumers to be parked before the
broadcast — a timing window the baseline scheduler never produces.`,
	BugVars:  []string{"queue"},
	Threads:  3,
	Defaults: Params{},
	Body:     waitNotInLoopBody,
})

// boundedBufferBody is the CORRECT producer/consumer over a bounded
// buffer: while-loop waits, broadcast on every transition.
func boundedBufferBody(t core.T, p Params) {
	producers := p.Get("producers", 2)
	consumers := p.Get("consumers", 2)
	perProducer := p.Get("items", 3)
	capacity := int64(p.Get("capacity", 2))

	mu := t.NewMutex("bufmu")
	notFull := t.NewCond("notfull", mu)
	notEmpty := t.NewCond("notempty", mu)
	count := t.NewInt("bufcount", 0)
	produced := t.NewInt("produced", 0)
	consumed := t.NewInt("consumed", 0)

	total := producers * perProducer
	// Consumers share the total workload.
	perConsumer := total / consumers

	var handles []core.Handle
	for i := 0; i < producers; i++ {
		handles = append(handles, t.Go("producer", func(wt core.T) {
			for j := 0; j < perProducer; j++ {
				mu.Lock(wt)
				for count.Load(wt) >= capacity {
					notFull.Wait(wt)
				}
				count.Add(wt, 1)
				produced.Add(wt, 1)
				notEmpty.Broadcast(wt)
				mu.Unlock(wt)
			}
		}))
	}
	for i := 0; i < consumers; i++ {
		handles = append(handles, t.Go("consumer", func(wt core.T) {
			taken := wt.NewInt("taken", 0) // per-consumer, prunable
			for j := 0; j < perConsumer; j++ {
				mu.Lock(wt)
				for count.Load(wt) == 0 {
					notEmpty.Wait(wt)
				}
				c := count.Add(wt, -1)
				wt.Assert(c >= 0 && c <= capacity, "buffer bounds: %d", c)
				consumed.Add(wt, 1)
				notFull.Broadcast(wt)
				mu.Unlock(wt)
				taken.Add(wt, 1)
			}
		}))
	}
	for _, h := range handles {
		h.Join(t)
	}
	t.Assert(produced.Load(t) == int64(total) && consumed.Load(t) == int64(total),
		"produced=%d consumed=%d want=%d", produced.Load(t), consumed.Load(t), total)
}

var _ = register(&Program{
	Name:     "boundedbuffer",
	Synopsis: "correct bounded producer/consumer buffer",
	Kind:     KindNone,
	Doc: `A textbook-correct bounded buffer: predicates re-checked in
while loops, broadcasts on every state transition, all state under one
lock. Correct under every interleaving; heavy wait/notify traffic makes
it the stress baseline for overheads and synchronization-contention
coverage.`,
	Threads:  5,
	Defaults: Params{"producers": 2, "consumers": 2, "items": 3, "capacity": 2},
	Body:     boundedBufferBody,
})
