package repository

import (
	"time"

	"mtbench/internal/core"
)

// This file holds the order-violation programs: sleep used as
// synchronization, a forgotten join, and an unprotected barrier reuse.

// sleepSyncBody: the main thread sleeps "long enough" for the worker
// to initialize — until a scheduler disagrees about what long enough
// means.
func sleepSyncBody(t core.T, p Params) {
	workMs := p.Get("workMs", 5)
	sleepMs := p.Get("sleepMs", 10)
	config := t.NewInt("config", 0)
	t.Go("initializer", func(wt core.T) {
		// Simulated startup work before publishing the config.
		wt.Sleep(time.Duration(workMs) * time.Millisecond)
		config.Store(wt, 1)
	})
	// BUG: sleeping is not synchronization. Usually 10ms > 5ms and the
	// config is ready; a delayed initializer (noise, load, slow
	// machine) breaks it.
	t.Sleep(time.Duration(sleepMs) * time.Millisecond)
	got := config.Load(t)
	t.Assert(got == 1, "read config before initialization: %d", got)
}

var _ = register(&Program{
	Name:     "sleepsync",
	Synopsis: "sleep used as synchronization with an initializer",
	Kind:     KindOrder,
	Doc: `The main thread sleeps 10ms assuming the initializer (5ms of
work) will have published the configuration by then. Any delay of the
initializer — injected noise before its store, a loaded machine —
breaks the assumption and main reads an uninitialized config. Noise
makers that sleep (not just yield) are the tools that expose it; pure
yield noise cannot stretch the initializer enough, which experiment E1
shows. Also a true data race on config (no happens-before edge).`,
	BugVars:  []string{"config"},
	Threads:  2,
	Defaults: Params{"workMs": 5, "sleepMs": 10},
	Body:     sleepSyncBody,
})

// forgottenJoinBody: main uses the worker's result without joining.
func forgottenJoinBody(t core.T, p Params) {
	chunks := p.Get("chunks", 3)
	result := t.NewInt("result", 0)
	doneCount := t.NewInt("donecount", 0)
	for i := 0; i < chunks; i++ {
		t.Go("summer", func(wt core.T) {
			result.Add(wt, 10)
			doneCount.Add(wt, 1)
		})
	}
	// BUG: no joins; main reads the result as soon as it gets to run.
	got := result.Load(t)
	t.Assert(got == int64(10*chunks), "read before workers finished: %d", got)
}

var _ = register(&Program{
	Name:     "forgottenjoin",
	Synopsis: "result consumed without joining the workers",
	Kind:     KindOrder,
	Doc: `Main forks workers that accumulate into a shared result and then
reads it without joining. Under the run-to-block baseline main keeps
the processor and reads 0 immediately — this is one of the few bugs the
deterministic scheduler finds on its own — while a friendlier schedule
can mask it. Race detectors flag result (no fork/join ordering to the
reads).`,
	BugVars:  []string{"result", "donecount"},
	Threads:  4,
	Defaults: Params{"chunks": 3},
	Body:     forgottenJoinBody,
})

// barrierBody: a hand-rolled two-phase barrier whose reuse lacks a
// generation count, letting fast threads lap slow ones.
func barrierBody(t core.T, p Params) {
	parties := p.Get("parties", 2)
	rounds := p.Get("rounds", 2)
	mu := t.NewMutex("barriermu")
	cv := t.NewCond("barriercv", mu)
	arrived := t.NewInt("arrived", 0)
	phase := t.NewInt("phase", 0)

	handles := make([]core.Handle, parties)
	for i := range handles {
		handles[i] = t.Go("party", func(wt core.T) {
			for r := 0; r < rounds; r++ {
				mu.Lock(wt)
				n := arrived.Add(wt, 1)
				if n == int64(parties) {
					arrived.Store(wt, 0)
					phase.Add(wt, 1)
					cv.Broadcast(wt)
				} else {
					// BUG: waits for "arrived == 0" instead of a
					// generation counter; a thread that re-enters the
					// barrier before this one wakes can re-increment
					// arrived and strand it.
					for arrived.Load(wt) != 0 {
						cv.Wait(wt)
					}
				}
				mu.Unlock(wt)
				wt.Assert(phase.Load(wt) >= int64(r), "barrier phase regressed")
			}
		})
	}
	for _, h := range handles {
		h.Join(t)
	}
	t.Assert(phase.Load(t) == int64(rounds), "phases=%d want=%d", phase.Load(t), rounds)
}

var _ = register(&Program{
	Name:     "barrier",
	Synopsis: "reusable barrier without a generation counter",
	Kind:     KindNotify,
	Doc: `A cyclic barrier that resets its arrival counter but tracks no
generation: a waiter checks "arrived == 0" to detect the phase flip.
A fast thread can start the next round and re-increment arrived before
a slow waiter re-checks, so the slow waiter sees arrived != 0 and waits
for a broadcast that already happened — deadlock on reuse. The classic
reason java.util.concurrent.CyclicBarrier carries a generation object.`,
	BugVars:  []string{"arrived", "phase"},
	Threads:  3,
	Defaults: Params{"parties": 2, "rounds": 2},
	Body:     barrierBody,
})
