package repository

import "strconv"

// The repository bodies name their threads and objects "prefix<i>".
// Formatting those names with fmt.Sprintf on every controlled run is a
// measurable slice of run cost under the exploration engine — the body
// re-executes for every schedule, so a 2-philosopher program pays four
// Sprintf calls (and their allocations) per schedule. smallName serves
// the common small indices from a table precomputed at package init;
// the strings are identical to what Sprintf produced, so schedules,
// outcomes and golden results are unchanged. The tables are read-only
// after init, which makes smallName safe for bodies running
// concurrently on many exploration workers.
var smallNameTables = map[string][]string{}

const smallNameMax = 64

func init() {
	for _, prefix := range []string{
		"fork", "phil", "worker", "reader", "prod", "cons", "resource-",
	} {
		t := make([]string, smallNameMax)
		for i := range t {
			t[i] = prefix + strconv.Itoa(i)
		}
		smallNameTables[prefix] = t
	}
}

// smallName returns prefix followed by the decimal form of i, from the
// precomputed table when available.
func smallName(prefix string, i int) string {
	if t := smallNameTables[prefix]; i >= 0 && i < len(t) {
		return t[i]
	}
	return prefix + strconv.Itoa(i)
}
