// Parallel sharded exploration: a coordinator partitions the DFS
// decision tree into schedule-prefix work items, a pool of workers
// replays each prefix and explores its subtree with the serial DFS
// machinery, and a merge layer aggregates outcomes, deduplicates bugs
// and enforces the global budgets (MaxSchedules, StopAtFirstBug).
//
// The design is work-sharing rather than static partitioning: the
// search starts as one shard (the whole tree), and a worker donates
// the shallowest untried branch of its path whenever other workers are
// starving. Donation removes the branch from the donor, so the shards
// partition the tree — every schedule is executed exactly once, by
// exactly one worker. Replaying a donated prefix costs one program
// execution, the same price the stateless search already pays for
// every schedule, so sharding adds no asymptotic overhead.
//
// With Workers == 1 there is never a starving worker, so no donation
// happens and the exploration order — schedule numbering, bug indices,
// outcome counts — is byte-identical to the serial engine.
package explore

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"mtbench/internal/core"
	"mtbench/internal/sched"
)

// workItem is one shard of the decision tree: the subtree below a
// schedule prefix, plus the sleep set the subtree root inherits from
// the donor's branch node.
type workItem struct {
	prefix []core.ThreadID
	sleep  map[core.ThreadID]bool
}

// coordinator owns the work queue, the global budgets and the merged
// result of a sharded exploration.
type coordinator struct {
	opts    Options
	body    func(core.T)
	workers int

	// mu guards the queue/idle/closed scheduling state; cond signals
	// queue pushes and shutdown.
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*workItem
	idle   int
	closed bool

	// starving counts workers currently waiting for an item; the fast
	// path of needWork reads it without the lock.
	starving atomic.Int32

	// reserved hands out schedule budget slots; executed counts runs
	// actually performed (Result.Schedules and Bug.Index). truncated
	// records that the budget cut the search short.
	reserved  atomic.Int64
	executed  atomic.Int64
	truncated atomic.Bool
	stopping  atomic.Bool

	// resMu guards the merged results.
	resMu    sync.Mutex
	seenBugs map[string]bool
	bugs     []Bug
	outcomes map[string]int
	stats    Stats
	err      error
}

func newCoordinator(opts Options, body func(core.T)) *coordinator {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	c := &coordinator{
		opts:     opts,
		body:     body,
		workers:  workers,
		seenBugs: map[string]bool{},
		outcomes: map[string]int{},
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// run executes the sharded search to completion and merges the result.
func (c *coordinator) run() *Result {
	c.push(&workItem{}) // the root shard: the whole tree
	var wg sync.WaitGroup
	for i := 0; i < c.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker checks out a kit — pooled runner, node free
			// list and, when the state cache is on, the reduction
			// structures (event hasher + canonical-state cache) — reused
			// across every schedule, shard and Explore call (see
			// checkpoint.go). The cache is per-worker: an entry only
			// ever asserts "this worker fully explored an equivalent
			// subtree", which needs no cross-worker locking.
			kit := getKit()
			defer kit.release()
			red := kit.reductionFor(c.opts)
			for {
				item := c.take()
				if item == nil {
					return
				}
				c.exploreItem(kit, red, item)
			}
		}()
	}
	wg.Wait()

	res := &Result{
		Schedules: int(c.executed.Load()),
		Bugs:      c.bugs,
		Outcomes:  c.outcomes,
		Stats:     c.stats,
		Err:       c.err,
	}
	// The tree was fully explored iff no budget truncation and no
	// early stop (first bug, replay divergence) occurred.
	res.Exhausted = c.err == nil && !c.truncated.Load() && !c.stopping.Load()
	slices.SortFunc(res.Bugs, func(a, b Bug) int { return a.Index - b.Index })
	return res
}

// exploreItem runs the DFS over one shard, donating branches to
// starving workers and observing the global budgets. kit and red are
// the calling worker's reusable execution state; any runners the kit
// parks as checkpoints during the shard are abandoned when it ends.
//
// Frontier positioning (Options.Checkpoints): depth-first backtracking
// visits branches consecutively, so before each run the worker looks
// for the deepest retained position that still covers the run's replay
// sequence — a parked checkpoint to resume, or a live branch snapshot
// to fast-forward to — and only falls back to a from-the-root replay
// when neither exists (the first run of a shard). The DFS itself is
// untouched: positioning changes how a run reaches its frontier, never
// which frontier it explores, so bug sets, schedule counts and
// novel-step totals are byte-identical to coast-mode search.
func (c *coordinator) exploreItem(kit *workerKit, red *reduction, item *workItem) {
	e := &explorer{opts: c.opts, prefix: item.prefix, rootSleep: item.sleep, pool: kit.pool, red: red, cutDepth: -1}
	labels := newPhaseLabels(c.opts.ProfileLabels)
	defer func() {
		labels.enter(phaseAbandon)
		kit.abandonCheckpoints()
		labels.exit()
		c.resMu.Lock()
		c.stats.add(e.stats)
		c.resMu.Unlock()
	}()
	st := &dfsStrategy{e: e}
	listeners := c.opts.Listeners
	if red != nil {
		listeners = red.listeners
	}
	cfg := sched.Config{
		Strategy:       st,
		Listeners:      listeners,
		MaxSteps:       c.opts.MaxSteps,
		Name:           c.opts.Name,
		Plan:           c.opts.Plan,
		RecordSchedule: true,
		SkipTiming:     true,
	}
	for {
		if c.stopping.Load() {
			return
		}
		if c.reserved.Add(1) > int64(c.opts.MaxSchedules) {
			c.truncated.Store(true)
			return
		}
		st.depth, st.prefixPre = 0, 0
		st.prefixTB, st.prefixVB = 0, st.prefixVB[:0]
		cfg.FastForward, cfg.FFCheck = nil, nil

		labels.enter(phasePosition)
		// The deepest live branch snapshot on the path is the furthest
		// position a fresh runner can fast-forward to; a parked
		// checkpoint at least that deep beats it (no fast-forward at
		// all). Either way the run arrives at its branch without a
		// single strategy round trip or listener event for the decisions
		// it shares with the previous run.
		snapIdx := -1
		if c.opts.Checkpoints > 0 {
			for i := len(e.path) - 1; i >= 0; i-- {
				if e.path[i].snap != nil {
					snapIdx = i
					break
				}
			}
		}
		var planned []core.ThreadID
		if len(kit.ckpts) > 0 || snapIdx >= 0 {
			planned = kit.plan(e)
		}
		minDepth := 0
		if snapIdx >= 0 {
			minDepth = len(e.prefix) + snapIdx
		}
		ffUsed := false
		var runRes *core.Result
		if ck := kit.takeCheckpoint(planned, minDepth); ck != nil {
			// A parked run already executed this schedule's replay
			// sequence up to the park point: continue it instead of
			// replaying from the root. The strategy's cursor starts past
			// the decisions the parked run consumed, and the hasher
			// resumes from the chains frozen at the park.
			e.stats.CheckpointHits++
			e.stats.RestoredSteps += len(ck.decisions)
			st.depth = len(ck.decisions)
			st.prefixPre = ck.prefixPre
			st.prefixTB = ck.prefixTB
			st.prefixVB = append(st.prefixVB[:0], ck.prefixVB...)
			if red != nil && ck.snap != nil {
				red.hasher.restore(ck.snap)
			}
			kit.spares = append(kit.spares, kit.runner)
			kit.runner = ck.runner
			labels.enter(phaseDrive)
			runRes = kit.runner.Resume()
		} else if snapIdx >= 0 {
			// Fast-forward a fresh pooled runner to the branch: restore
			// the hasher frozen at the node, replay the decisions above
			// it at coast speed (no Pick, no listener fan-out) and verify
			// the position digest on arrival. The strategy's cursor
			// starts at the branch; its first Pick is the phase-2 replay
			// of the branch node's current choice.
			bs := e.path[snapIdx].snap
			e.stats.CheckpointHits++
			e.stats.SnapshotRestores++
			e.stats.RestoredSteps += minDepth
			st.depth = minDepth
			st.prefixPre = e.basePre
			st.prefixTB = e.baseTB
			st.prefixVB = append(st.prefixVB[:0], e.baseVB...)
			red.hasher.restore(&bs.hasher)
			cfg.FastForward = planned[:minDepth]
			cfg.FFCheck = &bs.sched
			ffUsed = true
			labels.enter(phaseDrive)
			runRes = kit.runner.Start(cfg, c.body)
		} else {
			e.stats.CheckpointMisses++
			if red != nil {
				// The hash chains are a pure function of the decision
				// sequence; a from-scratch run replays its prefix from
				// scratch, so the hasher rebuilds from scratch too.
				red.hasher.reset()
			}
			labels.enter(phaseDrive)
			runRes = kit.runner.Start(cfg, c.body)
			if !e.prefixAccounted && e.err == nil {
				// Prefix bound accounting is a pure function of the
				// prefix; capture it from this full replay so
				// fast-forwarded runs (which skip the prefix Picks) can
				// reinstate it.
				e.prefixAccounted = true
				e.basePre, e.baseTB = st.prefixPre, st.prefixTB
				e.baseVB = append(e.baseVB[:0], st.prefixVB...)
			}
		}
		index := int(c.executed.Add(1))
		if runRes == nil {
			// The strategy parked the run at a state-cache cut: the
			// subtree below is proven explored, so the tail is never
			// executed. The suspended runner joins the checkpoint pool
			// and the schedule is counted under the synthetic outcome.
			e.stats.TotalSteps += st.depth
			labels.enter(phasePark)
			kit.park(e, st, red, c.opts.Checkpoints)
			labels.exit()
			c.recordParked()
		} else {
			// Any scheduler steps beyond the decisions this strategy
			// consumed were coasted below a cut — replay tax, not novel
			// work.
			e.stats.TotalSteps += int(runRes.Steps)
			e.lastRunSteps = runRes.Steps
			if tail := runRes.Steps - int64(st.depth); tail > 0 {
				e.stats.ReplayedSteps += int(tail)
			}
			if ffUsed && runRes.Diverged && e.err == nil {
				e.err = fmt.Errorf("explore: nondeterministic program: fast-forward to depth %d diverged", st.depth)
			}
			labels.enter(phaseRecord)
			c.record(kit, runRes, index, e.err)
			labels.exit()
		}
		if c.stopping.Load() {
			return
		}
		for c.needWork() {
			donated, ok := e.split()
			if !ok {
				break
			}
			c.push(donated)
		}
		if !e.backtrack() {
			return // shard exhausted
		}
	}
}

// record merges one run into the global result and triggers the
// global stop on errors and (with StopAtFirstBug) on the first bug.
func (c *coordinator) record(kit *workerKit, runRes *core.Result, index int, runErr error) {
	key := kit.outKey(runRes.Verdict, runRes.Outcome)
	stopFirst := false
	c.resMu.Lock()
	c.outcomes[key]++
	switch {
	case runErr != nil:
		if c.err == nil {
			c.err = runErr
		}
	case runRes.Verdict.Bug():
		// Deduplicate by observable signature (shared with the fuzzer).
		sig := core.BugSignature(runRes)
		if !c.seenBugs[sig] {
			c.seenBugs[sig] = true
			// The run result and its slices live in the worker's pooled
			// runner and are overwritten by its next run; deep-clone
			// everything this bug retains.
			keep := new(core.Result)
			*keep = *runRes
			keep.Schedule = slices.Clone(runRes.Schedule)
			keep.FinishOrder = slices.Clone(runRes.FinishOrder)
			if runRes.Failure != nil {
				f := *runRes.Failure
				keep.Failure = &f
			}
			c.bugs = append(c.bugs, Bug{
				Schedule: keep.Schedule,
				Result:   keep,
				Index:    index,
			})
		}
		stopFirst = c.opts.StopAtFirstBug
	}
	c.resMu.Unlock()
	if runErr != nil || stopFirst {
		c.stop()
	}
}

// recordParked counts a schedule whose run was parked at a state-cache
// cut: it has no verdict (the cut tail never executed), so it lands
// under the synthetic outcome key.
func (c *coordinator) recordParked() {
	c.resMu.Lock()
	c.outcomes["parked:"]++
	c.resMu.Unlock()
}

// stop winds the search down: workers finish their in-flight schedule
// and exit, waiters wake and exit.
func (c *coordinator) stop() {
	c.stopping.Store(true)
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// push enqueues a shard and wakes one waiter.
func (c *coordinator) push(item *workItem) {
	c.mu.Lock()
	c.queue = append(c.queue, item)
	c.cond.Signal()
	c.mu.Unlock()
}

// take dequeues a shard (LIFO, to keep the global order depth-first
// and the queue small) or returns nil when the search is over: stopped,
// or every worker idle with an empty queue (tree exhausted).
func (c *coordinator) take() *workItem {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idle++
	c.starving.Add(1)
	defer func() {
		c.idle--
		c.starving.Add(-1)
	}()
	for {
		if c.closed {
			return nil
		}
		if n := len(c.queue); n > 0 {
			item := c.queue[n-1]
			c.queue = c.queue[:n-1]
			return item
		}
		if c.idle == c.workers {
			c.closed = true
			c.cond.Broadcast()
			return nil
		}
		c.cond.Wait()
	}
}

// needWork reports whether donation would help: some worker is waiting
// and the queue cannot feed them all. The starving fast path keeps the
// serial (Workers == 1) engine lock-free here — a single worker can
// never be starving while it is running.
func (c *coordinator) needWork() bool {
	want := int(c.starving.Load())
	if want == 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.closed && len(c.queue) < want
}
