// Package explore implements systematic state-space exploration (§2.2:
// VeriSoft-style stateless search that "systematically explores the
// state space ... by controlling and observing the execution of all
// the components, and by reinitializing their executions"). Because the
// controlled scheduler makes a run a pure function of its decision
// sequence, exploration is a depth-first search over decision
// sequences: each new schedule re-executes the program from the start,
// following a recorded prefix and then deviating at the deepest
// decision point with untried alternatives.
//
// Whenever an error is detected the offending schedule is saved as a
// replayable scenario, exactly as the paper prescribes.
//
// Two optional prunings keep the search tractable:
//
//   - Preemption bounding (iterative context bounding): deviations
//     that switch away from a runnable thread are limited to a budget.
//     Most real concurrency bugs need very few preemptions, so small
//     bounds find them in exponentially smaller trees. Unsound as a
//     verification method; measured as a search strategy in E5.
//   - Sleep sets: after exploring thread t at a node, siblings need
//     not re-explore threads whose pending operations are independent
//     of t's. Sound for terminating programs.
package explore

import (
	"fmt"

	"mtbench/internal/core"
	"mtbench/internal/sched"
)

// Options configures an exploration.
type Options struct {
	// MaxSchedules bounds how many schedules are executed (0 = 10000).
	MaxSchedules int
	// MaxSteps bounds each run (0 = sched default).
	MaxSteps int64
	// PreemptionBound, when non-nil, limits preemptive switches per
	// schedule (iterative context bounding). Bound(0) explores only
	// non-preemptive schedules; nil explores without a bound.
	PreemptionBound *int
	// SleepSets enables sleep-set pruning.
	SleepSets bool
	// ExploreTimeouts includes "let virtual time pass" (sched.IdleID)
	// among the choices at points where a thread sleeps on a timer,
	// extending the search to timing bugs (sleep-as-synchronization,
	// lost wakeups) at the cost of extra branching.
	ExploreTimeouts bool
	// StopAtFirstBug ends the search at the first non-pass verdict.
	StopAtFirstBug bool
	// Listeners are attached to every run (cumulative tools such as
	// coverage trackers and race detectors work as-is).
	Listeners []core.Listener
	// Name labels runs for RunObserver listeners.
	Name string
}

// Bug is one erroneous schedule found during exploration.
type Bug struct {
	// Schedule replays the bug through sched.FixedSchedule or the
	// replay package.
	Schedule []core.ThreadID
	Result   *core.Result
	// Index is the 1-based number of the schedule that exposed it.
	Index int
}

// Result summarizes an exploration.
type Result struct {
	// Schedules is the number of executions performed.
	Schedules int
	// Exhausted is true when the decision tree was fully explored
	// (within the configured bounds).
	Exhausted bool
	// Bugs are the distinct failures found (deduplicated by verdict
	// and failure message/deadlock).
	Bugs []Bug
	// Outcomes histograms Result.Outcome strings over all schedules.
	Outcomes map[string]int
	// Err is set when the program behaved nondeterministically under
	// replay, which invalidates the search.
	Err error
}

// Bound is a convenience for Options.PreemptionBound.
func Bound(n int) *int { return &n }

// FirstBugIndex returns the schedule number of the first bug (0 if
// none).
func (r *Result) FirstBugIndex() int {
	if len(r.Bugs) == 0 {
		return 0
	}
	return r.Bugs[0].Index
}

// node is one decision point along the current DFS path.
type node struct {
	options []core.ThreadID // runnable threads, exploration order
	curIdx  int             // index into options currently explored
	current core.ThreadID   // thread that was running at this point
	// preBefore is the number of preemptions used before this node.
	preBefore int
	// pendings snapshots each option's pending operation at this node
	// (for sleep-set independence).
	pendings map[core.ThreadID]sched.PendingOp
	// sleep marks options that need not be (re-)explored here.
	sleep map[core.ThreadID]bool
}

func (n *node) chosen() core.ThreadID { return n.options[n.curIdx] }

// isPreemption reports whether this node's current choice switches
// away from a runnable current thread.
func (n *node) isPreemption() bool {
	if n.current == core.NoThread {
		return false
	}
	for _, o := range n.options {
		if o == n.current {
			return n.chosen() != n.current
		}
	}
	return false
}

type explorer struct {
	opts Options
	path []*node
	err  error
}

// dfsStrategy drives one run: replay the path's choices, extend the
// frontier with fresh nodes.
type dfsStrategy struct {
	e     *explorer
	depth int
}

// Name implements sched.Strategy.
func (st *dfsStrategy) Name() string { return "explore-dfs" }

// Pick implements sched.Strategy.
func (st *dfsStrategy) Pick(c *sched.Choice) core.ThreadID {
	e := st.e
	d := st.depth
	st.depth++

	if d < len(e.path) {
		n := e.path[d]
		want := n.chosen()
		if want == sched.IdleID {
			if !c.CanIdle {
				e.err = fmt.Errorf("explore: nondeterministic program: cannot idle at depth %d", d)
				return core.NoThread
			}
			return want
		}
		if !runnableContains(c.Runnable, want) {
			e.err = fmt.Errorf("explore: nondeterministic program: thread %d not runnable at depth %d", want, d)
			return core.NoThread
		}
		return want
	}

	n := e.newNode(c, d)
	e.path = append(e.path, n)
	return n.chosen()
}

// newNode builds the frontier node for choice point c at depth d,
// applying preemption bounding, sleep sets and the exploration order
// (current thread first, so the first descent is the cheap
// nonpreemptive schedule).
func (e *explorer) newNode(c *sched.Choice, d int) *node {
	n := &node{current: c.Current, sleep: map[core.ThreadID]bool{}}

	// Inherit preemption count and sleep set from the parent.
	if d > 0 {
		parent := e.path[d-1]
		n.preBefore = parent.preBefore
		if parent.isPreemption() {
			n.preBefore++
		}
		if e.opts.SleepSets {
			chosenOp := parent.pendings[parent.chosen()]
			for u := range parent.sleep {
				if independent(parent.pendings[u], chosenOp) {
					n.sleep[u] = true
				}
			}
		}
	}

	// Option order: current first (if runnable), then ascending ids.
	curRunnable := false
	for _, id := range c.Runnable {
		if id == c.Current {
			curRunnable = true
		}
	}
	if curRunnable {
		n.options = append(n.options, c.Current)
	}
	for _, id := range c.Runnable {
		if id != c.Current {
			n.options = append(n.options, id)
		}
	}

	// Preemption bound: out of budget means the only choices are
	// non-preemptive ones (the current thread, or anything if the
	// current thread cannot run).
	if e.opts.PreemptionBound != nil && curRunnable && n.preBefore >= *e.opts.PreemptionBound {
		n.options = n.options[:1]
	} else if e.opts.ExploreTimeouts && c.CanIdle {
		// Timing branch: let the pending timer(s) expire before anyone
		// runs. Explored last; counts as a preemption when it delays a
		// runnable current thread.
		n.options = append(n.options, sched.IdleID)
	}

	// Snapshot pending operations for sleep-set computation.
	if e.opts.SleepSets && c.PendingOf != nil {
		n.pendings = make(map[core.ThreadID]sched.PendingOp, len(n.options))
		for _, id := range n.options {
			n.pendings[id] = c.PendingOf(id)
		}
	}

	// Skip initial options that are in the inherited sleep set.
	for n.curIdx < len(n.options)-1 && n.sleep[n.options[n.curIdx]] {
		n.curIdx++
	}
	return n
}

// backtrack advances the deepest node with an untried, non-sleeping
// alternative and truncates the path there; it reports false when the
// tree is exhausted.
func (e *explorer) backtrack() bool {
	for len(e.path) > 0 {
		n := e.path[len(e.path)-1]
		if e.opts.SleepSets {
			// The subtree under the current choice is done: siblings
			// need not re-explore it unless dependent.
			n.sleep[n.chosen()] = true
		}
		for n.curIdx+1 < len(n.options) {
			n.curIdx++
			if !n.sleep[n.options[n.curIdx]] {
				return true
			}
		}
		e.path = e.path[:len(e.path)-1]
	}
	return false
}

// independent reports whether two pending operations commute: they
// touch different objects, or are both reads of the same variable.
// Unknown operations and thread-lifecycle operations are conservatively
// dependent.
func independent(a, b sched.PendingOp) bool {
	if a.Op == core.OpInvalid || b.Op == core.OpInvalid {
		return false
	}
	if a.Op == core.OpFork || a.Op == core.OpJoin || b.Op == core.OpFork || b.Op == core.OpJoin {
		return false
	}
	if a.Op == core.OpYield || a.Op == core.OpSleep || b.Op == core.OpYield || b.Op == core.OpSleep {
		return true
	}
	if a.Name != b.Name {
		return true
	}
	return a.Op == core.OpRead && b.Op == core.OpRead
}

func runnableContains(ids []core.ThreadID, id core.ThreadID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Explore runs the search over body and returns its summary.
func Explore(opts Options, body func(core.T)) *Result {
	if opts.MaxSchedules <= 0 {
		opts.MaxSchedules = 10000
	}
	e := &explorer{opts: opts}
	res := &Result{Outcomes: map[string]int{}}
	seenBugs := map[string]bool{}

	for res.Schedules < opts.MaxSchedules {
		st := &dfsStrategy{e: e}
		runRes := sched.Run(sched.Config{
			Strategy:       st,
			Listeners:      opts.Listeners,
			MaxSteps:       opts.MaxSteps,
			Name:           opts.Name,
			RecordSchedule: true,
		}, body)
		res.Schedules++
		res.Outcomes[runRes.Verdict.String()+":"+runRes.Outcome]++

		if e.err != nil {
			res.Err = e.err
			return res
		}

		if runRes.Verdict.Bug() {
			key := bugKey(runRes)
			if !seenBugs[key] {
				seenBugs[key] = true
				res.Bugs = append(res.Bugs, Bug{
					Schedule: append([]core.ThreadID(nil), runRes.Schedule...),
					Result:   runRes,
					Index:    res.Schedules,
				})
			}
			if opts.StopAtFirstBug {
				return res
			}
		}

		if !e.backtrack() {
			res.Exhausted = true
			return res
		}
	}
	return res
}

// bugKey deduplicates failures by their observable signature.
func bugKey(r *core.Result) string {
	switch {
	case r.Failure != nil:
		return "fail:" + r.Failure.Msg + "@" + r.Failure.Loc.Key()
	case r.Verdict == core.VerdictDeadlock:
		return "deadlock:" + r.DeadlockInfo
	default:
		return r.Verdict.String()
	}
}
