// Package explore implements systematic state-space exploration (§2.2:
// VeriSoft-style stateless search that "systematically explores the
// state space ... by controlling and observing the execution of all
// the components, and by reinitializing their executions"). Because the
// controlled scheduler makes a run a pure function of its decision
// sequence, exploration is a depth-first search over decision
// sequences: each new schedule re-executes the program from the start,
// following a recorded prefix and then deviating at the deepest
// decision point with untried alternatives.
//
// Whenever an error is detected the offending schedule is saved as a
// replayable scenario, exactly as the paper prescribes.
//
// Several optional prunings keep the search tractable:
//
//   - Preemption bounding (iterative context bounding): deviations
//     that switch away from a runnable thread are limited to a budget.
//     Most real concurrency bugs need very few preemptions, so small
//     bounds find them in exponentially smaller trees. Unsound as a
//     verification method; measured as a search strategy in E5.
//   - Variable bounding and thread bounding (Bindal, Bansal and Lal):
//     instead of bounding how many preemptions a schedule may take,
//     bound which state may be involved in them — the number of
//     distinct shared objects whose delayed accesses context switches
//     may interrupt (VariableBound), or the number of distinct threads
//     that may be preempted (ThreadBound). Like the preemption bound,
//     each is unsound as verification and measured as a search regime;
//     unlike it, the bounded tree still admits arbitrarily many
//     preemptions against the bounded set, which is the bug class the
//     per-bound guarantees in Bindal et al. cover.
//   - Sleep sets: after exploring thread t at a node, siblings need
//     not re-explore threads whose pending operations are independent
//     of t's. Sound for terminating programs.
//
// The search is sharded across a worker pool (Options.Workers): the
// decision tree is partitioned into schedule-prefix work items, each
// worker replays its prefix and explores the subtree below it with the
// full per-worker DFS machinery (preemption bounds and sleep sets
// included), and a merge layer aggregates outcomes and deduplicates
// bugs under global budgets. See parallel.go.
package explore

import (
	"fmt"
	"math/bits"
	"slices"

	"mtbench/internal/core"
	"mtbench/internal/instrument"
	"mtbench/internal/sched"
)

// Options configures an exploration.
type Options struct {
	// MaxSchedules bounds how many schedules are executed (0 = 10000).
	// With Workers > 1 it is a global budget shared by all workers.
	MaxSchedules int
	// MaxSteps bounds each run (0 = sched default).
	MaxSteps int64
	// PreemptionBound, when non-nil, limits preemptive switches per
	// schedule (iterative context bounding). Bound(0) explores only
	// non-preemptive schedules; nil explores without a bound.
	PreemptionBound *int
	// VariableBound, when non-nil, limits the number of distinct shared
	// objects whose pending accesses may be interrupted by a preemption
	// along one schedule (Bindal et al.'s variable bounding), keyed on
	// the interned core.Footprint object handles. A preemption "charges"
	// the object the preempted thread was about to access; once the
	// bound's worth of distinct objects has been charged, only
	// preemptions against those same objects remain enabled. Object
	// handle 0 (operations with no named shared object, conservatively
	// dependent with everything) counts as one aliased variable.
	// Bound(0) explores only non-preemptive schedules; nil is unbounded.
	VariableBound *int
	// ThreadBound, when non-nil, limits the number of distinct threads
	// that may be preempted along one schedule (Bindal et al.'s thread
	// bounding). Once the bound's worth of distinct threads has been
	// preempted, only further preemptions of those same threads remain
	// enabled — schedules may still take arbitrarily many preemptions,
	// against a bounded thread set. Threads with ids ≥ 64 are never cut
	// (conservative, matching the sleep-set bitmask limit). Bound(0)
	// explores only non-preemptive schedules; nil is unbounded.
	ThreadBound *int
	// SleepSets enables sleep-set pruning.
	SleepSets bool
	// DPOR enables dynamic partial-order reduction: each node commits
	// to one successor and alternatives are expanded only when a later
	// operation on the path is discovered not to commute with a chosen
	// one (see reduce.go). DPOR implies SleepSets — the two prunings
	// are sound together and the reduction layer maintains both.
	// Reduction never changes the deduplicated bug set (pinned by
	// TestReducedEquivalence over the whole program repository); it
	// does change schedule numbering and outcome histograms, since
	// pruned schedules are never executed.
	DPOR bool
	// StateCache enables canonical-state memoization: scheduler states
	// are hashed (per-thread event chains in conflict order + runnable
	// set + pending-operation handles) into a bounded per-worker
	// direct-mapped cache, and a revisited state's subtree is cut.
	StateCache bool
	// StateCacheSize is the per-worker entry count of the state cache
	// (0 = DefaultStateCacheSize). Collisions overwrite, so a small
	// cache prunes less but is never unsound.
	StateCacheSize int
	// Checkpoints bounds the parked-runner checkpoints each worker may
	// retain (0 = checkpointing off), and turns on frontier positioning
	// as a whole. With checkpointing on, every schedule is positioned
	// from the nearest retained state instead of replayed from the root
	// under full strategy control: each multi-option path node carries a
	// forkable branch snapshot (hasher state + sched position digest),
	// and a fresh pooled runner fast-forwards the branch's decision
	// prefix at coast speed (sched.Config.FastForward), verifying the
	// digest on arrival. A run that reaches a state-cache cut with a
	// long enough expected tail (see ParkTailThreshold) is additionally
	// parked at the cut: its virtual threads stay suspended on their
	// resume channels, the runner joins the worker's checkpoint pool
	// (oldest abandoned beyond the budget, all abandoned at shard end),
	// and a later run whose replay sequence extends the parked prefix
	// resumes it — a parked resume beats a snapshot of equal depth
	// because it skips even the fast-forward. Parked runs never execute
	// their cut tails, so they have no verdict and are counted under the
	// synthetic "parked:" outcome key. Checkpointing therefore changes
	// the outcome histogram (never the bug set, schedule count or
	// novel-step total) and only applies when StateCache is on; leave it
	// 0 for histogram-exact results.
	Checkpoints int
	// ParkTailThreshold tunes the park-versus-coast disposal of runs
	// that reach a state-cache cut (only meaningful with Checkpoints >
	// 0). Parking costs a park+abandon round trip (~2.6µs) where
	// coasting the tail costs ~87ns per step, so parking only pays when
	// the skipped tail is long enough: a run parks when its expected
	// tail (previous completed run's step count minus the cut depth) is
	// at least the threshold. 0 = DefaultParkTailThreshold; negative =
	// always park (PR-6 behaviour, used by tests that pin the "parked:"
	// outcome key). The disposal choice never affects the bug set,
	// schedule count or novel-step total.
	ParkTailThreshold int
	// ProfileLabels attaches runtime/pprof goroutine labels to the
	// driver phases of every worker (position, drive, park, abandon,
	// record — see DESIGN.md for the vocabulary), so CPU profiles split
	// driver overhead from program execution (labelled "vthread" by the
	// scheduler). Off by default: relabeling goroutines several times
	// per schedule is measurable on the exploration hot path.
	ProfileLabels bool
	// ExploreTimeouts includes "let virtual time pass" (sched.IdleID)
	// among the choices at points where a thread sleeps on a timer,
	// extending the search to timing bugs (sleep-as-synchronization,
	// lost wakeups) at the cost of extra branching.
	ExploreTimeouts bool
	// StopAtFirstBug ends the search at the first non-pass verdict.
	// With Workers > 1 the stop is global: in-flight schedules on other
	// workers finish and are counted, then the search winds down.
	StopAtFirstBug bool
	// Workers is the number of parallel search workers (0 =
	// runtime.NumCPU()). Workers == 1 is the exact serial DFS: schedule
	// order, bug indices and outcome counts are deterministic. With
	// more workers the same decision tree is partitioned across
	// goroutines: every schedule is still executed exactly once (sleep
	// sets prune slightly less across shard boundaries), the
	// deduplicated bug set is the same, but schedule numbering depends
	// on worker interleaving.
	Workers int
	// Listeners are attached to every run (cumulative tools such as
	// coverage trackers and race detectors work as-is). With Workers >
	// 1, runs execute concurrently, so listeners must be safe for
	// concurrent use.
	Listeners []core.Listener
	// Name labels runs for RunObserver listeners.
	Name string
	// Plan filters which probes fire in every run (nil = instrument
	// everything). Programs produced by the rewrite pipeline carry a
	// plan from escape analysis; threading it here keeps thread-local
	// accesses out of the schedule space.
	Plan *instrument.Plan
}

// Bug is one erroneous schedule found during exploration.
type Bug struct {
	// Schedule replays the bug through sched.FixedSchedule or the
	// replay package.
	Schedule []core.ThreadID
	Result   *core.Result
	// Index is the 1-based number of the schedule that exposed it.
	Index int
}

// Result summarizes an exploration.
type Result struct {
	// Schedules is the number of executions performed.
	Schedules int
	// Exhausted is true when the decision tree was fully explored
	// (within the configured bounds).
	Exhausted bool
	// Bugs are the distinct failures found (deduplicated by verdict
	// and failure message/deadlock), ordered by Index.
	Bugs []Bug
	// Outcomes histograms Result.Outcome strings over all schedules.
	Outcomes map[string]int
	// Stats reports what the reduction layer pruned (zero when neither
	// DPOR nor StateCache ran).
	Stats Stats
	// Err is set when the program behaved nondeterministically under
	// replay, which invalidates the search.
	Err error
}

// Bound is a convenience for the bound fields of Options
// (PreemptionBound, VariableBound, ThreadBound).
func Bound(n int) *int { return &n }

// FirstBugIndex returns the schedule number of the first bug, or -1
// when no bug was found. (Schedule numbers are 1-based, so -1 is
// unambiguous.)
func (r *Result) FirstBugIndex() int {
	if len(r.Bugs) == 0 {
		return -1
	}
	return r.Bugs[0].Index
}

// node is one decision point along the current DFS path.
type node struct {
	options []core.ThreadID // runnable threads, exploration order
	curIdx  int             // index into options currently explored
	current core.ThreadID   // thread that was running at this point
	// preBefore is the number of preemptions used before this node.
	preBefore int
	// tbMask is the set of threads preempted before this node, as a
	// bitmask (thread-bounding state; ids ≥ 64 are never tracked, so
	// they are never cut). Maintained only while ThreadBound is set.
	tbMask uint64
	// vbObjs is the sorted set of distinct object handles charged by
	// preemptions before this node (variable-bounding state).
	// Maintained only while VariableBound is set.
	vbObjs []uint32
	// fps snapshots each option's pending-operation footprint at this
	// node, index-aligned with options (for sleep-set and DPOR
	// independence). Empty when nothing consumes independence.
	fps []core.Footprint
	// sleep marks options that need not be (re-)explored here.
	sleep map[core.ThreadID]bool

	// DPOR state (nil maps unless Options.DPOR): todo is the backtrack
	// set — only its members are expanded — and done marks options
	// whose subtrees completed.
	todo map[core.ThreadID]bool
	done map[core.ThreadID]bool

	// State-cache bookkeeping (Options.StateCache): the node's
	// canonical identity at creation, the inherited sleep set as a
	// bitmask, the subtree's footprint summary accumulated as children
	// pop, and the cut flag (this node's subtree was found in the
	// cache; the run's remaining decisions are coasted or parked, so
	// no nodes exist below a cut).
	stateHash   uint64
	sleepMask   uint64
	maskOK      bool
	cut         bool
	sub         []uint64
	subOverflow bool

	// snap is the node's forkable branch snapshot (nil unless
	// Options.Checkpoints and the node has siblings worth returning
	// for): the hasher state and scheduler position digest frozen at
	// this decision point, before any option was chosen. Later runs
	// fast-forward here instead of replaying from the root. Freed when
	// the node pops — the live snapshot set is exactly the DFS path.
	snap *branchSnap
}

func (n *node) chosen() core.ThreadID { return n.options[n.curIdx] }

// fpOf returns the footprint snapshotted for thread t at this node;
// zero — conservatively dependent with everything — when t was not an
// option here or footprints were not captured.
func (n *node) fpOf(t core.ThreadID) core.Footprint {
	if len(n.fps) != len(n.options) {
		return core.Footprint{}
	}
	for i, o := range n.options {
		if o == t {
			return n.fps[i]
		}
	}
	return core.Footprint{}
}

// chosenFP is the footprint of the option currently being explored.
func (n *node) chosenFP() core.Footprint {
	if len(n.fps) != len(n.options) {
		return core.Footprint{}
	}
	return n.fps[n.curIdx]
}

// nodePool recycles DFS nodes (and their sleep/pendings maps) within a
// worker. A deep search allocates one node per decision point per
// path; recycling them on backtrack makes the steady-state search
// allocation-free in the engine itself.
type nodePool struct {
	free []*node
	// snaps recycles branch snapshots (their slices keep their backing
	// arrays, so steady-state snapshot-taking is allocation-free).
	snaps []*branchSnap
}

func newNodePool() *nodePool { return &nodePool{} }

// get returns a reset node with current set and inherited-state fields
// zeroed.
func (p *nodePool) get(current core.ThreadID) *node {
	if n := len(p.free); n > 0 {
		nd := p.free[n-1]
		p.free = p.free[:n-1]
		nd.options = nd.options[:0]
		nd.curIdx = 0
		nd.current = current
		nd.preBefore = 0
		nd.tbMask = 0
		nd.vbObjs = nd.vbObjs[:0]
		clear(nd.sleep)
		nd.fps = nd.fps[:0]
		clear(nd.todo)
		clear(nd.done)
		nd.stateHash, nd.sleepMask, nd.maskOK = 0, 0, false
		nd.cut = false
		nd.sub = nd.sub[:0]
		nd.subOverflow = false
		nd.snap = nil
		return nd
	}
	return &node{current: current, sleep: map[core.ThreadID]bool{}}
}

func (p *nodePool) put(n *node) {
	p.free = append(p.free, n)
}

func (p *nodePool) getSnap() *branchSnap {
	if n := len(p.snaps); n > 0 {
		s := p.snaps[n-1]
		p.snaps = p.snaps[:n-1]
		return s
	}
	return &branchSnap{}
}

func (p *nodePool) putSnap(s *branchSnap) {
	p.snaps = append(p.snaps, s)
}

// tbAllows reports whether preempting thread t at this node respects
// the thread bound: t was already preempted on this path, or the
// preempted set still has room. Threads outside the bitmask range are
// never cut (conservative).
func (n *node) tbAllows(t core.ThreadID, bound int) bool {
	if t < 0 || t >= 64 {
		return true
	}
	if n.tbMask&(1<<uint(t)) != 0 {
		return true
	}
	return bits.OnesCount64(n.tbMask) < bound
}

// vbAllows reports whether charging object obj at this node respects
// the variable bound: obj was already charged on this path, or the
// charged set still has room.
func (n *node) vbAllows(obj uint32, bound int) bool {
	if _, ok := slices.BinarySearch(n.vbObjs, obj); ok {
		return true
	}
	return len(n.vbObjs) < bound
}

// addVBObj inserts an object handle into a sorted charged-object set,
// keeping it deduplicated (sorted order makes the set's contribution
// to the state hash deterministic).
func addVBObj(objs []uint32, obj uint32) []uint32 {
	i, ok := slices.BinarySearch(objs, obj)
	if ok {
		return objs
	}
	return slices.Insert(objs, i, obj)
}

// isPreemption reports whether this node's current choice switches
// away from a runnable current thread.
func (n *node) isPreemption() bool {
	if n.current == core.NoThread {
		return false
	}
	if slices.Contains(n.options, n.current) {
		return n.chosen() != n.current
	}
	return false
}

// explorer owns one shard of the decision tree: the subtree hanging
// under prefix. Decisions 0..len(prefix)-1 are replayed literally on
// every run and are not backtrack points — their sibling alternatives
// belong to other work items (or were already explored by the donor).
type explorer struct {
	opts Options
	// prefix is the inherited schedule this explorer's subtree hangs
	// under (empty for the root shard).
	prefix []core.ThreadID
	// rootSleep seeds the sleep set of the first fresh node, inherited
	// from the donor's branch node exactly as a child node inherits
	// from its parent in the serial DFS.
	rootSleep map[core.ThreadID]bool
	path      []*node
	err       error
	// pool recycles nodes across schedules and shards (owned by the
	// worker driving this explorer).
	pool *nodePool
	// red is the worker's state-cache machinery (nil unless
	// Options.StateCache); stats accumulates this shard's reduction
	// counters, merged by the coordinator when the shard ends.
	red   *reduction
	stats Stats
	// cutDepth is the path index of the active cache cut (-1 when
	// none): nodes created deeper only finish the in-flight run.
	cutDepth int
	// lastRunSteps is the step count of the shard's previous completed
	// run — the deterministic (timing-free) estimator behind the
	// park-versus-coast disposal heuristic (see shouldPark). Zero until
	// a run completes, so a shard's first cut disposal coasts.
	lastRunSteps int64
	// Bound accounting accumulated along the replayed prefix is a pure
	// function of the prefix, so it is captured once from the shard's
	// first fully-replayed run and reinstated on fast-forwarded runs
	// (which skip the prefix Picks that would recompute it).
	prefixAccounted bool
	basePre         int
	baseTB          uint64
	baseVB          []uint32
}

// DefaultParkTailThreshold is the default ParkTailThreshold: parking
// costs ~2.6µs of park+abandon round trips against ~87ns per coasted
// step, so the break-even tail is about 30 steps.
const DefaultParkTailThreshold = 32

// shouldPark decides the disposal of a run that reached a state-cache
// cut at the given decision depth: park it as a resumable checkpoint,
// or coast the tail. Deterministic — the expected tail length is the
// previous completed run's step count minus the cut depth, never a
// wall-clock measurement — so disposal (and therefore the outcome
// histogram) is reproducible run-to-run.
func (e *explorer) shouldPark(depth int) bool {
	t := e.opts.ParkTailThreshold
	if t < 0 {
		return true
	}
	if t == 0 {
		t = DefaultParkTailThreshold
	}
	return e.lastRunSteps-int64(depth) >= int64(t)
}

// dfsStrategy drives one run: replay the prefix and the path's
// choices, extend the frontier with fresh nodes.
type dfsStrategy struct {
	e     *explorer
	depth int
	// prefixPre counts preemptions taken along the replayed prefix, so
	// the subtree's context-bound accounting matches a serial descent
	// through the same decisions.
	prefixPre int
	// prefixTB and prefixVB are the thread- and variable-bounding
	// analogues of prefixPre: the preempted-thread bitmask and the
	// charged-object set accumulated along the replayed prefix.
	prefixTB uint64
	prefixVB []uint32
}

// Name implements sched.Strategy.
func (st *dfsStrategy) Name() string { return "explore-dfs" }

// PendingFree implements sched.PendingFree: the DFS keys its pruning
// on Choice.FootprintOf and never reads Choice.Pending, so the
// scheduler can skip the per-decision PendingOp copy.
func (st *dfsStrategy) PendingFree() bool { return true }

// Pick implements sched.Strategy.
func (st *dfsStrategy) Pick(c *sched.Choice) core.ThreadID {
	e := st.e
	d := st.depth

	if d < len(e.prefix) {
		st.depth++
		e.stats.ReplayedSteps++
		want := e.prefix[d]
		if want == sched.IdleID {
			if !c.CanIdle {
				e.err = fmt.Errorf("explore: nondeterministic program: cannot idle at depth %d", d)
				return core.NoThread
			}
		} else if !slices.Contains(c.Runnable, want) {
			e.err = fmt.Errorf("explore: nondeterministic program: thread %d not runnable at depth %d", want, d)
			return core.NoThread
		}
		if c.Current != core.NoThread && want != c.Current && slices.Contains(c.Runnable, c.Current) {
			st.prefixPre++
			if t := c.Current; t >= 0 && t < 64 {
				st.prefixTB |= 1 << uint(t)
			}
			if e.opts.VariableBound != nil && c.FootprintOf != nil {
				st.prefixVB = addVBObj(st.prefixVB, c.FootprintOf(c.Current).Obj)
			}
		}
		e.notePick(c, want)
		return want
	}

	pd := d - len(e.prefix)
	if pd < len(e.path) {
		st.depth++
		e.stats.ReplayedSteps++
		n := e.path[pd]
		want := n.chosen()
		if want == sched.IdleID {
			if !c.CanIdle {
				e.err = fmt.Errorf("explore: nondeterministic program: cannot idle at depth %d", d)
				return core.NoThread
			}
			e.notePick(c, want)
			return want
		}
		if !slices.Contains(c.Runnable, want) {
			e.err = fmt.Errorf("explore: nondeterministic program: thread %d not runnable at depth %d", want, d)
			return core.NoThread
		}
		e.notePick(c, want)
		return want
	}

	// Below an active state-cache cut the subtree is already proven
	// explored: the run need only be disposed of, not decided. With
	// checkpointing on and a long enough expected tail the runner parks
	// right here (the tail never executes; the decision is not
	// consumed, so st.depth stays put); otherwise the scheduler coasts
	// the tail under its built-in nonpreemptive rule — the exact
	// decisions the old per-decision bypass nodes produced, with no
	// strategy round trips.
	if e.cutDepth >= 0 && pd > e.cutDepth {
		if e.opts.Checkpoints > 0 && e.shouldPark(d) {
			return sched.ParkID
		}
		return sched.CoastID
	}

	st.depth++
	e.stats.NovelSteps++
	n := e.newNode(c, pd, st)
	e.path = append(e.path, n)
	e.notePick(c, n.chosen())
	return n.chosen()
}

// newNode builds the frontier node for choice point c at path index pd,
// applying preemption/variable/thread bounding, sleep sets and the
// exploration order (current thread first, so the first descent is the
// cheap nonpreemptive schedule). st carries the bound accounting
// accumulated along the replayed prefix, charged to the subtree's
// first fresh node.
func (e *explorer) newNode(c *sched.Choice, pd int, st *dfsStrategy) *node {
	n := e.pool.get(c.Current)

	// Inherit bound accounting and sleep set from the parent node, or
	// from the donated work item at the subtree root.
	if pd > 0 {
		parent := e.path[pd-1]
		n.preBefore = parent.preBefore
		n.tbMask = parent.tbMask
		if e.opts.VariableBound != nil {
			n.vbObjs = append(n.vbObjs, parent.vbObjs...)
		}
		if parent.isPreemption() {
			n.preBefore++
			if t := parent.current; t >= 0 && t < 64 {
				n.tbMask |= 1 << uint(t)
			}
			if e.opts.VariableBound != nil {
				n.vbObjs = addVBObj(n.vbObjs, parent.fpOf(parent.current).Obj)
			}
		}
		if e.opts.SleepSets {
			chosenFP := parent.chosenFP()
			for u := range parent.sleep {
				if parent.fpOf(u).Commutes(chosenFP) {
					n.sleep[u] = true
				}
			}
		}
	} else {
		n.preBefore = st.prefixPre
		n.tbMask = st.prefixTB
		if e.opts.VariableBound != nil {
			n.vbObjs = append(n.vbObjs, st.prefixVB...)
		}
		if e.opts.SleepSets {
			for u := range e.rootSleep {
				n.sleep[u] = true
			}
		}
	}

	// Option order: current first (if runnable), then ascending ids.
	curRunnable := slices.Contains(c.Runnable, c.Current)
	if curRunnable {
		n.options = append(n.options, c.Current)
	}
	for _, id := range c.Runnable {
		if id != c.Current {
			n.options = append(n.options, id)
		}
	}

	// Bound cuts: when a bound forbids preempting the current thread
	// here, the only choices are non-preemptive ones (the current
	// thread, or anything if the current thread cannot run). The
	// preemption bound cuts when the budget is spent; the thread bound
	// cuts when the current thread is outside an already-full preempted
	// set; the variable bound cuts when the current thread's pending
	// object is outside an already-full charged set.
	cut := false
	if curRunnable {
		switch {
		case e.opts.PreemptionBound != nil && n.preBefore >= *e.opts.PreemptionBound:
			cut = true
		case e.opts.ThreadBound != nil && !n.tbAllows(c.Current, *e.opts.ThreadBound):
			e.stats.TBPruned += len(n.options) - 1
			cut = true
		case e.opts.VariableBound != nil && c.FootprintOf != nil &&
			!n.vbAllows(c.FootprintOf(c.Current).Obj, *e.opts.VariableBound):
			e.stats.VBPruned += len(n.options) - 1
			cut = true
		}
	}
	if cut {
		n.options = n.options[:1]
	} else if e.opts.ExploreTimeouts && c.CanIdle {
		// Timing branch: let the pending timer(s) expire before anyone
		// runs. Explored last; counts as a preemption when it delays a
		// runnable current thread.
		n.options = append(n.options, sched.IdleID)
	}

	// Snapshot pending-operation footprints for sleep-set, DPOR,
	// state-hash and variable-bound computation (index-aligned with
	// options; FootprintOf returns zero for the idle pseudo-thread,
	// which is conservatively dependent with everything).
	if (e.opts.SleepSets || e.red != nil || e.opts.VariableBound != nil) && c.FootprintOf != nil {
		for _, id := range n.options {
			n.fps = append(n.fps, c.FootprintOf(id))
		}
	}

	// Skip initial options that are in the inherited sleep set (DPOR
	// accounts skipped options at pop time instead, since its
	// backtrack set can still grow while the subtree is in flight).
	for n.curIdx < len(n.options)-1 && n.sleep[n.options[n.curIdx]] {
		if !e.opts.DPOR {
			e.stats.SleepPruned++
		}
		n.curIdx++
	}

	if e.opts.DPOR {
		if n.todo == nil {
			n.todo = map[core.ThreadID]bool{}
			n.done = map[core.ThreadID]bool{}
		}
		n.todo[n.chosen()] = true
		// Timing branches are never DPOR-pruned: the independence
		// relation says nothing about virtual-time warps.
		if e.opts.ExploreTimeouts {
			if last := n.options[len(n.options)-1]; last == sched.IdleID {
				n.todo[sched.IdleID] = true
			}
		}
		e.dporAnalyze(n, pd)
	}

	// Canonical-state lookup: an equivalent subtree already fully
	// explored (under a no-larger sleep set) cuts this one. Under DPOR
	// the cached summary is replayed first so the cut subtree's race
	// reversals against the current path are still requested.
	if e.red != nil {
		n.sleepMask, n.maskOK = sleepMask(n.sleep)
		n.stateHash = e.hashState(c, n)
		if n.maskOK {
			if ent, ok := e.red.cache.lookup(n.stateHash, n.sleepMask); ok {
				e.stats.StateHits++
				if e.opts.DPOR {
					e.applySummary(ent, pd)
					n.sub = append(n.sub[:0], ent.sum[:ent.nsum]...)
				}
				n.cut = true
				e.cutDepth = pd
				n.options[0] = n.chosen()
				n.options = n.options[:1]
				n.curIdx = 0
			}
		}
	}

	// Branch snapshot: a live multi-option node is a position later
	// schedules return to, one per remaining sibling. Freeze the hasher
	// and the scheduler's position digest here — before the node's own
	// decision is taken or folded — so a later run can fast-forward the
	// decisions above this node and re-enter the DFS at the branch.
	// Single-option nodes are popped straight through on backtrack and
	// never returned to, so they carry no snapshot.
	if e.opts.Checkpoints > 0 && e.red != nil && !n.cut && len(n.options) > 1 && c.SnapshotTo != nil {
		bs := e.pool.getSnap()
		e.red.hasher.snapshotInto(&bs.hasher)
		c.SnapshotTo(&bs.sched)
		n.snap = bs
	}
	return n
}

// backtrack advances the deepest node with an untried, non-sleeping
// (and, under DPOR, backtrack-requested) alternative and truncates the
// path there; it reports false when the shard's subtree is exhausted.
func (e *explorer) backtrack() bool {
	for len(e.path) > 0 {
		n := e.path[len(e.path)-1]
		if n.cut {
			// Pruned region: nothing to advance, pop straight through.
			e.popNode(n)
			continue
		}
		if e.opts.SleepSets {
			// The subtree under the current choice is done: siblings
			// need not re-explore it unless dependent.
			n.sleep[n.chosen()] = true
		}
		if e.opts.DPOR {
			n.done[n.chosen()] = true
			if i, ok := n.nextTodo(); ok {
				n.curIdx = i
				return true
			}
		} else {
			for n.curIdx+1 < len(n.options) {
				n.curIdx++
				if !n.sleep[n.options[n.curIdx]] {
					return true
				}
				e.stats.SleepPruned++
			}
		}
		e.popNode(n)
	}
	return false
}

// nextTodo finds the first option that is requested, unexplored and
// not sleeping. Unlike the plain DFS cursor it may move backwards:
// backtrack-set additions land in discovery order, not option order.
func (n *node) nextTodo() (int, bool) {
	for i, o := range n.options {
		if n.todo[o] && !n.done[o] && !n.sleep[o] {
			return i, true
		}
	}
	return 0, false
}

// popNode removes the finished deepest node: account what was pruned,
// publish the fully-explored subtree to the state cache, fold its
// footprint summary into the parent, and recycle it.
func (e *explorer) popNode(n *node) {
	last := len(e.path) - 1
	e.path = e.path[:last]
	if n.snap != nil {
		e.pool.putSnap(n.snap)
		n.snap = nil
	}
	if e.opts.DPOR && !n.cut {
		for _, o := range n.options {
			switch {
			case n.done[o]:
			case n.sleep[o]:
				e.stats.SleepPruned++
			case !n.todo[o]:
				e.stats.PORPruned++
			}
		}
	}
	if n.cut {
		e.cutDepth = -1
	}
	if e.red != nil {
		if !n.cut && n.maskOK && (!n.subOverflow || !e.opts.DPOR) {
			sum := n.sub
			if !e.opts.DPOR {
				// Without DPOR there are no backtrack obligations to
				// replay on a hit; the entry needs no summary.
				sum = nil
			}
			e.red.cache.insert(n.stateHash, n.sleepMask, sum)
		}
		if last > 0 {
			parent := e.path[last-1]
			parent.foldChild(parent.chosenFootprint(), n)
		}
	}
	e.pool.put(n)
}

// split carves the shallowest untried, non-sleeping alternative off
// the current DFS path and packages it as a standalone work item for
// another worker. The option is removed from the local node so every
// schedule is still explored exactly once. Splitting shallow donates
// the largest subtrees, which keeps work-stealing traffic low.
//
// The donated item inherits the branch node's sleep set filtered by
// independence against the donated option's pending operation —
// exactly the inheritance a child node would receive in newNode. The
// donor's sleeps accumulated after the donation are lost to the
// donated shard, so parallel sleep-set search may execute more
// schedules than serial, but never fewer behaviours: a smaller sleep
// set only prunes less.
//
// Under DPOR, donation is how backtrack sets are exchanged across work
// items — by making the exchange unnecessary: before an option leaves
// the donor, every node on the donor's path up to the branch point is
// promoted to full expansion (todo = all options). Races the donated
// subtree would discover against the donor's decisions then need no
// cross-shard additions: whatever thread they would request at those
// nodes is already committed. Donation therefore degrades those nodes
// from DPOR pruning back to sleep-set pruning — parallel reduced
// search may execute more schedules than serial, never fewer
// behaviours — which keeps pruning sound (and the bug set identical)
// at any worker count.
func (e *explorer) split() (*workItem, bool) {
	for d, n := range e.path {
		if n.cut {
			// Nothing below a cache cut is donatable: the region is
			// single-choice by construction.
			break
		}
		for j := 0; j < len(n.options); j++ {
			if !e.opts.DPOR && j <= n.curIdx {
				continue
			}
			if e.opts.DPOR && j == n.curIdx {
				continue
			}
			opt := n.options[j]
			if n.sleep[opt] || (e.opts.DPOR && n.done[opt]) {
				continue
			}
			if e.opts.DPOR {
				for i := 0; i <= d; i++ {
					for _, o := range e.path[i].options {
						e.path[i].todo[o] = true
					}
				}
				// The donated subtree's footprints will never fold into
				// this node's summary (another worker explores them), so
				// a cache entry here would replay incomplete backtrack
				// obligations on a later hit. Poison the summary; the
				// overflow propagates to ancestors through foldChild.
				n.subOverflow = true
			}
			optFP := n.fpOf(opt)
			hasFPs := len(n.fps) == len(n.options)
			n.options = slices.Delete(n.options, j, j+1)
			if hasFPs {
				n.fps = slices.Delete(n.fps, j, j+1)
			}
			if j < n.curIdx {
				n.curIdx--
			}

			prefix := make([]core.ThreadID, 0, len(e.prefix)+d+1)
			prefix = append(prefix, e.prefix...)
			for i := 0; i < d; i++ {
				prefix = append(prefix, e.path[i].chosen())
			}
			prefix = append(prefix, opt)

			item := &workItem{prefix: prefix}
			if e.opts.SleepSets && hasFPs {
				for u := range n.sleep {
					if n.fpOf(u).Commutes(optFP) {
						if item.sleep == nil {
							item.sleep = make(map[core.ThreadID]bool)
						}
						item.sleep[u] = true
					}
				}
			}
			return item, true
		}
	}
	return nil, false
}

// Independence is core.Footprint.Commutes over the interned handles
// the scheduler publishes (via Choice.FootprintOf): different objects,
// or both reads, commute; unknown operations and thread-lifecycle
// operations are conservatively dependent. (Interned handles are
// bijective with names, so this is exactly the historical
// name-comparison relation.)

// Explore runs the search over body and returns its summary. The
// search is serial for Options.Workers == 1 and sharded across a
// worker pool otherwise; see parallel.go for the coordinator.
func Explore(opts Options, body func(core.T)) *Result {
	if opts.MaxSchedules <= 0 {
		opts.MaxSchedules = 10000
	}
	if opts.DPOR {
		opts.SleepSets = true
	}
	return newCoordinator(opts, body).run()
}
