//go:build race

package explore

// raceEnabled slims the whole-repository equivalence sweep under the
// race detector: instrumented runs are ~20x slower, and the sweep's
// value under -race is exercising the parallel machinery, not
// re-proving equivalence on the largest trees (the regular test job
// does that).
const raceEnabled = true
