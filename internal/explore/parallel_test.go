package explore

import (
	"reflect"
	"sort"
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/repository"
)

// smallParams shrinks each repository program to an explorable size
// (mirrors experiment.exploreParams).
var smallParams = map[string]repository.Params{
	"account":      {"depositors": 2, "deposits": 1},
	"statmax":      {"reporters": 2},
	"inversion":    {},
	"lostnotify":   {},
	"philosophers": {"philosophers": 2, "rounds": 1},
}

var smallPrograms = []string{"account", "statmax", "inversion", "lostnotify", "philosophers"}

// serialGolden pins the serial engine's exact behaviour as measured on
// the pre-parallelization implementation (same DFS, same sleep sets).
// Workers: 1 must stay byte-identical to it forever: any change to
// schedule counts, outcome histograms or first-bug indices here is a
// change to the search semantics and must be deliberate.
var serialGolden = []struct {
	program   string
	sleepSets bool
	schedules int
	firstBug  int
	bugs      int
	outcomes  map[string]int
}{
	{"account", true, 1710, 27, 1, map[string]int{"fail:": 612, "pass:": 1098}},
	{"account", false, 2728, 36, 1, nil},
	{"statmax", true, 456, 11, 1, map[string]int{"fail:": 48, "pass:": 408}},
	{"statmax", false, 515, 11, 1, nil},
	{"inversion", true, 5452, 97, 1, map[string]int{"deadlock:": 89, "pass:": 5363}},
	{"inversion", false, 7140, 127, 1, nil},
	{"lostnotify", true, 32, -1, 0, map[string]int{"pass:": 32}},
	{"lostnotify", false, 32, -1, 0, nil},
	{"philosophers", true, 13305, 209, 1, map[string]int{"deadlock:": 89, "pass:": 13216}},
	{"philosophers", false, 20469, 335, 1, nil},
}

// TestSerialGolden locks Workers: 1 to the pre-refactor serial engine:
// identical schedule counts, outcome histograms, bug counts and
// first-bug indices on every repository program.
//
// (The deadlock programs historically reported the same deadlock twice
// under two rotations of the wait-for cycle, because the cycle
// description depended on map iteration order; with the canonical
// cycle fix the duplicate collapses, which is why inversion and
// philosophers pin bugs == 1.)
func TestSerialGolden(t *testing.T) {
	for _, g := range serialGolden {
		prog, err := repository.Get(g.program)
		if err != nil {
			t.Fatal(err)
		}
		body := prog.BodyWith(smallParams[g.program])
		res := Explore(Options{MaxSchedules: 200000, SleepSets: g.sleepSets, Workers: 1}, body)
		if res.Err != nil {
			t.Fatalf("%s: %v", g.program, res.Err)
		}
		if !res.Exhausted {
			t.Fatalf("%s (sleepsets=%v): not exhausted after %d schedules", g.program, g.sleepSets, res.Schedules)
		}
		if res.Schedules != g.schedules {
			t.Errorf("%s (sleepsets=%v): schedules = %d, golden %d", g.program, g.sleepSets, res.Schedules, g.schedules)
		}
		if got := res.FirstBugIndex(); got != g.firstBug {
			t.Errorf("%s (sleepsets=%v): first bug at %d, golden %d", g.program, g.sleepSets, got, g.firstBug)
		}
		if len(res.Bugs) != g.bugs {
			t.Errorf("%s (sleepsets=%v): %d distinct bugs, golden %d", g.program, g.sleepSets, len(res.Bugs), g.bugs)
		}
		if g.outcomes != nil && !reflect.DeepEqual(res.Outcomes, g.outcomes) {
			t.Errorf("%s (sleepsets=%v): outcomes = %v, golden %v", g.program, g.sleepSets, res.Outcomes, g.outcomes)
		}
	}
}

// bugKeys returns the deduplicated bug signatures of a result, sorted.
func bugKeys(res *Result) []string {
	keys := make([]string, 0, len(res.Bugs))
	for _, b := range res.Bugs {
		keys = append(keys, core.BugSignature(b.Result))
	}
	sort.Strings(keys)
	return keys
}

// TestWorkersFindSameBugs is the parallel-correctness contract: on
// every small repository program, Workers: 8 must find exactly the
// deduplicated bug set that Workers: 1 finds, and — without sleep sets,
// where the shards partition the tree exactly — execute the identical
// number of schedules.
func TestWorkersFindSameBugs(t *testing.T) {
	for _, name := range smallPrograms {
		prog, err := repository.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		body := prog.BodyWith(smallParams[name])

		serial := Explore(Options{MaxSchedules: 200000, Workers: 1}, body)
		parallel := Explore(Options{MaxSchedules: 200000, Workers: 8}, body)
		if serial.Err != nil || parallel.Err != nil {
			t.Fatalf("%s: serial err=%v parallel err=%v", name, serial.Err, parallel.Err)
		}
		if !serial.Exhausted || !parallel.Exhausted {
			t.Fatalf("%s: exhausted serial=%v parallel=%v", name, serial.Exhausted, parallel.Exhausted)
		}
		if sk, pk := bugKeys(serial), bugKeys(parallel); !reflect.DeepEqual(sk, pk) {
			t.Errorf("%s: bug sets differ\n  serial:   %v\n  parallel: %v", name, sk, pk)
		}
		// Without sleep sets every shard explores a disjoint part of
		// the same tree, so the total is exact.
		if serial.Schedules != parallel.Schedules {
			t.Errorf("%s: schedules serial=%d parallel=%d (must partition exactly)", name, serial.Schedules, parallel.Schedules)
		}
		// Outcome histograms over the whole tree are worker-invariant.
		if !reflect.DeepEqual(serial.Outcomes, parallel.Outcomes) {
			t.Errorf("%s: outcomes serial=%v parallel=%v", name, serial.Outcomes, parallel.Outcomes)
		}
	}
}

// TestWorkersSleepSetsSameBugs: with sleep-set pruning the shard
// boundaries lose some pruning (never soundness), so schedule counts
// may differ — but the deduplicated bug set must not.
func TestWorkersSleepSetsSameBugs(t *testing.T) {
	for _, name := range smallPrograms {
		prog, err := repository.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		body := prog.BodyWith(smallParams[name])

		serial := Explore(Options{MaxSchedules: 200000, SleepSets: true, Workers: 1}, body)
		parallel := Explore(Options{MaxSchedules: 200000, SleepSets: true, Workers: 8}, body)
		if serial.Err != nil || parallel.Err != nil {
			t.Fatalf("%s: serial err=%v parallel err=%v", name, serial.Err, parallel.Err)
		}
		if !serial.Exhausted || !parallel.Exhausted {
			t.Fatalf("%s: exhausted serial=%v parallel=%v", name, serial.Exhausted, parallel.Exhausted)
		}
		if sk, pk := bugKeys(serial), bugKeys(parallel); !reflect.DeepEqual(sk, pk) {
			t.Errorf("%s: bug sets differ\n  serial:   %v\n  parallel: %v", name, sk, pk)
		}
		if parallel.Schedules > serial.Schedules*4 {
			t.Errorf("%s: parallel sleep-set search exploded: %d vs serial %d", name, parallel.Schedules, serial.Schedules)
		}
	}
}

// TestWorkersPreemptionBound: the preemption budget must be accounted
// identically across shard boundaries (a donated prefix replays its
// preemptions into the subtree root), so bounded trees partition
// exactly too.
func TestWorkersPreemptionBound(t *testing.T) {
	for _, bound := range []int{0, 1, 2} {
		serial := Explore(Options{MaxSchedules: 200000, PreemptionBound: Bound(bound), Workers: 1}, lostUpdate)
		parallel := Explore(Options{MaxSchedules: 200000, PreemptionBound: Bound(bound), Workers: 8}, lostUpdate)
		if serial.Err != nil || parallel.Err != nil {
			t.Fatalf("bound %d: serial err=%v parallel err=%v", bound, serial.Err, parallel.Err)
		}
		if serial.Schedules != parallel.Schedules {
			t.Errorf("bound %d: schedules serial=%d parallel=%d", bound, serial.Schedules, parallel.Schedules)
		}
		if sk, pk := bugKeys(serial), bugKeys(parallel); !reflect.DeepEqual(sk, pk) {
			t.Errorf("bound %d: bug sets differ: %v vs %v", bound, sk, pk)
		}
	}
}

// TestWorkersBudget: MaxSchedules is a hard global budget across
// workers, and exceeding it clears Exhausted.
func TestWorkersBudget(t *testing.T) {
	prog, err := repository.Get("philosophers")
	if err != nil {
		t.Fatal(err)
	}
	body := prog.BodyWith(smallParams["philosophers"])
	res := Explore(Options{MaxSchedules: 100, Workers: 8}, body)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Schedules > 100 {
		t.Fatalf("budget overrun: %d schedules with MaxSchedules=100", res.Schedules)
	}
	if res.Exhausted {
		t.Fatal("truncated search claimed exhaustion")
	}
}

// TestWorkersStopAtFirstBug: the stop is global — some worker finds a
// bug, everyone winds down, and the winning schedule replays.
func TestWorkersStopAtFirstBug(t *testing.T) {
	prog, err := repository.Get("philosophers")
	if err != nil {
		t.Fatal(err)
	}
	body := prog.BodyWith(smallParams["philosophers"])
	res := Explore(Options{MaxSchedules: 200000, StopAtFirstBug: true, Workers: 8}, body)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Bugs) == 0 {
		t.Fatal("parallel first-bug search found nothing")
	}
	if res.Exhausted {
		t.Fatal("first-bug stop claimed exhaustion")
	}
	if res.FirstBugIndex() < 1 {
		t.Fatalf("first bug index = %d, want >= 1", res.FirstBugIndex())
	}
}

// TestWorkersDeterministicSerial: Workers: 1 is bit-for-bit
// reproducible run over run (bug indices, schedules, outcomes).
func TestWorkersDeterministicSerial(t *testing.T) {
	for _, name := range smallPrograms {
		prog, err := repository.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		body := prog.BodyWith(smallParams[name])
		a := Explore(Options{MaxSchedules: 200000, SleepSets: true, Workers: 1}, body)
		b := Explore(Options{MaxSchedules: 200000, SleepSets: true, Workers: 1}, body)
		if a.Err != nil || b.Err != nil {
			t.Fatalf("%s: errs %v %v", name, a.Err, b.Err)
		}
		if a.Schedules != b.Schedules || !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
			t.Errorf("%s: serial engine not deterministic: %d/%v vs %d/%v", name, a.Schedules, a.Outcomes, b.Schedules, b.Outcomes)
		}
		if len(a.Bugs) != len(b.Bugs) {
			t.Fatalf("%s: bug counts differ: %d vs %d", name, len(a.Bugs), len(b.Bugs))
		}
		for i := range a.Bugs {
			if a.Bugs[i].Index != b.Bugs[i].Index || core.BugSignature(a.Bugs[i].Result) != core.BugSignature(b.Bugs[i].Result) {
				t.Errorf("%s: bug %d differs: #%d %q vs #%d %q", name, i,
					a.Bugs[i].Index, core.BugSignature(a.Bugs[i].Result), b.Bugs[i].Index, core.BugSignature(b.Bugs[i].Result))
			}
		}
	}
}

// TestFirstBugIndexNoBug pins the documented -1 sentinel.
func TestFirstBugIndexNoBug(t *testing.T) {
	res := &Result{}
	if got := res.FirstBugIndex(); got != -1 {
		t.Fatalf("FirstBugIndex() on empty result = %d, want -1", got)
	}
}
