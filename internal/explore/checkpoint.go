// Worker kits and parked-runner checkpoints.
//
// A workerKit is the reusable per-worker execution state: the pooled
// runner, the DFS node free list, the reduction structures (event
// hasher + canonical-state cache) and the outcome-key intern table.
// Kits are recycled through a package-level pool, so a campaign that
// calls Explore thousands of times pays the runner/cache construction
// cost once — the state cache is invalidated by generation bump on
// checkout instead of being reallocated or zeroed.
//
// With Options.Checkpoints > 0 a kit also manages parked runners: a
// run that reaches a state-cache cut is suspended at the cut (its
// virtual threads stay blocked on their resume channels) and kept as
// a checkpoint. Before each schedule the worker asks the kit for a
// checkpoint whose parked decision sequence is a prefix of the
// schedule's replay sequence; on a match the run is resumed from
// there — skipping that many replayed steps — and on a miss the
// worker falls back to the ordinary replay path. The checkpoint pool
// is bounded: the oldest runner is abandoned beyond the budget, and
// every checkpoint is abandoned when its shard ends (a donated or
// newly taken shard hangs under a different prefix, so a stale parked
// run could never match it). Abandoning returns the runner's virtual
// threads to its pool — no goroutine ever leaks with the parked run.
package explore

import (
	"math/bits"
	"sync"

	"mtbench/internal/core"
	"mtbench/internal/sched"
)

// checkpoint is one parked run: the runner suspended at a decision
// point, the decision sequence it consumed to get there, and the
// worker state a resumed run must continue under.
type checkpoint struct {
	runner *sched.Runner
	// decisions is the schedule prefix the parked run executed; the
	// parked (re-offered) decision point is decisions[len(decisions)]
	// — not consumed, so a resumed run may pick any runnable thread
	// there.
	decisions []core.ThreadID
	// prefixPre restores the strategy's prefix preemption accounting;
	// prefixTB and prefixVB restore the thread- and variable-bounding
	// analogues.
	prefixPre int
	prefixTB  uint64
	prefixVB  []uint32
	// snap freezes the state hasher at the park point (nil when the
	// state cache is off).
	snap *hasherSnap
}

// branchSnap is a forkable branch snapshot, owned by a live DFS path
// node (node.snap): the state hasher and the scheduler's position
// digest frozen at a multi-option decision point, before the node's
// own decision. A later run positions itself at the branch by
// restoring the hasher and fast-forwarding the decisions above the
// node (sched.Config.FastForward), with the digest verified on arrival
// (Config.FFCheck). The snapshot is valid for every sibling the node
// still has — it predates the choice — and is recycled through the
// worker's nodePool when the node pops.
type branchSnap struct {
	hasher hasherSnap
	sched  sched.Snapshot
}

// workerKit is the per-worker reusable execution state.
type workerKit struct {
	runner *sched.Runner
	pool   *nodePool
	hasher *stateHasher
	cache  *stateCache

	// spares holds idle runners freed by abandoned checkpoints, reused
	// before constructing new ones.
	spares []*sched.Runner
	// ckpts is the bounded parked-runner pool, oldest first.
	ckpts []*checkpoint

	// outKeys interns the "verdict:outcome" histogram keys per verdict,
	// so recording a run allocates nothing once a (verdict, outcome)
	// pair has been seen. Outcome strings are interned per runner,
	// making the inner map lookups cheap and stable.
	outKeys [8]map[string]string

	// planned is the scratch buffer plan builds the next run's replay
	// sequence into.
	planned []core.ThreadID
}

// kitPool recycles worker kits process-wide. Runners keep their
// virtual-thread goroutines parked between explorations — that is the
// point — so the pool is bounded to keep the idle population small.
var (
	kitMu   sync.Mutex
	kitFree []*workerKit
)

const maxPooledKits = 16

func getKit() *workerKit {
	kitMu.Lock()
	if n := len(kitFree); n > 0 {
		k := kitFree[n-1]
		kitFree = kitFree[:n-1]
		kitMu.Unlock()
		return k
	}
	kitMu.Unlock()
	return &workerKit{runner: sched.NewRunner(), pool: newNodePool()}
}

// release returns the kit to the pool (or closes it when the pool is
// full). Any parked checkpoints are abandoned first; their runners
// stay with the kit as spares.
func (k *workerKit) release() {
	k.abandonCheckpoints()
	kitMu.Lock()
	if len(kitFree) < maxPooledKits {
		kitFree = append(kitFree, k)
		kitMu.Unlock()
		return
	}
	kitMu.Unlock()
	k.close()
}

func (k *workerKit) close() {
	k.abandonCheckpoints()
	k.runner.Close()
	for _, r := range k.spares {
		r.Close()
	}
	k.spares = nil
}

// reductionFor prepares the kit's reduction bundle for one
// exploration: reuse the hasher and (size permitting) the cache,
// invalidating cached subtrees from whatever exploration used the kit
// last.
func (k *workerKit) reductionFor(opts Options) *reduction {
	if !opts.StateCache {
		return nil
	}
	size := opts.StateCacheSize
	if size <= 0 {
		size = DefaultStateCacheSize
	}
	n := 1 << bits.Len(uint(size-1))
	if k.cache == nil || len(k.cache.ents) != n {
		k.cache = newStateCache(size)
	} else {
		k.cache.reset()
	}
	if k.hasher == nil {
		k.hasher = newStateHasher()
	}
	r := &reduction{hasher: k.hasher, cache: k.cache}
	r.listeners = append(r.listeners, core.Listener(k.hasher))
	r.listeners = append(r.listeners, opts.Listeners...)
	return r
}

// outKey returns the interned outcome-histogram key for a run.
func (k *workerKit) outKey(v core.Verdict, outcome string) string {
	i := int(v)
	if i >= len(k.outKeys) {
		return v.String() + ":" + outcome
	}
	m := k.outKeys[i]
	if m == nil {
		m = make(map[string]string, 8)
		k.outKeys[i] = m
	}
	key, ok := m[outcome]
	if !ok {
		key = v.String() + ":" + outcome
		if len(m) < 1<<12 {
			m[outcome] = key
		}
	}
	return key
}

// freshRunner hands the worker a runner for its next run, preferring
// spares freed by abandoned checkpoints.
func (k *workerKit) freshRunner() *sched.Runner {
	if n := len(k.spares); n > 0 {
		r := k.spares[n-1]
		k.spares = k.spares[:n-1]
		return r
	}
	return sched.NewRunner()
}

// park registers the kit's active runner — just parked at a
// state-cache cut — as a checkpoint and installs a fresh active
// runner. Beyond the budget the oldest checkpoint is abandoned; its
// runner (threads back in its pool) becomes a spare.
func (k *workerKit) park(e *explorer, st *dfsStrategy, red *reduction, budget int) {
	ck := &checkpoint{runner: k.runner, prefixPre: st.prefixPre, prefixTB: st.prefixTB}
	ck.prefixVB = append(ck.prefixVB, st.prefixVB...)
	ck.decisions = make([]core.ThreadID, 0, len(e.prefix)+len(e.path))
	ck.decisions = append(ck.decisions, e.prefix...)
	for _, n := range e.path {
		ck.decisions = append(ck.decisions, n.chosen())
	}
	if red != nil {
		ck.snap = red.hasher.snapshot()
	}
	k.ckpts = append(k.ckpts, ck)
	if len(k.ckpts) > budget {
		old := k.ckpts[0]
		copy(k.ckpts, k.ckpts[1:])
		k.ckpts = k.ckpts[:len(k.ckpts)-1]
		old.runner.Abandon()
		k.spares = append(k.spares, old.runner)
	}
	k.runner = k.freshRunner()
}

// plan rebuilds the kit's scratch copy of the next run's replay
// sequence — the shard prefix plus the path's current choices — and
// returns it. The returned slice aliases the kit's buffer and is valid
// until the next plan call.
func (k *workerKit) plan(e *explorer) []core.ThreadID {
	k.planned = k.planned[:0]
	k.planned = append(k.planned, e.prefix...)
	for _, n := range e.path {
		k.planned = append(k.planned, n.chosen())
	}
	return k.planned
}

// takeCheckpoint finds, removes and returns the deepest checkpoint
// whose parked decision sequence is a prefix of planned (the next
// run's replay sequence, see plan) and at least minDepth decisions
// long — the run can continue from there instead of replaying from the
// root. minDepth is the depth of the deepest live branch snapshot on
// the path: a checkpoint strictly shallower than the snapshot loses to
// fast-forwarding, while one of equal depth wins (a resume skips even
// the fast-forward). It returns nil when no checkpoint qualifies,
// which is the common case: depth-first backtracking deviates above
// the cut a checkpoint was parked at, so checkpoints mostly age out.
// The lookup stays because it is what makes resume-instead-of-replay
// correct whenever a match does exist (and cheap: one prefix
// comparison per retained checkpoint).
func (k *workerKit) takeCheckpoint(planned []core.ThreadID, minDepth int) *checkpoint {
	if len(k.ckpts) == 0 {
		return nil
	}
	best := -1
	for i, ck := range k.ckpts {
		if len(ck.decisions) > len(planned) || len(ck.decisions) < minDepth {
			continue
		}
		if best >= 0 && len(ck.decisions) <= len(k.ckpts[best].decisions) {
			continue
		}
		match := true
		for j, d := range ck.decisions {
			if planned[j] != d {
				match = false
				break
			}
		}
		if match {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	ck := k.ckpts[best]
	copy(k.ckpts[best:], k.ckpts[best+1:])
	k.ckpts = k.ckpts[:len(k.ckpts)-1]
	return ck
}

// abandonCheckpoints tears down every parked run, returning each
// runner's threads to its pool and the runners themselves to the
// spares list.
func (k *workerKit) abandonCheckpoints() {
	for _, ck := range k.ckpts {
		ck.runner.Abandon()
		k.spares = append(k.spares, ck.runner)
	}
	k.ckpts = k.ckpts[:0]
}
