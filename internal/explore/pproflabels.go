// Driver-phase pprof labels (Options.ProfileLabels).
//
// The scheduler labels every virtual-thread goroutine "mtbench=vthread"
// (program execution: replayed, novel and coasted operations all run
// there). The exploration worker goroutine, when ProfileLabels is on,
// labels its own phases so a CPU profile splits driver overhead by
// activity:
//
//	phase=position   checkpoint matching, snapshot bookkeeping and the
//	                 hasher restore before a run starts
//	phase=drive      blocked in Start/Resume while the program runs
//	                 (the scheduler-side fast-forward happens here)
//	phase=park       parking a cut run as a checkpoint
//	phase=abandon    tearing parked runs down
//	phase=record     outcome/bug bookkeeping after a run
//
// A nil *phaseLabels (ProfileLabels off) makes every method a no-op,
// so the hot path pays one nil check per phase transition and no
// SetGoroutineLabels syscall-ish work.
package explore

import (
	"context"
	"runtime/pprof"
)

const (
	phasePosition = iota
	phaseDrive
	phasePark
	phaseAbandon
	phaseRecord
	numPhases
)

var phaseNames = [numPhases]string{"position", "drive", "park", "abandon", "record"}

type phaseLabels struct {
	base context.Context
	ctxs [numPhases]context.Context
}

func newPhaseLabels(on bool) *phaseLabels {
	if !on {
		return nil
	}
	l := &phaseLabels{base: context.Background()}
	for i, name := range phaseNames {
		l.ctxs[i] = pprof.WithLabels(l.base, pprof.Labels("mtbench", "driver", "phase", name))
	}
	return l
}

// enter labels the calling goroutine with the given phase.
func (l *phaseLabels) enter(phase int) {
	if l == nil {
		return
	}
	pprof.SetGoroutineLabels(l.ctxs[phase])
}

// exit drops the phase label.
func (l *phaseLabels) exit() {
	if l == nil {
		return
	}
	pprof.SetGoroutineLabels(l.base)
}
