package explore

import (
	"testing"

	"mtbench/internal/core"
	"mtbench/internal/sched"
)

// lostUpdate is the canonical 1-preemption bug: two unsynchronized
// load-then-store increments.
func lostUpdate(ct core.T) {
	x := ct.NewInt("x", 0)
	h1 := ct.Go("a", func(wt core.T) {
		v := x.Load(wt)
		x.Store(wt, v+1)
	})
	h2 := ct.Go("b", func(wt core.T) {
		v := x.Load(wt)
		x.Store(wt, v+1)
	})
	h1.Join(ct)
	h2.Join(ct)
	ct.Assert(x.Load(ct) == 2, "lost update")
}

func TestExhaustiveFindsLostUpdate(t *testing.T) {
	res := Explore(Options{MaxSchedules: 50000}, lostUpdate)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Bugs) == 0 {
		t.Fatalf("exhaustive search missed the bug (%d schedules)", res.Schedules)
	}
	if !res.Exhausted && res.Schedules < 50000 {
		t.Fatalf("search stopped early: %d schedules, not exhausted", res.Schedules)
	}
	t.Logf("schedules=%d firstBug=%d outcomes=%d", res.Schedules, res.FirstBugIndex(), len(res.Outcomes))
}

// TestFirstScheduleIsBaseline checks the DFS descends the
// nonpreemptive schedule first, so a bug-free baseline means the first
// schedule passes.
func TestFirstScheduleIsBaseline(t *testing.T) {
	res := Explore(Options{MaxSchedules: 1}, lostUpdate)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Bugs) != 0 {
		t.Fatalf("first (nonpreemptive) schedule found the bug: %+v", res.Bugs)
	}
}

// TestPreemptionBoundSeparates pins context bounding: the lost update
// needs one preemption, so bound 0 misses it and bound 1 finds it with
// far fewer schedules than the unbounded search.
func TestPreemptionBoundSeparates(t *testing.T) {
	res0 := Explore(Options{MaxSchedules: 50000, PreemptionBound: Bound(0)}, lostUpdate)
	if res0.Err != nil {
		t.Fatal(res0.Err)
	}
	if len(res0.Bugs) != 0 {
		t.Fatalf("bound-0 search found a 1-preemption bug: impossible")
	}
	if !res0.Exhausted {
		t.Fatalf("bound-0 search did not exhaust (%d schedules)", res0.Schedules)
	}

	res1 := Explore(Options{MaxSchedules: 50000, PreemptionBound: Bound(1)}, lostUpdate)
	if res1.Err != nil {
		t.Fatal(res1.Err)
	}
	if len(res1.Bugs) == 0 {
		t.Fatal("bound-1 search missed the 1-preemption bug")
	}

	full := Explore(Options{MaxSchedules: 50000}, lostUpdate)
	if !res1.Exhausted || !full.Exhausted {
		t.Skipf("searches truncated (bound1=%d full=%d); cannot compare sizes", res1.Schedules, full.Schedules)
	}
	if res1.Schedules >= full.Schedules {
		t.Fatalf("bound-1 (%d) not smaller than unbounded (%d)", res1.Schedules, full.Schedules)
	}
	t.Logf("bound0=%d bound1=%d full=%d", res0.Schedules, res1.Schedules, full.Schedules)
}

// TestSleepSetsReduce checks sleep sets cut the schedule count on a
// program with independent operations, without losing the bug.
func TestSleepSetsReduce(t *testing.T) {
	// Two threads touching disjoint variables (pure independence)
	// plus the racy pair.
	body := func(ct core.T) {
		x := ct.NewInt("x", 0)
		a := ct.NewInt("a", 0)
		b := ct.NewInt("b", 0)
		h1 := ct.Go("a", func(wt core.T) {
			a.Add(wt, 1)
			v := x.Load(wt)
			x.Store(wt, v+1)
		})
		h2 := ct.Go("b", func(wt core.T) {
			b.Add(wt, 1)
			v := x.Load(wt)
			x.Store(wt, v+1)
		})
		h1.Join(ct)
		h2.Join(ct)
		ct.Assert(x.Load(ct) == 2, "lost update")
	}
	// Workers: 1 — this pins the *serial* pruning property; across
	// shard boundaries sleep sets prune less (see parallel_test.go).
	plain := Explore(Options{MaxSchedules: 200000, Workers: 1}, body)
	pruned := Explore(Options{MaxSchedules: 200000, SleepSets: true, Workers: 1}, body)
	if plain.Err != nil || pruned.Err != nil {
		t.Fatal(plain.Err, pruned.Err)
	}
	if !plain.Exhausted || !pruned.Exhausted {
		t.Skipf("not exhausted (plain=%d pruned=%d)", plain.Schedules, pruned.Schedules)
	}
	if len(pruned.Bugs) == 0 {
		t.Fatal("sleep sets lost the bug")
	}
	if pruned.Schedules >= plain.Schedules {
		t.Fatalf("sleep sets did not reduce: %d vs %d", pruned.Schedules, plain.Schedules)
	}
	t.Logf("plain=%d pruned=%d (%.1f%%)", plain.Schedules, pruned.Schedules,
		100*float64(pruned.Schedules)/float64(plain.Schedules))
}

// TestDeadlockScenarioReplayable: exploration finds the lock-order
// deadlock and the saved scenario reproduces it deterministically.
func TestDeadlockScenarioReplayable(t *testing.T) {
	body := func(ct core.T) {
		a := ct.NewMutex("A")
		b := ct.NewMutex("B")
		h1 := ct.Go("ab", func(wt core.T) {
			a.Lock(wt)
			b.Lock(wt)
			b.Unlock(wt)
			a.Unlock(wt)
		})
		h2 := ct.Go("ba", func(wt core.T) {
			b.Lock(wt)
			a.Lock(wt)
			a.Unlock(wt)
			b.Unlock(wt)
		})
		h1.Join(ct)
		h2.Join(ct)
	}
	res := Explore(Options{MaxSchedules: 100000, StopAtFirstBug: true}, body)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Bugs) == 0 {
		t.Fatalf("deadlock not found in %d schedules", res.Schedules)
	}
	bug := res.Bugs[0]
	if bug.Result.Verdict != core.VerdictDeadlock {
		t.Fatalf("bug verdict = %v", bug.Result.Verdict)
	}
	for i := 0; i < 5; i++ {
		rep := sched.Run(sched.Config{Strategy: &sched.FixedSchedule{Decisions: bug.Schedule}}, body)
		if rep.Verdict != core.VerdictDeadlock {
			t.Fatalf("replay %d: verdict %v, want deadlock", i, rep.Verdict)
		}
	}
}

// TestTrivialProgramOneSchedule: no concurrency, one schedule,
// exhausted.
func TestTrivialProgramOneSchedule(t *testing.T) {
	res := Explore(Options{}, func(ct core.T) {
		x := ct.NewInt("x", 0)
		x.Store(ct, 1)
		ct.Assert(x.Load(ct) == 1, "")
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Schedules != 1 || !res.Exhausted {
		t.Fatalf("schedules=%d exhausted=%v, want 1/true", res.Schedules, res.Exhausted)
	}
}

// TestOutcomeEnumeration: exploration must observe every possible
// final value of an order-dependent computation (here 2*?+k chains
// give distinct outcomes per interleaving class).
func TestOutcomeEnumeration(t *testing.T) {
	body := func(ct core.T) {
		x := ct.NewInt("x", 0)
		h1 := ct.Go("a", func(wt core.T) {
			v := x.Load(wt)
			x.Store(wt, v*2+1)
		})
		h2 := ct.Go("b", func(wt core.T) {
			v := x.Load(wt)
			x.Store(wt, v*2+2)
		})
		h1.Join(ct)
		h2.Join(ct)
		ct.Outcome("x=%d", x.Load(ct))
	}
	res := Explore(Options{MaxSchedules: 100000}, body)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Exhausted {
		t.Skipf("not exhausted: %d", res.Schedules)
	}
	// Possible final values: serial a;b -> 4, serial b;a -> 5,
	// interleavings -> {1,2}.
	want := map[string]bool{"pass:x=4": true, "pass:x=5": true, "pass:x=1": true, "pass:x=2": true}
	for o := range want {
		if res.Outcomes[o] == 0 {
			t.Fatalf("outcome %q never observed; got %v", o, res.Outcomes)
		}
	}
	for o := range res.Outcomes {
		if !want[o] {
			t.Fatalf("unexpected outcome %q", o)
		}
	}
}

// TestExploreTimeoutsFindsLostNotify: the lost-wakeup timing bug is
// invisible to plain exploration (its bounded tree without timer
// branching is provably clean) and found once timer expirations are
// choices — the paper's systematic-exploration promise extended to
// timing bugs.
func TestExploreTimeoutsFindsLostNotify(t *testing.T) {
	body := func(ct core.T) {
		mu := ct.NewMutex("mu")
		cv := ct.NewCond("cv", mu)
		consumer := ct.Go("consumer", func(wt core.T) {
			mu.Lock(wt)
			cv.Wait(wt) // no predicate: wakeup lost if signal fires early
			mu.Unlock(wt)
		})
		ct.Sleep(1_000_000) // "plenty of time" for the consumer to park
		mu.Lock(ct)
		cv.Signal(ct)
		mu.Unlock(ct)
		consumer.Join(ct)
	}

	plain := Explore(Options{MaxSchedules: 50000}, body)
	if plain.Err != nil {
		t.Fatal(plain.Err)
	}
	if !plain.Exhausted || len(plain.Bugs) != 0 {
		t.Fatalf("plain search should exhaust clean: exhausted=%v bugs=%d", plain.Exhausted, len(plain.Bugs))
	}

	timed := Explore(Options{MaxSchedules: 50000, ExploreTimeouts: true, StopAtFirstBug: true}, body)
	if timed.Err != nil {
		t.Fatal(timed.Err)
	}
	if len(timed.Bugs) == 0 {
		t.Fatalf("timeout-aware search missed the lost wakeup (%d schedules)", timed.Schedules)
	}
	if timed.Bugs[0].Result.Verdict != core.VerdictDeadlock {
		t.Fatalf("bug verdict = %v", timed.Bugs[0].Result.Verdict)
	}
	// The scenario replays, idle decisions included.
	rep := sched.Run(sched.Config{Strategy: &sched.FixedSchedule{Decisions: timed.Bugs[0].Schedule}}, body)
	if rep.Verdict != core.VerdictDeadlock {
		t.Fatalf("replay verdict = %v", rep.Verdict)
	}
}
