package explore

import (
	"fmt"
	"runtime"
	"testing"

	"mtbench/internal/repository"
)

// benchmarkWorkers measures raw search throughput — schedules per
// second — at a given worker count. The workload is a fixed
// MaxSchedules budget over a repository buggy program (no
// StopAtFirstBug, so every iteration does the same amount of work
// regardless of where bugs fall). On an idle 8-core machine
// Workers=8 should deliver well over 3x the schedules/sec of
// Workers=1; run with
//
//	go test -bench=ExploreWorkers -benchtime=5x ./internal/explore/
func benchmarkWorkers(b *testing.B, program string, workers, budget int) {
	prog, err := repository.Get(program)
	if err != nil {
		b.Fatal(err)
	}
	body := prog.BodyWith(smallParams[program])
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Explore(Options{MaxSchedules: budget, Workers: workers}, body)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		total += res.Schedules
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "schedules/sec")
}

func BenchmarkExploreWorkers(b *testing.B) {
	for _, program := range []string{"philosophers", "account"} {
		for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
			b.Run(fmt.Sprintf("%s/workers=%d", program, workers), func(b *testing.B) {
				benchmarkWorkers(b, program, workers, 2000)
			})
		}
	}
}

// BenchmarkExploreSleepSetsWorkers measures throughput with sleep-set
// pruning on, the configuration closest to real verification sweeps.
func BenchmarkExploreSleepSetsWorkers(b *testing.B) {
	prog, err := repository.Get("philosophers")
	if err != nil {
		b.Fatal(err)
	}
	body := prog.BodyWith(smallParams["philosophers"])
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				res := Explore(Options{MaxSchedules: 2000, SleepSets: true, Workers: workers}, body)
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				total += res.Schedules
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "schedules/sec")
		})
	}
}
