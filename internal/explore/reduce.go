// The reduction layer: dynamic partial-order reduction and canonical-
// state caching for the DFS engine. Both prune schedules that are
// provably redundant — they revisit a state some other schedule
// already covers — so the same deduplicated bug set is reachable in a
// fraction of the schedules (pinned by TestReducedEquivalence across
// the whole program repository).
//
// # Independence
//
// Everything keys on core.Footprint.Commutes over the (operation,
// interned object handle) pairs the scheduler already publishes as
// pending operations: two operations commute when they target
// different objects, or are both reads. The relation is conservative —
// fork/join and not-yet-published operations are dependent with
// everything — which costs pruning, never soundness.
//
// # DPOR backtrack sets
//
// With Options.DPOR, a fresh node commits to exploring only its first
// option. When a later decision point on the same path has a pending
// operation that does not commute with an earlier node's chosen
// operation by another thread, the pending thread is added to that
// earlier node's backtrack set (Flanagan & Godefroid's lazy scheme,
// without the clock-vector refinement — spurious additions cost extra
// schedules, never coverage). A node is popped only when its backtrack
// set is drained, so additions made while its subtree is in flight are
// always honored. Options never added to any backtrack set are the
// reduction: their reorderings are covered by a representative
// schedule elsewhere in the tree.
//
// # Canonical-state cache
//
// With Options.StateCache, a per-worker listener folds every executed
// event into per-thread hash chains, linking chains through per-object
// "last writer" hashes so that two schedule prefixes hash equal iff
// they execute the same per-thread event sequences in the same
// conflict order — i.e. iff they are linearizations of the same
// partial order and therefore reach the same program state. When a
// fresh node's state hash is already in the cache, its whole subtree
// is cut: the equivalent subtree was fully explored before. Soundness
// conditions on a hit:
//
//   - the cached exploration's inherited sleep set must be a subset of
//     the current one (it explored at least as much);
//   - under DPOR, the cached subtree's footprint summary is replayed
//     against the current path, adding backtrack points exactly as the
//     skipped operations would have (the stateful-DPOR fix: cutting a
//     subtree must not also cut the race reversals it would have
//     requested).
//
// The cache is a bounded direct-mapped table: collisions overwrite,
// which forfeits pruning but never soundness.
package explore

import (
	"math/bits"

	"mtbench/internal/core"
	"mtbench/internal/sched"
)

// Stats counts what the reduction layer did during a search. All
// fields are monotone counters merged across workers. The JSON field
// names are pinned: cmd/explore -json emits them and the CI reduction
// gate parses them.
type Stats struct {
	// SleepPruned counts node options skipped by sleep sets.
	SleepPruned int `json:"sleep_pruned"`
	// PORPruned counts node options never added to a DPOR backtrack
	// set — subtrees proven redundant and not explored.
	PORPruned int `json:"por_pruned"`
	// Backtracks counts DPOR backtrack-set additions beyond each
	// node's first option (including conservative additions replayed
	// from cached subtree summaries).
	Backtracks int `json:"backtracks"`
	// StateHits counts subtrees cut by the canonical-state cache.
	StateHits int `json:"state_hits"`
	// VBPruned counts node options cut by the variable bound
	// (Options.VariableBound): preemptive siblings dropped because the
	// current thread's pending object was outside a full charged set.
	VBPruned int `json:"vb_pruned"`
	// TBPruned counts node options cut by the thread bound
	// (Options.ThreadBound): preemptive siblings dropped because the
	// current thread was outside a full preempted set.
	TBPruned int `json:"tb_pruned"`
	// ReplayedSteps counts scheduler steps spent re-establishing
	// already-known state: schedule-prefix and path-replay decisions,
	// plus the coasted tail steps below state-cache cuts. This is the
	// replay tax DFS pays for statelessness — the quantity checkpointed
	// exploration (Options.Checkpoints) removes.
	ReplayedSteps int `json:"replayed_steps"`
	// NovelSteps counts decisions taken at fresh frontier nodes — the
	// steps that visit new state.
	NovelSteps int `json:"novel_steps"`
	// CheckpointHits counts schedules positioned from retained state —
	// a parked runner resumed, or a branch snapshot fast-forwarded
	// (see Options.Checkpoints) — instead of replayed from the root
	// under full strategy control; CheckpointMisses counts the rest.
	// Every schedule is exactly one or the other, so hits + misses ==
	// schedules executed.
	CheckpointHits   int `json:"checkpoint_hits"`
	CheckpointMisses int `json:"checkpoint_misses"`
	// SnapshotRestores counts the checkpoint hits served by a branch
	// snapshot (sched fast-forward + digest verify) rather than a
	// parked-runner resume.
	SnapshotRestores int `json:"snapshot_restores"`
	// RestoredSteps counts scheduler steps positioning skipped paying
	// full price for: the decisions a resumed parked run had already
	// consumed, plus the decisions a fast-forward replayed without
	// strategy round trips or listener fan-out.
	RestoredSteps int `json:"restored_steps"`
	// TotalSteps counts every scheduler step of every schedule
	// (including steps of runs parked at cuts). The step conservation
	// law — ReplayedSteps + NovelSteps + RestoredSteps == TotalSteps —
	// holds for every healthy exploration and is pinned repo-wide by
	// TestCheckpointConservation.
	TotalSteps int `json:"total_steps"`
}

func (s *Stats) add(o Stats) {
	s.SleepPruned += o.SleepPruned
	s.PORPruned += o.PORPruned
	s.Backtracks += o.Backtracks
	s.StateHits += o.StateHits
	s.VBPruned += o.VBPruned
	s.TBPruned += o.TBPruned
	s.ReplayedSteps += o.ReplayedSteps
	s.NovelSteps += o.NovelSteps
	s.CheckpointHits += o.CheckpointHits
	s.CheckpointMisses += o.CheckpointMisses
	s.SnapshotRestores += o.SnapshotRestores
	s.RestoredSteps += o.RestoredSteps
	s.TotalSteps += o.TotalSteps
}

// subCap bounds a node's subtree footprint summary. Benchmark
// programs touch a handful of distinct (op, object) pairs; a subtree
// that exceeds the cap is simply not cached under DPOR (overflowed
// summaries cannot replay their backtrack obligations).
const subCap = 24

// word-level FNV-1a fold, shared with the fuzzer's canonical-form
// hashing through core so the constants cannot drift.
const fnvOffset = core.HashOffset

func mix(h, v uint64) uint64 { return core.FoldHash(h, v) }

// forkObj is the pseudo-object serializing forks in the hash: forks
// assign thread ids in execution order, so their relative order is
// observable even across unrelated parents and must never be hashed
// away.
const forkObj = uint64(1) << 40

// stateHasher is the per-worker listener that folds the run's event
// stream into per-thread hash chains. It is location-blind (it must
// not reinstate the per-probe stack walk) and is reset at the start of
// every run: a run replays its whole prefix, so the chains are rebuilt
// from scratch each time and depend only on the decision sequence.
// objSlot is one object's conflict-chain state, indexed by the
// object's interned handle. An entry is live only when its gen
// matches the hasher's current generation — resetting the hasher for
// the next run is a counter bump, not a table clear (the hasher runs
// on every event of every schedule, so its per-run reset and per-event
// lookups must not touch maps).
type objSlot struct {
	gen uint32
	// wh is the hash of the last conflicting ("write-class") event on
	// the object; rh xor-accumulates the reads since (reads commute,
	// so their order must not influence the hash).
	wh uint64
	rh uint64
}

type stateHasher struct {
	chains []uint64
	// objs is indexed by interned object handle (handles are small and
	// dense); see objSlot for the generation scheme.
	objs []objSlot
	gen  uint32
	// whFork serializes fork events (see forkObj).
	whFork uint64
	// timeH folds virtual-time-relevant decision positions: the step
	// index of every sleep execution (a sleeper's wake deadline is a
	// function of the step it slept at, so two prefixes whose sleeps
	// land on different steps are different states even when their
	// event chains match) and of every idle (time-warp) decision. Fed
	// by explorer.notePick, since neither position is visible in the
	// event stream.
	timeH uint64
}

func newStateHasher() *stateHasher {
	return &stateHasher{gen: 1}
}

// NeedsLocations implements core.LocationIndifferent: the hasher never
// reads event locations, so attaching it must not turn on per-probe
// location capture.
func (sh *stateHasher) NeedsLocations() bool { return false }

func (sh *stateHasher) reset() {
	sh.chains = sh.chains[:0]
	sh.whFork = 0
	sh.timeH = 0
	sh.gen++
	if sh.gen == 0 { // wrapped: invalidate the slow way once
		clear(sh.objs)
		sh.gen = 1
	}
}

// slot returns the live chain state for an object handle, growing the
// table and refreshing stale generations on the way.
func (sh *stateHasher) slot(obj uint32) *objSlot {
	if int(obj) >= len(sh.objs) {
		grown := make([]objSlot, int(obj)+16)
		copy(grown, sh.objs)
		sh.objs = grown
	}
	sl := &sh.objs[obj]
	if sl.gen != sh.gen {
		sl.gen, sl.wh, sl.rh = sh.gen, 0, 0
	}
	return sl
}

// hasherSnap is a frozen copy of a stateHasher, taken when a run is
// parked as a checkpoint: resuming the run later must continue folding
// events onto exactly the chains the parked prefix built, even though
// the (shared, per-worker) hasher has been reset and reused by other
// runs in between.
type hasherSnap struct {
	chains []uint64
	objK   []uint32
	objW   []uint64
	objR   []uint64
	whFork uint64
	timeH  uint64
}

// snapshotInto freezes the hasher into s, reusing s's backing arrays:
// branch snapshots are taken at every multi-option path node on the
// exploration hot path, so the copy must not allocate once the pooled
// snapshot has grown to the program's working size.
func (sh *stateHasher) snapshotInto(s *hasherSnap) {
	s.chains = append(s.chains[:0], sh.chains...)
	s.objK = s.objK[:0]
	s.objW = s.objW[:0]
	s.objR = s.objR[:0]
	s.whFork = sh.whFork
	s.timeH = sh.timeH
	for i := range sh.objs {
		sl := &sh.objs[i]
		if sl.gen == sh.gen && (sl.wh != 0 || sl.rh != 0) {
			s.objK = append(s.objK, uint32(i))
			s.objW = append(s.objW, sl.wh)
			s.objR = append(s.objR, sl.rh)
		}
	}
}

func (sh *stateHasher) snapshot() *hasherSnap {
	s := &hasherSnap{}
	sh.snapshotInto(s)
	return s
}

func (sh *stateHasher) restore(s *hasherSnap) {
	sh.reset()
	sh.chains = append(sh.chains, s.chains...)
	for i, k := range s.objK {
		sl := sh.slot(k)
		sl.wh, sl.rh = s.objW[i], s.objR[i]
	}
	sh.whFork = s.whFork
	sh.timeH = s.timeH
}

func (sh *stateHasher) chain(t core.ThreadID) uint64 {
	for int(t) >= len(sh.chains) {
		sh.chains = append(sh.chains, mix(fnvOffset, uint64(len(sh.chains))+1))
	}
	return sh.chains[t]
}

// OnEvent implements core.Listener: fold one executed event.
func (sh *stateHasher) OnEvent(ev *core.Event) {
	t := ev.Thread
	if t < 0 {
		return
	}
	h := sh.chain(t)
	obj := ev.NameID
	switch ev.Op {
	case core.OpYield, core.OpSleep, core.OpEnd, core.OpOutcome, core.OpFail:
		// Local-only effects: no shared object, program order suffices.
		h = mix(mix(h, uint64(ev.Op)), uint64(ev.Value))
	case core.OpRead:
		// Reads observe the object's last write but do not advance it;
		// the xor accumulator keeps concurrent reads order-insensitive.
		sl := sh.slot(obj)
		h = mix(mix(mix(h, uint64(ev.Op)), uint64(obj)), uint64(ev.Value))
		h = mix(h, sl.wh)
		sl.rh ^= h
	case core.OpBlock:
		// A blocked acquire observes the lock's state without changing
		// it: fold the observation, leave the object chain alone.
		h = mix(mix(mix(h, uint64(ev.Op)), uint64(obj)), sh.slot(obj).wh)
	case core.OpFork:
		// Forks order globally (thread-id assignment) and locally.
		h = mix(mix(mix(h, uint64(ev.Op)), uint64(ev.Value)), sh.whFork)
		sh.whFork = h
	case core.OpJoin:
		// Joining folds the joined thread's final chain: the joiner's
		// continuation depends on everything the child did.
		child := core.ThreadID(ev.Value)
		h = mix(mix(h, uint64(ev.Op)), sh.chain(child))
	default:
		// Write-class: conflicts with every other operation on obj.
		sl := sh.slot(obj)
		h = mix(mix(mix(h, uint64(ev.Op)), uint64(obj)), uint64(ev.Value))
		h = mix(mix(h, sl.wh), sl.rh)
		sl.wh = h
		sl.rh = 0
	}
	sh.chains[t] = h
}

// cacheEnt is one direct-mapped cache slot. The summary is inline so
// steady-state insertion allocates nothing. An entry is live only
// when its gen matches the cache's current generation — bumping the
// generation invalidates the whole table without touching its memory,
// which is what lets a pooled worker kit reuse one multi-megabyte
// table across explorations instead of zeroing (or reallocating) it
// per Explore call.
type cacheEnt struct {
	hash  uint64
	sleep uint64 // inherited sleep set at exploration, as a thread bitmask
	gen   uint32
	nsum  uint8
	sum   [subCap]uint64
}

// stateCache is the bounded canonical-state table. One per worker:
// entries only assert "this worker fully explored an equivalent
// subtree", which is sound without any cross-worker coordination.
type stateCache struct {
	mask uint64
	gen  uint32
	ents []cacheEnt
}

// DefaultStateCacheSize is the per-worker entry count when
// Options.StateCacheSize is zero.
const DefaultStateCacheSize = 1 << 15

func newStateCache(size int) *stateCache {
	if size <= 0 {
		size = DefaultStateCacheSize
	}
	n := 1 << bits.Len(uint(size-1)) // round up to a power of two
	return &stateCache{mask: uint64(n - 1), gen: 1, ents: make([]cacheEnt, n)}
}

// reset invalidates every entry in O(1) by advancing the generation.
// Cached subtree identities are only meaningful within one exploration
// of one program, so a recycled cache must start empty.
func (c *stateCache) reset() {
	c.gen++
	if c.gen == 0 { // generation counter wrapped: invalidate the slow way once
		clear(c.ents)
		c.gen = 1
	}
}

// lookup reports a usable entry for the state: same hash, and explored
// under a sleep set no larger than the current one.
func (c *stateCache) lookup(hash, sleep uint64) (*cacheEnt, bool) {
	e := &c.ents[hash&c.mask]
	if e.gen != c.gen || e.hash != hash {
		return nil, false
	}
	if e.sleep&^sleep != 0 {
		return nil, false // cached run slept more than we would: it explored less
	}
	return e, true
}

// insert records a fully-explored subtree. Collisions overwrite: the
// cache is an accelerator, not a ledger.
func (c *stateCache) insert(hash, sleep uint64, sum []uint64) {
	e := &c.ents[hash&c.mask]
	e.hash, e.sleep, e.gen = hash, sleep, c.gen
	e.nsum = uint8(len(sum))
	copy(e.sum[:], sum)
}

// reduction bundles the per-worker state of the reduction layer: the
// event hasher, its listener slice (hasher first, then the user's
// listeners), and the canonical-state cache. nil when Options.
// StateCache is off; DPOR alone needs no per-worker state. The hasher
// and cache are owned by the worker's kit and reused across
// explorations; only this thin bundle (and its listener slice) is
// rebuilt per Explore call.
type reduction struct {
	hasher    *stateHasher
	cache     *stateCache
	listeners []core.Listener
}

// sleepMask folds a sleep set into a thread bitmask; ok is false when
// a member does not fit (thread id ≥ 64), which disables caching for
// the node rather than risking an incomparable set.
func sleepMask(sleep map[core.ThreadID]bool) (uint64, bool) {
	var m uint64
	for t, on := range sleep {
		if !on {
			continue
		}
		if t < 0 || t >= 64 {
			return 0, false
		}
		m |= 1 << uint(t)
	}
	return m, true
}

// hashState combines the worker's event chains with the decision
// point's visible state — step index, runnable set, each runnable
// thread's pending footprint, and the timing branch — into the node's
// canonical identity. The current thread is deliberately excluded:
// linearizations of the same partial order arrive here with different
// last-executed threads but identical program states, and merging them
// is the point. Under a preemption bound the remaining budget (and the
// current thread it depends on) becomes part of the identity, since a
// subtree explored with less budget proves nothing about more; under a
// thread or variable bound the preempted-thread and charged-object
// sets join the identity for the same reason.
func (e *explorer) hashState(c *sched.Choice, n *node) uint64 {
	sh := e.red.hasher
	h := mix(mix(fnvOffset, uint64(c.Step)), sh.timeH)
	for i, ch := range sh.chains {
		h = mix(mix(h, uint64(i)), ch)
	}
	for _, id := range c.Runnable {
		h = mix(mix(h, uint64(uint32(id))), c.FootprintOf(id).Packed())
	}
	if c.CanIdle {
		h = mix(h, 0x1d1e)
	}
	if e.opts.PreemptionBound != nil {
		h = mix(mix(h, uint64(uint32(c.Current))), uint64(n.preBefore))
	}
	if e.opts.ThreadBound != nil {
		h = mix(mix(h, uint64(uint32(c.Current))), n.tbMask)
	}
	if e.opts.VariableBound != nil {
		h = mix(mix(h, uint64(uint32(c.Current))), uint64(len(n.vbObjs)))
		for _, o := range n.vbObjs {
			h = mix(h, uint64(o)+1)
		}
	}
	return h
}

// addSub folds one packed footprint into a node's subtree summary.
func (n *node) addSub(fp uint64) {
	if n.subOverflow {
		return
	}
	for _, v := range n.sub {
		if v == fp {
			return
		}
	}
	if len(n.sub) >= subCap {
		n.subOverflow = true
		return
	}
	n.sub = append(n.sub, fp)
}

// foldChild merges a popped child's summary (plus the executed edge's
// own footprint) into this node's summary.
func (n *node) foldChild(edge uint64, child *node) {
	n.addSub(edge)
	if child.subOverflow {
		n.subOverflow = true
		return
	}
	for _, v := range child.sub {
		n.addSub(v)
	}
}

// addBacktrack requests that thread p be explored at node n: p itself
// when it is an option there, otherwise (p was not enabled) every
// option — Flanagan & Godefroid's conservative fallback. It reports
// how many fresh additions were made.
func (n *node) addBacktrack(p core.ThreadID) int {
	if n.todo == nil {
		return 0
	}
	for _, o := range n.options {
		if o == p {
			if !n.todo[p] {
				n.todo[p] = true
				return 1
			}
			return 0
		}
	}
	added := 0
	for _, o := range n.options {
		if !n.todo[o] {
			n.todo[o] = true
			added++
		}
	}
	return added
}

// chosenFootprint is the packed footprint of the operation this node's
// current choice executes.
func (n *node) chosenFootprint() uint64 {
	return n.chosenFP().Packed()
}

// dporAnalyze implements the lazy backtrack-set construction for a
// fresh node: for every pending operation at this decision point, find
// the deepest earlier node whose chosen operation (by another thread)
// does not commute with it, and request the pending thread there. The
// scan stops at the shard root: races against the donated prefix are
// covered by the donor, which fully expands its path nodes before
// every donation (see split).
func (e *explorer) dporAnalyze(n *node, pd int) {
	for oi, p := range n.options {
		if p == sched.IdleID {
			continue
		}
		fp := n.fps[oi]
		for i := pd - 1; i >= 0; i-- {
			ni := e.path[i]
			ch := ni.chosen()
			if ch == p || ch == sched.IdleID {
				continue
			}
			if !ni.chosenFP().Commutes(fp) {
				e.stats.Backtracks += ni.addBacktrack(p)
				break
			}
		}
	}
}

// notePick folds timing-relevant decisions into the state hash: idle
// (time-warp) decisions and sleep executions, keyed by the step they
// happen at (see stateHasher.timeH). Called for every decision of
// every run — replayed and fresh alike, so the fold sequence is a
// pure function of the decision prefix. No-op without the state cache
// and for ordinary picks.
func (e *explorer) notePick(c *sched.Choice, pick core.ThreadID) {
	if e.red == nil {
		return
	}
	sh := e.red.hasher
	if pick == sched.IdleID {
		sh.timeH = mix(mix(sh.timeH, 0x1d1e0), uint64(c.Step))
	} else if c.FootprintOf != nil && c.FootprintOf(pick).Op == core.OpSleep {
		sh.timeH = mix(mix(sh.timeH, 0x51ee9), uint64(c.Step))
	}
}

// applySummary replays a cached subtree's footprint summary against
// the current path: each summarized operation behaves like a pending
// operation observed at the cut point, except the executing thread is
// unknown, so the conservative all-options addition is used at the
// deepest dependent node.
func (e *explorer) applySummary(ent *cacheEnt, pd int) {
	for _, packed := range ent.sum[:ent.nsum] {
		fp := core.UnpackFootprint(packed)
		for i := pd - 1; i >= 0; i-- {
			ni := e.path[i]
			ch := ni.chosen()
			if ch == sched.IdleID {
				continue
			}
			if !ni.chosenFP().Commutes(fp) {
				added := 0
				for _, o := range ni.options {
					if o != ch && !ni.todo[o] {
						ni.todo[o] = true
						added++
					}
				}
				e.stats.Backtracks += added
				break
			}
		}
	}
}
